// GPT-style transformer inference on ArrayFlex: the prefill/decode phase
// economics the serving layer schedules around, per-phase cost totals, the
// KV-cache footprint at the array's operand width — and the exactness
// contract, re-proven on a whole stack: the cycle backend re-simulates
// every layer and must agree bit-for-bit with the analytic closed forms.
//
//   $ ./transformer_inference [side]          (default 16)

#include <cstdlib>
#include <iostream>

#include "engine/engine.h"
#include "nn/runner.h"
#include "nn/transformer.h"
#include "util/strings.h"
#include "util/table.h"

using namespace af;

namespace {

void print_phase_table(const nn::ModelReport& report) {
  const std::map<std::string, nn::PhaseTotals> phases =
      nn::totals_by_phase(report);
  Table table({"phase", "layers", "MACs", "time", "share", "energy pJ",
               "DRAM bytes", "stalls", "spad peak"});
  table.set_align(0, Table::Align::kLeft);
  for (const nn::TransformerPhase p : nn::transformer_phases()) {
    const auto it = phases.find(nn::transformer_phase_name(p));
    if (it == phases.end()) continue;
    const nn::PhaseTotals& t = it->second;
    table.add_row({it->first, std::to_string(t.layers), with_commas(t.macs),
                   format_time_ps(t.arrayflex_time_ps),
                   percent(t.arrayflex_time_ps / report.arrayflex_time_ps),
                   fixed(t.arrayflex_energy_pj, 1), with_commas(t.dram_bytes),
                   with_commas(t.stall_cycles), with_commas(t.spad_peak_bytes)});
  }
  std::cout << table;
  std::cout << "modes chosen:";
  for (const auto& [k, n] : report.mode_histogram()) {
    std::cout << format("  k=%d: %d layers", k, n);
  }
  std::cout << "\n";
}

// The analytic engine IS the spec: the cycle backend must reproduce its
// numbers exactly, layer by layer.  Returns the number of disagreeing
// layers (0 on a healthy build).
int compare_reports(const nn::ModelReport& analytic,
                    const nn::ModelReport& cycle) {
  int mismatches = 0;
  for (std::size_t i = 0; i < analytic.layers.size(); ++i) {
    const nn::LayerReport& a = analytic.layers[i];
    const nn::LayerReport& c = cycle.layers[i];
    const bool same = a.arrayflex.k == c.arrayflex.k &&
                      a.arrayflex.cycles == c.arrayflex.cycles &&
                      a.arrayflex.time_ps == c.arrayflex.time_ps &&
                      a.dram_bytes == c.dram_bytes &&
                      a.stall_cycles == c.stall_cycles &&
                      a.spad_peak_bytes == c.spad_peak_bytes;
    if (!same) {
      std::cout << "  MISMATCH at " << a.name << "\n";
      ++mismatches;
    }
  }
  return mismatches;
}

}  // namespace

int main(int argc, char** argv) {
  const int side = argc > 1 ? std::atoi(argv[1]) : 16;

  // A small GPT-style stack, with the memory hierarchy enabled so the
  // per-phase table also shows DRAM traffic, stalls and scratchpad peaks.
  nn::TransformerConfig tc;
  tc.d_model = 64;
  tc.n_heads = 4;
  tc.d_ff = 256;
  tc.n_blocks = 2;
  const std::int64_t prompt_len = 64;
  const std::int64_t kv_len = 192;

  arch::ArrayConfig cfg = arch::ArrayConfig::square(side);
  cfg.mem.enabled = true;
  cfg.mem.spad_bytes = 1 << 15;
  cfg.mem.dram_bytes_per_cycle = 4;
  engine::EngineBuilder builder;
  builder.config(cfg);
  const nn::InferenceRunner analytic(builder.build("analytic"));

  const nn::Model prefill = nn::prefill_model(tc, prompt_len);
  const nn::Model decode = nn::decode_model(tc, kv_len);
  const nn::ModelReport prefill_report = analytic.run(prefill);
  const nn::ModelReport decode_report = analytic.run(decode);

  std::cout << format(
      "GPT-style stack: d_model=%d heads=%d d_ff=%d blocks=%d on %s\n",
      tc.d_model, tc.n_heads, tc.d_ff, tc.n_blocks,
      analytic.config().to_string().c_str());

  const nn::KvCacheReport kv = nn::kv_cache_report(tc, cfg, kv_len);
  std::cout << format(
      "KV cache @ %lld positions: %s bytes resident, %s bytes/token, "
      "%s read + %s written per decode step\n\n",
      static_cast<long long>(kv_len), with_commas(kv.resident_bytes).c_str(),
      with_commas(kv.bytes_per_token).c_str(),
      with_commas(kv.read_bytes_per_step).c_str(),
      with_commas(kv.write_bytes_per_step).c_str());

  std::cout << format("prefill (%lld prompt tokens, %s MACs):\n",
                      static_cast<long long>(prompt_len),
                      with_commas(prefill.total_macs()).c_str());
  print_phase_table(prefill_report);

  std::cout << format("\ndecode (1 token over a %lld-deep cache, %s MACs):\n",
                      static_cast<long long>(kv_len),
                      with_commas(decode.total_macs()).c_str());
  print_phase_table(decode_report);

  // The serving layer's reconfiguration story in two numbers: per-token
  // array time in each phase (prefill amortizes its fat GEMMs over the
  // whole prompt; decode pays one skinny pass per token at deeper
  // collapse).
  std::cout << format(
      "\nper-token array time : %s (prefill, amortized) vs %s (decode)\n",
      format_time_ps(prefill_report.arrayflex_time_ps /
                     static_cast<double>(prompt_len))
          .c_str(),
      format_time_ps(decode_report.arrayflex_time_ps).c_str());

  // Both backends, same numbers: the cycle engine re-simulates every layer.
  const nn::InferenceRunner cycle(builder.build("cycle"));
  int mismatches = compare_reports(prefill_report, cycle.run(prefill));
  mismatches += compare_reports(decode_report, cycle.run(decode));
  const int layers = static_cast<int>(prefill_report.layers.size() +
                                      decode_report.layers.size());
  if (mismatches != 0) {
    std::cout << format("\ncycle backend DISAGREES on %d of %d layers\n",
                        mismatches, layers);
    return 1;
  }
  std::cout << format(
      "\ncycle backend agrees bit-exactly on all %d layers (both phases)\n",
      layers);
  return 0;
}
