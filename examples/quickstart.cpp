// Quickstart: run one matrix multiplication on ArrayFlex, cycle-accurately,
// in every pipeline mode, and let the optimizer pick the best configuration.
//
//   $ ./quickstart
//
// Walks through the whole public API surface in ~80 lines:
//   1. describe the array            (arch::ArrayConfig)
//   2. make a workload               (gemm::random_matrix)
//   3. simulate it cycle-accurately  (arch::SystolicArray)
//   4. check the result              (gemm::reference_gemm)
//   5. predict latency analytically  (arch::total_latency_cycles, Eqs. 1-4)
//   6. pick the best pipeline depth  (arch::PipelineOptimizer, Eqs. 6-7)

#include <iostream>

#include "arch/array.h"
#include "arch/clocking.h"
#include "arch/latency.h"
#include "arch/optimizer.h"
#include "gemm/reference.h"
#include "util/rng.h"
#include "util/strings.h"

using namespace af;

int main() {
  // 1. A 16x16 ArrayFlex instance supporting normal mode and two shallow
  //    modes, 32-bit operands, 64-bit accumulation — the paper's datapath.
  arch::ArrayConfig cfg;
  cfg.rows = 16;
  cfg.cols = 16;
  cfg.supported_k = {1, 2, 4};
  cfg.validate();
  std::cout << "array: " << cfg.to_string() << "\n\n";

  // 2. X(T x M) = A(T x N) x B(N x M) with T=24, N=40, M=20: the tiler will
  //    cut N into 3 row-tiles and M into 2 column-tiles (Eq. 2).
  Rng rng(2023);
  const gemm::Mat32 a = gemm::random_matrix(rng, 24, 40, -128, 127);
  const gemm::Mat32 b = gemm::random_matrix(rng, 40, 20, -128, 127);

  // 3 + 4. Simulate in each mode and verify against the reference GEMM.
  arch::SystolicArray array(cfg);
  const gemm::Mat64 expected = gemm::reference_gemm(a, b);
  const gemm::GemmShape shape{b.cols(), a.cols(), a.rows()};

  std::cout << "mode  cycles(sim)  cycles(Eq.4)  result\n";
  for (const int k : cfg.supported_k) {
    gemm::Mat64 out;
    const arch::TileRunStats stats = array.run_gemm(a, b, k, &out);
    const std::int64_t analytic = arch::total_latency_cycles(shape, cfg, k);
    const std::string check =
        gemm::first_mismatch(out, expected).empty() ? "exact match" : "MISMATCH";
    std::cout << format(" k=%d  %11lld  %12lld  %s\n", k,
                        static_cast<long long>(stats.total_cycles),
                        static_cast<long long>(analytic), check.c_str());
  }

  // 5 + 6. Absolute time depends on the per-mode clock (Eq. 5): slower
  //    clock, fewer cycles.  The optimizer resolves the trade-off (Eq. 6).
  const arch::CalibratedClockModel clock = arch::CalibratedClockModel::date23();
  const arch::PipelineOptimizer opt(cfg, clock);
  std::cout << "\nabsolute time per mode (cycle count x Tclock):\n";
  for (const auto& entry : opt.sweep(shape)) {
    const auto& d = entry.decision;
    std::cout << format(" k=%d  %s at %.2f GHz%s\n", d.k,
                        format_time_ps(d.time_ps).c_str(), 1e3 / d.period_ps,
                        entry.is_best ? "   <- optimizer's choice" : "");
  }
  std::cout << format(
      "\ncontinuous optimum k-hat (Eq. 7) = %.2f; conventional fixed-pipeline "
      "SA would take %s\n",
      opt.continuous_k_hat(shape),
      format_time_ps(opt.conventional(shape).time_ps).c_str());
  return 0;
}
