// Quickstart: one matrix multiplication on ArrayFlex through the unified
// engine facade — priced analytically, executed cycle-accurately, and
// cross-checked, with the optimizer picking the best pipeline mode.
//
//   $ ./quickstart
//
// Walks through the whole public API surface in ~80 lines:
//   1. wire an engine              (engine::EngineBuilder / engine::make)
//   2. make a workload             (gemm::random_matrix)
//   3. price it instantly          (AnalyticEngine::evaluate, Eqs. 1-6)
//   4. execute it cycle-accurately (CycleAccurateEngine::run_gemm)
//   5. check both agree exactly    (outputs AND cycles/counters/energy)
//   6. let the engine pick k       (evaluate(shape, 0), Eqs. 6-7)

#include <iostream>

#include "engine/engine.h"
#include "gemm/reference.h"
#include "util/rng.h"
#include "util/strings.h"

using namespace af;

int main() {
  // 1. A 16x16 ArrayFlex instance supporting normal mode and two shallow
  //    modes, the paper's DATE-23 calibrated clock, generic 28nm energy —
  //    the EngineBuilder owns all of that wiring; build() instantiates any
  //    registered backend over it.
  engine::EngineBuilder builder;
  builder.square(16);
  auto analytic = builder.build("analytic");  // closed forms, instant
  auto cycle = builder.build("cycle");        // full simulation, exact
  std::cout << "array: " << analytic->config().to_string() << "\n\n";

  // 2. X(T x M) = A(T x N) x B(N x M) with T=24, N=40, M=20: the tiler will
  //    cut N into 3 row-tiles and M into 2 column-tiles (Eq. 2).
  Rng rng(2023);
  const gemm::Mat32 a = gemm::random_matrix(rng, 24, 40, -128, 127);
  const gemm::Mat32 b = gemm::random_matrix(rng, 40, 20, -128, 127);
  const gemm::GemmShape shape{b.cols(), a.cols(), a.rows()};
  const gemm::Mat64 expected = gemm::reference_gemm(a, b);

  // 3 + 4 + 5. For every mode: price analytically, execute cycle-
  //    accurately, and verify the backends agree to the last bit/cycle.
  std::cout << "mode  cycles(analytic)  cycles(cycle-sim)  energy pJ  result\n";
  for (const int k : analytic->config().supported_k) {
    const engine::CostEstimate priced = analytic->evaluate(shape, k);

    engine::GemmRequest request;
    request.a = &a;
    request.b = &b;
    request.k = k;
    const engine::RunResult run = cycle->run_gemm(request);

    const bool outputs_ok =
        run.out.has_value() &&
        gemm::first_mismatch(*run.out, expected).empty();
    const bool costs_ok = engine::exactly_equal(priced, run.cost);
    std::cout << format(" k=%d  %16lld  %17lld  %9.1f  %s\n", k,
                        static_cast<long long>(priced.cycles),
                        static_cast<long long>(run.cost.cycles),
                        run.cost.energy_pj,
                        outputs_ok && costs_ok ? "exact match" : "MISMATCH");
  }

  // 6. Absolute time depends on the per-mode clock (Eq. 5): slower clock,
  //    fewer cycles.  evaluate(shape, 0) resolves the trade-off (Eq. 6);
  //    the engine's optimizer exposes the Eq. 7 continuous optimum.
  std::cout << "\nabsolute time per mode (cycle count x Tclock):\n";
  const engine::CostEstimate best = analytic->best(shape);
  for (const int k : analytic->config().supported_k) {
    const engine::CostEstimate est = analytic->evaluate(shape, k);
    std::cout << format(" k=%d  %s at %.2f GHz%s\n", k,
                        format_time_ps(est.time_ps).c_str(),
                        1e3 / est.period_ps,
                        k == best.k ? "   <- engine's choice" : "");
  }
  std::cout << format(
      "\ncontinuous optimum k-hat (Eq. 7) = %.2f; conventional fixed-pipeline "
      "SA would take %s\n",
      analytic->optimizer().continuous_k_hat(shape),
      format_time_ps(analytic->optimizer().conventional(shape).time_ps)
          .c_str());
  return 0;
}
