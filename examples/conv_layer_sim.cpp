// A real convolution, end to end, through the cycle-accurate array:
// float feature maps -> symmetric quantization -> im2col lowering -> tiled
// weight-stationary execution on ArrayFlex -> dequantization, validated
// against float convolution.  This is the "edge inference" scenario the
// paper's introduction motivates (low-latency single-image processing).
//
//   $ ./conv_layer_sim

#include <cmath>
#include <iostream>
#include <vector>

#include "engine/engine.h"
#include "gemm/quantize.h"
#include "nn/mapper.h"
#include "util/rng.h"
#include "util/strings.h"

using namespace af;

int main() {
  // A mid-network layer shape: 3x3 conv, 8 -> 12 channels on a 14x14 map.
  const nn::Layer layer = nn::Layer::conv("conv", 8, 12, 3, 1, 1, 14, 14);
  const gemm::GemmShape shape = nn::gemm_shape(layer);
  std::cout << format("layer: %s %dx%d/%d, %d -> %d channels on %dx%d\n",
                      nn::layer_kind_name(layer.kind), layer.kernel_h,
                      layer.kernel_w, layer.stride, layer.in_channels,
                      layer.out_channels, layer.in_h, layer.in_w);
  std::cout << format("GEMM: M=%lld N=%lld T=%lld\n\n",
                      static_cast<long long>(shape.m),
                      static_cast<long long>(shape.n),
                      static_cast<long long>(shape.t));

  // Synthetic float data standing in for real feature maps/weights.
  Rng rng(42);
  const std::size_t in_elems = static_cast<std::size_t>(8 * 14 * 14);
  const std::size_t w_elems = static_cast<std::size_t>(12 * 8 * 9);
  std::vector<float> input_f(in_elems), weights_f(w_elems);
  for (auto& v : input_f) v = static_cast<float>(rng.next_double() * 4.0 - 2.0);
  for (auto& v : weights_f) v = static_cast<float>(rng.next_double() - 0.5);

  // Quantize (the paper's SAs run on quantized integers).
  const gemm::QuantParams qa = gemm::choose_symmetric_scale(input_f, 16);
  const gemm::QuantParams qw = gemm::choose_symmetric_scale(weights_f, 16);
  const gemm::Mat32 input_q = gemm::quantize_matrix(input_f, 8, 14 * 14, qa);
  const gemm::Mat32 weights_q = gemm::quantize_matrix(weights_f, 12, 8 * 9, qw);

  // Lower to GEMM and run on a 16x16 ArrayFlex in the optimizer's mode.
  const gemm::Mat32 a = nn::im2col(layer, input_q);
  const gemm::Mat32 b = nn::weights_to_matrix(layer, weights_q);

  // A cycle-accurate engine over a 16x16 ArrayFlex; mode k = 0 lets the
  // engine's optimizer pick the Eq. 6 argmin per request.
  auto sim = engine::EngineBuilder().square(16).build("cycle");
  std::cout << format("chosen pipeline mode: k=%d (k-hat %.2f)\n",
                      sim->optimizer().best_mode(shape).k,
                      sim->optimizer().continuous_k_hat(shape));

  engine::GemmRequest request;
  request.a = &a;
  request.b = &b;
  request.k = 0;
  const engine::RunResult run = sim->run_gemm(request);
  const gemm::Mat64& out_q = *run.out;
  std::cout << format("simulated %s cycles over %lld tiles (%s at %.2f GHz)\n",
                      with_commas(run.cost.cycles).c_str(),
                      static_cast<long long>(gemm::tile_count(
                          shape, sim->config().rows, sim->config().cols)),
                      format_time_ps(run.cost.time_ps).c_str(),
                      1e3 / run.cost.period_ps);
  std::cout << format("useful MACs: %s\n",
                      with_commas(run.cost.activity.mult_ops).c_str());

  // Dequantize and compare against float convolution.
  const auto in_at = [&](int ch, int y, int x) {
    return input_f[static_cast<std::size_t>(ch * 196 + y * 14 + x)];
  };
  double max_err = 0.0, max_mag = 0.0;
  for (int oc = 0; oc < 12; ++oc) {
    for (int oy = 0; oy < 14; ++oy) {
      for (int ox = 0; ox < 14; ++ox) {
        double acc = 0.0;
        int widx = 0;
        for (int ch = 0; ch < 8; ++ch) {
          for (int ky = 0; ky < 3; ++ky) {
            for (int kx = 0; kx < 3; ++kx, ++widx) {
              const int iy = oy + ky - 1, ix = ox + kx - 1;
              if (iy < 0 || iy >= 14 || ix < 0 || ix >= 14) continue;
              acc += static_cast<double>(in_at(ch, iy, ix)) *
                     weights_f[static_cast<std::size_t>(oc * 72 + widx)];
            }
          }
        }
        const double deq =
            static_cast<double>(out_q.at(oy * 14 + ox, oc)) * qa.scale * qw.scale;
        max_err = std::max(max_err, std::fabs(deq - acc));
        max_mag = std::max(max_mag, std::fabs(acc));
      }
    }
  }
  std::cout << format(
      "\nmax abs error vs float conv: %.3e (max output magnitude %.3f)\n",
      max_err, max_mag);
  std::cout << (max_err < 1e-2 ? "PASS: within 16-bit quantization noise\n"
                               : "FAIL: error exceeds quantization budget\n");
  return max_err < 1e-2 ? 0 : 1;
}
