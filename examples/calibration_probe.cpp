// Internal calibration probe (not a paper experiment): prints the
// STA-derived delays, the clock table from all three models, the power
// ratios per mode, and the Fig. 7/8/9 aggregates so model constants can be
// sanity-checked in one place.

#include <cstdio>

#include "arch/clocking.h"
#include "arch/optimizer.h"
#include "arch/power_model.h"
#include "hw/energy_characterization.h"
#include "nn/models.h"
#include "nn/runner.h"

using namespace af;

int main() {
  arch::CalibratedClockModel cal = arch::CalibratedClockModel::date23();
  arch::AnalyticClockModel fit = arch::AnalyticClockModel::paper_fit();
  std::printf("building STA model (gate-level netlists)...\n");
  arch::StaClockModel sta(500.0);

  std::printf("clock periods (ps):  conventional  k=1     k=2     k=3     k=4\n");
  std::printf("  calibrated        %8.1f  %7.1f %7.1f %7.1f %7.1f\n",
              cal.conventional_period_ps(), cal.period_ps(1), cal.period_ps(2),
              cal.period_ps(3), cal.period_ps(4));
  std::printf("  paper-fit eq5     %8.1f  %7.1f %7.1f %7.1f %7.1f\n",
              fit.conventional_period_ps(), fit.period_ps(1), fit.period_ps(2),
              fit.period_ps(3), fit.period_ps(4));
  std::printf("  sta-derived       %8.1f  %7.1f %7.1f %7.1f %7.1f\n",
              sta.conventional_period_ps(), sta.period_ps(1), sta.period_ps(2),
              sta.period_ps(3), sta.period_ps(4));
  std::printf("  sta delay scale: %.4f; base=%.1f collapse=%.1f\n",
              sta.delay_scale(), sta.base_delay_ps(), sta.collapse_delay_ps());
  std::printf("  calibrated base=%.1f collapse=%.1f ratio=%.2f\n",
              cal.base_delay_ps(), cal.collapse_delay_ps(),
              cal.base_delay_ps() / cal.collapse_delay_ps());

  // Power ratios per fixed mode on a representative mid-network layer.
  arch::ArrayConfig cfg = arch::ArrayConfig::square(128);
  arch::SaPowerModel power(cfg, cal);
  const gemm::GemmShape shape{256, 2304, 196};
  const arch::PowerResult conv = power.conventional(shape);
  std::printf("\nsingle-shape power (M=256,N=2304,T=196), conventional = %.0f mW\n",
              conv.power_mw());
  for (int k : {1, 2, 4}) {
    const arch::PowerResult af = power.arrayflex(shape, k);
    std::printf("  k=%d: %.0f mW  ratio=%.3f\n", k, af.power_mw(),
                af.power_mw() / conv.power_mw());
  }

  // Monte-Carlo gate-level energy characterization vs. the hand-fit
  // constants: per-op energies measured from netlist toggles on the 64-lane
  // simulator (see hw/energy_characterization.h for what is observable).
  std::printf("\ncharacterizing PE energy (64-lane Monte-Carlo)...\n");
  const hw::CharacterizedEnergy ch = hw::characterize_energy();
  const arch::EnergyParams fit_params = arch::EnergyParams::generic28nm();
  std::printf("  per-op fJ:        hand-fit  characterized\n");
  std::printf("  e_mult            %8.1f  %13.1f\n", fit_params.e_mult_fj,
              ch.params.e_mult_fj);
  std::printf("  e_csa             %8.1f  %13.1f\n", fit_params.e_csa_fj,
              ch.params.e_csa_fj);
  std::printf("  e_cpa             %8.1f  %13.1f\n", fit_params.e_cpa_fj,
              ch.params.e_cpa_fj);
  std::printf("  e_bypass_mux      %8.1f  %13.1f\n",
              fit_params.e_bypass_mux_fj, ch.params.e_bypass_mux_fj);
  std::printf("  e_reg_bit         %8.2f  %13.2f\n", fit_params.e_reg_bit_fj,
              ch.params.e_reg_bit_fj);
  std::printf("  leak_mw_per_pe    %8.4f  %13.4f\n", fit_params.leak_mw_per_pe,
              ch.params.leak_mw_per_pe);
  std::printf("  (%d cells, %.0f lane-cycles, %llu toggles)\n", ch.cells,
              ch.lane_cycles,
              static_cast<unsigned long long>(ch.total_toggles));
  {
    arch::SaPowerModel characterized(cfg, cal, ch.params);
    const arch::PowerResult conv_ch = characterized.conventional(shape);
    std::printf("  power ratios with characterized params:");
    for (int k : {1, 2, 4}) {
      const arch::PowerResult af_ch = characterized.arrayflex(shape, k);
      std::printf("  k=%d %.3f", k, af_ch.power_mw() / conv_ch.power_mw());
    }
    std::printf("\n");
  }

  // Full-model aggregates at both array sizes.
  for (int side : {128, 256}) {
    arch::ArrayConfig c = arch::ArrayConfig::square(side);
    nn::InferenceRunner runner(c, cal);
    std::printf("\n%dx%d SA:\n", side, side);
    for (const nn::Model& model : nn::paper_models()) {
      const nn::ModelReport r = runner.run(model);
      const arch::EfficiencyComparison e = r.totals();
      std::printf(
          "  %-10s time-savings=%5.1f%%  power-savings=%5.1f%%  edp-gain=%.2fx  modes:",
          model.name.c_str(), e.latency_savings() * 100.0,
          e.power_savings() * 100.0, e.edp_gain);
      for (const auto& [k, n] : r.mode_histogram()) {
        std::printf(" k%d:%d", k, n);
      }
      std::printf("\n");
    }
  }
  return 0;
}
