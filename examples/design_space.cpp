// Design-space exploration: sweep array sizes and pipeline-mode sets and
// report latency / power / EDP for the three paper CNNs — the study an
// accelerator architect would run before freezing an ArrayFlex instance.
//
//   $ ./design_space

#include <iostream>

#include "engine/engine.h"
#include "nn/models.h"
#include "nn/runner.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/thread_pool.h"

using namespace af;

int main() {
  const auto models = nn::paper_models();

  std::cout << "ArrayFlex design-space exploration (clock: paper-calibrated "
               "table, "
            << util::ThreadPool::resolve_num_threads(0) << " threads)\n\n";

  // --- sweep 1: array size ------------------------------------------------
  std::cout << "1) Array size sweep (modes {1,2,4}):\n";
  Table size_table({"array", "model", "latency savings", "power savings",
                    "EDP gain", "k4 layers"});
  size_table.set_align(0, Table::Align::kLeft);
  size_table.set_align(1, Table::Align::kLeft);
  for (const int side : {32, 64, 128, 256}) {
    // Sweep points are independent; every engine fans layer evaluation out
    // across all hardware threads (threads(0) = SimOptions::num_threads 0).
    const nn::InferenceRunner runner(
        engine::EngineBuilder().square(side).threads(0).build("analytic"));
    for (const auto& model : models) {
      const nn::ModelReport r = runner.run(model);
      const arch::EfficiencyComparison e = r.totals();
      const auto hist = r.mode_histogram();
      const int k4 = hist.count(4) ? hist.at(4) : 0;
      size_table.add_row({format("%dx%d", side, side), model.name,
                          percent(e.latency_savings()),
                          percent(e.power_savings()),
                          format("%.2fx", e.edp_gain), std::to_string(k4)});
    }
    size_table.add_separator();
  }
  std::cout << size_table << "\n";

  // --- sweep 2: supported-mode set ----------------------------------------
  std::cout << "2) Pipeline-mode set sweep on 128x128 (what does supporting "
               "deeper collapse buy?):\n";
  Table mode_table({"modes", "model", "latency savings", "EDP gain"});
  mode_table.set_align(0, Table::Align::kLeft);
  mode_table.set_align(1, Table::Align::kLeft);
  const std::vector<std::vector<int>> mode_sets = {{1}, {1, 2}, {1, 2, 4},
                                                   {1, 2, 4, 8}};
  for (const auto& modes : mode_sets) {
    const nn::InferenceRunner runner(engine::EngineBuilder()
                                         .square(128)
                                         .modes(modes)
                                         .threads(0)
                                         .build("analytic"));
    std::string label = "{";
    for (const int k : modes) label += std::to_string(k) + ",";
    label.back() = '}';
    for (const auto& model : models) {
      const nn::ModelReport r = runner.run(model);
      const arch::EfficiencyComparison e = r.totals();
      mode_table.add_row({label, model.name, percent(e.latency_savings()),
                          format("%.2fx", e.edp_gain)});
    }
    mode_table.add_separator();
  }
  std::cout << mode_table;
  std::cout << "\nnotes: modes {1} equals a conventional array burdened with "
               "ArrayFlex's slower\nclock (negative savings); k=8 adds little "
               "because Tclock(8) eats the cycle\nsavings — matching the "
               "paper's choice of kmax = 4.\n";
  return 0;
}
