// Design-space exploration: sweep array sizes and pipeline-mode sets and
// report latency / power / EDP for the three paper CNNs — the study an
// accelerator architect would run before freezing an ArrayFlex instance.
//
//   $ ./design_space

#include <iostream>

#include "arch/clocking.h"
#include "nn/models.h"
#include "nn/runner.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/thread_pool.h"

using namespace af;

int main() {
  const arch::CalibratedClockModel clock = arch::CalibratedClockModel::date23();
  const auto models = nn::paper_models();
  // Sweep points are independent; let every runner fan layer evaluation out
  // across all hardware threads (SimOptions::num_threads == 0).
  arch::SimOptions sim;
  sim.num_threads = 0;

  std::cout << "ArrayFlex design-space exploration (clock: paper-calibrated "
               "table, "
            << util::ThreadPool::resolve_num_threads(sim.num_threads)
            << " threads)\n\n";

  // --- sweep 1: array size ------------------------------------------------
  std::cout << "1) Array size sweep (modes {1,2,4}):\n";
  Table size_table({"array", "model", "latency savings", "power savings",
                    "EDP gain", "k4 layers"});
  size_table.set_align(0, Table::Align::kLeft);
  size_table.set_align(1, Table::Align::kLeft);
  for (const int side : {32, 64, 128, 256}) {
    arch::ArrayConfig cfg = arch::ArrayConfig::square(side);
    cfg.sim = sim;
    const nn::InferenceRunner runner(cfg, clock);
    for (const auto& model : models) {
      const nn::ModelReport r = runner.run(model);
      const arch::EfficiencyComparison e = r.totals();
      const auto hist = r.mode_histogram();
      const int k4 = hist.count(4) ? hist.at(4) : 0;
      size_table.add_row({format("%dx%d", side, side), model.name,
                          percent(e.latency_savings()),
                          percent(e.power_savings()),
                          format("%.2fx", e.edp_gain), std::to_string(k4)});
    }
    size_table.add_separator();
  }
  std::cout << size_table << "\n";

  // --- sweep 2: supported-mode set ----------------------------------------
  std::cout << "2) Pipeline-mode set sweep on 128x128 (what does supporting "
               "deeper collapse buy?):\n";
  Table mode_table({"modes", "model", "latency savings", "EDP gain"});
  mode_table.set_align(0, Table::Align::kLeft);
  mode_table.set_align(1, Table::Align::kLeft);
  const std::vector<std::vector<int>> mode_sets = {{1}, {1, 2}, {1, 2, 4},
                                                   {1, 2, 4, 8}};
  for (const auto& modes : mode_sets) {
    arch::ArrayConfig cfg = arch::ArrayConfig::square_with_modes(128, modes);
    cfg.sim = sim;
    const nn::InferenceRunner runner(cfg, clock);
    std::string label = "{";
    for (const int k : modes) label += std::to_string(k) + ",";
    label.back() = '}';
    for (const auto& model : models) {
      const nn::ModelReport r = runner.run(model);
      const arch::EfficiencyComparison e = r.totals();
      mode_table.add_row({label, model.name, percent(e.latency_savings()),
                          format("%.2fx", e.edp_gain)});
    }
    mode_table.add_separator();
  }
  std::cout << mode_table;
  std::cout << "\nnotes: modes {1} equals a conventional array burdened with "
               "ArrayFlex's slower\nclock (negative savings); k=8 adds little "
               "because Tclock(8) eats the cycle\nsavings — matching the "
               "paper's choice of kmax = 4.\n";
  return 0;
}
