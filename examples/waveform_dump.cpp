// Dump VCD waveforms of the array's edge activity for normal vs. shallow
// pipelining, so the k-batch input skew of paper Fig. 2 can be inspected in
// GTKWave or any VCD viewer.
//
//   $ ./waveform_dump            # writes arrayflex_k1.vcd / arrayflex_k2.vcd

#include <iostream>

#include "arch/array.h"
#include "gemm/matrix.h"
#include "sim/vcd.h"
#include "util/rng.h"
#include "util/strings.h"

using namespace af;

namespace {

void dump_run(const std::string& path, int k) {
  arch::ArrayConfig cfg;
  cfg.rows = cfg.cols = 4;
  cfg.supported_k = {1, 2, 4};
  cfg.validate();
  arch::SystolicArray array(cfg);

  Rng rng(7);
  const gemm::Mat32 a = gemm::random_matrix(rng, 6, 4, 1, 99);
  const gemm::Mat32 b = gemm::random_matrix(rng, 4, 4, 1, 9);
  gemm::Mat64 acc(6, 4);

  sim::VcdWriter vcd(path);
  std::vector<int> west_ids, south_ids, valid_ids;
  for (int r = 0; r < 4; ++r) {
    west_ids.push_back(vcd.add_signal(format("west_a%d", r), 32));
  }
  for (int c = 0; c < 4; ++c) {
    south_ids.push_back(vcd.add_signal(format("south_x%d", c), 32));
    valid_ids.push_back(vcd.add_signal(format("south_valid%d", c), 1));
  }

  array.run_tile(a, b, k, &acc, [&](const arch::CycleSnapshot& snap) {
    vcd.set_time(static_cast<std::uint64_t>(snap.relative_cycle));
    for (int r = 0; r < 4; ++r) {
      vcd.change(west_ids[static_cast<std::size_t>(r)],
                 static_cast<std::uint32_t>(
                     (*snap.west_inputs)[static_cast<std::size_t>(r)]));
    }
    for (int c = 0; c < 4; ++c) {
      vcd.change(valid_ids[static_cast<std::size_t>(c)],
                 (*snap.south_valid)[static_cast<std::size_t>(c)]);
      vcd.change(south_ids[static_cast<std::size_t>(c)],
                 static_cast<std::uint32_t>(
                     (*snap.south_values)[static_cast<std::size_t>(c)]));
    }
  });
}

}  // namespace

int main() {
  dump_run("arrayflex_k1.vcd", 1);
  dump_run("arrayflex_k2.vcd", 2);
  std::cout << "wrote arrayflex_k1.vcd and arrayflex_k2.vcd\n"
            << "open in a VCD viewer and compare west_a*: with k=2 the\n"
            << "activations enter in batches of two rows per cycle (paper "
               "Fig. 2b),\nand south_valid* fires earlier because the "
               "reduction pipeline is shallower.\n";
  return 0;
}
