// Prints the engine::make backend registry — the machine-checkable source
// of truth behind the README's "Execution engines" table.
//
//   $ ./engine_info            # human-readable backend matrix
//   $ ./engine_info --names    # one registry key per line (CI drift check:
//                              # the Release job fails when these names and
//                              # the README table disagree)

#include <iostream>
#include <string>

#include "engine/engine.h"
#include "gemm/reference.h"

using namespace af;

int main(int argc, char** argv) {
  const bool names_only =
      argc > 1 && std::string(argv[1]) == "--names";
  const std::vector<std::string> names = engine::registered_backends();
  if (names_only) {
    for (const std::string& name : names) std::cout << name << "\n";
    return 0;
  }

  std::cout << "engine::make registry (" << names.size() << " backends)\n\n";
  for (const std::string& name : names) {
    auto eng = engine::EngineBuilder().square(16).build(name);
    std::cout << "  \"" << name << "\"\n"
              << "    " << engine::backend_description(name) << "\n"
              << "    measures: " << (eng->measures() ? "yes" : "no")
              << "  (cost queries "
              << (eng->measures() ? "simulate cycle by cycle"
                                  : "answer from closed forms")
              << ")\n";
    // A tiny probe so the matrix shows live numbers, not just prose.
    const gemm::GemmShape shape{32, 32, 16};
    const engine::CostEstimate est = eng->evaluate(shape, 2);
    std::cout << "    probe (M=32 N=32 T=16, k=2): " << est.cycles
              << " cycles, " << est.energy_pj << " pJ\n\n";
  }
  std::cout << "All backends return bit-identical outputs and exactly equal\n"
               "cycle/activity/energy numbers (tests/engine_test.cpp); they\n"
               "differ only in how the numbers are produced and how fast.\n";
  return 0;
}
