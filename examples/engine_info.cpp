// Prints the engine::make backend registry and the serve::make_dispatcher
// registry — the machine-checkable sources of truth behind the README's
// "Execution engines" and "Dispatchers" tables.
//
//   $ ./engine_info                # human-readable backend matrix
//   $ ./engine_info --names        # one engine key per line (CI drift
//                                  # check: the Release job fails when
//                                  # these and the README table disagree)
//   $ ./engine_info --dispatchers  # one dispatcher key per line (same
//                                  # CI check against the README's
//                                  # dispatcher table)
//   $ ./engine_info --policies     # one overload-policy key per line
//                                  # (CI drift check against the README's
//                                  # "Overload policies" table)
//   $ ./engine_info --routers      # one fleet-router key per line (CI
//                                  # drift check against the README's
//                                  # "Routers" table)
//   $ ./engine_info --memory       # one MemoryConfig knob per line (CI
//                                  # drift check against the README's
//                                  # "Memory hierarchy" table)
//   $ ./engine_info --reconfig-policies
//                                  # one reconfiguration-policy key per
//                                  # line (CI drift check against the
//                                  # README's "Reconfiguration policies"
//                                  # table)

#include <iostream>
#include <string>

#include "arch/config.h"
#include "engine/engine.h"
#include "fleet/router.h"
#include "gemm/reference.h"
#include "serve/dispatcher.h"
#include "serve/server.h"

using namespace af;

int main(int argc, char** argv) {
  const std::string flag = argc > 1 ? argv[1] : "";
  const bool names_only = flag == "--names";
  if (flag == "--dispatchers") {
    for (const std::string& name : serve::registered_dispatchers()) {
      std::cout << name << "\n";
    }
    return 0;
  }
  if (flag == "--policies") {
    for (const std::string& name : serve::overload_policy_names()) {
      std::cout << name << "\n";
    }
    return 0;
  }
  if (flag == "--routers") {
    for (const std::string& name : fleet::registered_routers()) {
      std::cout << name << "\n";
    }
    return 0;
  }
  if (flag == "--memory") {
    for (const std::string& name : arch::MemoryConfig::knob_names()) {
      std::cout << name << "\n";
    }
    return 0;
  }
  if (flag == "--reconfig-policies") {
    for (const std::string& name : serve::reconfig_policy_names()) {
      std::cout << name << "\n";
    }
    return 0;
  }
  const std::vector<std::string> names = engine::registered_backends();
  if (names_only) {
    for (const std::string& name : names) std::cout << name << "\n";
    return 0;
  }

  std::cout << "engine::make registry (" << names.size() << " backends)\n\n";
  for (const std::string& name : names) {
    auto eng = engine::EngineBuilder().square(16).build(name);
    std::cout << "  \"" << name << "\"\n"
              << "    " << engine::backend_description(name) << "\n"
              << "    measures: " << (eng->measures() ? "yes" : "no")
              << "  (cost queries "
              << (eng->measures() ? "simulate cycle by cycle"
                                  : "answer from closed forms")
              << ")\n";
    // A tiny probe so the matrix shows live numbers, not just prose.
    const gemm::GemmShape shape{32, 32, 16};
    const engine::CostEstimate est = eng->evaluate(shape, 2);
    std::cout << "    probe (M=32 N=32 T=16, k=2): " << est.cycles
              << " cycles, " << est.energy_pj << " pJ\n\n";
  }
  std::cout << "All backends return bit-identical outputs and exactly equal\n"
               "cycle/activity/energy numbers (tests/engine_test.cpp); they\n"
               "differ only in how the numbers are produced and how fast.\n";

  std::cout << "\nserve::make_dispatcher registry ("
            << serve::registered_dispatchers().size() << " dispatchers)\n\n";
  for (const std::string& name : serve::registered_dispatchers()) {
    std::cout << "  \"" << name << "\"\n"
              << "    " << serve::dispatcher_description(name) << "\n";
  }
  std::cout << "\nBoth dispatchers preserve per-tenant DRR fairness and "
               "produce\nbit-identical results (tests/serve_test.cpp); they "
               "differ in lock\ncontention on the serving hot path.\n";

  std::cout << "\nserve overload policies ("
            << serve::overload_policy_names().size() << " policies)\n\n";
  for (const std::string& name : serve::overload_policy_names()) {
    std::cout << "  \"" << name << "\"\n"
              << "    " << serve::overload_policy_description(name) << "\n";
  }

  std::cout << "\nserve reconfiguration policies ("
            << serve::reconfig_policy_names().size() << " policies)\n\n";
  for (const std::string& name : serve::reconfig_policy_names()) {
    std::cout << "  \"" << name << "\"\n"
              << "    " << serve::reconfig_policy_description(name) << "\n";
  }
  std::cout << "\nThe policy stamps each admitted GEMM's pipeline mode k; the\n"
               "executing shard drains its array only when consecutive\n"
               "batches disagree (tests/serve_test.cpp pins both policies).\n";

  std::cout << "\nfleet::make_router registry ("
            << fleet::registered_routers().size() << " routers)\n\n";
  for (const std::string& name : fleet::registered_routers()) {
    std::cout << "  \"" << name << "\"\n"
              << "    " << fleet::router_description(name) << "\n";
  }
  std::cout << "\nEvery router is a pure function of (key, loads): placement\n"
               "is deterministic and never lands on an unroutable server\n"
               "(tests/fleet_test.cpp pins both properties).\n";
  return 0;
}
