// ResNet-34 single-batch inference on ArrayFlex (the paper's primary
// evaluation workload): per-layer pipeline configuration, execution time,
// power and the end-to-end comparison against a conventional fixed-pipeline
// systolic array.
//
//   $ ./resnet34_inference [side]          (default 128)

#include <cstdlib>
#include <iostream>

#include "engine/engine.h"
#include "nn/models.h"
#include "nn/runner.h"
#include "util/strings.h"
#include "util/table.h"

using namespace af;

int main(int argc, char** argv) {
  const int side = argc > 1 ? std::atoi(argv[1]) : 128;
  // The engine facade owns the config/clock/energy wiring (paper-calibrated
  // clock and generic 28nm energy by default); the runner rides it.
  const nn::InferenceRunner runner(
      engine::EngineBuilder().square(side).build("analytic"));

  const nn::Model model = nn::resnet34();
  const nn::ModelReport report = runner.run(model);

  std::cout << "ResNet-34 (" << model.layers.size() << " counted conv layers, "
            << with_commas(model.total_macs()) << " MACs) on "
            << runner.config().to_string() << "\n\n";

  Table table({"layer", "GEMM (M,N,T)", "k-hat", "k", "ArrayFlex", "savings"});
  table.set_align(0, Table::Align::kLeft);
  table.set_align(1, Table::Align::kLeft);
  for (const auto& l : report.layers) {
    table.add_row({l.name,
                   format("(%lld, %lld, %lld)", static_cast<long long>(l.shape.m),
                          static_cast<long long>(l.shape.n),
                          static_cast<long long>(l.shape.t)),
                   fixed(l.k_hat, 2), std::to_string(l.arrayflex.k),
                   format_time_ps(l.arrayflex.time_ps),
                   percent(l.time_savings())});
  }
  std::cout << table;

  const arch::EfficiencyComparison e = report.totals();
  std::cout << format("\ninference latency : %s (ArrayFlex) vs %s (conventional)"
                      "  -> %s faster\n",
                      format_time_ps(report.arrayflex_time_ps).c_str(),
                      format_time_ps(report.conventional_time_ps).c_str(),
                      percent(e.latency_savings()).c_str());
  std::cout << format("average power     : %.0f mW vs %.0f mW  -> %s lower\n",
                      report.arrayflex_avg_power_mw(),
                      report.conventional_avg_power_mw(),
                      percent(e.power_savings()).c_str());
  std::cout << format("energy-delay prod : %.2fx more efficient\n", e.edp_gain);

  std::cout << "\nlayers per pipeline mode:";
  for (const auto& [k, n] : report.mode_histogram()) {
    std::cout << format("  k=%d: %d", k, n);
  }
  std::cout << "\n";
  return 0;
}
