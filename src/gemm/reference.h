// Reference GEMM used as the golden model for the cycle-accurate simulator.

#pragma once

#include "gemm/matrix.h"

namespace af::gemm {

// Dimensions of X(T x M) = A(T x N) x B(N x M) — the paper's notation
// (Section II): T = rows of A streamed through the array, N = reduction
// depth (rows of B), M = output columns.
struct GemmShape {
  std::int64_t m = 0;
  std::int64_t n = 0;
  std::int64_t t = 0;

  bool operator==(const GemmShape&) const = default;
};

// X = A x B with 64-bit modular accumulation (two's-complement wrap-around,
// matching the RTL's 64-bit adders).  A is T x N, B is N x M.
Mat64 reference_gemm(const Mat32& a, const Mat32& b);

// Multiply-accumulate with explicit modular semantics.
inline std::int64_t mac_mod(std::int64_t acc, std::int32_t x, std::int32_t y) {
  const auto p = static_cast<std::uint64_t>(static_cast<std::int64_t>(x) *
                                            static_cast<std::int64_t>(y));
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(acc) + p);
}

}  // namespace af::gemm
