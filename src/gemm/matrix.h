// Dense row-major matrices for the GEMM substrate.
//
// The SA operates on 32-bit quantized operands and 64-bit accumulations
// (paper Section IV), so the two instantiations that matter are
// Matrix<int32_t> (operands) and Matrix<int64_t> (results).  Arithmetic is
// modular two's-complement, matching RTL truncation semantics.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"
#include "util/status.h"

namespace af::gemm {

template <typename T>
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::int64_t rows, std::int64_t cols, T fill = T{0})
      : rows_(rows), cols_(cols),
        data_(static_cast<std::size_t>(rows * cols), fill) {
    AF_CHECK(rows >= 0 && cols >= 0, "matrix dims must be non-negative");
  }

  std::int64_t rows() const { return rows_; }
  std::int64_t cols() const { return cols_; }

  T& at(std::int64_t r, std::int64_t c) {
    AF_ASSERT(r >= 0 && r < rows_ && c >= 0 && c < cols_,
              "index (" << r << "," << c << ") out of " << rows_ << "x" << cols_);
    return data_[static_cast<std::size_t>(r * cols_ + c)];
  }
  const T& at(std::int64_t r, std::int64_t c) const {
    AF_ASSERT(r >= 0 && r < rows_ && c >= 0 && c < cols_,
              "index (" << r << "," << c << ") out of " << rows_ << "x" << cols_);
    return data_[static_cast<std::size_t>(r * cols_ + c)];
  }

  const std::vector<T>& data() const { return data_; }

  bool operator==(const Matrix& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_ && data_ == o.data_;
  }
  bool operator!=(const Matrix& o) const { return !(*this == o); }

  // Zero-padded copy with the given dimensions (must not shrink).
  Matrix padded(std::int64_t rows, std::int64_t cols) const {
    AF_CHECK(rows >= rows_ && cols >= cols_,
             "padded() cannot shrink a matrix");
    Matrix out(rows, cols);
    for (std::int64_t r = 0; r < rows_; ++r) {
      for (std::int64_t c = 0; c < cols_; ++c) out.at(r, c) = at(r, c);
    }
    return out;
  }

  // Submatrix [r0, r0+nr) x [c0, c0+nc), zero-padded where it runs past the
  // source bounds (used when extracting edge tiles).
  Matrix block_padded(std::int64_t r0, std::int64_t c0, std::int64_t nr,
                      std::int64_t nc) const {
    Matrix out(nr, nc);
    for (std::int64_t r = 0; r < nr; ++r) {
      for (std::int64_t c = 0; c < nc; ++c) {
        const std::int64_t sr = r0 + r;
        const std::int64_t sc = c0 + c;
        if (sr < rows_ && sc < cols_) out.at(r, c) = at(sr, sc);
      }
    }
    return out;
  }

 private:
  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  std::vector<T> data_;
};

using Mat32 = Matrix<std::int32_t>;
using Mat64 = Matrix<std::int64_t>;

// Uniformly random int32 matrix in [lo, hi].
Mat32 random_matrix(af::Rng& rng, std::int64_t rows, std::int64_t cols,
                    std::int32_t lo, std::int32_t hi);

// First differing coordinate as a human-readable string, or "" if equal.
std::string first_mismatch(const Mat64& a, const Mat64& b);

}  // namespace af::gemm
