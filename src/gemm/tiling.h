// Tiled execution of a GEMM whose spatial dimensions exceed the array
// (paper Fig. 1(c) and Eq. 2): the N dimension is cut into ⌈N/R⌉ row tiles
// and M into ⌈M/C⌉ column tiles; partial sums accumulate in the output
// accumulators below the array.

#pragma once

#include <vector>

#include "gemm/reference.h"

namespace af::gemm {

struct TileCoord {
  std::int64_t n0 = 0;  // first reduction index of this tile
  std::int64_t m0 = 0;  // first output column of this tile
  std::int64_t n_extent = 0;  // valid reduction rows (<= R; edge tiles smaller)
  std::int64_t m_extent = 0;  // valid output columns (<= C)
};

class TileGrid {
 public:
  // Shape of the full GEMM and the array dimensions R (reduction rows) and
  // C (output columns) of a tile.
  TileGrid(const GemmShape& shape, std::int64_t rows, std::int64_t cols);

  std::int64_t row_tiles() const { return row_tiles_; }   // along N
  std::int64_t col_tiles() const { return col_tiles_; }   // along M
  std::int64_t total_tiles() const { return row_tiles_ * col_tiles_; }

  // Tiles in execution order (weight-stationary: iterate N innermost so the
  // accumulators finish one output column group before moving on).
  std::vector<TileCoord> tiles() const;

 private:
  GemmShape shape_;
  std::int64_t rows_;
  std::int64_t cols_;
  std::int64_t row_tiles_;
  std::int64_t col_tiles_;
};

// Number of tiles per Eq. 2/4: ⌈N/R⌉ x ⌈M/C⌉.
std::int64_t tile_count(const GemmShape& shape, std::int64_t rows,
                        std::int64_t cols);

}  // namespace af::gemm
