// Symmetric linear quantization of floating-point tensors to the SA's
// integer domain.  The paper runs "32-bit quantized inputs and weights";
// this module provides the float -> intN -> float round trip the examples
// use to feed realistic CNN data through the array.

#pragma once

#include <cstdint>
#include <vector>

#include "gemm/matrix.h"

namespace af::gemm {

struct QuantParams {
  double scale = 1.0;  // real value = scale * quantized value
  int bits = 32;
};

// Chooses the scale so the max-magnitude element maps to the edge of the
// signed `bits`-bit range.  An all-zero input yields scale 1.
QuantParams choose_symmetric_scale(const std::vector<float>& values, int bits);

std::int32_t quantize_value(float value, const QuantParams& params);
float dequantize_value(std::int32_t q, const QuantParams& params);

// Quantize a row-major float buffer into a Mat32.
Mat32 quantize_matrix(const std::vector<float>& values, std::int64_t rows,
                      std::int64_t cols, const QuantParams& params);

// Max absolute quantization error over a buffer (for tests/examples).
double max_roundtrip_error(const std::vector<float>& values,
                           const QuantParams& params);

}  // namespace af::gemm
