#include "gemm/quantize.h"

#include <algorithm>
#include <cmath>

#include "util/status.h"

namespace af::gemm {

QuantParams choose_symmetric_scale(const std::vector<float>& values, int bits) {
  AF_CHECK(bits >= 2 && bits <= 32, "quantization bits must be in [2,32]");
  double max_abs = 0.0;
  for (const float v : values) max_abs = std::max(max_abs, std::fabs(static_cast<double>(v)));
  QuantParams params;
  params.bits = bits;
  const double qmax = static_cast<double>((1LL << (bits - 1)) - 1);
  params.scale = max_abs > 0.0 ? max_abs / qmax : 1.0;
  return params;
}

std::int32_t quantize_value(float value, const QuantParams& params) {
  const double qmax = static_cast<double>((1LL << (params.bits - 1)) - 1);
  const double q = std::nearbyint(static_cast<double>(value) / params.scale);
  return static_cast<std::int32_t>(std::clamp(q, -qmax, qmax));
}

float dequantize_value(std::int32_t q, const QuantParams& params) {
  return static_cast<float>(q * params.scale);
}

Mat32 quantize_matrix(const std::vector<float>& values, std::int64_t rows,
                      std::int64_t cols, const QuantParams& params) {
  AF_CHECK(static_cast<std::int64_t>(values.size()) == rows * cols,
           "buffer size " << values.size() << " != " << rows << "x" << cols);
  Mat32 out(rows, cols);
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < cols; ++c) {
      out.at(r, c) =
          quantize_value(values[static_cast<std::size_t>(r * cols + c)], params);
    }
  }
  return out;
}

double max_roundtrip_error(const std::vector<float>& values,
                           const QuantParams& params) {
  double worst = 0.0;
  for (const float v : values) {
    const float back = dequantize_value(quantize_value(v, params), params);
    worst = std::max(worst, std::fabs(static_cast<double>(v - back)));
  }
  return worst;
}

}  // namespace af::gemm
