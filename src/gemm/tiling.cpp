#include "gemm/tiling.h"

#include "util/math.h"
#include "util/status.h"

namespace af::gemm {

TileGrid::TileGrid(const GemmShape& shape, std::int64_t rows, std::int64_t cols)
    : shape_(shape), rows_(rows), cols_(cols) {
  AF_CHECK(rows > 0 && cols > 0, "tile dimensions must be positive");
  AF_CHECK(shape.m > 0 && shape.n > 0 && shape.t > 0,
           "GEMM shape must be positive, got M=" << shape.m
                                                 << " N=" << shape.n
                                                 << " T=" << shape.t);
  row_tiles_ = ceil_div(shape.n, rows);
  col_tiles_ = ceil_div(shape.m, cols);
}

std::vector<TileCoord> TileGrid::tiles() const {
  std::vector<TileCoord> out;
  out.reserve(static_cast<std::size_t>(total_tiles()));
  for (std::int64_t mt = 0; mt < col_tiles_; ++mt) {
    for (std::int64_t nt = 0; nt < row_tiles_; ++nt) {
      TileCoord t;
      t.n0 = nt * rows_;
      t.m0 = mt * cols_;
      t.n_extent = std::min(rows_, shape_.n - t.n0);
      t.m_extent = std::min(cols_, shape_.m - t.m0);
      out.push_back(t);
    }
  }
  return out;
}

std::int64_t tile_count(const GemmShape& shape, std::int64_t rows,
                        std::int64_t cols) {
  AF_CHECK(rows > 0 && cols > 0, "tile dimensions must be positive");
  return ceil_div(shape.n, rows) * ceil_div(shape.m, cols);
}

}  // namespace af::gemm
