#include "gemm/reference.h"

#include "util/status.h"

namespace af::gemm {

Mat64 reference_gemm(const Mat32& a, const Mat32& b) {
  AF_CHECK(a.cols() == b.rows(), "GEMM inner-dimension mismatch: "
                                     << a.cols() << " vs " << b.rows());
  Mat64 x(a.rows(), b.cols());
  for (std::int64_t t = 0; t < a.rows(); ++t) {
    for (std::int64_t m = 0; m < b.cols(); ++m) {
      std::int64_t acc = 0;
      for (std::int64_t n = 0; n < a.cols(); ++n) {
        acc = mac_mod(acc, a.at(t, n), b.at(n, m));
      }
      x.at(t, m) = acc;
    }
  }
  return x;
}

}  // namespace af::gemm
