#include "gemm/matrix.h"

#include "util/strings.h"

namespace af::gemm {

Mat32 random_matrix(af::Rng& rng, std::int64_t rows, std::int64_t cols,
                    std::int32_t lo, std::int32_t hi) {
  Mat32 out(rows, cols);
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < cols; ++c) {
      out.at(r, c) = static_cast<std::int32_t>(rng.next_in(lo, hi));
    }
  }
  return out;
}

std::string first_mismatch(const Mat64& a, const Mat64& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    return format("shape mismatch: %lldx%lld vs %lldx%lld",
                  static_cast<long long>(a.rows()),
                  static_cast<long long>(a.cols()),
                  static_cast<long long>(b.rows()),
                  static_cast<long long>(b.cols()));
  }
  for (std::int64_t r = 0; r < a.rows(); ++r) {
    for (std::int64_t c = 0; c < a.cols(); ++c) {
      if (a.at(r, c) != b.at(r, c)) {
        return format("(%lld,%lld): %lld vs %lld", static_cast<long long>(r),
                      static_cast<long long>(c),
                      static_cast<long long>(a.at(r, c)),
                      static_cast<long long>(b.at(r, c)));
      }
    }
  }
  return "";
}

}  // namespace af::gemm
