// Transformer-block workloads lowered onto the GEMM facade.
//
// A decoder block is six GEMM phases (X(T x M) = A(T x N) x B(N x M)):
//
//   kQkvProj      T x d_model      by  d_model x 3*d_model   (fused Q,K,V)
//   kAttnScore    T x head_dim     by  head_dim x kv_len     (Q x K^T, per head)
//   kAttnContext  T x kv_len       by  kv_len x head_dim     (S x V,   per head)
//   kOutProj      T x d_model      by  d_model x d_model
//   kMlpUp        T x d_model      by  d_model x d_ff
//   kMlpDown      T x d_ff         by  d_ff x d_model
//
// T is the number of token rows flowing through the block: the prompt
// length during PREFILL, 1 during DECODE.  kv_len is the attention span —
// how many cached key/value rows the score and context GEMMs reduce over.
// Softmax/layernorm/residual work is element-wise and does not touch the
// array; like im2col overhead for the CNNs, it is outside the model.
//
// Every phase becomes an nn::Layer (LayerKind::kGemm, one layer PER HEAD
// for the attention GEMMs — heads are independent hardware runs), so a
// transformer stack is an ordinary nn::Model: InferenceRunner::run prices
// it per phase (mode choice, power, and — with ArrayConfig::mem enabled —
// dram/stall/spad footprints), serve::Server::submit_inference shards it,
// and the exact analytic==cycle equivalence contract holds because nothing
// but standard GemmShape evaluations ever reach the engine.
//
// The KV cache is the transformer's resident memory traffic: the score and
// context layers' B matrices ARE cache panels (head_dim x kv_len and
// kv_len x head_dim), so their DRAM bytes flow through mem::TileScheduler
// like any weight tile.  kv_cache_report gives the closed-form size/traffic
// summary (resident bytes, growth per decoded token, bytes streamed and
// appended per decode step) at the config's operand width.

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "arch/config.h"
#include "gemm/tiling.h"
#include "nn/models.h"
#include "nn/runner.h"

namespace af::nn {

enum class TransformerPhase {
  kQkvProj,
  kAttnScore,
  kAttnContext,
  kOutProj,
  kMlpUp,
  kMlpDown,
};

// Stable short name ("qkv_proj", "attn_score", ...) — also the phase tag
// embedded in generated layer names and the key of totals_by_phase.
const char* transformer_phase_name(TransformerPhase phase);

// The six phases in block execution order.
std::vector<TransformerPhase> transformer_phases();

struct TransformerConfig {
  int d_model = 512;
  int n_heads = 8;
  int d_ff = 2048;
  int n_blocks = 1;

  int head_dim() const { return d_model / n_heads; }

  // Throws af::Error{kInvalidArgument} on inconsistent geometry
  // (d_model not divisible by n_heads, non-positive dims).
  void validate() const;
};

// GEMM shape of one phase at `seq_t` token rows attending over `kv_len`
// cached positions.  Attention phases return the PER-HEAD shape (a block
// runs n_heads of them).
gemm::GemmShape transformer_phase_shape(const TransformerConfig& config,
                                        TransformerPhase phase,
                                        std::int64_t seq_t,
                                        std::int64_t kv_len);

// The layer list of one block: qkv, n_heads x score, n_heads x context,
// out_proj, mlp_up, mlp_down.  Layer names are
// "blk<index>.<phase>[.h<head>]".
std::vector<Layer> transformer_block_layers(const TransformerConfig& config,
                                            std::int64_t seq_t,
                                            std::int64_t kv_len,
                                            int block_index);

// A whole stack (config.n_blocks blocks) as an ordinary nn::Model.
Model transformer_model(const TransformerConfig& config, std::int64_t seq_t,
                        std::int64_t kv_len, std::string name = "");

// Prefill: the prompt's seq_len rows attend over themselves
// (seq_t = kv_len = seq_len; fat-T GEMMs).
Model prefill_model(const TransformerConfig& config, std::int64_t seq_len);

// One decode step: a single token row attends over a kv_len-deep cache
// (seq_t = 1; skinny-T GEMMs — the same-weight fusion fodder in serving).
Model decode_model(const TransformerConfig& config, std::int64_t kv_len);

// Closed-form KV-cache size and per-step traffic at the array's operand
// width (ArrayConfig::input_bits), summed over blocks and heads.
struct KvCacheReport {
  std::int64_t resident_bytes = 0;    // K+V held at depth kv_len
  std::int64_t bytes_per_token = 0;   // cache growth per decoded token
  std::int64_t read_bytes_per_step = 0;   // K^T + V panels streamed per step
  std::int64_t write_bytes_per_step = 0;  // new K,V rows appended per step
};
KvCacheReport kv_cache_report(const TransformerConfig& config,
                              const arch::ArrayConfig& array,
                              std::int64_t kv_len);

// Per-phase aggregation of a transformer ModelReport (layer names carry
// their phase tag): summed time/energy/MACs/footprints and the max
// scratchpad peak, keyed by transformer_phase_name.  Layers without a
// phase tag (a mixed model) land under "other".
struct PhaseTotals {
  int layers = 0;
  std::int64_t macs = 0;
  double arrayflex_time_ps = 0.0;
  double arrayflex_energy_pj = 0.0;
  std::int64_t dram_bytes = 0;
  std::int64_t stall_cycles = 0;
  std::int64_t spad_peak_bytes = 0;
};
std::map<std::string, PhaseTotals> totals_by_phase(const ModelReport& report);

}  // namespace af::nn
