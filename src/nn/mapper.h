// Layer -> GEMM mapping (im2col lowering, paper Section I: "the
// convolutions of each CNN layer are mapped to a matrix multiplication").
//
// Using the paper's notation X(T x M) = A(T x N) x B(N x M):
//   standard conv:  T = out_h*out_w,  N = in_ch*kh*kw,  M = out_ch
//   depthwise conv: T = out_h*out_w,  N = kh*kw,        M = channels
//     (each channel reduces over its own kh*kw window; mapping the channel
//      batch across the M dimension keeps the latency model exact while the
//      reduction depth stays kh*kw — the block-diagonal dense lowering)
//   linear:         T = 1,            N = in_features,  M = out_features
//
// The module also provides a real im2col patch-matrix builder used by the
// examples and tests to run actual convolutions through the array.

#pragma once

#include "gemm/matrix.h"
#include "gemm/tiling.h"
#include "nn/layer.h"

namespace af::nn {

gemm::GemmShape gemm_shape(const Layer& layer);

// im2col: lower an input feature map (channels x H x W, stored row-major as
// ch-major) to the A matrix of the layer's GEMM: T rows (output pixels),
// N columns (receptive-field elements).  Standard conv only.
gemm::Mat32 im2col(const Layer& layer, const gemm::Mat32& input_chw);

// Lower a weight tensor (out_ch x in_ch x kh x kw, row-major) to the B
// matrix: N rows x M cols.  Standard conv only.
gemm::Mat32 weights_to_matrix(const Layer& layer, const gemm::Mat32& weights);

// Direct convolution reference (for validating the im2col path end to end).
// input: in_ch x (H*W) matrix; weights: out_ch x (in_ch*kh*kw) matrix;
// returns out_ch x (out_h*out_w) with 64-bit modular accumulation.
gemm::Mat64 direct_conv(const Layer& layer, const gemm::Mat32& input_chw,
                        const gemm::Mat32& weights);

}  // namespace af::nn
