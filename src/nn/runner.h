// End-to-end model evaluation: map every layer to its GEMM, choose the
// optimal pipeline depth per layer (Eq. 6), and aggregate latency, power and
// energy for both ArrayFlex and the conventional fixed-pipeline SA.
//
// This is the harness behind Figs. 7, 8 and 9.
//
// The runner rides an engine::Engine: the engine owns the
// config/clock/energy/thread-pool wiring (and keeps the clock model alive,
// so there is no dangling-reference hazard when the caller's clock goes out
// of scope).  Layer evaluation itself is closed-form on every backend —
// per-layer mode selection and pricing use the engine's optimizer and
// power model, which are the same objects for "analytic" and "cycle" — so
// a ModelReport is backend-independent by construction.
//
// When the engine has a worker pool (its config requested threads, or a
// shared pool was injected), run() evaluates independent layers in
// parallel; reports are identical to serial runs.

#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "arch/energy.h"
#include "arch/optimizer.h"
#include "arch/power_model.h"
#include "engine/engine.h"
#include "nn/mapper.h"
#include "nn/models.h"

namespace af::util {
class ThreadPool;
}

namespace af::mem {
class TileScheduler;
}

namespace af::nn {

struct LayerReport {
  std::string name;
  LayerKind kind = LayerKind::kConv;
  gemm::GemmShape shape;
  double k_hat = 0.0;                  // Eq. 7 continuous optimum
  arch::ModeDecision arrayflex;        // Eq. 6 discrete argmin
  arch::ModeDecision conventional;
  arch::PowerResult arrayflex_power;
  arch::PowerResult conventional_power;

  // Memory-hierarchy footprint of the ArrayFlex execution at the chosen
  // mode.  All zero when the engine runs with magic memory
  // (MemoryConfig::enabled == false).
  std::int64_t dram_bytes = 0;
  std::int64_t stall_cycles = 0;
  std::int64_t spad_peak_bytes = 0;

  // Per-layer execution-time savings of ArrayFlex over the conventional SA
  // (negative when the conventional SA's faster clock wins).
  double time_savings() const {
    return 1.0 - arrayflex.time_ps / conventional.time_ps;
  }
};

struct ModelReport {
  std::string model_name;
  std::vector<LayerReport> layers;

  double arrayflex_time_ps = 0.0;
  double conventional_time_ps = 0.0;
  double arrayflex_energy_pj = 0.0;
  double conventional_energy_pj = 0.0;

  // Whole-model memory-hierarchy totals (sums over layers; spad_peak_bytes
  // is the max, since layers execute back to back on one scratchpad).
  // All zero with magic memory.
  std::int64_t arrayflex_dram_bytes = 0;
  std::int64_t arrayflex_stall_cycles = 0;
  std::int64_t spad_peak_bytes = 0;

  double arrayflex_avg_power_mw() const;
  double conventional_avg_power_mw() const;

  // Layer count per chosen mode k.
  std::map<int, int> mode_histogram() const;

  // Average ArrayFlex power over the layers executed in mode k (the
  // per-mode bars of Fig. 9).
  std::map<int, double> power_by_mode_mw() const;

  arch::EfficiencyComparison totals() const;
};

class InferenceRunner {
 public:
  // Primary constructor: the runner shares the engine (and thereby its
  // config, clock, energy params and worker pool).
  explicit InferenceRunner(std::shared_ptr<engine::Engine> engine);

  // Legacy wiring kept for call sites predating the engine facade: builds
  // an analytic engine over the pieces.  `clock` is NOT owned and must
  // outlive the runner (the pre-facade contract); prefer the engine
  // constructor, which owns its clock.  `shared_pool` (optional,
  // non-owning) injects one pool instead of a private one — see the
  // shared-pool contract in arch/array.h.
  InferenceRunner(const arch::ArrayConfig& config,
                  const arch::ClockModel& clock,
                  const arch::EnergyParams& energy =
                      arch::EnergyParams::generic28nm(),
                  util::ThreadPool* shared_pool = nullptr);
  ~InferenceRunner();

  LayerReport evaluate_layer(const Layer& layer) const;
  ModelReport run(const Model& model) const;

  // Shard-friendly evaluation: the report for the contiguous layer slice
  // [first, first + count).  A model sharded across several arrays is
  // evaluated as one run_slice per shard; concatenating the slice reports
  // in order reproduces run()'s report bit-exactly (per-layer results are
  // independent and totals are plain sums).
  ModelReport run_slice(const Model& model, std::size_t first,
                        std::size_t count) const;

  const arch::ArrayConfig& config() const { return engine_->config(); }
  const engine::Engine& engine() const { return *engine_; }

 private:
  std::shared_ptr<engine::Engine> engine_;
  // Present iff the engine's MemoryConfig is enabled; plans per-layer data
  // movement for the footprint fields.  plan() is const and pure, so the
  // parallel layer fan-out in run_slice stays race-free.
  std::unique_ptr<mem::TileScheduler> tiles_;
};

}  // namespace af::nn
