// End-to-end model evaluation: map every layer to its GEMM, choose the
// optimal pipeline depth per layer (Eq. 6), and aggregate latency, power and
// energy for both ArrayFlex and the conventional fixed-pipeline SA.
//
// This is the harness behind Figs. 7, 8 and 9.
//
// When the ArrayConfig's SimOptions request threads (num_threads != 1),
// run() evaluates independent layers in parallel; reports are identical to
// serial runs.

#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "arch/energy.h"
#include "arch/optimizer.h"
#include "arch/power_model.h"
#include "nn/mapper.h"
#include "nn/models.h"

namespace af::util {
class ThreadPool;
}

namespace af::nn {

struct LayerReport {
  std::string name;
  LayerKind kind = LayerKind::kConv;
  gemm::GemmShape shape;
  double k_hat = 0.0;                  // Eq. 7 continuous optimum
  arch::ModeDecision arrayflex;        // Eq. 6 discrete argmin
  arch::ModeDecision conventional;
  arch::PowerResult arrayflex_power;
  arch::PowerResult conventional_power;

  // Per-layer execution-time savings of ArrayFlex over the conventional SA
  // (negative when the conventional SA's faster clock wins).
  double time_savings() const {
    return 1.0 - arrayflex.time_ps / conventional.time_ps;
  }
};

struct ModelReport {
  std::string model_name;
  std::vector<LayerReport> layers;

  double arrayflex_time_ps = 0.0;
  double conventional_time_ps = 0.0;
  double arrayflex_energy_pj = 0.0;
  double conventional_energy_pj = 0.0;

  double arrayflex_avg_power_mw() const;
  double conventional_avg_power_mw() const;

  // Layer count per chosen mode k.
  std::map<int, int> mode_histogram() const;

  // Average ArrayFlex power over the layers executed in mode k (the
  // per-mode bars of Fig. 9).
  std::map<int, double> power_by_mode_mw() const;

  arch::EfficiencyComparison totals() const;
};

class InferenceRunner {
 public:
  // `shared_pool` (optional, non-owning, must outlive the runner) makes the
  // runner fan layer evaluation out on an external pool instead of
  // constructing a private one — the serving layer injects one pool into
  // every shard's runner and array so a threaded runner driving threaded
  // arrays stays at one pool's worth of workers instead of threads².  The
  // pool (shared or private) is also injected into the member optimizer so
  // best_modes never builds a second pool.
  InferenceRunner(const arch::ArrayConfig& config,
                  const arch::ClockModel& clock,
                  const arch::EnergyParams& energy =
                      arch::EnergyParams::generic28nm(),
                  util::ThreadPool* shared_pool = nullptr);
  ~InferenceRunner();

  LayerReport evaluate_layer(const Layer& layer) const;
  ModelReport run(const Model& model) const;

  // Shard-friendly evaluation: the report for the contiguous layer slice
  // [first, first + count).  A model sharded across several arrays is
  // evaluated as one run_slice per shard; concatenating the slice reports
  // in order reproduces run()'s report bit-exactly (per-layer results are
  // independent and totals are plain sums).
  ModelReport run_slice(const Model& model, std::size_t first,
                        std::size_t count) const;

  const arch::ArrayConfig& config() const { return config_; }

 private:
  util::ThreadPool* exec_pool() const {
    return external_pool_ != nullptr ? external_pool_ : pool_.get();
  }

  arch::ArrayConfig config_;
  const arch::ClockModel& clock_;
  arch::PipelineOptimizer optimizer_;
  arch::SaPowerModel power_;
  // Created once when the config's SimOptions request parallel layer
  // evaluation and no shared pool was injected; reused across run() calls
  // (layer eval is cheap enough that per-call pool construction would
  // dominate).
  std::unique_ptr<util::ThreadPool> pool_;
  util::ThreadPool* external_pool_ = nullptr;
};

}  // namespace af::nn
