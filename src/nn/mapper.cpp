#include "nn/mapper.h"

#include "gemm/reference.h"
#include "util/status.h"

namespace af::nn {

gemm::GemmShape gemm_shape(const Layer& layer) {
  layer.validate();
  gemm::GemmShape shape;
  const std::int64_t pixels =
      static_cast<std::int64_t>(layer.out_h()) * layer.out_w();
  switch (layer.kind) {
    case LayerKind::kConv:
      shape.t = pixels;
      shape.n = static_cast<std::int64_t>(layer.in_channels) * layer.kernel_h *
                layer.kernel_w;
      shape.m = layer.out_channels;
      break;
    case LayerKind::kDepthwiseConv:
      shape.t = pixels;
      shape.n = static_cast<std::int64_t>(layer.kernel_h) * layer.kernel_w;
      shape.m = layer.out_channels;
      break;
    case LayerKind::kLinear:
      shape.t = 1;
      shape.n = layer.in_channels;
      shape.m = layer.out_channels;
      break;
    case LayerKind::kGemm:
      // T rides the spatial size (in_h x 1, kernel 1x1 — see Layer::gemm),
      // so `pixels` already equals the activation row count.
      shape.t = pixels;
      shape.n = layer.in_channels;
      shape.m = layer.out_channels;
      break;
  }
  return shape;
}

gemm::Mat32 im2col(const Layer& layer, const gemm::Mat32& input_chw) {
  layer.validate();
  AF_CHECK(layer.kind == LayerKind::kConv, "im2col supports standard conv");
  AF_CHECK(input_chw.rows() == layer.in_channels &&
               input_chw.cols() ==
                   static_cast<std::int64_t>(layer.in_h) * layer.in_w,
           "input must be in_ch x (H*W)");
  const int oh = layer.out_h();
  const int ow = layer.out_w();
  const std::int64_t n = static_cast<std::int64_t>(layer.in_channels) *
                         layer.kernel_h * layer.kernel_w;
  gemm::Mat32 a(static_cast<std::int64_t>(oh) * ow, n);
  for (int oy = 0; oy < oh; ++oy) {
    for (int ox = 0; ox < ow; ++ox) {
      const std::int64_t row = static_cast<std::int64_t>(oy) * ow + ox;
      std::int64_t col = 0;
      for (int ch = 0; ch < layer.in_channels; ++ch) {
        for (int ky = 0; ky < layer.kernel_h; ++ky) {
          for (int kx = 0; kx < layer.kernel_w; ++kx, ++col) {
            const int iy = oy * layer.stride + ky - layer.padding;
            const int ix = ox * layer.stride + kx - layer.padding;
            if (iy >= 0 && iy < layer.in_h && ix >= 0 && ix < layer.in_w) {
              a.at(row, col) =
                  input_chw.at(ch, static_cast<std::int64_t>(iy) * layer.in_w + ix);
            }
          }
        }
      }
    }
  }
  return a;
}

gemm::Mat32 weights_to_matrix(const Layer& layer, const gemm::Mat32& weights) {
  layer.validate();
  AF_CHECK(layer.kind == LayerKind::kConv,
           "weights_to_matrix supports standard conv");
  const std::int64_t n = static_cast<std::int64_t>(layer.in_channels) *
                         layer.kernel_h * layer.kernel_w;
  AF_CHECK(weights.rows() == layer.out_channels && weights.cols() == n,
           "weights must be out_ch x (in_ch*kh*kw)");
  gemm::Mat32 b(n, layer.out_channels);
  for (std::int64_t oc = 0; oc < layer.out_channels; ++oc) {
    for (std::int64_t i = 0; i < n; ++i) b.at(i, oc) = weights.at(oc, i);
  }
  return b;
}

gemm::Mat64 direct_conv(const Layer& layer, const gemm::Mat32& input_chw,
                        const gemm::Mat32& weights) {
  layer.validate();
  AF_CHECK(layer.kind == LayerKind::kConv, "direct_conv supports standard conv");
  const int oh = layer.out_h();
  const int ow = layer.out_w();
  gemm::Mat64 out(layer.out_channels,
                  static_cast<std::int64_t>(oh) * ow);
  for (int oc = 0; oc < layer.out_channels; ++oc) {
    for (int oy = 0; oy < oh; ++oy) {
      for (int ox = 0; ox < ow; ++ox) {
        std::int64_t acc = 0;
        std::int64_t widx = 0;
        for (int ch = 0; ch < layer.in_channels; ++ch) {
          for (int ky = 0; ky < layer.kernel_h; ++ky) {
            for (int kx = 0; kx < layer.kernel_w; ++kx, ++widx) {
              const int iy = oy * layer.stride + ky - layer.padding;
              const int ix = ox * layer.stride + kx - layer.padding;
              if (iy < 0 || iy >= layer.in_h || ix < 0 || ix >= layer.in_w) {
                continue;
              }
              acc = gemm::mac_mod(
                  acc,
                  input_chw.at(ch, static_cast<std::int64_t>(iy) * layer.in_w + ix),
                  weights.at(oc, widx));
            }
          }
        }
        out.at(oc, static_cast<std::int64_t>(oy) * ow + ox) = acc;
      }
    }
  }
  return out;
}

}  // namespace af::nn
