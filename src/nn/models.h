// Layer tables for the paper's three evaluation CNNs (Section IV-A):
// ResNet-34, MobileNet-V1 and ConvNeXt-T, at 224x224 single-batch inference.
//
// Layer numbering matches the paper's counting:
//   * ResNet-34: the 33 weight convolutions (conv1 + 2 per basic block);
//     1x1 projection shortcuts excluded by default.  With this numbering the
//     paper's Fig. 5 examples check out exactly: layer 20 -> GEMM
//     (M,N,T) = (256, 2304, 196) and layer 28 -> (512, 2304, 49).
//   * ConvNeXt-T: 55 layers (stem + 3/3/9/3 blocks x (dw7x7, pw, pw));
//     stage-transition downsample convs excluded by default, matching the
//     55-layer x-axis of Fig. 7.
//   * MobileNet-V1: 27 convolutions + the final classifier.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/layer.h"

namespace af::nn {

struct Model {
  std::string name;
  std::vector<Layer> layers;

  std::int64_t total_macs() const;
};

Model resnet34(bool include_projections = false);
Model mobilenet_v1(bool include_classifier = true);
Model convnext_tiny(bool include_downsample = false);

// The three CNNs of Figs. 8 and 9, in the paper's order.
std::vector<Model> paper_models();

}  // namespace af::nn
