#include "nn/models.h"

#include "util/strings.h"

namespace af::nn {

std::int64_t Model::total_macs() const {
  std::int64_t total = 0;
  for (const Layer& l : layers) total += l.macs();
  return total;
}

Model resnet34(bool include_projections) {
  Model m;
  m.name = "ResNet-34";
  auto& L = m.layers;

  // conv1: 7x7/2, 3 -> 64, 224 -> 112.  (3x3/2 max-pool follows: 112 -> 56.)
  L.push_back(Layer::conv("conv1", 3, 64, 7, 2, 3, 224, 224));

  // conv2_x: 3 basic blocks, 64 channels @ 56.
  for (int b = 0; b < 3; ++b) {
    L.push_back(Layer::conv(format("conv2_%d_1", b + 1), 64, 64, 3, 1, 1, 56, 56));
    L.push_back(Layer::conv(format("conv2_%d_2", b + 1), 64, 64, 3, 1, 1, 56, 56));
  }
  // conv3_x: 4 blocks, 128 channels @ 28 (first conv strides 56 -> 28).
  if (include_projections) {
    L.push_back(Layer::conv("conv3_proj", 64, 128, 1, 2, 0, 56, 56));
  }
  L.push_back(Layer::conv("conv3_1_1", 64, 128, 3, 2, 1, 56, 56));
  L.push_back(Layer::conv("conv3_1_2", 128, 128, 3, 1, 1, 28, 28));
  for (int b = 1; b < 4; ++b) {
    L.push_back(Layer::conv(format("conv3_%d_1", b + 1), 128, 128, 3, 1, 1, 28, 28));
    L.push_back(Layer::conv(format("conv3_%d_2", b + 1), 128, 128, 3, 1, 1, 28, 28));
  }
  // conv4_x: 6 blocks, 256 channels @ 14.
  if (include_projections) {
    L.push_back(Layer::conv("conv4_proj", 128, 256, 1, 2, 0, 28, 28));
  }
  L.push_back(Layer::conv("conv4_1_1", 128, 256, 3, 2, 1, 28, 28));
  L.push_back(Layer::conv("conv4_1_2", 256, 256, 3, 1, 1, 14, 14));
  for (int b = 1; b < 6; ++b) {
    L.push_back(Layer::conv(format("conv4_%d_1", b + 1), 256, 256, 3, 1, 1, 14, 14));
    L.push_back(Layer::conv(format("conv4_%d_2", b + 1), 256, 256, 3, 1, 1, 14, 14));
  }
  // conv5_x: 3 blocks, 512 channels @ 7.
  if (include_projections) {
    L.push_back(Layer::conv("conv5_proj", 256, 512, 1, 2, 0, 14, 14));
  }
  L.push_back(Layer::conv("conv5_1_1", 256, 512, 3, 2, 1, 14, 14));
  L.push_back(Layer::conv("conv5_1_2", 512, 512, 3, 1, 1, 7, 7));
  for (int b = 1; b < 3; ++b) {
    L.push_back(Layer::conv(format("conv5_%d_1", b + 1), 512, 512, 3, 1, 1, 7, 7));
    L.push_back(Layer::conv(format("conv5_%d_2", b + 1), 512, 512, 3, 1, 1, 7, 7));
  }
  return m;
}

Model mobilenet_v1(bool include_classifier) {
  Model m;
  m.name = "MobileNet";
  auto& L = m.layers;

  L.push_back(Layer::conv("conv1", 3, 32, 3, 2, 1, 224, 224));

  // (channels_in, stride) per depthwise-separable block; pw doubles the
  // channel count whenever the dw layer strides (except the final stage).
  struct Block {
    int ch_in;
    int stride;
    int ch_out;
    int spatial_in;
  };
  const Block blocks[] = {
      {32, 1, 64, 112},   {64, 2, 128, 112}, {128, 1, 128, 56},
      {128, 2, 256, 56},  {256, 1, 256, 28}, {256, 2, 512, 28},
      {512, 1, 512, 14},  {512, 1, 512, 14}, {512, 1, 512, 14},
      {512, 1, 512, 14},  {512, 1, 512, 14}, {512, 2, 1024, 14},
      {1024, 1, 1024, 7},
  };
  int index = 0;
  for (const Block& b : blocks) {
    ++index;
    L.push_back(Layer::depthwise(format("dw%d", index), b.ch_in, 3, b.stride,
                                 1, b.spatial_in, b.spatial_in));
    const int spatial_out = b.spatial_in / b.stride;
    L.push_back(Layer::pointwise(format("pw%d", index), b.ch_in, b.ch_out,
                                 spatial_out, spatial_out));
  }
  if (include_classifier) {
    L.push_back(Layer::linear("fc", 1024, 1000));
  }
  return m;
}

Model convnext_tiny(bool include_downsample) {
  Model m;
  m.name = "ConvNeXt";
  auto& L = m.layers;

  // Stem: 4x4/4 patchify, 3 -> 96, 224 -> 56.
  L.push_back(Layer::conv("stem", 3, 96, 4, 4, 0, 224, 224));

  struct Stage {
    int blocks;
    int channels;
    int spatial;
  };
  const Stage stages[] = {{3, 96, 56}, {3, 192, 28}, {9, 384, 14}, {3, 768, 7}};
  for (int s = 0; s < 4; ++s) {
    const Stage& st = stages[s];
    if (s > 0 && include_downsample) {
      L.push_back(Layer::conv(format("down%d", s), stages[s - 1].channels,
                              st.channels, 2, 2, 0, stages[s - 1].spatial,
                              stages[s - 1].spatial));
    }
    for (int b = 0; b < st.blocks; ++b) {
      // ConvNeXt block: 7x7 depthwise, then an inverted bottleneck of two
      // pointwise convs with 4x expansion.
      L.push_back(Layer::depthwise(format("s%d_b%d_dw", s + 1, b + 1),
                                   st.channels, 7, 1, 3, st.spatial,
                                   st.spatial));
      L.push_back(Layer::pointwise(format("s%d_b%d_pw1", s + 1, b + 1),
                                   st.channels, st.channels * 4, st.spatial,
                                   st.spatial));
      L.push_back(Layer::pointwise(format("s%d_b%d_pw2", s + 1, b + 1),
                                   st.channels * 4, st.channels, st.spatial,
                                   st.spatial));
    }
  }
  return m;
}

std::vector<Model> paper_models() {
  return {resnet34(), mobilenet_v1(), convnext_tiny()};
}

}  // namespace af::nn
