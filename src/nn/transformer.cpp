#include "nn/transformer.h"

#include <algorithm>

#include "util/status.h"

namespace af::nn {
namespace {

// The phase tag is sandwiched between "blk<i>." and an optional ".h<head>"
// suffix; match on substring so totals_by_phase needs no parser.
std::string phase_of_layer(const std::string& name) {
  for (const TransformerPhase phase : transformer_phases()) {
    if (name.find(transformer_phase_name(phase)) != std::string::npos) {
      return transformer_phase_name(phase);
    }
  }
  return "other";
}

}  // namespace

const char* transformer_phase_name(TransformerPhase phase) {
  switch (phase) {
    case TransformerPhase::kQkvProj:
      return "qkv_proj";
    case TransformerPhase::kAttnScore:
      return "attn_score";
    case TransformerPhase::kAttnContext:
      return "attn_context";
    case TransformerPhase::kOutProj:
      return "out_proj";
    case TransformerPhase::kMlpUp:
      return "mlp_up";
    case TransformerPhase::kMlpDown:
      return "mlp_down";
  }
  return "?";
}

std::vector<TransformerPhase> transformer_phases() {
  return {TransformerPhase::kQkvProj,  TransformerPhase::kAttnScore,
          TransformerPhase::kAttnContext, TransformerPhase::kOutProj,
          TransformerPhase::kMlpUp,    TransformerPhase::kMlpDown};
}

void TransformerConfig::validate() const {
  AF_CHECK(d_model > 0 && n_heads > 0 && d_ff > 0 && n_blocks > 0,
           "transformer config dims must be positive, got d_model="
               << d_model << " n_heads=" << n_heads << " d_ff=" << d_ff
               << " n_blocks=" << n_blocks);
  AF_CHECK(d_model % n_heads == 0,
           "d_model=" << d_model << " must divide evenly into n_heads="
                      << n_heads << " heads");
}

gemm::GemmShape transformer_phase_shape(const TransformerConfig& config,
                                        TransformerPhase phase,
                                        std::int64_t seq_t,
                                        std::int64_t kv_len) {
  config.validate();
  AF_CHECK(seq_t > 0, "seq_t must be positive, got " << seq_t);
  AF_CHECK(kv_len > 0, "kv_len must be positive, got " << kv_len);
  const std::int64_t d = config.d_model;
  const std::int64_t hd = config.head_dim();
  const std::int64_t ff = config.d_ff;
  switch (phase) {
    case TransformerPhase::kQkvProj:
      return gemm::GemmShape{3 * d, d, seq_t};
    case TransformerPhase::kAttnScore:
      return gemm::GemmShape{kv_len, hd, seq_t};
    case TransformerPhase::kAttnContext:
      return gemm::GemmShape{hd, kv_len, seq_t};
    case TransformerPhase::kOutProj:
      return gemm::GemmShape{d, d, seq_t};
    case TransformerPhase::kMlpUp:
      return gemm::GemmShape{ff, d, seq_t};
    case TransformerPhase::kMlpDown:
      return gemm::GemmShape{d, ff, seq_t};
  }
  AF_CHECK(false, "unknown transformer phase");
  return {};
}

std::vector<Layer> transformer_block_layers(const TransformerConfig& config,
                                            std::int64_t seq_t,
                                            std::int64_t kv_len,
                                            int block_index) {
  std::vector<Layer> layers;
  layers.reserve(static_cast<std::size_t>(4 + 2 * config.n_heads));
  const std::string prefix = "blk" + std::to_string(block_index) + ".";
  const auto add = [&](TransformerPhase phase, const std::string& suffix) {
    const gemm::GemmShape s =
        transformer_phase_shape(config, phase, seq_t, kv_len);
    layers.push_back(Layer::gemm(
        prefix + transformer_phase_name(phase) + suffix, s.t, s.n, s.m));
  };
  add(TransformerPhase::kQkvProj, "");
  for (int h = 0; h < config.n_heads; ++h) {
    add(TransformerPhase::kAttnScore, ".h" + std::to_string(h));
  }
  for (int h = 0; h < config.n_heads; ++h) {
    add(TransformerPhase::kAttnContext, ".h" + std::to_string(h));
  }
  add(TransformerPhase::kOutProj, "");
  add(TransformerPhase::kMlpUp, "");
  add(TransformerPhase::kMlpDown, "");
  return layers;
}

Model transformer_model(const TransformerConfig& config, std::int64_t seq_t,
                        std::int64_t kv_len, std::string name) {
  config.validate();
  Model model;
  model.name = name.empty()
                   ? "transformer_d" + std::to_string(config.d_model) + "_h" +
                         std::to_string(config.n_heads) + "_t" +
                         std::to_string(seq_t) + "_kv" + std::to_string(kv_len)
                   : std::move(name);
  for (int b = 0; b < config.n_blocks; ++b) {
    std::vector<Layer> block =
        transformer_block_layers(config, seq_t, kv_len, b);
    for (Layer& l : block) model.layers.push_back(std::move(l));
  }
  return model;
}

Model prefill_model(const TransformerConfig& config, std::int64_t seq_len) {
  return transformer_model(config, seq_len, seq_len, "");
}

Model decode_model(const TransformerConfig& config, std::int64_t kv_len) {
  return transformer_model(config, 1, kv_len, "");
}

KvCacheReport kv_cache_report(const TransformerConfig& config,
                              const arch::ArrayConfig& array,
                              std::int64_t kv_len) {
  config.validate();
  AF_CHECK(kv_len > 0, "kv_len must be positive, got " << kv_len);
  const std::int64_t in_b = (array.input_bits + 7) / 8;
  const std::int64_t blocks = config.n_blocks;
  const std::int64_t d = config.d_model;
  KvCacheReport out;
  // K and V each hold kv_len rows of d_model per block (heads partition
  // d_model, they do not multiply it).
  out.resident_bytes = 2 * blocks * kv_len * d * in_b;
  out.bytes_per_token = 2 * blocks * d * in_b;
  // A decode step streams every head's K^T panel (head_dim x kv_len) for
  // the score GEMM and V panel (kv_len x head_dim) for the context GEMM —
  // exactly the B-operand bytes mem::TileScheduler plans for those layers.
  out.read_bytes_per_step = 2 * blocks * kv_len * d * in_b;
  out.write_bytes_per_step = out.bytes_per_token;
  return out;
}

std::map<std::string, PhaseTotals> totals_by_phase(const ModelReport& report) {
  std::map<std::string, PhaseTotals> out;
  for (const LayerReport& lr : report.layers) {
    PhaseTotals& t = out[phase_of_layer(lr.name)];
    t.layers += 1;
    t.macs += lr.shape.t * lr.shape.n * lr.shape.m;
    t.arrayflex_time_ps += lr.arrayflex.time_ps;
    t.arrayflex_energy_pj += lr.arrayflex_power.energy_pj;
    t.dram_bytes += lr.dram_bytes;
    t.stall_cycles += lr.stall_cycles;
    t.spad_peak_bytes = std::max(t.spad_peak_bytes, lr.spad_peak_bytes);
  }
  return out;
}

}  // namespace af::nn
