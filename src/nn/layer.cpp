#include "nn/layer.h"

#include <limits>

#include "util/status.h"

namespace af::nn {

const char* layer_kind_name(LayerKind kind) {
  switch (kind) {
    case LayerKind::kConv:
      return "conv";
    case LayerKind::kDepthwiseConv:
      return "dwconv";
    case LayerKind::kLinear:
      return "linear";
    case LayerKind::kGemm:
      return "gemm";
  }
  return "?";
}

int Layer::out_h() const {
  return (in_h + 2 * padding - kernel_h) / stride + 1;
}

int Layer::out_w() const {
  return (in_w + 2 * padding - kernel_w) / stride + 1;
}

void Layer::validate() const {
  AF_CHECK(in_channels > 0 && out_channels > 0,
           "layer '" << name << "': channel counts must be positive");
  AF_CHECK(kernel_h > 0 && kernel_w > 0 && stride > 0 && padding >= 0,
           "layer '" << name << "': bad kernel geometry");
  AF_CHECK(in_h > 0 && in_w > 0, "layer '" << name << "': bad input size");
  AF_CHECK(out_h() > 0 && out_w() > 0,
           "layer '" << name << "': empty output feature map");
  if (kind == LayerKind::kDepthwiseConv) {
    AF_CHECK(in_channels == out_channels,
             "layer '" << name << "': depthwise requires in == out channels");
  }
  if (kind == LayerKind::kLinear) {
    AF_CHECK(kernel_h == 1 && kernel_w == 1 && in_h == 1 && in_w == 1,
             "layer '" << name << "': linear must be 1x1 spatial");
  }
  if (kind == LayerKind::kGemm) {
    AF_CHECK(kernel_h == 1 && kernel_w == 1 && stride == 1 && padding == 0 &&
                 in_w == 1,
             "layer '" << name
                       << "': gemm carries T in in_h and must keep 1x1 "
                          "kernel geometry");
  }
}

std::int64_t Layer::macs() const {
  const std::int64_t pixels =
      static_cast<std::int64_t>(out_h()) * static_cast<std::int64_t>(out_w());
  const std::int64_t per_pixel_per_out =
      static_cast<std::int64_t>(kernel_h) * kernel_w *
      (kind == LayerKind::kDepthwiseConv ? 1 : in_channels);
  return pixels * per_pixel_per_out * out_channels;
}

Layer Layer::conv(std::string name, int in_ch, int out_ch, int kernel,
                  int stride, int padding, int in_h, int in_w) {
  Layer l;
  l.name = std::move(name);
  l.kind = LayerKind::kConv;
  l.in_channels = in_ch;
  l.out_channels = out_ch;
  l.kernel_h = l.kernel_w = kernel;
  l.stride = stride;
  l.padding = padding;
  l.in_h = in_h;
  l.in_w = in_w;
  l.validate();
  return l;
}

Layer Layer::depthwise(std::string name, int channels, int kernel, int stride,
                       int padding, int in_h, int in_w) {
  Layer l;
  l.name = std::move(name);
  l.kind = LayerKind::kDepthwiseConv;
  l.in_channels = channels;
  l.out_channels = channels;
  l.kernel_h = l.kernel_w = kernel;
  l.stride = stride;
  l.padding = padding;
  l.in_h = in_h;
  l.in_w = in_w;
  l.validate();
  return l;
}

Layer Layer::pointwise(std::string name, int in_ch, int out_ch, int in_h,
                       int in_w) {
  return conv(std::move(name), in_ch, out_ch, /*kernel=*/1, /*stride=*/1,
              /*padding=*/0, in_h, in_w);
}

Layer Layer::linear(std::string name, int in_features, int out_features) {
  Layer l;
  l.name = std::move(name);
  l.kind = LayerKind::kLinear;
  l.in_channels = in_features;
  l.out_channels = out_features;
  l.validate();
  return l;
}

Layer Layer::gemm(std::string name, std::int64_t t, std::int64_t n,
                  std::int64_t m) {
  constexpr std::int64_t kMaxDim = std::numeric_limits<int>::max();
  AF_CHECK(t > 0 && n > 0 && m > 0, "layer '" << name
                                              << "': gemm dims must be "
                                                 "positive, got t="
                                              << t << " n=" << n
                                              << " m=" << m);
  AF_CHECK(t <= kMaxDim && n <= kMaxDim && m <= kMaxDim,
           "layer '" << name << "': gemm dim exceeds int range");
  Layer l;
  l.name = std::move(name);
  l.kind = LayerKind::kGemm;
  l.in_channels = static_cast<int>(n);
  l.out_channels = static_cast<int>(m);
  l.in_h = static_cast<int>(t);
  l.validate();
  return l;
}

}  // namespace af::nn
