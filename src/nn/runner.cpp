#include "nn/runner.h"

#include <algorithm>

#include "arch/latency.h"
#include "gemm/tiling.h"
#include "mem/tile_scheduler.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace af::nn {

double ModelReport::arrayflex_avg_power_mw() const {
  return arrayflex_time_ps > 0 ? arrayflex_energy_pj / arrayflex_time_ps * 1e3
                               : 0.0;
}

double ModelReport::conventional_avg_power_mw() const {
  return conventional_time_ps > 0
             ? conventional_energy_pj / conventional_time_ps * 1e3
             : 0.0;
}

std::map<int, int> ModelReport::mode_histogram() const {
  std::map<int, int> hist;
  for (const LayerReport& l : layers) ++hist[l.arrayflex.k];
  return hist;
}

std::map<int, double> ModelReport::power_by_mode_mw() const {
  std::map<int, double> energy_pj;
  std::map<int, double> time_ps;
  for (const LayerReport& l : layers) {
    energy_pj[l.arrayflex.k] += l.arrayflex_power.energy_pj;
    time_ps[l.arrayflex.k] += l.arrayflex_power.time_ps;
  }
  std::map<int, double> out;
  for (const auto& [k, e] : energy_pj) {
    out[k] = time_ps[k] > 0 ? e / time_ps[k] * 1e3 : 0.0;
  }
  return out;
}

arch::EfficiencyComparison ModelReport::totals() const {
  arch::PowerResult af{arrayflex_energy_pj, arrayflex_time_ps};
  arch::PowerResult conv{conventional_energy_pj, conventional_time_ps};
  return arch::compare(af, conv);
}

InferenceRunner::InferenceRunner(std::shared_ptr<engine::Engine> engine)
    : engine_(std::move(engine)) {
  AF_CHECK(engine_ != nullptr, "InferenceRunner needs an engine");
  if (engine_->config().mem.enabled) {
    tiles_ = std::make_unique<mem::TileScheduler>(engine_->config());
  }
}

InferenceRunner::InferenceRunner(const arch::ArrayConfig& config,
                                 const arch::ClockModel& clock,
                                 const arch::EnergyParams& energy,
                                 util::ThreadPool* shared_pool)
    : InferenceRunner(engine::EngineBuilder()
                          .config(config)
                          // Non-owning view: this constructor's legacy
                          // contract is that the caller's clock outlives
                          // the runner.
                          .clock(std::shared_ptr<const arch::ClockModel>(
                              std::shared_ptr<const void>(), &clock))
                          .energy(energy)
                          .shared_pool(shared_pool)
                          .build("analytic")) {}

InferenceRunner::~InferenceRunner() = default;

LayerReport InferenceRunner::evaluate_layer(const Layer& layer) const {
  const arch::PipelineOptimizer& optimizer = engine_->optimizer();
  const arch::SaPowerModel& power = engine_->power();
  LayerReport report;
  report.name = layer.name;
  report.kind = layer.kind;
  report.shape = gemm_shape(layer);
  report.k_hat = optimizer.continuous_k_hat(report.shape);
  // Memoized through the engine's shared cost cache: repeated layers (and
  // repeated inferences of the same model, the serving steady state) pay
  // the Eq. 6 sweep once and answer every repeat from the sweep store.
  report.arrayflex = engine_->best_mode_cached(report.shape);
  report.conventional = optimizer.conventional(report.shape);
  report.arrayflex_power = power.arrayflex(report.shape, report.arrayflex.k);
  report.conventional_power = power.conventional(report.shape);
  if (tiles_ != nullptr) {
    // Same finalization arithmetic as engine::Engine::finalized: uniform
    // per-tile cycles (the closed-form total divides exactly by the tile
    // count), so these fields match what evaluate() would report.
    const std::int64_t compute = arch::total_latency_cycles(
        report.shape, engine_->config(), report.arrayflex.k);
    const std::int64_t tiles = gemm::tile_count(
        report.shape, engine_->config().rows, engine_->config().cols);
    const mem::MemoryPlan plan = tiles_->plan(report.shape, compute / tiles);
    report.dram_bytes = plan.dram_bytes();
    report.stall_cycles = plan.stall_cycles;
    report.spad_peak_bytes = plan.spad_peak_bytes;
  }
  return report;
}

ModelReport InferenceRunner::run(const Model& model) const {
  AF_CHECK(!model.layers.empty(), "model '" << model.name << "' has no layers");
  return run_slice(model, 0, model.layers.size());
}

ModelReport InferenceRunner::run_slice(const Model& model, std::size_t first,
                                       std::size_t count) const {
  AF_CHECK(first <= model.layers.size() &&
               count <= model.layers.size() - first,
           "layer slice [" << first << ", " << first + count << ") out of "
                           << model.layers.size() << " layers");
  ModelReport report;
  report.model_name = model.name;
  const std::int64_t n = static_cast<std::int64_t>(count);
  report.layers.resize(count);

  // Layers are independent; fan them out when the engine carries a pool.
  // evaluate_layer is const and touches only read-only model state, so
  // workers share `this` freely; the aggregation below stays sequential in
  // layer order, making the report identical to a serial run.
  util::ThreadPool::run_n(engine_->pool(), n, [&](std::int64_t i) {
    report.layers[static_cast<std::size_t>(i)] =
        evaluate_layer(model.layers[first + static_cast<std::size_t>(i)]);
  });
  for (const LayerReport& lr : report.layers) {
    report.arrayflex_time_ps += lr.arrayflex.time_ps;
    report.conventional_time_ps += lr.conventional.time_ps;
    report.arrayflex_energy_pj += lr.arrayflex_power.energy_pj;
    report.conventional_energy_pj += lr.conventional_power.energy_pj;
    report.arrayflex_dram_bytes += lr.dram_bytes;
    report.arrayflex_stall_cycles += lr.stall_cycles;
    report.spad_peak_bytes = std::max(report.spad_peak_bytes,
                                      lr.spad_peak_bytes);
  }
  return report;
}

}  // namespace af::nn
