// CNN layer descriptors.
//
// Only what GEMM mapping needs: kernel geometry, channel counts, stride,
// padding and the input spatial size.  Batch size is 1 throughout ("single-
// batch inference", paper Section IV).

#pragma once

#include <cstdint>
#include <string>

namespace af::nn {

enum class LayerKind {
  kConv,           // standard dense convolution
  kDepthwiseConv,  // one filter per channel (MobileNet / ConvNeXt blocks)
  kLinear,         // fully connected
};

const char* layer_kind_name(LayerKind kind);

struct Layer {
  std::string name;
  LayerKind kind = LayerKind::kConv;
  int in_channels = 0;
  int out_channels = 0;
  int kernel_h = 1;
  int kernel_w = 1;
  int stride = 1;
  int padding = 0;
  int in_h = 1;   // input feature-map height (1 for kLinear)
  int in_w = 1;

  int out_h() const;
  int out_w() const;

  // Throws af::Error on inconsistent geometry (e.g. depthwise with
  // in_channels != out_channels).
  void validate() const;

  // MAC count of the layer (useful for reports).
  std::int64_t macs() const;

  // Factory helpers.
  static Layer conv(std::string name, int in_ch, int out_ch, int kernel,
                    int stride, int padding, int in_h, int in_w);
  static Layer depthwise(std::string name, int channels, int kernel,
                         int stride, int padding, int in_h, int in_w);
  static Layer pointwise(std::string name, int in_ch, int out_ch, int in_h,
                         int in_w);
  static Layer linear(std::string name, int in_features, int out_features);
};

}  // namespace af::nn
