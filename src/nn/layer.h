// CNN layer descriptors.
//
// Only what GEMM mapping needs: kernel geometry, channel counts, stride,
// padding and the input spatial size.  Batch size is 1 throughout ("single-
// batch inference", paper Section IV).

#pragma once

#include <cstdint>
#include <string>

namespace af::nn {

enum class LayerKind {
  kConv,           // standard dense convolution
  kDepthwiseConv,  // one filter per channel (MobileNet / ConvNeXt blocks)
  kLinear,         // fully connected
  kGemm,           // generic activation GEMM with explicit T (transformer
                   // phases: QKV/score/context/out-proj/MLP — nn/transformer.h)
};

const char* layer_kind_name(LayerKind kind);

struct Layer {
  std::string name;
  LayerKind kind = LayerKind::kConv;
  int in_channels = 0;
  int out_channels = 0;
  int kernel_h = 1;
  int kernel_w = 1;
  int stride = 1;
  int padding = 0;
  int in_h = 1;   // input feature-map height (1 for kLinear)
  int in_w = 1;

  int out_h() const;
  int out_w() const;

  // Throws af::Error on inconsistent geometry (e.g. depthwise with
  // in_channels != out_channels).
  void validate() const;

  // MAC count of the layer (useful for reports).
  std::int64_t macs() const;

  // Factory helpers.
  static Layer conv(std::string name, int in_ch, int out_ch, int kernel,
                    int stride, int padding, int in_h, int in_w);
  static Layer depthwise(std::string name, int channels, int kernel,
                         int stride, int padding, int in_h, int in_w);
  static Layer pointwise(std::string name, int in_ch, int out_ch, int in_h,
                         int in_w);
  static Layer linear(std::string name, int in_features, int out_features);
  // Generic GEMM layer X(T x M) = A(T x N) x B(N x M): `t` activation rows
  // against an N x M stationary weight (or KV-cache) matrix.  The row count
  // rides in_h (in_w stays 1), so out_h()*out_w() == T and the kConv macs
  // arithmetic holds unchanged.
  static Layer gemm(std::string name, std::int64_t t, std::int64_t n,
                    std::int64_t m);
};

}  // namespace af::nn
