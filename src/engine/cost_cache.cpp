#include "engine/cost_cache.h"

#include <utility>

namespace af::engine {
namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

CostCache::CostCache() = default;

std::size_t CostCache::KeyHash::operator()(const Key& key) const {
  std::uint64_t h = key.fingerprint;
  h = splitmix64(h ^ static_cast<std::uint64_t>(key.m));
  h = splitmix64(h ^ static_cast<std::uint64_t>(key.n));
  h = splitmix64(h ^ static_cast<std::uint64_t>(key.t));
  h = splitmix64(h ^ static_cast<std::uint64_t>(key.k));
  h = splitmix64(h ^ static_cast<std::uint64_t>(key.occupancy));
  return static_cast<std::size_t>(h);
}

CostCache::Shard& CostCache::shard_for(const Key& key) const {
  return shards_[KeyHash{}(key) % kShards];
}

std::optional<CostEstimate> CostCache::find(std::uint64_t fingerprint,
                                            const gemm::GemmShape& shape,
                                            int k,
                                            std::int64_t occupancy) const {
  const Key key{fingerprint, shape.m, shape.n, shape.t, k, occupancy};
  Shard& shard = shard_for(key);
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.estimates.find(key);
    if (it != shard.estimates.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return std::nullopt;
}

void CostCache::insert(std::uint64_t fingerprint,
                       const gemm::GemmShape& shape, int k,
                       std::int64_t occupancy, const CostEstimate& estimate) {
  const Key key{fingerprint, shape.m, shape.n, shape.t, k, occupancy};
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.estimates.try_emplace(key, estimate);
}

std::shared_ptr<const std::vector<arch::ModeSweepEntry>> CostCache::find_sweep(
    std::uint64_t fingerprint, const gemm::GemmShape& shape) const {
  const Key key{fingerprint, shape.m, shape.n, shape.t, /*k=*/0,
                kDenseOccupancy};
  Shard& shard = shard_for(key);
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.sweeps.find(key);
    if (it != shard.sweeps.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

void CostCache::insert_sweep(
    std::uint64_t fingerprint, const gemm::GemmShape& shape,
    std::shared_ptr<const std::vector<arch::ModeSweepEntry>> sweep) {
  const Key key{fingerprint, shape.m, shape.n, shape.t, /*k=*/0,
                kDenseOccupancy};
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.sweeps.try_emplace(key, std::move(sweep));
}

std::int64_t CostCache::hits() const {
  return hits_.load(std::memory_order_relaxed);
}

std::int64_t CostCache::misses() const {
  return misses_.load(std::memory_order_relaxed);
}

std::int64_t CostCache::size() const {
  std::int64_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total += static_cast<std::int64_t>(shard.estimates.size() +
                                       shard.sweeps.size());
  }
  return total;
}

void CostCache::clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.estimates.clear();
    shard.sweeps.clear();
  }
}

}  // namespace af::engine
