// Unified execution API: every way this repo can answer "what does GEMM X
// cost (and produce) in pipeline mode k" behind one facade.
//
// Before this layer existed there were three disjoint entry points — the
// cycle-accurate arch::SystolicArray (exact outputs + measured
// ActivityCounters), the closed-form models in arch/latency.h /
// arch/activity.h / arch/power_model.h (what the optimizer and the
// inference runner consume), and the gate-level compiled engine — and every
// bench/example/server re-wired config + clock + power by hand.  An
// engine::Engine bundles that wiring once and exposes two calls:
//
//   run_gemm(GemmRequest)        -> RunResult    execute (or price) one GEMM
//   evaluate(GemmShape, k)       -> CostEstimate cost of a shape in mode k
//
// Three backends ship (see engine::make / registered_backends):
//
//   "cycle"    CycleAccurateEngine — wraps arch::SystolicArray; outputs and
//              counters are MEASURED cycle by cycle.  Ground truth, slow.
//   "chaos"    ChaosEngine — deterministic fault injection wrapped around
//              any other backend (engine/chaos_engine.h): seeded
//              throw-on-run, latency spikes, wrong-cycle results.  The
//              serving layer's failure-path test rig; injects nothing by
//              default.
//   "analytic" AnalyticEngine — closed-form latency/activity/power (the
//              equations pinned cycle-for-cycle and counter-for-counter
//              against the simulator by tests/arch_equivalence_test.cpp and
//              tests/engine_test.cpp); the output matrix is computed via
//              gemm::reference_gemm ONLY when the request asks for it.
//              Orders of magnitude faster, bit-identical outputs, and —
//              because the closed forms are exact — identical cycles,
//              counters and energy too.
//
// The contract that makes the fidelity knob safe: for every supported
// (shape, k) the two backends return EXACTLY equal CostEstimates and
// bit-equal outputs.  serve::Server exploits it by serving analytic cost
// traffic at high throughput while replaying a sampled audit fraction on
// the cycle-accurate backend and cross-checking (see ServerOptions).
//
// Pricing: CostEstimate::energy_pj is the utilization-aware model
// (SaPowerModel::from_counters) applied to the estimate's ActivityCounters
// at Tclock(k) — fill/drain bubbles burn clock but no datapath energy.
// The steady-state per-mode pricing (the paper's Fig. 9 methodology) stays
// available through power().

#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "arch/array.h"
#include "arch/clocking.h"
#include "arch/config.h"
#include "arch/optimizer.h"
#include "arch/power_model.h"
#include "gemm/matrix.h"
#include "gemm/reference.h"

namespace af::util {
class ThreadPool;
}

namespace af::arch {
class TileOccupancy;
}

namespace af::mem {
class TileScheduler;
}

namespace af::engine {

class CostCache;
class EngineBuilder;

// One GEMM to execute: X(T x M) = A(T x N) x B(N x M).  Non-owning views;
// both matrices must outlive the run_gemm call.
struct GemmRequest {
  const gemm::Mat32* a = nullptr;  // activations, T x N (required)
  const gemm::Mat32* b = nullptr;  // weights, N x M (required)
  // Pipeline-collapse mode; 0 lets the engine pick the Eq. 6 argmin (mode
  // PLANNING is closed-form on every backend — fidelity applies to
  // execution, not to the optimizer).
  int k = 0;
  // When false the engine skips producing the output matrix: the analytic
  // backend then answers from closed forms alone (no arithmetic over the
  // operands at all), which is what makes cost-estimation traffic orders of
  // magnitude cheaper than simulation.  The cycle backend always computes
  // the product internally (that IS the measurement); the flag only elides
  // returning it.
  bool want_output = true;
  // Block-sparse execution (the paper's Section V future work,
  // arch/sparse.h): R x C weight tiles of B that are entirely zero are
  // skipped — they cost neither preload nor streaming cycles.  Outputs are
  // bit-identical to the dense run (a zero tile contributes zero to every
  // accumulator); cycles, counters and energy drop with the occupancy.
  // The cycle backend routes through SystolicArray::run_gemm_sparse; the
  // analytic backend scans B's occupancy and prices the nnz tiles via
  // arch::sparse_total_latency_cycles — still exactly equal (pinned by
  // tests/engine_test.cpp).
  bool sparse = false;
};

// Unified cost of one GEMM (or shape) under a given clock + energy model.
struct CostEstimate {
  int k = 1;                      // mode the cost describes
  // Eq. 4 total (preload + streaming); with the memory hierarchy enabled
  // (arch::MemoryConfig) this is the full makespan, compute + stalls.
  std::int64_t cycles = 0;
  double period_ps = 0.0;         // Tclock(k), Eq. 5
  double time_ps = 0.0;           // cycles x period (Eq. 6)
  // Utilization-aware pricing of `activity`, plus EnergyParams::
  // e_dram_byte_fj per byte of `dram_bytes` when the memory model is on.
  double energy_pj = 0.0;
  arch::ActivityCounters activity;
  // Memory-hierarchy terms (mem::TileScheduler; all zero when the config's
  // MemoryConfig is disabled — magic memory).
  std::int64_t stall_cycles = 0;     // cycles the array waited on DMA
  std::int64_t dram_bytes = 0;       // DRAM traffic, reads + writes
  std::int64_t spad_peak_bytes = 0;  // scratchpad high-water footprint
};

// Exact equality — the audit path's cross-check and the bit-exact
// contract between backends.  Doubles compare exactly on purpose: both
// backends must execute the SAME arithmetic on the SAME integers, not
// merely land close.
bool exactly_equal(const arch::ActivityCounters& a,
                   const arch::ActivityCounters& b);
bool exactly_equal(const CostEstimate& a, const CostEstimate& b);

struct RunResult {
  // Present iff the request asked for the output.
  std::optional<gemm::Mat64> out;
  CostEstimate cost;
  // True when `cost` was measured by cycle-accurate simulation; false when
  // it came from the closed forms.
  bool measured = false;
};

// Abstract execution engine.  Thread safety: run_gemm and the const cost
// queries may be called concurrently from many threads (the cycle backend's
// SystolicArray keeps all mutable run state on the stack; the analytic
// backend is stateless past construction).
class Engine {
 public:
  virtual ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Registry key of the backend ("cycle", "analytic", ...).
  virtual const std::string& name() const = 0;

  // True when run_gemm/evaluate MEASURE (cycle-accurate) rather than
  // predict.  Both fidelities return the same numbers — that equivalence is
  // test-pinned — but only a measuring backend can catch a model bug.
  virtual bool measures() const = 0;

  // Execute one GEMM: output (optional), exact cycles, ActivityCounters,
  // and energy/time under this engine's clock + energy params.
  virtual RunResult run_gemm(const GemmRequest& request) = 0;

  // Cost of a full tiled GEMM of `shape` in mode k (k = 0 picks the Eq. 6
  // argmin).  The cycle backend measures this by streaming zero operands
  // through the simulator — counters are data-independent — so it is as
  // expensive as a real run; the analytic backend answers instantly.
  virtual CostEstimate evaluate(const gemm::GemmShape& shape, int k = 0) = 0;

  // Asymmetric-collapse cost of ONE T x R by R x C tile (k_v | R, k_h | C;
  // see arch/array.h run_tile_asym).  Priced at period_ps(k_v): the
  // vertical reduction chain dominates the clock, horizontal collapse
  // "only affects the delay marginally" (paper Section III-A).
  virtual CostEstimate evaluate_tile_asym(std::int64_t t, int k_v,
                                          int k_h) = 0;

  // Cost of a BLOCK-SPARSE GEMM of `shape` given the weight matrix's tile
  // occupancy alone — no weight matrix needed, so pruned-layer cost sweeps
  // can price designs that exist only as sparsity statistics (pair with
  // arch::TileOccupancy::synthetic).  Exactly what run_gemm with
  // GemmRequest::sparse over a matrix of that occupancy costs (pinned by
  // tests/engine_test.cpp); the occupancy's tile grid must match `shape`
  // under this engine's R x C array.  k = 0 picks the Eq. 6 argmin.
  virtual CostEstimate evaluate_sparse(const gemm::GemmShape& shape, int k,
                                       const arch::TileOccupancy& occupancy)
      = 0;

  // Cost of MANY shapes in one call — the serving hot path's batched
  // entry point (one virtual dispatch, one cache pass, no per-element
  // promise/queue machinery above it).  Element i is EXACTLY equal to
  // evaluate(shapes[i], k) — pinned by tests/cost_path_test.cpp on every
  // backend.  The base implementation loops evaluate() through the cost
  // cache; the analytic backend overrides it with a vectorized SoA sweep
  // of the closed forms (engine/analytic_engine.cpp).
  virtual std::vector<CostEstimate> evaluate_batch(
      std::span<const gemm::GemmShape> shapes, int k = 0);

  // Memoized evaluate(): answers from the cost cache keyed by
  // (cost_fingerprint, shape, k) and falls back to the virtual evaluate()
  // on a miss — so the cached result is exactly the uncached one by
  // construction, on the cycle backend as on the analytic one.  k = 0
  // resolves the Eq. 6 argmin through the cached optimizer sweep first.
  CostEstimate evaluate_cached(const gemm::GemmShape& shape, int k = 0);

  // Memoized evaluate_sparse(): with magic memory a block-sparse cost is a
  // pure function of (shape, k, nnz) — L(k) * nnz cycles, per-tile
  // counters * nnz — so the cache keys on the occupancy's non-zero tile
  // count.  With the memory hierarchy enabled the DMA plan depends on
  // WHICH tiles are occupied, so the call bypasses the cache entirely.
  CostEstimate evaluate_sparse_cached(const gemm::GemmShape& shape, int k,
                                      const arch::TileOccupancy& occupancy);

  // Memoized compute-only mode projections (PipelineOptimizer::sweep /
  // best_mode): ONE optimizer pass per distinct shape instead of one per
  // admission.  The admission argmin, the sticky reconfig policy and the
  // inference runner all share these entries.  Thread-safe (the cache is
  // internally synchronized); the returned sweep is immutable and shared.
  std::shared_ptr<const std::vector<arch::ModeSweepEntry>> sweep_cached(
      const gemm::GemmShape& shape) const;
  arch::ModeDecision best_mode_cached(const gemm::GemmShape& shape) const;

  // Eq. 6 argmin over the supported modes, via this backend's evaluate()
  // (memoized through the cost cache).
  CostEstimate best(const gemm::GemmShape& shape);

  // 64-bit structural key of everything a CostEstimate depends on: array
  // geometry, bit widths, supported modes, memory knobs, per-mode clock
  // periods and all EnergyParams.  Two engines agree on a fingerprint iff
  // their cost arithmetic is identical — which is what lets them share one
  // CostCache with no epoch-based invalidation (see engine/cost_cache.h).
  std::uint64_t cost_fingerprint() const { return fingerprint_; }

  // The memoization store behind evaluate_cached / sweep_cached /
  // evaluate_batch.  Private per engine by default; inject a shared one
  // via EngineBuilder::cost_cache (the serve::Server path: admission,
  // reconfig and every shard engine of a backend share entries).
  const std::shared_ptr<CostCache>& cost_cache() const { return cache_; }

  // --- the wiring the engine owns (previously duplicated per call site) ---
  const arch::ArrayConfig& config() const { return config_; }
  const arch::ClockModel& clock() const { return *clock_; }
  const arch::EnergyParams& energy_params() const { return energy_; }
  const arch::SaPowerModel& power() const { return power_; }
  const arch::PipelineOptimizer& optimizer() const { return optimizer_; }
  // Worker pool for host-side parallelism (nullptr = serial): the private
  // pool when the config's SimOptions asked for threads, or the injected
  // shared pool (see EngineBuilder::shared_pool and the shared-pool
  // contract in arch/array.h).
  util::ThreadPool* pool() const;

 protected:
  Engine(const arch::ArrayConfig& config,
         std::shared_ptr<const arch::ClockModel> clock,
         const arch::EnergyParams& energy, util::ThreadPool* shared_pool);

  // Closed-form CostEstimate (shared by the analytic backend and by the
  // audit cross-checks): Eq. 4 cycles + predicted counters + from_counters
  // pricing.  Requires config().supports(k).
  CostEstimate analytic_estimate(const gemm::GemmShape& shape, int k) const;
  CostEstimate analytic_tile_asym_estimate(std::int64_t t, int k_v,
                                           int k_h) const;
  // Closed-form cost of a block-sparse GEMM: per-tile counters scaled by
  // the occupancy's non-zero tile count, cycles via
  // arch::sparse_total_latency_cycles — exactly what run_gemm_sparse
  // measures (skipped tiles contribute nothing to any counter).
  CostEstimate analytic_sparse_estimate(
      const gemm::GemmShape& shape, int k,
      const arch::TileOccupancy& occupancy) const;
  // Shared evaluate_sparse precondition: the occupancy's tile grid must be
  // exactly `shape`'s weight matrix tiled by this engine's R x C array.
  void check_occupancy(const gemm::GemmShape& shape,
                       const arch::TileOccupancy& occupancy) const;
  // Price measured (or predicted) counters exactly the way every consumer
  // used to: utilization-aware, ArrayFlex hardware, Tclock(k).  Magic
  // memory only — evaluate_tile_asym's single-tile probes stay on this
  // path; whole-GEMM costs go through finalized() below.
  CostEstimate priced(const arch::TileRunStats& stats, int k) const;
  // The one finalization both backends share for whole-GEMM costs: price
  // `compute_cycles` of array work plus, when the config's MemoryConfig is
  // enabled, the mem::TileScheduler re-timing of the tile grid's data
  // movement (stalls burn clock and leakage; DRAM traffic adds
  // EnergyParams::e_dram_byte_fj per byte).  Because the analytic and
  // cycle backends feed EXACTLY equal compute cycles in (the closed forms
  // are pinned against the simulator), their memory-aware estimates are
  // exactly equal by construction.  With the model disabled this is
  // byte-for-byte the old pricing.
  CostEstimate finalized(const gemm::GemmShape& shape, int k,
                         std::int64_t compute_cycles,
                         const arch::ActivityCounters& activity,
                         const arch::TileOccupancy* occupancy = nullptr) const;

  int resolve_mode(const gemm::GemmShape& shape, int k) const;

 private:
  friend std::shared_ptr<Engine> make(const std::string&,
                                      const EngineBuilder&);

  // Swap in a (typically shared) memoization store.  Called by the factory
  // right after construction, before the engine is published to other
  // threads — not safe once cost queries are in flight.
  void set_cost_cache(std::shared_ptr<CostCache> cache);

  arch::ArrayConfig config_;
  std::shared_ptr<const arch::ClockModel> clock_;  // owned: no dangling refs
  arch::EnergyParams energy_;
  arch::SaPowerModel power_;
  arch::PipelineOptimizer optimizer_;
  // Tile-traffic scheduler, constructed iff config().mem.enabled.
  std::unique_ptr<mem::TileScheduler> tiles_;
  std::unique_ptr<util::ThreadPool> pool_;  // private, when threads requested
  util::ThreadPool* external_pool_ = nullptr;
  std::shared_ptr<CostCache> cache_;  // never null past construction
  std::uint64_t fingerprint_ = 0;
};

// Fault-injection knobs of the "chaos" backend (engine/chaos_engine.h), a
// wrapper around any other registered backend.  Every failure draw is
// seeded and counter-based — a given construction replays the exact same
// fault sequence, which is what makes chaos stress tests reproducible.
// The defaults inject NOTHING: a bare `make("chaos", builder)` is a
// transparent analytic wrapper (so registry-wide smoke tests stay green);
// tests and harnesses turn on faults via EngineBuilder::chaos.
struct ChaosOptions {
  std::string inner = "analytic";  // wrapped backend (any non-chaos key)
  std::uint64_t seed = 0x5eedULL;
  // Deterministic throw-on-run: every Nth run_gemm throws af::Error with
  // ErrorCode::kEngineFault (0 disables).
  int throw_every_n = 0;
  // Seeded-random injections, probability per run_gemm in [0, 1]:
  double throw_rate = 0.0;       // throw kEngineFault
  double wrong_cost_rate = 0.0;  // perturb the returned cycle count (+1)
  double delay_rate = 0.0;       // sleep delay_ms before executing
  double delay_ms = 0.0;         // latency-spike duration
};

// Fluent owner of the config/clock/energy/thread-pool wiring.  Every field
// has the repo-wide default (128x128 {1,2,4} array, the paper's DATE-23
// calibrated clock, generic28nm energy, serial) so a one-liner works:
//
//   auto eng = engine::EngineBuilder().square(16).build("analytic");
//
// build() may be called repeatedly — e.g. once per backend to get a
// serving engine and its auditor over identical wiring.
class EngineBuilder {
 public:
  EngineBuilder();

  EngineBuilder& config(arch::ArrayConfig config);
  EngineBuilder& square(int side);                    // keeps modes {1,2,4}
  EngineBuilder& modes(std::vector<int> supported_k);
  // The engine shares ownership; pass CalibratedClockModel::date23() etc.
  EngineBuilder& clock(std::shared_ptr<const arch::ClockModel> clock);
  EngineBuilder& energy(const arch::EnergyParams& params);
  // SimOptions::num_threads: 1 serial (default), 0 all hardware threads.
  EngineBuilder& threads(int num_threads);
  // Inject ONE pool shared across components instead of a private pool per
  // engine (the serve::Server path; shared-pool contract in arch/array.h).
  // Overrides threads() for pool construction; must outlive the engine.
  EngineBuilder& shared_pool(util::ThreadPool* pool);
  // Fault-injection knobs consumed only by build("chaos"); other backends
  // ignore them.
  EngineBuilder& chaos(const ChaosOptions& options);
  // Inject ONE CostCache shared across engines instead of a private cache
  // per engine — the serve::Server path: admission, reconfig and every
  // shard engine of a backend hit the same entries.  Safe across engines
  // with DIFFERENT wiring too (keys carry each engine's cost fingerprint).
  EngineBuilder& cost_cache(std::shared_ptr<CostCache> cache);

  // Construct the backend registered under `backend` ("analytic", "cycle").
  // Throws af::Error for unknown names, listing the registry.
  std::shared_ptr<Engine> build(const std::string& backend) const;

  // Read-only views of the accumulated wiring (used by the factory's
  // backend creators and by call sites that mirror an engine's setup).
  const arch::ArrayConfig& peek_config() const { return config_; }
  const std::shared_ptr<const arch::ClockModel>& peek_clock() const {
    return clock_;
  }
  const arch::EnergyParams& peek_energy() const { return energy_; }
  util::ThreadPool* peek_shared_pool() const { return shared_pool_; }
  const ChaosOptions& peek_chaos() const { return chaos_; }
  const std::shared_ptr<CostCache>& peek_cost_cache() const {
    return cost_cache_;
  }

 private:
  arch::ArrayConfig config_;
  std::shared_ptr<const arch::ClockModel> clock_;
  arch::EnergyParams energy_;
  util::ThreadPool* shared_pool_ = nullptr;
  ChaosOptions chaos_;
  std::shared_ptr<CostCache> cost_cache_;
};

// String-keyed factory — the one place backend names resolve.  The names
// returned by registered_backends() are a public contract: the README's
// "Execution engines" table must list exactly these (CI diffs the two).
std::shared_ptr<Engine> make(const std::string& backend,
                             const EngineBuilder& builder = EngineBuilder());
std::vector<std::string> registered_backends();
// Allocation-free membership probe — admission-path validation (the
// serving layer checks per-request overrides on every submit).
bool is_registered(const std::string& backend);
// The registry keys quoted and comma-joined ('"analytic", "cycle"') — the
// one formatter behind every unknown-backend error message.
std::string registered_backend_list();
// One-line human description per backend (the README matrix source).
std::string backend_description(const std::string& backend);

}  // namespace af::engine
