// Sharded, read-mostly memoization of cost-query results behind the
// engine:: facade — the serving hot path's answer to a tiny working set.
//
// On cost-only analytic traffic the closed forms (Eqs. 3-6) are so cheap
// that RE-DERIVING them per request — a fresh per-mode argmin at
// admission, a fresh sweep for the sticky reconfig policy, a fresh
// finalization per evaluate() — dominates wall time, and real streams
// (transformer decode, design-space sweeps, per-layer CNN lowering) hit a
// handful of distinct shapes over and over.  CostCache stores both
// artifacts the path needs:
//
//   estimates  (fingerprint, shape, k, occupancy) -> CostEstimate
//              The full finalized estimate — memory-aware re-timing and
//              DRAM pricing included.  `occupancy` is kDenseOccupancy for
//              dense queries and the non-zero tile count for block-sparse
//              ones (with the memory model OFF a sparse estimate is a pure
//              function of nnz: L(k) * nnz cycles, per-tile counters * nnz
//              — see arch/sparse.h.  With the model ON the DMA plan
//              depends on WHICH tiles are occupied, so sparse queries
//              bypass the cache entirely; Engine enforces that).
//
//   sweeps     (fingerprint, shape) -> vector<ModeSweepEntry>
//              The optimizer's compute-only per-mode projection (Eq. 6
//              argmin inputs).  Cached separately from estimates because
//              with the memory hierarchy enabled the finalized time
//              includes DMA stalls while mode SELECTION deliberately does
//              not — the two disagree by design and must not share entries.
//
// Invalidation is structural, not epochal: every key carries the owning
// engine's 64-bit cost fingerprint (geometry + supported modes + memory
// knobs + per-mode clock periods + all EnergyParams), so an engine built
// over different wiring can share the same cache object and never read a
// stale entry — changed config or energy params simply hash to keys nobody
// else writes.  clear() exists for tests and explicit resets.
//
// Thread safety: fully internally synchronized.  Keys hash across
// `kShards` independent mutex-guarded maps so concurrent admission threads
// (the contended-submit hot path) rarely touch the same lock; hit/miss
// counters are relaxed atomics.

#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "arch/optimizer.h"
#include "engine/engine.h"
#include "gemm/reference.h"

namespace af::engine {

class CostCache {
 public:
  // Occupancy token of a dense query (sparse tokens are nnz >= 0, so the
  // two can never collide).
  static constexpr std::int64_t kDenseOccupancy = -1;

  CostCache();

  CostCache(const CostCache&) = delete;
  CostCache& operator=(const CostCache&) = delete;

  // Estimate store.  find() counts a hit or a miss; insert() is
  // first-writer-wins (concurrent misses compute identical values, so
  // dropping the second write is harmless).
  std::optional<CostEstimate> find(std::uint64_t fingerprint,
                                   const gemm::GemmShape& shape, int k,
                                   std::int64_t occupancy) const;
  void insert(std::uint64_t fingerprint, const gemm::GemmShape& shape, int k,
              std::int64_t occupancy, const CostEstimate& estimate);

  // Sweep store (compute-only mode projections, winner flagged).  Values
  // are shared_ptr so a hit is a refcount bump, not a vector copy.
  std::shared_ptr<const std::vector<arch::ModeSweepEntry>> find_sweep(
      std::uint64_t fingerprint, const gemm::GemmShape& shape) const;
  void insert_sweep(
      std::uint64_t fingerprint, const gemm::GemmShape& shape,
      std::shared_ptr<const std::vector<arch::ModeSweepEntry>> sweep);

  // Cumulative lookup counters across both stores (relaxed; serving stats).
  std::int64_t hits() const;
  std::int64_t misses() const;

  // Entries across both stores (test introspection).
  std::int64_t size() const;

  // Drop every entry (counters keep running).
  void clear();

 private:
  struct Key {
    std::uint64_t fingerprint = 0;
    std::int64_t m = 0;
    std::int64_t n = 0;
    std::int64_t t = 0;
    int k = 0;  // 0 marks a sweep entry (real modes are >= 1)
    std::int64_t occupancy = kDenseOccupancy;

    bool operator==(const Key&) const = default;
  };

  struct KeyHash {
    std::size_t operator()(const Key& key) const;
  };

  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<Key, CostEstimate, KeyHash> estimates;
    std::unordered_map<Key, std::shared_ptr<const std::vector<arch::ModeSweepEntry>>,
                       KeyHash>
        sweeps;
  };

  static constexpr std::size_t kShards = 16;

  Shard& shard_for(const Key& key) const;

  mutable std::array<Shard, kShards> shards_;
  mutable std::atomic<std::int64_t> hits_{0};
  mutable std::atomic<std::int64_t> misses_{0};
};

}  // namespace af::engine
