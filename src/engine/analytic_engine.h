// "analytic" backend: closed-form latency (Eqs. 1-4), activity
// (arch/activity.h) and utilization-aware power behind the engine::Engine
// facade.  The closed forms are pinned cycle-for-cycle and
// counter-for-counter against the cycle-accurate simulator
// (tests/arch_equivalence_test.cpp, tests/engine_test.cpp), so this
// backend's CostEstimates are exactly the numbers the "cycle" backend
// measures — at a tiny fraction of the cost.  The output matrix is
// computed via gemm::reference_gemm only when the request asks for it;
// cost-only traffic never touches the operands.

#pragma once

#include "engine/engine.h"

namespace af::engine {

class AnalyticEngine final : public Engine {
 public:
  AnalyticEngine(const arch::ArrayConfig& config,
                 std::shared_ptr<const arch::ClockModel> clock,
                 const arch::EnergyParams& energy,
                 util::ThreadPool* shared_pool);

  const std::string& name() const override;
  bool measures() const override { return false; }

  RunResult run_gemm(const GemmRequest& request) override;
  CostEstimate evaluate(const gemm::GemmShape& shape, int k = 0) override;
  // Vectorized batch path: the Eq. 3/4 integer closed forms and the Eq. 6
  // argmin run over contiguous SoA arrays (one branch-free inner loop per
  // mode, no per-element virtual dispatch); only cache misses pay the full
  // per-element finalization.  Element i is EXACTLY equal to
  // evaluate(shapes[i], k) — the SoA loops execute the same integer and
  // double arithmetic as arch::total_latency_cycles / absolute_time_ps.
  std::vector<CostEstimate> evaluate_batch(
      std::span<const gemm::GemmShape> shapes, int k = 0) override;
  CostEstimate evaluate_tile_asym(std::int64_t t, int k_v, int k_h) override;
  CostEstimate evaluate_sparse(const gemm::GemmShape& shape, int k,
                               const arch::TileOccupancy& occupancy) override;
};

}  // namespace af::engine
