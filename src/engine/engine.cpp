#include "engine/engine.h"

#include <bit>
#include <limits>
#include <map>
#include <utility>

#include "arch/activity.h"
#include "arch/latency.h"
#include "arch/sparse.h"
#include "engine/analytic_engine.h"
#include "engine/chaos_engine.h"
#include "engine/cost_cache.h"
#include "engine/cycle_engine.h"
#include "gemm/tiling.h"
#include "mem/tile_scheduler.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace af::engine {
namespace {

std::uint64_t fingerprint_mix(std::uint64_t h, std::uint64_t v) {
  // splitmix64 over the running hash — cheap, and every input bit reaches
  // every output bit, so near-identical configs never collide in practice.
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

std::uint64_t fingerprint_mix(std::uint64_t h, double v) {
  // Hash the exact bit pattern: cost equality is exact double equality, so
  // the invalidation key must distinguish exactly what the arithmetic does.
  return fingerprint_mix(h, std::bit_cast<std::uint64_t>(v));
}

// Structural identity of an engine's cost arithmetic — see
// Engine::cost_fingerprint().  Computed once at construction.
std::uint64_t compute_cost_fingerprint(const arch::ArrayConfig& config,
                                       const arch::ClockModel& clock,
                                       const arch::EnergyParams& energy) {
  std::uint64_t h = 0x636f7374ULL;  // "cost"
  h = fingerprint_mix(h, static_cast<std::uint64_t>(config.rows));
  h = fingerprint_mix(h, static_cast<std::uint64_t>(config.cols));
  h = fingerprint_mix(h, static_cast<std::uint64_t>(config.input_bits));
  h = fingerprint_mix(h, static_cast<std::uint64_t>(config.acc_bits));
  h = fingerprint_mix(h, static_cast<std::uint64_t>(config.supported_k.size()));
  for (const int k : config.supported_k) {
    h = fingerprint_mix(h, static_cast<std::uint64_t>(k));
    h = fingerprint_mix(h, clock.period_ps(k));
  }
  h = fingerprint_mix(h, clock.conventional_period_ps());
  h = fingerprint_mix(h, static_cast<std::uint64_t>(config.mem.enabled));
  h = fingerprint_mix(h, static_cast<std::uint64_t>(config.mem.spad_bytes));
  h = fingerprint_mix(h,
                      static_cast<std::uint64_t>(config.mem.dram_bytes_per_cycle));
  h = fingerprint_mix(h,
                      static_cast<std::uint64_t>(config.mem.dram_latency_cycles));
  h = fingerprint_mix(h, static_cast<std::uint64_t>(config.mem.reuse));
  h = fingerprint_mix(h, energy.e_mult_fj);
  h = fingerprint_mix(h, energy.e_csa_fj);
  h = fingerprint_mix(h, energy.e_bypass_mux_fj);
  h = fingerprint_mix(h, energy.e_cpa_fj);
  h = fingerprint_mix(h, energy.e_reg_bit_fj);
  h = fingerprint_mix(h, energy.e_acc_fj);
  h = fingerprint_mix(h, energy.e_clk_bit_fj);
  h = fingerprint_mix(h, energy.clock_trunk_fraction);
  h = fingerprint_mix(h, energy.clock_gate_efficiency);
  h = fingerprint_mix(h, energy.glitch_per_stage);
  h = fingerprint_mix(h, energy.leak_mw_per_pe);
  h = fingerprint_mix(h, energy.e_dram_byte_fj);
  return h;
}

}  // namespace

bool exactly_equal(const arch::ActivityCounters& a,
                   const arch::ActivityCounters& b) {
  // Defaulted member-wise ==: a counter added to ActivityCounters joins
  // the audit cross-check automatically instead of silently escaping it.
  return a == b;
}

bool exactly_equal(const CostEstimate& a, const CostEstimate& b) {
  // Doubles compare exactly on purpose: both backends must execute the SAME
  // arithmetic on the SAME integers, not merely land close.
  return a.k == b.k && a.cycles == b.cycles && a.period_ps == b.period_ps &&
         a.time_ps == b.time_ps && a.energy_pj == b.energy_pj &&
         a.stall_cycles == b.stall_cycles && a.dram_bytes == b.dram_bytes &&
         a.spad_peak_bytes == b.spad_peak_bytes &&
         exactly_equal(a.activity, b.activity);
}

Engine::Engine(const arch::ArrayConfig& config,
               std::shared_ptr<const arch::ClockModel> clock,
               const arch::EnergyParams& energy, util::ThreadPool* shared_pool)
    : config_(config),
      clock_(std::move(clock)),
      energy_(energy),
      power_(config, *clock_, energy),
      optimizer_(config, *clock_),
      external_pool_(shared_pool) {
  AF_CHECK(clock_ != nullptr, "engine needs a clock model");
  config_.validate();
  if (config_.mem.enabled) {
    tiles_ = std::make_unique<mem::TileScheduler>(config_);
  }
  if (external_pool_ == nullptr) {
    const int threads =
        util::ThreadPool::resolve_num_threads(config_.sim.num_threads);
    if (threads > 1) pool_ = std::make_unique<util::ThreadPool>(threads);
  }
  optimizer_.set_thread_pool(pool());
  // Private memoization store by default; the factory swaps in the
  // builder's shared cache right after construction (set_cost_cache).
  cache_ = std::make_shared<CostCache>();
  fingerprint_ = compute_cost_fingerprint(config_, *clock_, energy_);
}

void Engine::set_cost_cache(std::shared_ptr<CostCache> cache) {
  AF_CHECK(cache != nullptr, "set_cost_cache requires a cache");
  cache_ = std::move(cache);
}

Engine::~Engine() = default;

util::ThreadPool* Engine::pool() const {
  return external_pool_ != nullptr ? external_pool_ : pool_.get();
}

int Engine::resolve_mode(const gemm::GemmShape& shape, int k) const {
  // The Eq. 6 argmin goes through the cached optimizer sweep: one
  // projection per distinct shape instead of one per call — the fix for
  // the per-admission argmin re-deriving every mode per request.
  if (k == 0) return best_mode_cached(shape).k;
  AF_CHECK(config_.supports(k), "mode k=" << k << " not supported by "
                                          << config_.to_string());
  return k;
}

CostEstimate Engine::analytic_estimate(const gemm::GemmShape& shape,
                                       int k) const {
  return finalized(shape, k, arch::total_latency_cycles(shape, config_, k),
                   arch::predict_gemm_activity(shape, config_, k));
}

CostEstimate Engine::analytic_tile_asym_estimate(std::int64_t t, int k_v,
                                                 int k_h) const {
  CostEstimate est;
  est.k = k_v;  // the vertical chain sets the clock (paper Section III-A)
  est.cycles =
      arch::tile_latency_cycles_asym(config_.rows, config_.cols, t, k_v, k_h);
  est.activity = arch::predict_tile_activity_asym(config_, t, k_v, k_h);
  est.period_ps = clock_->period_ps(k_v);
  const arch::PowerResult priced =
      power_.from_counters(est.activity, est.cycles, est.period_ps,
                           /*arrayflex_hardware=*/true, k_v);
  est.time_ps = priced.time_ps;
  est.energy_pj = priced.energy_pj;
  return est;
}

CostEstimate Engine::analytic_sparse_estimate(
    const gemm::GemmShape& shape, int k,
    const arch::TileOccupancy& occupancy) const {
  // Every executed tile is zero-padded to the full R x C geometry with the
  // full T, so the per-tile counters are identical across tiles and the
  // sparse total is simply per-tile x nnz (the dense model's `x tiles`,
  // with the skipped tiles gone).
  const arch::ActivityCounters per =
      arch::predict_tile_activity(config_, shape.t, k);
  const std::int64_t nnz = occupancy.nonzero_tiles();
  arch::ActivityCounters activity;
  activity.mult_ops = per.mult_ops * nnz;
  activity.csa_ops = per.csa_ops * nnz;
  activity.cpa_ops = per.cpa_ops * nnz;
  activity.hreg_writes = per.hreg_writes * nnz;
  activity.vreg_writes = per.vreg_writes * nnz;
  activity.wreg_writes = per.wreg_writes * nnz;
  activity.acc_writes = per.acc_writes * nnz;
  activity.hreg_bypassed_bit_cycles = per.hreg_bypassed_bit_cycles * nnz;
  activity.vreg_bypassed_bit_cycles = per.vreg_bypassed_bit_cycles * nnz;
  activity.streaming_cycles = per.streaming_cycles * nnz;
  return finalized(shape, k,
                   arch::sparse_total_latency_cycles(shape, config_, k,
                                                     occupancy),
                   activity, &occupancy);
}

void Engine::check_occupancy(const gemm::GemmShape& shape,
                             const arch::TileOccupancy& occupancy) const {
  const std::int64_t want_rows =
      (shape.n + config_.rows - 1) / config_.rows;
  const std::int64_t want_cols =
      (shape.m + config_.cols - 1) / config_.cols;
  AF_CHECK(occupancy.row_tiles() == want_rows &&
               occupancy.col_tiles() == want_cols,
           "occupancy tile grid " << occupancy.row_tiles() << "x"
                                  << occupancy.col_tiles()
                                  << " does not match shape (n=" << shape.n
                                  << ", m=" << shape.m << ") on a "
                                  << config_.rows << "x" << config_.cols
                                  << " array (want " << want_rows << "x"
                                  << want_cols << ")");
}

CostEstimate Engine::priced(const arch::TileRunStats& stats, int k) const {
  CostEstimate est;
  est.k = k;
  est.cycles = stats.total_cycles;
  est.activity = stats.activity;
  est.period_ps = clock_->period_ps(k);
  const arch::PowerResult priced = power_.from_counters(
      est.activity, est.cycles, est.period_ps, /*arrayflex_hardware=*/true, k);
  est.time_ps = priced.time_ps;
  est.energy_pj = priced.energy_pj;
  return est;
}

CostEstimate Engine::finalized(const gemm::GemmShape& shape, int k,
                               std::int64_t compute_cycles,
                               const arch::ActivityCounters& activity,
                               const arch::TileOccupancy* occupancy) const {
  CostEstimate est;
  est.k = k;
  est.cycles = compute_cycles;
  est.activity = activity;
  est.period_ps = clock_->period_ps(k);
  if (tiles_ != nullptr) {
    // Re-time the tile grid through the scratchpad/DRAM hierarchy.  The
    // per-visit array cost is compute_cycles spread over the executed
    // tiles — an exact division: every (zero-padded) tile costs the same
    // L(k) cycles (Eq. 3), on the measured path as on the closed form.
    const std::int64_t executed =
        occupancy != nullptr
            ? occupancy->nonzero_tiles()
            : gemm::tile_count(shape, config_.rows, config_.cols);
    const std::int64_t per_tile =
        executed > 0 ? compute_cycles / executed : 0;
    if (executed > 0) {
      const mem::MemoryPlan plan = tiles_->plan(shape, per_tile, occupancy);
      est.cycles = plan.total_cycles;
      est.stall_cycles = plan.stall_cycles;
      est.dram_bytes = plan.dram_bytes();
      est.spad_peak_bytes = plan.spad_peak_bytes;
    }
  }
  const arch::PowerResult priced = power_.from_counters(
      est.activity, est.cycles, est.period_ps, /*arrayflex_hardware=*/true, k);
  est.time_ps = priced.time_ps;
  // DRAM access energy is the one term from_counters cannot see (it prices
  // array activity; traffic lives in the memory model).  dram_bytes == 0
  // when the model is off, so the default stays bit-exact (+0.0).
  est.energy_pj =
      priced.energy_pj +
      static_cast<double>(est.dram_bytes) * energy_.e_dram_byte_fj * 1e-3;
  return est;
}

std::vector<CostEstimate> Engine::evaluate_batch(
    std::span<const gemm::GemmShape> shapes, int k) {
  // Generic fallback: one memoized evaluate per element.  Still batched
  // from the caller's point of view (one call, one result vector) and
  // still exactly equal to the scalar path; the analytic backend replaces
  // the loop with a vectorized SoA sweep of the closed forms.
  std::vector<CostEstimate> out;
  out.reserve(shapes.size());
  for (const gemm::GemmShape& shape : shapes) {
    out.push_back(evaluate_cached(shape, k));
  }
  return out;
}

CostEstimate Engine::evaluate_cached(const gemm::GemmShape& shape, int k) {
  const int mode = resolve_mode(shape, k);
  if (std::optional<CostEstimate> hit =
          cache_->find(fingerprint_, shape, mode, CostCache::kDenseOccupancy)) {
    return *std::move(hit);
  }
  CostEstimate est = evaluate(shape, mode);
  cache_->insert(fingerprint_, shape, mode, CostCache::kDenseOccupancy, est);
  return est;
}

CostEstimate Engine::evaluate_sparse_cached(
    const gemm::GemmShape& shape, int k,
    const arch::TileOccupancy& occupancy) {
  if (config_.mem.enabled) {
    // The DMA plan walks the occupied tiles in order — two occupancies
    // with equal nnz can cost differently, so there is no sound key.
    return evaluate_sparse(shape, k, occupancy);
  }
  const int mode = resolve_mode(shape, k);
  const std::int64_t token = occupancy.nonzero_tiles();
  if (std::optional<CostEstimate> hit =
          cache_->find(fingerprint_, shape, mode, token)) {
    return *std::move(hit);
  }
  CostEstimate est = evaluate_sparse(shape, mode, occupancy);
  cache_->insert(fingerprint_, shape, mode, token, est);
  return est;
}

std::shared_ptr<const std::vector<arch::ModeSweepEntry>> Engine::sweep_cached(
    const gemm::GemmShape& shape) const {
  if (auto hit = cache_->find_sweep(fingerprint_, shape)) return hit;
  auto sweep = std::make_shared<const std::vector<arch::ModeSweepEntry>>(
      optimizer_.sweep(shape));
  // First-writer-wins under a racing miss: both computed identical values.
  cache_->insert_sweep(fingerprint_, shape, sweep);
  return sweep;
}

arch::ModeDecision Engine::best_mode_cached(
    const gemm::GemmShape& shape) const {
  const auto sweep = sweep_cached(shape);
  for (const arch::ModeSweepEntry& entry : *sweep) {
    if (entry.is_best) return entry.decision;
  }
  // Unreachable (sweep always flags a winner); kept for defensiveness.
  return optimizer_.best_mode(shape);
}

CostEstimate Engine::best(const gemm::GemmShape& shape) {
  CostEstimate winner;
  winner.time_ps = std::numeric_limits<double>::infinity();
  // Same iteration order and strict-< tie-break as
  // PipelineOptimizer::best_mode, so best(shape).k == best_mode(shape).k.
  for (const int k : config_.supported_k) {
    CostEstimate est = evaluate_cached(shape, k);
    if (est.time_ps < winner.time_ps) winner = std::move(est);
  }
  return winner;
}

// ----------------------------------------------------------------- builder

EngineBuilder::EngineBuilder()
    : clock_(std::make_shared<arch::CalibratedClockModel>(
          arch::CalibratedClockModel::date23())),
      energy_(arch::EnergyParams::generic28nm()) {}

EngineBuilder& EngineBuilder::config(arch::ArrayConfig config) {
  config_ = std::move(config);
  return *this;
}

EngineBuilder& EngineBuilder::square(int side) {
  const arch::SimOptions sim = config_.sim;  // geometry change keeps knobs
  config_ = arch::ArrayConfig::square(side);
  config_.sim = sim;
  return *this;
}

EngineBuilder& EngineBuilder::modes(std::vector<int> supported_k) {
  config_.supported_k = std::move(supported_k);
  return *this;
}

EngineBuilder& EngineBuilder::clock(
    std::shared_ptr<const arch::ClockModel> clock) {
  AF_CHECK(clock != nullptr, "EngineBuilder::clock requires a model");
  clock_ = std::move(clock);
  return *this;
}

EngineBuilder& EngineBuilder::energy(const arch::EnergyParams& params) {
  energy_ = params;
  return *this;
}

EngineBuilder& EngineBuilder::threads(int num_threads) {
  config_.sim.num_threads = num_threads;
  return *this;
}

EngineBuilder& EngineBuilder::shared_pool(util::ThreadPool* pool) {
  shared_pool_ = pool;
  return *this;
}

EngineBuilder& EngineBuilder::chaos(const ChaosOptions& options) {
  chaos_ = options;
  return *this;
}

EngineBuilder& EngineBuilder::cost_cache(std::shared_ptr<CostCache> cache) {
  AF_CHECK(cache != nullptr, "EngineBuilder::cost_cache requires a cache");
  cost_cache_ = std::move(cache);
  return *this;
}

std::shared_ptr<Engine> EngineBuilder::build(const std::string& backend) const {
  return make(backend, *this);
}

// ----------------------------------------------------------------- factory

namespace {

struct BackendEntry {
  std::string description;
  std::shared_ptr<Engine> (*create)(const EngineBuilder&);
};

// The registry: ordered so registered_backends() is stable for the CI
// drift check against the README table.
const std::map<std::string, BackendEntry>& registry() {
  static const std::map<std::string, BackendEntry> entries = {
      {"analytic",
       {"closed-form Eqs. 1-4 latency + activity model + utilization-aware "
        "power; outputs via reference GEMM only on request",
        [](const EngineBuilder& b) -> std::shared_ptr<Engine> {
          return std::make_shared<AnalyticEngine>(
              b.peek_config(), b.peek_clock(), b.peek_energy(),
              b.peek_shared_pool());
        }}},
      {"chaos",
       {"fault-injection wrapper around any registered backend: seeded "
        "deterministic throw-on-run, latency spikes and wrong-cycle results "
        "(EngineBuilder::chaos); injects nothing by default",
        [](const EngineBuilder& b) -> std::shared_ptr<Engine> {
          const ChaosOptions& chaos = b.peek_chaos();
          AF_CHECK(chaos.inner != "chaos",
                   "chaos backend cannot wrap itself");
          return std::make_shared<ChaosEngine>(b, make(chaos.inner, b));
        }}},
      {"cycle",
       {"cycle-accurate SystolicArray simulation; outputs, cycles and "
        "ActivityCounters measured register by register",
        [](const EngineBuilder& b) -> std::shared_ptr<Engine> {
          return std::make_shared<CycleAccurateEngine>(
              b.peek_config(), b.peek_clock(), b.peek_energy(),
              b.peek_shared_pool());
        }}},
  };
  return entries;
}

}  // namespace

std::shared_ptr<Engine> make(const std::string& backend,
                             const EngineBuilder& builder) {
  const auto it = registry().find(backend);
  if (it == registry().end()) {
    AF_CHECK(false, "unknown engine backend \""
                        << backend << "\" (registered: "
                        << registered_backend_list() << ")");
  }
  std::shared_ptr<Engine> engine = it->second.create(builder);
  // Swap in the builder's shared memoization store before the engine is
  // published (the chaos creator's recursive make() gives the inner engine
  // the same cache, so wrapper and wrapped share entries).
  if (builder.peek_cost_cache() != nullptr) {
    engine->set_cost_cache(builder.peek_cost_cache());
  }
  return engine;
}

std::vector<std::string> registered_backends() {
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& [name, entry] : registry()) names.push_back(name);
  return names;
}

bool is_registered(const std::string& backend) {
  return registry().count(backend) > 0;
}

std::string registered_backend_list() {
  std::string known;
  for (const auto& [name, entry] : registry()) {
    if (!known.empty()) known += ", ";
    known += "\"" + name + "\"";
  }
  return known;
}

std::string backend_description(const std::string& backend) {
  const auto it = registry().find(backend);
  AF_CHECK(it != registry().end(),
           "unknown engine backend \"" << backend << "\"");
  return it->second.description;
}

}  // namespace af::engine
