#include "engine/chaos_engine.h"

#include <chrono>
#include <thread>

#include "util/status.h"

namespace af::engine {
namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

ChaosEngine::ChaosEngine(const EngineBuilder& builder,
                         std::shared_ptr<Engine> inner)
    : Engine(builder.peek_config(), builder.peek_clock(),
             builder.peek_energy(), builder.peek_shared_pool()),
      inner_(std::move(inner)),
      options_(builder.peek_chaos()) {
  AF_CHECK(inner_ != nullptr, "chaos backend needs an inner engine");
  AF_CHECK(options_.throw_every_n >= 0,
           "chaos throw_every_n must be non-negative");
  for (const double rate : {options_.throw_rate, options_.wrong_cost_rate,
                            options_.delay_rate}) {
    AF_CHECK(rate >= 0.0 && rate <= 1.0,
             "chaos rates must be in [0, 1], got " << rate);
  }
  AF_CHECK(options_.delay_ms >= 0.0, "chaos delay_ms must be non-negative");
}

const std::string& ChaosEngine::name() const {
  static const std::string kName = "chaos";
  return kName;
}

bool ChaosEngine::draw(double rate, std::uint64_t run,
                       std::uint64_t salt) const {
  if (rate <= 0.0) return false;
  if (rate >= 1.0) return true;
  const std::uint64_t bits = splitmix64(options_.seed ^ (run * salt));
  return static_cast<double>(bits) <
         rate * 18446744073709551616.0;  // 2^64: uniform in [0, 1)
}

RunResult ChaosEngine::run_gemm(const GemmRequest& request) {
  const std::uint64_t run = runs_.fetch_add(1) + 1;
  if (options_.delay_ms > 0.0 &&
      draw(options_.delay_rate, run, 0x9ddfea08eb382d69ULL)) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(options_.delay_ms));
  }
  const bool scheduled_throw =
      options_.throw_every_n > 0 &&
      run % static_cast<std::uint64_t>(options_.throw_every_n) == 0;
  if (scheduled_throw || draw(options_.throw_rate, run, 0xff51afd7ed558ccdULL)) {
    throw Error(
        (detail::MessageBuilder()
         << "chaos: injected engine fault at run " << run).str(),
        ErrorCode::kEngineFault);
  }
  RunResult result = inner_->run_gemm(request);
  if (draw(options_.wrong_cost_rate, run, 0xc4ceb9fe1a85ec53ULL)) {
    // The smallest lie an audit replay must still catch: exact-equality
    // cross-checks tolerate no slack at all.
    result.cost.cycles += 1;
  }
  return result;
}

CostEstimate ChaosEngine::evaluate(const gemm::GemmShape& shape, int k) {
  return inner_->evaluate(shape, k);
}

std::vector<CostEstimate> ChaosEngine::evaluate_batch(
    std::span<const gemm::GemmShape> shapes, int k) {
  // Planning forwards untouched, like evaluate: faults hit execution only
  // (and the inner engine keeps its vectorized path and its cache).
  return inner_->evaluate_batch(shapes, k);
}

CostEstimate ChaosEngine::evaluate_tile_asym(std::int64_t t, int k_v,
                                             int k_h) {
  return inner_->evaluate_tile_asym(t, k_v, k_h);
}

CostEstimate ChaosEngine::evaluate_sparse(const gemm::GemmShape& shape, int k,
                                          const arch::TileOccupancy& occupancy) {
  // Planning forwards untouched, like evaluate: faults hit execution only.
  return inner_->evaluate_sparse(shape, k, occupancy);
}

}  // namespace af::engine
