// "chaos" backend: deterministic fault injection wrapped around any other
// registered engine — the serving layer's failure-path test rig.
//
// Production hardening (retry, quarantine, deadline, audit) is only as
// good as its tests, and real engines in this repo never fail once their
// inputs validate.  ChaosEngine supplies the missing failures ON SCHEDULE:
// throw-on-run (af::Error with ErrorCode::kEngineFault), injected latency
// spikes, and wrong-cycle results (a +1 cycle perturbation the sampled
// audit replay is designed to catch).  Every draw is a pure function of
// (seed, run counter), so a given construction replays the identical fault
// sequence — chaos stress tests are bit-reproducible, and a REBUILT chaos
// engine restarts its schedule from run 1 (which is how a quarantine
// recovery probe can succeed against a throw_every_n engine).
//
// Mode planning (evaluate / evaluate_tile_asym / optimizer) forwards to
// the inner engine untouched: admission decisions stay correct even while
// execution misbehaves, mirroring real deployments where the control plane
// outlives a flaky data plane.

#pragma once

#include <atomic>

#include "engine/engine.h"

namespace af::engine {

class ChaosEngine final : public Engine {
 public:
  // `inner` must be built over the same builder wiring (the registry
  // creator guarantees it); `options` are the builder's chaos knobs.
  ChaosEngine(const EngineBuilder& builder, std::shared_ptr<Engine> inner);

  const std::string& name() const override;
  bool measures() const override { return inner_->measures(); }

  RunResult run_gemm(const GemmRequest& request) override;
  CostEstimate evaluate(const gemm::GemmShape& shape, int k = 0) override;
  std::vector<CostEstimate> evaluate_batch(
      std::span<const gemm::GemmShape> shapes, int k = 0) override;
  CostEstimate evaluate_tile_asym(std::int64_t t, int k_v, int k_h) override;
  CostEstimate evaluate_sparse(const gemm::GemmShape& shape, int k,
                               const arch::TileOccupancy& occupancy) override;

  // Runs attempted so far (fault draws consumed) — test introspection.
  std::uint64_t runs() const { return runs_.load(); }

 private:
  // True when the seeded per-run draw for `salt` lands under `rate`.
  bool draw(double rate, std::uint64_t run, std::uint64_t salt) const;

  std::shared_ptr<Engine> inner_;
  ChaosOptions options_;
  std::atomic<std::uint64_t> runs_{0};
};

}  // namespace af::engine
