// "cycle" backend: the cycle-accurate arch::SystolicArray behind the
// engine::Engine facade.  Outputs and ActivityCounters are MEASURED —
// every datum streamed, every register latch counted — so this backend is
// the ground truth the analytic backend is audited against.

#pragma once

#include "engine/engine.h"

namespace af::engine {

class CycleAccurateEngine final : public Engine {
 public:
  CycleAccurateEngine(const arch::ArrayConfig& config,
                      std::shared_ptr<const arch::ClockModel> clock,
                      const arch::EnergyParams& energy,
                      util::ThreadPool* shared_pool);

  const std::string& name() const override;
  bool measures() const override { return true; }

  RunResult run_gemm(const GemmRequest& request) override;

  // Measured by streaming zero operands through the simulator — the
  // counters are data-independent, so this is exact (and as expensive as a
  // real run; use the analytic backend for bulk cost queries).
  CostEstimate evaluate(const gemm::GemmShape& shape, int k = 0) override;
  CostEstimate evaluate_tile_asym(std::int64_t t, int k_v, int k_h) override;
  // Measured by materializing the cheapest weight matrix WITH the given
  // occupancy (one non-zero per occupied tile) and running the sparse
  // sequencer over it — counters are data-independent, so the cost is
  // exact for any matrix of that occupancy.
  CostEstimate evaluate_sparse(const gemm::GemmShape& shape, int k,
                               const arch::TileOccupancy& occupancy) override;

  arch::SystolicArray& array() { return array_; }

 private:
  arch::SystolicArray array_;
};

}  // namespace af::engine
