#include "engine/cycle_engine.h"

#include <utility>

#include "arch/sparse.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace af::engine {

CycleAccurateEngine::CycleAccurateEngine(
    const arch::ArrayConfig& config,
    std::shared_ptr<const arch::ClockModel> clock,
    const arch::EnergyParams& energy, util::ThreadPool* shared_pool)
    : Engine(config, std::move(clock), energy, shared_pool),
      array_(this->config()) {
  if (pool() != nullptr) array_.set_thread_pool(pool());
}

const std::string& CycleAccurateEngine::name() const {
  static const std::string kName = "cycle";
  return kName;
}

RunResult CycleAccurateEngine::run_gemm(const GemmRequest& request) {
  AF_CHECK(request.a != nullptr && request.b != nullptr,
           "run_gemm needs both operand matrices");
  AF_CHECK(request.a->cols() == request.b->rows(),
           "GEMM inner-dimension mismatch: " << request.a->cols() << " vs "
                                             << request.b->rows());
  const gemm::GemmShape shape{request.b->cols(), request.b->rows(),
                              request.a->rows()};
  const int k = resolve_mode(shape, request.k);

  gemm::Mat64 out;
  const arch::TileRunStats stats =
      request.sparse ? array_.run_gemm_sparse(*request.a, *request.b, k, &out)
                     : array_.run_gemm(*request.a, *request.b, k, &out);

  RunResult result;
  if (request.sparse) {
    // The memory-aware finalization needs the tile occupancy to know which
    // visits moved data; scanning B mirrors what the sparse sequencer did.
    const arch::TileOccupancy occupancy = arch::TileOccupancy::from_matrix(
        *request.b, config().rows, config().cols);
    result.cost = finalized(shape, k, stats.total_cycles, stats.activity,
                            &occupancy);
  } else {
    result.cost = finalized(shape, k, stats.total_cycles, stats.activity);
  }
  result.measured = true;
  if (request.want_output) result.out = std::move(out);
  return result;
}

CostEstimate CycleAccurateEngine::evaluate(const gemm::GemmShape& shape,
                                           int k) {
  const int mode = resolve_mode(shape, k);
  // Counters and cycle counts are data-independent, so streaming zeros
  // through the simulator measures the exact cost of any GEMM of `shape`.
  const gemm::Mat32 a(shape.t, shape.n);
  const gemm::Mat32 b(shape.n, shape.m);
  gemm::Mat64 out;
  const arch::TileRunStats stats = array_.run_gemm(a, b, mode, &out);
  return finalized(shape, mode, stats.total_cycles, stats.activity);
}

CostEstimate CycleAccurateEngine::evaluate_sparse(
    const gemm::GemmShape& shape, int k,
    const arch::TileOccupancy& occupancy) {
  check_occupancy(shape, occupancy);
  const int mode = resolve_mode(shape, k);
  // Materialize the cheapest weight matrix with exactly this occupancy:
  // one non-zero in the top-left corner of every occupied tile.  The
  // sequencer's skip decisions depend only on which tiles are non-zero,
  // and the counters are data-independent past that — so this measures
  // the exact cost of ANY sparse GEMM with this shape and occupancy.
  const gemm::Mat32 a(shape.t, shape.n);
  gemm::Mat32 b(shape.n, shape.m);
  for (std::int64_t rt = 0; rt < occupancy.row_tiles(); ++rt) {
    for (std::int64_t ct = 0; ct < occupancy.col_tiles(); ++ct) {
      if (occupancy.is_nonzero(rt, ct)) {
        b.at(rt * config().rows, ct * config().cols) = 1;
      }
    }
  }
  gemm::Mat64 out;
  const arch::TileRunStats stats = array_.run_gemm_sparse(a, b, mode, &out);
  return finalized(shape, mode, stats.total_cycles, stats.activity,
                   &occupancy);
}

CostEstimate CycleAccurateEngine::evaluate_tile_asym(std::int64_t t, int k_v,
                                                     int k_h) {
  const gemm::Mat32 a(t, config().rows);
  const gemm::Mat32 b(config().rows, config().cols);
  gemm::Mat64 acc(t, config().cols);
  const arch::TileRunStats stats = array_.run_tile_asym(a, b, k_v, k_h, &acc);
  // Priced at Tclock(k_v), like the analytic estimate: the vertical
  // reduction chain dominates the period (paper Section III-A).
  CostEstimate est = priced(stats, k_v);
  return est;
}

}  // namespace af::engine
