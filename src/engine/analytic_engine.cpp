#include "engine/analytic_engine.h"

#include <limits>
#include <utility>
#include <vector>

#include "arch/activity.h"
#include "arch/sparse.h"
#include "engine/cost_cache.h"
#include "util/status.h"

namespace af::engine {

AnalyticEngine::AnalyticEngine(const arch::ArrayConfig& config,
                               std::shared_ptr<const arch::ClockModel> clock,
                               const arch::EnergyParams& energy,
                               util::ThreadPool* shared_pool)
    : Engine(config, std::move(clock), energy, shared_pool) {}

const std::string& AnalyticEngine::name() const {
  static const std::string kName = "analytic";
  return kName;
}

RunResult AnalyticEngine::run_gemm(const GemmRequest& request) {
  AF_CHECK(request.a != nullptr && request.b != nullptr,
           "run_gemm needs both operand matrices");
  AF_CHECK(request.a->cols() == request.b->rows(),
           "GEMM inner-dimension mismatch: " << request.a->cols() << " vs "
                                             << request.b->rows());
  const gemm::GemmShape shape{request.b->cols(), request.b->rows(),
                              request.a->rows()};
  const int k = resolve_mode(shape, request.k);

  RunResult result;
  if (request.sparse) {
    // Block-sparse pricing inspects B's tile occupancy (the one part of a
    // cost query that must read an operand) and charges only the non-zero
    // tiles; see GemmRequest::sparse.
    const arch::TileOccupancy occupancy = arch::TileOccupancy::from_matrix(
        *request.b, config().rows, config().cols);
    result.cost = analytic_sparse_estimate(shape, k, occupancy);
  } else {
    result.cost = analytic_estimate(shape, k);
  }
  result.measured = false;
  // The product is computed only on demand — and by the reference GEMM, not
  // the simulator.  reference_gemm is bit-identical to the array (that is
  // the simulator's own correctness oracle), so a caller cannot tell the
  // backends apart by their outputs, only by their speed.
  if (request.want_output) {
    result.out = gemm::reference_gemm(*request.a, *request.b);
  }
  return result;
}

CostEstimate AnalyticEngine::evaluate(const gemm::GemmShape& shape, int k) {
  return analytic_estimate(shape, resolve_mode(shape, k));
}

std::vector<CostEstimate> AnalyticEngine::evaluate_batch(
    std::span<const gemm::GemmShape> shapes, int k) {
  const std::size_t count = shapes.size();
  std::vector<CostEstimate> out(count);
  if (count == 0) return out;

  const arch::ArrayConfig& cfg = config();
  if (k != 0) {
    AF_CHECK(cfg.supports(k),
             "mode k=" << k << " not supported by " << cfg.to_string());
  }
  const std::int64_t rows = cfg.rows;
  const std::int64_t cols = cfg.cols;

  // SoA pass 1: contiguous per-shape integers.  tiles = ceil(N/R)*ceil(M/C)
  // (Eq. 4's tile grid, the same integer math as gemm::tile_count).
  std::vector<std::int64_t> t(count);
  std::vector<std::int64_t> tiles(count);
  for (std::size_t i = 0; i < count; ++i) {
    const gemm::GemmShape& s = shapes[i];
    AF_CHECK(s.m > 0 && s.n > 0 && s.t > 0,
             "evaluate_batch shape dims must be positive, got m=" << s.m
                 << " n=" << s.n << " t=" << s.t);
    t[i] = s.t;
    tiles[i] = ((s.n + rows - 1) / rows) * ((s.m + cols - 1) / cols);
  }

  // SoA pass 2: Eq. 4 cycles per element, and for k = 0 the Eq. 6 argmin
  // — one branch-free inner loop per supported mode over the contiguous
  // arrays, exactly the arithmetic of arch::total_latency_cycles (L(k) =
  // R + R/k + C/k + T - 2, times the tile count) and absolute_time_ps
  // (cycles * period), with the optimizer's iteration order and strict-<
  // tie-break, so the selected mode matches resolve_mode() exactly.
  std::vector<int> mode(count, k);
  std::vector<std::int64_t> cycles(count);
  if (k != 0) {
    const std::int64_t l_fixed = rows + rows / k + cols / k - 2;
    for (std::size_t i = 0; i < count; ++i) {
      cycles[i] = (l_fixed + t[i]) * tiles[i];
    }
  } else {
    std::vector<double> best_time(count,
                                  std::numeric_limits<double>::infinity());
    for (const int km : cfg.supported_k) {
      const double period = clock().period_ps(km);
      const std::int64_t l_fixed = rows + rows / km + cols / km - 2;
      for (std::size_t i = 0; i < count; ++i) {
        const std::int64_t c = (l_fixed + t[i]) * tiles[i];
        const double time = static_cast<double>(c) * period;
        if (time < best_time[i]) {
          best_time[i] = time;
          mode[i] = km;
          cycles[i] = c;
        }
      }
    }
  }

  // Finalization: cache hits return the memoized estimate; misses run the
  // shared finalized() (counter prediction + utilization-aware pricing +
  // memory re-timing) on the SoA cycles — identical inputs to the scalar
  // path, so exact equality holds element for element.
  CostCache& cache = *cost_cache();
  const std::uint64_t fp = cost_fingerprint();
  for (std::size_t i = 0; i < count; ++i) {
    if (std::optional<CostEstimate> hit =
            cache.find(fp, shapes[i], mode[i], CostCache::kDenseOccupancy)) {
      out[i] = *std::move(hit);
      continue;
    }
    out[i] = finalized(shapes[i], mode[i], cycles[i],
                       arch::predict_gemm_activity(shapes[i], cfg, mode[i]));
    cache.insert(fp, shapes[i], mode[i], CostCache::kDenseOccupancy, out[i]);
  }
  return out;
}

CostEstimate AnalyticEngine::evaluate_tile_asym(std::int64_t t, int k_v,
                                                int k_h) {
  return analytic_tile_asym_estimate(t, k_v, k_h);
}

CostEstimate AnalyticEngine::evaluate_sparse(
    const gemm::GemmShape& shape, int k,
    const arch::TileOccupancy& occupancy) {
  check_occupancy(shape, occupancy);
  return analytic_sparse_estimate(shape, resolve_mode(shape, k), occupancy);
}

}  // namespace af::engine
