#include "engine/analytic_engine.h"

#include <utility>

#include "arch/sparse.h"
#include "util/status.h"

namespace af::engine {

AnalyticEngine::AnalyticEngine(const arch::ArrayConfig& config,
                               std::shared_ptr<const arch::ClockModel> clock,
                               const arch::EnergyParams& energy,
                               util::ThreadPool* shared_pool)
    : Engine(config, std::move(clock), energy, shared_pool) {}

const std::string& AnalyticEngine::name() const {
  static const std::string kName = "analytic";
  return kName;
}

RunResult AnalyticEngine::run_gemm(const GemmRequest& request) {
  AF_CHECK(request.a != nullptr && request.b != nullptr,
           "run_gemm needs both operand matrices");
  AF_CHECK(request.a->cols() == request.b->rows(),
           "GEMM inner-dimension mismatch: " << request.a->cols() << " vs "
                                             << request.b->rows());
  const gemm::GemmShape shape{request.b->cols(), request.b->rows(),
                              request.a->rows()};
  const int k = resolve_mode(shape, request.k);

  RunResult result;
  if (request.sparse) {
    // Block-sparse pricing inspects B's tile occupancy (the one part of a
    // cost query that must read an operand) and charges only the non-zero
    // tiles; see GemmRequest::sparse.
    const arch::TileOccupancy occupancy = arch::TileOccupancy::from_matrix(
        *request.b, config().rows, config().cols);
    result.cost = analytic_sparse_estimate(shape, k, occupancy);
  } else {
    result.cost = analytic_estimate(shape, k);
  }
  result.measured = false;
  // The product is computed only on demand — and by the reference GEMM, not
  // the simulator.  reference_gemm is bit-identical to the array (that is
  // the simulator's own correctness oracle), so a caller cannot tell the
  // backends apart by their outputs, only by their speed.
  if (request.want_output) {
    result.out = gemm::reference_gemm(*request.a, *request.b);
  }
  return result;
}

CostEstimate AnalyticEngine::evaluate(const gemm::GemmShape& shape, int k) {
  return analytic_estimate(shape, resolve_mode(shape, k));
}

CostEstimate AnalyticEngine::evaluate_tile_asym(std::int64_t t, int k_v,
                                                int k_h) {
  return analytic_tile_asym_estimate(t, k_v, k_h);
}

CostEstimate AnalyticEngine::evaluate_sparse(
    const gemm::GemmShape& shape, int k,
    const arch::TileOccupancy& occupancy) {
  check_occupancy(shape, occupancy);
  return analytic_sparse_estimate(shape, resolve_mode(shape, k), occupancy);
}

}  // namespace af::engine
