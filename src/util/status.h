// Error-handling helpers for the ArrayFlex library.
//
// The library follows a simple contract: precondition violations and
// malformed configurations throw af::Error (derived from std::runtime_error)
// with a formatted message.  Internal invariants use AF_ASSERT, which is
// active in debug builds and compiles to nothing under NDEBUG — the checks
// (tag-skew tracking, index bounds) sit on the simulator's innermost loops,
// and release builds exist to sweep big workloads.  AF_CHECK is always on
// regardless of build type.

#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace af {

// Structured failure taxonomy carried by af::Error.  The serving layer's
// clients dispatch on it — a DeadlineExceeded is retried upstream with a
// longer budget, an Overloaded is shed or routed elsewhere, an EngineFault
// may be retried on another shard, a Shutdown is terminal — so the codes
// are a public contract alongside the registry names (README "Robustness").
enum class ErrorCode {
  kUnknown = 0,       // untyped failure (legacy throws)
  kInvalidArgument,   // precondition violation (every AF_CHECK)
  kDeadlineExceeded,  // request expired before it could be served
  kOverloaded,        // admission rejected / timed out under load shedding
  kEngineFault,       // execution engine threw while serving
  kShutdown,          // server closed while submitting or serving
  // The server was killed, quiesced or drained before this request could
  // run.  The crucial guarantee (vs kEngineFault): the request was NEVER
  // executed, so re-admitting it elsewhere cannot double-serve — this is
  // the fleet layer's failover signal (fleet/fleet.h).
  kUnavailable,
};

// Stable lower-case name of a code ("deadline_exceeded", ...), for error
// messages, stats dumps and the README taxonomy table.
const char* error_code_name(ErrorCode code);

// Exception thrown for user-visible errors (bad configs, size mismatches).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what,
                 ErrorCode code = ErrorCode::kUnknown)
      : std::runtime_error(what), code_(code) {}

  ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

namespace detail {

[[noreturn]] void throw_error(const char* file, int line, const std::string& msg);
[[noreturn]] void assert_fail(const char* file, int line, const char* expr,
                              const std::string& msg);

// Tiny stream-based message builder so call sites can write
//   AF_CHECK(x > 0, "x must be positive, got " << x);
class MessageBuilder {
 public:
  template <typename T>
  MessageBuilder& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }
  std::string str() const { return stream_.str(); }

 private:
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace af

// User-facing precondition check: throws af::Error when violated.
#define AF_CHECK(cond, msg)                                               \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::af::detail::throw_error(__FILE__, __LINE__,                      \
                                (::af::detail::MessageBuilder() << msg).str()); \
    }                                                                     \
  } while (false)

// Internal invariant check: aborts with a diagnostic when violated.
// Compiled out under NDEBUG (the operand is not evaluated; `sizeof`
// keeps variables referenced so release builds stay warning-clean).
#ifdef NDEBUG
#define AF_ASSERT(cond, msg)            \
  do {                                  \
    (void)sizeof((cond) ? 1 : 0);       \
  } while (false)
#else
#define AF_ASSERT(cond, msg)                                              \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::af::detail::assert_fail(__FILE__, __LINE__, #cond,               \
                                (::af::detail::MessageBuilder() << msg).str()); \
    }                                                                     \
  } while (false)
#endif
