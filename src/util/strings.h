// String formatting helpers used by reports and benches.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace af {

// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// "1234567" -> "1,234,567" (sign preserved).
std::string with_commas(std::int64_t value);

// Fixed-point decimal with `digits` fractional digits, e.g. fixed(3.14159, 2)
// == "3.14".
std::string fixed(double value, int digits);

// Percentage string: percent(0.1234, 1) == "12.3%".
std::string percent(double fraction, int digits = 1);

// Engineering-style time formatting from picoseconds: "1.25 ns", "3.40 us".
std::string format_time_ps(double ps);

// Left/right padding to a field width.
std::string pad_left(const std::string& s, std::size_t width);
std::string pad_right(const std::string& s, std::size_t width);

// Split on a delimiter, keeping empty fields.
std::vector<std::string> split(const std::string& s, char delim);

// True when `s` starts with `prefix`.
bool starts_with(const std::string& s, const std::string& prefix);

}  // namespace af
