// Small integer-math helpers shared across the library (header-only).

#pragma once

#include <cstdint>

#include "util/status.h"

namespace af {

// ⌈a / b⌉ for non-negative a and positive b.
constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

// Round `a` up to the next multiple of `b` (b > 0).
constexpr std::int64_t round_up(std::int64_t a, std::int64_t b) {
  return ceil_div(a, b) * b;
}

// true when b divides a exactly.
constexpr bool divides(std::int64_t b, std::int64_t a) {
  return b != 0 && a % b == 0;
}

// Floor of log2(x); x must be positive.
inline int ilog2(std::uint64_t x) {
  AF_CHECK(x > 0, "ilog2 requires positive argument");
  int bits = 0;
  while (x >>= 1) ++bits;
  return bits;
}

constexpr bool is_power_of_two(std::uint64_t x) {
  return x != 0 && (x & (x - 1)) == 0;
}

// Mask with the low `bits` bits set; bits >= 64 yields all ones (avoiding
// the undefined 64-bit shift).
constexpr std::uint64_t mask_low_bits(int bits) {
  return bits >= 64 ? ~std::uint64_t{0}
                    : ((std::uint64_t{1} << bits) - 1);
}

}  // namespace af
