// Minimal fixed-size worker pool for tile-level simulation parallelism.
//
// The simulator's unit of independent work is one systolic-array tile (or
// one NN layer in the analytical runner): coarse, uniform, and free of
// shared mutable state.  parallel_for hands out indices via an atomic
// cursor, the calling thread works alongside the pool, and the call blocks
// until every index is done — so callers never deal with futures or task
// lifetimes.  Exceptions thrown by the body are captured and the first one
// is rethrown on the calling thread.
//
// Sharing and nesting: one pool may be shared by many components (the
// serving layer injects a single pool into every shard's SystolicArray and
// InferenceRunner).  At most one job runs on the workers at a time; a
// parallel_for that finds the pool busy with another thread's job runs its
// indices inline rather than queueing behind it.  A parallel_for issued
// from INSIDE a pool task is detected via a thread-local flag and runs
// inline on the calling thread instead of deadlocking on the job lock, and
// run_n falls back to plain serial execution in that situation, so nested
// parallelism degrades to the outer level's thread count rather than
// oversubscribing.

#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace af::util {

class ThreadPool {
 public:
  // Spawns `num_threads - 1` workers (the caller is the remaining thread).
  // num_threads < 1 is clamped to 1, i.e. a pool that runs everything
  // inline on the calling thread.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Total threads that execute a parallel_for (workers + caller).
  int size() const { return static_cast<int>(workers_.size()) + 1; }

  // Runs body(i) for every i in [0, n).  Blocks until all iterations have
  // finished.  Iterations are claimed dynamically, so uneven per-index
  // cost (e.g. skipped sparse tiles) still balances.  Called from inside a
  // pool task (this pool or any other), the loop runs inline on the
  // calling thread — re-entry can never deadlock.  When another thread's
  // job already occupies the pool, the call does NOT queue behind it: it
  // runs its own indices inline instead (the callers of this pool — shard
  // workers, tiled GEMMs — are always free to do their work serially, and
  // stalling them behind an unrelated fan-out wastes more than the lost
  // parallelism).
  void parallel_for(std::int64_t n,
                    const std::function<void(std::int64_t)>& body);

  // Resolves a SimOptions-style thread count: 0 means "all hardware
  // threads", anything else passes through (clamped to >= 1).
  static int resolve_num_threads(int requested);

  // True while the calling thread is executing a parallel_for body (of any
  // pool).  Nested dispatch helpers consult this to stay serial.
  static bool in_parallel_region();

  // The shared fan-out idiom: body(i) for i in [0, n), on `pool` when one
  // exists, there is more than one index and the caller is not already
  // inside a pool task; inline on the caller otherwise.  Lets call sites
  // own (and cache) their pool while sharing the dispatch logic, and makes
  // nested fan-out (a threaded runner driving threaded arrays) degrade to
  // serial instead of oversubscribing.
  static void run_n(ThreadPool* pool, std::int64_t n,
                    const std::function<void(std::int64_t)>& body);

 private:
  void worker_loop();
  void run_indices(const std::function<void(std::int64_t)>& body);

  std::mutex job_mutex_;          // serializes parallel_for callers
  std::mutex mutex_;              // guards the fields below
  std::condition_variable wake_;
  std::condition_variable done_;
  const std::function<void(std::int64_t)>* body_ = nullptr;
  std::int64_t next_index_ = 0;
  std::int64_t end_index_ = 0;
  std::int64_t in_flight_ = 0;    // workers currently inside the job
  std::uint64_t generation_ = 0;  // bumped per job so workers don't re-enter
  std::exception_ptr first_error_;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace af::util
