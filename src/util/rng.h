// Deterministic pseudo-random number generation.
//
// All stochastic pieces of the library (test-input generation, synthetic
// activation tensors, randomized property sweeps) draw from this xoshiro256**
// generator seeded explicitly, so every experiment is reproducible bit-for-bit
// across runs and platforms.  std::mt19937 is avoided because its
// distribution adapters are not portable across standard libraries.

#pragma once

#include <cstdint>
#include <vector>

namespace af {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Uniform 64-bit word.
  std::uint64_t next_u64();

  // Uniform in [0, bound) without modulo bias; bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  // Uniform signed integer in [lo, hi] inclusive; requires lo <= hi.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  // Uniform double in [0, 1).
  double next_double();

  // Convenience: vector of `n` signed values in [lo, hi].
  std::vector<std::int32_t> int32_vector(std::size_t n, std::int32_t lo,
                                         std::int32_t hi);

 private:
  std::uint64_t state_[4];
};

}  // namespace af
