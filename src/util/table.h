// ASCII table renderer used by benches and reports.
//
// Columns are right-aligned for numerics and left-aligned for text, matching
// the style of the paper's result tables.  Output goes through operator<<.

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace af {

class Table {
 public:
  enum class Align { kLeft, kRight };

  explicit Table(std::vector<std::string> headers);

  // Optional per-column alignment (defaults to kRight).
  void set_align(std::size_t column, Align align);

  // Append a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  // Horizontal separator row between data rows.
  void add_separator();

  std::size_t row_count() const { return rows_.size(); }

  // Render with box-drawing dashes/pipes.
  std::string render() const;

 private:
  struct Row {
    bool separator = false;
    std::vector<std::string> cells;
  };

  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<Row> rows_;
};

std::ostream& operator<<(std::ostream& os, const Table& table);

}  // namespace af
