#include "util/strings.h"

#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <sstream>

namespace af {

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string with_commas(std::int64_t value) {
  const bool negative = value < 0;
  std::string digits = std::to_string(negative ? -value : value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (negative) out.push_back('-');
  return {out.rbegin(), out.rend()};
}

std::string fixed(double value, int digits) {
  return format("%.*f", digits, value);
}

std::string percent(double fraction, int digits) {
  return format("%.*f%%", digits, fraction * 100.0);
}

std::string format_time_ps(double ps) {
  if (std::fabs(ps) < 1e3) return format("%.1f ps", ps);
  if (std::fabs(ps) < 1e6) return format("%.2f ns", ps / 1e3);
  if (std::fabs(ps) < 1e9) return format("%.2f us", ps / 1e6);
  return format("%.3f ms", ps / 1e9);
}

std::string pad_left(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return std::string(width - s.size(), ' ') + s;
}

std::string pad_right(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

std::vector<std::string> split(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::string field;
  std::istringstream in(s);
  while (std::getline(in, field, delim)) out.push_back(field);
  if (!s.empty() && s.back() == delim) out.emplace_back();
  return out;
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace af
