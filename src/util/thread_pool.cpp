#include "util/thread_pool.h"

#include <algorithm>

namespace af::util {
namespace {

// Set while the current thread runs a parallel_for body.  Guards against
// the two nested-dispatch hazards: re-entering parallel_for on the pool the
// thread is already working for (deadlock on job_mutex_ / in_flight_), and
// fanning a nested job out to a second pool (threads² oversubscription).
thread_local bool tls_in_parallel_region = false;

struct RegionGuard {
  bool prev;
  RegionGuard() : prev(tls_in_parallel_region) { tls_in_parallel_region = true; }
  ~RegionGuard() { tls_in_parallel_region = prev; }
};

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  workers_.reserve(static_cast<std::size_t>(n - 1));
  for (int i = 0; i < n - 1; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::run_n(ThreadPool* pool, std::int64_t n,
                       const std::function<void(std::int64_t)>& body) {
  if (pool != nullptr && n > 1 && !tls_in_parallel_region) {
    pool->parallel_for(n, body);
  } else {
    for (std::int64_t i = 0; i < n; ++i) body(i);
  }
}

bool ThreadPool::in_parallel_region() { return tls_in_parallel_region; }

int ThreadPool::resolve_num_threads(int requested) {
  if (requested == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }
  return std::max(1, requested);
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(std::int64_t)>* body = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [&] {
        return shutdown_ || (body_ != nullptr && generation_ != seen_generation);
      });
      if (shutdown_) return;
      body = body_;
      seen_generation = generation_;
      ++in_flight_;
    }
    run_indices(*body);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
    }
    done_.notify_all();
  }
}

void ThreadPool::run_indices(const std::function<void(std::int64_t)>& body) {
  RegionGuard region;
  for (;;) {
    std::int64_t i;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (next_index_ >= end_index_ || first_error_) return;
      i = next_index_++;
    }
    try {
      body(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
      return;
    }
  }
}

void ThreadPool::parallel_for(std::int64_t n,
                              const std::function<void(std::int64_t)>& body) {
  if (n <= 0) return;
  if (tls_in_parallel_region) {
    // Re-entrant call from inside a pool task: the worker's slot in the
    // outer job is occupied (and, for this pool, job_mutex_ may be held by
    // the outer caller), so dispatching would deadlock.  Run inline.
    for (std::int64_t i = 0; i < n; ++i) body(i);
    return;
  }
  std::unique_lock<std::mutex> job_lock(job_mutex_, std::try_to_lock);
  if (!job_lock.owns_lock()) {
    // Another thread's job owns the pool.  Waiting would stall this caller
    // for the other fan-out's full duration, so do the work serially here
    // (see the header note) — several serving shards sharing one sim pool
    // keep making progress instead of convoying behind the lock.
    for (std::int64_t i = 0; i < n; ++i) body(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    body_ = &body;
    next_index_ = 0;
    end_index_ = n;
    first_error_ = nullptr;
    ++generation_;
  }
  wake_.notify_all();
  run_indices(body);  // the caller works too
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [this] {
      return in_flight_ == 0 && (next_index_ >= end_index_ || first_error_);
    });
    body_ = nullptr;
    error = first_error_;
    first_error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace af::util
