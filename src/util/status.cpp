#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace af::detail {

void throw_error(const char* file, int line, const std::string& msg) {
  std::ostringstream out;
  out << msg << " [" << file << ":" << line << "]";
  throw Error(out.str());
}

void assert_fail(const char* file, int line, const char* expr,
                 const std::string& msg) {
  std::fprintf(stderr, "AF_ASSERT failed: %s\n  %s\n  at %s:%d\n", expr,
               msg.c_str(), file, line);
  std::abort();
}

}  // namespace af::detail
