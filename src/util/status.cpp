#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace af {

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kUnknown:
      return "unknown";
    case ErrorCode::kInvalidArgument:
      return "invalid_argument";
    case ErrorCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case ErrorCode::kOverloaded:
      return "overloaded";
    case ErrorCode::kEngineFault:
      return "engine_fault";
    case ErrorCode::kShutdown:
      return "shutdown";
    case ErrorCode::kUnavailable:
      return "unavailable";
  }
  return "unknown";
}

}  // namespace af

namespace af::detail {

void throw_error(const char* file, int line, const std::string& msg) {
  std::ostringstream out;
  out << msg << " [" << file << ":" << line << "]";
  throw Error(out.str(), ErrorCode::kInvalidArgument);
}

void assert_fail(const char* file, int line, const char* expr,
                 const std::string& msg) {
  std::fprintf(stderr, "AF_ASSERT failed: %s\n  %s\n  at %s:%d\n", expr,
               msg.c_str(), file, line);
  std::abort();
}

}  // namespace af::detail
