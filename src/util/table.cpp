#include "util/table.h"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "util/status.h"
#include "util/strings.h"

namespace af {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  AF_CHECK(!headers_.empty(), "Table requires at least one column");
  aligns_.assign(headers_.size(), Align::kRight);
}

void Table::set_align(std::size_t column, Align align) {
  AF_CHECK(column < aligns_.size(), "column " << column << " out of range");
  aligns_[column] = align;
}

void Table::add_row(std::vector<std::string> cells) {
  AF_CHECK(cells.size() == headers_.size(),
           "row arity " << cells.size() << " != header arity "
                        << headers_.size());
  rows_.push_back(Row{false, std::move(cells)});
}

void Table::add_separator() { rows_.push_back(Row{true, {}}); }

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    if (row.separator) continue;
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  const auto rule = [&]() {
    std::string line = "+";
    for (const auto w : widths) line += std::string(w + 2, '-') + "+";
    return line + "\n";
  };
  const auto emit_row = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const std::string padded = aligns_[c] == Align::kRight
                                     ? pad_left(cells[c], widths[c])
                                     : pad_right(cells[c], widths[c]);
      line += " " + padded + " |";
    }
    return line + "\n";
  };

  std::ostringstream out;
  out << rule() << emit_row(headers_) << rule();
  for (const auto& row : rows_) {
    if (row.separator) {
      out << rule();
    } else {
      out << emit_row(row.cells);
    }
  }
  out << rule();
  return out.str();
}

std::ostream& operator<<(std::ostream& os, const Table& table) {
  return os << table.render();
}

}  // namespace af
