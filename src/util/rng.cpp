#include "util/rng.h"

#include "util/status.h"

namespace af {
namespace {

// SplitMix64: used only to expand the user seed into the xoshiro state.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
  // A pathological all-zero state would stay at zero forever.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  AF_CHECK(bound > 0, "Rng::next_below requires bound > 0");
  // Rejection sampling over the largest multiple of `bound`.
  const std::uint64_t limit = bound * (~0ULL / bound);
  std::uint64_t value = next_u64();
  while (value >= limit) value = next_u64();
  return value % bound;
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) {
  AF_CHECK(lo <= hi, "Rng::next_in requires lo <= hi, got [" << lo << ", "
                                                             << hi << "]");
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next_u64());
  }
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() {
  // 53 random mantissa bits.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::vector<std::int32_t> Rng::int32_vector(std::size_t n, std::int32_t lo,
                                            std::int32_t hi) {
  std::vector<std::int32_t> out(n);
  for (auto& v : out) v = static_cast<std::int32_t>(next_in(lo, hi));
  return out;
}

}  // namespace af
