#include "mem/tile_scheduler.h"

#include <algorithm>
#include <vector>

#include "util/status.h"

namespace af::mem {
namespace {

// One DMA transfer in issue order through the single in-order channel.
// `consumer`: executed-visit index whose compute waits for this transfer
// to COMPLETE (-1 = none).  `after_visit`: executed-visit index whose
// compute must FINISH before the transfer may START (-1 = immediately) —
// the double-buffer constraint for fetches, the data dependency for
// evictions and spills.
struct Transfer {
  std::int64_t bytes = 0;
  std::int64_t consumer = -1;
  std::int64_t after_visit = -1;
  bool write = false;
};

// One outer-loop group with at least one executed visit: the column group
// j (M-outer strategies) or the row group i (a_stationary), with the
// executed inner indices in execution order.
struct Group {
  std::int64_t key = 0;
  std::vector<std::int64_t> members;
  std::int64_t first = 0;  // global executed-visit index of members.front()
  std::int64_t last = 0;   // ... and members.back()
};

}  // namespace

TileScheduler::TileScheduler(const arch::ArrayConfig& config)
    : config_(config), model_(config) {
  AF_CHECK(config.mem.enabled,
           "TileScheduler needs an enabled MemoryConfig (disabled = magic "
           "memory, nothing to schedule)");
}

std::int64_t TileScheduler::min_spad_bytes(
    const gemm::GemmShape& shape, arch::ReuseStrategy strategy) const {
  const std::int64_t in_b = model_.input_bytes();
  const std::int64_t acc_b = model_.acc_bytes();
  // Working-set maxima over the DENSE tile grid — buffers are provisioned
  // statically, they cannot depend on which tiles happen to be zero.
  const std::int64_t rows = std::min<std::int64_t>(config_.rows, shape.n);
  const std::int64_t cols = std::min<std::int64_t>(config_.cols, shape.m);
  const std::int64_t max_a = shape.t * rows * in_b;       // one A panel
  const std::int64_t max_b = rows * cols * in_b;          // one B tile
  const std::int64_t max_bg = shape.n * cols * in_b;      // one B column group
  const std::int64_t max_c = shape.t * cols * acc_b;      // one C group
  const std::int64_t sum_c = shape.t * shape.m * acc_b;   // the whole C
  switch (strategy) {
    case arch::ReuseStrategy::kOutputStationary:
      return 2 * max_a + 2 * max_b + max_c;
    case arch::ReuseStrategy::kBStationary:
      return 2 * max_bg + 2 * max_a + max_c;
    case arch::ReuseStrategy::kAStationary:
      // Resident output (sum_c) when it fits, else spill buffers (2 max_c).
      return 2 * max_a + 2 * max_b + std::min(sum_c, 2 * max_c);
    case arch::ReuseStrategy::kAuto:
      return std::min(
          {min_spad_bytes(shape, arch::ReuseStrategy::kAStationary),
           min_spad_bytes(shape, arch::ReuseStrategy::kBStationary),
           min_spad_bytes(shape, arch::ReuseStrategy::kOutputStationary)});
  }
  AF_CHECK(false, "unknown ReuseStrategy value "
                      << static_cast<int>(strategy));
}

MemoryPlan TileScheduler::plan(const gemm::GemmShape& shape,
                               std::int64_t per_tile_cycles,
                               const arch::TileOccupancy* occupancy) const {
  AF_CHECK(shape.m > 0 && shape.n > 0 && shape.t > 0,
           "GEMM shape must be positive, got m=" << shape.m
                                                 << " n=" << shape.n
                                                 << " t=" << shape.t);
  AF_CHECK(per_tile_cycles > 0, "per_tile_cycles must be positive, got "
                                    << per_tile_cycles);
  const arch::ReuseStrategy want = config_.mem.reuse;
  if (occupancy != nullptr && occupancy->nonzero_tiles() == 0) {
    // Every tile is skipped: nothing computes, nothing moves.
    MemoryPlan empty;
    empty.strategy = want == arch::ReuseStrategy::kAuto
                         ? arch::ReuseStrategy::kOutputStationary
                         : want;
    return empty;
  }
  const std::int64_t spad = config_.mem.spad_bytes;
  if (want != arch::ReuseStrategy::kAuto) {
    AF_CHECK(min_spad_bytes(shape, want) <= spad,
             "reuse strategy " << arch::reuse_strategy_name(want)
                               << " needs at least "
                               << min_spad_bytes(shape, want)
                               << " scratchpad bytes for shape (m=" << shape.m
                               << ", n=" << shape.n << ", t=" << shape.t
                               << "), config has " << spad);
    return plan_one(shape, want, per_tile_cycles, occupancy);
  }
  MemoryPlan best;
  bool have = false;
  for (const arch::ReuseStrategy s : {arch::ReuseStrategy::kAStationary,
                                      arch::ReuseStrategy::kBStationary,
                                      arch::ReuseStrategy::kOutputStationary}) {
    if (min_spad_bytes(shape, s) > spad) continue;
    MemoryPlan p = plan_one(shape, s, per_tile_cycles, occupancy);
    if (!have || p.total_cycles < best.total_cycles ||
        (p.total_cycles == best.total_cycles &&
         p.dram_bytes() < best.dram_bytes())) {
      best = p;
      have = true;
    }
  }
  AF_CHECK(have, "no reuse strategy fits " << spad
                                           << " scratchpad bytes for shape (m="
                                           << shape.m << ", n=" << shape.n
                                           << ", t=" << shape.t
                                           << "); smallest workable scratchpad is "
                                           << min_spad_bytes(
                                                  shape,
                                                  arch::ReuseStrategy::kAuto));
  return best;
}

MemoryPlan TileScheduler::plan_one(const gemm::GemmShape& shape,
                                   arch::ReuseStrategy strategy,
                                   std::int64_t per_tile_cycles,
                                   const arch::TileOccupancy* occupancy) const {
  const std::int64_t array_rows = config_.rows;
  const std::int64_t array_cols = config_.cols;
  const std::int64_t row_tiles = (shape.n + array_rows - 1) / array_rows;
  const std::int64_t col_tiles = (shape.m + array_cols - 1) / array_cols;
  const std::int64_t in_b = model_.input_bytes();
  const std::int64_t acc_b = model_.acc_bytes();
  const auto n_ext = [&](std::int64_t i) {
    return std::min(array_rows, shape.n - i * array_rows);
  };
  const auto m_ext = [&](std::int64_t j) {
    return std::min(array_cols, shape.m - j * array_cols);
  };
  const auto a_bytes = [&](std::int64_t i) { return shape.t * n_ext(i) * in_b; };
  const auto b_bytes = [&](std::int64_t i, std::int64_t j) {
    return n_ext(i) * m_ext(j) * in_b;
  };
  const auto c_bytes = [&](std::int64_t j) { return shape.t * m_ext(j) * acc_b; };
  const auto is_executed = [&](std::int64_t i, std::int64_t j) {
    return occupancy == nullptr || occupancy->is_nonzero(i, j);
  };

  const bool m_outer = strategy != arch::ReuseStrategy::kAStationary;
  std::vector<Group> groups;
  std::int64_t visits = 0;
  for (std::int64_t outer = 0; outer < (m_outer ? col_tiles : row_tiles);
       ++outer) {
    Group g;
    g.key = outer;
    for (std::int64_t inner = 0; inner < (m_outer ? row_tiles : col_tiles);
         ++inner) {
      const std::int64_t i = m_outer ? inner : outer;
      const std::int64_t j = m_outer ? outer : inner;
      if (is_executed(i, j)) g.members.push_back(inner);
    }
    if (g.members.empty()) continue;  // fully skipped group: no traffic
    g.first = visits;
    visits += static_cast<std::int64_t>(g.members.size());
    g.last = visits - 1;
    groups.push_back(std::move(g));
  }

  MemoryPlan out;
  out.strategy = strategy;
  if (visits == 0) return out;

  // a_stationary keeps the whole output resident when it fits; otherwise
  // partials spill after every visit and reload on every revisit.
  const std::int64_t a_stationary_resident_bytes =
      2 * shape.t * std::min(array_rows, shape.n) * in_b +       // A buffers
      2 * std::min(array_rows, shape.n) * std::min(array_cols, shape.m) *
          in_b +                                                 // B buffers
      shape.t * shape.m * acc_b;                                 // whole C
  const bool resident_c = strategy == arch::ReuseStrategy::kAStationary &&
                          a_stationary_resident_bytes <=
                              config_.mem.spad_bytes;
  out.spad_peak_bytes = resident_c ? a_stationary_resident_bytes
                                   : min_spad_bytes(shape, strategy);

  std::vector<Transfer> transfers;
  transfers.reserve(static_cast<std::size_t>(visits) * 2 + groups.size() * 2);
  const std::int64_t num_groups = static_cast<std::int64_t>(groups.size());

  if (m_outer) {
    // output_stationary / b_stationary: sweep column groups; C(j)
    // accumulates in a single resident buffer, drained once per group (the
    // next group's first visit waits on the drain).
    const auto group_b_bytes = [&](const Group& g) {
      std::int64_t total = 0;
      for (const std::int64_t i : g.members) total += b_bytes(i, g.key);
      return total;
    };
    std::int64_t v = 0;
    for (std::int64_t gi = 0; gi < num_groups; ++gi) {
      const Group& g = groups[gi];
      if (strategy == arch::ReuseStrategy::kBStationary && gi == 0) {
        transfers.push_back({group_b_bytes(g), g.first, -1, false});
      }
      for (const std::int64_t i : g.members) {
        transfers.push_back({a_bytes(i), v, v - 2, false});
        if (strategy == arch::ReuseStrategy::kOutputStationary) {
          transfers.push_back({b_bytes(i, g.key), v, v - 2, false});
        }
        ++v;
      }
      if (strategy == arch::ReuseStrategy::kBStationary && gi + 1 < num_groups) {
        // Prefetch the next column group's burst while this group computes;
        // the burst reuses the buffer freed when group gi-1 finished.
        transfers.push_back({group_b_bytes(groups[gi + 1]),
                             groups[gi + 1].first,
                             gi >= 1 ? groups[gi - 1].last : -1, false});
      }
      transfers.push_back({c_bytes(g.key),
                           gi + 1 < num_groups ? groups[gi + 1].first : -1,
                           g.last, true});
    }
  } else {
    // a_stationary: sweep row groups; A(i) arrives in one burst per group,
    // prefetched a group ahead, B tiles stream per visit.
    std::vector<std::int64_t> last_visit_of_col(col_tiles, -1);
    std::int64_t v = 0;
    for (std::int64_t gi = 0; gi < num_groups; ++gi) {
      const Group& g = groups[gi];
      if (gi == 0) transfers.push_back({a_bytes(g.key), g.first, -1, false});
      for (const std::int64_t j : g.members) {
        transfers.push_back({b_bytes(g.key, j), v, v - 2, false});
        if (!resident_c) {
          if (last_visit_of_col[j] >= 0) {
            transfers.push_back({c_bytes(j), v, v - 2, false});  // reload
          }
          transfers.push_back({c_bytes(j), -1, v, true});  // spill out
        }
        last_visit_of_col[j] = v;
        ++v;
      }
      if (gi + 1 < num_groups) {
        transfers.push_back({a_bytes(groups[gi + 1].key),
                             groups[gi + 1].first,
                             gi >= 1 ? groups[gi - 1].last : -1, false});
      }
    }
    if (resident_c) {
      for (std::int64_t j = 0; j < col_tiles; ++j) {
        if (last_visit_of_col[j] >= 0) {
          transfers.push_back({c_bytes(j), -1, last_visit_of_col[j], true});
        }
      }
    }
  }

  // Re-time compute against the in-order DMA channel.  Compute is lazy:
  // visit v's end time is resolved the first time a transfer depends on it
  // (or at the end), after all of v's fetches have been issued — issue
  // order guarantees that.
  std::vector<std::int64_t> ready(static_cast<std::size_t>(visits), 0);
  std::vector<std::int64_t> end(static_cast<std::size_t>(visits), 0);
  std::int64_t dma_free = 0;
  std::int64_t comp_clock = 0;
  std::int64_t next_compute = 0;
  const auto compute_through = [&](std::int64_t u) {
    while (next_compute <= u) {
      comp_clock = std::max(comp_clock,
                            ready[static_cast<std::size_t>(next_compute)]) +
                   per_tile_cycles;
      end[static_cast<std::size_t>(next_compute)] = comp_clock;
      ++next_compute;
    }
  };
  for (const Transfer& tr : transfers) {
    std::int64_t start = dma_free;
    if (tr.after_visit >= 0) {
      compute_through(tr.after_visit);
      start = std::max(start, end[static_cast<std::size_t>(tr.after_visit)]);
    }
    dma_free = start + model_.transfer_cycles(tr.bytes);
    if (tr.consumer >= 0) {
      std::int64_t& r = ready[static_cast<std::size_t>(tr.consumer)];
      r = std::max(r, dma_free);
    }
    ++out.dma_transfers;
    (tr.write ? out.dram_write_bytes : out.dram_read_bytes) += tr.bytes;
  }
  compute_through(visits - 1);
  out.compute_cycles = per_tile_cycles * visits;
  out.total_cycles = std::max(comp_clock, dma_free);
  out.stall_cycles = out.total_cycles - out.compute_cycles;
  return out;
}

std::int64_t projected_gemm_bytes(const gemm::GemmShape& shape,
                                  const arch::ArrayConfig& config) {
  const std::int64_t in_b = (config.input_bits + 7) / 8;
  const std::int64_t acc_b = (config.acc_bits + 7) / 8;
  return shape.t * shape.n * in_b +   // activations A
         shape.n * shape.m * in_b +   // weights B
         shape.t * shape.m * acc_b;   // outputs C
}

std::int64_t projected_fused_rider_bytes(const gemm::GemmShape& shape,
                                         const arch::ArrayConfig& config) {
  const std::int64_t in_b = (config.input_bits + 7) / 8;
  const std::int64_t acc_b = (config.acc_bits + 7) / 8;
  return shape.t * shape.n * in_b +   // activations A (private rows)
         shape.t * shape.m * acc_b;   // outputs C (private rows)
}

}  // namespace af::mem
