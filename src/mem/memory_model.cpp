#include "mem/memory_model.h"

#include "util/status.h"

namespace af::mem {

MemoryModel::MemoryModel(const arch::ArrayConfig& config)
    : mem_(config.mem),
      input_bytes_((config.input_bits + 7) / 8),
      acc_bytes_((config.acc_bits + 7) / 8) {
  mem_.validate();
}

std::int64_t MemoryModel::transfer_cycles(std::int64_t bytes) const {
  AF_CHECK(bytes > 0, "DMA transfer needs a positive byte count, got "
                          << bytes);
  return mem_.dram_latency_cycles +
         (bytes + mem_.dram_bytes_per_cycle - 1) / mem_.dram_bytes_per_cycle;
}

}  // namespace af::mem
