// Splits a tiled GEMM into scratchpad-resident working sets, issues the
// DMA fetch/evict stream with double-buffering, and counts the stall
// cycles whenever compute outruns the fetch stream.
//
// The array executes the GEMM as a grid of T x R by R x C tile products
// (gemm/tiling.h): row groups over the reduction dimension N, column
// groups over the output dimension M.  Per visit (i, j) the array needs
// the activation panel A(i) (T x n_extent), the weight tile B(i, j)
// (n_extent x m_extent), and accumulates into the output group C(j)
// (T x m_extent).  The scheduler decides which of those stays resident in
// the scratchpad (arch::ReuseStrategy) and streams the rest through
// double-buffered DMA:
//
//   output_stationary  M-outer; per-visit A + B fetches, C(j) accumulates
//                      in place and is evicted once per group.
//   b_stationary       M-outer; each column group of B arrives in ONE
//                      group-sized burst, prefetched a group ahead — same
//                      traffic as output_stationary in fewer transfers.
//   a_stationary       N-outer; A(i) fetched once per row group.  Output
//                      partials stay resident when the whole C fits
//                      (minimal possible traffic: every operand moved
//                      exactly once), else they spill/reload per revisit.
//
// The DMA timeline is a single in-order channel: transfers issue in
// program order, each charged MemoryModel::transfer_cycles, fetches gated
// by the double-buffer being free (the visit two slots back — or one
// GROUP back for group-granular buffers — must have finished computing),
// evictions gated by their producing visit.  Compute of visit v starts at
// max(end of visit v-1, arrival of v's operands).  All integer math: both
// engine backends re-time through this exact code, preserving the exact
// analytic==cycle equivalence contract.
//
// Block-sparse GEMMs (arch::TileOccupancy) skip zero tiles' visits AND
// their traffic; a column group with no executed visit moves no bytes at
// all (its output is zero and DRAM is assumed zero-initialized).

#pragma once

#include <cstdint>

#include "arch/config.h"
#include "arch/sparse.h"
#include "gemm/tiling.h"
#include "mem/memory_model.h"

namespace af::mem {

class TileScheduler {
 public:
  // Requires config.mem.enabled (a disabled hierarchy has no plan).
  explicit TileScheduler(const arch::ArrayConfig& config);

  // Schedule `shape`'s tile grid given the array cost of one tile visit
  // (`per_tile_cycles`, uniform across tiles — zero-padded edge tiles cost
  // the same as interior ones).  `occupancy` restricts execution to the
  // non-zero tiles (nullptr = dense).  Uses the config's reuse strategy;
  // kAuto plans every strategy that fits the scratchpad and returns the
  // cheapest (fewest total cycles, then fewest DRAM bytes).  Throws
  // af::Error{kInvalidArgument} when no permitted strategy fits.
  MemoryPlan plan(const gemm::GemmShape& shape, std::int64_t per_tile_cycles,
                  const arch::TileOccupancy* occupancy = nullptr) const;

  // Smallest scratchpad (bytes) on which `strategy` can run `shape`,
  // double buffers included; kAuto = min over the concrete strategies.
  std::int64_t min_spad_bytes(const gemm::GemmShape& shape,
                              arch::ReuseStrategy strategy) const;

  const MemoryModel& model() const { return model_; }

 private:
  MemoryPlan plan_one(const gemm::GemmShape& shape,
                      arch::ReuseStrategy strategy,
                      std::int64_t per_tile_cycles,
                      const arch::TileOccupancy* occupancy) const;

  arch::ArrayConfig config_;
  MemoryModel model_;
};

// Projected DRAM traffic of one GEMM for serving admission: the compulsory
// A + B + C bytes (every operand moved once — the lower bound any reuse
// strategy can only meet, never beat).  Deliberately O(1) and independent
// of MemoryConfig::enabled so per-tenant byte accounting stays meaningful
// on magic-memory servers too.
std::int64_t projected_gemm_bytes(const gemm::GemmShape& shape,
                                  const arch::ArrayConfig& config);

// Projected DRAM traffic of a GEMM that RIDES a same-weight fusion: only
// its private A activations and C outputs move — the shared B panel is
// streamed once for the whole fused stack and billed to the batch member
// that brought it in.  The marginal byte cost batch assembly should charge
// a fused rider (charging projected_gemm_bytes would double-count B per
// rider and under-fill decode batches).
std::int64_t projected_fused_rider_bytes(const gemm::GemmShape& shape,
                                         const arch::ArrayConfig& config);

}  // namespace af::mem
