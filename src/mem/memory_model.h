// Scratchpad/DRAM memory hierarchy in front of the systolic array.
//
// Every engine used to assume magic memory: operands appear at the array
// edge for free, so the simulator could never be memory-bound.  This
// module models the data movement the array actually needs — a scratchpad
// of finite capacity fed by a single in-order DMA channel from DRAM with
// finite bandwidth (bytes/cycle) and a fixed per-transfer latency — and
// re-times a tiled GEMM through it (mem::TileScheduler).  The knobs live
// in arch::MemoryConfig; disabled (the default) reproduces magic memory
// bit-identically.
//
// Everything here is exact integer arithmetic on purpose: the analytic
// and cycle backends both finalize their estimates through the SAME plan
// (engine::Engine::finalized), so the facade's exact analytic==cycle
// equivalence contract extends to cycles, stalls, traffic and energy with
// the memory model enabled.

#pragma once

#include <cstdint>

#include "arch/config.h"

namespace af::mem {

// The outcome of scheduling one tiled GEMM's data movement through the
// hierarchy (mem::TileScheduler::plan).
struct MemoryPlan {
  // The concrete strategy the plan uses (never ReuseStrategy::kAuto —
  // auto resolves to the winner).
  arch::ReuseStrategy strategy = arch::ReuseStrategy::kOutputStationary;
  std::int64_t compute_cycles = 0;  // sum of the executed tiles' array cycles
  std::int64_t stall_cycles = 0;    // total - compute: cycles lost to DMA
  std::int64_t total_cycles = 0;    // makespan incl. the writeback drain
  std::int64_t dram_read_bytes = 0;
  std::int64_t dram_write_bytes = 0;
  std::int64_t spad_peak_bytes = 0;  // double-buffered scratchpad footprint
  std::int64_t dma_transfers = 0;

  std::int64_t dram_bytes() const { return dram_read_bytes + dram_write_bytes; }
};

// Byte-level view of the hierarchy: operand widths derived from the
// ArrayConfig's datapath (input_bits for A/B, acc_bits for outputs),
// transfer timing from the MemoryConfig.
class MemoryModel {
 public:
  explicit MemoryModel(const arch::ArrayConfig& config);

  const arch::MemoryConfig& config() const { return mem_; }
  std::int64_t input_bytes() const { return input_bytes_; }  // per A/B element
  std::int64_t acc_bytes() const { return acc_bytes_; }      // per C element

  // Cycles one DMA transfer of `bytes` occupies the in-order channel:
  // fixed DRAM latency plus bandwidth-limited streaming.
  std::int64_t transfer_cycles(std::int64_t bytes) const;

 private:
  arch::MemoryConfig mem_;
  std::int64_t input_bytes_ = 0;
  std::int64_t acc_bytes_ = 0;
};

}  // namespace af::mem
