// Array-level energy/power model (reproduces Fig. 9).
//
// Primary model: STEADY-STATE PER-MODE POWER, matching the paper's
// methodology — Fig. 9 shows "the power cost of each pipeline mode ...
// separately", i.e. one power figure per configuration measured with the
// array streaming at full rate, and the per-application average is the
// execution-time-weighted mix of the per-mode figures.  Per cycle:
//
//   multiplier + CSA datapath  — all R*C PEs compute each cycle; scaled by a
//        glitch factor growing with collapse depth (merging k stages
//        lengthens combinational chains and spurious transitions propagate
//        through the whole chain — the classic energy tax of transparent
//        pipelining, paper refs [22][23]);
//   bypass muxes               — ArrayFlex only, every mode (the paper puts
//        them in series with the datapath permanently);
//   CPA resolutions            — only group-boundary rows resolve (R*C/k);
//   pipeline register writes   — only group-boundary registers latch;
//   clock tree                 — an ungateable trunk share plus leaf shares;
//        leaves of bypassed (transparent) registers are clock-gated with
//        finite efficiency ("transparent registers remain clock-gated",
//        paper Section I); weight registers are gated once stationary;
//   accumulators, leakage.
//
// A second, utilization-aware model (from_counters) prices the exact
// activity counters the cycle-accurate simulator reports — fill/drain
// bubbles spend clock-but-no-datapath energy.  It is used for validation
// and the methodology-ablation bench; the difference between the two is
// documented in EXPERIMENTS.md.
//
// Calibration: EnergyParams::generic28nm is fixed ONCE so that (a) the
// conventional-vs-ArrayFlex per-mode ratios land ArrayFlex normal mode
// slightly above the conventional SA (paper Section IV-B) and (b) the
// per-application aggregates land in Fig. 9's 13-15% / 17-23% bands.  The
// same constants serve every CNN, both array sizes and every mode.
//
// Simulation-calibrated alternative: hw::characterize_energy()
// (hw/energy_characterization.h) derives the per-op entries from measured
// gate-level toggles on the PE netlist instead; pass its .params to the
// SaPowerModel constructor to price workloads with netlist-grounded
// energies rather than the paper-anchored fit.

#pragma once

#include "arch/activity.h"
#include "arch/clocking.h"
#include "arch/config.h"
#include "arch/latency.h"

namespace af::arch {

struct EnergyParams {
  // Femtojoules per event.
  double e_mult_fj = 420.0;       // 32x32 multiply
  double e_csa_fj = 110.0;        // 64-bit 3:2 compression (ArrayFlex only)
  double e_bypass_mux_fj = 35.0;  // bypass muxes crossed per op (ArrayFlex)
  double e_cpa_fj = 110.0;        // 64-bit carry-propagate resolve
  double e_reg_bit_fj = 1.4;      // data energy per latched register bit
  double e_acc_fj = 150.0;        // accumulator read-modify-write
  double e_clk_bit_fj = 2.0;      // clock tree + clock pin, per FF bit/cycle
  // Clock distribution structure: `clock_trunk_fraction` of clock energy is
  // spine/trunk buffering that cannot be gated per-register; gating a
  // bypassed register's leaf saves `clock_gate_efficiency` of that leaf.
  double clock_trunk_fraction = 0.25;
  double clock_gate_efficiency = 0.85;
  // Extra datapath switching per additional collapsed stage.
  double glitch_per_stage = 0.12;
  double leak_mw_per_pe = 0.012;
  // DRAM access energy per byte moved (memory hierarchy, mem::TileScheduler;
  // LPDDR-class ~2.5 pJ/bit).  Charged by the engine on top of the array
  // pricing — from_counters never sees traffic — and exactly zero cost when
  // the MemoryConfig is disabled.
  double e_dram_byte_fj = 20000.0;

  static EnergyParams generic28nm() { return EnergyParams{}; }
};

struct PowerResult {
  double energy_pj = 0.0;
  double time_ps = 0.0;
  double power_mw() const { return time_ps > 0 ? energy_pj / time_ps * 1e3 : 0.0; }
  double edp() const { return energy_pj * time_ps; }  // pJ*ps
};

class SaPowerModel {
 public:
  SaPowerModel(const ArrayConfig& config, const ClockModel& clock,
               const EnergyParams& params = EnergyParams::generic28nm());

  // --- steady-state per-mode power (the Fig. 9 bars) ---------------------

  // ArrayFlex configured for mode k, streaming at full rate at Tclock(k).
  double steady_power_arrayflex_mw(int k) const;

  // Conventional fixed-pipeline SA at the conventional clock.
  double steady_power_conventional_mw() const;

  // --- per-workload results (per-mode power x Eq. 6 time) ----------------

  PowerResult arrayflex(const gemm::GemmShape& shape, int k) const;
  PowerResult conventional(const gemm::GemmShape& shape) const;

  // --- utilization-aware alternative --------------------------------------

  // Prices explicit activity counters (simulator-measured or closed-form);
  // idle fill/drain cycles burn clock but no datapath energy.
  PowerResult from_counters(const ActivityCounters& activity,
                            std::int64_t total_cycles, double period_ps,
                            bool arrayflex_hardware, int k) const;

  PowerResult arrayflex_utilization_aware(const gemm::GemmShape& shape,
                                          int k) const;
  PowerResult conventional_utilization_aware(const gemm::GemmShape& shape) const;

  const EnergyParams& params() const { return params_; }

 private:
  // Steady-state energy per cycle for the whole array, femtojoules.
  double steady_cycle_energy_fj(bool arrayflex_hardware, int k) const;

  ArrayConfig config_;
  const ClockModel& clock_;
  EnergyParams params_;
};

}  // namespace af::arch
