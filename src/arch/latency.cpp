#include "arch/latency.h"

#include "util/math.h"
#include "util/status.h"

namespace af::arch {

std::int64_t tile_latency_cycles(int rows, int cols, std::int64_t t, int k) {
  AF_CHECK(rows > 0 && cols > 0, "array dims must be positive");
  AF_CHECK(t > 0, "tile T dimension must be positive, got " << t);
  AF_CHECK(k >= 1, "collapse depth must be >= 1");
  AF_CHECK(divides(k, rows) && divides(k, cols),
           "k=" << k << " must divide R=" << rows << " and C=" << cols);
  // L(k) = R + R/k + C/k + T - 2   (Eq. 3; Eq. 1 when k = 1)
  return static_cast<std::int64_t>(rows) + rows / k + cols / k + t - 2;
}

std::int64_t tile_latency_cycles_asym(int rows, int cols, std::int64_t t,
                                      int k_v, int k_h) {
  AF_CHECK(rows > 0 && cols > 0, "array dims must be positive");
  AF_CHECK(t > 0, "tile T dimension must be positive, got " << t);
  AF_CHECK(k_v >= 1 && divides(k_v, rows),
           "k_v=" << k_v << " must divide R=" << rows);
  AF_CHECK(k_h >= 1 && divides(k_h, cols),
           "k_h=" << k_h << " must divide C=" << cols);
  return static_cast<std::int64_t>(rows) + rows / k_v + cols / k_h + t - 2;
}

std::int64_t total_latency_cycles_asym(const gemm::GemmShape& shape,
                                       const ArrayConfig& config, int k_v,
                                       int k_h) {
  config.validate();
  return tile_latency_cycles_asym(config.rows, config.cols, shape.t, k_v, k_h) *
         gemm::tile_count(shape, config.rows, config.cols);
}

std::int64_t total_latency_cycles(const gemm::GemmShape& shape,
                                  const ArrayConfig& config, int k) {
  config.validate();
  AF_CHECK(config.supports(k), "mode k=" << k << " not supported by array");
  const std::int64_t per_tile =
      tile_latency_cycles(config.rows, config.cols, shape.t, k);
  return per_tile * gemm::tile_count(shape, config.rows, config.cols);
}

double absolute_time_ps(std::int64_t cycles, double period_ps) {
  AF_CHECK(cycles >= 0, "cycle count must be non-negative");
  AF_CHECK(period_ps > 0, "clock period must be positive");
  return static_cast<double>(cycles) * period_ps;
}

}  // namespace af::arch
