// Sparse-layer execution — the paper's declared future work (Section V):
// "since sparse layers can be mapped to GEMM blocks and executed by SAs
// using efficient peripheral circuitry, we plan to also explore the
// applicability of ArrayFlex to sparse layers."
//
// This module implements the block-level variant of that idea: the weight
// matrix B is inspected at tile granularity (R x C blocks, the unit the
// weight-stationary array loads); tiles that are entirely zero are skipped
// by the sequencer, so they cost neither preload nor streaming cycles.
// The latency model becomes
//
//     L_total(k) = L(k) * nnz_tiles          (vs. Eq. 4's all-tiles product)
//
// and the cycle-accurate simulator verifies both the cycle count and that
// skipping cannot change the result (an all-zero B tile contributes zero to
// every accumulator).

#pragma once

#include <cstdint>
#include <vector>

#include "arch/config.h"
#include "gemm/matrix.h"
#include "gemm/tiling.h"
#include "util/rng.h"

namespace af::arch {

// Which R x C tiles of a weight matrix hold at least one non-zero.
class TileOccupancy {
 public:
  // Scan an explicit weight matrix (N x M) at tile granularity.
  static TileOccupancy from_matrix(const gemm::Mat32& b, int rows, int cols);

  // Synthetic occupancy: each tile is non-zero with probability `density`
  // (deterministic given the RNG) — used to model pruned layers whose
  // actual weights we do not have.
  static TileOccupancy synthetic(const gemm::GemmShape& shape, int rows,
                                 int cols, double density, Rng& rng);

  std::int64_t row_tiles() const { return row_tiles_; }
  std::int64_t col_tiles() const { return col_tiles_; }
  std::int64_t total_tiles() const { return row_tiles_ * col_tiles_; }
  std::int64_t nonzero_tiles() const;
  double density() const;

  bool is_nonzero(std::int64_t row_tile, std::int64_t col_tile) const;

 private:
  TileOccupancy(std::int64_t row_tiles, std::int64_t col_tiles);

  std::int64_t row_tiles_ = 0;
  std::int64_t col_tiles_ = 0;
  std::vector<std::uint8_t> nonzero_;
};

// Cycles for a tiled GEMM when all-zero tiles are skipped:
// L(k) * nnz_tiles.  Falls back to Eq. 4 when the occupancy is dense.
std::int64_t sparse_total_latency_cycles(const gemm::GemmShape& shape,
                                         const ArrayConfig& config, int k,
                                         const TileOccupancy& occupancy);

}  // namespace af::arch
