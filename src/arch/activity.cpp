#include "arch/activity.h"

#include "util/math.h"
#include "util/status.h"

namespace af::arch {

ActivityCounters predict_tile_activity(const ArrayConfig& config,
                                       std::int64_t t, int k) {
  AF_CHECK(config.supports(k), "mode k=" << k << " not supported");
  return predict_tile_activity_asym(config, t, k, k);
}

ActivityCounters predict_tile_activity_asym(const ArrayConfig& config,
                                            std::int64_t t, int k_v,
                                            int k_h) {
  config.validate();
  AF_CHECK(k_v >= 1 && divides(k_v, config.rows),
           "vertical collapse k_v=" << k_v << " must divide R=" << config.rows);
  AF_CHECK(k_h >= 1 && divides(k_h, config.cols),
           "horizontal collapse k_h=" << k_h
                                      << " must divide C=" << config.cols);
  AF_CHECK(t > 0, "tile T dimension must be positive");

  const std::int64_t rows = config.rows;
  const std::int64_t cols = config.cols;
  const std::int64_t h_groups = cols / k_h;
  const std::int64_t v_groups = rows / k_v;

  ActivityCounters a;
  a.mult_ops = t * rows * cols;
  a.csa_ops = a.mult_ops;
  a.cpa_ops = t * cols * v_groups;
  a.hreg_writes = t * rows * (h_groups - 1);
  a.vreg_writes = t * cols * (v_groups - 1);
  a.acc_writes = t * cols;
  a.wreg_writes = rows * rows * cols;
  a.streaming_cycles = t + v_groups + h_groups - 2;
  a.hreg_bypassed_bit_cycles =
      rows * (cols - h_groups) * config.input_bits * a.streaming_cycles;
  a.vreg_bypassed_bit_cycles =
      cols * (rows - v_groups) * config.acc_bits * a.streaming_cycles;
  return a;
}

ActivityCounters predict_gemm_activity(const gemm::GemmShape& shape,
                                       const ArrayConfig& config, int k) {
  const std::int64_t tiles =
      gemm::tile_count(shape, config.rows, config.cols);
  ActivityCounters per = predict_tile_activity(config, shape.t, k);
  ActivityCounters out;
  out.mult_ops = per.mult_ops * tiles;
  out.csa_ops = per.csa_ops * tiles;
  out.cpa_ops = per.cpa_ops * tiles;
  out.hreg_writes = per.hreg_writes * tiles;
  out.vreg_writes = per.vreg_writes * tiles;
  out.wreg_writes = per.wreg_writes * tiles;
  out.acc_writes = per.acc_writes * tiles;
  out.hreg_bypassed_bit_cycles = per.hreg_bypassed_bit_cycles * tiles;
  out.vreg_bypassed_bit_cycles = per.vreg_bypassed_bit_cycles * tiles;
  out.streaming_cycles = per.streaming_cycles * tiles;
  return out;
}

}  // namespace af::arch
