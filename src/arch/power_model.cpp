#include "arch/power_model.h"

#include "util/math.h"
#include "util/status.h"

namespace af::arch {

SaPowerModel::SaPowerModel(const ArrayConfig& config, const ClockModel& clock,
                           const EnergyParams& params)
    : config_(config), clock_(clock), params_(params) {
  config_.validate();
}

double SaPowerModel::steady_cycle_energy_fj(bool arrayflex_hardware,
                                            int k) const {
  AF_CHECK(k >= 1, "mode must be >= 1");
  AF_CHECK(divides(k, config_.rows) && divides(k, config_.cols),
           "k=" << k << " must divide the array dimensions");
  const double rows = config_.rows;
  const double cols = config_.cols;
  const double pes = rows * cols;
  const double h_groups = cols / k;
  const double v_groups = rows / k;
  const double glitch =
      arrayflex_hardware ? 1.0 + params_.glitch_per_stage * (k - 1) : 1.0;

  double fj = 0.0;
  // Datapath: every PE multiplies every cycle at full streaming rate.
  fj += pes * params_.e_mult_fj * glitch;
  if (arrayflex_hardware) {
    fj += pes * params_.e_csa_fj * glitch;
    fj += pes * params_.e_bypass_mux_fj;
  }
  // Only group-boundary rows resolve with their CPA.
  fj += pes / k * params_.e_cpa_fj;

  // Register data energy: active horizontal group-head registers and the
  // vertical boundary registers (the bottom one feeds the accumulator).
  const double h_active_bits = rows * (h_groups - 1) * config_.input_bits;
  const double v_active_bits = cols * v_groups * config_.acc_bits;
  fj += (h_active_bits + v_active_bits) * params_.e_reg_bit_fj;
  fj += cols * params_.e_acc_fj;  // one output per column per cycle

  // Clock tree: weight registers are gated once stationary (both designs);
  // bypassed pipeline registers are gated with finite efficiency.
  const double h_bits = rows * (cols - 1) * config_.input_bits;
  const double v_bits = cols * rows * config_.acc_bits;
  const double total_bits = h_bits + v_bits;
  const double active_bits = h_active_bits + v_active_bits;
  const double gated_bits = total_bits - active_bits;
  const double leaf = active_bits + gated_bits * (1.0 - params_.clock_gate_efficiency);
  fj += params_.e_clk_bit_fj * (params_.clock_trunk_fraction * total_bits +
                                (1.0 - params_.clock_trunk_fraction) * leaf);
  return fj;
}

double SaPowerModel::steady_power_arrayflex_mw(int k) const {
  AF_CHECK(config_.supports(k), "mode k=" << k << " not supported");
  // fJ / ps = mW.
  return steady_cycle_energy_fj(/*arrayflex_hardware=*/true, k) /
             clock_.period_ps(k) +
         params_.leak_mw_per_pe * config_.num_pes();
}

double SaPowerModel::steady_power_conventional_mw() const {
  return steady_cycle_energy_fj(/*arrayflex_hardware=*/false, 1) /
             clock_.conventional_period_ps() +
         params_.leak_mw_per_pe * config_.num_pes();
}

PowerResult SaPowerModel::arrayflex(const gemm::GemmShape& shape, int k) const {
  PowerResult out;
  out.time_ps = absolute_time_ps(total_latency_cycles(shape, config_, k),
                                 clock_.period_ps(k));
  out.energy_pj = steady_power_arrayflex_mw(k) * out.time_ps * 1e-3;
  return out;
}

PowerResult SaPowerModel::conventional(const gemm::GemmShape& shape) const {
  PowerResult out;
  out.time_ps = absolute_time_ps(total_latency_cycles(shape, config_, 1),
                                 clock_.conventional_period_ps());
  out.energy_pj = steady_power_conventional_mw() * out.time_ps * 1e-3;
  return out;
}

PowerResult SaPowerModel::from_counters(const ActivityCounters& activity,
                                        std::int64_t total_cycles,
                                        double period_ps,
                                        bool arrayflex_hardware, int k) const {
  AF_CHECK(k >= 1, "mode must be >= 1");
  AF_CHECK(period_ps > 0, "period must be positive");

  const double glitch =
      arrayflex_hardware ? 1.0 + params_.glitch_per_stage * (k - 1) : 1.0;

  double fj = 0.0;
  // Datapath priced per actual (valid-data) operation.
  fj += static_cast<double>(activity.mult_ops) * params_.e_mult_fj * glitch;
  if (arrayflex_hardware) {
    fj += static_cast<double>(activity.csa_ops) * params_.e_csa_fj * glitch;
    fj += static_cast<double>(activity.mult_ops) * params_.e_bypass_mux_fj;
  }
  fj += static_cast<double>(activity.cpa_ops) * params_.e_cpa_fj;

  // Register data energy (width-weighted).
  fj += static_cast<double>(activity.hreg_writes) * config_.input_bits *
        params_.e_reg_bit_fj;
  fj += static_cast<double>(activity.vreg_writes) * config_.acc_bits *
        params_.e_reg_bit_fj;
  fj += static_cast<double>(activity.wreg_writes) * config_.input_bits *
        params_.e_reg_bit_fj;
  fj += static_cast<double>(activity.acc_writes) * params_.e_acc_fj;

  // Clock tree burns every cycle, idle or not.
  const std::int64_t rows = config_.rows;
  const std::int64_t cols = config_.cols;
  const std::int64_t h_bits = rows * (cols - 1) * config_.input_bits;
  const std::int64_t v_bits = cols * rows * config_.acc_bits;
  const std::int64_t w_bits = rows * cols * config_.input_bits;
  const std::int64_t preload_cycles = total_cycles - activity.streaming_cycles;
  const double total_bit_cycles =
      static_cast<double>((h_bits + v_bits) * activity.streaming_cycles) +
      static_cast<double>(w_bits * preload_cycles);
  const double gated_bit_cycles =
      static_cast<double>(activity.hreg_bypassed_bit_cycles +
                          activity.vreg_bypassed_bit_cycles);
  AF_ASSERT(gated_bit_cycles <= total_bit_cycles,
            "gated bit-cycles exceed the clock total");
  const double leaf =
      (total_bit_cycles - gated_bit_cycles) +
      gated_bit_cycles * (1.0 - params_.clock_gate_efficiency);
  fj += params_.e_clk_bit_fj *
        (params_.clock_trunk_fraction * total_bit_cycles +
         (1.0 - params_.clock_trunk_fraction) * leaf);

  PowerResult out;
  out.time_ps = absolute_time_ps(total_cycles, period_ps);
  // 1 mW = 1 fJ/ps.
  fj += params_.leak_mw_per_pe * static_cast<double>(config_.num_pes()) *
        out.time_ps;
  out.energy_pj = fj * 1e-3;
  return out;
}

PowerResult SaPowerModel::arrayflex_utilization_aware(
    const gemm::GemmShape& shape, int k) const {
  const ActivityCounters activity = predict_gemm_activity(shape, config_, k);
  const std::int64_t cycles = total_latency_cycles(shape, config_, k);
  return from_counters(activity, cycles, clock_.period_ps(k),
                       /*arrayflex_hardware=*/true, k);
}

PowerResult SaPowerModel::conventional_utilization_aware(
    const gemm::GemmShape& shape) const {
  const ActivityCounters activity = predict_gemm_activity(shape, config_, 1);
  const std::int64_t cycles = total_latency_cycles(shape, config_, 1);
  return from_counters(activity, cycles, clock_.conventional_period_ps(),
                       /*arrayflex_hardware=*/false, 1);
}

}  // namespace af::arch
