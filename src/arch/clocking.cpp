#include "arch/clocking.h"

#include "hw/builders/pe_datapath.h"
#include "hw/netlist.h"
#include "hw/sta.h"
#include "util/status.h"

namespace af::arch {

// ---------------------------------------------------------------- analytic

AnalyticClockModel::AnalyticClockModel(const DelayProfile& profile,
                                       double conventional_period_ps)
    : profile_(profile),
      conventional_ps_(conventional_period_ps > 0.0 ? conventional_period_ps
                                                    : profile.base_ps()) {
  AF_CHECK(profile_.base_ps() > 0, "delay profile base must be positive");
  AF_CHECK(profile_.collapse_ps() > 0,
           "delay profile collapse term must be positive");
}

double AnalyticClockModel::period_ps(int k) const {
  AF_CHECK(k >= 1, "collapse depth must be >= 1");
  return profile_.base_ps() + static_cast<double>(k) * profile_.collapse_ps();
}

AnalyticClockModel AnalyticClockModel::paper_fit() {
  // Fit of Eq. 5 through the paper's published ArrayFlex endpoints
  // (k=1 -> 555.6 ps, k=4 -> 714.3 ps): per-k collapse term
  // (714.3 - 555.6) / 3 = 52.9 ps and base 555.6 - 52.9 = 502.7 ps.
  // The split of the base into FF/mul/add and of the collapse term into
  // CSA/mux follows the relative magnitudes of the STA model.
  DelayProfile p;
  p.d_ff = 75.0;
  p.d_mul = 302.7;
  p.d_add = 125.0;
  p.d_csa = 30.9;
  p.d_mux = 11.0;
  return AnalyticClockModel(p, /*conventional_period_ps=*/500.0);
}

double asymmetric_period_ps(const DelayProfile& profile, int k_v, int k_h) {
  AF_CHECK(k_v >= 1 && k_h >= 1, "collapse depths must be >= 1");
  return profile.base_ps() + k_v * (profile.d_csa + profile.d_mux) +
         k_h * profile.d_mux;
}

// -------------------------------------------------------------- calibrated

CalibratedClockModel::CalibratedClockModel(double conventional_period_ps,
                                           std::map<int, double> points)
    : conventional_ps_(conventional_period_ps), points_(std::move(points)) {
  AF_CHECK(conventional_ps_ > 0, "conventional period must be positive");
  AF_CHECK(points_.size() >= 2, "calibration needs at least two (k, period) points");
  for (const auto& [k, ps] : points_) {
    AF_CHECK(k >= 1 && ps > 0, "bad calibration point (" << k << ", " << ps << ")");
  }

  // Quadratic through first, middle and last point (exact when only three
  // points are given, which is the paper's table).
  const auto first = points_.begin();
  auto last = points_.end();
  --last;
  auto mid = points_.begin();
  std::advance(mid, static_cast<long>(points_.size() / 2));
  if (mid == first || mid == last) {
    // Two points: linear.
    qa_ = 0.0;
    qb_ = (last->second - first->second) /
          static_cast<double>(last->first - first->first);
    qc_ = first->second - qb_ * static_cast<double>(first->first);
  } else {
    const double x1 = first->first, y1 = first->second;
    const double x2 = mid->first, y2 = mid->second;
    const double x3 = last->first, y3 = last->second;
    const double d21 = (y2 - y1) / (x2 - x1);
    const double d32 = (y3 - y2) / (x3 - x2);
    qa_ = (d32 - d21) / (x3 - x1);
    qb_ = d21 - qa_ * (x1 + x2);
    qc_ = y1 - (qa_ * x1 + qb_) * x1;
  }

  // Eq. 7 coefficients: secant through the extreme published points.
  collapse_ps_ = (last->second - first->second) /
                 static_cast<double>(last->first - first->first);
  base_ps_ = first->second - collapse_ps_ * static_cast<double>(first->first);
  AF_CHECK(collapse_ps_ > 0, "calibration points must increase with k");
}

double CalibratedClockModel::period_ps(int k) const {
  AF_CHECK(k >= 1, "collapse depth must be >= 1");
  const auto it = points_.find(k);
  if (it != points_.end()) return it->second;
  // Interpolate / extrapolate with the quadratic, clamped to stay above the
  // k=1 point (periods are monotone in k).
  const double x = static_cast<double>(k);
  const double v = (qa_ * x + qb_) * x + qc_;
  const double floor_ps = points_.begin()->second;
  return v > floor_ps ? v : floor_ps;
}

CalibratedClockModel CalibratedClockModel::date23() {
  return CalibratedClockModel(
      /*conventional_period_ps=*/500.0,
      {{1, 1e3 / 1.8}, {2, 1e3 / 1.7}, {4, 1e3 / 1.4}});
}

// --------------------------------------------------------------------- STA

StaClockModel::StaClockModel(double anchor_conventional_ps, int input_bits,
                             int acc_bits)
    : anchor_ps_(anchor_conventional_ps),
      input_bits_(input_bits),
      acc_bits_(acc_bits) {
  AF_CHECK(anchor_ps_ > 0, "anchor period must be positive");

  // Time the conventional PE at scale 1, then pick the global scale that
  // places it exactly at the anchor (paper: 2 GHz in 28 nm).
  hw::Netlist nl;
  hw::build_conventional_pe(nl, {input_bits_, acc_bits_});
  hw::Technology unit;
  hw::Sta sta(nl, unit);
  sta.set_input_arrival_ps(unit.scaled_clk_to_q_ps());
  const double raw = sta.run().min_period_ps;
  AF_CHECK(raw > 0, "conventional PE timed at zero delay");
  scale_ = anchor_ps_ / raw;
  tech_.delay_scale = scale_;
}

double StaClockModel::raw_collapsed_period_ps(int k) const {
  hw::Netlist nl;
  hw::build_collapsed_column(nl, k, /*use_csa=*/true, {input_bits_, acc_bits_});
  hw::Technology unit;
  hw::Sta sta(nl, unit);
  sta.set_input_arrival_ps(unit.scaled_clk_to_q_ps());
  for (const auto& prefix : hw::collapsed_column_false_paths(k)) {
    sta.add_false_path_prefix(prefix);
  }
  return sta.run().min_period_ps;
}

double StaClockModel::period_ps(int k) const {
  AF_CHECK(k >= 1, "collapse depth must be >= 1");
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    const auto it = cache_.find(k);
    if (it != cache_.end()) return it->second;
  }
  const double ps = raw_collapsed_period_ps(k) * scale_;  // slow: runs STA
  std::lock_guard<std::mutex> lock(cache_mutex_);
  cache_.emplace(k, ps);
  return ps;
}

double StaClockModel::base_delay_ps() const {
  // Extrapolate the per-k structure from two measurements: the k -> k+1
  // increment is dCSA + 2 dmux.
  const double t1 = period_ps(1);
  const double t2 = period_ps(2);
  return t1 - (t2 - t1);
}

double StaClockModel::collapse_delay_ps() const {
  return period_ps(2) - period_ps(1);
}

}  // namespace af::arch
