// Cycle-accurate weight-stationary systolic array with configurable
// transparent pipelining (the paper's core contribution, Sections II-III).
//
// The simulator models, cycle by cycle:
//   * weight preload: one row of B per cycle shifting down the array
//     (R cycles, the R term of Eqs. 1/3);
//   * skewed activation injection at the west edge in batches of k words
//     (row r of the v-group vg = floor(r/k) receives A[t][r] at relative
//     cycle t + vg — paper Fig. 2(b));
//   * horizontal broadcast across each k-wide column group with registered
//     hops between groups;
//   * vertical reduction in redundant carry-save form through each k-tall
//     row group, resolved by the boundary PE's carry-propagate adder;
//   * south accumulators summing tile partial products.
//
// Every datum carries its logical tag (the row t of A it belongs to) purely
// for verification: tag mismatches abort, so a scheduling bug cannot
// silently produce correct-looking cycle counts.
//
// The run reports exact activity counters consumed by the power model and
// validated against the closed-form activity model (arch/activity.h).

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "arch/config.h"
#include "arch/pe.h"
#include "gemm/matrix.h"
#include "gemm/tiling.h"

namespace af::util {
class ThreadPool;
}

namespace af::arch {

// Exact event counts from a simulation run.
struct ActivityCounters {
  std::int64_t mult_ops = 0;        // valid multiplications
  std::int64_t csa_ops = 0;         // 3:2 compressions
  std::int64_t cpa_ops = 0;         // carry-propagate resolutions
  std::int64_t hreg_writes = 0;     // horizontal pipeline register latches
  std::int64_t vreg_writes = 0;     // vertical boundary register latches
  std::int64_t wreg_writes = 0;     // weight register latches (preload shift)
  std::int64_t acc_writes = 0;      // south accumulator updates
  std::int64_t hreg_bypassed_bit_cycles = 0;  // clock-gated bits x cycles
  std::int64_t vreg_bypassed_bit_cycles = 0;
  std::int64_t streaming_cycles = 0;

  ActivityCounters& operator+=(const ActivityCounters& o);

  // Exact equality over every counter (defaulted, so a newly added field
  // can never silently fall out of the engine facade's audit cross-check
  // or the equivalence suites — all integers, no tolerance question).
  bool operator==(const ActivityCounters&) const = default;
};

struct TileRunStats {
  std::int64_t total_cycles = 0;    // preload + streaming
  std::int64_t preload_cycles = 0;
  ActivityCounters activity;

  TileRunStats& operator+=(const TileRunStats& o);
};

// Observer invoked once per streaming cycle (after combinational propagate,
// before latching).  Used by the waveform example; null by default.
struct CycleSnapshot {
  std::int64_t relative_cycle = 0;
  // West-edge activations injected this cycle, one per row (0 when idle).
  const std::vector<std::int32_t>* west_inputs = nullptr;
  // South-edge values latched into accumulators this cycle, one per column
  // (valid flag parallel array).
  const std::vector<std::int64_t>* south_values = nullptr;
  const std::vector<std::uint8_t>* south_valid = nullptr;
};
using CycleObserver = std::function<void(const CycleSnapshot&)>;

// Streaming engine notes (perf): the epoch loop runs over flat,
// pre-allocated, double-buffered planes — a value plane per vertical
// boundary row (swapped, never copied, per cycle) and a flat horizontal
// register plane shifted with one memmove — with the weight matrix
// preloaded transposed in O(R*C).  Activity counters are accounted per
// cycle from the valid (column-group, row-group) ranges instead of per
// MAC; tag-skew verification (the Tagged planes) is compiled in only for
// debug builds (see AF_ASSERT).  Outputs and ActivityCounters are
// bit-identical to the original register-by-register emulation.
//
// Thread safety: run_tile/run_tile_asym keep all mutable state on the
// stack, so concurrent calls on one SystolicArray are safe — run_gemm and
// run_gemm_sparse exploit that by dispatching independent output-column
// stripes across the pool when config().sim.num_threads != 1.  Threaded
// runs return bit-identical outputs and statistics (modular adds commute).
//
// Shared-pool contract: set_thread_pool points the array at an external
// util::ThreadPool instead of (or in addition to) its private one —
// components that drive several arrays at once (the serve:: shards, a
// threaded InferenceRunner) inject ONE pool everywhere so total worker
// count stays bounded instead of multiplying per component.  The rules:
//   * the injected pool must outlive every run_* call on this array;
//   * concurrent run_gemm calls from different threads may share one pool
//     (parallel_for serializes the fan-outs against each other);
//   * a run_* call issued from inside a pool task executes its stripes
//     serially on the calling thread (ThreadPool::run_n's nested-dispatch
//     fallback), so nesting never deadlocks or oversubscribes.
class SystolicArray {
 public:
  explicit SystolicArray(const ArrayConfig& config);
  ~SystolicArray();

  const ArrayConfig& config() const { return config_; }

  // Injects a shared pool for the tiled entry points; nullptr reverts to
  // the private pool (if the config requested one).  See the shared-pool
  // contract above.
  void set_thread_pool(util::ThreadPool* pool) { external_pool_ = pool; }

  // Compute one tile product: A(T x R) x B(R x C) in collapse mode k,
  // adding the result into `acc` (T x C, modular 64-bit).  Returns exact
  // cycle/activity statistics.  Requires a.cols() == R, b = R x C and
  // config().supports(k).
  TileRunStats run_tile(const gemm::Mat32& a, const gemm::Mat32& b, int k,
                        gemm::Mat64* acc, const CycleObserver& observer = {});

  // Asymmetric collapse: the PE's two configuration bits control the
  // horizontal and vertical transparency independently (paper Section
  // III-B), so the reduction pipeline can collapse by k_v while the
  // broadcast collapses by k_h.  The paper only evaluates k_h == k_v; this
  // generalization requires k_v | R and k_h | C and yields
  // L = R + R/k_v + C/k_h + T - 2 cycles.
  TileRunStats run_tile_asym(const gemm::Mat32& a, const gemm::Mat32& b,
                             int k_v, int k_h, gemm::Mat64* acc,
                             const CycleObserver& observer = {});

  // Full tiled GEMM per Fig. 1(c): X(T x M) = A(T x N) x B(N x M) with edge
  // tiles zero-padded.  Cycle counts match Eq. 4 exactly.
  TileRunStats run_gemm(const gemm::Mat32& a, const gemm::Mat32& b, int k,
                        gemm::Mat64* out);

  // Block-sparse execution (the paper's Section V future work): tiles of B
  // that are entirely zero are skipped by the sequencer and cost no cycles.
  // The result is bit-identical to run_gemm; the cycle count matches
  // arch::sparse_total_latency_cycles.
  TileRunStats run_gemm_sparse(const gemm::Mat32& a, const gemm::Mat32& b,
                               int k, gemm::Mat64* out);

 private:
  TileRunStats run_tiled(const gemm::Mat32& a, const gemm::Mat32& b, int k,
                         gemm::Mat64* out, bool skip_zero_tiles);

  ArrayConfig config_;
  // Created when the config requests parallel simulation (lazily shared by
  // the tiled entry points; tile runs themselves are stateless).  An
  // injected external pool takes precedence over the private one.
  std::unique_ptr<util::ThreadPool> pool_;
  util::ThreadPool* external_pool_ = nullptr;
};

}  // namespace af::arch
