// Per-layer pipeline-depth selection — Eq. (6) argmin and Eq. (7)'s
// closed-form continuous optimum.

#pragma once

#include <vector>

#include "arch/clocking.h"
#include "arch/config.h"
#include "gemm/tiling.h"

namespace af::util {
class ThreadPool;
}

namespace af::arch {

struct ModeDecision {
  int k = 1;
  std::int64_t cycles = 0;   // Ltotal(k), Eq. 4
  double period_ps = 0.0;    // Tclock(k), Eq. 5
  double time_ps = 0.0;      // Tabs(k),  Eq. 6
};

struct ModeSweepEntry {
  ModeDecision decision;
  bool is_best = false;
};

class PipelineOptimizer {
 public:
  PipelineOptimizer(const ArrayConfig& config, const ClockModel& clock);

  // Evaluate one mode (Eq. 6).
  ModeDecision evaluate(const gemm::GemmShape& shape, int k) const;

  // Discrete argmin of Tabs over the array's supported modes.
  ModeDecision best_mode(const gemm::GemmShape& shape) const;

  // Batch argmin over many shapes (design-space sweeps, per-layer mode
  // selection across a whole network).  Runs shapes in parallel when the
  // config's SimOptions request threads; output order matches the input.
  std::vector<ModeDecision> best_modes(
      const std::vector<gemm::GemmShape>& shapes) const;

  // Injects a shared pool for best_modes: when set, the optimizer fans out
  // on it instead of constructing a private transient pool per call (the
  // oversubscription hazard when an already-threaded caller owns the
  // optimizer).  The pool must outlive the optimizer; nullptr reverts to
  // the per-call transient pool.  Same nesting rules as
  // arch::SystolicArray's shared-pool contract.
  void set_thread_pool(util::ThreadPool* pool) { external_pool_ = pool; }

  // All supported modes with the winner flagged (used by the Fig. 5 bench).
  std::vector<ModeSweepEntry> sweep(const gemm::GemmShape& shape) const;

  // Eq. (7): continuous k-hat = sqrt((R+C)/(R+T-2) * base/collapse).
  double continuous_k_hat(const gemm::GemmShape& shape) const;

  // Nearest supported mode to the continuous optimum (the paper notes the
  // discrete argmin is "approximated fairly accurately" by Eq. 7; the
  // agreement between the two is quantified by bench_eq7_model).
  int rounded_k_hat(const gemm::GemmShape& shape) const;

  // Conventional fixed-pipeline baseline: k = 1 cycles at the conventional
  // clock (no configurability overhead).
  ModeDecision conventional(const gemm::GemmShape& shape) const;

 private:
  ArrayConfig config_;
  const ClockModel& clock_;
  util::ThreadPool* external_pool_ = nullptr;
};

// --- asymmetric collapse (extension; see arch/array.h run_tile_asym) -------

struct AsymmetricDecision {
  int k_v = 1;
  int k_h = 1;
  std::int64_t cycles = 0;
  double period_ps = 0.0;
  double time_ps = 0.0;
};

// 2D argmin over (k_v, k_h) pairs drawn from the array's supported modes,
// using the asymmetric latency formula and asymmetric_period_ps.  The paper
// only explores the diagonal k_v == k_h; because horizontal collapse barely
// costs clock, the off-diagonal optimum (typically k_h >= k_v) recovers
// extra time on wide arrays.
class AsymmetricOptimizer {
 public:
  AsymmetricOptimizer(const ArrayConfig& config, const DelayProfile& profile,
                      double conventional_period_ps);

  AsymmetricDecision evaluate(const gemm::GemmShape& shape, int k_v,
                              int k_h) const;
  AsymmetricDecision best(const gemm::GemmShape& shape) const;
  // Best symmetric decision under the same delay profile (for fair
  // comparison with the paper's scheme).
  AsymmetricDecision best_symmetric(const gemm::GemmShape& shape) const;
  double conventional_time_ps(const gemm::GemmShape& shape) const;

 private:
  ArrayConfig config_;
  DelayProfile profile_;
  double conventional_ps_;
};

}  // namespace af::arch
