// Clock-period models — Equation (5) and its calibrations.
//
// Three interchangeable models, all exposing the same interface:
//
//   * CalibratedClockModel — the paper's silicon-calibrated table
//     (Section IV: conventional 2.0 GHz; ArrayFlex 1.8 / 1.7 / 1.4 GHz for
//     k = 1 / 2 / 4), with monotone quadratic interpolation for depths the
//     paper does not publish (k = 3 in the Fig. 5 study).  Default for all
//     paper-figure benches.
//
//   * AnalyticClockModel — Eq. 5 directly:
//     Tclock(k) = dFF + dmul + dadd + k (dCSA + 2 dmux), from an explicit
//     DelayProfile.
//
//   * StaClockModel — derives the delays by running static timing analysis
//     on gate-level collapsed-column netlists (hw/builders), globally scaled
//     so the conventional PE closes at a chosen anchor period.
//
// Every model also exposes the Eq. 7 coefficients (base and per-k collapse
// delay) so the optimizer's continuous k-hat stays consistent with whichever
// model is active.

#pragma once

#include <map>
#include <memory>
#include <mutex>

#include "hw/cells.h"

namespace af::arch {

// Delay constants of Eq. 5, in picoseconds.
struct DelayProfile {
  double d_ff = 0.0;   // clk-to-q + setup
  double d_mul = 0.0;
  double d_add = 0.0;
  double d_csa = 0.0;
  double d_mux = 0.0;

  double base_ps() const { return d_ff + d_mul + d_add; }
  double collapse_ps() const { return d_csa + 2.0 * d_mux; }
};

class ClockModel {
 public:
  virtual ~ClockModel() = default;

  // ArrayFlex minimum clock period in mode k.
  virtual double period_ps(int k) const = 0;

  // Conventional (non-configurable) SA period: no CSA/mux overhead in the
  // critical path, so it runs faster than ArrayFlex even at k = 1.
  virtual double conventional_period_ps() const = 0;

  // Eq. 7 coefficients: dFF + dmul + dadd and dCSA + 2 dmux.
  virtual double base_delay_ps() const = 0;
  virtual double collapse_delay_ps() const = 0;

  double frequency_ghz(int k) const { return 1e3 / period_ps(k); }
  double conventional_frequency_ghz() const {
    return 1e3 / conventional_period_ps();
  }
};

// Eq. 5 with explicit constants.
class AnalyticClockModel : public ClockModel {
 public:
  // `conventional_period_ps` defaults to base_ps() (a conventional PE has
  // the same FF + multiplier + adder path, minus configurability overhead);
  // pass a smaller value to model the configurability-free design.
  explicit AnalyticClockModel(const DelayProfile& profile,
                              double conventional_period_ps = 0.0);

  double period_ps(int k) const override;
  double conventional_period_ps() const override { return conventional_ps_; }
  double base_delay_ps() const override { return profile_.base_ps(); }
  double collapse_delay_ps() const override { return profile_.collapse_ps(); }

  const DelayProfile& profile() const { return profile_; }

  // Eq. 5 constants back-fitted to the paper's frequency table, anchored at
  // the 2 GHz conventional design.
  static AnalyticClockModel paper_fit();

 private:
  DelayProfile profile_;
  double conventional_ps_;
};

// The paper's measured frequency table with interpolation between points.
class CalibratedClockModel : public ClockModel {
 public:
  // `points` maps k -> period_ps; needs at least two entries.
  CalibratedClockModel(double conventional_period_ps,
                       std::map<int, double> points);

  double period_ps(int k) const override;
  double conventional_period_ps() const override { return conventional_ps_; }
  double base_delay_ps() const override { return base_ps_; }
  double collapse_delay_ps() const override { return collapse_ps_; }

  // Section IV of the paper: 2.0 GHz conventional, {1.8, 1.7, 1.4} GHz for
  // k = {1, 2, 4}.
  static CalibratedClockModel date23();

 private:
  double conventional_ps_;
  std::map<int, double> points_;
  // Quadratic interpolation coefficients (fit through first/mid/last point).
  double qa_ = 0.0, qb_ = 0.0, qc_ = 0.0;
  double base_ps_ = 0.0, collapse_ps_ = 0.0;
};

// Minimum clock period under asymmetric collapse: the vertical chain pays
// k_v CSAs + k_v bypass muxes, the horizontal broadcast pays k_h muxes, so
//   Tclock(k_v, k_h) = dFF + dmul + dadd + k_v (dCSA + dmux) + k_h dmux.
// Reduces to Eq. 5 when k_v == k_h.  Horizontal-only collapse is nearly
// free in clock ("column collapsing only affects the delay marginally",
// paper Section III-A) — the asymmetric optimizer exploits exactly that.
double asymmetric_period_ps(const DelayProfile& profile, int k_v, int k_h);

// STA-derived: builds gate-level collapsed columns and times them.
class StaClockModel : public ClockModel {
 public:
  // `anchor_conventional_ps`: the conventional PE is scaled to close at this
  // period (paper anchor: 500 ps = 2 GHz); all other measurements share the
  // scale factor.  `input_bits`/`acc_bits` select the datapath width.
  StaClockModel(double anchor_conventional_ps = 500.0, int input_bits = 32,
                int acc_bits = 64);

  double period_ps(int k) const override;
  double conventional_period_ps() const override { return anchor_ps_; }
  double base_delay_ps() const override;
  double collapse_delay_ps() const override;

  // The global delay-scale factor chosen by calibration.
  double delay_scale() const { return scale_; }

  // Unscaled STA result for a k-collapsed column (ps, scale = 1).
  double raw_collapsed_period_ps(int k) const;

 private:
  double anchor_ps_;
  int input_bits_;
  int acc_bits_;
  double scale_ = 1.0;
  hw::Technology tech_;
  // Lazy STA results; the mutex makes period_ps safe to call from the
  // parallel layer-evaluation path (nn::InferenceRunner with num_threads>1).
  mutable std::mutex cache_mutex_;
  mutable std::map<int, double> cache_;  // k -> scaled period
};

}  // namespace af::arch
