// Energy-delay metrics and comparison helpers (the paper's headline
// "1.4x-1.8x combined energy-delay-product efficiency").

#pragma once

#include "arch/power_model.h"

namespace af::arch {

struct EfficiencyComparison {
  double time_ratio = 0.0;    // arrayflex / conventional (< 1 is a win)
  double power_ratio = 0.0;   // arrayflex / conventional
  double energy_ratio = 0.0;  // arrayflex / conventional
  double edp_gain = 0.0;      // conventional EDP / arrayflex EDP (> 1 is a win)

  double latency_savings() const { return 1.0 - time_ratio; }
  double power_savings() const { return 1.0 - power_ratio; }
};

// Both results must describe the same workload.
EfficiencyComparison compare(const PowerResult& arrayflex,
                             const PowerResult& conventional);

}  // namespace af::arch
