#include "arch/energy.h"

#include "util/status.h"

namespace af::arch {

EfficiencyComparison compare(const PowerResult& arrayflex,
                             const PowerResult& conventional) {
  AF_CHECK(conventional.time_ps > 0 && conventional.energy_pj > 0,
           "conventional baseline must be non-degenerate");
  AF_CHECK(arrayflex.time_ps > 0 && arrayflex.energy_pj > 0,
           "arrayflex result must be non-degenerate");
  EfficiencyComparison out;
  out.time_ratio = arrayflex.time_ps / conventional.time_ps;
  out.power_ratio = arrayflex.power_mw() / conventional.power_mw();
  out.energy_ratio = arrayflex.energy_pj / conventional.energy_pj;
  out.edp_gain = conventional.edp() / arrayflex.edp();
  return out;
}

}  // namespace af::arch
