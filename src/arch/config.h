// Array geometry, pipeline-mode and memory-hierarchy configuration.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace af::arch {

// Host-side simulation knobs — they change how fast the simulator runs,
// never what it computes.  Threaded runs are bit-exact and produce
// identical cycle/activity statistics to serial runs (tile partial sums
// are modular 64-bit adds, which commute).
struct SimOptions {
  // Worker threads for tile-level parallel simulation: 1 = serial
  // (default), 0 = use every hardware thread, n = exactly n threads.
  int num_threads = 1;
};

// Scratchpad reuse strategy of the memory hierarchy's tile scheduler
// (mem::TileScheduler): which operand stays resident in the scratchpad
// while the tiled GEMM sweeps the others through it.
//
//   kAStationary      N-outer sweep; the activation panel A(i) is fetched
//                     once per row group.  Output partials either stay
//                     resident (minimal DRAM traffic, largest footprint)
//                     or spill per revisit when they don't fit.
//   kBStationary      M-outer sweep; each weight column group of B is
//                     fetched in ONE group-sized DMA burst, prefetched a
//                     group ahead — fewest transfers, so the strategy of
//                     choice when DRAM latency (not bandwidth) dominates.
//   kOutputStationary M-outer sweep with per-tile fetches of A and B; the
//                     output group accumulates in place.  Smallest
//                     scratchpad footprint.
//   kAuto             plan all strategies that fit the scratchpad and take
//                     the cheapest (fewest total cycles, DRAM bytes as the
//                     tie-break).
enum class ReuseStrategy {
  kAuto = 0,
  kAStationary,
  kBStationary,
  kOutputStationary,
};

// Canonical name ("auto", "a_stationary", "b_stationary",
// "output_stationary") and its inverse; parse throws af::Error on unknown
// names, listing the registry.
const char* reuse_strategy_name(ReuseStrategy strategy);
ReuseStrategy parse_reuse_strategy(const std::string& name);

// Scratchpad/DRAM hierarchy in front of the array.  Disabled by default:
// the seed's magic-memory behavior (operands appear at the array edge for
// free) is reproduced bit-identically when `enabled` is false — no stall
// cycles, no DRAM traffic, no energy term.
struct MemoryConfig {
  bool enabled = false;
  // On-chip scratchpad capacity shared by the A/B tile double-buffers and
  // the output accumulator groups (see mem::TileScheduler for the
  // footprint formula per reuse strategy).
  std::int64_t spad_bytes = std::int64_t{1} << 20;  // 1 MiB
  // DRAM streaming bandwidth, bytes per array clock cycle.
  std::int64_t dram_bytes_per_cycle = 16;
  // Fixed DRAM access latency charged once per DMA transfer, cycles.
  std::int64_t dram_latency_cycles = 64;
  ReuseStrategy reuse = ReuseStrategy::kAuto;

  void validate() const;  // throws af::Error when enabled and inconsistent
  std::string to_string() const;

  // The public knob names, sorted — the machine-checkable source of truth
  // behind the README's "Memory hierarchy" table (CI diffs the two via
  // `engine_info --memory`).
  static std::vector<std::string> knob_names();
};

// Static description of an ArrayFlex systolic array instance.
//
// `supported_k` lists the pipeline-collapse depths the hardware can be
// configured to; every entry must divide both `rows` and `cols` (paper,
// Section IV: "collapsing three pipeline stages is not supported, since
// three does not divide exactly with the size of the SA").  k = 1 (normal
// pipeline) must always be supported.
struct ArrayConfig {
  int rows = 128;  // R
  int cols = 128;  // C
  int input_bits = 32;
  int acc_bits = 64;
  std::vector<int> supported_k = {1, 2, 4};
  SimOptions sim;
  // Memory hierarchy (off = magic memory, the seed default).
  MemoryConfig mem;

  // Throws af::Error when the configuration is inconsistent.
  void validate() const;

  bool supports(int k) const;

  // Largest supported collapse depth.
  int max_k() const;

  int num_pes() const { return rows * cols; }

  std::string to_string() const;

  // Convenience factories for the paper's evaluation setups.
  static ArrayConfig square(int side);                    // {1,2,4} modes
  static ArrayConfig square_with_modes(int side, std::vector<int> modes);
};

}  // namespace af::arch
