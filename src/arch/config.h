// Array geometry and pipeline-mode configuration.

#pragma once

#include <string>
#include <vector>

namespace af::arch {

// Host-side simulation knobs — they change how fast the simulator runs,
// never what it computes.  Threaded runs are bit-exact and produce
// identical cycle/activity statistics to serial runs (tile partial sums
// are modular 64-bit adds, which commute).
struct SimOptions {
  // Worker threads for tile-level parallel simulation: 1 = serial
  // (default), 0 = use every hardware thread, n = exactly n threads.
  int num_threads = 1;
};

// Static description of an ArrayFlex systolic array instance.
//
// `supported_k` lists the pipeline-collapse depths the hardware can be
// configured to; every entry must divide both `rows` and `cols` (paper,
// Section IV: "collapsing three pipeline stages is not supported, since
// three does not divide exactly with the size of the SA").  k = 1 (normal
// pipeline) must always be supported.
struct ArrayConfig {
  int rows = 128;  // R
  int cols = 128;  // C
  int input_bits = 32;
  int acc_bits = 64;
  std::vector<int> supported_k = {1, 2, 4};
  SimOptions sim;

  // Throws af::Error when the configuration is inconsistent.
  void validate() const;

  bool supports(int k) const;

  // Largest supported collapse depth.
  int max_k() const;

  int num_pes() const { return rows * cols; }

  std::string to_string() const;

  // Convenience factories for the paper's evaluation setups.
  static ArrayConfig square(int side);                    // {1,2,4} modes
  static ArrayConfig square_with_modes(int side, std::vector<int> modes);
};

}  // namespace af::arch
