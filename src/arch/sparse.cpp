#include "arch/sparse.h"

#include "arch/latency.h"
#include "util/math.h"
#include "util/status.h"

namespace af::arch {

TileOccupancy::TileOccupancy(std::int64_t row_tiles, std::int64_t col_tiles)
    : row_tiles_(row_tiles),
      col_tiles_(col_tiles),
      nonzero_(static_cast<std::size_t>(row_tiles * col_tiles), 0) {
  AF_CHECK(row_tiles > 0 && col_tiles > 0, "tile grid must be non-empty");
}

TileOccupancy TileOccupancy::from_matrix(const gemm::Mat32& b, int rows,
                                         int cols) {
  AF_CHECK(rows > 0 && cols > 0, "tile dimensions must be positive");
  AF_CHECK(b.rows() > 0 && b.cols() > 0, "weight matrix must be non-empty");
  TileOccupancy occ(ceil_div(b.rows(), rows), ceil_div(b.cols(), cols));
  for (std::int64_t r = 0; r < b.rows(); ++r) {
    for (std::int64_t c = 0; c < b.cols(); ++c) {
      if (b.at(r, c) != 0) {
        const std::int64_t rt = r / rows;
        const std::int64_t ct = c / cols;
        occ.nonzero_[static_cast<std::size_t>(rt * occ.col_tiles_ + ct)] = 1;
      }
    }
  }
  return occ;
}

TileOccupancy TileOccupancy::synthetic(const gemm::GemmShape& shape, int rows,
                                       int cols, double density, Rng& rng) {
  AF_CHECK(density >= 0.0 && density <= 1.0,
           "density must be in [0,1], got " << density);
  TileOccupancy occ(ceil_div(shape.n, rows), ceil_div(shape.m, cols));
  for (auto& bit : occ.nonzero_) {
    bit = rng.next_double() < density ? 1 : 0;
  }
  return occ;
}

std::int64_t TileOccupancy::nonzero_tiles() const {
  std::int64_t count = 0;
  for (const auto bit : nonzero_) count += bit;
  return count;
}

double TileOccupancy::density() const {
  return static_cast<double>(nonzero_tiles()) /
         static_cast<double>(total_tiles());
}

bool TileOccupancy::is_nonzero(std::int64_t row_tile,
                               std::int64_t col_tile) const {
  AF_CHECK(row_tile >= 0 && row_tile < row_tiles_ && col_tile >= 0 &&
               col_tile < col_tiles_,
           "tile index out of range");
  return nonzero_[static_cast<std::size_t>(row_tile * col_tiles_ + col_tile)] !=
         0;
}

std::int64_t sparse_total_latency_cycles(const gemm::GemmShape& shape,
                                         const ArrayConfig& config, int k,
                                         const TileOccupancy& occupancy) {
  config.validate();
  AF_CHECK(config.supports(k), "mode k=" << k << " not supported");
  AF_CHECK(occupancy.row_tiles() == ceil_div(shape.n, config.rows) &&
               occupancy.col_tiles() == ceil_div(shape.m, config.cols),
           "occupancy grid does not match shape/array tiling");
  return tile_latency_cycles(config.rows, config.cols, shape.t, k) *
         occupancy.nonzero_tiles();
}

}  // namespace af::arch
