// Closed-form activity model.
//
// For every counter the cycle-accurate simulator measures, this model gives
// the exact expected value as a function of (R, C, T, k).  The two are
// pinned against each other by property tests (tests/arch_activity_test.cpp)
// over dozens of geometries, which is what licenses using the closed forms
// to evaluate full CNNs on 128x128/256x256 arrays where cycle-by-cycle
// simulation of trillions of MACs would be pointless work.
//
// Derivations (per T x R by R x C tile in mode k):
//   mult/csa ops:  every (t, r, c) triple computes once          -> T*R*C
//   cpa ops:       one resolve per (t, c, row-group)             -> T*C*R/k
//   hreg writes:   each (t, r) value latches at group heads 1..C/k-1
//                                                                -> T*R*(C/k - 1)
//   vreg writes:   boundary latches below groups 0..R/k-2        -> T*C*(R/k - 1)
//   acc writes:    one per output element                        -> T*C
//   wreg writes:   R-cycle shift preload, all R*C regs latch     -> R^2*C
//   streaming cycles:                        T + R/k + C/k - 2   (Eq. 3 - R)
//   bypassed bit-cycles: transparent registers, per streaming cycle:
//     horizontal R*(C - C/k)*input_bits, vertical C*(R - R/k)*acc_bits.

#pragma once

#include "arch/array.h"
#include "arch/config.h"
#include "gemm/tiling.h"

namespace af::arch {

// Expected counters for a single tile.
ActivityCounters predict_tile_activity(const ArrayConfig& config,
                                       std::int64_t t, int k);

// Asymmetric-collapse generalization (arch/array.h run_tile_asym): the
// vertical reduction collapses by k_v (v_groups = R/k_v boundary rows) and
// the horizontal broadcast by k_h (h_groups = C/k_h); the symmetric model
// is the k_v == k_h diagonal.  Requires k_v | R and k_h | C.
ActivityCounters predict_tile_activity_asym(const ArrayConfig& config,
                                            std::int64_t t, int k_v, int k_h);

// Expected counters for a full tiled GEMM (per-tile counts scaled by
// ceil(N/R) * ceil(M/C)).
ActivityCounters predict_gemm_activity(const gemm::GemmShape& shape,
                                       const ArrayConfig& config, int k);

}  // namespace af::arch
