#include "arch/pe.h"

namespace af::arch {

CsaPair csa_compress(std::int64_t addend, const CsaPair& in) {
  const auto p = static_cast<std::uint64_t>(addend);
  const auto s = static_cast<std::uint64_t>(in.sum);
  const auto c = static_cast<std::uint64_t>(in.carry);
  CsaPair out;
  out.sum = static_cast<std::int64_t>(p ^ s ^ c);
  out.carry = static_cast<std::int64_t>(((p & s) | (p & c) | (s & c)) << 1);
  return out;
}

std::int64_t full_product(std::int32_t a, std::int32_t w) {
  return static_cast<std::int64_t>(a) * static_cast<std::int64_t>(w);
}

CsaPair pe_compute(std::int32_t activation, std::int32_t weight,
                   const CsaPair& psum_in) {
  return csa_compress(full_product(activation, weight), psum_in);
}

}  // namespace af::arch
