// Analytic latency model — Equations (1)-(4) of the paper.
//
// These closed forms are validated cycle-for-cycle against the
// cycle-accurate simulator (tests/arch_array_test.cpp); the bench harness
// uses them to evaluate full CNNs at 128x128/256x256 scale instantly.

#pragma once

#include <cstdint>

#include "arch/config.h"
#include "gemm/tiling.h"

namespace af::arch {

// Eq. (1)/(3): cycles to stream one T x R by R x C tile product through an
// R x C array in collapse mode k (k must divide R and C; k = 1 reduces to
// Eq. 1's 2R + C + T - 2).
std::int64_t tile_latency_cycles(int rows, int cols, std::int64_t t, int k);

// Asymmetric generalization (the PE's two config bits are independent,
// paper Section III-B): vertical collapse k_v, horizontal collapse k_h:
// L = R + R/k_v + C/k_h + T - 2.  Reduces to Eq. 3 when k_v == k_h.
std::int64_t tile_latency_cycles_asym(int rows, int cols, std::int64_t t,
                                      int k_v, int k_h);

// Tiled total under asymmetric collapse (Eq. 4 structure).
std::int64_t total_latency_cycles_asym(const gemm::GemmShape& shape,
                                       const ArrayConfig& config, int k_v,
                                       int k_h);

// Eq. (2)/(4): cycles for the full tiled GEMM: L(k) * ceil(N/R) * ceil(M/C).
std::int64_t total_latency_cycles(const gemm::GemmShape& shape,
                                  const ArrayConfig& config, int k);

// Eq. (6): absolute execution time in picoseconds given a clock period.
double absolute_time_ps(std::int64_t cycles, double period_ps);

}  // namespace af::arch
