#include "arch/optimizer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

#include "arch/latency.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace af::arch {

PipelineOptimizer::PipelineOptimizer(const ArrayConfig& config,
                                     const ClockModel& clock)
    : config_(config), clock_(clock) {
  config_.validate();
}

ModeDecision PipelineOptimizer::evaluate(const gemm::GemmShape& shape,
                                         int k) const {
  ModeDecision d;
  d.k = k;
  d.cycles = total_latency_cycles(shape, config_, k);
  d.period_ps = clock_.period_ps(k);
  d.time_ps = absolute_time_ps(d.cycles, d.period_ps);
  return d;
}

ModeDecision PipelineOptimizer::best_mode(const gemm::GemmShape& shape) const {
  ModeDecision best;
  best.time_ps = std::numeric_limits<double>::infinity();
  for (const int k : config_.supported_k) {
    const ModeDecision d = evaluate(shape, k);
    if (d.time_ps < best.time_ps) best = d;
  }
  return best;
}

std::vector<ModeDecision> PipelineOptimizer::best_modes(
    const std::vector<gemm::GemmShape>& shapes) const {
  std::vector<ModeDecision> out(shapes.size());
  const std::int64_t n = static_cast<std::int64_t>(shapes.size());
  std::unique_ptr<util::ThreadPool> transient;
  util::ThreadPool* pool = external_pool_;
  if (pool == nullptr && !util::ThreadPool::in_parallel_region()) {
    const int threads = static_cast<int>(std::min<std::int64_t>(
        util::ThreadPool::resolve_num_threads(config_.sim.num_threads), n));
    if (threads > 1) {
      transient = std::make_unique<util::ThreadPool>(threads);
      pool = transient.get();
    }
  }
  util::ThreadPool::run_n(pool, n, [&](std::int64_t i) {
    out[static_cast<std::size_t>(i)] =
        best_mode(shapes[static_cast<std::size_t>(i)]);
  });
  return out;
}

std::vector<ModeSweepEntry> PipelineOptimizer::sweep(
    const gemm::GemmShape& shape) const {
  const ModeDecision best = best_mode(shape);
  std::vector<ModeSweepEntry> out;
  out.reserve(config_.supported_k.size());
  for (const int k : config_.supported_k) {
    ModeSweepEntry e;
    e.decision = evaluate(shape, k);
    e.is_best = (k == best.k);
    out.push_back(e);
  }
  return out;
}

double PipelineOptimizer::continuous_k_hat(const gemm::GemmShape& shape) const {
  // Eq. (7): k-hat = sqrt( (R+C)/(R+T-2) * (dFF+dmul+dadd)/(dCSA+2dmux) ).
  const double r = config_.rows;
  const double c = config_.cols;
  const double t = static_cast<double>(shape.t);
  AF_CHECK(r + t - 2.0 > 0.0, "degenerate shape for k-hat");
  const double geometry = (r + c) / (r + t - 2.0);
  const double delays = clock_.base_delay_ps() / clock_.collapse_delay_ps();
  return std::sqrt(geometry * delays);
}

int PipelineOptimizer::rounded_k_hat(const gemm::GemmShape& shape) const {
  const double k_hat = continuous_k_hat(shape);
  int best = config_.supported_k.front();
  double best_dist = std::numeric_limits<double>::infinity();
  for (const int k : config_.supported_k) {
    const double dist = std::fabs(static_cast<double>(k) - k_hat);
    if (dist < best_dist) {
      best_dist = dist;
      best = k;
    }
  }
  return best;
}

ModeDecision PipelineOptimizer::conventional(const gemm::GemmShape& shape) const {
  ModeDecision d;
  d.k = 1;
  d.cycles = total_latency_cycles(shape, config_, 1);
  d.period_ps = clock_.conventional_period_ps();
  d.time_ps = absolute_time_ps(d.cycles, d.period_ps);
  return d;
}

// ------------------------------------------------------------- asymmetric

AsymmetricOptimizer::AsymmetricOptimizer(const ArrayConfig& config,
                                         const DelayProfile& profile,
                                         double conventional_period_ps)
    : config_(config), profile_(profile),
      conventional_ps_(conventional_period_ps) {
  config_.validate();
  AF_CHECK(conventional_ps_ > 0, "conventional period must be positive");
}

AsymmetricDecision AsymmetricOptimizer::evaluate(const gemm::GemmShape& shape,
                                                 int k_v, int k_h) const {
  AsymmetricDecision d;
  d.k_v = k_v;
  d.k_h = k_h;
  d.cycles = total_latency_cycles_asym(shape, config_, k_v, k_h);
  d.period_ps = asymmetric_period_ps(profile_, k_v, k_h);
  d.time_ps = absolute_time_ps(d.cycles, d.period_ps);
  return d;
}

AsymmetricDecision AsymmetricOptimizer::best(const gemm::GemmShape& shape) const {
  AsymmetricDecision best;
  best.time_ps = std::numeric_limits<double>::infinity();
  for (const int k_v : config_.supported_k) {
    for (const int k_h : config_.supported_k) {
      const AsymmetricDecision d = evaluate(shape, k_v, k_h);
      if (d.time_ps < best.time_ps) best = d;
    }
  }
  return best;
}

AsymmetricDecision AsymmetricOptimizer::best_symmetric(
    const gemm::GemmShape& shape) const {
  AsymmetricDecision best;
  best.time_ps = std::numeric_limits<double>::infinity();
  for (const int k : config_.supported_k) {
    const AsymmetricDecision d = evaluate(shape, k, k);
    if (d.time_ps < best.time_ps) best = d;
  }
  return best;
}

double AsymmetricOptimizer::conventional_time_ps(
    const gemm::GemmShape& shape) const {
  return absolute_time_ps(total_latency_cycles(shape, config_, 1),
                          conventional_ps_);
}

}  // namespace af::arch
