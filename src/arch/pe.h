// Behavioural model of the enhanced, configurable PE (paper Fig. 3).
//
// Arithmetic is bit-faithful to the RTL: products are exact 64-bit values,
// vertical accumulation flows in redundant carry-save form through collapsed
// groups, and the carry-propagate resolution wraps modulo 2^64 exactly like
// the RTL's 64-bit adders.

#pragma once

#include <cstdint>

namespace af::arch {

// Redundant carry-save representation: value == sum + carry (mod 2^64).
// The carry word is stored pre-shifted (weight 1), i.e. immediately after a
// compression it holds the full-adder carries moved one position left.
struct CsaPair {
  std::int64_t sum = 0;
  std::int64_t carry = 0;

  std::int64_t resolve() const {
    // The carry-propagate adder of the group-boundary PE.
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(sum) +
                                     static_cast<std::uint64_t>(carry));
  }
};

// One 3:2 compression step: fold `addend` into the pair.  Bit i of the new
// sum is the XOR of the three operands; the majority bits shift left one
// position into the carry word (the top carry bit drops — modular
// arithmetic, as in the RTL).
CsaPair csa_compress(std::int64_t addend, const CsaPair& in);

// Exact 64-bit product of two 32-bit operands.
std::int64_t full_product(std::int32_t a, std::int32_t w);

// Configuration bits of one PE (paper: two bits, independently controlling
// the transparency of the horizontal and vertical pipeline registers).
struct PeConfig {
  bool horizontal_transparent = false;
  bool vertical_transparent = false;
};

// A single PE's combinational function for one cycle: multiply the
// activation with the stationary weight and compress into the incoming
// redundant partial sum.  The caller owns register behaviour (latch vs.
// bypass), which is what the array-level simulator models.
CsaPair pe_compute(std::int32_t activation, std::int32_t weight,
                   const CsaPair& psum_in);

}  // namespace af::arch
