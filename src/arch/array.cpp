#include "arch/array.h"

#include <memory>

#include "arch/sparse.h"
#include "util/math.h"
#include "util/status.h"

namespace af::arch {
namespace {

// Modular 64-bit accumulate (matches the RTL adders).
std::int64_t add_mod(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) +
                                   static_cast<std::uint64_t>(b));
}

struct Tagged32 {
  std::int32_t value = 0;
  std::int64_t tag = -1;
};

}  // namespace

ActivityCounters& ActivityCounters::operator+=(const ActivityCounters& o) {
  mult_ops += o.mult_ops;
  csa_ops += o.csa_ops;
  cpa_ops += o.cpa_ops;
  hreg_writes += o.hreg_writes;
  vreg_writes += o.vreg_writes;
  wreg_writes += o.wreg_writes;
  acc_writes += o.acc_writes;
  hreg_bypassed_bit_cycles += o.hreg_bypassed_bit_cycles;
  vreg_bypassed_bit_cycles += o.vreg_bypassed_bit_cycles;
  streaming_cycles += o.streaming_cycles;
  return *this;
}

TileRunStats& TileRunStats::operator+=(const TileRunStats& o) {
  total_cycles += o.total_cycles;
  preload_cycles += o.preload_cycles;
  activity += o.activity;
  return *this;
}

SystolicArray::SystolicArray(const ArrayConfig& config) : config_(config) {
  config_.validate();
}

TileRunStats SystolicArray::run_tile(const gemm::Mat32& a,
                                     const gemm::Mat32& b, int k,
                                     gemm::Mat64* acc,
                                     const CycleObserver& observer) {
  AF_CHECK(config_.supports(k), "mode k=" << k << " not supported");
  return run_tile_asym(a, b, k, k, acc, observer);
}

TileRunStats SystolicArray::run_tile_asym(const gemm::Mat32& a,
                                          const gemm::Mat32& b, int k_v,
                                          int k_h, gemm::Mat64* acc,
                                          const CycleObserver& observer) {
  const int rows = config_.rows;
  const int cols = config_.cols;
  AF_CHECK(k_v >= 1 && divides(k_v, rows),
           "vertical collapse k_v=" << k_v << " must divide R=" << rows);
  AF_CHECK(k_h >= 1 && divides(k_h, cols),
           "horizontal collapse k_h=" << k_h << " must divide C=" << cols);
  AF_CHECK(a.cols() == rows, "tile A must have R=" << rows << " columns, got "
                                                   << a.cols());
  AF_CHECK(b.rows() == rows && b.cols() == cols,
           "tile B must be " << rows << "x" << cols << ", got " << b.rows()
                             << "x" << b.cols());
  const std::int64_t t_dim = a.rows();
  AF_CHECK(t_dim > 0, "tile T dimension must be positive");
  AF_CHECK(acc != nullptr && acc->rows() == t_dim && acc->cols() == cols,
           "accumulator must be T x C");

  TileRunStats stats;

  // ---- Weight preload: one row of B enters the north edge per cycle and
  // shifts down, so loading takes exactly R cycles (paper Section II).
  gemm::Mat32 weight(rows, cols);
  for (int cycle = 0; cycle < rows; ++cycle) {
    for (int r = rows - 1; r >= 1; --r) {
      for (int c = 0; c < cols; ++c) weight.at(r, c) = weight.at(r - 1, c);
    }
    for (int c = 0; c < cols; ++c) {
      weight.at(0, c) = b.at(rows - 1 - cycle, c);
    }
    stats.activity.wreg_writes +=
        static_cast<std::int64_t>(rows) * static_cast<std::int64_t>(cols);
  }
  stats.preload_cycles = rows;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      AF_ASSERT(weight.at(r, c) == b.at(r, c), "weight preload misplaced B["
                                                   << r << "][" << c << "]");
    }
  }

  // ---- Streaming epoch.
  const int h_groups = cols / k_h;  // column groups (broadcast width k_h)
  const int v_groups = rows / k_v;  // row groups (collapse depth k_v)

  // h_reg[r][g] is the registered value seen by column group g+1; the value
  // at group 0 is the west input of the current cycle (launched by the
  // feeder's own register).
  std::vector<std::vector<Tagged32>> h_reg(
      static_cast<std::size_t>(rows),
      std::vector<Tagged32>(static_cast<std::size_t>(h_groups - 1)));
  // v_reg[vg][c]: resolved partial sum latched at the boundary of row group
  // vg, consumed by group vg+1 the next cycle.
  std::vector<std::vector<Tagged64>> v_reg(
      static_cast<std::size_t>(v_groups - 1),
      std::vector<Tagged64>(static_cast<std::size_t>(cols)));

  // Clock-gated (transparent) register bits, constant per streaming cycle:
  // horizontal: each row has C-1 activation registers of which C/k - 1 stay
  // active; vertical: each column has R psum registers of which R/k stay
  // active.
  const std::int64_t h_bypassed_bits =
      static_cast<std::int64_t>(rows) *
      (static_cast<std::int64_t>(cols) - h_groups) * config_.input_bits;
  const std::int64_t v_bypassed_bits =
      static_cast<std::int64_t>(cols) *
      (static_cast<std::int64_t>(rows) - v_groups) * config_.acc_bits;

  std::vector<std::int32_t> west(static_cast<std::size_t>(rows), 0);
  std::vector<std::int64_t> west_tag(static_cast<std::size_t>(rows), -1);
  std::vector<std::int64_t> south_values(static_cast<std::size_t>(cols), 0);
  std::vector<std::uint8_t> south_valid(static_cast<std::size_t>(cols), 0);

  std::int64_t outputs_written = 0;
  const std::int64_t outputs_expected = t_dim * cols;
  std::int64_t cycle = 0;

  while (outputs_written < outputs_expected) {
    // (1) West-edge injection: A[t][r] enters at relative cycle
    //     t + floor(r/k) — "the first (and last) elements of matrix A
    //     arrive in batches of k words" (paper Section III).
    for (int r = 0; r < rows; ++r) {
      const std::int64_t t = cycle - r / k_v;
      if (t >= 0 && t < t_dim) {
        west[static_cast<std::size_t>(r)] = a.at(t, r);
        west_tag[static_cast<std::size_t>(r)] = t;
      } else {
        west[static_cast<std::size_t>(r)] = 0;
        west_tag[static_cast<std::size_t>(r)] = -1;
      }
    }
    std::fill(south_valid.begin(), south_valid.end(), 0);

    // (2) Combinational propagate: each (column group, row group) cell of
    //     the grid processes one tag this cycle.
    std::vector<std::vector<Tagged64>> v_next = v_reg;
    for (int cg = 0; cg < h_groups; ++cg) {
      for (int vg = 0; vg < v_groups; ++vg) {
        const std::int64_t tag = cycle - cg - vg;
        const bool valid = tag >= 0 && tag < t_dim;
        for (int c = cg * k_h; c < (cg + 1) * k_h; ++c) {
          if (!valid) {
            if (vg + 1 < v_groups) {
              v_next[static_cast<std::size_t>(vg)][static_cast<std::size_t>(c)] =
                  Tagged64{0, -1};
            }
            continue;
          }
          // Incoming partial sum: zero at the top group, otherwise the
          // boundary register of the group above (resolved, carry = 0).
          CsaPair pair;
          if (vg > 0) {
            const Tagged64& in =
                v_reg[static_cast<std::size_t>(vg - 1)][static_cast<std::size_t>(c)];
            AF_ASSERT(in.tag == tag, "psum tag skew: expected "
                                         << tag << ", got " << in.tag
                                         << " at vg=" << vg << " c=" << c);
            pair.sum = in.value;
          }
          // Transparent reduction through the k rows of this group: one
          // 3:2 compression per PE, single cycle.
          for (int r = vg * k_v; r < (vg + 1) * k_v; ++r) {
            const Tagged32 stream =
                cg == 0 ? Tagged32{west[static_cast<std::size_t>(r)],
                                   west_tag[static_cast<std::size_t>(r)]}
                        : h_reg[static_cast<std::size_t>(r)]
                               [static_cast<std::size_t>(cg - 1)];
            AF_ASSERT(stream.tag == tag, "activation tag skew: expected "
                                             << tag << ", got " << stream.tag
                                             << " at r=" << r << " cg=" << cg);
            pair = pe_compute(stream.value, weight.at(r, c), pair);
            ++stats.activity.mult_ops;
            ++stats.activity.csa_ops;
          }
          // Boundary PE resolves the redundant pair with its CPA.
          const std::int64_t resolved = pair.resolve();
          ++stats.activity.cpa_ops;
          if (vg + 1 == v_groups) {
            acc->at(tag, c) = add_mod(acc->at(tag, c), resolved);
            ++stats.activity.acc_writes;
            ++outputs_written;
            south_values[static_cast<std::size_t>(c)] = resolved;
            south_valid[static_cast<std::size_t>(c)] = 1;
          } else {
            v_next[static_cast<std::size_t>(vg)][static_cast<std::size_t>(c)] =
                Tagged64{resolved, tag};
            ++stats.activity.vreg_writes;
          }
        }
      }
    }

    // (3) Horizontal register latch: group-head registers shift the stream
    //     one group to the right.
    for (int r = 0; r < rows; ++r) {
      auto& regs = h_reg[static_cast<std::size_t>(r)];
      for (int g = h_groups - 2; g >= 1; --g) {
        regs[static_cast<std::size_t>(g)] = regs[static_cast<std::size_t>(g - 1)];
        if (regs[static_cast<std::size_t>(g)].tag >= 0) {
          ++stats.activity.hreg_writes;
        }
      }
      if (h_groups >= 2) {
        regs[0] = Tagged32{west[static_cast<std::size_t>(r)],
                           west_tag[static_cast<std::size_t>(r)]};
        if (regs[0].tag >= 0) ++stats.activity.hreg_writes;
      }
    }
    v_reg = std::move(v_next);

    stats.activity.hreg_bypassed_bit_cycles += h_bypassed_bits;
    stats.activity.vreg_bypassed_bit_cycles += v_bypassed_bits;

    if (observer) {
      CycleSnapshot snap;
      snap.relative_cycle = cycle;
      snap.west_inputs = &west;
      snap.south_values = &south_values;
      snap.south_valid = &south_valid;
      observer(snap);
    }
    ++cycle;
    AF_ASSERT(cycle <= t_dim + rows + cols + 4,
              "simulation failed to drain: cycle " << cycle);
  }

  stats.activity.streaming_cycles = cycle;
  stats.total_cycles = stats.preload_cycles + cycle;
  return stats;
}

namespace {

// Shared tiled-execution loop; `skip_zero_tiles` implements the block-sparse
// sequencer of Section V's future-work discussion.
TileRunStats run_tiled(SystolicArray& array, const gemm::Mat32& a,
                       const gemm::Mat32& b, int k, gemm::Mat64* out,
                       bool skip_zero_tiles) {
  AF_CHECK(a.cols() == b.rows(), "GEMM inner-dimension mismatch: "
                                     << a.cols() << " vs " << b.rows());
  AF_CHECK(out != nullptr, "output matrix required");
  const ArrayConfig& config = array.config();
  const gemm::GemmShape shape{b.cols(), a.cols(), a.rows()};
  *out = gemm::Mat64(shape.t, shape.m);

  std::unique_ptr<TileOccupancy> occupancy;
  if (skip_zero_tiles) {
    occupancy = std::make_unique<TileOccupancy>(
        TileOccupancy::from_matrix(b, config.rows, config.cols));
  }
  const gemm::TileGrid grid(shape, config.rows, config.cols);
  TileRunStats stats;
  for (const gemm::TileCoord& tile : grid.tiles()) {
    if (occupancy != nullptr &&
        !occupancy->is_nonzero(tile.n0 / config.rows, tile.m0 / config.cols)) {
      continue;  // all-zero weight tile: contributes nothing, costs nothing
    }
    const gemm::Mat32 a_block =
        a.block_padded(0, tile.n0, shape.t, config.rows);
    const gemm::Mat32 b_block =
        b.block_padded(tile.n0, tile.m0, config.rows, config.cols);
    gemm::Mat64 acc(shape.t, config.cols);
    stats += array.run_tile(a_block, b_block, k, &acc);
    for (std::int64_t t = 0; t < shape.t; ++t) {
      for (std::int64_t m = 0; m < tile.m_extent; ++m) {
        out->at(t, tile.m0 + m) =
            add_mod(out->at(t, tile.m0 + m), acc.at(t, m));
      }
    }
  }
  return stats;
}

}  // namespace

TileRunStats SystolicArray::run_gemm(const gemm::Mat32& a, const gemm::Mat32& b,
                                     int k, gemm::Mat64* out) {
  return run_tiled(*this, a, b, k, out, /*skip_zero_tiles=*/false);
}

TileRunStats SystolicArray::run_gemm_sparse(const gemm::Mat32& a,
                                            const gemm::Mat32& b, int k,
                                            gemm::Mat64* out) {
  return run_tiled(*this, a, b, k, out, /*skip_zero_tiles=*/true);
}

}  // namespace af::arch
