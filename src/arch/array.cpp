#include "arch/array.h"

#include <algorithm>
#include <cstring>
#include <memory>

#include "arch/sparse.h"
#include "util/math.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace af::arch {
namespace {

// Modular 64-bit accumulate (matches the RTL adders).
std::int64_t add_mod(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) +
                                   static_cast<std::uint64_t>(b));
}

}  // namespace

ActivityCounters& ActivityCounters::operator+=(const ActivityCounters& o) {
  mult_ops += o.mult_ops;
  csa_ops += o.csa_ops;
  cpa_ops += o.cpa_ops;
  hreg_writes += o.hreg_writes;
  vreg_writes += o.vreg_writes;
  wreg_writes += o.wreg_writes;
  acc_writes += o.acc_writes;
  hreg_bypassed_bit_cycles += o.hreg_bypassed_bit_cycles;
  vreg_bypassed_bit_cycles += o.vreg_bypassed_bit_cycles;
  streaming_cycles += o.streaming_cycles;
  return *this;
}

TileRunStats& TileRunStats::operator+=(const TileRunStats& o) {
  total_cycles += o.total_cycles;
  preload_cycles += o.preload_cycles;
  activity += o.activity;
  return *this;
}

SystolicArray::SystolicArray(const ArrayConfig& config) : config_(config) {
  config_.validate();
  const int threads =
      util::ThreadPool::resolve_num_threads(config_.sim.num_threads);
  if (threads > 1) pool_ = std::make_unique<util::ThreadPool>(threads);
}

SystolicArray::~SystolicArray() = default;

TileRunStats SystolicArray::run_tile(const gemm::Mat32& a,
                                     const gemm::Mat32& b, int k,
                                     gemm::Mat64* acc,
                                     const CycleObserver& observer) {
  AF_CHECK(config_.supports(k), "mode k=" << k << " not supported");
  return run_tile_asym(a, b, k, k, acc, observer);
}

TileRunStats SystolicArray::run_tile_asym(const gemm::Mat32& a,
                                          const gemm::Mat32& b, int k_v,
                                          int k_h, gemm::Mat64* acc,
                                          const CycleObserver& observer) {
  const std::int64_t rows = config_.rows;
  const std::int64_t cols = config_.cols;
  AF_CHECK(k_v >= 1 && divides(k_v, rows),
           "vertical collapse k_v=" << k_v << " must divide R=" << rows);
  AF_CHECK(k_h >= 1 && divides(k_h, cols),
           "horizontal collapse k_h=" << k_h << " must divide C=" << cols);
  AF_CHECK(a.cols() == rows, "tile A must have R=" << rows << " columns, got "
                                                   << a.cols());
  AF_CHECK(b.rows() == rows && b.cols() == cols,
           "tile B must be " << rows << "x" << cols << ", got " << b.rows()
                             << "x" << b.cols());
  const std::int64_t t_dim = a.rows();
  AF_CHECK(t_dim > 0, "tile T dimension must be positive");
  AF_CHECK(acc != nullptr && acc->rows() == t_dim && acc->cols() == cols,
           "accumulator must be T x C");

  TileRunStats stats;

  // ---- Weight preload: one row of B enters the north edge per cycle and
  // shifts down, taking exactly R cycles (paper Section II) during which
  // every one of the R*C weight registers latches — accounted in closed
  // form instead of emulating the O(R^2*C) shift.  The array then holds B
  // in place; we keep it transposed (column-major) so the vertical
  // reduction walks contiguous memory.
  std::vector<std::int32_t> weight_t(
      static_cast<std::size_t>(rows * cols));
  {
    const std::int32_t* b_data = b.data().data();
    for (std::int64_t r = 0; r < rows; ++r) {
      for (std::int64_t c = 0; c < cols; ++c) {
        weight_t[static_cast<std::size_t>(c * rows + r)] =
            b_data[r * cols + c];
      }
    }
  }
  stats.preload_cycles = rows;
  stats.activity.wreg_writes = rows * rows * cols;
#ifndef NDEBUG
  {
    // Debug builds re-emulate the R-cycle shift and verify it lands every
    // B element on its stationary register (guards the closed-form
    // accounting above against scheduling regressions).
    gemm::Mat32 shifted(rows, cols);
    for (std::int64_t cycle = 0; cycle < rows; ++cycle) {
      for (std::int64_t r = rows - 1; r >= 1; --r) {
        for (std::int64_t c = 0; c < cols; ++c) {
          shifted.at(r, c) = shifted.at(r - 1, c);
        }
      }
      for (std::int64_t c = 0; c < cols; ++c) {
        shifted.at(0, c) = b.at(rows - 1 - cycle, c);
      }
    }
    for (std::int64_t r = 0; r < rows; ++r) {
      for (std::int64_t c = 0; c < cols; ++c) {
        AF_ASSERT(shifted.at(r, c) == b.at(r, c),
                  "weight preload misplaced B[" << r << "][" << c << "]");
      }
    }
  }
#endif

  // ---- Streaming epoch.
  const std::int64_t h_groups = cols / k_h;  // column groups (broadcast k_h)
  const std::int64_t v_groups = rows / k_v;  // row groups (collapse k_v)
  // Last output: tag T-1 resolved at the bottom-right cell, i.e. relative
  // cycle (T-1) + (C/k_h - 1) + (R/k_v - 1) — Eq. 3 minus the preload term.
  const std::int64_t streaming_cycles = t_dim + v_groups + h_groups - 2;

  // Flat double-buffered plane of vertical boundary registers: row vg holds
  // the resolved partial sums latched below row group vg, consumed by group
  // vg+1 the next cycle.  Swapped per cycle, never copied.  Tag planes (for
  // skew verification) exist only in debug builds.
  const std::size_t v_plane =
      static_cast<std::size_t>(v_groups > 1 ? (v_groups - 1) * cols : 0);
  std::vector<std::int64_t> v_cur(v_plane, 0), v_nxt(v_plane, 0);
  // Flat horizontal register plane, laid out group-major ([g][r]) so the
  // per-cycle latch is a single overlapping memmove and the inner loop
  // reads activations contiguously in r.
  const std::int64_t h_regs = h_groups - 1;
  std::vector<std::int32_t> h_val(
      static_cast<std::size_t>(h_regs * rows), 0);
#ifndef NDEBUG
  std::vector<std::int64_t> v_tag_cur(v_plane, -1), v_tag_nxt(v_plane, -1);
  std::vector<std::int64_t> h_tag(static_cast<std::size_t>(h_regs * rows),
                                  -1);
  std::vector<std::int64_t> west_tag(static_cast<std::size_t>(rows), -1);
#endif

  std::vector<std::int32_t> west(static_cast<std::size_t>(rows), 0);
  std::vector<std::int64_t> south_values(static_cast<std::size_t>(cols), 0);
  std::vector<std::uint8_t> south_valid(static_cast<std::size_t>(cols), 0);

  const std::int32_t* a_data = a.data().data();
  std::int64_t outputs_written = 0;
  const std::int64_t outputs_expected = t_dim * cols;

  for (std::int64_t cycle = 0; cycle < streaming_cycles; ++cycle) {
    // (1) West-edge injection: A[t][r] enters at relative cycle
    //     t + floor(r/k_v) — "the first (and last) elements of matrix A
    //     arrive in batches of k words" (paper Section III).  Row group vg
    //     copies one contiguous slice of A's row t.
    for (std::int64_t vg = 0; vg < v_groups; ++vg) {
      const std::int64_t t = cycle - vg;
      std::int32_t* dst = west.data() + vg * k_v;
      if (t >= 0 && t < t_dim) {
        std::memcpy(dst, a_data + t * rows + vg * k_v,
                    static_cast<std::size_t>(k_v) * sizeof(std::int32_t));
#ifndef NDEBUG
        std::fill_n(west_tag.begin() + vg * k_v, k_v, t);
#endif
      } else {
        std::memset(dst, 0,
                    static_cast<std::size_t>(k_v) * sizeof(std::int32_t));
#ifndef NDEBUG
        std::fill_n(west_tag.begin() + vg * k_v, k_v, std::int64_t{-1});
#endif
      }
    }
    std::fill(south_valid.begin(), south_valid.end(), 0);
#ifndef NDEBUG
    // Original semantics: every boundary slot latches each cycle, a bubble
    // when its cell's tag is out of range.  Pre-mark bubbles; valid cells
    // overwrite below.
    std::fill(v_tag_nxt.begin(), v_tag_nxt.end(), std::int64_t{-1});
    std::fill(v_nxt.begin(), v_nxt.end(), std::int64_t{0});
#endif

    // (2) Combinational propagate.  Cell (cg, vg) of the group grid
    //     processes tag = cycle - cg - vg; only cells whose tag lands in
    //     [0, T) do work, which bounds both loops directly — no per-cell
    //     validity tests, no bubble traffic in release builds.
    std::int64_t cells = 0;         // valid (cg, vg) cells this cycle
    std::int64_t bottom_cells = 0;  // of which in the bottom row group
    const std::int64_t cg_lo =
        std::max<std::int64_t>(0, cycle - t_dim - v_groups + 2);
    const std::int64_t cg_hi = std::min<std::int64_t>(h_groups - 1, cycle);
    for (std::int64_t cg = cg_lo; cg <= cg_hi; ++cg) {
      // The activation stream entering column group cg: the west edge for
      // group 0, otherwise the horizontal register bank behind it.
      const std::int32_t* act =
          cg == 0 ? west.data() : h_val.data() + (cg - 1) * rows;
      const std::int64_t base = cycle - cg;
      const std::int64_t vg_lo = std::max<std::int64_t>(0, base - t_dim + 1);
      const std::int64_t vg_hi = std::min<std::int64_t>(v_groups - 1, base);
      if (vg_lo > vg_hi) continue;
      cells += vg_hi - vg_lo + 1;
      if (vg_hi == v_groups - 1) ++bottom_cells;
      for (std::int64_t vg = vg_lo; vg <= vg_hi; ++vg) {
        const std::int64_t tag = base - vg;
        const bool bottom = vg == v_groups - 1;
        const std::int64_t* vin =
            vg > 0 ? v_cur.data() + (vg - 1) * cols : nullptr;
        std::int64_t* vout = bottom ? nullptr : v_nxt.data() + vg * cols;
        const std::int64_t r0 = vg * k_v;
        for (std::int64_t c = cg * k_h; c < (cg + 1) * k_h; ++c) {
#ifndef NDEBUG
          if (vg > 0) {
            AF_ASSERT(v_tag_cur[static_cast<std::size_t>((vg - 1) * cols +
                                                         c)] == tag,
                      "psum tag skew at vg=" << vg << " c=" << c);
          }
          for (std::int64_t r = r0; r < r0 + k_v; ++r) {
            const std::int64_t stream_tag =
                cg == 0 ? west_tag[static_cast<std::size_t>(r)]
                        : h_tag[static_cast<std::size_t>((cg - 1) * rows + r)];
            AF_ASSERT(stream_tag == tag, "activation tag skew: expected "
                                             << tag << ", got " << stream_tag
                                             << " at r=" << r
                                             << " cg=" << cg);
          }
#endif
          // Transparent reduction through the k_v rows of this group: the
          // chain of 3:2 compressions resolved by the boundary CPA equals
          // the modular sum of the incoming psum and the k_v products
          // (csa_compress preserves sum+carry mod 2^64), so the engine
          // accumulates directly — bit-exact against arch/pe.
          std::uint64_t sum =
              vin ? static_cast<std::uint64_t>(vin[c]) : std::uint64_t{0};
          const std::int32_t* wcol = weight_t.data() + c * rows;
          for (std::int64_t r = r0; r < r0 + k_v; ++r) {
            sum += static_cast<std::uint64_t>(
                static_cast<std::int64_t>(act[r]) *
                static_cast<std::int64_t>(wcol[r]));
          }
          const std::int64_t resolved = static_cast<std::int64_t>(sum);
          if (bottom) {
            acc->at(tag, c) = add_mod(acc->at(tag, c), resolved);
            south_values[static_cast<std::size_t>(c)] = resolved;
            south_valid[static_cast<std::size_t>(c)] = 1;
          } else {
            vout[c] = resolved;
#ifndef NDEBUG
            v_tag_nxt[static_cast<std::size_t>(vg * cols + c)] = tag;
#endif
          }
        }
      }
    }

    // Per-cycle activity, hoisted out of the MAC loop: every valid cell
    // performs k_v*k_h multiplies + compressions and k_h boundary resolves;
    // bottom-group cells retire k_h outputs, the rest latch k_h boundary
    // registers.
    stats.activity.mult_ops += cells * k_v * k_h;
    stats.activity.csa_ops += cells * k_v * k_h;
    stats.activity.cpa_ops += cells * k_h;
    stats.activity.vreg_writes += (cells - bottom_cells) * k_h;
    stats.activity.acc_writes += bottom_cells * k_h;
    outputs_written += bottom_cells * k_h;

    // (3) Horizontal register latch: the group-head registers shift the
    //     stream one group to the right (one overlapping memmove over the
    //     [g][r] plane), and bank 0 latches the west edge.  A register
    //     write counts when the latched value is valid, i.e. its tag
    //     cycle - g - vg lands in [0, T) — counted per row group instead
    //     of per register.
    if (h_regs >= 1) {
      for (std::int64_t vg = 0; vg < v_groups; ++vg) {
        const std::int64_t lo =
            std::max<std::int64_t>(0, cycle - vg - (t_dim - 1));
        const std::int64_t hi = std::min<std::int64_t>(h_regs - 1, cycle - vg);
        if (lo <= hi) stats.activity.hreg_writes += (hi - lo + 1) * k_v;
      }
      if (h_regs >= 2) {
        std::memmove(h_val.data() + rows, h_val.data(),
                     static_cast<std::size_t>((h_regs - 1) * rows) *
                         sizeof(std::int32_t));
#ifndef NDEBUG
        std::memmove(h_tag.data() + rows, h_tag.data(),
                     static_cast<std::size_t>((h_regs - 1) * rows) *
                         sizeof(std::int64_t));
#endif
      }
      std::memcpy(h_val.data(), west.data(),
                  static_cast<std::size_t>(rows) * sizeof(std::int32_t));
#ifndef NDEBUG
      std::copy(west_tag.begin(), west_tag.end(), h_tag.begin());
#endif
    }
    v_cur.swap(v_nxt);
#ifndef NDEBUG
    v_tag_cur.swap(v_tag_nxt);
#endif

    if (observer) {
      CycleSnapshot snap;
      snap.relative_cycle = cycle;
      snap.west_inputs = &west;
      snap.south_values = &south_values;
      snap.south_valid = &south_valid;
      observer(snap);
    }
  }

  // Clock-gated (transparent) register bits are a per-streaming-cycle
  // constant: each row keeps C/k_h - 1 of its C - 1 activation registers
  // active, each column keeps R/k_v of its R psum registers active.
  stats.activity.hreg_bypassed_bit_cycles =
      rows * (cols - h_groups) * config_.input_bits * streaming_cycles;
  stats.activity.vreg_bypassed_bit_cycles =
      cols * (rows - v_groups) * config_.acc_bits * streaming_cycles;
  stats.activity.streaming_cycles = streaming_cycles;
  stats.total_cycles = stats.preload_cycles + streaming_cycles;
  AF_CHECK(outputs_written == outputs_expected,
           "streaming epoch retired " << outputs_written << " outputs, want "
                                      << outputs_expected);
  return stats;
}

// Shared tiled-execution loop; `skip_zero_tiles` implements the block-sparse
// sequencer of Section V's future-work discussion.  The output is cut into
// C-wide column stripes — each stripe owns a disjoint set of output columns
// and iterates N innermost (so the accumulators finish one column group
// before moving on) — which makes stripes the unit of parallel dispatch:
// no two workers ever touch the same output element, and per-stripe stats
// reduce with plain integer adds, so threaded runs are bit-identical to
// serial ones.
TileRunStats SystolicArray::run_tiled(const gemm::Mat32& a,
                                      const gemm::Mat32& b, int k,
                                      gemm::Mat64* out, bool skip_zero_tiles) {
  AF_CHECK(a.cols() == b.rows(), "GEMM inner-dimension mismatch: "
                                     << a.cols() << " vs " << b.rows());
  AF_CHECK(out != nullptr, "output matrix required");
  const std::int64_t rows = config_.rows;
  const std::int64_t cols = config_.cols;
  const gemm::GemmShape shape{b.cols(), a.cols(), a.rows()};
  *out = gemm::Mat64(shape.t, shape.m);

  std::unique_ptr<TileOccupancy> occupancy;
  if (skip_zero_tiles) {
    occupancy = std::make_unique<TileOccupancy>(
        TileOccupancy::from_matrix(b, config_.rows, config_.cols));
  }
  const std::int64_t row_tiles = ceil_div(shape.n, rows);  // along N
  const std::int64_t col_tiles = ceil_div(shape.m, cols);  // along M

  // The zero-padded A panels are shared read-only by every stripe; extract
  // them once instead of once per tile.
  std::vector<gemm::Mat32> a_panels;
  a_panels.reserve(static_cast<std::size_t>(row_tiles));
  for (std::int64_t rt = 0; rt < row_tiles; ++rt) {
    a_panels.push_back(a.block_padded(0, rt * rows, shape.t, rows));
  }

  const auto run_stripe = [&](std::int64_t ct, TileRunStats* stripe_stats) {
    const std::int64_t m0 = ct * cols;
    const std::int64_t m_extent = std::min(cols, shape.m - m0);
    for (std::int64_t rt = 0; rt < row_tiles; ++rt) {
      if (occupancy != nullptr && !occupancy->is_nonzero(rt, ct)) {
        continue;  // all-zero weight tile: contributes nothing, costs nothing
      }
      const gemm::Mat32 b_block =
          b.block_padded(rt * rows, m0, rows, cols);
      gemm::Mat64 acc(shape.t, cols);
      *stripe_stats += run_tile(a_panels[static_cast<std::size_t>(rt)],
                                b_block, k, &acc);
      for (std::int64_t t = 0; t < shape.t; ++t) {
        for (std::int64_t m = 0; m < m_extent; ++m) {
          out->at(t, m0 + m) = add_mod(out->at(t, m0 + m), acc.at(t, m));
        }
      }
    }
  };

  std::vector<TileRunStats> per_stripe(static_cast<std::size_t>(col_tiles));
  util::ThreadPool* pool = external_pool_ ? external_pool_ : pool_.get();
  util::ThreadPool::run_n(pool, col_tiles, [&](std::int64_t ct) {
    run_stripe(ct, &per_stripe[static_cast<std::size_t>(ct)]);
  });
  TileRunStats stats;
  for (const TileRunStats& s : per_stripe) stats += s;
  return stats;
}

TileRunStats SystolicArray::run_gemm(const gemm::Mat32& a, const gemm::Mat32& b,
                                     int k, gemm::Mat64* out) {
  return run_tiled(a, b, k, out, /*skip_zero_tiles=*/false);
}

TileRunStats SystolicArray::run_gemm_sparse(const gemm::Mat32& a,
                                            const gemm::Mat32& b, int k,
                                            gemm::Mat64* out) {
  return run_tiled(a, b, k, out, /*skip_zero_tiles=*/true);
}

}  // namespace af::arch
