#include "arch/config.h"

#include <algorithm>

#include "util/math.h"
#include "util/status.h"
#include "util/strings.h"

namespace af::arch {

const char* reuse_strategy_name(ReuseStrategy strategy) {
  switch (strategy) {
    case ReuseStrategy::kAuto:
      return "auto";
    case ReuseStrategy::kAStationary:
      return "a_stationary";
    case ReuseStrategy::kBStationary:
      return "b_stationary";
    case ReuseStrategy::kOutputStationary:
      return "output_stationary";
  }
  AF_CHECK(false, "unknown ReuseStrategy value "
                      << static_cast<int>(strategy));
}

ReuseStrategy parse_reuse_strategy(const std::string& name) {
  for (const ReuseStrategy s :
       {ReuseStrategy::kAuto, ReuseStrategy::kAStationary,
        ReuseStrategy::kBStationary, ReuseStrategy::kOutputStationary}) {
    if (name == reuse_strategy_name(s)) return s;
  }
  AF_CHECK(false, "unknown reuse strategy \""
                      << name
                      << "\" (known: \"auto\", \"a_stationary\", "
                         "\"b_stationary\", \"output_stationary\")");
}

void MemoryConfig::validate() const {
  if (!enabled) return;  // disabled knobs are never read
  AF_CHECK(spad_bytes > 0,
           "mem.spad_bytes must be positive, got " << spad_bytes);
  AF_CHECK(dram_bytes_per_cycle > 0,
           "mem.dram_bytes_per_cycle must be positive, got "
               << dram_bytes_per_cycle);
  AF_CHECK(dram_latency_cycles >= 0,
           "mem.dram_latency_cycles must be >= 0, got "
               << dram_latency_cycles);
}

std::string MemoryConfig::to_string() const {
  if (!enabled) return "magic memory";
  return format("spad %lld B, DRAM %lld B/cyc + %lld cyc latency, reuse %s",
                static_cast<long long>(spad_bytes),
                static_cast<long long>(dram_bytes_per_cycle),
                static_cast<long long>(dram_latency_cycles),
                reuse_strategy_name(reuse));
}

std::vector<std::string> MemoryConfig::knob_names() {
  // Sorted: the CI drift check diffs this listing (via `engine_info
  // --memory`) against the README's "Memory hierarchy" knob table.
  return {"dram_bytes_per_cycle", "dram_latency_cycles", "enabled", "reuse",
          "spad_bytes"};
}

void ArrayConfig::validate() const {
  AF_CHECK(rows > 0 && cols > 0, "array dimensions must be positive, got "
                                     << rows << "x" << cols);
  AF_CHECK(input_bits >= 2 && input_bits <= 32,
           "input_bits must be in [2,32], got " << input_bits);
  AF_CHECK(acc_bits >= 2 * input_bits && acc_bits <= 64,
           "acc_bits must be in [2*input_bits, 64], got " << acc_bits);
  AF_CHECK(!supported_k.empty(), "at least one pipeline mode is required");
  AF_CHECK(std::find(supported_k.begin(), supported_k.end(), 1) !=
               supported_k.end(),
           "normal pipeline mode (k=1) must be supported");
  for (const int k : supported_k) {
    AF_CHECK(k >= 1, "pipeline mode must be >= 1, got " << k);
    AF_CHECK(divides(k, rows) && divides(k, cols),
             "collapse depth k=" << k << " must divide both R=" << rows
                                 << " and C=" << cols);
  }
  AF_CHECK(sim.num_threads >= 0,
           "sim.num_threads must be >= 0 (0 = all hardware threads), got "
               << sim.num_threads);
  mem.validate();
}

bool ArrayConfig::supports(int k) const {
  return std::find(supported_k.begin(), supported_k.end(), k) !=
         supported_k.end();
}

int ArrayConfig::max_k() const {
  return *std::max_element(supported_k.begin(), supported_k.end());
}

std::string ArrayConfig::to_string() const {
  std::string modes;
  for (const int k : supported_k) {
    if (!modes.empty()) modes += ",";
    modes += std::to_string(k);
  }
  std::string out = format("%dx%d SA (k in {%s}, %d-bit ops, %d-bit acc)",
                           rows, cols, modes.c_str(), input_bits, acc_bits);
  if (mem.enabled) out += ", " + mem.to_string();
  return out;
}

ArrayConfig ArrayConfig::square(int side) {
  ArrayConfig cfg;
  cfg.rows = side;
  cfg.cols = side;
  cfg.supported_k.clear();
  for (const int k : {1, 2, 4}) {
    if (divides(k, side)) cfg.supported_k.push_back(k);
  }
  cfg.validate();
  return cfg;
}

ArrayConfig ArrayConfig::square_with_modes(int side, std::vector<int> modes) {
  ArrayConfig cfg;
  cfg.rows = side;
  cfg.cols = side;
  cfg.supported_k = std::move(modes);
  cfg.validate();
  return cfg;
}

}  // namespace af::arch
