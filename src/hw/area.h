// Cell-area accounting over a netlist, with per-component attribution.
//
// Reproduces the Fig. 6 analysis: the physical layouts in the paper show a
// ~16% per-PE area overhead for ArrayFlex, consumed by the carry-save adder,
// the bypass multiplexers and two configuration bits.  We measure the same
// split from the generated netlists by grouping hierarchical cell names.

#pragma once

#include <map>
#include <string>

#include "hw/netlist.h"

namespace af::hw {

struct AreaBreakdown {
  double total_um2 = 0.0;
  // Area by first path component of the cell name ("mul", "cpa", "csa", ...).
  std::map<std::string, double> by_group_um2;
  // Area by cell type name ("FA", "MUX2", ...).
  std::map<std::string, double> by_cell_type_um2;
  int cell_count = 0;

  double group_um2(const std::string& group) const;
  // Fraction of total occupied by a group, in [0, 1].
  double group_fraction(const std::string& group) const;
};

AreaBreakdown compute_area(const Netlist& nl);

// Relative overhead of `design` over `baseline`: area(design)/area(baseline)-1.
double area_overhead(const AreaBreakdown& baseline, const AreaBreakdown& design);

}  // namespace af::hw
