#include "hw/sta.h"

#include <algorithm>

#include "util/status.h"
#include "util/strings.h"

namespace af::hw {
namespace {

constexpr double kMinusInf = -std::numeric_limits<double>::infinity();

}  // namespace

Sta::Sta(const Netlist& nl, const Technology& tech) : nl_(nl), tech_(tech) {}

void Sta::add_false_path_prefix(const std::string& prefix) {
  false_prefixes_.push_back(prefix);
}

TimingReport Sta::run() const {
  const int num_nets = nl_.num_nets();
  // arrival[n]: worst data arrival time at net n; -inf = unreachable
  // (undriven or only reachable through excluded cells).
  std::vector<double> arrival(static_cast<std::size_t>(num_nets), kMinusInf);
  // For traceback: which cell propagated the worst arrival to this net.
  std::vector<int> from_cell(static_cast<std::size_t>(num_nets),
                             Netlist::kNoCell);

  for (const auto& [name, bus] : nl_.inputs()) {
    for (const NetId n : bus) {
      arrival[static_cast<std::size_t>(n)] = input_arrival_ps_;
    }
  }

  const auto is_false = [&](const std::string& cell_name) {
    return std::any_of(false_prefixes_.begin(), false_prefixes_.end(),
                       [&](const std::string& p) {
                         return starts_with(cell_name, p);
                       });
  };

  for (const int ci : nl_.topo_order()) {
    const Cell& cell = nl_.cell(ci);
    if (is_false(cell.name)) continue;

    if (cell.type == CellType::kDff) {
      // Launch point: Q is valid clk-to-q after the edge.
      const NetId q = cell.outputs[0];
      if (tech_.scaled_clk_to_q_ps() > arrival[static_cast<std::size_t>(q)]) {
        arrival[static_cast<std::size_t>(q)] = tech_.scaled_clk_to_q_ps();
        from_cell[static_cast<std::size_t>(q)] = ci;
      }
      continue;
    }
    if (cell.type == CellType::kTie0 || cell.type == CellType::kTie1) {
      // Constants are timing-stable; they never launch a path.
      continue;
    }

    double worst_in = kMinusInf;
    for (const NetId n : cell.inputs) {
      worst_in = std::max(worst_in, arrival[static_cast<std::size_t>(n)]);
    }
    if (worst_in == kMinusInf) continue;  // feeds only from excluded logic

    for (std::size_t oi = 0; oi < cell.outputs.size(); ++oi) {
      const double t =
          worst_in + tech_.scaled_delay_ps(cell.type, static_cast<int>(oi));
      const NetId n = cell.outputs[oi];
      if (t > arrival[static_cast<std::size_t>(n)]) {
        arrival[static_cast<std::size_t>(n)] = t;
        from_cell[static_cast<std::size_t>(n)] = ci;
      }
    }
  }

  // Collect endpoints.
  TimingReport report;
  double worst = 0.0;
  NetId worst_net = kNoNet;
  std::string endpoint = "none";

  for (const auto& [name, bus] : nl_.outputs()) {
    for (const NetId n : bus) {
      const double t = arrival[static_cast<std::size_t>(n)];
      if (t != kMinusInf && t > worst) {
        worst = t;
        worst_net = n;
        endpoint = "output:" + name;
      }
    }
  }
  for (int ci = 0; ci < nl_.num_cells(); ++ci) {
    const Cell& cell = nl_.cell(ci);
    if (cell.type != CellType::kDff || is_false(cell.name)) continue;
    const NetId d = cell.inputs[0];
    const double t = arrival[static_cast<std::size_t>(d)];
    if (t == kMinusInf) continue;
    const double required = t + tech_.scaled_setup_ps();
    if (required > worst) {
      worst = required;
      worst_net = d;
      endpoint = "dff:" + cell.name;
    }
  }

  report.min_period_ps = worst;
  report.endpoint = endpoint;

  // Trace the critical path back through the argmax predecessors.
  std::vector<TimingPathStep> path;
  NetId n = worst_net;
  while (n != kNoNet) {
    const int ci = from_cell[static_cast<std::size_t>(n)];
    if (ci == Netlist::kNoCell) break;
    const Cell& cell = nl_.cell(ci);
    path.push_back(TimingPathStep{cell.name, cell_type_name(cell.type),
                                  arrival[static_cast<std::size_t>(n)]});
    if (cell.type == CellType::kDff) break;  // reached a launch point
    // Continue from the worst input of this cell.
    NetId best = kNoNet;
    double best_t = kMinusInf;
    for (const NetId in : cell.inputs) {
      if (arrival[static_cast<std::size_t>(in)] > best_t) {
        best_t = arrival[static_cast<std::size_t>(in)];
        best = in;
      }
    }
    n = best;
  }
  std::reverse(path.begin(), path.end());
  report.critical_path = std::move(path);
  return report;
}

}  // namespace af::hw
