#include "hw/sta.h"

#include <algorithm>

#include "util/status.h"
#include "util/strings.h"

namespace af::hw {
namespace {

constexpr double kMinusInf = -std::numeric_limits<double>::infinity();

}  // namespace

Sta::Sta(const Netlist& nl, const Technology& tech)
    : owned_(std::make_unique<CompiledNetlist>(nl)),
      cn_(*owned_),
      tech_(tech) {}

Sta::Sta(const CompiledNetlist& cn, const Technology& tech)
    : cn_(cn), tech_(tech) {}

void Sta::add_false_path_prefix(const std::string& prefix) {
  false_prefixes_.push_back(prefix);
}

TimingReport Sta::run() const {
  const Netlist& nl = cn_.netlist();
  const int num_nets = cn_.num_nets();
  const int num_cells = cn_.num_cells();
  // arrival[n]: worst data arrival time at net n; -inf = unreachable
  // (undriven or only reachable through excluded cells).
  std::vector<double> arrival(static_cast<std::size_t>(num_nets), kMinusInf);
  // For traceback: which cell propagated the worst arrival to this net.
  std::vector<int> from_cell(static_cast<std::size_t>(num_nets),
                             Netlist::kNoCell);

  for (const auto& [name, bus] : nl.inputs()) {
    for (const NetId n : bus) {
      arrival[static_cast<std::size_t>(n)] = input_arrival_ps_;
    }
  }

  // Resolve false-path prefixes against cell names once per run instead of
  // per visit.
  std::vector<std::uint8_t> excluded;
  if (!false_prefixes_.empty()) {
    excluded.assign(static_cast<std::size_t>(num_cells), 0);
    for (int ci = 0; ci < num_cells; ++ci) {
      const std::string& name = nl.cell(ci).name;
      for (const std::string& p : false_prefixes_) {
        if (starts_with(name, p)) {
          excluded[static_cast<std::size_t>(ci)] = 1;
          break;
        }
      }
    }
  }
  const auto is_false = [&](int ci) {
    return !excluded.empty() && excluded[static_cast<std::size_t>(ci)] != 0;
  };

  for (const int ci : cn_.full_order()) {
    if (is_false(ci)) continue;
    const CellType type = cn_.cell_type(ci);

    if (type == CellType::kDff) {
      // Launch point: Q is valid clk-to-q after the edge.
      const NetId q = cn_.cell_outputs(ci)[0];
      if (tech_.scaled_clk_to_q_ps() > arrival[static_cast<std::size_t>(q)]) {
        arrival[static_cast<std::size_t>(q)] = tech_.scaled_clk_to_q_ps();
        from_cell[static_cast<std::size_t>(q)] = ci;
      }
      continue;
    }
    if (type == CellType::kTie0 || type == CellType::kTie1) {
      // Constants are timing-stable; they never launch a path.
      continue;
    }

    const NetId* ins = cn_.cell_inputs(ci);
    const int n_in = cn_.num_cell_inputs(ci);
    double worst_in = kMinusInf;
    for (int i = 0; i < n_in; ++i) {
      worst_in = std::max(worst_in, arrival[static_cast<std::size_t>(ins[i])]);
    }
    if (worst_in == kMinusInf) continue;  // feeds only from excluded logic

    const NetId* outs = cn_.cell_outputs(ci);
    const int n_out = cn_.num_cell_outputs(ci);
    for (int oi = 0; oi < n_out; ++oi) {
      const double t = worst_in + tech_.scaled_delay_ps(type, oi);
      const NetId n = outs[oi];
      if (t > arrival[static_cast<std::size_t>(n)]) {
        arrival[static_cast<std::size_t>(n)] = t;
        from_cell[static_cast<std::size_t>(n)] = ci;
      }
    }
  }

  // Collect endpoints.
  TimingReport report;
  double worst = 0.0;
  NetId worst_net = kNoNet;
  std::string endpoint = "none";

  for (const auto& [name, bus] : nl.outputs()) {
    for (const NetId n : bus) {
      const double t = arrival[static_cast<std::size_t>(n)];
      if (t != kMinusInf && t > worst) {
        worst = t;
        worst_net = n;
        endpoint = "output:" + name;
      }
    }
  }
  for (const int ci : cn_.dff_cells()) {
    if (is_false(ci)) continue;
    const NetId d = cn_.cell_inputs(ci)[0];
    const double t = arrival[static_cast<std::size_t>(d)];
    if (t == kMinusInf) continue;
    const double required = t + tech_.scaled_setup_ps();
    if (required > worst) {
      worst = required;
      worst_net = d;
      endpoint = "dff:" + nl.cell(ci).name;
    }
  }

  report.min_period_ps = worst;
  report.endpoint = endpoint;

  // Trace the critical path back through the argmax predecessors.
  std::vector<TimingPathStep> path;
  NetId n = worst_net;
  while (n != kNoNet) {
    const int ci = from_cell[static_cast<std::size_t>(n)];
    if (ci == Netlist::kNoCell) break;
    const Cell& cell = nl.cell(ci);
    path.push_back(TimingPathStep{cell.name, cell_type_name(cell.type),
                                  arrival[static_cast<std::size_t>(n)]});
    if (cell.type == CellType::kDff) break;  // reached a launch point
    // Continue from the worst input of this cell.
    NetId best = kNoNet;
    double best_t = kMinusInf;
    for (const NetId in : cell.inputs) {
      if (arrival[static_cast<std::size_t>(in)] > best_t) {
        best_t = arrival[static_cast<std::size_t>(in)];
        best = in;
      }
    }
    n = best;
  }
  std::reverse(path.begin(), path.end());
  report.critical_path = std::move(path);
  return report;
}

}  // namespace af::hw
