#include "hw/bitvec.h"

#include <bit>

#include "util/status.h"

namespace af::hw {
namespace {

constexpr int kWordBits = 64;

std::size_t words_for(int width) {
  return static_cast<std::size_t>((width + kWordBits - 1) / kWordBits);
}

}  // namespace

BitVec::BitVec(int width) : width_(width), words_(words_for(width), 0) {
  AF_CHECK(width >= 0, "BitVec width must be non-negative, got " << width);
}

BitVec::BitVec(int width, std::uint64_t value) : BitVec(width) {
  if (!words_.empty()) {
    words_[0] = value;
    // Mask off bits beyond the declared width.
    if (width_ < kWordBits) {
      words_[0] &= (width_ == 0) ? 0 : (~0ULL >> (kWordBits - width_));
    }
  }
}

BitVec BitVec::all_ones(int width) {
  BitVec v(width);
  for (int i = 0; i < width; ++i) v.set_bit(i, true);
  return v;
}

bool BitVec::bit(int i) const {
  AF_CHECK(i >= 0 && i < width_, "bit index " << i << " out of width " << width_);
  return (words_[static_cast<std::size_t>(i / kWordBits)] >> (i % kWordBits)) & 1;
}

void BitVec::set_bit(int i, bool v) {
  AF_CHECK(i >= 0 && i < width_, "bit index " << i << " out of width " << width_);
  const std::size_t w = static_cast<std::size_t>(i / kWordBits);
  const std::uint64_t mask = 1ULL << (i % kWordBits);
  if (v) {
    words_[w] |= mask;
  } else {
    words_[w] &= ~mask;
  }
}

std::uint64_t BitVec::to_u64() const {
  if (words_.empty()) return 0;
  std::uint64_t v = words_[0];
  if (width_ < kWordBits) v &= (width_ == 0) ? 0 : (~0ULL >> (kWordBits - width_));
  return v;
}

std::int64_t BitVec::to_i64_signed() const {
  AF_CHECK(width_ >= 1 && width_ <= kWordBits,
           "to_i64_signed requires width in [1,64], got " << width_);
  std::uint64_t v = to_u64();
  if (bit(width_ - 1) && width_ < kWordBits) {
    v |= ~0ULL << width_;  // sign extension
  }
  return static_cast<std::int64_t>(v);
}

BitVec BitVec::slice(int lo, int len) const {
  AF_CHECK(lo >= 0 && len >= 0 && lo + len <= width_,
           "slice [" << lo << ", " << lo + len << ") out of width " << width_);
  BitVec out(len);
  for (int i = 0; i < len; ++i) out.set_bit(i, bit(lo + i));
  return out;
}

BitVec BitVec::concat_high(const BitVec& high) const {
  BitVec out(width_ + high.width_);
  for (int i = 0; i < width_; ++i) out.set_bit(i, bit(i));
  for (int i = 0; i < high.width_; ++i) out.set_bit(width_ + i, high.bit(i));
  return out;
}

BitVec BitVec::resized(int width) const {
  BitVec out(width);
  const int copy = std::min(width, width_);
  for (int i = 0; i < copy; ++i) out.set_bit(i, bit(i));
  return out;
}

void BitVec::check_same_width(const BitVec& o, const char* op) const {
  AF_CHECK(width_ == o.width_, "BitVec width mismatch in " << op << ": "
                                   << width_ << " vs " << o.width_);
}

BitVec BitVec::operator&(const BitVec& o) const {
  check_same_width(o, "operator&");
  BitVec out(width_);
  for (std::size_t w = 0; w < words_.size(); ++w) out.words_[w] = words_[w] & o.words_[w];
  return out;
}

BitVec BitVec::operator|(const BitVec& o) const {
  check_same_width(o, "operator|");
  BitVec out(width_);
  for (std::size_t w = 0; w < words_.size(); ++w) out.words_[w] = words_[w] | o.words_[w];
  return out;
}

BitVec BitVec::operator^(const BitVec& o) const {
  check_same_width(o, "operator^");
  BitVec out(width_);
  for (std::size_t w = 0; w < words_.size(); ++w) out.words_[w] = words_[w] ^ o.words_[w];
  return out;
}

BitVec BitVec::operator~() const {
  BitVec out(width_);
  for (int i = 0; i < width_; ++i) out.set_bit(i, !bit(i));
  return out;
}

BitVec BitVec::add_mod(const BitVec& o) const {
  check_same_width(o, "add_mod");
  BitVec out(width_);
  bool carry = false;
  for (int i = 0; i < width_; ++i) {
    const bool a = bit(i);
    const bool b = o.bit(i);
    out.set_bit(i, a ^ b ^ carry);
    carry = (a && b) || (a && carry) || (b && carry);
  }
  return out;
}

bool BitVec::operator==(const BitVec& o) const {
  if (width_ != o.width_) return false;
  for (int i = 0; i < width_; ++i) {
    if (bit(i) != o.bit(i)) return false;
  }
  return true;
}

std::string BitVec::to_string() const {
  std::string bits;
  bits.reserve(static_cast<std::size_t>(width_));
  for (int i = width_ - 1; i >= 0; --i) bits.push_back(bit(i) ? '1' : '0');
  return std::to_string(width_) + "'b" + bits;
}

int BitVec::popcount() const {
  int n = 0;
  for (int i = 0; i < width_; ++i) n += bit(i) ? 1 : 0;
  return n;
}

}  // namespace af::hw
