// Gate-level netlist: a DAG of standard cells connected by single-bit nets.
//
// Datapath builders (hw/builders) emit netlists for the PE's components;
// the STA engine computes critical paths over them and the area/power models
// aggregate their cells.  Names use hierarchical "group/leaf" paths so area
// and power can be attributed per component ("mul/", "cpa/", "csa/", ...).

#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "hw/cells.h"

namespace af::hw {

using NetId = std::int32_t;
inline constexpr NetId kNoNet = -1;

// A bus is an ordered list of nets, LSB first.
using Bus = std::vector<NetId>;

struct Cell {
  CellType type;
  std::string name;
  std::vector<NetId> inputs;
  std::vector<NetId> outputs;
};

class Netlist {
 public:
  Netlist() = default;

  // --- construction -------------------------------------------------------

  NetId new_net();
  Bus new_bus(int width);

  // Adds a cell; arity is validated against the library entry.  Returns the
  // cell index.
  int add_cell(CellType type, std::string name, std::vector<NetId> inputs,
               std::vector<NetId> outputs);

  // Constant nets (lazily created TIE cells, shared per netlist).
  NetId const0();
  NetId const1();

  // Declare primary input/output buses by name.  A net may be declared at
  // most once as a primary input.
  void bind_input(const std::string& name, Bus bus);
  void bind_output(const std::string& name, Bus bus);

  // Pushes/pops a hierarchical name prefix applied to add_cell names.
  void push_scope(const std::string& scope);
  void pop_scope();

  // --- inspection ---------------------------------------------------------

  int num_nets() const { return next_net_; }
  const std::vector<Cell>& cells() const { return cells_; }
  const Cell& cell(int index) const;

  const std::unordered_map<std::string, Bus>& inputs() const { return inputs_; }
  const std::unordered_map<std::string, Bus>& outputs() const { return outputs_; }
  const Bus& input(const std::string& name) const;
  const Bus& output(const std::string& name) const;

  // Driving cell index per net (kNoCell = primary input / undriven).
  static constexpr int kNoCell = -1;
  const std::vector<int>& driver_of() const;

  // Topological order of cell indices; throws af::Error on a combinational
  // cycle (DFF outputs break cycles, as in real designs).
  const std::vector<int>& topo_order() const;

  // Count of cells of a given type.
  int count_cells(CellType type) const;

  // Total cell count.
  int num_cells() const { return static_cast<int>(cells_.size()); }

 private:
  void invalidate_caches();

  NetId next_net_ = 0;
  std::vector<Cell> cells_;
  std::unordered_map<std::string, Bus> inputs_;
  std::unordered_map<std::string, Bus> outputs_;
  std::vector<std::string> scope_stack_;
  NetId const0_ = kNoNet;
  NetId const1_ = kNoNet;

  // Lazy caches.
  mutable std::vector<int> driver_cache_;
  mutable std::vector<int> topo_cache_;
};

// RAII helper for hierarchical naming scopes.
class ScopedName {
 public:
  ScopedName(Netlist& nl, const std::string& scope) : nl_(nl) {
    nl_.push_scope(scope);
  }
  ~ScopedName() { nl_.pop_scope(); }
  ScopedName(const ScopedName&) = delete;
  ScopedName& operator=(const ScopedName&) = delete;

 private:
  Netlist& nl_;
};

}  // namespace af::hw
