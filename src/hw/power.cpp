#include "hw/power.h"

#include "util/status.h"

namespace af::hw {
namespace {

std::string first_component(const std::string& name) {
  const auto slash = name.find('/');
  return slash == std::string::npos ? std::string("top")
                                    : name.substr(0, slash);
}

// fJ * GHz = uW; we report mW.
double fj_ghz_to_mw(double fj, double ghz) { return fj * ghz * 1e-3; }

void add_leakage(const Netlist& nl, PowerBreakdown& out) {
  for (const Cell& cell : nl.cells()) {
    out.leakage_mw += cell_info(cell.type).leakage_nw * 1e-6;
  }
}

}  // namespace

PowerBreakdown power_from_activity(const Netlist& nl,
                                   const std::vector<std::uint64_t>& toggles,
                                   std::uint64_t cycles,
                                   const PowerOptions& options) {
  AF_CHECK(cycles > 0, "power_from_activity requires cycles > 0");
  AF_CHECK(toggles.size() == static_cast<std::size_t>(nl.num_cells()),
           "toggle vector size mismatch");
  PowerBreakdown out;
  const double vsq = options.voltage_scale * options.voltage_scale;
  for (int ci = 0; ci < nl.num_cells(); ++ci) {
    const Cell& cell = nl.cell(ci);
    const CellInfo& info = cell_info(cell.type);
    const double alpha = static_cast<double>(toggles[static_cast<std::size_t>(ci)]) /
                         static_cast<double>(cycles);
    const double mw =
        fj_ghz_to_mw(alpha * info.switch_energy_fj * vsq, options.frequency_ghz);
    out.dynamic_mw += mw;
    out.by_group_mw[first_component(cell.name)] += mw;
    if (cell.type == CellType::kDff) {
      // Clock-pin energy burned every enabled cycle regardless of data.
      const double clk = fj_ghz_to_mw(info.switch_energy_fj * vsq *
                                          options.clock_enable_fraction,
                                      options.frequency_ghz);
      out.clock_mw += clk;
      out.by_group_mw[first_component(cell.name)] += clk;
    }
  }
  add_leakage(nl, out);
  return out;
}

PowerBreakdown power_from_activity(const CompiledNetlist& cn,
                                   const std::vector<std::uint64_t>& toggles,
                                   std::uint64_t cycles,
                                   const PowerOptions& options) {
  return power_from_activity(cn.netlist(), toggles, cycles, options);
}

PowerBreakdown power_from_factors(
    const Netlist& nl, double activity,
    const std::map<std::string, double>& group_activity,
    const PowerOptions& options) {
  AF_CHECK(activity >= 0.0, "activity must be non-negative");
  PowerBreakdown out;
  const double vsq = options.voltage_scale * options.voltage_scale;
  for (const Cell& cell : nl.cells()) {
    const CellInfo& info = cell_info(cell.type);
    const std::string group = first_component(cell.name);
    const auto it = group_activity.find(group);
    const double alpha = it == group_activity.end() ? activity : it->second;
    const double mw =
        fj_ghz_to_mw(alpha * info.switch_energy_fj * vsq, options.frequency_ghz);
    out.dynamic_mw += mw;
    out.by_group_mw[group] += mw;
    if (cell.type == CellType::kDff) {
      const double clk = fj_ghz_to_mw(info.switch_energy_fj * vsq *
                                          options.clock_enable_fraction,
                                      options.frequency_ghz);
      out.clock_mw += clk;
      out.by_group_mw[group] += clk;
    }
  }
  add_leakage(nl, out);
  return out;
}

}  // namespace af::hw
