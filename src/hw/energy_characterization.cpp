#include "hw/energy_characterization.h"

#include <vector>

#include "hw/builders/pe_datapath.h"
#include "hw/compiled_netlist.h"
#include "hw/netlist.h"
#include "hw/netlist_sim.h"
#include "util/math.h"
#include "util/rng.h"
#include "util/status.h"

namespace af::hw {
namespace {

// Second path component of "pe0/<group>/...": the PE sub-unit a cell belongs
// to ("mul"/"bmul", "csa", "cpa", "hmux", "vmux", "areg", "wreg", ...).
std::string pe_group(const std::string& name) {
  const auto first = name.find('/');
  if (first == std::string::npos) return "top";
  const auto second = name.find('/', first + 1);
  return second == std::string::npos
             ? name.substr(first + 1)
             : name.substr(first + 1, second - first - 1);
}

std::vector<std::uint64_t> random_lanes(Rng& rng, std::uint64_t mask) {
  std::vector<std::uint64_t> v(NetlistSim::kLanes);
  for (auto& x : v) x = rng.next_u64() & mask;
  return v;
}

}  // namespace

CharacterizedEnergy characterize_energy(
    const EnergyCharacterizationOptions& options,
    const arch::EnergyParams& base) {
  AF_CHECK(options.cycles > 0, "characterization needs at least one cycle");
  AF_CHECK(options.input_bits >= 1 && options.input_bits <= 32,
           "input_bits out of range");
  AF_CHECK(options.acc_bits >= options.input_bits * 2 && options.acc_bits <= 64,
           "acc_bits out of range");

  Netlist nl;
  PeDatapathOptions pe_opt{options.input_bits, options.acc_bits};
  pe_opt.multiplier = options.multiplier;
  build_arrayflex_pe(nl, pe_opt);
  const CompiledNetlist compiled(nl);

  NetlistSim sim(compiled);
  sim.set_active_lanes(NetlistSim::kLanes);
  Rng rng(options.seed);
  const std::uint64_t in_mask = mask_low_bits(options.input_bits);
  // s_in spans product width plus a few accumulation bits (capped at the
  // accumulator width — with 32-bit inputs and a 64-bit accumulator the
  // product already covers the full bus, so no cap applies).
  const std::uint64_t psum_mask = mask_low_bits(
      options.acc_bits < 2 * options.input_bits + 4 ? options.acc_bits
                                                    : 2 * options.input_bits + 4);

  // Normal (opaque) pipeline mode: the steady-state configuration whose
  // per-op energies the array power model prices.  The carry word between
  // PEs is zero in this mode.
  sim.set_input_u64("cfg_h", 0);
  sim.set_input_u64("cfg_v", 0);
  sim.set_input_lanes("w_in", random_lanes(rng, in_mask));
  sim.set_input_lanes("a_in", random_lanes(rng, in_mask));
  sim.set_input_lanes("s_in", random_lanes(rng, psum_mask));
  sim.set_input_u64("c_in", 0);
  sim.step();  // cfg + weights latch
  sim.step();  // pipeline warm-up: first operands traverse the datapath
  sim.reset_activity();

  for (int cycle = 0; cycle < options.cycles; ++cycle) {
    sim.set_input_lanes("a_in", random_lanes(rng, in_mask));
    sim.set_input_lanes("s_in", random_lanes(rng, psum_mask));
    sim.step();
  }
  sim.eval();  // present the final latch so its register toggles are counted

  CharacterizedEnergy out;
  out.cells = compiled.num_cells();
  out.lane_cycles =
      static_cast<double>(options.cycles) * NetlistSim::kLanes;
  out.total_toggles = sim.total_toggles();

  std::map<std::string, double> group_fj;  // total fJ per group
  double dff_toggle_fj = 0.0;
  std::int64_t data_reg_bits = 0;
  for (int ci = 0; ci < compiled.num_cells(); ++ci) {
    const Cell& cell = nl.cell(ci);
    const double fj =
        static_cast<double>(sim.toggles()[static_cast<std::size_t>(ci)]) *
        cell_info(cell.type).switch_energy_fj;
    const std::string group = pe_group(cell.name);
    group_fj[group] += fj;
    if (cell.type == CellType::kDff && (group == "areg" || group == "wreg" ||
                                        group == "psumreg")) {
      dff_toggle_fj += fj;
      ++data_reg_bits;
    }
  }
  for (const auto& [group, fj] : group_fj) {
    out.group_fj_per_op[group] = fj / out.lane_cycles;
  }

  out.params = base;
  const auto per_op = [&](const char* group) {
    const auto it = out.group_fj_per_op.find(group);
    return it == out.group_fj_per_op.end() ? 0.0 : it->second;
  };
  out.params.e_mult_fj = per_op("mul") + per_op("bmul");
  out.params.e_csa_fj = per_op("csa");
  out.params.e_cpa_fj = per_op("cpa");
  out.params.e_bypass_mux_fj = per_op("hmux") + per_op("vmux");
  // Per-bit data energy of the registers that latch every cycle.  Weight
  // registers are stationary here (as in the array), so they contribute
  // almost nothing — exactly the behaviour the array model assumes when it
  // prices only *active* latched bits.
  AF_CHECK(data_reg_bits > 0, "PE netlist has no data registers");
  out.params.e_reg_bit_fj =
      dff_toggle_fj / (out.lane_cycles *
                       static_cast<double>(options.input_bits +
                                           options.acc_bits));
  // Clock pin energy per enabled FF bit per cycle: the library constant
  // power_from_activity charges (data-independent).
  out.params.e_clk_bit_fj = cell_info(CellType::kDff).switch_energy_fj;
  double leak_nw = 0.0;
  for (const Cell& cell : nl.cells()) {
    leak_nw += cell_info(cell.type).leakage_nw;
  }
  out.params.leak_mw_per_pe = leak_nw * 1e-6;
  return out;
}

}  // namespace af::hw
