#include "hw/netlist.h"

#include <algorithm>
#include <deque>

#include "util/status.h"

namespace af::hw {

NetId Netlist::new_net() {
  invalidate_caches();
  return next_net_++;
}

Bus Netlist::new_bus(int width) {
  AF_CHECK(width >= 0, "bus width must be non-negative");
  Bus bus(static_cast<std::size_t>(width));
  for (auto& net : bus) net = new_net();
  return bus;
}

int Netlist::add_cell(CellType type, std::string name,
                      std::vector<NetId> inputs, std::vector<NetId> outputs) {
  const CellInfo& info = cell_info(type);
  AF_CHECK(static_cast<int>(inputs.size()) == info.num_inputs,
           info.name << " '" << name << "' expects " << info.num_inputs
                     << " inputs, got " << inputs.size());
  AF_CHECK(static_cast<int>(outputs.size()) == info.num_outputs,
           info.name << " '" << name << "' expects " << info.num_outputs
                     << " outputs, got " << outputs.size());
  for (const NetId n : inputs) {
    AF_CHECK(n >= 0 && n < next_net_, "input net " << n << " out of range");
  }
  for (const NetId n : outputs) {
    AF_CHECK(n >= 0 && n < next_net_, "output net " << n << " out of range");
  }
  std::string full_name;
  for (const auto& scope : scope_stack_) {
    full_name += scope;
    full_name += '/';
  }
  full_name += name;
  invalidate_caches();
  cells_.push_back(Cell{type, std::move(full_name), std::move(inputs),
                        std::move(outputs)});
  return static_cast<int>(cells_.size()) - 1;
}

NetId Netlist::const0() {
  if (const0_ == kNoNet) {
    const0_ = new_net();
    add_cell(CellType::kTie0, "tie0", {}, {const0_});
  }
  return const0_;
}

NetId Netlist::const1() {
  if (const1_ == kNoNet) {
    const1_ = new_net();
    add_cell(CellType::kTie1, "tie1", {}, {const1_});
  }
  return const1_;
}

void Netlist::bind_input(const std::string& name, Bus bus) {
  AF_CHECK(!inputs_.count(name), "duplicate input bus '" << name << "'");
  inputs_.emplace(name, std::move(bus));
}

void Netlist::bind_output(const std::string& name, Bus bus) {
  AF_CHECK(!outputs_.count(name), "duplicate output bus '" << name << "'");
  outputs_.emplace(name, std::move(bus));
}

void Netlist::push_scope(const std::string& scope) {
  scope_stack_.push_back(scope);
}

void Netlist::pop_scope() {
  AF_CHECK(!scope_stack_.empty(), "pop_scope on empty scope stack");
  scope_stack_.pop_back();
}

const Cell& Netlist::cell(int index) const {
  AF_CHECK(index >= 0 && index < num_cells(), "cell index out of range");
  return cells_[static_cast<std::size_t>(index)];
}

const Bus& Netlist::input(const std::string& name) const {
  const auto it = inputs_.find(name);
  AF_CHECK(it != inputs_.end(), "unknown input bus '" << name << "'");
  return it->second;
}

const Bus& Netlist::output(const std::string& name) const {
  const auto it = outputs_.find(name);
  AF_CHECK(it != outputs_.end(), "unknown output bus '" << name << "'");
  return it->second;
}

const std::vector<int>& Netlist::driver_of() const {
  if (driver_cache_.size() != static_cast<std::size_t>(next_net_)) {
    driver_cache_.assign(static_cast<std::size_t>(next_net_), kNoCell);
    for (int ci = 0; ci < num_cells(); ++ci) {
      for (const NetId n : cells_[static_cast<std::size_t>(ci)].outputs) {
        AF_CHECK(driver_cache_[static_cast<std::size_t>(n)] == kNoCell,
                 "net " << n << " has multiple drivers");
        driver_cache_[static_cast<std::size_t>(n)] = ci;
      }
    }
  }
  return driver_cache_;
}

const std::vector<int>& Netlist::topo_order() const {
  if (!topo_cache_.empty() || cells_.empty()) return topo_cache_;

  // Kahn's algorithm over combinational dependencies.  DFF outputs are
  // sequential boundaries: a DFF never waits for its input, so it has
  // in-degree 0 and breaks feedback loops exactly as registers do in RTL.
  const auto& driver = driver_of();
  std::vector<int> indegree(cells_.size(), 0);
  std::vector<std::vector<int>> fanout(cells_.size());
  for (int ci = 0; ci < num_cells(); ++ci) {
    const Cell& c = cells_[static_cast<std::size_t>(ci)];
    if (c.type == CellType::kDff) continue;  // sequential boundary
    for (const NetId n : c.inputs) {
      const int src = driver[static_cast<std::size_t>(n)];
      if (src != kNoCell) {
        fanout[static_cast<std::size_t>(src)].push_back(ci);
        ++indegree[static_cast<std::size_t>(ci)];
      }
    }
  }

  std::deque<int> ready;
  for (int ci = 0; ci < num_cells(); ++ci) {
    if (indegree[static_cast<std::size_t>(ci)] == 0) ready.push_back(ci);
  }
  topo_cache_.reserve(cells_.size());
  while (!ready.empty()) {
    const int ci = ready.front();
    ready.pop_front();
    topo_cache_.push_back(ci);
    for (const int succ : fanout[static_cast<std::size_t>(ci)]) {
      if (--indegree[static_cast<std::size_t>(succ)] == 0) {
        ready.push_back(succ);
      }
    }
  }
  if (topo_cache_.size() != cells_.size()) {
    topo_cache_.clear();
    AF_CHECK(false, "combinational cycle detected in netlist");
  }
  return topo_cache_;
}

int Netlist::count_cells(CellType type) const {
  return static_cast<int>(
      std::count_if(cells_.begin(), cells_.end(),
                    [type](const Cell& c) { return c.type == type; }));
}

void Netlist::invalidate_caches() {
  driver_cache_.clear();
  topo_cache_.clear();
}

}  // namespace af::hw
