// Static timing analysis over a gate-level netlist.
//
// Computes worst-case arrival times with a single topological pass, exactly
// like the timing engine inside a synthesis tool (no derating, single
// corner).  Supports:
//   - launch points: primary inputs (configurable arrival) and DFF Q pins
//     (clk-to-q after the clock edge);
//   - capture points: primary outputs and DFF D pins (+ setup);
//   - false-path exclusion by cell-name prefix.  The paper relies on this:
//     "combinational paths that still exist in the design but are not used
//      are considered false paths.  We provide this information explicitly
//      to the static timing analyzer." (Section III-B)

#pragma once

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "hw/cells.h"
#include "hw/compiled_netlist.h"
#include "hw/netlist.h"

namespace af::hw {

struct TimingPathStep {
  std::string cell_name;
  std::string cell_type;
  double arrival_ps = 0.0;
};

struct TimingReport {
  // Minimum clock period implied by the worst path (includes setup when the
  // endpoint is a DFF and clk-to-q when the startpoint is a DFF).
  double min_period_ps = 0.0;
  double max_frequency_ghz() const {
    return min_period_ps > 0 ? 1e3 / min_period_ps : 0.0;
  }
  // Worst path, startpoint first.
  std::vector<TimingPathStep> critical_path;
  // Where the worst path ends: "output:<bus>" or "dff:<cell>".
  std::string endpoint;
};

class Sta {
 public:
  // Compiles the netlist privately.
  Sta(const Netlist& nl, const Technology& tech);
  // Shares an existing compilation (e.g. with NetlistSim); the
  // CompiledNetlist must outlive the analyzer.
  Sta(const CompiledNetlist& cn, const Technology& tech);

  // Exclude every cell whose hierarchical name starts with `prefix` from
  // timing propagation (false path / disabled arc).
  void add_false_path_prefix(const std::string& prefix);

  // Arrival time at primary inputs (default 0 = launched at the edge by an
  // upstream register external to this netlist).
  void set_input_arrival_ps(double ps) { input_arrival_ps_ = ps; }

  // Run the analysis.
  TimingReport run() const;

 private:
  std::unique_ptr<const CompiledNetlist> owned_;
  const CompiledNetlist& cn_;
  const Technology& tech_;
  std::vector<std::string> false_prefixes_;
  double input_arrival_ps_ = 0.0;
};

}  // namespace af::hw
