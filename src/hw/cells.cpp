#include "hw/cells.h"

#include "util/status.h"

namespace af::hw {
namespace {

// Library table.  Delays are representative of a 28 nm standard-Vt library
// under nominal load; areas in um^2 (NAND2-equivalent ~0.98 um^2); energies
// in fJ per output transition; leakage in nW.  Two-output cells (HA/FA) carry
// distinct sum/carry delays: the carry (majority) path is faster than the
// sum (double-XOR) path, which matters for carry-save reduction trees.
constexpr CellInfo kLibrary[kNumCellTypes] = {
    //                name     in out  {d0,   d1}   area   cap   energy leak
    /* kTie0      */ {"TIE0",   0, 1, {0.0,  0.0},  0.33,  0.0,  0.0,  0.2},
    /* kTie1      */ {"TIE1",   0, 1, {0.0,  0.0},  0.33,  0.0,  0.0,  0.2},
    /* kInv       */ {"INV",    1, 1, {8.0,  0.0},  0.65,  0.9,  0.40, 1.0},
    /* kBuf       */ {"BUF",    1, 1, {14.0, 0.0},  0.98,  1.0,  0.60, 1.2},
    /* kNand2     */ {"NAND2",  2, 1, {10.0, 0.0},  0.98,  1.1,  0.55, 1.3},
    /* kNor2      */ {"NOR2",   2, 1, {12.0, 0.0},  0.98,  1.1,  0.55, 1.3},
    /* kAnd2      */ {"AND2",   2, 1, {14.0, 0.0},  1.30,  1.0,  0.70, 1.5},
    /* kOr2       */ {"OR2",    2, 1, {15.0, 0.0},  1.30,  1.0,  0.70, 1.5},
    /* kXor2      */ {"XOR2",   2, 1, {22.0, 0.0},  1.95,  1.6,  1.40, 2.1},
    /* kXnor2     */ {"XNOR2",  2, 1, {22.0, 0.0},  1.95,  1.6,  1.40, 2.1},
    /* kAoi21     */ {"AOI21",  3, 1, {13.0, 0.0},  1.30,  1.2,  0.80, 1.6},
    /* kOai21     */ {"OAI21",  3, 1, {13.0, 0.0},  1.30,  1.2,  0.80, 1.6},
    /* kMux2      */ {"MUX2",   3, 1, {16.0, 0.0},  1.95,  1.2,  1.00, 1.9},
    /* kHalfAdder */ {"HA",     2, 2, {22.0, 14.0}, 3.25,  1.8,  1.80, 2.8},
    /* kFullAdder */ {"FA",     3, 2, {40.0, 30.0}, 4.55,  2.4,  2.90, 4.2},
    /* kDff       */ {"DFF",    1, 1, {0.0,  0.0},  4.88,  1.3,  1.90, 3.0},
    /* kClockGate */ {"ICG",    1, 1, {20.0, 0.0},  3.25,  1.4,  1.10, 2.5},
};

}  // namespace

const CellInfo& cell_info(CellType type) {
  const auto index = static_cast<int>(type);
  AF_ASSERT(index >= 0 && index < kNumCellTypes, "bad cell type " << index);
  return kLibrary[index];
}

const char* cell_type_name(CellType type) { return cell_info(type).name; }

double Technology::scaled_delay_ps(CellType type, int output_index) const {
  const CellInfo& info = cell_info(type);
  AF_ASSERT(output_index >= 0 && output_index < info.num_outputs,
            "output index " << output_index << " out of range for "
                            << info.name);
  return info.delay_ps[output_index] * delay_scale;
}

void eval_cell(CellType type, const bool* in, bool* out) {
  switch (type) {
    case CellType::kTie0:
      out[0] = false;
      return;
    case CellType::kTie1:
      out[0] = true;
      return;
    case CellType::kInv:
      out[0] = !in[0];
      return;
    case CellType::kBuf:
      out[0] = in[0];
      return;
    case CellType::kNand2:
      out[0] = !(in[0] && in[1]);
      return;
    case CellType::kNor2:
      out[0] = !(in[0] || in[1]);
      return;
    case CellType::kAnd2:
      out[0] = in[0] && in[1];
      return;
    case CellType::kOr2:
      out[0] = in[0] || in[1];
      return;
    case CellType::kXor2:
      out[0] = in[0] != in[1];
      return;
    case CellType::kXnor2:
      out[0] = in[0] == in[1];
      return;
    case CellType::kAoi21:
      out[0] = !((in[0] && in[1]) || in[2]);
      return;
    case CellType::kOai21:
      out[0] = !((in[0] || in[1]) && in[2]);
      return;
    case CellType::kMux2:
      out[0] = in[2] ? in[1] : in[0];
      return;
    case CellType::kHalfAdder:
      out[0] = in[0] != in[1];
      out[1] = in[0] && in[1];
      return;
    case CellType::kFullAdder: {
      const bool a = in[0], b = in[1], c = in[2];
      out[0] = (a != b) != c;
      out[1] = (a && b) || (a && c) || (b && c);
      return;
    }
    case CellType::kDff:
      // Sequential: functional value handled by the simulator's state, not
      // by combinational evaluation.
      out[0] = in[0];
      return;
    case CellType::kClockGate:
      out[0] = in[0];
      return;
  }
  AF_ASSERT(false, "unhandled cell type");
}

}  // namespace af::hw
