// Wallace-tree multiplier generator (unsigned).
//
// Partial products from AND gates, column compression with 3:2 / 2:2
// counters until every column holds at most two bits, then a Kogge–Stone
// CPA resolves the final two rows.  This mirrors a synthesized DesignWare-
// style multiplier closely enough for the timing/area/power studies; the
// architecture simulator performs the actual (signed, modular) arithmetic.

#pragma once

#include "hw/netlist.h"

namespace af::hw {

// product = a * b, width a.size() + b.size().
Bus build_wallace_multiplier(Netlist& nl, const Bus& a, const Bus& b);

// Radix-4 (modified) Booth multiplier: ⌈(Wb+1)/2⌉ partial products instead
// of Wb, recoded from overlapping bit triplets of b into digits in
// {-2,-1,0,+1,+2}, reduced by the same Wallace column compressor and a
// final Kogge–Stone CPA.  Operands are unsigned (zero-extended for the
// recoding); negative digits are handled with conditional inversion plus a
// +1 correction bit, and sign extension reuses the digit's `neg` net across
// the high columns (no extra cells).  This is the multiplier structure
// synthesis tools actually emit for a 32x32 MAC, so the Fig. 6 area
// comparison offers it as the higher-fidelity option.
Bus build_booth_multiplier(Netlist& nl, const Bus& a, const Bus& b);

enum class MultiplierStyle { kWallace, kBooth };

Bus build_multiplier(Netlist& nl, const Bus& a, const Bus& b,
                     MultiplierStyle style);

}  // namespace af::hw
