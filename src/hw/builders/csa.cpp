#include "hw/builders/csa.h"

#include "util/status.h"
#include "util/strings.h"

namespace af::hw {

CsaResult build_csa_row(Netlist& nl, const Bus& a, const Bus& b, const Bus& c) {
  AF_CHECK(a.size() == b.size() && b.size() == c.size(),
           "CSA operand width mismatch: " << a.size() << ", " << b.size()
                                          << ", " << c.size());
  const int width = static_cast<int>(a.size());
  ScopedName scope(nl, "csa");
  CsaResult out{nl.new_bus(width), nl.new_bus(width)};
  for (int i = 0; i < width; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    nl.add_cell(CellType::kFullAdder, format("fa%d", i),
                {a[idx], b[idx], c[idx]}, {out.sum[idx], out.carry[idx]});
  }
  return out;
}

Bus shift_left_one(Netlist& nl, const Bus& bus) {
  Bus out(bus.size());
  AF_CHECK(!bus.empty(), "cannot shift an empty bus");
  out[0] = nl.const0();
  for (std::size_t i = 1; i < bus.size(); ++i) out[i] = bus[i - 1];
  return out;
}

}  // namespace af::hw
