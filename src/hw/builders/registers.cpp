#include "hw/builders/registers.h"

#include "util/strings.h"

namespace af::hw {

Bus build_register_bank(Netlist& nl, const Bus& d) {
  ScopedName scope(nl, "reg");
  Bus q = nl.new_bus(static_cast<int>(d.size()));
  for (std::size_t i = 0; i < d.size(); ++i) {
    nl.add_cell(CellType::kDff, format("ff%zu", i), {d[i]}, {q[i]});
  }
  return q;
}

Bus build_gated_register_bank(Netlist& nl, const Bus& d, NetId enable) {
  ScopedName scope(nl, "reg");
  const NetId gclk = nl.new_net();
  nl.add_cell(CellType::kClockGate, "icg", {enable}, {gclk});
  Bus q = nl.new_bus(static_cast<int>(d.size()));
  for (std::size_t i = 0; i < d.size(); ++i) {
    nl.add_cell(CellType::kDff, format("ff%zu", i), {d[i]}, {q[i]});
  }
  return q;
}

}  // namespace af::hw
