#include "hw/builders/adders.h"

#include "util/status.h"
#include "util/strings.h"

namespace af::hw {

Bus build_ripple_adder(Netlist& nl, const Bus& a, const Bus& b, NetId cin,
                       NetId* cout) {
  AF_CHECK(a.size() == b.size(), "ripple adder operand width mismatch: "
                                     << a.size() << " vs " << b.size());
  const int width = static_cast<int>(a.size());
  ScopedName scope(nl, "rca");
  Bus sum = nl.new_bus(width);
  NetId carry = (cin == kNoNet) ? nl.const0() : cin;
  for (int i = 0; i < width; ++i) {
    const NetId next_carry = nl.new_net();
    nl.add_cell(CellType::kFullAdder, format("fa%d", i),
                {a[static_cast<std::size_t>(i)], b[static_cast<std::size_t>(i)], carry},
                {sum[static_cast<std::size_t>(i)], next_carry});
    carry = next_carry;
  }
  if (cout != nullptr) *cout = carry;
  return sum;
}

Bus build_kogge_stone_adder(Netlist& nl, const Bus& a, const Bus& b, NetId cin,
                            NetId* cout) {
  AF_CHECK(a.size() == b.size(), "kogge-stone operand width mismatch: "
                                     << a.size() << " vs " << b.size());
  const int width = static_cast<int>(a.size());
  AF_CHECK(width >= 1, "kogge-stone requires width >= 1");
  ScopedName scope(nl, "ksa");

  // Bitwise propagate / generate.
  std::vector<NetId> p(static_cast<std::size_t>(width));
  std::vector<NetId> g(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    p[static_cast<std::size_t>(i)] = nl.new_net();
    g[static_cast<std::size_t>(i)] = nl.new_net();
    nl.add_cell(CellType::kXor2, format("p%d", i),
                {a[static_cast<std::size_t>(i)], b[static_cast<std::size_t>(i)]},
                {p[static_cast<std::size_t>(i)]});
    nl.add_cell(CellType::kAnd2, format("g%d", i),
                {a[static_cast<std::size_t>(i)], b[static_cast<std::size_t>(i)]},
                {g[static_cast<std::size_t>(i)]});
  }

  // Kogge–Stone prefix: after the last level, G[i] is the carry out of bit i
  // assuming cin = 0, and P[i] is the AND of p[0..i].
  std::vector<NetId> gg = g;
  std::vector<NetId> pp = p;
  int level = 0;
  for (int d = 1; d < width; d <<= 1, ++level) {
    std::vector<NetId> ng = gg;
    std::vector<NetId> np = pp;
    for (int i = d; i < width; ++i) {
      const NetId and_g = nl.new_net();
      const NetId new_g = nl.new_net();
      nl.add_cell(CellType::kAnd2, format("l%d_ag%d", level, i),
                  {pp[static_cast<std::size_t>(i)], gg[static_cast<std::size_t>(i - d)]},
                  {and_g});
      nl.add_cell(CellType::kOr2, format("l%d_og%d", level, i),
                  {gg[static_cast<std::size_t>(i)], and_g}, {new_g});
      ng[static_cast<std::size_t>(i)] = new_g;
      const NetId new_p = nl.new_net();
      nl.add_cell(CellType::kAnd2, format("l%d_p%d", level, i),
                  {pp[static_cast<std::size_t>(i)], pp[static_cast<std::size_t>(i - d)]},
                  {new_p});
      np[static_cast<std::size_t>(i)] = new_p;
    }
    gg = std::move(ng);
    pp = std::move(np);
  }

  // Carries including cin: c[i] = G[i-1] | (P[i-1] & cin); c[0] = cin.
  const bool has_cin = cin != kNoNet;
  std::vector<NetId> carry(static_cast<std::size_t>(width + 1));
  carry[0] = has_cin ? cin : nl.const0();
  for (int i = 1; i <= width; ++i) {
    const NetId gi = gg[static_cast<std::size_t>(i - 1)];
    if (!has_cin) {
      carry[static_cast<std::size_t>(i)] = gi;
      continue;
    }
    const NetId path = nl.new_net();
    const NetId ci = nl.new_net();
    nl.add_cell(CellType::kAnd2, format("cin_a%d", i),
                {pp[static_cast<std::size_t>(i - 1)], cin}, {path});
    nl.add_cell(CellType::kOr2, format("cin_o%d", i), {gi, path}, {ci});
    carry[static_cast<std::size_t>(i)] = ci;
  }

  Bus sum = nl.new_bus(width);
  for (int i = 0; i < width; ++i) {
    nl.add_cell(CellType::kXor2, format("s%d", i),
                {p[static_cast<std::size_t>(i)], carry[static_cast<std::size_t>(i)]},
                {sum[static_cast<std::size_t>(i)]});
  }
  if (cout != nullptr) *cout = carry[static_cast<std::size_t>(width)];
  return sum;
}

}  // namespace af::hw
