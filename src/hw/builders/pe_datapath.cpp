#include "hw/builders/pe_datapath.h"

#include "hw/builders/adders.h"
#include "hw/builders/csa.h"
#include "hw/builders/multiplier.h"
#include "hw/builders/mux.h"
#include "hw/builders/registers.h"
#include "util/status.h"
#include "util/strings.h"

namespace af::hw {
namespace {

// Zero-extend `bus` to `width` nets.
Bus zero_extend(Netlist& nl, const Bus& bus, int width) {
  AF_CHECK(static_cast<int>(bus.size()) <= width,
           "cannot zero-extend " << bus.size() << " bits to " << width);
  Bus out = bus;
  while (static_cast<int>(out.size()) < width) out.push_back(nl.const0());
  return out;
}

Bus build_cpa(Netlist& nl, const Bus& x, const Bus& y, CpaStyle style) {
  return style == CpaStyle::kKoggeStone ? build_kogge_stone_adder(nl, x, y)
                                        : build_ripple_adder(nl, x, y);
}

Bus const_bus(Netlist& nl, int width) {
  Bus out(static_cast<std::size_t>(width));
  for (auto& n : out) n = nl.const0();
  return out;
}

}  // namespace

void build_conventional_pe(Netlist& nl, const PeDatapathOptions& opt) {
  const Bus a_in = nl.new_bus(opt.input_bits);
  const Bus w_in = nl.new_bus(opt.input_bits);
  const Bus psum_in = nl.new_bus(opt.acc_bits);
  nl.bind_input("a_in", a_in);
  nl.bind_input("w_in", w_in);
  nl.bind_input("psum_in", psum_in);

  ScopedName pe(nl, "pe0");
  Bus a_q, w_q;
  {
    ScopedName s(nl, "areg");
    a_q = build_register_bank(nl, a_in);
  }
  {
    ScopedName s(nl, "wreg");
    w_q = build_register_bank(nl, w_in);
  }
  const Bus product = build_multiplier(nl, a_q, w_q, opt.multiplier);
  const Bus product_ext = zero_extend(nl, product, opt.acc_bits);
  Bus sum;
  {
    ScopedName s(nl, "cpa");
    sum = build_cpa(nl, product_ext, psum_in, opt.cpa);
  }
  Bus psum_q;
  {
    ScopedName s(nl, "psumreg");
    psum_q = build_register_bank(nl, sum);
  }
  nl.bind_output("a_out", a_q);
  nl.bind_output("psum_out", psum_q);
}

void build_arrayflex_pe(Netlist& nl, const PeDatapathOptions& opt) {
  const Bus a_in = nl.new_bus(opt.input_bits);
  const Bus w_in = nl.new_bus(opt.input_bits);
  const Bus s_in = nl.new_bus(opt.acc_bits);
  const Bus c_in = nl.new_bus(opt.acc_bits);
  const Bus cfg_h_in = nl.new_bus(1);
  const Bus cfg_v_in = nl.new_bus(1);
  nl.bind_input("a_in", a_in);
  nl.bind_input("w_in", w_in);
  nl.bind_input("s_in", s_in);
  nl.bind_input("c_in", c_in);
  nl.bind_input("cfg_h", cfg_h_in);
  nl.bind_input("cfg_v", cfg_v_in);

  ScopedName pe(nl, "pe0");

  // Configuration bits are loaded like weights and held in registers.
  Bus cfg_h_q, cfg_v_q;
  {
    ScopedName s(nl, "cfg");
    cfg_h_q = build_register_bank(nl, cfg_h_in);
    cfg_v_q = build_register_bank(nl, cfg_v_in);
  }

  // Horizontal pipeline register + transparency mux: in shallow mode the
  // activation bypasses the (clock-gated) register and broadcasts onward.
  Bus a_q;
  {
    ScopedName s(nl, "areg");
    a_q = build_gated_register_bank(nl, a_in, cfg_h_q[0]);
  }
  Bus a_used;
  {
    ScopedName s(nl, "hmux");
    a_used = build_mux2_bus(nl, a_q, a_in, cfg_h_q[0]);
  }

  Bus w_q;
  {
    ScopedName s(nl, "wreg");
    w_q = build_register_bank(nl, w_in);
  }

  const Bus product = build_multiplier(nl, a_used, w_q, opt.multiplier);
  const Bus product_ext = zero_extend(nl, product, opt.acc_bits);

  // 3:2 carry-save stage: product + (s_in, c_in).  Participates even in
  // normal mode (paper III-B: the CSA and bypass muxes sit in series with
  // the multiplier and adder in every configuration).  Wire convention: the
  // carry word travelling between PEs is pre-shifted so that the redundant
  // pair always satisfies value = s + c.
  const CsaResult csa = build_csa_row(nl, product_ext, s_in, c_in);
  const Bus carry_shifted = shift_left_one(nl, csa.carry);

  // Carry-propagate adder resolving the redundant pair.
  Bus cpa_out;
  {
    ScopedName s(nl, "cpa");
    cpa_out = build_cpa(nl, csa.sum, carry_shifted, opt.cpa);
  }
  Bus psum_q;
  {
    ScopedName s(nl, "psumreg");
    psum_q = build_gated_register_bank(nl, cpa_out, cfg_v_q[0]);
  }

  // Vertical transparency muxes: downstream sees either the redundant pair
  // (shallow mode, registers bypassed) or the registered CPA result with a
  // zero carry word (normal mode / group boundary).
  Bus s_out, c_out;
  {
    ScopedName s(nl, "vmux");
    s_out = build_mux2_bus(nl, psum_q, csa.sum, cfg_v_q[0]);
    c_out = build_mux2_bus(nl, const_bus(nl, opt.acc_bits), carry_shifted,
                           cfg_v_q[0]);
  }

  nl.bind_output("a_out", a_used);
  nl.bind_output("s_out", s_out);
  nl.bind_output("c_out", c_out);
  nl.bind_output("psum_out", psum_q);
}

void build_collapsed_column(Netlist& nl, int k, bool use_csa,
                            const PeDatapathOptions& opt) {
  AF_CHECK(k >= 1, "collapse depth must be >= 1, got " << k);

  const Bus s_in = nl.new_bus(opt.acc_bits);
  const Bus c_in = nl.new_bus(opt.acc_bits);
  nl.bind_input("s_in", s_in);
  nl.bind_input("c_in", c_in);

  Bus s_prev = s_in;
  Bus c_prev = c_in;
  Bus psum_q_last;

  for (int i = 0; i < k; ++i) {
    const bool boundary = (i == k - 1);
    const Bus a_in = nl.new_bus(opt.input_bits);
    const Bus w_in = nl.new_bus(opt.input_bits);
    nl.bind_input(format("a_in%d", i), a_in);
    nl.bind_input(format("w_in%d", i), w_in);

    ScopedName pe(nl, format("pe%d", i));

    Bus cfg_h_q, cfg_v_q;
    {
      ScopedName s(nl, "cfg");
      const Bus h = {nl.const1()};
      const Bus v = {boundary ? nl.const0() : nl.const1()};
      cfg_h_q = build_register_bank(nl, h);
      cfg_v_q = build_register_bank(nl, v);
    }

    // Horizontal broadcast: the activation reaching this column group's
    // right edge crosses k bypass muxes (Eq. 5 charges k * dmux for the
    // horizontal direction).
    Bus a_used = a_in;
    {
      ScopedName s(nl, "hpath");
      Bus a_reg_q;
      {
        ScopedName r(nl, "areg");
        a_reg_q = build_gated_register_bank(nl, a_in, cfg_h_q[0]);
      }
      Bus chain = a_used;
      for (int m = 0; m < k; ++m) {
        ScopedName mscope(nl, format("h%d", m));
        chain = build_mux2_bus(nl, a_reg_q, chain, cfg_h_q[0]);
      }
      a_used = chain;
    }

    Bus w_q;
    {
      ScopedName s(nl, "wreg");
      w_q = build_register_bank(nl, w_in);
    }

    const Bus product = build_multiplier(nl, a_used, w_q, opt.multiplier);
    const Bus product_ext = zero_extend(nl, product, opt.acc_bits);

    if (use_csa) {
      // ArrayFlex: redundant accumulation through the collapsed group.  The
      // carry word is pre-shifted on the wires (value = s + c invariant).
      const CsaResult csa = build_csa_row(nl, product_ext, s_prev, c_prev);
      const Bus carry_shifted = shift_left_one(nl, csa.carry);
      Bus cpa_out;
      {
        ScopedName s(nl, "cpa");
        cpa_out = build_cpa(nl, csa.sum, carry_shifted, opt.cpa);
      }
      Bus psum_q;
      {
        ScopedName s(nl, "psumreg");
        psum_q = build_gated_register_bank(nl, cpa_out, cfg_v_q[0]);
      }
      Bus s_out, c_out;
      {
        ScopedName s(nl, "vmux");
        s_out = build_mux2_bus(nl, psum_q, csa.sum, cfg_v_q[0]);
        c_out = build_mux2_bus(nl, const_bus(nl, opt.acc_bits), carry_shifted,
                               cfg_v_q[0]);
      }
      s_prev = s_out;
      c_prev = c_out;
      psum_q_last = psum_q;
    } else {
      // Naive collapse (ablation): every PE resolves its partial sum with a
      // full carry-propagate adder before handing it down, so k CPAs chain
      // combinationally within one clock cycle.
      Bus cpa_out;
      {
        ScopedName s(nl, "cpa");
        cpa_out = build_cpa(nl, product_ext, s_prev, opt.cpa);
      }
      Bus psum_q;
      {
        ScopedName s(nl, "psumreg");
        psum_q = build_gated_register_bank(nl, cpa_out, cfg_v_q[0]);
      }
      Bus s_out;
      {
        ScopedName s(nl, "vmux");
        s_out = build_mux2_bus(nl, psum_q, cpa_out, cfg_v_q[0]);
      }
      s_prev = s_out;
      c_prev = const_bus(nl, opt.acc_bits);
      psum_q_last = psum_q;
    }
  }

  nl.bind_output("psum_out", psum_q_last);
}

std::vector<std::string> collapsed_column_false_paths(int k, bool use_csa) {
  std::vector<std::string> prefixes;
  for (int i = 0; i + 1 < k; ++i) {
    if (use_csa) prefixes.push_back(format("pe%d/cpa", i));
    prefixes.push_back(format("pe%d/psumreg", i));
  }
  return prefixes;
}

}  // namespace af::hw
