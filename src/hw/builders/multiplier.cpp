#include "hw/builders/multiplier.h"

#include <vector>

#include "hw/builders/adders.h"
#include "util/status.h"
#include "util/strings.h"

namespace af::hw {
namespace {

// Compress a column multiset down to <= 2 bits per column with FA/HA
// counters, then resolve the final two rows with a Kogge-Stone CPA.  Shared
// by both multiplier styles.
Bus reduce_columns(Netlist& nl, std::vector<std::vector<NetId>> columns) {
  int stage = 0;
  const auto needs_reduction = [&columns]() {
    for (const auto& col : columns) {
      if (col.size() > 2) return true;
    }
    return false;
  };
  while (needs_reduction()) {
    std::vector<std::vector<NetId>> next(columns.size());
    for (std::size_t c = 0; c < columns.size(); ++c) {
      const auto& col = columns[c];
      std::size_t i = 0;
      while (col.size() - i >= 3) {
        const NetId s = nl.new_net();
        const NetId co = nl.new_net();
        nl.add_cell(CellType::kFullAdder, format("r%d_fa_c%zu_%zu", stage, c, i),
                    {col[i], col[i + 1], col[i + 2]}, {s, co});
        next[c].push_back(s);
        if (c + 1 < next.size()) next[c + 1].push_back(co);
        i += 3;
      }
      if (col.size() - i == 2 && col.size() > 2) {
        const NetId s = nl.new_net();
        const NetId co = nl.new_net();
        nl.add_cell(CellType::kHalfAdder, format("r%d_ha_c%zu_%zu", stage, c, i),
                    {col[i], col[i + 1]}, {s, co});
        next[c].push_back(s);
        if (c + 1 < next.size()) next[c + 1].push_back(co);
        i += 2;
      }
      for (; i < col.size(); ++i) next[c].push_back(col[i]);
    }
    columns = std::move(next);
    ++stage;
    AF_ASSERT(stage < 64, "column reduction failed to converge");
  }
  const std::size_t width = columns.size();
  Bus row0(width);
  Bus row1(width);
  for (std::size_t c = 0; c < width; ++c) {
    row0[c] = columns[c].empty() ? nl.const0() : columns[c][0];
    row1[c] = columns[c].size() < 2 ? nl.const0() : columns[c][1];
  }
  return build_kogge_stone_adder(nl, row0, row1);
}

}  // namespace

Bus build_wallace_multiplier(Netlist& nl, const Bus& a, const Bus& b) {
  AF_CHECK(!a.empty() && !b.empty(), "multiplier operands must be non-empty");
  const int wa = static_cast<int>(a.size());
  const int wb = static_cast<int>(b.size());
  const int wp = wa + wb;
  ScopedName scope(nl, "mul");

  // columns[c] holds the nets of weight 2^c awaiting compression.
  std::vector<std::vector<NetId>> columns(static_cast<std::size_t>(wp));
  for (int i = 0; i < wb; ++i) {
    for (int j = 0; j < wa; ++j) {
      const NetId pp = nl.new_net();
      nl.add_cell(CellType::kAnd2, format("pp_%d_%d", i, j),
                  {a[static_cast<std::size_t>(j)], b[static_cast<std::size_t>(i)]},
                  {pp});
      columns[static_cast<std::size_t>(i + j)].push_back(pp);
    }
  }

  return reduce_columns(nl, std::move(columns));
}

Bus build_booth_multiplier(Netlist& nl, const Bus& a, const Bus& b) {
  AF_CHECK(!a.empty() && !b.empty(), "multiplier operands must be non-empty");
  const int wa = static_cast<int>(a.size());
  const int wb = static_cast<int>(b.size());
  const int wp = wa + wb;
  ScopedName scope(nl, "bmul");

  // b bit with zero extension (unsigned operand) and b[-1] = 0.
  const auto b_bit = [&](int j) -> NetId {
    if (j < 0 || j >= wb) return nl.const0();
    return b[static_cast<std::size_t>(j)];
  };
  // a bit with zero extension inside the partial-product field.
  const auto a_bit = [&](int j) -> NetId {
    if (j < 0 || j >= wa) return nl.const0();
    return a[static_cast<std::size_t>(j)];
  };

  const int digits = (wb + 2) / 2;  // ceil((wb+1)/2): top digit non-negative
  const int field = wa + 2;         // holds +/-2A including the sign bit
  std::vector<std::vector<NetId>> columns(static_cast<std::size_t>(wp));

  // Sign-extension prevention: extending sign bit s from position p to the
  // product MSB is worth -s * 2^p (mod 2^wp), which equals !s * 2^p plus the
  // constant -2^p.  We place one inverted sign net per digit and fold all
  // the -2^p constants into a single bit pattern added at the end.
  BitVec ext_const(wp);

  for (int i = 0; i < digits; ++i) {
    ScopedName digit_scope(nl, format("d%d", i));
    const NetId x2 = b_bit(2 * i + 1);
    const NetId x1 = b_bit(2 * i);
    const NetId x0 = b_bit(2 * i - 1);

    // Digit recoding: d = -2*x2 + x1 + x0.
    //   neg = x2, one = x1 XOR x0,
    //   two = (x2 & !x1 & !x0) | (!x2 & x1 & x0).
    const NetId neg = x2;
    const NetId one = nl.new_net();
    nl.add_cell(CellType::kXor2, "one", {x1, x0}, {one});
    const NetId x1_nor_x0 = nl.new_net();
    nl.add_cell(CellType::kNor2, "nor10", {x1, x0}, {x1_nor_x0});
    const NetId two_pos = nl.new_net();
    nl.add_cell(CellType::kAnd2, "two_p", {x2, x1_nor_x0}, {two_pos});
    const NetId x1_and_x0 = nl.new_net();
    nl.add_cell(CellType::kAnd2, "and10", {x1, x0}, {x1_and_x0});
    const NetId not_x2 = nl.new_net();
    nl.add_cell(CellType::kInv, "invx2", {x2}, {not_x2});
    const NetId two_neg = nl.new_net();
    nl.add_cell(CellType::kAnd2, "two_n", {not_x2, x1_and_x0}, {two_neg});
    const NetId two = nl.new_net();
    nl.add_cell(CellType::kOr2, "two", {two_pos, two_neg}, {two});

    // Partial-product field: ppb_j = ((one & a_j) | (two & a_{j-1})) ^ neg.
    NetId sign_net = kNoNet;
    for (int j = 0; j < field; ++j) {
      const int column = 2 * i + j;
      if (column >= wp) break;
      const NetId sel1 = nl.new_net();
      nl.add_cell(CellType::kAnd2, format("s1_%d", j), {one, a_bit(j)}, {sel1});
      const NetId sel2 = nl.new_net();
      nl.add_cell(CellType::kAnd2, format("s2_%d", j), {two, a_bit(j - 1)},
                  {sel2});
      const NetId mag = nl.new_net();
      nl.add_cell(CellType::kOr2, format("or_%d", j), {sel1, sel2}, {mag});
      const NetId ppb = nl.new_net();
      nl.add_cell(CellType::kXor2, format("pp_%d", j), {mag, neg}, {ppb});
      columns[static_cast<std::size_t>(column)].push_back(ppb);
      if (j == field - 1) sign_net = ppb;
    }
    // Replace the field's sign extension by !s at the top column plus a
    // -2^top constant (accumulated in ext_const), provided the extension
    // actually reaches into the product width.
    const int top = 2 * i + field - 1;
    if (sign_net != kNoNet && top + 1 < wp) {
      const NetId sign_inv = nl.new_net();
      nl.add_cell(CellType::kInv, "sext", {sign_net}, {sign_inv});
      // Swap the raw sign bit for its inversion in the top column.
      auto& top_col = columns[static_cast<std::size_t>(top)];
      AF_ASSERT(!top_col.empty() && top_col.back() == sign_net,
                "sign bit bookkeeping out of sync");
      top_col.back() = sign_inv;
      // -2^top == ~(2^top) + 1 (mod 2^wp).
      BitVec minus_pow(wp, 0);
      minus_pow.set_bit(top, true);
      ext_const = ext_const.add_mod((~minus_pow).add_mod(BitVec(wp, 1)));
    }
    // Two's-complement correction: +1 at the digit's weight when negative.
    if (2 * i < wp) {
      columns[static_cast<std::size_t>(2 * i)].push_back(neg);
    }
  }

  // Drop the accumulated extension constant into the columns.
  for (int j = 0; j < wp; ++j) {
    if (ext_const.bit(j)) {
      columns[static_cast<std::size_t>(j)].push_back(nl.const1());
    }
  }

  return reduce_columns(nl, std::move(columns));
}

Bus build_multiplier(Netlist& nl, const Bus& a, const Bus& b,
                     MultiplierStyle style) {
  return style == MultiplierStyle::kWallace ? build_wallace_multiplier(nl, a, b)
                                            : build_booth_multiplier(nl, a, b);
}

}  // namespace af::hw
