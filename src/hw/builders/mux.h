// Bus-wide 2:1 multiplexer — the bypass element that makes pipeline
// registers "transparent" in shallow mode.

#pragma once

#include "hw/netlist.h"

namespace af::hw {

// out[i] = sel ? when_one[i] : when_zero[i]; widths must match.
Bus build_mux2_bus(Netlist& nl, const Bus& when_zero, const Bus& when_one,
                   NetId sel);

}  // namespace af::hw
