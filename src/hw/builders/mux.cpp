#include "hw/builders/mux.h"

#include "util/status.h"
#include "util/strings.h"

namespace af::hw {

Bus build_mux2_bus(Netlist& nl, const Bus& when_zero, const Bus& when_one,
                   NetId sel) {
  AF_CHECK(when_zero.size() == when_one.size(),
           "mux operand width mismatch: " << when_zero.size() << " vs "
                                          << when_one.size());
  ScopedName scope(nl, "mux");
  Bus out = nl.new_bus(static_cast<int>(when_zero.size()));
  for (std::size_t i = 0; i < when_zero.size(); ++i) {
    nl.add_cell(CellType::kMux2, format("m%zu", i),
                {when_zero[i], when_one[i], sel}, {out[i]});
  }
  return out;
}

}  // namespace af::hw
