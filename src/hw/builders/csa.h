// 3:2 carry-save adder row — the key enabler of ArrayFlex's shallow mode.
//
// A row of independent full adders compresses three operands into a
// (sum, carry) pair in one FA delay, independent of width.  The carry vector
// has weight 2, so consumers must shift it left before a final CPA resolves
// the redundant representation.

#pragma once

#include "hw/netlist.h"

namespace af::hw {

struct CsaResult {
  Bus sum;    // weight 1
  Bus carry;  // weight 2 (left-shift before resolving)
};

// Compress a + b + c into (sum, carry); all three widths must match.
CsaResult build_csa_row(Netlist& nl, const Bus& a, const Bus& b, const Bus& c);

// Left-shift a carry bus by one (constant-0 LSB, MSB dropped — modular
// arithmetic at bus width, matching RTL truncation).
Bus shift_left_one(Netlist& nl, const Bus& bus);

}  // namespace af::hw
