// Gate-level PE datapaths for the conventional SA and ArrayFlex (paper
// Sections II and III-B, Figs. 3 and 4).
//
// Three constructs:
//   * conventional PE  — a_reg -> multiplier -> CPA (adds psum_in) -> psum_reg;
//   * ArrayFlex PE     — adds the 3:2 CSA, horizontal/vertical bypass muxes
//                        and two configuration bits;
//   * collapsed column — k vertically merged ArrayFlex PEs plus the
//                        horizontal broadcast mux chain; its STA yields
//                        Tclock(k) (Eq. 5).  A `use_csa = false` variant
//                        chains full CPAs instead (the design the paper
//                        rejects in III-B), used by the ablation bench.
//
// Cell names are scoped "pe<i>/<component>/..." so area and power can be
// attributed per component and false paths can be declared per prefix.

#pragma once

#include <string>
#include <vector>

#include "hw/builders/multiplier.h"
#include "hw/netlist.h"

namespace af::hw {

enum class CpaStyle { kKoggeStone, kRipple };

struct PeDatapathOptions {
  int input_bits = 32;  // activation / weight width (paper: 32-bit quantized)
  int acc_bits = 64;    // column accumulation width (paper: 64)
  // kWallace matches the plain array structure; kBooth halves the
  // partial-product count and is what synthesis emits for 32-bit MACs
  // (used by the Fig. 6 fidelity comparison).
  MultiplierStyle multiplier = MultiplierStyle::kWallace;
  // CPA implementation; kRipple exists for the ablation study (collapsing
  // with serial ripple CPAs is the design the paper's III-B wording evokes).
  CpaStyle cpa = CpaStyle::kKoggeStone;
};

// Single conventional PE.  Input buses: "a_in", "psum_in", "w_in".
// Output buses: "a_out", "psum_out".
void build_conventional_pe(Netlist& nl, const PeDatapathOptions& opt = {});

// Single ArrayFlex PE.  Input buses: "a_in", "s_in", "c_in", "w_in",
// "cfg_h", "cfg_v".  Output buses: "a_out", "s_out", "c_out", "psum_out".
void build_arrayflex_pe(Netlist& nl, const PeDatapathOptions& opt = {});

// k vertically collapsed PEs ("pe0" ... "pe<k-1>"), boundary register at
// pe<k-1>.  Inputs "s_in"/"c_in" model the previous group's boundary; each
// PE's activation passes a chain of k horizontal bypass muxes, modelling the
// broadcast across a k-wide column group.  Output bus: "psum_out".
void build_collapsed_column(Netlist& nl, int k, bool use_csa,
                            const PeDatapathOptions& opt = {});

// Cell-name prefixes that are false paths when the column built by
// build_collapsed_column runs fully collapsed (paper: "we provide this
// information explicitly to the static timing analyzer").  The clock-gated
// output registers of the k-1 transparent PEs are never real endpoints; in
// the CSA design the transparent PEs' CPAs are also dead logic, whereas in
// the naive (`use_csa = false`) design those CPAs ARE the transparent
// datapath and must stay timed.
std::vector<std::string> collapsed_column_false_paths(int k,
                                                      bool use_csa = true);

}  // namespace af::hw
