// Gate-level adder generators.
//
// Two carry-propagate adder (CPA) styles:
//   * ripple-carry: minimal area, O(W) delay — used in the ablation study of
//     what pipeline collapsing costs without carry-save accumulation;
//   * Kogge–Stone parallel prefix: O(log W) delay — the CPA used inside the
//     PE (multiplier final add and the column accumulation add).

#pragma once

#include "hw/netlist.h"

namespace af::hw {

// sum = a + b (+ cin); widths of a and b must match.  Pass kNoNet for cin to
// mean 0.  If `cout` is non-null it receives the carry-out net.
Bus build_ripple_adder(Netlist& nl, const Bus& a, const Bus& b,
                       NetId cin = kNoNet, NetId* cout = nullptr);

Bus build_kogge_stone_adder(Netlist& nl, const Bus& a, const Bus& b,
                            NetId cin = kNoNet, NetId* cout = nullptr);

}  // namespace af::hw
