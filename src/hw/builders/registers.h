// Register banks with optional integrated clock gating.

#pragma once

#include "hw/netlist.h"

namespace af::hw {

// A DFF per bit: q <- d at each step().  Returns the q bus.
Bus build_register_bank(Netlist& nl, const Bus& d);

// Same, but the bank hangs off an ICG cell driven by `enable`; the ICG is
// modelled for area/power (gating saves the clock-pin energy of the bank).
Bus build_gated_register_bank(Netlist& nl, const Bus& d, NetId enable);

}  // namespace af::hw
