// BitVec: an arbitrary-width two-state logic vector.
//
// Used at the boundary between integer-level models (the cycle-accurate
// architecture simulator) and bit-level models (the gate-level netlist
// simulator).  Widths are explicit and checked: mixing widths without an
// explicit resize/slice is a bug in hardware modelling, so it throws.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace af::hw {

class BitVec {
 public:
  BitVec() = default;

  // Zero-initialized vector of `width` bits.
  explicit BitVec(int width);

  // Low `width` bits of `value` (width <= 64 not required: upper bits zero).
  BitVec(int width, std::uint64_t value);

  static BitVec all_ones(int width);

  int width() const { return width_; }

  bool bit(int i) const;
  void set_bit(int i, bool v);

  // Value of the low 64 bits (bits above 63 ignored).
  std::uint64_t to_u64() const;

  // Sign-extended interpretation of the full width (width <= 64 required).
  std::int64_t to_i64_signed() const;

  // Slice [lo, lo+len) into a new vector.
  BitVec slice(int lo, int len) const;

  // Concatenation: `this` occupies the low bits, `high` the high bits.
  BitVec concat_high(const BitVec& high) const;

  // Zero-extend or truncate to `width`.
  BitVec resized(int width) const;

  // Bitwise operators require equal widths.
  BitVec operator&(const BitVec& o) const;
  BitVec operator|(const BitVec& o) const;
  BitVec operator^(const BitVec& o) const;
  BitVec operator~() const;

  // Modular addition at the vector width (carry-out discarded).
  BitVec add_mod(const BitVec& o) const;

  bool operator==(const BitVec& o) const;
  bool operator!=(const BitVec& o) const { return !(*this == o); }

  // "4'b0101"-style binary string, MSB first.
  std::string to_string() const;

  // Number of set bits.
  int popcount() const;

 private:
  void check_same_width(const BitVec& o, const char* op) const;

  int width_ = 0;
  std::vector<std::uint64_t> words_;  // little-endian 64-bit words
};

}  // namespace af::hw
