// Functional (zero-delay) simulation of a gate-level netlist.
//
// Used to verify that the datapath builders are logically correct: the
// generated Wallace multiplier must multiply, the Brent–Kung adder must add,
// the carry-save column must preserve sums.  Also counts toggles per cell,
// which feeds the netlist-level power model.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/bitvec.h"
#include "hw/netlist.h"

namespace af::hw {

class NetlistSim {
 public:
  explicit NetlistSim(const Netlist& nl);

  // Assign a primary input bus (LSB-first from the low bits of `value`).
  void set_input(const std::string& bus, const BitVec& value);
  void set_input_u64(const std::string& bus, std::uint64_t value);

  // Re-evaluate all combinational logic from the current inputs and DFF
  // states.  Counts toggles relative to the previous evaluation.
  void eval();

  // eval(), then latch every DFF: q <- d.  Models one clock edge.
  void step();

  // Read an output or any bound bus after eval().
  BitVec get(const std::string& bus) const;
  std::uint64_t get_u64(const std::string& bus) const;

  bool net_value(NetId net) const;

  // Force a DFF state (by cell index); used to initialize registers.
  void set_dff_state(int cell_index, bool value);

  // Toggle counters: number of output transitions observed per cell since
  // construction or reset_activity().
  const std::vector<std::uint64_t>& toggles() const { return toggles_; }
  std::uint64_t total_toggles() const;
  void reset_activity();

 private:
  const Bus& find_bus(const std::string& name) const;

  const Netlist& nl_;
  std::vector<std::uint8_t> values_;       // per net
  std::vector<std::uint8_t> dff_state_;    // per cell (only DFFs meaningful)
  std::vector<std::uint64_t> toggles_;     // per cell
  bool first_eval_ = true;
};

}  // namespace af::hw
