// Functional (zero-delay) simulation of a gate-level netlist.
//
// Used to verify that the datapath builders are logically correct: the
// generated Wallace multiplier must multiply, the Brent–Kung adder must add,
// the carry-save column must preserve sums.  Also counts toggles per cell,
// which feeds the netlist-level power model (the SAIF/VCD analog of the
// paper's toggle-annotated power numbers).
//
// Two engines share one interface:
//
//   * SimEngine::kEventDriven (default) — compiled, event-driven, 64-lane
//     bit-parallel.  Nets carry a uint64_t word whose bit `l` is stimulus
//     lane `l`, so one eval() applies up to 64 independent input vectors;
//     toggles accumulate via popcount over the active lanes.  eval() sweeps
//     a dirty-cell wavefront through the CompiledNetlist's CSR fanout in
//     level order, so steady-state cost is proportional to switching
//     activity, not design size, and every cell evaluates at most once.
//
//   * SimEngine::kReferenceFullOrder — the original engine: re-evaluates
//     the entire topological order per eval(), one scalar lane.  Kept as
//     the equivalence oracle and the baseline for bench_netlist_sim.
//
// The scalar API (set_input / get / net_value / set_dff_state) broadcasts
// to all lanes and reads lane 0, so scalar callers behave identically on
// both engines, per-cell toggle counts included.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hw/bitvec.h"
#include "hw/compiled_netlist.h"
#include "hw/netlist.h"

namespace af::hw {

enum class SimEngine : std::uint8_t {
  kEventDriven,        // compiled + event-driven + 64-lane bit-parallel
  kReferenceFullOrder, // full topological order, one scalar lane (oracle)
};

class NetlistSim {
 public:
  // Number of independent stimulus lanes carried per net.
  static constexpr int kLanes = 64;

  // Compiles the netlist privately.
  explicit NetlistSim(const Netlist& nl,
                      SimEngine engine = SimEngine::kEventDriven);
  // Shares an existing compilation (e.g. with Sta or other sims); the
  // CompiledNetlist must outlive the simulator.
  explicit NetlistSim(const CompiledNetlist& cn,
                      SimEngine engine = SimEngine::kEventDriven);

  SimEngine engine() const { return engine_; }
  const CompiledNetlist& compiled() const { return cn_; }

  // --- scalar API (value broadcast to every lane; reads observe lane 0) ---

  // Assign a primary input bus (LSB-first from the low bits of `value`).
  void set_input(const std::string& bus, const BitVec& value);
  void set_input_u64(const std::string& bus, std::uint64_t value);

  // Re-evaluate combinational logic from the current inputs and DFF states.
  // Counts toggles relative to the previous evaluation.
  void eval();

  // eval(), then latch every DFF: q <- d.  Models one clock edge.
  void step();

  // Read an output or any bound bus after eval().
  BitVec get(const std::string& bus) const;
  std::uint64_t get_u64(const std::string& bus) const;

  bool net_value(NetId net) const;

  // Force a DFF state (by cell index); used to initialize registers.
  void set_dff_state(int cell_index, bool value);

  // --- 64-lane API (event-driven engine only) -----------------------------

  // Load `n` (1..64) stimulus vectors onto an input bus: values[l] is the
  // bus value for lane l.  Lanes n..63 replicate values[n-1] so inactive
  // lanes never generate spurious events.
  void set_input_lanes(const std::string& bus, const std::uint64_t* values,
                       int n);
  void set_input_lanes(const std::string& bus,
                       const std::vector<std::uint64_t>& values);

  // Number of lanes whose transitions count toward toggles() (default 1, so
  // scalar use matches the reference engine exactly).
  void set_active_lanes(int n);
  int active_lanes() const;

  std::uint64_t get_u64_lane(const std::string& bus, int lane) const;
  bool net_value_lane(NetId net, int lane) const;

  // --- activity ------------------------------------------------------------

  // Toggle counters: number of output transitions observed per cell, summed
  // over the active lanes, since construction or reset_activity().
  const std::vector<std::uint64_t>& toggles() const { return toggles_; }
  std::uint64_t total_toggles() const;
  void reset_activity();

  // Diagnostic: cell evaluations performed so far (word-wide in the
  // event-driven engine, scalar in the reference engine).  Event-driven
  // evals of a quiet design should barely move this counter.
  std::uint64_t cells_evaluated() const { return cells_evaluated_; }

 private:
  const Bus& find_bus(const std::string& name) const;
  void set_input_word(NetId net, std::uint64_t word);
  void mark_fanout(NetId net);
  void mark_dff_pending(int cell_index);
  void eval_event_driven();
  void eval_reference();
  void first_full_pass();

  std::unique_ptr<const CompiledNetlist> owned_;
  const CompiledNetlist& cn_;
  SimEngine engine_;

  std::vector<std::uint64_t> values_;     // per net, one bit per lane
  std::vector<std::uint64_t> dff_state_;  // per cell (only DFFs meaningful)
  std::vector<std::uint64_t> toggles_;    // per cell
  std::uint64_t lane_mask_ = 1;           // active lanes for toggle counting
  bool first_eval_ = true;
  std::uint64_t cells_evaluated_ = 0;

  // Event-driven machinery: per-cell dirty flags plus per-level worklists
  // (fanout always lands on a strictly deeper level, so one ascending sweep
  // evaluates each dirty cell exactly once).
  std::vector<std::uint8_t> dirty_;
  std::vector<std::vector<int>> dirty_levels_;
  std::vector<int> pending_dffs_;  // DFFs whose q must present a new state
  std::vector<std::uint8_t> dff_pending_;
};

}  // namespace af::hw
