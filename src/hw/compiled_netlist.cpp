#include "hw/compiled_netlist.h"

#include <algorithm>

#include "util/status.h"

namespace af::hw {

CompiledNetlist::CompiledNetlist(const Netlist& nl)
    : nl_(nl), num_nets_(nl.num_nets()), num_cells_(nl.num_cells()) {
  const std::size_t n_cells = static_cast<std::size_t>(num_cells_);
  const std::size_t n_nets = static_cast<std::size_t>(num_nets_);

  // Flat pin tables.
  types_.resize(n_cells);
  in_offset_.resize(n_cells + 1, 0);
  out_offset_.resize(n_cells + 1, 0);
  std::size_t total_in = 0, total_out = 0;
  for (int ci = 0; ci < num_cells_; ++ci) {
    const Cell& cell = nl.cell(ci);
    types_[static_cast<std::size_t>(ci)] = cell.type;
    total_in += cell.inputs.size();
    total_out += cell.outputs.size();
    in_offset_[static_cast<std::size_t>(ci) + 1] =
        static_cast<std::int32_t>(total_in);
    out_offset_[static_cast<std::size_t>(ci) + 1] =
        static_cast<std::int32_t>(total_out);
  }
  pins_in_.reserve(total_in);
  pins_out_.reserve(total_out);
  for (int ci = 0; ci < num_cells_; ++ci) {
    const Cell& cell = nl.cell(ci);
    pins_in_.insert(pins_in_.end(), cell.inputs.begin(), cell.inputs.end());
    pins_out_.insert(pins_out_.end(), cell.outputs.begin(),
                     cell.outputs.end());
  }

  // Levelization.  topo_order() validates acyclicity and driver uniqueness
  // (via driver_of) before we walk it.
  const std::vector<int>& topo = nl.topo_order();
  const std::vector<int>& driver = nl.driver_of();
  level_.assign(n_cells, -1);
  int max_level = 0;
  for (const int ci : topo) {
    const CellType type = types_[static_cast<std::size_t>(ci)];
    if (type == CellType::kDff) {
      dff_cells_.push_back(ci);
      continue;  // sequential: stays at level -1
    }
    int lvl = 0;
    const NetId* in = cell_inputs(ci);
    const int n_in = num_cell_inputs(ci);
    for (int i = 0; i < n_in; ++i) {
      const int src = driver[static_cast<std::size_t>(in[i])];
      if (src == Netlist::kNoCell) continue;  // primary input
      const int src_lvl = level_[static_cast<std::size_t>(src)];
      // DFF drivers (src_lvl == -1) launch at depth 0, like primary inputs.
      if (src_lvl + 1 > lvl) lvl = src_lvl + 1;
    }
    // TIE cells have no inputs and sit at level 0; every other combinational
    // cell lands at >= 1, so input changes always propagate forward.
    if (n_in > 0 && lvl == 0) lvl = 1;
    level_[static_cast<std::size_t>(ci)] = lvl;
    if (lvl > max_level) max_level = lvl;
  }

  // Bucket the combinational cells by level (counting sort keeps the
  // schedule stable with respect to cell order within a level).
  const int num_levels = num_cells_ > static_cast<int>(dff_cells_.size())
                             ? max_level + 1
                             : 0;
  level_offset_.assign(static_cast<std::size_t>(num_levels) + 1, 0);
  for (int ci = 0; ci < num_cells_; ++ci) {
    const int lvl = level_[static_cast<std::size_t>(ci)];
    if (lvl >= 0) ++level_offset_[static_cast<std::size_t>(lvl) + 1];
  }
  for (std::size_t l = 1; l < level_offset_.size(); ++l) {
    level_offset_[l] += level_offset_[l - 1];
  }
  schedule_.resize(static_cast<std::size_t>(
      num_levels > 0 ? level_offset_.back() : 0));
  {
    std::vector<std::int32_t> cursor(level_offset_.begin(),
                                     level_offset_.end() - 1);
    for (int ci = 0; ci < num_cells_; ++ci) {
      const int lvl = level_[static_cast<std::size_t>(ci)];
      if (lvl < 0) continue;
      schedule_[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(lvl)]++)] = ci;
    }
  }

  // Full order: DFFs (no combinational dependencies) first, then the
  // levelized schedule.
  full_order_.reserve(n_cells);
  full_order_.insert(full_order_.end(), dff_cells_.begin(), dff_cells_.end());
  full_order_.insert(full_order_.end(), schedule_.begin(), schedule_.end());
  AF_ASSERT(full_order_.size() == n_cells, "compiled schedule lost cells");

  // CSR net -> combinational fanout.
  fanout_offset_.assign(n_nets + 1, 0);
  for (int ci = 0; ci < num_cells_; ++ci) {
    if (types_[static_cast<std::size_t>(ci)] == CellType::kDff) continue;
    const NetId* in = cell_inputs(ci);
    const int n_in = num_cell_inputs(ci);
    for (int i = 0; i < n_in; ++i) {
      ++fanout_offset_[static_cast<std::size_t>(in[i]) + 1];
    }
  }
  for (std::size_t n = 1; n < fanout_offset_.size(); ++n) {
    fanout_offset_[n] += fanout_offset_[n - 1];
  }
  fanout_cells_.resize(static_cast<std::size_t>(fanout_offset_.back()));
  {
    std::vector<std::int32_t> cursor(fanout_offset_.begin(),
                                     fanout_offset_.end() - 1);
    for (int ci = 0; ci < num_cells_; ++ci) {
      if (types_[static_cast<std::size_t>(ci)] == CellType::kDff) continue;
      const NetId* in = cell_inputs(ci);
      const int n_in = num_cell_inputs(ci);
      for (int i = 0; i < n_in; ++i) {
        fanout_cells_[static_cast<std::size_t>(
            cursor[static_cast<std::size_t>(in[i])]++)] = ci;
      }
    }
  }
  // Deduplicate cells that consume the same net on several pins so the
  // event wavefront marks each consumer once.
  for (std::size_t n = 0; n < n_nets; ++n) {
    auto begin = fanout_cells_.begin() + fanout_offset_[n];
    auto end = fanout_cells_.begin() + fanout_offset_[n + 1];
    std::sort(begin, end);
  }
  {
    std::vector<int> dedup;
    dedup.reserve(fanout_cells_.size());
    std::vector<std::int32_t> new_offset(n_nets + 1, 0);
    for (std::size_t n = 0; n < n_nets; ++n) {
      const std::int32_t begin = fanout_offset_[n];
      const std::int32_t end = fanout_offset_[n + 1];
      for (std::int32_t i = begin; i < end; ++i) {
        if (i == begin ||
            fanout_cells_[static_cast<std::size_t>(i)] !=
                fanout_cells_[static_cast<std::size_t>(i - 1)]) {
          dedup.push_back(fanout_cells_[static_cast<std::size_t>(i)]);
        }
      }
      new_offset[n + 1] = static_cast<std::int32_t>(dedup.size());
    }
    fanout_cells_ = std::move(dedup);
    fanout_offset_ = std::move(new_offset);
  }
}

}  // namespace af::hw
