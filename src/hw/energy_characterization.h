// Monte-Carlo energy characterization of the PE datapath.
//
// Derives the per-op entries of arch::EnergyParams from measured gate-level
// toggles instead of hand-fit constants: an ArrayFlex PE netlist is driven
// with random operand streams on the 64-lane bit-parallel simulator, per-cell
// toggle counts are priced with the standard-cell switching energies (exactly
// what hw::power_from_activity does), and each hierarchical group's energy is
// divided by the number of simulated MAC operations.  This is the
// simulation-calibrated analog of a SAIF-annotated power characterization run
// and an alternative to EnergyParams::generic28nm()'s paper-anchored fit.
//
// Only zero-delay-observable parameters are measured:
//   e_mult_fj, e_csa_fj, e_bypass_mux_fj, e_cpa_fj   — per-op group energy;
//   e_reg_bit_fj                                     — per latched data bit;
//   e_clk_bit_fj                                     — DFF clock-pin energy,
//       taken from the cell library (the same constant power_from_activity
//       charges per enabled cycle);
//   leak_mw_per_pe                                   — summed cell leakage.
// Glitch factors (a zero-delay simulator evaluates each cell once, so there
// are no spurious transitions to observe), the accumulator energy (no
// accumulator netlist exists) and the clock-tree split are carried over from
// `base` unchanged.

#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "arch/power_model.h"
#include "hw/builders/multiplier.h"

namespace af::hw {

struct EnergyCharacterizationOptions {
  int input_bits = 32;  // activation / weight width (paper: 32-bit quantized)
  int acc_bits = 64;    // column accumulation width (paper: 64)
  // Booth is what synthesis emits for 32-bit MACs (see builders/multiplier.h);
  // kWallace characterizes the plain-array structure instead.
  MultiplierStyle multiplier = MultiplierStyle::kBooth;
  // Clock cycles of random stimulus; each cycle carries 64 independent lanes,
  // so the Monte-Carlo sample count is 64 * cycles.
  int cycles = 256;
  std::uint64_t seed = 0x5eedULL;
};

struct CharacterizedEnergy {
  // Measured fields filled in; unobservable fields carried over from `base`.
  arch::EnergyParams params;
  // Diagnostics.
  double lane_cycles = 0.0;  // cycles * 64 simulated MAC operations
  int cells = 0;             // PE netlist size
  std::uint64_t total_toggles = 0;
  std::map<std::string, double> group_fj_per_op;  // per PE component
};

CharacterizedEnergy characterize_energy(
    const EnergyCharacterizationOptions& options = {},
    const arch::EnergyParams& base = arch::EnergyParams::generic28nm());

}  // namespace af::hw
