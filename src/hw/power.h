// Netlist-level power estimation.
//
// Two modes, mirroring how a real flow works:
//   * simulation-driven: per-cell toggle counts from NetlistSim (the analog
//     of SAIF/VCD-annotated power analysis);
//   * activity-factor-driven: a uniform or per-group switching activity
//     assumption (the analog of default-toggle-rate power analysis).
//
// Dynamic power per cell = alpha * E_switch * f; sequential cells add clock
// pin power every cycle unless they sit behind a disabled clock gate.

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "hw/compiled_netlist.h"
#include "hw/netlist.h"

namespace af::hw {

struct PowerBreakdown {
  double dynamic_mw = 0.0;
  double clock_mw = 0.0;
  double leakage_mw = 0.0;
  double total_mw() const { return dynamic_mw + clock_mw + leakage_mw; }
  std::map<std::string, double> by_group_mw;  // first name component
};

struct PowerOptions {
  double frequency_ghz = 1.0;
  // Fraction of DFFs whose clock pin is active (1 - gated fraction).
  double clock_enable_fraction = 1.0;
  // Multiplier on switching energy to model voltage deviation from nominal:
  // energy scales with (v / v_nom)^2.
  double voltage_scale = 1.0;
};

// Simulation-driven: `toggles` is per-cell output-transition counts observed
// over `cycles` evaluated clock cycles.  With the 64-lane simulator,
// `cycles` is evals x active lanes (each lane is an independent stimulus
// stream contributing one cycle per eval).
PowerBreakdown power_from_activity(const Netlist& nl,
                                   const std::vector<std::uint64_t>& toggles,
                                   std::uint64_t cycles,
                                   const PowerOptions& options);

// Convenience overload for callers already holding the compilation their
// simulator ran on (pricing itself only walks the cell list, so this simply
// forwards to the Netlist form).
PowerBreakdown power_from_activity(const CompiledNetlist& cn,
                                   const std::vector<std::uint64_t>& toggles,
                                   std::uint64_t cycles,
                                   const PowerOptions& options);

// Activity-factor-driven: every combinational cell toggles with probability
// `activity` per cycle; group overrides win over the default.
PowerBreakdown power_from_factors(
    const Netlist& nl, double activity,
    const std::map<std::string, double>& group_activity,
    const PowerOptions& options);

}  // namespace af::hw
