// Generic 28 nm standard-cell library model.
//
// The paper implements both systolic arrays with Cadence's flow on a 28 nm
// library.  We model a representative cell set with normalized delay, area,
// input capacitance, switching energy and leakage.  Absolute values are
// "generic 28 nm"; the clock model calibrates a single global delay scale so
// the conventional PE closes timing at the paper's 2 GHz anchor, after which
// all derived quantities (Eq. 5 coefficients, ablation deltas) follow from
// netlist structure rather than hand-picked constants.

#pragma once

#include <cstdint>
#include <string>

#include "hw/bitvec.h"
#include "util/status.h"

namespace af::hw {

enum class CellType : std::uint8_t {
  kTie0,   // constant 0
  kTie1,   // constant 1
  kInv,
  kBuf,
  kNand2,
  kNor2,
  kAnd2,
  kOr2,
  kXor2,
  kXnor2,
  kAoi21,  // !((a & b) | c)
  kOai21,  // !((a | b) & c)
  kMux2,   // sel ? b : a     (inputs: a, b, sel)
  kHalfAdder,  // outputs: sum, carry
  kFullAdder,  // outputs: sum, carry
  kDff,    // input: d, output: q (clock implicit)
  kClockGate,  // integrated clock-gating cell; input: en, output: gclk
};

// Number of defined cell types (for iteration).
inline constexpr int kNumCellTypes = 17;

struct CellInfo {
  const char* name;
  int num_inputs;
  int num_outputs;
  // Worst input-to-output propagation delay per output pin, in picoseconds
  // (pre-scaling).  Index 0 = first output.
  double delay_ps[2];
  double area_um2;
  double input_cap_ff;    // per input pin
  double switch_energy_fj;  // internal + load energy per output transition
  double leakage_nw;
};

// Static library entry for a cell type.
const CellInfo& cell_info(CellType type);

// Sequential-element timing parameters, shared by all DFFs.
struct SequentialTiming {
  double clk_to_q_ps = 45.0;
  double setup_ps = 30.0;
};

// Technology-level knobs.  `delay_scale` multiplies every cell delay
// (including clk-to-q and setup); it is the calibration handle described in
// DESIGN.md §2.  `voltage` feeds the power model.
struct Technology {
  double delay_scale = 1.0;
  double voltage = 0.9;       // volts, nominal 28 nm
  SequentialTiming seq;

  double scaled_delay_ps(CellType type, int output_index = 0) const;
  double scaled_clk_to_q_ps() const { return seq.clk_to_q_ps * delay_scale; }
  double scaled_setup_ps() const { return seq.setup_ps * delay_scale; }
};

// Functional evaluation of a combinational cell.  `inputs`/`outputs` are
// arrays of single-bit values; sizes must match the cell arity.
void eval_cell(CellType type, const bool* inputs, bool* outputs);

// 64-lane bit-parallel evaluation: bit `l` of every word is an independent
// stimulus lane, so one call evaluates the cell under 64 input vectors at
// once.  Semantically identical to eval_cell applied per lane.  Kept inline
// in the header: this is the innermost loop of the bit-parallel netlist
// simulator.
inline void eval_cell_u64(CellType type, const std::uint64_t* in,
                          std::uint64_t* out) {
  switch (type) {
    case CellType::kTie0:
      out[0] = 0;
      return;
    case CellType::kTie1:
      out[0] = ~std::uint64_t{0};
      return;
    case CellType::kInv:
      out[0] = ~in[0];
      return;
    case CellType::kBuf:
      out[0] = in[0];
      return;
    case CellType::kNand2:
      out[0] = ~(in[0] & in[1]);
      return;
    case CellType::kNor2:
      out[0] = ~(in[0] | in[1]);
      return;
    case CellType::kAnd2:
      out[0] = in[0] & in[1];
      return;
    case CellType::kOr2:
      out[0] = in[0] | in[1];
      return;
    case CellType::kXor2:
      out[0] = in[0] ^ in[1];
      return;
    case CellType::kXnor2:
      out[0] = ~(in[0] ^ in[1]);
      return;
    case CellType::kAoi21:
      out[0] = ~((in[0] & in[1]) | in[2]);
      return;
    case CellType::kOai21:
      out[0] = ~((in[0] | in[1]) & in[2]);
      return;
    case CellType::kMux2:
      out[0] = (in[2] & in[1]) | (~in[2] & in[0]);
      return;
    case CellType::kHalfAdder:
      out[0] = in[0] ^ in[1];
      out[1] = in[0] & in[1];
      return;
    case CellType::kFullAdder: {
      const std::uint64_t a = in[0], b = in[1], c = in[2];
      const std::uint64_t axb = a ^ b;
      out[0] = axb ^ c;
      out[1] = (a & b) | (axb & c);
      return;
    }
    case CellType::kDff:
      // Sequential: functional value handled by the simulator's state.
      out[0] = in[0];
      return;
    case CellType::kClockGate:
      out[0] = in[0];
      return;
  }
  AF_ASSERT(false, "unhandled cell type " << static_cast<int>(type));
  out[0] = 0;
}

// Human-readable cell-type name ("NAND2", "FA", ...).
const char* cell_type_name(CellType type);

}  // namespace af::hw
