#include "hw/area.h"

#include "util/status.h"

namespace af::hw {
namespace {

std::string first_component(const std::string& name) {
  const auto slash = name.find('/');
  return slash == std::string::npos ? std::string("top")
                                    : name.substr(0, slash);
}

}  // namespace

double AreaBreakdown::group_um2(const std::string& group) const {
  const auto it = by_group_um2.find(group);
  return it == by_group_um2.end() ? 0.0 : it->second;
}

double AreaBreakdown::group_fraction(const std::string& group) const {
  return total_um2 > 0 ? group_um2(group) / total_um2 : 0.0;
}

AreaBreakdown compute_area(const Netlist& nl) {
  AreaBreakdown out;
  for (const Cell& cell : nl.cells()) {
    const CellInfo& info = cell_info(cell.type);
    out.total_um2 += info.area_um2;
    out.by_group_um2[first_component(cell.name)] += info.area_um2;
    out.by_cell_type_um2[info.name] += info.area_um2;
    ++out.cell_count;
  }
  return out;
}

double area_overhead(const AreaBreakdown& baseline, const AreaBreakdown& design) {
  AF_CHECK(baseline.total_um2 > 0, "baseline area must be positive");
  return design.total_um2 / baseline.total_um2 - 1.0;
}

}  // namespace af::hw
