#include "hw/netlist_sim.h"

#include <numeric>

#include "util/status.h"

namespace af::hw {

NetlistSim::NetlistSim(const Netlist& nl)
    : nl_(nl),
      values_(static_cast<std::size_t>(nl.num_nets()), 0),
      dff_state_(static_cast<std::size_t>(nl.num_cells()), 0),
      toggles_(static_cast<std::size_t>(nl.num_cells()), 0) {}

const Bus& NetlistSim::find_bus(const std::string& name) const {
  const auto in_it = nl_.inputs().find(name);
  if (in_it != nl_.inputs().end()) return in_it->second;
  const auto out_it = nl_.outputs().find(name);
  AF_CHECK(out_it != nl_.outputs().end(), "unknown bus '" << name << "'");
  return out_it->second;
}

void NetlistSim::set_input(const std::string& bus, const BitVec& value) {
  const Bus& nets = nl_.input(bus);
  AF_CHECK(value.width() == static_cast<int>(nets.size()),
           "bus '" << bus << "' width " << nets.size()
                   << " != value width " << value.width());
  for (std::size_t i = 0; i < nets.size(); ++i) {
    values_[static_cast<std::size_t>(nets[i])] =
        value.bit(static_cast<int>(i)) ? 1 : 0;
  }
}

void NetlistSim::set_input_u64(const std::string& bus, std::uint64_t value) {
  const Bus& nets = nl_.input(bus);
  AF_CHECK(nets.size() <= 64, "bus '" << bus << "' wider than 64 bits");
  set_input(bus, BitVec(static_cast<int>(nets.size()), value));
}

void NetlistSim::eval() {
  bool in[4];
  bool out[2];
  for (const int ci : nl_.topo_order()) {
    const Cell& cell = nl_.cell(ci);
    if (cell.type == CellType::kDff) {
      // The DFF output shows the stored state, not the D input.
      const NetId q = cell.outputs[0];
      const bool prev = values_[static_cast<std::size_t>(q)] != 0;
      const bool next = dff_state_[static_cast<std::size_t>(ci)] != 0;
      if (!first_eval_ && prev != next) ++toggles_[static_cast<std::size_t>(ci)];
      values_[static_cast<std::size_t>(q)] = next ? 1 : 0;
      continue;
    }
    for (std::size_t i = 0; i < cell.inputs.size(); ++i) {
      in[i] = values_[static_cast<std::size_t>(cell.inputs[i])] != 0;
    }
    eval_cell(cell.type, in, out);
    for (std::size_t i = 0; i < cell.outputs.size(); ++i) {
      const NetId n = cell.outputs[i];
      const bool prev = values_[static_cast<std::size_t>(n)] != 0;
      if (!first_eval_ && prev != out[i]) {
        ++toggles_[static_cast<std::size_t>(ci)];
      }
      values_[static_cast<std::size_t>(n)] = out[i] ? 1 : 0;
    }
  }
  first_eval_ = false;
}

void NetlistSim::step() {
  eval();
  for (int ci = 0; ci < nl_.num_cells(); ++ci) {
    const Cell& cell = nl_.cell(ci);
    if (cell.type != CellType::kDff) continue;
    dff_state_[static_cast<std::size_t>(ci)] =
        values_[static_cast<std::size_t>(cell.inputs[0])];
  }
}

BitVec NetlistSim::get(const std::string& bus) const {
  const Bus& nets = find_bus(bus);
  BitVec out(static_cast<int>(nets.size()));
  for (std::size_t i = 0; i < nets.size(); ++i) {
    out.set_bit(static_cast<int>(i),
                values_[static_cast<std::size_t>(nets[i])] != 0);
  }
  return out;
}

std::uint64_t NetlistSim::get_u64(const std::string& bus) const {
  return get(bus).to_u64();
}

bool NetlistSim::net_value(NetId net) const {
  AF_CHECK(net >= 0 && net < nl_.num_nets(), "net out of range");
  return values_[static_cast<std::size_t>(net)] != 0;
}

void NetlistSim::set_dff_state(int cell_index, bool value) {
  AF_CHECK(cell_index >= 0 && cell_index < nl_.num_cells(),
           "cell index out of range");
  AF_CHECK(nl_.cell(cell_index).type == CellType::kDff,
           "cell " << cell_index << " is not a DFF");
  dff_state_[static_cast<std::size_t>(cell_index)] = value ? 1 : 0;
}

std::uint64_t NetlistSim::total_toggles() const {
  return std::accumulate(toggles_.begin(), toggles_.end(), std::uint64_t{0});
}

void NetlistSim::reset_activity() {
  std::fill(toggles_.begin(), toggles_.end(), 0);
}

}  // namespace af::hw
