#include "hw/netlist_sim.h"

#include <bit>
#include <numeric>

#include "util/math.h"
#include "util/status.h"

namespace af::hw {
namespace {

inline std::uint64_t broadcast(bool v) { return v ? ~std::uint64_t{0} : 0; }

}  // namespace

NetlistSim::NetlistSim(const Netlist& nl, SimEngine engine)
    : owned_(std::make_unique<CompiledNetlist>(nl)),
      cn_(*owned_),
      engine_(engine),
      values_(static_cast<std::size_t>(cn_.num_nets()), 0),
      dff_state_(static_cast<std::size_t>(cn_.num_cells()), 0),
      toggles_(static_cast<std::size_t>(cn_.num_cells()), 0),
      dirty_(static_cast<std::size_t>(cn_.num_cells()), 0),
      dirty_levels_(static_cast<std::size_t>(cn_.num_levels())),
      dff_pending_(static_cast<std::size_t>(cn_.num_cells()), 0) {}

NetlistSim::NetlistSim(const CompiledNetlist& cn, SimEngine engine)
    : cn_(cn),
      engine_(engine),
      values_(static_cast<std::size_t>(cn_.num_nets()), 0),
      dff_state_(static_cast<std::size_t>(cn_.num_cells()), 0),
      toggles_(static_cast<std::size_t>(cn_.num_cells()), 0),
      dirty_(static_cast<std::size_t>(cn_.num_cells()), 0),
      dirty_levels_(static_cast<std::size_t>(cn_.num_levels())),
      dff_pending_(static_cast<std::size_t>(cn_.num_cells()), 0) {}

const Bus& NetlistSim::find_bus(const std::string& name) const {
  const Netlist& nl = cn_.netlist();
  const auto in_it = nl.inputs().find(name);
  if (in_it != nl.inputs().end()) return in_it->second;
  const auto out_it = nl.outputs().find(name);
  AF_CHECK(out_it != nl.outputs().end(), "unknown bus '" << name << "'");
  return out_it->second;
}

void NetlistSim::mark_fanout(NetId net) {
  const int* fan = cn_.fanout_cells(net);
  const int n = cn_.fanout_size(net);
  for (int i = 0; i < n; ++i) {
    const int ci = fan[i];
    if (!dirty_[static_cast<std::size_t>(ci)]) {
      dirty_[static_cast<std::size_t>(ci)] = 1;
      dirty_levels_[static_cast<std::size_t>(cn_.level_of(ci))].push_back(ci);
    }
  }
}

void NetlistSim::set_input_word(NetId net, std::uint64_t word) {
  std::uint64_t& slot = values_[static_cast<std::size_t>(net)];
  if (slot == word) return;
  slot = word;
  if (engine_ == SimEngine::kEventDriven && !first_eval_) mark_fanout(net);
}

void NetlistSim::set_input(const std::string& bus, const BitVec& value) {
  const Bus& nets = cn_.netlist().input(bus);
  AF_CHECK(value.width() == static_cast<int>(nets.size()),
           "bus '" << bus << "' width " << nets.size()
                   << " != value width " << value.width());
  for (std::size_t i = 0; i < nets.size(); ++i) {
    set_input_word(nets[i], broadcast(value.bit(static_cast<int>(i))));
  }
}

void NetlistSim::set_input_u64(const std::string& bus, std::uint64_t value) {
  const Bus& nets = cn_.netlist().input(bus);
  AF_CHECK(nets.size() <= 64, "bus '" << bus << "' wider than 64 bits");
  set_input(bus, BitVec(static_cast<int>(nets.size()), value));
}

void NetlistSim::set_input_lanes(const std::string& bus,
                                 const std::uint64_t* values, int n) {
  AF_CHECK(engine_ == SimEngine::kEventDriven,
           "set_input_lanes requires the event-driven engine");
  AF_CHECK(n >= 1 && n <= kLanes, "lane count " << n << " out of range");
  const Bus& nets = cn_.netlist().input(bus);
  AF_CHECK(nets.size() <= 64, "bus '" << bus << "' wider than 64 bits");
  // Transpose: bit i of lane value l becomes lane bit l of net i's word.
  // Lanes beyond n replicate the last vector so they never toggle on their
  // own.
  for (std::size_t i = 0; i < nets.size(); ++i) {
    std::uint64_t word = 0;
    for (int l = 0; l < n; ++l) {
      word |= ((values[l] >> i) & 1u) << l;
    }
    if (((values[n - 1] >> i) & 1u) != 0 && n < kLanes) {
      word |= ~mask_low_bits(n);
    }
    set_input_word(nets[i], word);
  }
}

void NetlistSim::set_input_lanes(const std::string& bus,
                                 const std::vector<std::uint64_t>& values) {
  set_input_lanes(bus, values.data(), static_cast<int>(values.size()));
}

void NetlistSim::set_active_lanes(int n) {
  AF_CHECK(n >= 1 && n <= kLanes, "active lane count " << n << " out of range");
  AF_CHECK(engine_ == SimEngine::kEventDriven || n == 1,
           "the reference engine is scalar (1 lane)");
  lane_mask_ = mask_low_bits(n);
}

int NetlistSim::active_lanes() const { return std::popcount(lane_mask_); }

void NetlistSim::mark_dff_pending(int cell_index) {
  if (!dff_pending_[static_cast<std::size_t>(cell_index)]) {
    dff_pending_[static_cast<std::size_t>(cell_index)] = 1;
    pending_dffs_.push_back(cell_index);
  }
}

void NetlistSim::first_full_pass() {
  // Establish the baseline: evaluate every cell once, counting no toggles
  // (matches the reference engine's first eval).
  std::uint64_t in[4];
  std::uint64_t out[2];
  for (const int ci : cn_.dff_cells()) {
    const NetId q = cn_.cell_outputs(ci)[0];
    values_[static_cast<std::size_t>(q)] =
        dff_state_[static_cast<std::size_t>(ci)];
  }
  for (const int ci : cn_.schedule()) {
    const NetId* ins = cn_.cell_inputs(ci);
    const int n_in = cn_.num_cell_inputs(ci);
    for (int i = 0; i < n_in; ++i) {
      in[i] = values_[static_cast<std::size_t>(ins[i])];
    }
    eval_cell_u64(cn_.cell_type(ci), in, out);
    const NetId* outs = cn_.cell_outputs(ci);
    const int n_out = cn_.num_cell_outputs(ci);
    for (int i = 0; i < n_out; ++i) {
      values_[static_cast<std::size_t>(outs[i])] = out[i];
    }
    ++cells_evaluated_;
  }
  // Any events recorded before the first eval are subsumed by the full pass.
  std::fill(dirty_.begin(), dirty_.end(), 0);
  for (auto& bucket : dirty_levels_) bucket.clear();
  std::fill(dff_pending_.begin(), dff_pending_.end(), 0);
  pending_dffs_.clear();
  first_eval_ = false;
}

void NetlistSim::eval_event_driven() {
  if (first_eval_) {
    first_full_pass();
    return;
  }

  // Present freshly latched / forced DFF states on their Q nets.
  for (const int ci : pending_dffs_) {
    dff_pending_[static_cast<std::size_t>(ci)] = 0;
    const NetId q = cn_.cell_outputs(ci)[0];
    const std::uint64_t prev = values_[static_cast<std::size_t>(q)];
    const std::uint64_t next = dff_state_[static_cast<std::size_t>(ci)];
    if (prev == next) continue;
    toggles_[static_cast<std::size_t>(ci)] +=
        static_cast<std::uint64_t>(std::popcount((prev ^ next) & lane_mask_));
    values_[static_cast<std::size_t>(q)] = next;
    mark_fanout(q);
  }
  pending_dffs_.clear();

  // Level-ordered wavefront: a cell's fanout always sits on a deeper level,
  // so each dirty cell evaluates exactly once per eval.
  std::uint64_t in[4];
  std::uint64_t out[2];
  const int num_levels = cn_.num_levels();
  for (int lev = 0; lev < num_levels; ++lev) {
    std::vector<int>& bucket = dirty_levels_[static_cast<std::size_t>(lev)];
    for (std::size_t bi = 0; bi < bucket.size(); ++bi) {
      const int ci = bucket[bi];
      dirty_[static_cast<std::size_t>(ci)] = 0;
      const NetId* ins = cn_.cell_inputs(ci);
      const int n_in = cn_.num_cell_inputs(ci);
      for (int i = 0; i < n_in; ++i) {
        in[i] = values_[static_cast<std::size_t>(ins[i])];
      }
      eval_cell_u64(cn_.cell_type(ci), in, out);
      ++cells_evaluated_;
      const NetId* outs = cn_.cell_outputs(ci);
      const int n_out = cn_.num_cell_outputs(ci);
      for (int i = 0; i < n_out; ++i) {
        const NetId n = outs[i];
        const std::uint64_t prev = values_[static_cast<std::size_t>(n)];
        if (prev == out[i]) continue;
        toggles_[static_cast<std::size_t>(ci)] += static_cast<std::uint64_t>(
            std::popcount((prev ^ out[i]) & lane_mask_));
        values_[static_cast<std::size_t>(n)] = out[i];
        mark_fanout(n);
      }
    }
    bucket.clear();
  }
}

void NetlistSim::eval_reference() {
  // The seed algorithm: one scalar lane, full topological order per eval.
  bool in[4];
  bool out[2];
  for (const int ci : cn_.full_order()) {
    const CellType type = cn_.cell_type(ci);
    if (type == CellType::kDff) {
      // The DFF output shows the stored state, not the D input.
      const NetId q = cn_.cell_outputs(ci)[0];
      const bool prev = (values_[static_cast<std::size_t>(q)] & 1u) != 0;
      const bool next = (dff_state_[static_cast<std::size_t>(ci)] & 1u) != 0;
      if (!first_eval_ && prev != next) ++toggles_[static_cast<std::size_t>(ci)];
      values_[static_cast<std::size_t>(q)] = broadcast(next);
      continue;
    }
    const NetId* ins = cn_.cell_inputs(ci);
    const int n_in = cn_.num_cell_inputs(ci);
    for (int i = 0; i < n_in; ++i) {
      in[i] = (values_[static_cast<std::size_t>(ins[i])] & 1u) != 0;
    }
    eval_cell(type, in, out);
    ++cells_evaluated_;
    const NetId* outs = cn_.cell_outputs(ci);
    const int n_out = cn_.num_cell_outputs(ci);
    for (int i = 0; i < n_out; ++i) {
      const NetId n = outs[i];
      const bool prev = (values_[static_cast<std::size_t>(n)] & 1u) != 0;
      if (!first_eval_ && prev != out[i]) {
        ++toggles_[static_cast<std::size_t>(ci)];
      }
      values_[static_cast<std::size_t>(n)] = broadcast(out[i]);
    }
  }
  first_eval_ = false;
}

void NetlistSim::eval() {
  if (engine_ == SimEngine::kEventDriven) {
    eval_event_driven();
  } else {
    eval_reference();
  }
}

void NetlistSim::step() {
  eval();
  // Latch from the precomputed DFF list (the seed scanned every cell here).
  for (const int ci : cn_.dff_cells()) {
    const NetId d = cn_.cell_inputs(ci)[0];
    const std::uint64_t next = values_[static_cast<std::size_t>(d)];
    dff_state_[static_cast<std::size_t>(ci)] = next;
    if (engine_ == SimEngine::kEventDriven &&
        next != values_[static_cast<std::size_t>(cn_.cell_outputs(ci)[0])]) {
      mark_dff_pending(ci);
    }
  }
}

BitVec NetlistSim::get(const std::string& bus) const {
  const Bus& nets = find_bus(bus);
  BitVec out(static_cast<int>(nets.size()));
  for (std::size_t i = 0; i < nets.size(); ++i) {
    out.set_bit(static_cast<int>(i),
                (values_[static_cast<std::size_t>(nets[i])] & 1u) != 0);
  }
  return out;
}

std::uint64_t NetlistSim::get_u64(const std::string& bus) const {
  return get(bus).to_u64();
}

std::uint64_t NetlistSim::get_u64_lane(const std::string& bus,
                                       int lane) const {
  AF_CHECK(lane >= 0 && lane < kLanes, "lane " << lane << " out of range");
  const Bus& nets = find_bus(bus);
  AF_CHECK(nets.size() <= 64, "bus '" << bus << "' wider than 64 bits");
  std::uint64_t out = 0;
  for (std::size_t i = 0; i < nets.size(); ++i) {
    out |= ((values_[static_cast<std::size_t>(nets[i])] >> lane) & 1u) << i;
  }
  return out;
}

bool NetlistSim::net_value(NetId net) const { return net_value_lane(net, 0); }

bool NetlistSim::net_value_lane(NetId net, int lane) const {
  AF_CHECK(net >= 0 && net < cn_.num_nets(), "net out of range");
  AF_CHECK(lane >= 0 && lane < kLanes, "lane " << lane << " out of range");
  return ((values_[static_cast<std::size_t>(net)] >> lane) & 1u) != 0;
}

void NetlistSim::set_dff_state(int cell_index, bool value) {
  AF_CHECK(cell_index >= 0 && cell_index < cn_.num_cells(),
           "cell index out of range");
  AF_CHECK(cn_.cell_type(cell_index) == CellType::kDff,
           "cell " << cell_index << " is not a DFF");
  const std::uint64_t next = broadcast(value);
  dff_state_[static_cast<std::size_t>(cell_index)] = next;
  if (engine_ == SimEngine::kEventDriven &&
      next !=
          values_[static_cast<std::size_t>(cn_.cell_outputs(cell_index)[0])]) {
    mark_dff_pending(cell_index);
  }
}

std::uint64_t NetlistSim::total_toggles() const {
  return std::accumulate(toggles_.begin(), toggles_.end(), std::uint64_t{0});
}

void NetlistSim::reset_activity() {
  std::fill(toggles_.begin(), toggles_.end(), 0);
}

}  // namespace af::hw
