// CompiledNetlist: a lowered, immutable view of a Netlist optimized for
// repeated traversal.
//
// Netlist stores each cell's pins as per-cell std::vectors and derives the
// topological order lazily; every engine that walks the design (functional
// simulation, STA, power) used to chase those heap pointers per cell per
// query.  CompiledNetlist lowers the structure once into flat
// structure-of-arrays form:
//
//   * contiguous pin tables (one NetId array for all input pins, one for all
//     output pins, indexed by per-cell offsets);
//   * a CSR net -> combinational-fanout adjacency (which cells must
//     re-evaluate when a net changes), the backbone of event-driven
//     simulation;
//   * a levelized schedule: combinational cells bucketed by logic depth, so
//     a dirty-cell wavefront can sweep levels in ascending order and
//     evaluate every cell at most once per eval;
//   * the DFF cell list, so clock edges latch registers without scanning
//     the whole design.
//
// NetlistSim, Sta and the power helpers all accept a CompiledNetlist so one
// compilation can be shared across engines.  The compiled view references
// the source Netlist (for cell names and bus bindings) and snapshots its
// structure: mutating the Netlist after compiling invalidates the
// CompiledNetlist.

#pragma once

#include <cstdint>
#include <vector>

#include "hw/netlist.h"

namespace af::hw {

class CompiledNetlist {
 public:
  explicit CompiledNetlist(const Netlist& nl);

  const Netlist& netlist() const { return nl_; }
  int num_nets() const { return num_nets_; }
  int num_cells() const { return num_cells_; }

  // --- flat per-cell structure -------------------------------------------

  CellType cell_type(int ci) const {
    return types_[static_cast<std::size_t>(ci)];
  }
  const NetId* cell_inputs(int ci) const {
    return pins_in_.data() + in_offset_[static_cast<std::size_t>(ci)];
  }
  int num_cell_inputs(int ci) const {
    return in_offset_[static_cast<std::size_t>(ci) + 1] -
           in_offset_[static_cast<std::size_t>(ci)];
  }
  const NetId* cell_outputs(int ci) const {
    return pins_out_.data() + out_offset_[static_cast<std::size_t>(ci)];
  }
  int num_cell_outputs(int ci) const {
    return out_offset_[static_cast<std::size_t>(ci) + 1] -
           out_offset_[static_cast<std::size_t>(ci)];
  }

  // --- levelized schedule -------------------------------------------------

  // Logic depth of a combinational cell: 0 for TIE cells, otherwise
  // 1 + max depth over driving cells (DFF / primary-input drivers count as
  // depth 0).  -1 for DFFs, which are not part of the combinational
  // schedule.
  int level_of(int ci) const { return level_[static_cast<std::size_t>(ci)]; }
  int num_levels() const {
    return static_cast<int>(level_offset_.size()) - 1;
  }
  // All combinational cells (TIEs included) in ascending level order; a
  // valid topological order of the combinational subgraph.
  const std::vector<int>& schedule() const { return schedule_; }
  const int* level_cells(int level) const {
    return schedule_.data() + level_offset_[static_cast<std::size_t>(level)];
  }
  int level_size(int level) const {
    return level_offset_[static_cast<std::size_t>(level) + 1] -
           level_offset_[static_cast<std::size_t>(level)];
  }

  // DFF cell indices, in cell order.
  const std::vector<int>& dff_cells() const { return dff_cells_; }

  // Full topological order over every cell (DFFs first, then the levelized
  // combinational schedule).  Used by full-order evaluation and STA.
  const std::vector<int>& full_order() const { return full_order_; }

  // --- CSR net -> combinational fanout ------------------------------------

  // Combinational cells with at least one input pin on `net`; each cell
  // appears once.  DFF consumers are excluded: a D pin is only sampled at a
  // clock edge, so a data change never forces combinational re-evaluation.
  const int* fanout_cells(NetId net) const {
    return fanout_cells_.data() + fanout_offset_[static_cast<std::size_t>(net)];
  }
  int fanout_size(NetId net) const {
    return fanout_offset_[static_cast<std::size_t>(net) + 1] -
           fanout_offset_[static_cast<std::size_t>(net)];
  }

 private:
  const Netlist& nl_;
  int num_nets_ = 0;
  int num_cells_ = 0;

  std::vector<CellType> types_;
  std::vector<std::int32_t> in_offset_;   // size num_cells + 1
  std::vector<std::int32_t> out_offset_;  // size num_cells + 1
  std::vector<NetId> pins_in_;
  std::vector<NetId> pins_out_;

  std::vector<int> level_;         // per cell; -1 for DFFs
  std::vector<int> schedule_;      // combinational cells by ascending level
  std::vector<std::int32_t> level_offset_;  // size num_levels + 1
  std::vector<int> dff_cells_;
  std::vector<int> full_order_;

  std::vector<std::int32_t> fanout_offset_;  // size num_nets + 1
  std::vector<int> fanout_cells_;
};

}  // namespace af::hw
