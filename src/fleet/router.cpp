#include "fleet/router.h"

#include <algorithm>
#include <atomic>
#include <sstream>

#include "util/status.h"

namespace af::fleet {
namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// --- "hash": consistent hashing over a ring of virtual nodes ---------------
//
// Ring points are a pure function of (seed, slot, replica), NOT of the
// routable set — so the ring never rebuilds.  A placement walks clockwise
// from the key's position until it meets a routable slot; when a slot
// leaves (unroutable), exactly the keys whose walk first met that slot
// move to their next ring neighbour — the ~1/N stability the fleet's
// fusion locality depends on.
class HashRouter final : public Router {
 public:
  explicit HashRouter(const RouterOptions& options) : options_(options) {
    AF_CHECK(options_.replicas > 0,
             "router replicas must be positive, got " << options_.replicas);
  }

  const std::string& name() const override {
    static const std::string kName = "hash";
    return kName;
  }

  int place(std::uint64_t key, const std::vector<ServerLoad>& loads) override {
    ensure_ring(static_cast<int>(loads.size()));
    if (ring_.empty()) return -1;
    const std::uint64_t point = splitmix64(options_.seed ^ splitmix64(key));
    auto it = std::lower_bound(
        ring_.begin(), ring_.end(), point,
        [](const RingPoint& p, std::uint64_t v) { return p.point < v; });
    for (std::size_t step = 0; step < ring_.size(); ++step) {
      if (it == ring_.end()) it = ring_.begin();
      const int slot = it->slot;
      if (slot < static_cast<int>(loads.size()) && loads[slot].routable) {
        return slot;
      }
      ++it;
    }
    return -1;  // nothing routable
  }

 private:
  struct RingPoint {
    std::uint64_t point;
    int slot;
  };

  // (Re)builds the ring when the slot COUNT changes (fleets are fixed-size
  // slot arrays; membership churn is the routable flag, not the count).
  void ensure_ring(int slots) {
    if (slots == ring_slots_) return;
    ring_.clear();
    ring_.reserve(static_cast<std::size_t>(slots) *
                  static_cast<std::size_t>(options_.replicas));
    for (int s = 0; s < slots; ++s) {
      for (int r = 0; r < options_.replicas; ++r) {
        const std::uint64_t point = splitmix64(
            options_.seed ^
            (static_cast<std::uint64_t>(s) * 0x100000001b3ULL +
             static_cast<std::uint64_t>(r)));
        ring_.push_back(RingPoint{point, s});
      }
    }
    std::sort(ring_.begin(), ring_.end(),
              [](const RingPoint& a, const RingPoint& b) {
                if (a.point != b.point) return a.point < b.point;
                return a.slot < b.slot;
              });
    ring_slots_ = slots;
  }

  RouterOptions options_;
  std::vector<RingPoint> ring_;
  int ring_slots_ = -1;
};

// --- "p2c": power of two choices on backlog cost ---------------------------
class P2cRouter final : public Router {
 public:
  explicit P2cRouter(const RouterOptions& options) : options_(options) {}

  const std::string& name() const override {
    static const std::string kName = "p2c";
    return kName;
  }

  int place(std::uint64_t key, const std::vector<ServerLoad>& loads) override {
    (void)key;  // load-blind of the key: pure balance, no locality
    std::vector<int> routable;
    routable.reserve(loads.size());
    for (const ServerLoad& l : loads) {
      if (l.routable) routable.push_back(l.server);
    }
    if (routable.empty()) return -1;
    if (routable.size() == 1) return routable[0];
    const std::uint64_t draw = draws_.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t r1 = splitmix64(options_.seed ^ (2 * draw));
    const std::uint64_t r2 = splitmix64(options_.seed ^ (2 * draw + 1));
    const int a = routable[r1 % routable.size()];
    int b = routable[r2 % routable.size()];
    if (a == b) b = routable[(r2 + 1) % routable.size()];
    return loads[b].backlog_macs < loads[a].backlog_macs ? b : a;
  }

 private:
  RouterOptions options_;
  std::atomic<std::uint64_t> draws_{0};
};

// --- "affinity": hash home with load-aware spill to p2c --------------------
class AffinityRouter final : public Router {
 public:
  explicit AffinityRouter(const RouterOptions& options)
      : hash_(options), p2c_(options), spill_factor_(options.spill_factor) {
    AF_CHECK(spill_factor_ > 0.0,
             "router spill_factor must be positive, got " << spill_factor_);
  }

  const std::string& name() const override {
    static const std::string kName = "affinity";
    return kName;
  }

  int place(std::uint64_t key, const std::vector<ServerLoad>& loads) override {
    const int home = hash_.place(key, loads);
    if (home < 0) return -1;
    // Spill when the home is drowning relative to its routable peers: the
    // fusion-locality win is worth a longer queue, but not an unbounded one.
    std::int64_t total = 0;
    int routable = 0;
    for (const ServerLoad& l : loads) {
      if (!l.routable) continue;
      total += l.backlog_macs;
      ++routable;
    }
    if (routable > 1) {
      const double mean =
          static_cast<double>(total) / static_cast<double>(routable);
      if (mean > 0.0 &&
          static_cast<double>(loads[home].backlog_macs) > spill_factor_ * mean) {
        const int spill = p2c_.place(key, loads);
        if (spill >= 0) return spill;
      }
    }
    return home;
  }

 private:
  HashRouter hash_;
  P2cRouter p2c_;
  double spill_factor_;
};

struct RouterEntry {
  const char* name;
  const char* description;
  std::unique_ptr<Router> (*create)(const RouterOptions&);
};

// Definition order is presentation order (engine_info --routers, README).
const RouterEntry kRegistry[] = {
    {"affinity",
     "consistent-hash home per tenant key, spilling to p2c when the home's "
     "backlog exceeds spill_factor x the routable mean (default)",
     [](const RouterOptions& o) -> std::unique_ptr<Router> {
       return std::make_unique<AffinityRouter>(o);
     }},
    {"hash",
     "consistent hashing over a ring of virtual nodes -- tenant/model "
     "locality; ~1/N keys move when a server leaves",
     [](const RouterOptions& o) -> std::unique_ptr<Router> {
       return std::make_unique<HashRouter>(o);
     }},
    {"p2c",
     "power of two choices: two seeded draws among routable servers, lower "
     "backlog_macs wins -- pure load balance, no locality",
     [](const RouterOptions& o) -> std::unique_ptr<Router> {
       return std::make_unique<P2cRouter>(o);
     }},
};

}  // namespace

std::uint64_t affinity_key(const std::string& tenant) {
  // FNV-1a over the tenant bytes, finalized through splitmix64 — stable
  // across runs and platforms (std::hash is neither).
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : tenant) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return splitmix64(h);
}

std::unique_ptr<Router> make_router(const std::string& name,
                                    const RouterOptions& options) {
  for (const RouterEntry& entry : kRegistry) {
    if (name == entry.name) return entry.create(options);
  }
  AF_CHECK(false, "unknown router \"" << name << "\"; registered routers: "
                                      << registered_router_list());
  return nullptr;
}

std::vector<std::string> registered_routers() {
  std::vector<std::string> names;
  for (const RouterEntry& entry : kRegistry) names.emplace_back(entry.name);
  return names;
}

std::string router_description(const std::string& name) {
  for (const RouterEntry& entry : kRegistry) {
    if (name == entry.name) return entry.description;
  }
  AF_CHECK(false, "unknown router \"" << name << "\"; registered routers: "
                                      << registered_router_list());
  return "";
}

std::string registered_router_list() {
  std::ostringstream out;
  bool first = true;
  for (const RouterEntry& entry : kRegistry) {
    if (!first) out << ", ";
    out << '"' << entry.name << '"';
    first = false;
  }
  return out.str();
}

}  // namespace af::fleet
