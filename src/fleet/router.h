// Placement policies of the fleet layer: which server a request lands on.
//
// A Router sees only ServerLoad records — slot index, routability (healthy
// AND admitting), and the server's queued simulated work in MACs (the
// dispatcher's lock-free backlog-cost mirror, serve::Server::
// backlog_cost_macs) — never the servers themselves, so every policy is a
// pure function of (key, loads) plus its own seeded state and can be
// unit-tested without a single server thread (tests/fleet_test.cpp).
//
// Registry, mirroring the engine/dispatcher/overload-policy name
// contracts (the README's router table must list exactly these; CI diffs
// the two):
//   "hash"      consistent hashing on the affinity key over a ring of
//               virtual nodes — tenant/model locality for fusion: the same
//               tenant's weight matrices keep landing on the same server,
//               and when one server leaves only ~1/N of keys move (pinned
//               by tests/fleet_test.cpp).
//   "p2c"       power-of-two-choices: two seeded draws among routable
//               servers, lower backlog_macs wins — near-optimal load
//               balance with two loads read per placement.
//   "affinity"  the default: consistent-hash home first, spilling to p2c
//               when the home is unroutable or its backlog exceeds
//               spill_factor x the routable mean — locality until the home
//               is the bottleneck, balance after.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace af::fleet {

// One server slot as the router sees it.  `routable` folds health and
// admission together: quarantined (unhealthy), draining, dead or
// shut-down slots are all simply not placement candidates.
struct ServerLoad {
  int server = -1;
  bool routable = false;
  std::int64_t backlog_macs = 0;
};

struct RouterOptions {
  // Virtual nodes per server slot on the consistent-hash ring.  More
  // replicas flatten the key distribution; 64 keeps the ring a few KB.
  int replicas = 64;
  // Seeds the ring point hashes and the p2c draws; placement is a
  // deterministic replay for a fixed seed and load sequence.
  std::uint64_t seed = 0x8096c1f7ab5a3d21ULL;
  // "affinity" only: spill off the hash home when its backlog exceeds
  // spill_factor x the mean routable backlog (and that mean is non-zero).
  double spill_factor = 2.0;
};

class Router {
 public:
  virtual ~Router() = default;

  virtual const std::string& name() const = 0;

  // Picks the slot for `key` given this instant's loads, or -1 when no
  // slot is routable.  Never returns an unroutable slot (pinned by
  // tests/fleet_test.cpp across every registered policy).
  virtual int place(std::uint64_t key, const std::vector<ServerLoad>& loads) = 0;
};

// The affinity key of a tenant (and optionally the weight matrix it is
// submitting against): requests sharing a key hash to the same home
// server, so same-weight fusion keeps working across a fleet.
std::uint64_t affinity_key(const std::string& tenant);

// String-keyed factory — the one place router names resolve.  Like
// engine::make, the names returned by registered_routers() are a public
// contract: the README's router table must list exactly these (CI diffs
// the two).
std::unique_ptr<Router> make_router(const std::string& name,
                                    const RouterOptions& options = {});
std::vector<std::string> registered_routers();
// One-line human description per router (the README matrix source).
std::string router_description(const std::string& name);
// The registry keys quoted and comma-joined — the one formatter behind
// unknown-router error messages (mirrors engine::registered_backend_list).
std::string registered_router_list();

}  // namespace af::fleet
