// Fault-tolerant fleet: N serve::Servers behind a health-checked router.
//
//   clients ──submit──▶ Fleet ──place──▶ serve::Server[0..N)   (possibly
//                        │ (Router: "affinity" | "hash" | "p2c")  heterogeneous)
//                        ├─ prober thread: tiny cost-only probes per server;
//                        │  fail/ok streaks drive healthy <-> unhealthy
//                        ├─ per-server collector thread: waits the server
//                        │  futures, resolves tickets, fails over, hedges
//                        └─ failpoints: kill_server (crash), stall_server,
//                           drain_server (rolling restart), restart_server
//
// THE headline contract, pinned by the chaos stress gate in
// tests/fleet_test.cpp: no submitted request is ever lost or double-served,
// even when whole servers die mid-flight.  Every submit_gemm future
// resolves exactly once — with a result bit-identical to reference_gemm,
// or a typed af::Error.  The mechanism is a Ticket per submission:
//
//   * The ticket owns copies of the operands, so it can be re-submitted to
//     any server at any time.
//   * Resolution is a single atomic CAS on the ticket: whichever server
//     future lands first (original, failover re-admit, or hedge duplicate)
//     wins; the losers are counted (FleetStats::duplicate_results) and
//     dropped.  FleetStats::resolve_double_sets stays 0 by construction.
//   * Failover rides serve::Server::quiesce()'s guarantee: a request
//     failed with kUnavailable was NEVER executed, so re-admitting it on a
//     survivor cannot double-serve.  kEngineFault after the server's own
//     retry budget and kShutdown races are equally safe — no result was
//     delivered.  Deadline and failover budgets travel with the ticket.
//   * Hedging (hedge_ms > 0): when a ticket has been pending longer than
//     hedge_ms and is still unresolved — e.g. stuck behind a stalled
//     server — the collector submits a duplicate to a DIFFERENT server.
//     First result wins; the loser is cancelled by the CAS and counted.
//
// Health: a prober thread runs tiny cost-only GEMMs against every
// routable server each probe_interval_ms; unhealthy_after consecutive
// probe failures (timeout or error) mark the server unhealthy — pulled
// from routing while its in-flight work continues — and healthy_after
// consecutive successes re-admit it.  kill/drain transitions are
// explicit: kDead servers never rejoin until restart_server.
//
// Overload composes across the fleet: a server rejecting with kOverloaded
// just redirects placement to the next-best routable server; only when
// EVERY routable server rejects does the fleet-level policy fire —
// "reject" fails the submit, "block" retries placement with backoff until
// space frees, "degrade" re-places the request cost-only.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "arch/config.h"
#include "fleet/router.h"
#include "serve/server.h"

namespace af::fleet {

// One server slot's build recipe.  Fleets may be heterogeneous: different
// array geometries, backends, dispatchers, autoscale and overload policies
// per slot.
struct FleetServerSpec {
  arch::ArrayConfig config = arch::ArrayConfig::square(16);
  serve::ServerOptions options;
};

struct FleetOptions {
  // Placement policy (fleet::make_router registry key).
  std::string router = "affinity";
  RouterOptions router_options;

  // Health probing.  probe_interval_ms <= 0 disables the prober thread
  // entirely (health then only changes via kill/drain/restart).
  double probe_interval_ms = 0.0;
  // Wall-clock budget of one probe; a probe that neither completes nor
  // fails within this window counts as a failure (how a stalled server is
  // detected: its queue accepts the probe but no worker ever serves it).
  double probe_timeout_ms = 50.0;
  int unhealthy_after = 3;  // consecutive probe failures -> unroutable
  int healthy_after = 2;    // consecutive probe successes -> routable again

  // Failover budget per ticket: how many times a never-executed request
  // (kUnavailable / kShutdown / post-retry kEngineFault) may be re-placed
  // on a surviving server before its error is delivered to the client.
  int max_failovers = 3;
  // Hedged submits: a ticket still unresolved hedge_ms after submission —
  // or within hedge_ms of its deadline — gets a duplicate on a different
  // server (first result wins, loser cancelled by the resolution CAS and
  // counted).  0 disables hedging.
  double hedge_ms = 0.0;
  // Fleet-level overload policy (serve::parse_overload_policy registry
  // key), applied only when EVERY routable server rejected the placement:
  // "reject" throws kOverloaded, "block" retries placement with backoff,
  // "degrade" re-places the request cost-only.
  std::string overload_policy = "reject";
  // Backoff between fleet-level "block" placement retries.
  double block_retry_ms = 0.5;
};

enum class ServerHealth { kHealthy, kUnhealthy, kDraining, kDead };
std::string to_string(ServerHealth health);

// Per-tenant fleet books: every submission lands in ok or err exactly once.
struct TenantBook {
  std::int64_t submitted = 0;
  std::int64_t ok = 0;
  std::int64_t err = 0;
};

struct FleetServerSummary {
  int server = -1;
  ServerHealth health = ServerHealth::kHealthy;
  std::int64_t placed = 0;   // tickets whose (re)submissions landed here
  std::int64_t probe_failures = 0;
  serve::ServerStats stats;  // empty-ish for slots currently dead
};

struct FleetStats {
  std::string router;
  std::int64_t submitted = 0;     // tickets accepted by Fleet::submit_*
  std::int64_t resolved_ok = 0;   // tickets resolved with a value
  std::int64_t resolved_err = 0;  // tickets resolved with a typed error
  std::int64_t failovers = 0;     // re-placements of never-executed work
  std::int64_t hedges = 0;        // duplicate submissions issued
  std::int64_t hedge_wins = 0;    // tickets whose hedge landed first
  std::int64_t duplicate_results = 0;  // losing results dropped by the CAS
  std::int64_t rerouted_overload = 0;  // placements diverted off a rejecting server
  std::int64_t degraded = 0;      // fleet-level degrade re-placements
  std::int64_t probes_sent = 0;
  std::int64_t probe_failures = 0;
  std::int64_t unhealthy_transitions = 0;  // healthy -> unhealthy flips
  std::int64_t recoveries = 0;             // unhealthy -> healthy flips
  // Tickets resolved more than once — a broken-contract bug; == 0 always.
  std::int64_t resolve_double_sets = 0;
  std::vector<FleetServerSummary> servers;
  std::map<std::string, TenantBook> tenants;

  // Book-balance identity of the no-loss contract:
  // submitted == resolved_ok + resolved_err once the fleet is drained.
  std::int64_t resolved() const { return resolved_ok + resolved_err; }
};

class Fleet {
 public:
  // Builds one serve::Server per spec.  At least one spec is required.
  explicit Fleet(std::vector<FleetServerSpec> specs, FleetOptions options = {});
  ~Fleet();  // shutdown()

  Fleet(const Fleet&) = delete;
  Fleet& operator=(const Fleet&) = delete;

  // Routed GEMM submission (see serve::Server::submit_gemm for the
  // request semantics).  The fleet COPIES `a` and keeps `b` alive in the
  // ticket so the request can fail over or hedge to any server.  Throws
  // af::Error(kUnavailable) when no server is routable, kOverloaded when
  // every routable server rejected under the "reject" fleet policy, and
  // kShutdown after shutdown().
  std::future<serve::GemmResult> submit_gemm(
      const std::string& tenant, gemm::Mat32 a,
      std::shared_ptr<const gemm::Mat32> b,
      const serve::SubmitOptions& submit = {});

  // Routed whole-model inference: the model is placed on ONE server (its
  // layer slices then shard across that server's pool).  Fails over like
  // GEMMs when the serving server dies before executing it; inference is
  // never hedged (slices of a join must not race two servers).
  std::future<serve::InferenceResult> submit_inference(
      const std::string& tenant, std::shared_ptr<const nn::Model> model,
      const serve::SubmitOptions& submit = {});

  // --- failpoints & lifecycle (the chaos toolkit's server-scoped hooks) ---
  // Simulated crash: marks the slot kDead, quiesces the server (queued
  // work fails kUnavailable and fails over to survivors).  Idempotent.
  void kill_server(int server);
  // Simulated stall: the server's shard workers stop picking up batches;
  // queued tickets eventually hedge (hedge_ms) or the prober marks the
  // slot unhealthy.  stall_server(i, false) resumes.
  void stall_server(int server, bool stalled = true);
  // Graceful no-loss drain for a rolling restart: the slot stops taking
  // new placements (kDraining), waits up to flush_timeout_ms for its
  // pending tickets to resolve, then quiesces the remainder (which fail
  // over) and marks the slot kDead.
  void drain_server(int server, double flush_timeout_ms = 1e3);
  // Rebuilds a kDead slot's server from its spec and marks it healthy —
  // the second half of a rolling restart.
  void restart_server(int server);

  int num_servers() const { return static_cast<int>(nodes_.size()); }
  ServerHealth health(int server) const;
  const std::string& router() const { return router_->name(); }

  FleetStats stats() const;

  // Closes admission, shuts every live server down gracefully (their
  // queues drain), collects every outstanding ticket, joins all fleet
  // threads.  Idempotent; the destructor calls it.
  void shutdown();

 private:
  struct GemmTicket;
  struct InferTicket;
  struct Pending;
  struct Node;

  // Snapshot of the loads the router places over.  `exclude` (>= 0) is
  // forced unroutable — the failover path's "not the server that just
  // died".
  std::vector<ServerLoad> snapshot_loads(int exclude = -1) const;

  // Why a placement attempt was made.  Threaded down to submit_to so the
  // matching stat (failovers_, hedges_) is bumped BEFORE the pending
  // entry is published: once published, another collector can resolve the
  // ticket and wake a stats() reader who must already see the counter.
  enum class PlaceKind { kInitial, kFailover, kHedge };

  // Places and submits one GEMM attempt: router choice first, then every
  // other routable server if the choice rejects with kOverloaded.
  // Returns the slot it landed on, or -1 with `overloaded_everywhere`
  // set when every routable server rejected (nothing submitted), or -1
  // with it clear when nothing was routable at all.
  int try_place_gemm(const std::shared_ptr<GemmTicket>& ticket, int exclude,
                     PlaceKind kind, bool* overloaded_everywhere);
  int try_place_infer(const std::shared_ptr<InferTicket>& ticket, int exclude,
                      PlaceKind kind, bool* overloaded_everywhere);

  // Submits the ticket to `server` and enqueues the pending entry on that
  // node's collector.  Throws what the server's submit throws.
  void submit_to(int server, const std::shared_ptr<GemmTicket>& ticket,
                 PlaceKind kind);
  void submit_to(int server, const std::shared_ptr<InferTicket>& ticket,
                 PlaceKind kind);

  // One node's collector loop: polls pending futures, resolves tickets
  // (CAS), fails over never-executed work, issues hedges.
  void collector_loop(Node& node);
  void handle_gemm_ready(Node& node, Pending& entry);
  void handle_infer_ready(Node& node, Pending& entry);
  // Re-places a never-executed ticket on a survivor; resolves the ticket
  // with `error` when budget/deadline/routability forbid it.
  void failover_gemm(const std::shared_ptr<GemmTicket>& ticket, int from,
                     std::exception_ptr error);
  void failover_infer(const std::shared_ptr<InferTicket>& ticket, int from,
                      std::exception_ptr error);
  // Submits the hedge duplicate of a slow ticket to a server != `from`
  // (the collector's hedge scan already claimed ticket->hedged).
  void issue_hedge(const std::shared_ptr<GemmTicket>& ticket, int from);

  void prober_loop();
  // True when the error held by `eptr` means the request was never
  // executed and no result was delivered — safe to re-admit elsewhere.
  static bool failover_safe(const std::exception_ptr& eptr);

  // Ticket resolution (the CAS).  Winner updates fleet + tenant books.
  void resolve_ok(const std::shared_ptr<GemmTicket>& ticket,
                  serve::GemmResult result, bool from_hedge);
  void resolve_err(const std::shared_ptr<GemmTicket>& ticket,
                   std::exception_ptr error);
  void resolve_ok(const std::shared_ptr<InferTicket>& ticket,
                  serve::InferenceResult result);
  void resolve_err(const std::shared_ptr<InferTicket>& ticket,
                   std::exception_ptr error);
  void book_resolution(const std::string& tenant, bool ok);

  std::vector<FleetServerSpec> specs_;
  FleetOptions options_;
  serve::OverloadPolicy overload_policy_ = serve::OverloadPolicy::kReject;
  std::unique_ptr<Router> router_;
  mutable std::mutex router_mutex_;  // Router::place is not thread-safe
  std::vector<std::unique_ptr<Node>> nodes_;
  std::thread prober_;
  std::mutex prober_mutex_;
  std::condition_variable prober_cv_;

  std::atomic<std::uint64_t> next_ticket_{0};
  std::atomic<std::int64_t> submitted_{0};
  std::atomic<std::int64_t> resolved_ok_{0};
  std::atomic<std::int64_t> resolved_err_{0};
  std::atomic<std::int64_t> failovers_{0};
  std::atomic<std::int64_t> hedges_{0};
  std::atomic<std::int64_t> hedge_wins_{0};
  std::atomic<std::int64_t> duplicate_results_{0};
  std::atomic<std::int64_t> rerouted_overload_{0};
  std::atomic<std::int64_t> degraded_{0};
  std::atomic<std::int64_t> probes_sent_{0};
  std::atomic<std::int64_t> probe_failures_{0};
  std::atomic<std::int64_t> unhealthy_transitions_{0};
  std::atomic<std::int64_t> recoveries_{0};
  std::atomic<std::int64_t> resolve_double_sets_{0};
  mutable std::mutex tenants_mutex_;
  std::map<std::string, TenantBook> tenant_books_;

  std::atomic<bool> admission_closed_{false};
  std::mutex shutdown_mutex_;
  std::atomic<bool> shut_down_{false};
};

}  // namespace af::fleet
