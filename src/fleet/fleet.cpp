#include "fleet/fleet.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "util/status.h"

namespace af::fleet {
namespace {

using serve::Clock;

[[noreturn]] void throw_code(ErrorCode code, const std::string& message) {
  throw Error(message, code);
}

double ms_until(Clock::time_point when, Clock::time_point now) {
  return std::chrono::duration<double, std::milli>(when - now).count();
}

Clock::duration from_ms(double ms) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::milli>(ms));
}

}  // namespace

std::string to_string(ServerHealth health) {
  switch (health) {
    case ServerHealth::kHealthy:
      return "healthy";
    case ServerHealth::kUnhealthy:
      return "unhealthy";
    case ServerHealth::kDraining:
      return "draining";
    case ServerHealth::kDead:
      return "dead";
  }
  return "unknown";
}

// One GEMM submission's fleet-side state.  Owns operand copies so any
// server can serve it at any time; `resolved` is the exactly-once CAS.
struct Fleet::GemmTicket {
  std::uint64_t id = 0;
  std::string tenant;
  gemm::Mat32 a;
  std::shared_ptr<const gemm::Mat32> b;
  serve::SubmitOptions submit;  // deadline_ms recomputed per attempt
  Clock::time_point enqueue;
  Clock::time_point deadline = Clock::time_point::max();
  std::atomic<bool> resolved{false};
  std::atomic<bool> hedged{false};
  std::atomic<int> failovers{0};
  std::promise<serve::GemmResult> promise;
};

struct Fleet::InferTicket {
  std::uint64_t id = 0;
  std::string tenant;
  std::shared_ptr<const nn::Model> model;
  serve::SubmitOptions submit;
  Clock::time_point enqueue;
  Clock::time_point deadline = Clock::time_point::max();
  std::atomic<bool> resolved{false};
  std::atomic<int> failovers{0};
  std::promise<serve::InferenceResult> promise;
};

// One (ticket, server future) pair awaiting collection.  Exactly one of
// gemm/infer is set; `hedge` marks the duplicate half of a hedged pair.
struct Fleet::Pending {
  std::shared_ptr<GemmTicket> gemm;
  std::shared_ptr<InferTicket> infer;
  std::future<serve::GemmResult> gemm_future;
  std::future<serve::InferenceResult> infer_future;
  bool hedge = false;
};

struct Fleet::Node {
  int index = -1;
  // Replaced wholesale by restart_server; submit paths copy the
  // shared_ptr under `mutex` and call the server unlocked.
  std::shared_ptr<serve::Server> server;
  ServerHealth health = ServerHealth::kHealthy;
  int fail_streak = 0;
  int ok_streak = 0;
  std::int64_t placed = 0;
  std::int64_t probe_failures = 0;
  std::deque<Pending> pending;
  mutable std::mutex mutex;  // guards everything above (except index)
  std::condition_variable cv;
  std::thread collector;
  std::atomic<bool> stop{false};
};

Fleet::Fleet(std::vector<FleetServerSpec> specs, FleetOptions options)
    : specs_(std::move(specs)), options_(std::move(options)) {
  AF_CHECK(!specs_.empty(), "a fleet needs at least one server spec");
  AF_CHECK(options_.max_failovers >= 0,
           "max_failovers must be non-negative, got " << options_.max_failovers);
  AF_CHECK(options_.hedge_ms >= 0.0,
           "hedge_ms must be non-negative, got " << options_.hedge_ms);
  AF_CHECK(options_.probe_timeout_ms > 0.0,
           "probe_timeout_ms must be positive, got " << options_.probe_timeout_ms);
  AF_CHECK(options_.unhealthy_after >= 1 && options_.healthy_after >= 1,
           "probe streak thresholds must be at least 1");
  AF_CHECK(options_.block_retry_ms > 0.0,
           "block_retry_ms must be positive, got " << options_.block_retry_ms);
  overload_policy_ = serve::parse_overload_policy(options_.overload_policy);
  router_ = make_router(options_.router, options_.router_options);

  nodes_.reserve(specs_.size());
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    auto node = std::make_unique<Node>();
    node->index = static_cast<int>(i);
    node->server =
        std::make_shared<serve::Server>(specs_[i].config, specs_[i].options);
    nodes_.push_back(std::move(node));
  }
  for (auto& node : nodes_) {
    Node* raw = node.get();
    raw->collector = std::thread([this, raw] { collector_loop(*raw); });
  }
  if (options_.probe_interval_ms > 0.0) {
    prober_ = std::thread([this] { prober_loop(); });
  }
}

Fleet::~Fleet() { shutdown(); }

void Fleet::shutdown() {
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mutex_);
  if (shut_down_.exchange(true)) return;
  admission_closed_.store(true);
  {
    std::lock_guard<std::mutex> lock(prober_mutex_);
  }
  prober_cv_.notify_all();
  if (prober_.joinable()) prober_.join();
  // Graceful half: every live server drains and SERVES its queue, so the
  // collectors resolve the outstanding tickets with values, not failovers
  // (admission is closed, so no new pending entries appear anywhere).
  for (auto& node : nodes_) {
    std::shared_ptr<serve::Server> server;
    {
      std::lock_guard<std::mutex> lock(node->mutex);
      server = node->server;
    }
    if (server) server->shutdown();
  }
  for (auto& node : nodes_) {
    node->stop.store(true);
    node->cv.notify_all();
  }
  for (auto& node : nodes_) {
    if (node->collector.joinable()) node->collector.join();
  }
}

ServerHealth Fleet::health(int server) const {
  AF_CHECK(server >= 0 && server < num_servers(),
           "server index " << server << " out of range [0, " << num_servers()
                           << ")");
  std::lock_guard<std::mutex> lock(nodes_[server]->mutex);
  return nodes_[server]->health;
}

// --- placement -------------------------------------------------------------

std::vector<ServerLoad> Fleet::snapshot_loads(int exclude) const {
  std::vector<ServerLoad> loads(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    Node& node = *nodes_[i];
    std::lock_guard<std::mutex> lock(node.mutex);
    loads[i].server = static_cast<int>(i);
    const bool routable = node.health == ServerHealth::kHealthy &&
                          node.server != nullptr &&
                          static_cast<int>(i) != exclude &&
                          !admission_closed_.load();
    loads[i].routable = routable;
    loads[i].backlog_macs = routable ? node.server->backlog_cost_macs() : 0;
  }
  return loads;
}

void Fleet::submit_to(int server, const std::shared_ptr<GemmTicket>& ticket,
                      PlaceKind kind) {
  Node& node = *nodes_[server];
  std::shared_ptr<serve::Server> srv;
  {
    std::lock_guard<std::mutex> lock(node.mutex);
    if (node.health != ServerHealth::kHealthy || !node.server) {
      throw_code(ErrorCode::kUnavailable,
                 (detail::MessageBuilder() << "server " << server << " is "
                                           << to_string(node.health)).str());
    }
    srv = node.server;
  }
  serve::SubmitOptions submit = ticket->submit;
  // Per-server admission never blocks: a full queue throws kOverloaded and
  // placement moves on; the fleet-level "block" policy owns the waiting.
  submit.admission_timeout_ms = 0.0;
  if (ticket->deadline != Clock::time_point::max()) {
    const double remaining = ms_until(ticket->deadline, Clock::now());
    if (remaining <= 0.0) {
      throw_code(ErrorCode::kDeadlineExceeded,
                 "deadline exhausted before placement");
    }
    submit.deadline_ms = remaining;
  }
  std::future<serve::GemmResult> future =
      srv->submit_gemm(ticket->tenant, ticket->a, ticket->b, submit);
  // Admission succeeded: count the attempt BEFORE publishing the pending
  // entry — once published, another node's collector can resolve the
  // ticket and a stats() reader woken by that must already see this.
  if (kind == PlaceKind::kFailover) {
    failovers_.fetch_add(1, std::memory_order_relaxed);
  } else if (kind == PlaceKind::kHedge) {
    hedges_.fetch_add(1, std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> lock(node.mutex);
    node.placed += 1;
    Pending entry;
    entry.gemm = ticket;
    entry.gemm_future = std::move(future);
    entry.hedge = kind == PlaceKind::kHedge;
    node.pending.push_back(std::move(entry));
  }
  node.cv.notify_all();
}

void Fleet::submit_to(int server, const std::shared_ptr<InferTicket>& ticket,
                      PlaceKind kind) {
  Node& node = *nodes_[server];
  std::shared_ptr<serve::Server> srv;
  {
    std::lock_guard<std::mutex> lock(node.mutex);
    if (node.health != ServerHealth::kHealthy || !node.server) {
      throw_code(ErrorCode::kUnavailable,
                 (detail::MessageBuilder() << "server " << server << " is "
                                           << to_string(node.health)).str());
    }
    srv = node.server;
  }
  serve::SubmitOptions submit = ticket->submit;
  submit.admission_timeout_ms = 0.0;
  if (ticket->deadline != Clock::time_point::max()) {
    const double remaining = ms_until(ticket->deadline, Clock::now());
    if (remaining <= 0.0) {
      throw_code(ErrorCode::kDeadlineExceeded,
                 "deadline exhausted before placement");
    }
    submit.deadline_ms = remaining;
  }
  std::future<serve::InferenceResult> future =
      srv->submit_inference(ticket->tenant, ticket->model, submit);
  // Same ordering as the GEMM path: count before publishing.
  if (kind == PlaceKind::kFailover) {
    failovers_.fetch_add(1, std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> lock(node.mutex);
    node.placed += 1;
    Pending entry;
    entry.infer = ticket;
    entry.infer_future = std::move(future);
    node.pending.push_back(std::move(entry));
  }
  node.cv.notify_all();
}

namespace {

// Candidate order behind the router's first choice: every other routable
// slot, least-loaded first — the spill sequence when servers reject.
std::vector<int> spill_candidates(const std::vector<ServerLoad>& loads,
                                  int first) {
  std::vector<int> rest;
  for (const ServerLoad& load : loads) {
    if (load.routable && load.server != first) rest.push_back(load.server);
  }
  std::sort(rest.begin(), rest.end(), [&loads](int a, int b) {
    if (loads[a].backlog_macs != loads[b].backlog_macs) {
      return loads[a].backlog_macs < loads[b].backlog_macs;
    }
    return a < b;
  });
  return rest;
}

}  // namespace

int Fleet::try_place_gemm(const std::shared_ptr<GemmTicket>& ticket,
                          int exclude, PlaceKind kind,
                          bool* overloaded_everywhere) {
  *overloaded_everywhere = false;
  const std::vector<ServerLoad> loads = snapshot_loads(exclude);
  int first = -1;
  {
    std::lock_guard<std::mutex> lock(router_mutex_);
    first = router_->place(affinity_key(ticket->tenant), loads);
  }
  if (first < 0) return -1;
  std::vector<int> candidates{first};
  for (const int slot : spill_candidates(loads, first)) {
    candidates.push_back(slot);
  }
  int overload_rejections = 0;
  int other_failures = 0;
  for (const int slot : candidates) {
    try {
      submit_to(slot, ticket, kind);
      if (overload_rejections > 0) {
        rerouted_overload_.fetch_add(1, std::memory_order_relaxed);
      }
      return slot;
    } catch (const Error& e) {
      if (e.code() == ErrorCode::kDeadlineExceeded) throw;
      if (e.code() == ErrorCode::kOverloaded) {
        ++overload_rejections;
      } else {
        // kUnavailable / kShutdown race: the slot died between the load
        // snapshot and the submit — simply not a candidate any more.
        ++other_failures;
      }
    }
  }
  *overloaded_everywhere = overload_rejections > 0 && other_failures == 0;
  return -1;
}

int Fleet::try_place_infer(const std::shared_ptr<InferTicket>& ticket,
                           int exclude, PlaceKind kind,
                           bool* overloaded_everywhere) {
  *overloaded_everywhere = false;
  const std::vector<ServerLoad> loads = snapshot_loads(exclude);
  int first = -1;
  {
    std::lock_guard<std::mutex> lock(router_mutex_);
    first = router_->place(affinity_key(ticket->tenant), loads);
  }
  if (first < 0) return -1;
  std::vector<int> candidates{first};
  for (const int slot : spill_candidates(loads, first)) {
    candidates.push_back(slot);
  }
  int overload_rejections = 0;
  int other_failures = 0;
  for (const int slot : candidates) {
    try {
      submit_to(slot, ticket, kind);
      if (overload_rejections > 0) {
        rerouted_overload_.fetch_add(1, std::memory_order_relaxed);
      }
      return slot;
    } catch (const Error& e) {
      if (e.code() == ErrorCode::kDeadlineExceeded) throw;
      if (e.code() == ErrorCode::kOverloaded) {
        ++overload_rejections;
      } else {
        ++other_failures;
      }
    }
  }
  *overloaded_everywhere = overload_rejections > 0 && other_failures == 0;
  return -1;
}

// --- client entry points ---------------------------------------------------

std::future<serve::GemmResult> Fleet::submit_gemm(
    const std::string& tenant, gemm::Mat32 a,
    std::shared_ptr<const gemm::Mat32> b, const serve::SubmitOptions& submit) {
  AF_CHECK(b != nullptr, "submit_gemm needs a weight matrix");
  if (admission_closed_.load()) {
    throw_code(ErrorCode::kShutdown, "submit_gemm on a shut-down fleet");
  }
  auto ticket = std::make_shared<GemmTicket>();
  ticket->id = next_ticket_.fetch_add(1);
  ticket->tenant = tenant;
  ticket->a = std::move(a);
  ticket->b = std::move(b);
  ticket->submit = submit;
  ticket->enqueue = Clock::now();
  if (submit.deadline_ms > 0.0) {
    ticket->deadline = ticket->enqueue + from_ms(submit.deadline_ms);
  }
  std::future<serve::GemmResult> future = ticket->promise.get_future();

  submitted_.fetch_add(1);
  {
    std::lock_guard<std::mutex> lock(tenants_mutex_);
    tenant_books_[tenant].submitted += 1;
  }
  const Clock::time_point admission_deadline =
      submit.admission_timeout_ms >= 0.0
          ? ticket->enqueue + from_ms(submit.admission_timeout_ms)
          : Clock::time_point::max();
  bool degraded_already = false;
  try {
    while (true) {
      bool overloaded_everywhere = false;
      const int slot =
          try_place_gemm(ticket, /*exclude=*/-1, PlaceKind::kInitial,
                         &overloaded_everywhere);
      if (slot >= 0) return future;
      if (!overloaded_everywhere) {
        throw_code(ErrorCode::kUnavailable, "no routable server in the fleet");
      }
      switch (overload_policy_) {
        case serve::OverloadPolicy::kReject:
          throw_code(ErrorCode::kOverloaded,
                     "every routable server rejected the request");
        case serve::OverloadPolicy::kDegrade:
          // Shed fidelity, not the request: one cost-only retry.
          if (degraded_already) {
            throw_code(ErrorCode::kOverloaded,
                       "every routable server rejected, even cost-only");
          }
          ticket->submit.want_output = false;
          ticket->submit.backend.clear();
          degraded_already = true;
          degraded_.fetch_add(1, std::memory_order_relaxed);
          break;
        case serve::OverloadPolicy::kBlock:
          if (Clock::now() >= admission_deadline) {
            throw_code(ErrorCode::kOverloaded,
                       "fleet admission timed out under overload");
          }
          if (ticket->deadline != Clock::time_point::max() &&
              Clock::now() >= ticket->deadline) {
            throw_code(ErrorCode::kDeadlineExceeded,
                       "deadline exhausted while blocked on admission");
          }
          if (admission_closed_.load()) {
            throw_code(ErrorCode::kShutdown,
                       "fleet shut down while blocked on admission");
          }
          std::this_thread::sleep_for(from_ms(options_.block_retry_ms));
          break;
      }
    }
  } catch (...) {
    // Nothing was admitted: unwind the books so a thrown submit is not a
    // permanently dangling "submitted" entry.
    submitted_.fetch_sub(1);
    {
      std::lock_guard<std::mutex> lock(tenants_mutex_);
      tenant_books_[tenant].submitted -= 1;
    }
    throw;
  }
}

std::future<serve::InferenceResult> Fleet::submit_inference(
    const std::string& tenant, std::shared_ptr<const nn::Model> model,
    const serve::SubmitOptions& submit) {
  AF_CHECK(model != nullptr, "submit_inference needs a model");
  if (admission_closed_.load()) {
    throw_code(ErrorCode::kShutdown, "submit_inference on a shut-down fleet");
  }
  auto ticket = std::make_shared<InferTicket>();
  ticket->id = next_ticket_.fetch_add(1);
  ticket->tenant = tenant;
  ticket->model = std::move(model);
  ticket->submit = submit;
  ticket->enqueue = Clock::now();
  if (submit.deadline_ms > 0.0) {
    ticket->deadline = ticket->enqueue + from_ms(submit.deadline_ms);
  }
  std::future<serve::InferenceResult> future = ticket->promise.get_future();

  submitted_.fetch_add(1);
  {
    std::lock_guard<std::mutex> lock(tenants_mutex_);
    tenant_books_[tenant].submitted += 1;
  }
  const Clock::time_point admission_deadline =
      submit.admission_timeout_ms >= 0.0
          ? ticket->enqueue + from_ms(submit.admission_timeout_ms)
          : Clock::time_point::max();
  try {
    while (true) {
      bool overloaded_everywhere = false;
      const int slot =
          try_place_infer(ticket, /*exclude=*/-1, PlaceKind::kInitial,
                          &overloaded_everywhere);
      if (slot >= 0) return future;
      if (!overloaded_everywhere) {
        throw_code(ErrorCode::kUnavailable, "no routable server in the fleet");
      }
      // Inference has no cost-only fallback; "degrade" composes as block.
      if (overload_policy_ == serve::OverloadPolicy::kReject) {
        throw_code(ErrorCode::kOverloaded,
                   "every routable server rejected the inference");
      }
      if (Clock::now() >= admission_deadline) {
        throw_code(ErrorCode::kOverloaded,
                   "fleet admission timed out under overload");
      }
      if (ticket->deadline != Clock::time_point::max() &&
          Clock::now() >= ticket->deadline) {
        throw_code(ErrorCode::kDeadlineExceeded,
                   "deadline exhausted while blocked on admission");
      }
      if (admission_closed_.load()) {
        throw_code(ErrorCode::kShutdown,
                   "fleet shut down while blocked on admission");
      }
      std::this_thread::sleep_for(from_ms(options_.block_retry_ms));
    }
  } catch (...) {
    submitted_.fetch_sub(1);
    {
      std::lock_guard<std::mutex> lock(tenants_mutex_);
      tenant_books_[tenant].submitted -= 1;
    }
    throw;
  }
}

// --- collection: resolve, fail over, hedge ---------------------------------

bool Fleet::failover_safe(const std::exception_ptr& eptr) {
  try {
    std::rethrow_exception(eptr);
  } catch (const Error& e) {
    // The three codes that certify NO result was delivered to anyone:
    // kUnavailable (killed/drained before running — never executed),
    // kShutdown (admission race with a dying server), kEngineFault (the
    // server's own retries exhausted; the run threw, produced nothing).
    return e.code() == ErrorCode::kUnavailable ||
           e.code() == ErrorCode::kShutdown ||
           e.code() == ErrorCode::kEngineFault;
  } catch (...) {
    return false;
  }
}

void Fleet::collector_loop(Node& node) {
  std::unique_lock<std::mutex> lock(node.mutex);
  while (true) {
    bool handled = false;
    for (std::size_t i = 0; i < node.pending.size(); ++i) {
      Pending& entry = node.pending[i];
      const bool ready =
          entry.gemm
              ? entry.gemm_future.wait_for(std::chrono::seconds(0)) ==
                    std::future_status::ready
              : entry.infer_future.wait_for(std::chrono::seconds(0)) ==
                    std::future_status::ready;
      if (!ready) continue;
      Pending taken = std::move(entry);
      node.pending.erase(node.pending.begin() +
                         static_cast<std::ptrdiff_t>(i));
      lock.unlock();
      if (taken.gemm) {
        handle_gemm_ready(node, taken);
      } else {
        handle_infer_ready(node, taken);
      }
      lock.lock();
      handled = true;
      break;  // re-scan: the deque may have changed while unlocked
    }
    if (handled) continue;

    if (options_.hedge_ms > 0.0 && !admission_closed_.load()) {
      // Claim hedge candidates under the lock, submit them outside it
      // (submitting locks ANOTHER node's mutex; holding ours too would
      // order locks both ways across collectors).
      std::vector<std::shared_ptr<GemmTicket>> to_hedge;
      const Clock::time_point now = Clock::now();
      const Clock::duration hedge_after = from_ms(options_.hedge_ms);
      for (const Pending& entry : node.pending) {
        if (!entry.gemm || entry.hedge) continue;
        GemmTicket& ticket = *entry.gemm;
        if (ticket.resolved.load()) continue;
        const bool slow = now - ticket.enqueue >= hedge_after;
        const bool near_deadline =
            ticket.deadline != Clock::time_point::max() &&
            ticket.deadline - now <= hedge_after;
        if (!slow && !near_deadline) continue;
        if (ticket.hedged.exchange(true)) continue;
        to_hedge.push_back(entry.gemm);
      }
      if (!to_hedge.empty()) {
        lock.unlock();
        for (const auto& ticket : to_hedge) issue_hedge(ticket, node.index);
        lock.lock();
        continue;
      }
    }

    if (node.stop.load() && node.pending.empty()) break;
    node.cv.wait_for(lock, std::chrono::microseconds(200));
  }
}

void Fleet::handle_gemm_ready(Node& node, Pending& entry) {
  try {
    serve::GemmResult result = entry.gemm_future.get();
    resolve_ok(entry.gemm, std::move(result), entry.hedge);
  } catch (...) {
    std::exception_ptr error = std::current_exception();
    if (failover_safe(error) && !entry.gemm->resolved.load()) {
      failover_gemm(entry.gemm, node.index, error);
    } else {
      resolve_err(entry.gemm, error);
    }
  }
}

void Fleet::handle_infer_ready(Node& node, Pending& entry) {
  try {
    serve::InferenceResult result = entry.infer_future.get();
    resolve_ok(entry.infer, std::move(result));
  } catch (...) {
    std::exception_ptr error = std::current_exception();
    if (failover_safe(error) && !entry.infer->resolved.load()) {
      failover_infer(entry.infer, node.index, error);
    } else {
      resolve_err(entry.infer, error);
    }
  }
}

void Fleet::failover_gemm(const std::shared_ptr<GemmTicket>& ticket, int from,
                          std::exception_ptr error) {
  while (true) {
    if (ticket->resolved.load()) return;  // a hedge landed first
    if (admission_closed_.load()) break;
    if (ticket->deadline != Clock::time_point::max() &&
        Clock::now() >= ticket->deadline) {
      error = std::make_exception_ptr(
          Error("deadline exhausted during failover", //
                ErrorCode::kDeadlineExceeded));
      break;
    }
    if (ticket->failovers.fetch_add(1) >= options_.max_failovers) break;
    try {
      bool overloaded_everywhere = false;
      const int slot = try_place_gemm(ticket, from, PlaceKind::kFailover,
                                      &overloaded_everywhere);
      if (slot >= 0) return;  // re-admitted; the new collector owns it
      if (!overloaded_everywhere) break;  // no survivor to take it
      // All survivors overloaded: back off briefly and try again on the
      // remaining failover budget rather than dropping a live request.
      std::this_thread::sleep_for(from_ms(options_.block_retry_ms));
    } catch (const Error&) {
      break;  // deadline tripped inside placement
    }
  }
  resolve_err(ticket, error);
}

void Fleet::failover_infer(const std::shared_ptr<InferTicket>& ticket,
                           int from, std::exception_ptr error) {
  while (true) {
    if (ticket->resolved.load()) return;
    if (admission_closed_.load()) break;
    if (ticket->deadline != Clock::time_point::max() &&
        Clock::now() >= ticket->deadline) {
      error = std::make_exception_ptr(
          Error("deadline exhausted during failover",
                ErrorCode::kDeadlineExceeded));
      break;
    }
    if (ticket->failovers.fetch_add(1) >= options_.max_failovers) break;
    try {
      bool overloaded_everywhere = false;
      const int slot = try_place_infer(ticket, from, PlaceKind::kFailover,
                                       &overloaded_everywhere);
      if (slot >= 0) return;  // re-admitted; the new collector owns it
      if (!overloaded_everywhere) break;
      std::this_thread::sleep_for(from_ms(options_.block_retry_ms));
    } catch (const Error&) {
      break;
    }
  }
  resolve_err(ticket, error);
}

void Fleet::issue_hedge(const std::shared_ptr<GemmTicket>& ticket, int from) {
  if (ticket->resolved.load() || admission_closed_.load()) return;
  try {
    bool overloaded_everywhere = false;
    const int slot =
        try_place_gemm(ticket, from, PlaceKind::kHedge, &overloaded_everywhere);
    (void)slot;  // counted inside submit_to, before the entry publishes
    // Placement failed: the original attempt is still in flight, so the
    // ticket is NOT at risk — just unhedged (hedged stays claimed; one
    // shot per ticket keeps hedge load bounded).
  } catch (const Error&) {
    // Deadline tripped during placement; the original attempt's own
    // deadline handling delivers the verdict.
  }
}

// --- resolution (the exactly-once CAS) -------------------------------------

void Fleet::book_resolution(const std::string& tenant, bool ok) {
  std::lock_guard<std::mutex> lock(tenants_mutex_);
  TenantBook& book = tenant_books_[tenant];
  if (ok) {
    book.ok += 1;
  } else {
    book.err += 1;
  }
}

void Fleet::resolve_ok(const std::shared_ptr<GemmTicket>& ticket,
                       serve::GemmResult result, bool from_hedge) {
  if (ticket->resolved.exchange(true)) {
    // The other half of a hedged pair got here first: this result is the
    // cancelled loser.
    duplicate_results_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (from_hedge) hedge_wins_.fetch_add(1, std::memory_order_relaxed);
  resolved_ok_.fetch_add(1, std::memory_order_relaxed);
  book_resolution(ticket->tenant, /*ok=*/true);
  try {
    ticket->promise.set_value(std::move(result));
  } catch (const std::future_error&) {
    resolve_double_sets_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Fleet::resolve_err(const std::shared_ptr<GemmTicket>& ticket,
                        std::exception_ptr error) {
  if (ticket->resolved.exchange(true)) return;  // lost to a hedge — fine
  resolved_err_.fetch_add(1, std::memory_order_relaxed);
  book_resolution(ticket->tenant, /*ok=*/false);
  try {
    ticket->promise.set_exception(std::move(error));
  } catch (const std::future_error&) {
    resolve_double_sets_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Fleet::resolve_ok(const std::shared_ptr<InferTicket>& ticket,
                       serve::InferenceResult result) {
  if (ticket->resolved.exchange(true)) {
    duplicate_results_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  resolved_ok_.fetch_add(1, std::memory_order_relaxed);
  book_resolution(ticket->tenant, /*ok=*/true);
  try {
    ticket->promise.set_value(std::move(result));
  } catch (const std::future_error&) {
    resolve_double_sets_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Fleet::resolve_err(const std::shared_ptr<InferTicket>& ticket,
                        std::exception_ptr error) {
  if (ticket->resolved.exchange(true)) return;
  resolved_err_.fetch_add(1, std::memory_order_relaxed);
  book_resolution(ticket->tenant, /*ok=*/false);
  try {
    ticket->promise.set_exception(std::move(error));
  } catch (const std::future_error&) {
    resolve_double_sets_.fetch_add(1, std::memory_order_relaxed);
  }
}

// --- health probing --------------------------------------------------------

void Fleet::prober_loop() {
  // The probe payload: a tiny cost-only GEMM any backend answers in
  // microseconds — proves admission AND a worker dispatch round-trip.
  const auto probe_b = std::make_shared<const gemm::Mat32>(2, 2);
  const gemm::Mat32 probe_a(1, 2);
  const auto timeout =
      std::chrono::duration<double, std::milli>(options_.probe_timeout_ms);
  std::unique_lock<std::mutex> wait_lock(prober_mutex_);
  while (!admission_closed_.load()) {
    prober_cv_.wait_for(wait_lock, from_ms(options_.probe_interval_ms));
    if (admission_closed_.load()) break;
    for (auto& node_ptr : nodes_) {
      Node& node = *node_ptr;
      std::shared_ptr<serve::Server> server;
      {
        std::lock_guard<std::mutex> lock(node.mutex);
        if (node.health == ServerHealth::kDead ||
            node.health == ServerHealth::kDraining || !node.server) {
          continue;  // explicit lifecycle states are not probe territory
        }
        server = node.server;
      }
      probes_sent_.fetch_add(1, std::memory_order_relaxed);
      bool ok = false;
      try {
        serve::SubmitOptions submit;
        submit.want_output = false;
        submit.deadline_ms = options_.probe_timeout_ms;
        submit.admission_timeout_ms = 0.0;
        std::future<serve::GemmResult> future =
            server->submit_gemm("__fleet_probe__", probe_a, probe_b, submit);
        if (future.wait_for(timeout) == std::future_status::ready) {
          future.get();  // throws on kDeadlineExceeded etc.
          ok = true;
        }
        // A future we time out on is simply abandoned: the server resolves
        // it eventually (unpause / quiesce) and nobody is waiting.
      } catch (...) {
        ok = false;
      }
      bool flipped_down = false;
      bool flipped_up = false;
      {
        std::lock_guard<std::mutex> lock(node.mutex);
        if (node.health == ServerHealth::kDead ||
            node.health == ServerHealth::kDraining) {
          continue;  // lifecycle moved on while we probed
        }
        if (ok) {
          node.ok_streak += 1;
          node.fail_streak = 0;
          if (node.health == ServerHealth::kUnhealthy &&
              node.ok_streak >= options_.healthy_after) {
            node.health = ServerHealth::kHealthy;
            flipped_up = true;
          }
        } else {
          node.fail_streak += 1;
          node.ok_streak = 0;
          node.probe_failures += 1;
          if (node.health == ServerHealth::kHealthy &&
              node.fail_streak >= options_.unhealthy_after) {
            node.health = ServerHealth::kUnhealthy;
            flipped_down = true;
          }
        }
      }
      if (!ok) probe_failures_.fetch_add(1, std::memory_order_relaxed);
      if (flipped_down) {
        unhealthy_transitions_.fetch_add(1, std::memory_order_relaxed);
      }
      if (flipped_up) recoveries_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

// --- failpoints & lifecycle ------------------------------------------------

void Fleet::kill_server(int server) {
  AF_CHECK(server >= 0 && server < num_servers(),
           "server index " << server << " out of range [0, " << num_servers()
                           << ")");
  Node& node = *nodes_[server];
  std::shared_ptr<serve::Server> victim;
  {
    std::lock_guard<std::mutex> lock(node.mutex);
    if (node.health == ServerHealth::kDead) return;
    node.health = ServerHealth::kDead;
    victim = node.server;  // kept for post-mortem stats(); never routed to
  }
  // Quiesce OUTSIDE the node lock: it joins shard workers, and the
  // collector needs the lock to pick up the kUnavailable futures this
  // produces and fail them over.
  if (victim) victim->quiesce();
}

void Fleet::stall_server(int server, bool stalled) {
  AF_CHECK(server >= 0 && server < num_servers(),
           "server index " << server << " out of range [0, " << num_servers()
                           << ")");
  Node& node = *nodes_[server];
  std::shared_ptr<serve::Server> srv;
  {
    std::lock_guard<std::mutex> lock(node.mutex);
    srv = node.server;
  }
  if (srv) srv->pause_serving(stalled);
}

void Fleet::drain_server(int server, double flush_timeout_ms) {
  AF_CHECK(server >= 0 && server < num_servers(),
           "server index " << server << " out of range [0, " << num_servers()
                           << ")");
  AF_CHECK(flush_timeout_ms >= 0.0,
           "flush_timeout_ms must be non-negative, got " << flush_timeout_ms);
  Node& node = *nodes_[server];
  std::shared_ptr<serve::Server> victim;
  {
    std::lock_guard<std::mutex> lock(node.mutex);
    if (node.health == ServerHealth::kDead) return;
    node.health = ServerHealth::kDraining;  // no new placements land here
    victim = node.server;
  }
  // Flush: the server keeps serving, so its pending set drains through the
  // collector naturally; give it the budget before quiescing the rest.
  const Clock::time_point flush_deadline =
      Clock::now() + from_ms(flush_timeout_ms);
  while (Clock::now() < flush_deadline) {
    {
      std::lock_guard<std::mutex> lock(node.mutex);
      if (node.pending.empty()) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Whatever is still queued fails kUnavailable and fails over — the
  // no-loss half of a rolling restart.
  if (victim) victim->quiesce();
  {
    std::lock_guard<std::mutex> lock(node.mutex);
    node.health = ServerHealth::kDead;
  }
}

void Fleet::restart_server(int server) {
  AF_CHECK(server >= 0 && server < num_servers(),
           "server index " << server << " out of range [0, " << num_servers()
                           << ")");
  Node& node = *nodes_[server];
  std::lock_guard<std::mutex> lock(node.mutex);
  AF_CHECK(node.health == ServerHealth::kDead,
           "restart_server(" << server << ") on a " << to_string(node.health)
                             << " server; kill or drain it first");
  // The old server's promises were all resolved by quiesce, so dropping
  // the last shared_ptr here destroys it safely; any of its futures still
  // in `pending` stay valid (futures outlive their promise).
  node.server = std::make_shared<serve::Server>(
      specs_[static_cast<std::size_t>(server)].config,
      specs_[static_cast<std::size_t>(server)].options);
  node.fail_streak = 0;
  node.ok_streak = 0;
  node.health = ServerHealth::kHealthy;
}

// --- stats -----------------------------------------------------------------

FleetStats Fleet::stats() const {
  FleetStats out;
  out.router = router_->name();
  out.submitted = submitted_.load();
  out.resolved_ok = resolved_ok_.load();
  out.resolved_err = resolved_err_.load();
  out.failovers = failovers_.load();
  out.hedges = hedges_.load();
  out.hedge_wins = hedge_wins_.load();
  out.duplicate_results = duplicate_results_.load();
  out.rerouted_overload = rerouted_overload_.load();
  out.degraded = degraded_.load();
  out.probes_sent = probes_sent_.load();
  out.probe_failures = probe_failures_.load();
  out.unhealthy_transitions = unhealthy_transitions_.load();
  out.recoveries = recoveries_.load();
  out.resolve_double_sets = resolve_double_sets_.load();
  for (const auto& node_ptr : nodes_) {
    Node& node = *node_ptr;
    FleetServerSummary summary;
    std::shared_ptr<serve::Server> server;
    {
      std::lock_guard<std::mutex> lock(node.mutex);
      summary.server = node.index;
      summary.health = node.health;
      summary.placed = node.placed;
      summary.probe_failures = node.probe_failures;
      server = node.server;
    }
    if (server) summary.stats = server->stats();
    out.servers.push_back(std::move(summary));
  }
  {
    std::lock_guard<std::mutex> lock(tenants_mutex_);
    out.tenants = tenant_books_;
  }
  return out;
}

}  // namespace af::fleet
