#include "sim/vcd.h"

#include "util/status.h"

namespace af::sim {

VcdWriter::VcdWriter(const std::string& path, const std::string& timescale) {
  out_.open(path);
  AF_CHECK(out_.is_open(), "cannot open VCD file '" << path << "'");
  out_ << "$date\n  arrayflex simulation\n$end\n";
  out_ << "$version\n  arrayflex vcd writer\n$end\n";
  out_ << "$timescale " << timescale << " $end\n";
}

VcdWriter::~VcdWriter() { close(); }

std::string VcdWriter::identifier_for(int index) const {
  // Printable-character base-94 encoding, starting at '!'.
  std::string id;
  int x = index;
  do {
    id.push_back(static_cast<char>('!' + x % 94));
    x /= 94;
  } while (x > 0);
  return id;
}

int VcdWriter::add_signal(const std::string& name, int width) {
  AF_CHECK(!header_written_, "signals must be declared before set_time()");
  AF_CHECK(width >= 1 && width <= 64, "signal width must be in [1,64]");
  Signal s;
  s.id = identifier_for(static_cast<int>(signals_.size()));
  s.name = name;
  s.width = width;
  signals_.push_back(s);
  return static_cast<int>(signals_.size()) - 1;
}

void VcdWriter::write_header() {
  out_ << "$scope module arrayflex $end\n";
  for (const Signal& s : signals_) {
    out_ << "$var wire " << s.width << " " << s.id << " " << s.name
         << " $end\n";
  }
  out_ << "$upscope $end\n$enddefinitions $end\n";
  header_written_ = true;
}

void VcdWriter::set_time(std::uint64_t t) {
  if (!header_written_) write_header();
  AF_CHECK(t >= time_ || !time_emitted_, "VCD time must be non-decreasing");
  time_ = t;
  out_ << "#" << t << "\n";
  time_emitted_ = true;
}

void VcdWriter::change(int signal, std::uint64_t value) {
  AF_CHECK(signal >= 0 && signal < static_cast<int>(signals_.size()),
           "unknown VCD signal " << signal);
  AF_CHECK(time_emitted_, "call set_time() before change()");
  Signal& s = signals_[static_cast<std::size_t>(signal)];
  if (s.emitted && s.last_value == value) return;
  s.last_value = value;
  s.emitted = true;
  if (s.width == 1) {
    out_ << (value & 1) << s.id << "\n";
    return;
  }
  std::string bits;
  for (int b = s.width - 1; b >= 0; --b) {
    bits.push_back(((value >> b) & 1) ? '1' : '0');
  }
  out_ << "b" << bits << " " << s.id << "\n";
}

void VcdWriter::close() {
  if (out_.is_open()) out_.close();
}

}  // namespace af::sim
