// Minimal VCD (Value Change Dump) writer.
//
// The waveform example dumps the systolic array's edge activity so the
// skewed dataflow (batches of k words in shallow mode, paper Fig. 2) can be
// inspected in any waveform viewer (GTKWave etc.).

#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

namespace af::sim {

class VcdWriter {
 public:
  // Opens `path` for writing; throws af::Error on failure.
  explicit VcdWriter(const std::string& path,
                     const std::string& timescale = "1ns");
  ~VcdWriter();

  VcdWriter(const VcdWriter&) = delete;
  VcdWriter& operator=(const VcdWriter&) = delete;

  // Declare a signal before the first set_time() call.  Returns a handle.
  int add_signal(const std::string& name, int width);

  // Advance simulation time (monotonically non-decreasing).
  void set_time(std::uint64_t t);

  // Emit a value change for a signal at the current time.
  void change(int signal, std::uint64_t value);

  // Flush and close (also performed by the destructor).
  void close();

 private:
  struct Signal {
    std::string id;  // short VCD identifier
    std::string name;
    int width;
    std::uint64_t last_value = ~0ULL;
    bool emitted = false;
  };

  std::string identifier_for(int index) const;
  void write_header();

  std::ofstream out_;
  std::vector<Signal> signals_;
  bool header_written_ = false;
  std::uint64_t time_ = 0;
  bool time_emitted_ = false;
};

}  // namespace af::sim
