#include "sim/report.h"

#include <fstream>
#include <sstream>

#include "util/status.h"

namespace af::sim {

std::string banner(const std::string& title) {
  const std::string bar(title.size() + 10, '=');
  return bar + "\n==== " + title + " ====\n" + bar + "\n";
}

CsvReport::CsvReport(std::vector<std::string> header)
    : header_(std::move(header)) {
  AF_CHECK(!header_.empty(), "CSV header must be non-empty");
}

void CsvReport::add_row(const std::vector<std::string>& cells) {
  AF_CHECK(cells.size() == header_.size(),
           "CSV row arity " << cells.size() << " != header " << header_.size());
  rows_.push_back(cells);
}

std::string CsvReport::render() const {
  std::ostringstream out;
  const auto emit = [&out](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) out << ",";
      out << cells[i];
    }
    out << "\n";
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

bool CsvReport::write_to(const std::string& path) const {
  std::ofstream out(path);
  if (!out.is_open()) return false;
  out << render();
  return out.good();
}

}  // namespace af::sim
