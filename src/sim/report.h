// Report emission helpers shared by the bench binaries: section banners and
// optional machine-readable CSV dumps next to the human tables.

#pragma once

#include <string>
#include <vector>

namespace af::sim {

// "==== title ====" banner sized to the title.
std::string banner(const std::string& title);

// CSV writer accumulating rows in memory; write_to flushes to a file.
class CsvReport {
 public:
  explicit CsvReport(std::vector<std::string> header);
  void add_row(const std::vector<std::string>& cells);
  std::string render() const;
  // Writes to `path`; returns false (without throwing) when the path is not
  // writable so benches never fail on read-only checkouts.
  bool write_to(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace af::sim
