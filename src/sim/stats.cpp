#include "sim/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/status.h"
#include "util/strings.h"

namespace af::sim {

void RunningStat::add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStat::merge(const RunningStat& o) {
  // Empty operands never reach the Chan combination below: it divides by
  // the merged count, and folding an empty collector's sentinel
  // min_/max_/mean_ through it would poison the result.
  if (o.count_ == 0) return;
  if (count_ == 0) {
    *this = o;
    return;
  }
  if (&o == this) {
    // Self-merge: every sample counted twice.  The mean and extrema are
    // unchanged; deviations (and hence m2_) simply double.  Handled apart
    // because the general path reads o's fields after mutating ours.
    m2_ *= 2.0;
    count_ *= 2;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(o.count_);
  const double delta = o.mean_ - mean_;
  mean_ += delta * nb / (na + nb);
  m2_ += o.m2_ + delta * delta * na * nb / (na + nb);
  count_ += o.count_;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
}

double RunningStat::variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, int buckets)
    : lo_(lo), hi_(hi), counts_(static_cast<std::size_t>(buckets), 0) {
  AF_CHECK(buckets > 0, "histogram needs at least one bucket");
  AF_CHECK(hi > lo, "histogram range must be non-empty");
}

void Histogram::add(double x) {
  const double frac = (x - lo_) / (hi_ - lo_);
  int idx = static_cast<int>(frac * static_cast<double>(counts_.size()));
  idx = std::clamp(idx, 0, static_cast<int>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::quantile(double q) const {
  AF_CHECK(total_ > 0, "quantile of an empty histogram");
  q = std::clamp(q, 0.0, 1.0);
  const double step = (hi_ - lo_) / static_cast<double>(counts_.size());
  const double target = q * static_cast<double>(total_);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cumulative + static_cast<double>(counts_[i]);
    if (next >= target && counts_[i] > 0) {
      const double frac =
          (target - cumulative) / static_cast<double>(counts_[i]);
      return lo_ + step * (static_cast<double>(i) + std::clamp(frac, 0.0, 1.0));
    }
    cumulative = next;
  }
  return hi_;
}

std::int64_t Histogram::bucket_count(int i) const {
  AF_CHECK(i >= 0 && i < buckets(), "bucket index out of range");
  return counts_[static_cast<std::size_t>(i)];
}

std::string Histogram::render() const {
  std::ostringstream out;
  const double step = (hi_ - lo_) / static_cast<double>(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double b0 = lo_ + step * static_cast<double>(i);
    out << format("[%10.3f, %10.3f): %lld\n", b0, b0 + step,
                  static_cast<long long>(counts_[i]));
  }
  return out.str();
}

void CounterSet::bump(const std::string& name, std::int64_t delta) {
  counters_[name] += delta;
}

std::int64_t CounterSet::value(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

}  // namespace af::sim
