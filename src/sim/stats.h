// Lightweight statistics collectors for simulation runs and sweeps.

#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

namespace af::sim {

// Streaming mean/min/max/variance (Welford).
class RunningStat {
 public:
  void add(double x);
  // Folds another collector in (Chan et al. parallel Welford combination):
  // the result is as if every sample of `o` had been add()ed here.  Used to
  // reduce per-thread collectors after a parallel sweep.
  void merge(const RunningStat& o);
  std::int64_t count() const { return count_; }
  double mean() const { return mean_; }
  double min() const { return min_; }
  double max() const { return max_; }
  double variance() const;  // sample variance; 0 for < 2 samples
  double stddev() const;

 private:
  std::int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
// edge buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, int buckets);
  void add(double x);
  std::int64_t bucket_count(int i) const;
  int buckets() const { return static_cast<int>(counts_.size()); }
  std::int64_t total() const { return total_; }
  // Estimated q-quantile (q in [0, 1]), linearly interpolated inside the
  // bucket where the cumulative count crosses q * total.  Resolution is one
  // bucket width — the serving layer's latency percentiles (p50/p99) use
  // this with a few thousand buckets.  Requires at least one sample.
  double quantile(double q) const;
  // "lo..hi: count" lines for reports.
  std::string render() const;

 private:
  double lo_, hi_;
  std::vector<std::int64_t> counts_;
  std::int64_t total_ = 0;
};

// Named counters, rendered sorted by name.
class CounterSet {
 public:
  void bump(const std::string& name, std::int64_t delta = 1);
  std::int64_t value(const std::string& name) const;
  const std::map<std::string, std::int64_t>& all() const { return counters_; }

 private:
  std::map<std::string, std::int64_t> counters_;
};

}  // namespace af::sim
