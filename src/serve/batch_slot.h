// Pooled completion slots for the batched cost-serving path.
//
// The legacy submit_gemm hands every request a std::promise/std::future
// pair: one heap-allocated shared state per request, destroyed after a
// single use.  At millions of cost queries per second that allocator
// traffic IS the hot path.  The batched API replaces it with a BatchSlot —
// one completion slot per submit_gemm_batch call, carrying the WHOLE
// batch's shapes in and its CostEstimates out — recycled through a SlotPool
// freelist so the shape/result vectors keep their capacity across
// submissions and the steady state allocates nothing.
//
// Lifecycle (and why reuse is safe):
//   1. submit_gemm_batch acquires a slot from the pool, fills shapes(),
//      and enqueues ONE Request holding a shared_ptr to it.  The client
//      gets a BatchTicket holding the other reference.
//   2. The shard worker answers via complete() (or fail()) exactly once —
//      guarded like the legacy promise: a second settle is counted in
//      ServerStats::promise_double_sets and fatal in debug builds.  After
//      settling, the worker never touches the slot again.
//   3. BatchTicket::get() blocks on the settle, moves the results out (or
//      rethrows), and returns the slot to the pool.  Since get() cannot
//      return before the settle, and the settle is the worker's LAST
//      access, a recycled slot can never be mutated by a stale holder —
//      lingering shared_ptr copies only delay destruction, never reuse
//      hazards.  A ticket dropped without get() simply lets the slot die
//      with its last reference (no pooling, no leak).

#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "engine/engine.h"
#include "gemm/tiling.h"
#include "util/status.h"

namespace af::serve {

class BatchSlot {
 public:
  // Filled by the submitter BEFORE the request is enqueued; read by the
  // worker after the queue handoff (the queue mutex publishes it), so no
  // slot lock is needed on either side.
  std::vector<gemm::GemmShape>& shapes() { return shapes_; }
  std::size_t count() const { return shapes_.size(); }

  // Recycles the slot for a new submission: clears shapes and results but
  // keeps both vectors' capacity — the pooling win.
  void reset() {
    shapes_.clear();
    std::lock_guard<std::mutex> lock(mutex_);
    results_.clear();
    error_ = nullptr;
    settled_ = false;
  }

  // Worker-side delivery.  Returns false when the slot was already settled
  // (the double-complete bug the legacy promise guard catches) — the
  // caller counts it and must not touch the slot again.
  bool complete(std::vector<engine::CostEstimate> results) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (settled_) return false;
      results_ = std::move(results);
      settled_ = true;
    }
    cv_.notify_all();
    return true;
  }

  bool fail(std::exception_ptr error) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (settled_) return false;
      error_ = std::move(error);
      settled_ = true;
    }
    cv_.notify_all();
    return true;
  }

  // Non-blocking readiness probe (future::wait_for(0s) semantics).
  bool settled() {
    std::lock_guard<std::mutex> lock(mutex_);
    return settled_;
  }

  // Client-side wait: blocks until settled, then moves the results out or
  // rethrows the worker's error (future::get semantics, one-shot).
  std::vector<engine::CostEstimate> take() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return settled_; });
    if (error_ != nullptr) std::rethrow_exception(error_);
    return std::move(results_);
  }

 private:
  std::vector<gemm::GemmShape> shapes_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<engine::CostEstimate> results_;
  std::exception_ptr error_;
  bool settled_ = false;
};

// Mutex-guarded freelist of slots.  acquire() pops (or allocates on a dry
// list); release() pushes back up to a bounded depth — the bound only
// limits how much idle capacity the pool retains, never correctness.
class SlotPool {
 public:
  explicit SlotPool(std::size_t max_free = 256) : max_free_(max_free) {}

  std::shared_ptr<BatchSlot> acquire() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!free_.empty()) {
        std::shared_ptr<BatchSlot> slot = std::move(free_.back());
        free_.pop_back();
        slot->reset();
        return slot;
      }
    }
    return std::make_shared<BatchSlot>();
  }

  void release(std::shared_ptr<BatchSlot> slot) {
    if (slot == nullptr) return;
    std::lock_guard<std::mutex> lock(mutex_);
    if (free_.size() < max_free_) free_.push_back(std::move(slot));
  }

 private:
  const std::size_t max_free_;
  std::mutex mutex_;
  std::vector<std::shared_ptr<BatchSlot>> free_;
};

// Move-only client handle returned by Server::submit_gemm_batch — the
// batched path's stand-in for std::future.  get() blocks for the whole
// batch's CostEstimates (indexed like the submitted shapes) and recycles
// the slot into the server's pool.
class BatchTicket {
 public:
  BatchTicket() = default;
  BatchTicket(std::shared_ptr<BatchSlot> slot, SlotPool* pool)
      : slot_(std::move(slot)), pool_(pool) {}

  BatchTicket(BatchTicket&&) = default;
  BatchTicket& operator=(BatchTicket&&) = default;
  BatchTicket(const BatchTicket&) = delete;
  BatchTicket& operator=(const BatchTicket&) = delete;

  bool valid() const { return slot_ != nullptr; }

  // True once the worker has settled the batch — get() will not block.
  bool ready() const {
    return slot_ != nullptr && slot_->settled();
  }

  std::vector<engine::CostEstimate> get() {
    AF_CHECK(slot_ != nullptr, "BatchTicket::get on an empty ticket");
    std::shared_ptr<BatchSlot> slot = std::move(slot_);
    slot_ = nullptr;
    // take() throws on a failed batch; the slot is settled either way, so
    // recycle it either way.
    struct Recycle {
      SlotPool* pool;
      std::shared_ptr<BatchSlot>* slot;
      ~Recycle() {
        if (pool != nullptr) pool->release(std::move(*slot));
      }
    } recycle{pool_, &slot};
    return slot->take();
  }

 private:
  std::shared_ptr<BatchSlot> slot_;
  SlotPool* pool_ = nullptr;
};

}  // namespace af::serve
