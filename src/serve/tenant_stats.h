// Per-tenant serving accounting: request counts, wall-clock latency
// distribution (mean/min/max via sim::RunningStat, percentiles via a
// sim::Histogram), simulated hardware time, attributed energy (from the
// power models' per-run pricing) and MAC volume.  Thread-safe; shard
// workers record concurrently, stats() snapshots under the same lock.

#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "sim/stats.h"
#include "util/status.h"

namespace af::serve {

struct TenantSnapshot {
  std::string tenant;
  std::int64_t requests = 0;        // completed (gemm + inference)
  std::int64_t gemm_requests = 0;
  std::int64_t infer_requests = 0;
  std::int64_t macs = 0;            // useful work volume
  // Attributed simulated energy / hardware time.  Both are share-weighted
  // for fused and coalesced runs (a request that rode a shared hardware
  // run is billed its fraction), so summing either column over all tenants
  // reproduces what the shards actually spent.
  double energy_pj = 0.0;
  double sim_time_ps = 0.0;
  // This tenant's fraction of ALL tenants' attributed hardware time (0 when
  // nothing has been served yet; sums to 1 across a snapshot otherwise) —
  // the observable the deficit-round-robin scheduler equalizes for
  // backlogged tenants.
  double served_share = 0.0;
  double mean_latency_ms = 0.0;     // wall-clock, enqueue -> completion
  double max_latency_ms = 0.0;
  double p50_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  double mean_queue_ms = 0.0;       // wall-clock, enqueue -> dispatch
  double max_queue_ms = 0.0;
  // Error/retry/shed accounting (PR 6): failures delivered to this tenant
  // by ErrorCode class, plus resubmissions and degraded-fidelity serves.
  // `requests` above counts only successful completions — a request that
  // was rejected, expired or faulted lands in exactly one row below.
  std::int64_t rejected = 0;   // kOverloaded at admission (reject policy)
  std::int64_t expired = 0;    // kDeadlineExceeded before serving
  std::int64_t faults = 0;     // kEngineFault (and other execution errors)
  std::int64_t retries = 0;    // engine-fault resubmissions to other shards
  std::int64_t degraded = 0;   // served cost-only under the degrade policy
};

class TenantAccountant {
 public:
  // Latencies land in a histogram over [0, latency_hist_max_ms) for
  // percentile extraction; slower samples clamp into the top bucket (their
  // exact values still reach the RunningStat's max).
  explicit TenantAccountant(double latency_hist_max_ms = 10e3,
                            int latency_buckets = 4096);

  void record(const std::string& tenant, bool is_inference,
              double latency_ms, double queue_ms, double energy_pj,
              double sim_time_ps, std::int64_t macs);

  // One failed request delivered to `tenant` with `code` (the class picks
  // the snapshot column: overloaded -> rejected, deadline -> expired,
  // everything else -> faults).
  void record_error(const std::string& tenant, ErrorCode code);
  // One engine-fault resubmission on behalf of `tenant`.
  void record_retry(const std::string& tenant);
  // One request served at degraded fidelity for `tenant`.
  void record_degraded(const std::string& tenant);

  std::vector<TenantSnapshot> snapshot() const;

 private:
  struct Account {
    std::int64_t gemm_requests = 0;
    std::int64_t infer_requests = 0;
    std::int64_t rejected = 0;
    std::int64_t expired = 0;
    std::int64_t faults = 0;
    std::int64_t retries = 0;
    std::int64_t degraded = 0;
    std::int64_t macs = 0;
    double energy_pj = 0.0;
    double sim_time_ps = 0.0;
    sim::RunningStat latency_ms;
    sim::RunningStat queue_ms;
    sim::Histogram latency_hist;
    explicit Account(double hist_max_ms, int buckets)
        : latency_hist(0.0, hist_max_ms, buckets) {}
  };

  // Find-or-create; caller holds mutex_.
  Account& account_locked(const std::string& tenant);

  const double hist_max_ms_;
  const int buckets_;
  mutable std::mutex mutex_;
  std::map<std::string, Account> accounts_;
};

// Windowed queue-wait collector for the autoscaler: shard workers sample
// the enqueue->dispatch wait of every request they pick up; the autoscaler
// drains the window each control tick and reads its p99, so the scaling
// signal reflects only waits since the previous decision (a long-gone
// burst cannot keep the pool inflated).
class LatencyWindow {
 public:
  struct Stats {
    std::int64_t count = 0;
    double p99_ms = 0.0;
    double max_ms = 0.0;
  };

  void sample(double ms);
  // Returns the window's stats and resets it.  Exact p99 (nth_element over
  // the drained samples), not a histogram estimate: autoscale windows are
  // small and the threshold comparison should not be off by a bucket.
  Stats drain();

 private:
  mutable std::mutex mutex_;
  std::vector<double> samples_;
};

}  // namespace af::serve
