#include "serve/transformer_traffic.h"

#include <utility>

#include "util/status.h"

namespace af::serve {
namespace {

constexpr std::int32_t kLo = -3;
constexpr std::int32_t kHi = 3;

std::shared_ptr<const gemm::Mat32> random_shared(af::Rng& rng,
                                                 std::int64_t rows,
                                                 std::int64_t cols) {
  return std::make_shared<const gemm::Mat32>(
      gemm::random_matrix(rng, rows, cols, kLo, kHi));
}

// Phase GEMMs of one pass at `seq_t` token rows, against the bundle's
// frozen-span weights.  Shared by prefill (fat T) and decode (T = 1).
std::vector<PhaseGemm> pass_gemms(const TransformerWeights& w,
                                  std::int64_t seq_t, af::Rng& rng) {
  AF_CHECK(seq_t > 0, "seq_t must be positive, got " << seq_t);
  const nn::TransformerConfig& cfg = w.config;
  cfg.validate();
  AF_CHECK(static_cast<int>(w.qkv.size()) == cfg.n_blocks,
           "weight bundle has " << w.qkv.size() << " blocks, config wants "
                                << cfg.n_blocks);
  std::vector<PhaseGemm> out;
  out.reserve(static_cast<std::size_t>(cfg.n_blocks) *
              static_cast<std::size_t>(4 + 2 * cfg.n_heads));
  const auto add = [&](nn::TransformerPhase phase, int block, int head,
                       const std::shared_ptr<const gemm::Mat32>& b) {
    PhaseGemm g;
    g.phase = phase;
    g.block = block;
    g.head = head;
    g.b = b;
    g.a = gemm::random_matrix(rng, seq_t, b->rows(), kLo, kHi);
    out.push_back(std::move(g));
  };
  for (int blk = 0; blk < cfg.n_blocks; ++blk) {
    add(nn::TransformerPhase::kQkvProj, blk, -1, w.qkv[blk]);
    for (int h = 0; h < cfg.n_heads; ++h) {
      add(nn::TransformerPhase::kAttnScore, blk, h, w.k_t[blk][h]);
    }
    for (int h = 0; h < cfg.n_heads; ++h) {
      add(nn::TransformerPhase::kAttnContext, blk, h, w.v[blk][h]);
    }
    add(nn::TransformerPhase::kOutProj, blk, -1, w.out_proj[blk]);
    add(nn::TransformerPhase::kMlpUp, blk, -1, w.mlp_up[blk]);
    add(nn::TransformerPhase::kMlpDown, blk, -1, w.mlp_down[blk]);
  }
  return out;
}

}  // namespace

TransformerWeights make_transformer_weights(const nn::TransformerConfig& config,
                                            std::int64_t kv_len, af::Rng& rng) {
  config.validate();
  AF_CHECK(kv_len > 0, "kv_len must be positive, got " << kv_len);
  const std::int64_t d = config.d_model;
  const std::int64_t hd = config.head_dim();
  const std::int64_t ff = config.d_ff;
  TransformerWeights w;
  w.config = config;
  w.kv_len = kv_len;
  for (int blk = 0; blk < config.n_blocks; ++blk) {
    w.qkv.push_back(random_shared(rng, d, 3 * d));
    w.k_t.emplace_back();
    w.v.emplace_back();
    for (int h = 0; h < config.n_heads; ++h) {
      w.k_t.back().push_back(random_shared(rng, hd, kv_len));
      w.v.back().push_back(random_shared(rng, kv_len, hd));
    }
    w.out_proj.push_back(random_shared(rng, d, d));
    w.mlp_up.push_back(random_shared(rng, d, ff));
    w.mlp_down.push_back(random_shared(rng, ff, d));
  }
  return w;
}

std::vector<PhaseGemm> prefill_gemms(const TransformerWeights& weights,
                                     std::int64_t seq_t, af::Rng& rng) {
  return pass_gemms(weights, seq_t, rng);
}

std::vector<PhaseGemm> decode_gemms(const TransformerWeights& weights,
                                    af::Rng& rng) {
  return pass_gemms(weights, 1, rng);
}

}  // namespace af::serve
