// Runtime dataflow reconfiguration policy: which pipeline mode k a served
// GEMM stream runs in.
//
// Switching an ArrayFlex shard between modes drains the pipeline
// (Server::prepare_mode bills reconfig_cycles at the new mode's clock plus
// the leakage burned while no work flows), so the per-request Eq. 6 argmin
// is NOT free at serve time: a stream that interleaves fat-T prefill GEMMs
// (shallow-pipeline optimal) with skinny-T decode GEMMs (deep-pipeline
// optimal) pays a drain at every phase boundary.  The policy decides, per
// admitted request, whether chasing the request's own optimum is worth the
// drain it would trigger — the serve-time analogue of Flex-TPU's
// runtime-reconfigurable dataflow.
//
// Registered policies (engine_info --reconfig-policies; the README's
// "Reconfiguration policies" table mirrors these names, CI diffs the two):
//
//   "argmin"  stateless per-request Eq. 6 argmin — today's admission
//             behaviour, optimal per GEMM, oblivious to drain cost.
//   "sticky"  hysteresis (the autoscaler pattern one level down): the
//             stream holds its established mode until the ACCUMULATED
//             projected win of requests preferring another mode exceeds
//             switch_margin x drain cost; any request whose own argmin
//             matches the stream mode resets the accumulation.  Decode
//             spam between prefills no longer drags the array through a
//             drain pair per interleave.
//
// The struct is a pure state machine (mirrors AutoscalePolicy /
// OverloadDetector): decide() consumes one request's per-mode cost sweep
// and the drain price, returns the mode to stamp, and mutates only its own
// counters — unit-testable on synthetic streams without threads, clocks or
// engines.  The Server serializes calls under its admission mutex; batch
// assembly then groups requests by the stamped mode exactly as before
// (serve::compatible), so the policy's choice IS the batch's mode.

#pragma once

#include <string>
#include <vector>

#include "arch/optimizer.h"

namespace af::serve {

enum class ReconfigPolicyKind { kArgmin, kSticky };

// Throws af::Error{kInvalidArgument} with the registry listed on unknown
// names (the engine/dispatcher/overload-policy registry idiom).
ReconfigPolicyKind parse_reconfig_policy(const std::string& name);
// Sorted registry keys (the README drift-check contract).
std::vector<std::string> reconfig_policy_names();
// One-line human description per policy (the README table source).
std::string reconfig_policy_description(const std::string& name);

struct ReconfigPolicy {
  ReconfigPolicyKind kind = ReconfigPolicyKind::kArgmin;
  // A switch fires once the accumulated projected win reaches
  // switch_margin x drain_ps: the drain must pay for itself this many
  // times over before the stream moves.  >= 0; 0 switches on any win.
  double switch_margin = 2.0;

  // One admitted GEMM: `modes` is the request's per-mode cost sweep
  // (arch::PipelineOptimizer::sweep — every supported k with Tabs), and
  // `drain_ps` the simulated cost of reconfiguring to a new mode now.
  // Returns the mode to stamp on the request.
  int decide(const std::vector<arch::ModeSweepEntry>& modes, double drain_ps);

  // --- state (stream-scoped; reset() between independent streams) ---------
  int stream_k = 0;             // established mode, 0 = none yet
  double pending_win_ps = 0.0;  // accumulated win of the challenger mode
  std::int64_t switches = 0;    // decisions that moved the stream mode
  std::int64_t holds = 0;       // requests held on stream_k against their
                                // own argmin (the drains NOT paid)

  void reset();
};

}  // namespace af::serve
