#include "serve/tenant_stats.h"

#include <algorithm>
#include <cmath>

#include "util/status.h"

namespace af::serve {

TenantAccountant::TenantAccountant(double latency_hist_max_ms,
                                   int latency_buckets)
    : hist_max_ms_(latency_hist_max_ms), buckets_(latency_buckets) {
  AF_CHECK(latency_hist_max_ms > 0, "latency histogram range must be positive");
  AF_CHECK(latency_buckets > 0, "latency histogram needs buckets");
}

TenantAccountant::Account& TenantAccountant::account_locked(
    const std::string& tenant) {
  auto it = accounts_.find(tenant);
  if (it == accounts_.end()) {
    it = accounts_.emplace(tenant, Account(hist_max_ms_, buckets_)).first;
  }
  return it->second;
}

void TenantAccountant::record(const std::string& tenant, bool is_inference,
                              double latency_ms, double queue_ms,
                              double energy_pj, double sim_time_ps,
                              std::int64_t macs) {
  std::lock_guard<std::mutex> lock(mutex_);
  Account& acc = account_locked(tenant);
  (is_inference ? acc.infer_requests : acc.gemm_requests) += 1;
  acc.macs += macs;
  acc.energy_pj += energy_pj;
  acc.sim_time_ps += sim_time_ps;
  acc.latency_ms.add(latency_ms);
  acc.queue_ms.add(queue_ms);
  acc.latency_hist.add(latency_ms);
}

void TenantAccountant::record_error(const std::string& tenant,
                                    ErrorCode code) {
  std::lock_guard<std::mutex> lock(mutex_);
  Account& acc = account_locked(tenant);
  switch (code) {
    case ErrorCode::kOverloaded:
      acc.rejected += 1;
      break;
    case ErrorCode::kDeadlineExceeded:
      acc.expired += 1;
      break;
    default:
      acc.faults += 1;
      break;
  }
}

void TenantAccountant::record_retry(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mutex_);
  account_locked(tenant).retries += 1;
}

void TenantAccountant::record_degraded(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mutex_);
  account_locked(tenant).degraded += 1;
}

std::vector<TenantSnapshot> TenantAccountant::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TenantSnapshot> out;
  out.reserve(accounts_.size());
  double total_sim_time_ps = 0.0;
  for (const auto& [name, acc] : accounts_) {
    total_sim_time_ps += acc.sim_time_ps;
  }
  for (const auto& [name, acc] : accounts_) {
    TenantSnapshot s;
    s.tenant = name;
    s.gemm_requests = acc.gemm_requests;
    s.infer_requests = acc.infer_requests;
    s.requests = acc.gemm_requests + acc.infer_requests;
    s.rejected = acc.rejected;
    s.expired = acc.expired;
    s.faults = acc.faults;
    s.retries = acc.retries;
    s.degraded = acc.degraded;
    s.macs = acc.macs;
    s.energy_pj = acc.energy_pj;
    s.sim_time_ps = acc.sim_time_ps;
    s.served_share =
        total_sim_time_ps > 0 ? acc.sim_time_ps / total_sim_time_ps : 0.0;
    if (acc.latency_ms.count() > 0) {
      s.mean_latency_ms = acc.latency_ms.mean();
      s.max_latency_ms = acc.latency_ms.max();
      // The histogram's within-bucket interpolation can stray past the
      // observed extrema by up to one bucket width; the RunningStat knows
      // them exactly, so clamp the estimates into the true range.
      const auto clamped = [&](double q) {
        return std::clamp(acc.latency_hist.quantile(q), acc.latency_ms.min(),
                          acc.latency_ms.max());
      };
      s.p50_latency_ms = clamped(0.50);
      s.p99_latency_ms = clamped(0.99);
    }
    if (acc.queue_ms.count() > 0) {
      s.mean_queue_ms = acc.queue_ms.mean();
      s.max_queue_ms = acc.queue_ms.max();
    }
    out.push_back(std::move(s));
  }
  return out;
}

void LatencyWindow::sample(double ms) {
  std::lock_guard<std::mutex> lock(mutex_);
  samples_.push_back(ms);
}

LatencyWindow::Stats LatencyWindow::drain() {
  std::vector<double> samples;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    samples.swap(samples_);
  }
  Stats stats;
  stats.count = static_cast<std::int64_t>(samples.size());
  if (samples.empty()) return stats;
  // Nearest-rank p99: ceil(0.99 * n) - 1.  Small windows round UP to the
  // worst samples (n = 2 must report the max, not the min) — an autoscaler
  // watching trickle traffic must still see a slow request's wait.
  const std::size_t idx = static_cast<std::size_t>(std::min<double>(
      static_cast<double>(samples.size() - 1),
      std::ceil(0.99 * static_cast<double>(samples.size())) - 1.0));
  std::nth_element(samples.begin(),
                   samples.begin() + static_cast<std::ptrdiff_t>(idx),
                   samples.end());
  stats.p99_ms = samples[idx];
  stats.max_ms = *std::max_element(samples.begin(), samples.end());
  return stats;
}

}  // namespace af::serve
