#include "serve/reconfig.h"

#include "util/status.h"

namespace af::serve {

ReconfigPolicyKind parse_reconfig_policy(const std::string& name) {
  if (name == "argmin") return ReconfigPolicyKind::kArgmin;
  if (name == "sticky") return ReconfigPolicyKind::kSticky;
  AF_CHECK(false, "unknown reconfig policy \""
                      << name << "\" (registered: \"argmin\", \"sticky\")");
  return ReconfigPolicyKind::kArgmin;  // unreachable
}

std::vector<std::string> reconfig_policy_names() {
  // Sorted, like every other registry — the README's table must list
  // exactly these rows (CI diffs the two).
  return {"argmin", "sticky"};
}

std::string reconfig_policy_description(const std::string& name) {
  switch (parse_reconfig_policy(name)) {
    case ReconfigPolicyKind::kArgmin:
      return "stateless per-request Eq. 6 argmin: optimal mode per GEMM, "
             "oblivious to the drain a mode switch costs the stream";
    case ReconfigPolicyKind::kSticky:
      return "hysteresis: hold the stream's mode until the accumulated "
             "projected win of a challenger mode exceeds switch_margin x "
             "drain cost; a request preferring the stream mode resets the "
             "accumulation";
  }
  return {};  // unreachable
}

void ReconfigPolicy::reset() {
  stream_k = 0;
  pending_win_ps = 0.0;
  switches = 0;
  holds = 0;
}

int ReconfigPolicy::decide(const std::vector<arch::ModeSweepEntry>& modes,
                           double drain_ps) {
  AF_CHECK(!modes.empty(), "reconfig decide() needs a non-empty mode sweep");
  AF_CHECK(switch_margin >= 0.0, "switch_margin must be non-negative");
  const arch::ModeSweepEntry* best = &modes.front();
  const arch::ModeSweepEntry* current = nullptr;
  for (const arch::ModeSweepEntry& e : modes) {
    if (e.decision.time_ps < best->decision.time_ps) best = &e;
    if (e.decision.k == stream_k) current = &e;
  }
  if (kind == ReconfigPolicyKind::kArgmin) {
    // Stateless per-request optimum; the stream mode just tracks the last
    // decision (and the switch counter the thrash it implies).
    if (stream_k != 0 && best->decision.k != stream_k) ++switches;
    stream_k = best->decision.k;
    pending_win_ps = 0.0;
    return stream_k;
  }
  // Sticky hysteresis.  No established mode (fresh stream, or the array
  // left GEMM service for an inference batch): adopt the optimum for free —
  // the first batch configures the array either way.
  if (stream_k == 0 || current == nullptr) {
    stream_k = best->decision.k;
    pending_win_ps = 0.0;
    return stream_k;
  }
  if (best->decision.k == stream_k) {
    // The stream mode is (still) this request's own optimum: any pending
    // challenger run is broken.
    pending_win_ps = 0.0;
    return stream_k;
  }
  pending_win_ps += current->decision.time_ps - best->decision.time_ps;
  if (pending_win_ps >= switch_margin * drain_ps) {
    stream_k = best->decision.k;
    pending_win_ps = 0.0;
    ++switches;
    return stream_k;
  }
  ++holds;
  return stream_k;
}

}  // namespace af::serve
