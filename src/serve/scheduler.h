// Batch formation over the request queue.
//
// Reconfiguring an ArrayFlex shard between pipeline modes means draining
// the array, so back-to-back requests in the SAME mode are cheaper than an
// interleaved stream; and GEMM requests against the same stationary weight
// matrix can be fused outright (activation rows stacked along T) so the
// weight preload is paid once per tile instead of once per request.  The
// scheduler therefore coalesces, up to max_batch requests per dispatch:
//
//   * GEMMs whose admission-chosen mode k matches the batch head's — the
//     shard runs them without a mode switch; within the batch the executor
//     additionally fuses requests sharing (weights, shape);
//   * inference slices of the same (model, layer range) — identical
//     analytic work, evaluated once and fanned to every requester (the
//     serving layer's result coalescing).
//
// next_batch blocks on RequestQueue::pop — which selects the batch head by
// deficit round-robin across tenant backlogs (see serve/queue.h), so a
// flooding tenant cannot monopolize dispatch — then sweeps compatible
// requests from any tenant's backlog in ONE pass via
// RequestQueue::pop_all_if, keyed by the head's (mode, backend) for GEMMs
// and (model, layer range) for inference slices (each rider is charged to
// its own tenant's deficit).  Incompatible requests keep their queue
// position, so batching never starves anyone.  Safe to call from many
// shard workers concurrently.

#pragma once

#include <optional>
#include <vector>

#include "serve/queue.h"

namespace af::serve {

struct Batch {
  RequestKind kind = RequestKind::kGemm;
  int k = 1;  // mode of a GEMM batch (meaningless for inference slices)
  std::vector<Request> requests;
  // Requests whose deadline passed while queued, collected by the reaper
  // sweep during batch assembly.  They are NOT served: the executor fails
  // each with ErrorCode::kDeadlineExceeded.  `requests` may be empty when
  // the popped head itself had expired — the batch then carries only
  // expiries for the worker to resolve.
  std::vector<Request> expired;
  // Assembled from another shard's deque (work stealing).  The executor
  // uses it to credit locality-aware stealing: a stolen batch whose mode
  // already matches the thief's array skipped a reconfiguration drain.
  bool stolen = false;
};

// True when `r` can join a batch headed by `head` (see file comment).
bool compatible(const Request& head, const Request& r);

// Batch formation around an already-popped head: one pop_all_if sweep
// collects up to max_batch - 1 compatible riders from `queue`.  Shared by
// BatchScheduler and the dispatch layer (serve/dispatcher.h), whose
// work-stealing implementation assembles a stolen DRR round from the
// victim's queue with exactly this call.
//
// `max_batch_bytes` (0 = unlimited) additionally caps the batch's summed
// projected DRAM traffic (Request::drr_bytes): with the memory hierarchy
// enabled, a fused run's DMA stream scales with its data footprint, so a
// byte budget keeps one batch from parking the array behind a DRAM
// transfer longer than the latency SLO.  The head always dispatches even
// when it alone exceeds the budget — the cap shapes coalescing, never
// strands work.
Batch assemble_batch(Request head, RequestQueue& queue, int max_batch,
                     std::int64_t max_batch_bytes = 0);

class BatchScheduler {
 public:
  // max_batch = 1 disables coalescing (every request dispatches alone);
  // max_batch_bytes = 0 leaves the byte budget unlimited.
  BatchScheduler(RequestQueue* queue, int max_batch,
                 std::int64_t max_batch_bytes = 0);

  // Blocks for the next request; returns it plus up to max_batch - 1
  // compatible followers.  nullopt once the queue is closed and drained.
  std::optional<Batch> next_batch();

 private:
  RequestQueue* queue_;
  int max_batch_;
  std::int64_t max_batch_bytes_;
};

}  // namespace af::serve
