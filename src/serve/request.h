// Request/response types of the multi-tenant serving layer.
//
// Clients hand the serve::Server either a raw GEMM (activations against a
// shared weight matrix) or a whole nn::Model inference, tagged with a
// tenant id; they get a std::future back.  Internally every submission
// becomes one or more Request records flowing through the bounded
// RequestQueue to the shard workers.  A model inference is split into one
// kInferSlice request per shard (contiguous layer ranges), joined back into
// a single ModelReport by the shared InferJoin when the last slice lands —
// this is how one model is sharded across several simulated arrays.

#pragma once

#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "gemm/matrix.h"
#include "gemm/reference.h"
#include "nn/models.h"
#include "nn/runner.h"

namespace af::serve {

using Clock = std::chrono::steady_clock;

// Pooled completion slot of the batched cost path (serve/batch_slot.h);
// forward-declared so this header stays light — only the server and the
// executors need the full type.
class BatchSlot;

enum class RequestKind { kGemm, kInferSlice, kGemmBatch };

// Response to a submit_gemm: the product plus the simulated cost of the
// (possibly fused) hardware run that produced it.
struct GemmResult {
  gemm::Mat64 out;              // this request's rows of the fused product
                                // (empty when the request declined outputs)
  int k = 1;                    // pipeline mode the batch ran in
  int shard = -1;               // shard that executed the batch
  std::int64_t batch_requests = 1;  // size of the coalesced batch
  std::int64_t fused_rows = 0;  // total T of the fused run this rode in
  std::int64_t cycles = 0;      // simulated cycles of the fused run
  std::int64_t stall_cycles = 0;  // cycles of `cycles` spent waiting on DRAM
                                  // (0 with magic memory)
  std::int64_t dram_bytes = 0;  // DRAM traffic of the fused run (0 with
                                // magic memory)
  double time_ps = 0.0;         // simulated execution time of the fused run
  double energy_pj = 0.0;       // this request's attributed energy share
  double queue_ms = 0.0;        // wall-clock enqueue -> dispatch
  double latency_ms = 0.0;      // wall-clock enqueue -> completion
  std::string backend;          // engine backend that served the fused run
  bool measured = false;        // cost measured cycle-accurately (vs closed form)
  bool audited = false;         // fused run replayed on the audit engine
  bool degraded = false;        // served cost-only under the degrade policy
};

// Response to a submit_inference: the merged per-layer report (bit-identical
// to a direct InferenceRunner::run with the same config) plus serving
// metadata.
struct InferenceResult {
  nn::ModelReport report;
  int num_slices = 1;           // shard fan-out of this inference
  double latency_ms = 0.0;      // wall-clock submit -> last slice done
};

// Join state shared by the slice requests of one sharded inference.  The
// shard completing the final slice assembles the full report (slices are
// concatenated in layer order; totals are sums) and fulfills the promise.
struct InferJoin {
  std::mutex mutex;
  std::vector<nn::ModelReport> parts;  // indexed by slice position
  std::size_t remaining = 0;
  // Attributed cost of this inference, accumulated slice by slice: each
  // slice charges its ArrayFlex energy and time divided by the size of the
  // batch it was coalesced into (the hardware ran that slice once for all
  // of them), so per-tenant books sum to what the shards actually spent.
  double energy_pj = 0.0;
  double sim_time_ps = 0.0;
  // Set once a slice execution failed and the promise carries the
  // exception; later slices of this join become no-ops.
  bool failed = false;
  std::promise<InferenceResult> promise;
  Clock::time_point enqueue_time;
  std::string tenant;
  std::string model_name;
};

// One unit of queued work.  Move-only (it carries the client's promise).
struct Request {
  RequestKind kind = RequestKind::kGemm;
  std::uint64_t id = 0;
  std::string tenant;
  Clock::time_point enqueue_time;

  // Optional wall-clock deadline (time_point::max() = none).  A request
  // still queued when this passes is expired with ErrorCode::
  // kDeadlineExceeded by the dispatcher's reaper sweep instead of being
  // served; the executor double-checks at dispatch so a request never
  // starts running after its budget is gone.
  Clock::time_point deadline = Clock::time_point::max();
  bool expired(Clock::time_point now) const { return deadline <= now; }

  // Engine-fault retry budget (SubmitOptions::max_retries) and the
  // attempts already burned.  A failing shard stamps avoid_shard before
  // resubmitting, so the retry routes to a DIFFERENT shard even before the
  // quarantine machinery pulls the bad one from the pool.
  int max_retries = 0;
  int attempts = 0;
  int avoid_shard = -1;

  // Admitted under the "degrade" overload policy: served at cost-only
  // analytic fidelity (no output, no audit) while the pressure lasts.
  bool degraded = false;

  // Deficit-round-robin cost of this request (serve/queue.h): the useful
  // work it asks the hardware for, in MACs.  Set at admission; always >= 1.
  std::int64_t drr_cost = 1;

  // Projected DRAM traffic of this request in bytes (mem::
  // projected_gemm_bytes — the compulsory A+B+C movement, computed whether
  // or not the memory model is enabled).  The queue mirrors the sum as
  // approx_bytes(), the bandwidth-pressure twin of approx_cost(): two
  // backlogs of equal MAC volume can differ hugely in how much data they
  // drag through DRAM.  Zero for inference slices (their traffic is
  // layer-dependent and accounted in the ModelReport instead).
  std::int64_t drr_bytes = 0;

  // Marginal byte cost when this request RIDES a same-weight fusion (mem::
  // projected_fused_rider_bytes — private A+C rows only; the shared B panel
  // is billed to the batch member that brought it in).  Batch assembly
  // charges this against the byte budget instead of drr_bytes whenever the
  // rider's weight matrix is already aboard, so decode spam against one
  // weight set fills a batch instead of double-counting B per rider.
  std::int64_t drr_rider_bytes = 0;

  // Per-request fidelity override (engine::make registry key, e.g.
  // "cycle"): empty serves on the shard's default engine.  Validated at
  // admission against the registry; requests batch only with requests of
  // the same backend (serve::compatible), and a measuring override skips
  // the sampled audit (it IS the ground truth).
  std::string backend;

  // --- kGemm ---------------------------------------------------------------
  gemm::Mat32 a;                            // activations, t x n
  std::shared_ptr<const gemm::Mat32> b;     // shared weights, n x m
  gemm::GemmShape shape;
  int decided_k = 1;       // mode chosen at admission (request or optimizer)
  // False for cost-estimation traffic: the serving engine may then skip
  // computing the product entirely (the analytic backend answers from
  // closed forms alone), and GemmResult::out comes back empty.
  bool want_output = true;
  std::promise<GemmResult> gemm_promise;

  // --- kInferSlice ---------------------------------------------------------
  std::shared_ptr<const nn::Model> model;
  std::size_t layer_begin = 0;
  std::size_t layer_count = 0;
  std::size_t slice_index = 0;
  std::shared_ptr<InferJoin> join;

  // --- kGemmBatch ------------------------------------------------------------
  // One queued record for a whole submit_gemm_batch call: the shapes ride
  // in the pooled slot (filled before enqueue, read after the queue
  // handoff), the CostEstimates come back through it, and the client waits
  // on a BatchTicket instead of a future — no per-shape promise, no
  // per-shape queue hop.  decided_k carries the caller's mode (0 = the
  // engine's per-shape argmin, resolved inside evaluate_batch).
  std::shared_ptr<BatchSlot> slot;
};

}  // namespace af::serve
