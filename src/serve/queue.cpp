#include "serve/queue.h"

#include "util/status.h"

namespace af::serve {

RequestQueue::RequestQueue(std::size_t capacity) : capacity_(capacity) {
  AF_CHECK(capacity > 0, "request queue needs a positive capacity");
}

bool RequestQueue::push(Request r) {
  std::unique_lock<std::mutex> lock(mutex_);
  not_full_.wait(lock, [this] { return closed_ || items_.size() < capacity_; });
  if (closed_) return false;
  items_.push_back(std::move(r));
  lock.unlock();
  not_empty_.notify_one();
  return true;
}

std::optional<Request> RequestQueue::pop() {
  std::unique_lock<std::mutex> lock(mutex_);
  not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
  if (items_.empty()) return std::nullopt;  // closed and drained
  Request r = std::move(items_.front());
  items_.pop_front();
  lock.unlock();
  not_full_.notify_one();
  return r;
}

std::optional<Request> RequestQueue::pop_if(
    const std::function<bool(const Request&)>& pred) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (auto it = items_.begin(); it != items_.end(); ++it) {
    if (pred(*it)) {
      Request r = std::move(*it);
      items_.erase(it);
      lock.unlock();
      not_full_.notify_one();
      return r;
    }
  }
  return std::nullopt;
}

void RequestQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

std::size_t RequestQueue::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return items_.size();
}

bool RequestQueue::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

}  // namespace af::serve
