#include "serve/queue.h"

#include <algorithm>

#include "util/status.h"

namespace af::serve {

RequestQueue::RequestQueue(std::size_t capacity, std::int64_t quantum)
    : capacity_(capacity), quantum_(quantum) {
  AF_CHECK(capacity > 0, "request queue needs a positive capacity");
  AF_CHECK(quantum > 0, "DRR quantum must be positive");
}

bool RequestQueue::push(Request r) {
  std::unique_lock<std::mutex> lock(mutex_);
  not_full_.wait(lock, [this] { return closed_ || total_ < capacity_; });
  if (closed_) return false;
  TenantQueue& tq = tenants_[r.tenant];
  if (tq.items.empty()) ring_.push_back(r.tenant);  // newly backlogged
  tq.items.push_back(std::move(r));
  ++total_;
  lock.unlock();
  not_empty_.notify_one();
  return true;
}

Request RequestQueue::take_front_locked() {
  const std::string tenant = ring_[ring_pos_];
  TenantQueue& tq = tenants_[tenant];
  Request r = std::move(tq.items.front());
  tq.items.pop_front();
  tq.deficit -= r.drr_cost;
  --total_;
  retire_if_empty_locked(tenant);
  return r;
}

void RequestQueue::retire_if_empty_locked(const std::string& tenant) {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end() || !it->second.items.empty()) return;
  tenants_.erase(it);  // deficit (and any borrow debt) resets with the backlog
  const auto ring_it = std::find(ring_.begin(), ring_.end(), tenant);
  if (ring_it != ring_.end()) {
    const std::size_t idx =
        static_cast<std::size_t>(ring_it - ring_.begin());
    ring_.erase(ring_it);
    if (idx < ring_pos_) --ring_pos_;  // keep the DRR position stable
  }
}

std::optional<Request> RequestQueue::pop() {
  std::unique_lock<std::mutex> lock(mutex_);
  not_empty_.wait(lock, [this] { return closed_ || total_ > 0; });
  if (total_ == 0) return std::nullopt;  // closed and drained

  // Deficit round-robin: visit backlogged tenants in ring order.  Arriving
  // at a tenant credits its deficit with one quantum (once per visit); a
  // tenant whose deficit covers its head request is served and keeps the
  // pointer while the remaining deficit covers the next head (the DRR
  // burst); otherwise the pointer moves on, the accumulated deficit kept.
  // A full fruitless circle (every tenant credited once, nobody servable)
  // fast-forwards whole rounds in one arithmetic step instead of spinning
  // — a head request costing thousands of quanta dispatches in O(ring)
  // work under the lock, with shares identical to circling that many
  // times.
  std::size_t fruitless = 0;
  for (;;) {
    if (ring_pos_ >= ring_.size()) ring_pos_ = 0;
    // Copied, not referenced: serving may retire the tenant and erase its
    // ring slot out from under a reference.
    const std::string tenant = ring_[ring_pos_];
    TenantQueue& tq = tenants_[tenant];
    const std::int64_t cost = tq.items.front().drr_cost;
    if (tq.deficit >= cost) {
      Request r = take_front_locked();
      // take_front_locked may have retired the tenant (ring entry and
      // TenantQueue gone); otherwise decide whether the burst continues.
      const auto it = tenants_.find(tenant);
      if (it != tenants_.end() &&
          it->second.deficit < it->second.items.front().drr_cost) {
        it->second.credited = false;
        ++ring_pos_;
      }
      lock.unlock();
      not_full_.notify_one();
      return r;
    }
    if (!tq.credited) {
      tq.credited = true;
      tq.deficit += quantum_;
      continue;  // retry this tenant with the fresh credit
    }
    tq.credited = false;  // visit over; keep the accumulated deficit
    ++ring_pos_;
    if (++fruitless >= ring_.size()) {
      fruitless = 0;
      // Nobody is servable after one quantum each: credit the minimum
      // number of whole rounds that makes some head affordable, to every
      // ring member at once (exactly what that many more circles would
      // have done).
      std::int64_t min_rounds = 0;
      for (const std::string& name : ring_) {
        const TenantQueue& t = tenants_[name];
        const std::int64_t shortfall =
            t.items.front().drr_cost - t.deficit;
        const std::int64_t rounds =
            shortfall <= 0 ? 0 : (shortfall + quantum_ - 1) / quantum_;
        if (min_rounds == 0 || rounds < min_rounds) min_rounds = rounds;
        if (rounds == 0) break;
      }
      if (min_rounds > 0) {
        for (const std::string& name : ring_) {
          tenants_[name].deficit += min_rounds * quantum_;
        }
      }
    }
  }
}

std::optional<Request> RequestQueue::pop_if(
    const std::function<bool(const Request&)>& pred) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    const std::size_t idx =
        (ring_pos_ + i) % ring_.size();
    const std::string tenant = ring_[idx];
    TenantQueue& tq = tenants_[tenant];
    for (auto it = tq.items.begin(); it != tq.items.end(); ++it) {
      if (!pred(*it)) continue;
      Request r = std::move(*it);
      tq.items.erase(it);
      // The rider pays its own way: charging the cost here (possibly
      // driving the deficit negative) keeps long-run DRR shares intact
      // even when coalescing jumps the round-robin order.
      tq.deficit -= r.drr_cost;
      --total_;
      retire_if_empty_locked(tenant);
      lock.unlock();
      not_full_.notify_one();
      return r;
    }
  }
  return std::nullopt;
}

void RequestQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

std::size_t RequestQueue::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

bool RequestQueue::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

std::int64_t RequestQueue::deficit(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.deficit;
}

}  // namespace af::serve
