#include "serve/queue.h"

#include <algorithm>

#include "util/status.h"

namespace af::serve {
namespace {

std::int64_t deadline_ns(Clock::time_point deadline) {
  if (deadline == Clock::time_point::max()) {
    return std::numeric_limits<std::int64_t>::max();
  }
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             deadline.time_since_epoch())
      .count();
}

}  // namespace

RequestQueue::RequestQueue(std::size_t capacity, std::int64_t quantum,
                           std::int64_t deadline_urgent_ms,
                           std::int64_t deadline_weight_cap)
    : capacity_(capacity),
      quantum_(quantum),
      deadline_urgent_ns_(deadline_urgent_ms * 1'000'000),
      weight_cap_(deadline_weight_cap) {
  AF_CHECK(capacity > 0, "request queue needs a positive capacity");
  AF_CHECK(quantum > 0, "DRR quantum must be positive");
  AF_CHECK(deadline_urgent_ms >= 0,
           "deadline_urgent_ms must be non-negative");
  AF_CHECK(deadline_weight_cap >= 1,
           "deadline_weight_cap must be at least 1");
}

bool RequestQueue::push(Request r) {
  return push_for(r, std::chrono::microseconds::max()) ==
         PushResult::kAccepted;
}

PushResult RequestQueue::push_for(Request& r,
                                  std::chrono::microseconds timeout) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto admissible = [this] { return closed_ || total_ < capacity_; };
  if (timeout == std::chrono::microseconds::max()) {
    not_full_.wait(lock, admissible);
  } else if (!not_full_.wait_for(lock, timeout, admissible)) {
    return PushResult::kFull;
  }
  if (closed_) return PushResult::kClosed;
  TenantQueue& tq = tenants_[r.tenant];
  if (tq.items.empty()) ring_.push_back(r.tenant);  // newly backlogged
  const std::int64_t dl = deadline_ns(r.deadline);
  if (dl < earliest_deadline_ns_.load(std::memory_order_relaxed)) {
    earliest_deadline_ns_.store(dl, std::memory_order_relaxed);
  }
  cost_total_ += r.drr_cost;
  bytes_total_ += r.drr_bytes;
  tq.items.push_back(std::move(r));
  ++total_;
  approx_size_.store(total_, std::memory_order_relaxed);
  approx_cost_.store(cost_total_, std::memory_order_relaxed);
  approx_bytes_.store(bytes_total_, std::memory_order_relaxed);
  lock.unlock();
  not_empty_.notify_one();
  return PushResult::kAccepted;
}

Request RequestQueue::take_front_locked() {
  const std::string tenant = ring_[ring_pos_];
  TenantQueue& tq = tenants_[tenant];
  Request r = std::move(tq.items.front());
  tq.items.pop_front();
  tq.deficit -= r.drr_cost;
  --total_;
  cost_total_ -= r.drr_cost;
  bytes_total_ -= r.drr_bytes;
  approx_size_.store(total_, std::memory_order_relaxed);
  approx_cost_.store(cost_total_, std::memory_order_relaxed);
  approx_bytes_.store(bytes_total_, std::memory_order_relaxed);
  retire_if_empty_locked(tenant);
  return r;
}

std::int64_t RequestQueue::quantum_for_locked(const TenantQueue& tq,
                                              std::int64_t now_ns) const {
  if (deadline_urgent_ns_ == 0) return quantum_;
  const std::int64_t dl = deadline_ns(tq.items.front().deadline);
  if (dl == std::numeric_limits<std::int64_t>::max()) return quantum_;
  const std::int64_t slack = dl - now_ns;
  if (slack >= deadline_urgent_ns_) return quantum_;
  // Inside the urgent window the weight ramps hyperbolically from 1 to the
  // cap as slack runs out; at or past the deadline the cap applies.
  const std::int64_t weight =
      slack <= 0 ? weight_cap_
                 : std::min(weight_cap_, deadline_urgent_ns_ / slack);
  return quantum_ * std::max<std::int64_t>(1, weight);
}

void RequestQueue::retire_if_empty_locked(const std::string& tenant) {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end() || !it->second.items.empty()) return;
  tenants_.erase(it);  // deficit (and any borrow debt) resets with the backlog
  const auto ring_it = std::find(ring_.begin(), ring_.end(), tenant);
  if (ring_it != ring_.end()) {
    const std::size_t idx =
        static_cast<std::size_t>(ring_it - ring_.begin());
    ring_.erase(ring_it);
    if (idx < ring_pos_) --ring_pos_;  // keep the DRR position stable
  }
}

std::optional<Request> RequestQueue::pop() {
  std::unique_lock<std::mutex> lock(mutex_);
  not_empty_.wait(lock, [this] { return closed_ || total_ > 0; });
  if (total_ == 0) return std::nullopt;  // closed and drained
  Request r = pop_drr_locked();
  lock.unlock();
  not_full_.notify_one();
  return r;
}

std::optional<Request> RequestQueue::try_pop() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (total_ == 0) return std::nullopt;
  Request r = pop_drr_locked();
  lock.unlock();
  not_full_.notify_one();
  return r;
}

Request RequestQueue::pop_drr_locked() {
  // Deficit round-robin: visit backlogged tenants in ring order.  Arriving
  // at a tenant credits its deficit with one quantum (once per visit); a
  // tenant whose deficit covers its head request is served and keeps the
  // pointer while the remaining deficit covers the next head (the DRR
  // burst); otherwise the pointer moves on, the accumulated deficit kept.
  // A full fruitless circle (every tenant credited once, nobody servable)
  // fast-forwards whole rounds in one arithmetic step instead of spinning
  // — a head request costing thousands of quanta dispatches in O(ring)
  // work under the lock, with shares identical to circling that many
  // times.
  // One clock read per pop, not per visit: the urgency weight of a head
  // request moves far slower than the DRR pointer.  With the weighting
  // disabled (the default) the clock is never read at all.
  const std::int64_t now_ns =
      deadline_urgent_ns_ > 0
          ? std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now().time_since_epoch())
                .count()
          : 0;
  std::size_t fruitless = 0;
  for (;;) {
    if (ring_pos_ >= ring_.size()) ring_pos_ = 0;
    // Copied, not referenced: serving may retire the tenant and erase its
    // ring slot out from under a reference.
    const std::string tenant = ring_[ring_pos_];
    TenantQueue& tq = tenants_[tenant];
    const std::int64_t cost = tq.items.front().drr_cost;
    if (tq.deficit >= cost) {
      Request r = take_front_locked();
      // take_front_locked may have retired the tenant (ring entry and
      // TenantQueue gone); otherwise decide whether the burst continues.
      const auto it = tenants_.find(tenant);
      if (it != tenants_.end() &&
          it->second.deficit < it->second.items.front().drr_cost) {
        it->second.credited = false;
        ++ring_pos_;
      }
      return r;
    }
    if (!tq.credited) {
      tq.credited = true;
      tq.deficit += quantum_for_locked(tq, now_ns);
      continue;  // retry this tenant with the fresh credit
    }
    tq.credited = false;  // visit over; keep the accumulated deficit
    ++ring_pos_;
    if (++fruitless >= ring_.size()) {
      fruitless = 0;
      // Nobody is servable after one quantum each: credit the minimum
      // number of whole rounds that makes some head affordable, to every
      // ring member at once (exactly what that many more circles would
      // have done).
      std::int64_t min_rounds = 0;
      for (const std::string& name : ring_) {
        const TenantQueue& t = tenants_[name];
        const std::int64_t per_round = quantum_for_locked(t, now_ns);
        const std::int64_t shortfall =
            t.items.front().drr_cost - t.deficit;
        const std::int64_t rounds =
            shortfall <= 0 ? 0 : (shortfall + per_round - 1) / per_round;
        if (min_rounds == 0 || rounds < min_rounds) min_rounds = rounds;
        if (rounds == 0) break;
      }
      if (min_rounds > 0) {
        for (const std::string& name : ring_) {
          TenantQueue& t = tenants_[name];
          t.deficit += min_rounds * quantum_for_locked(t, now_ns);
        }
      }
    }
  }
}

std::optional<Request> RequestQueue::pop_if(
    const std::function<bool(const Request&)>& pred) {
  std::vector<Request> taken = pop_all_if(pred, 1);
  if (taken.empty()) return std::nullopt;
  return std::move(taken.front());
}

std::vector<Request> RequestQueue::pop_all_if(
    const std::function<bool(const Request&)>& pred, int max_take) {
  std::vector<Request> out;
  if (max_take <= 0) return out;
  std::unique_lock<std::mutex> lock(mutex_);
  // Snapshot the scan order up front: taking a tenant's last request
  // retires it and shifts ring slots under an index-based walk.
  std::vector<std::string> order;
  order.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    order.push_back(ring_[(ring_pos_ + i) % ring_.size()]);
  }
  for (const std::string& tenant : order) {
    if (static_cast<int>(out.size()) >= max_take) break;
    const auto found = tenants_.find(tenant);
    if (found == tenants_.end()) continue;
    TenantQueue& tq = found->second;
    // Erase-as-you-go and stop the moment the budget fills: the common
    // take is a contiguous run at the FRONT of a tenant's FIFO (a stream
    // of same-mode requests), so this touches O(taken) requests and leaves
    // the rest of the backlog unmoved.
    for (auto it = tq.items.begin();
         it != tq.items.end() && static_cast<int>(out.size()) < max_take;) {
      if (pred(*it)) {
        // The rider pays its own way: charging the cost here (possibly
        // driving the deficit negative) keeps long-run DRR shares intact
        // even when coalescing jumps the round-robin order.
        tq.deficit -= it->drr_cost;
        --total_;
        cost_total_ -= it->drr_cost;
        bytes_total_ -= it->drr_bytes;
        approx_size_.store(total_, std::memory_order_relaxed);
        approx_cost_.store(cost_total_, std::memory_order_relaxed);
        approx_bytes_.store(bytes_total_, std::memory_order_relaxed);
        out.push_back(std::move(*it));
        it = tq.items.erase(it);
      } else {
        ++it;
      }
    }
    retire_if_empty_locked(tenant);
  }
  if (!out.empty()) {
    lock.unlock();
    not_full_.notify_all();
  }
  return out;
}

std::vector<Request> RequestQueue::drain_all() {
  std::vector<Request> out;
  std::unique_lock<std::mutex> lock(mutex_);
  for (const std::string& tenant : ring_) {
    TenantQueue& tq = tenants_[tenant];
    for (Request& r : tq.items) out.push_back(std::move(r));
  }
  tenants_.clear();
  ring_.clear();
  ring_pos_ = 0;
  total_ = 0;
  cost_total_ = 0;
  bytes_total_ = 0;
  approx_size_.store(0, std::memory_order_relaxed);
  approx_cost_.store(0, std::memory_order_relaxed);
  approx_bytes_.store(0, std::memory_order_relaxed);
  earliest_deadline_ns_.store(std::numeric_limits<std::int64_t>::max(),
                              std::memory_order_relaxed);
  if (!out.empty()) {
    lock.unlock();
    not_full_.notify_all();
  }
  return out;
}

void RequestQueue::refresh_deadline_hint_locked() {
  std::int64_t earliest = std::numeric_limits<std::int64_t>::max();
  for (const auto& [tenant, tq] : tenants_) {
    for (const Request& r : tq.items) {
      earliest = std::min(earliest, deadline_ns(r.deadline));
    }
  }
  earliest_deadline_ns_.store(earliest, std::memory_order_relaxed);
}

std::vector<Request> RequestQueue::remove_expired(Clock::time_point now) {
  std::vector<Request> out;
  // Lock-free fast path: nothing queued can be overdue.  The hint is a
  // lower bound (pops leave it stale-low), so a miss here only costs an
  // occasional fruitless locked sweep, never a missed expiry.
  if (earliest_deadline_ns_.load(std::memory_order_relaxed) >
      deadline_ns(now)) {
    return out;
  }
  std::unique_lock<std::mutex> lock(mutex_);
  // Snapshot the scan order: taking a tenant's last request retires it and
  // shifts ring slots under an index-based walk (same as pop_all_if).
  std::vector<std::string> order;
  order.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    order.push_back(ring_[(ring_pos_ + i) % ring_.size()]);
  }
  for (const std::string& tenant : order) {
    const auto found = tenants_.find(tenant);
    if (found == tenants_.end()) continue;
    TenantQueue& tq = found->second;
    for (auto it = tq.items.begin(); it != tq.items.end();) {
      if (it->expired(now)) {
        // No deficit charge: DRR debts measure service received, and an
        // expired request was never served.
        --total_;
        cost_total_ -= it->drr_cost;
        bytes_total_ -= it->drr_bytes;
        approx_size_.store(total_, std::memory_order_relaxed);
        approx_cost_.store(cost_total_, std::memory_order_relaxed);
        approx_bytes_.store(bytes_total_, std::memory_order_relaxed);
        out.push_back(std::move(*it));
        it = tq.items.erase(it);
      } else {
        ++it;
      }
    }
    retire_if_empty_locked(tenant);
  }
  refresh_deadline_hint_locked();
  if (!out.empty()) {
    lock.unlock();
    not_full_.notify_all();
  }
  return out;
}

WaitStatus RequestQueue::wait_nonempty_for(std::chrono::microseconds timeout) {
  std::unique_lock<std::mutex> lock(mutex_);
  not_empty_.wait_for(lock, timeout,
                      [this] { return closed_ || total_ > 0; });
  if (total_ > 0) return WaitStatus::kNonEmpty;
  return closed_ ? WaitStatus::kClosed : WaitStatus::kTimeout;
}

void RequestQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

std::size_t RequestQueue::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

bool RequestQueue::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

std::optional<int> RequestQueue::peek_mode() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (total_ == 0 || ring_.empty()) return std::nullopt;
  const std::size_t pos = ring_pos_ < ring_.size() ? ring_pos_ : 0;
  const auto it = tenants_.find(ring_[pos]);
  if (it == tenants_.end() || it->second.items.empty()) return std::nullopt;
  const Request& head = it->second.items.front();
  if (head.kind != RequestKind::kGemm) return std::nullopt;
  return head.decided_k;
}

std::int64_t RequestQueue::deficit(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.deficit;
}

}  // namespace af::serve
