// Transformer phase GEMMs as serving traffic.
//
// nn::transformer_model prices a transformer as an nn::Model (closed-form
// layer reports).  This header generates the same phases as RAW GEMM
// submissions — real Mat32 activations against shared_ptr weight matrices —
// which is what serve::Server::submit_gemm batches, fuses and audits.  The
// shared_ptr identity of each weight matrix is the server's same-weight
// fusion key: every decode step of a session reuses the SAME TransformerWeights
// bundle, so its skinny T=1 GEMMs stack along T with other decode steps of
// the same phase (the decode-path fusion the tests pin down bit-identically).
//
// The KV panels (per-head K^T and V) are materialized at a fixed kv_len.
// That freezes the attention span for every step generated from one bundle —
// deliberately: serving-side fusion REQUIRES identical B matrices, and a
// "paged" cache rounded up to a fixed span is exactly how batched decode
// serving keeps shapes uniform.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "gemm/matrix.h"
#include "nn/transformer.h"
#include "util/rng.h"

namespace af::serve {

// One transformer stack's weight matrices, shaped for direct use as GEMM B
// operands (N x M per the phase table in nn/transformer.h).  shared_ptr
// identity doubles as the server's fusion key.
struct TransformerWeights {
  nn::TransformerConfig config;
  std::int64_t kv_len = 0;

  // Indexed [block]; attention panels [block][head].
  std::vector<std::shared_ptr<const gemm::Mat32>> qkv;       // d x 3d
  std::vector<std::vector<std::shared_ptr<const gemm::Mat32>>> k_t;  // hd x kv
  std::vector<std::vector<std::shared_ptr<const gemm::Mat32>>> v;    // kv x hd
  std::vector<std::shared_ptr<const gemm::Mat32>> out_proj;  // d x d
  std::vector<std::shared_ptr<const gemm::Mat32>> mlp_up;    // d x ff
  std::vector<std::shared_ptr<const gemm::Mat32>> mlp_down;  // ff x d
};

// Randomized weight bundle for `config` at attention span `kv_len`.
// Operand values stay in a small range so fused int64 accumulations are
// nowhere near overflow even with thousands of fused rows.
TransformerWeights make_transformer_weights(const nn::TransformerConfig& config,
                                            std::int64_t kv_len, af::Rng& rng);

// One phase GEMM ready for Server::submit_gemm: activations `a` (t x n)
// against the bundle's shared weight `b` (n x m).
struct PhaseGemm {
  nn::TransformerPhase phase = nn::TransformerPhase::kQkvProj;
  int block = 0;
  int head = -1;  // -1 for non-attention phases
  gemm::Mat32 a;
  std::shared_ptr<const gemm::Mat32> b;
};

// All phase GEMMs of one prefill pass (`seq_t` prompt rows) in block
// execution order: qkv, n_heads x score, n_heads x context, out, mlp_up,
// mlp_down per block.  Activations are randomized per call.
std::vector<PhaseGemm> prefill_gemms(const TransformerWeights& weights,
                                     std::int64_t seq_t, af::Rng& rng);

// All phase GEMMs of one decode step (T = 1).  Every call reuses the
// bundle's shared weights, so two decode steps' same-phase GEMMs carry the
// identical B pointer — the same-weight fusion key.
std::vector<PhaseGemm> decode_gemms(const TransformerWeights& weights,
                                    af::Rng& rng);

}  // namespace af::serve
