// Multi-tenant batch serving over a pool of simulated ArrayFlex shards.
//
//   clients ──submit──▶ RequestQueue ──▶ BatchScheduler ──▶ shard workers
//                      (bounded MPMC)    (mode/model         (one thread +
//                                         coalescing)         one simulated
//                                                             array each)
//
// The Server owns N identical arch::SystolicArray shards.  Each shard
// carries its own clock model, power model, InferenceRunner and pipeline-
// mode state (the paper's configurable transparent pipelining: switching a
// shard between modes drains the array, so the scheduler batches same-mode
// work and the shard accounts every reconfiguration).  Client threads
// submit GEMMs (activations against shared stationary weights) or whole
// nn::Model inferences and block on the returned future; a model inference
// is split into contiguous layer slices, one per shard, and joined back
// into a report bit-identical to a direct InferenceRunner::run.
//
// Simulation threading: all shards share ONE optional util::ThreadPool
// (ServerOptions::sim_threads), injected into every array and runner —
// never a pool per component, so an S-shard server runs at most
// num_shards worker threads + sim_threads pool threads regardless of
// nesting (see the shared-pool contract in arch/array.h).
//
// Accounting: per-tenant latency percentiles / energy / MACs via
// TenantAccountant, per-shard utilization (busy time by mode, mode
// switches, reconfiguration overhead) via ShardSnapshot.

#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "arch/clocking.h"
#include "arch/config.h"
#include "arch/optimizer.h"
#include "arch/power_model.h"
#include "serve/queue.h"
#include "serve/request.h"
#include "serve/scheduler.h"
#include "serve/tenant_stats.h"

namespace af::util {
class ThreadPool;
}

namespace af::serve {

struct ServerOptions {
  int num_shards = 2;
  // Coalescing cap per dispatch; 1 disables batching entirely.
  int max_batch = 8;
  // Admission bound: submit blocks once this many requests are queued.
  std::size_t queue_capacity = 256;
  // Shared simulation pool threads; 1 (default) keeps every shard's
  // simulator serial (parallelism then comes from the shards themselves),
  // 0 means all hardware threads — the repo-wide num_threads convention.
  int sim_threads = 1;
  // Range of the per-tenant latency histogram (percentile resolution).
  double latency_hist_max_ms = 10e3;
  // Cycles to drain + reconfigure a shard between pipeline modes; -1 means
  // rows + cols of the shard config (full pipeline flush).
  std::int64_t reconfig_cycles = -1;
  arch::EnergyParams energy = arch::EnergyParams::generic28nm();
};

struct ShardSnapshot {
  int shard = 0;
  std::int64_t batches = 0;        // dispatches executed
  std::int64_t requests = 0;       // requests served (incl. coalesced)
  std::int64_t fused_runs = 0;     // hardware GEMM runs after fusion
  std::int64_t mode_switches = 0;  // reconfigurations between modes
  double busy_time_ps = 0.0;       // simulated execution time
  double energy_pj = 0.0;          // simulated energy of useful work
  double reconfig_time_ps = 0.0;   // simulated drain/reconfigure time
  double reconfig_energy_pj = 0.0; // leakage burned while reconfiguring
  std::map<int, double> busy_ps_by_mode;
  int current_k = 0;               // 0 = not in a uniform GEMM mode
};

struct ServerStats {
  std::int64_t submitted = 0;  // logical requests accepted
  std::int64_t completed = 0;  // logical requests fulfilled
  std::vector<ShardSnapshot> shards;
  std::vector<TenantSnapshot> tenants;
};

class Server {
 public:
  // `shard_config` describes one shard's array; its SimOptions thread count
  // is ignored (the server controls simulation threading via options).
  explicit Server(const arch::ArrayConfig& shard_config,
                  ServerOptions options = {});
  ~Server();  // drains accepted work, then stops the shards

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // X = a x *b in mode k (0 = per-request optimizer choice).  `b` is the
  // shared stationary weight matrix — requests naming the same matrix (by
  // pointer) with equal shapes and modes are fused into one hardware run.
  // Blocks while the queue is full; throws af::Error after shutdown.
  std::future<GemmResult> submit_gemm(const std::string& tenant,
                                      gemm::Mat32 a,
                                      std::shared_ptr<const gemm::Mat32> b,
                                      int k = 0);

  // Whole-model inference, sharded: the model's layers are split into up to
  // num_shards contiguous slices evaluated on different shards; the merged
  // report is bit-identical to InferenceRunner::run on one array with this
  // shard config.  Coalesces with concurrent submissions of the same model
  // (by shared_ptr identity).
  std::future<InferenceResult> submit_inference(
      const std::string& tenant, std::shared_ptr<const nn::Model> model);

  int num_shards() const { return static_cast<int>(shards_.size()); }
  const arch::ArrayConfig& shard_config() const { return shard_config_; }

  ServerStats stats() const;

  // Closes admission, drains every accepted request, joins the shard
  // workers.  Idempotent; the destructor calls it.
  void shutdown();

 private:
  struct Shard;

  void shard_loop(Shard& shard);
  void execute_gemm_batch(Shard& shard, Batch& batch);
  void execute_infer_batch(Shard& shard, Batch& batch);
  // Delivers `error` to every still-pending client of the batch (promise
  // set_exception; inference joins are marked failed so sibling slices
  // stand down) — a bad request fails its own futures, not the server.
  void fail_batch(Batch& batch, std::exception_ptr error);
  // Mode bookkeeping before a GEMM batch runs in mode k: counts the switch
  // and bills the drain (time at the new mode's clock, leakage energy) to
  // the shard when it was configured differently.
  void prepare_mode(Shard& shard, int k);

  arch::ArrayConfig shard_config_;
  ServerOptions options_;
  std::unique_ptr<util::ThreadPool> sim_pool_;
  arch::CalibratedClockModel admission_clock_;
  arch::PipelineOptimizer admission_optimizer_;
  RequestQueue queue_;
  BatchScheduler scheduler_;
  TenantAccountant tenants_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<std::uint64_t> next_id_{0};
  std::atomic<std::int64_t> submitted_{0};
  std::atomic<std::int64_t> completed_{0};
  mutable std::mutex shard_stats_mutex_;  // guards every Shard::stats
  std::mutex shutdown_mutex_;
  std::atomic<bool> shut_down_{false};
};

}  // namespace af::serve
