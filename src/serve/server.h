// Multi-tenant batch serving over a pool of ArrayFlex execution engines.
//
//   clients ──submit──▶ Dispatcher ("global" | "stealing") ──▶ shard workers
//                      (routing + DRR fairness +               (one thread +
//                       batch coalescing;                       one engine
//                       see serve/dispatcher.h)                 each)
//
// The Server owns up to max_shards shards, each wrapping one
// engine::Engine (ServerOptions::backend picks the fidelity: "analytic"
// closed-form cost models by default — orders of magnitude more
// requests/s — or "cycle" for full cycle-accurate simulation; both return
// bit-identical outputs and exactly equal cycle/activity/energy numbers, a
// contract pinned by tests/engine_test.cpp).  Each shard carries its own
// pipeline-mode state (the paper's configurable transparent pipelining:
// switching a shard between modes drains the array, so the dispatcher
// batches same-mode work and the shard accounts every reconfiguration).
// Client threads submit GEMMs (activations against shared stationary
// weights) or whole nn::Model inferences and block on the returned future;
// a model inference is split into contiguous layer slices and joined back
// into a report bit-identical to a direct InferenceRunner::run.
//
// Dispatch: ServerOptions::dispatcher selects the control-plane topology —
// "global" (one DRR queue, every submit and pop through one lock) or
// "stealing" (per-shard DRR deques, tenant/model submit affinity,
// rand-victim stealing of whole DRR rounds; see serve/dispatcher.h).  Both
// preserve per-tenant DRR fairness and produce bit-identical results; they
// differ in lock contention on the hot path.
//
// Autoscaling: with min_shards < max_shards the server runs a
// queue-pressure autoscaler — a control thread sampling dispatcher depth
// and the p99 enqueue->dispatch wait every autoscale_interval_ms, growing
// the live shard set when either breaches the grow thresholds for
// grow_patience consecutive ticks and shrinking it when both sit below the
// shrink thresholds for shrink_patience ticks (hysteresis: the two
// patience counters reset each other, so a square-wave load cannot flap
// the pool).  Growing a shard acquires its engine through the server's
// EngineBuilder; shrinking drains the shard's deque back into the steal
// pool, joins the worker mid-flight work included, then releases the
// engine — no accepted request is ever dropped or double-served across a
// scale event (pinned by tests/serve_test.cpp).
//
// Audit mode: with audit_fraction > 0 (and a non-measuring backend), each
// shard deterministically replays that fraction of its fused GEMM runs on
// a cycle-accurate audit engine and cross-checks — outputs bit-exact,
// cycles / ActivityCounters / energy exactly equal.  Mismatches are
// counted per shard (ShardSnapshot::audit_mismatches).  Individual
// requests may also pin their fidelity: submit_gemm's `backend` override
// routes one request to any registered engine, validated at admission.
//
// Simulation threading: all shards share ONE optional util::ThreadPool
// (ServerOptions::sim_threads), injected into every engine and runner —
// never a pool per component, so an S-shard server runs at most
// live_shards worker threads + sim_threads pool threads regardless of
// nesting (see the shared-pool contract in arch/array.h).
//
// Accounting: per-tenant latency/queue-wait percentiles / energy / MACs /
// served share via TenantAccountant, per-shard utilization via
// ShardSnapshot, dispatcher steals and scale events via ServerStats.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "arch/config.h"
#include "arch/power_model.h"
#include "engine/engine.h"
#include "serve/batch_slot.h"
#include "serve/dispatcher.h"
#include "serve/queue.h"
#include "serve/reconfig.h"
#include "serve/request.h"
#include "serve/scheduler.h"
#include "serve/tenant_stats.h"
#include "util/status.h"

namespace af::util {
class ThreadPool;
}

namespace af::serve {

struct ServerOptions {
  int num_shards = 2;
  // Engine backend each shard serves with (engine::make registry key).
  // "analytic" trades cycle-by-cycle measurement for orders-of-magnitude
  // throughput at identical numbers; "cycle" is ground-truth simulation.
  std::string backend = "analytic";
  // Fraction of fused GEMM runs to replay on a cycle-accurate audit engine
  // and cross-check (0 disables; ignored when the serving backend already
  // measures).  Sampling is deterministic per shard: every time the
  // accumulated fraction crosses 1, the next fused run is audited.
  double audit_fraction = 0.0;
  // Coalescing cap per dispatch; 1 disables batching entirely.
  int max_batch = 8;
  // Admission bound: submit blocks once this many requests are queued.
  // Under the "stealing" dispatcher the bound applies PER HOME DEQUE (each
  // deque is its own backpressure domain), not to the sum.
  std::size_t queue_capacity = 256;
  // DRR quantum in cost units (MACs) credited per scheduling round — see
  // serve/queue.h.  Any positive value gives equal long-run tenant shares.
  std::int64_t drr_quantum = RequestQueue::kDefaultQuantum;
  // Deadline-weighted DRR (see the RequestQueue constructor): a tenant
  // whose head request is within this window of its deadline earns a
  // multiplied quantum — credit = quantum x clamp(urgent / slack, 1, cap)
  // — so urgent work drains faster as its budget runs out instead of
  // expiring behind fair-share peers.  0 (the default) disables the
  // weighting; long-run shares of deadline-free traffic are unchanged
  // either way.
  std::int64_t drr_deadline_urgent_ms = 0;
  std::int64_t drr_deadline_weight_cap = 8;
  // Byte budget per coalesced batch (summed projected DRAM traffic,
  // Request::drr_bytes); 0 = unlimited.  With the memory hierarchy enabled
  // a fused run's DMA stream scales with its footprint, so this keeps one
  // batch from parking the array behind a DRAM transfer longer than the
  // latency SLO.  See serve::assemble_batch.
  std::int64_t max_batch_bytes = 0;
  // Shared simulation pool threads; 1 (default) keeps every shard's
  // engine serial (parallelism then comes from the shards themselves),
  // 0 means all hardware threads — the repo-wide num_threads convention.
  int sim_threads = 1;
  // Range of the per-tenant latency histogram (percentile resolution).
  double latency_hist_max_ms = 10e3;
  // Cycles to drain + reconfigure a shard between pipeline modes; -1 means
  // rows + cols of the shard config (full pipeline flush).
  std::int64_t reconfig_cycles = -1;
  // Which pipeline mode an optimizer-choice GEMM (SubmitOptions::k == 0) is
  // stamped with at admission (serve/reconfig.h; engine_info
  // --reconfig-policies lists the registry): "argmin" is the per-request
  // Eq. 6 optimum — today's behaviour — while "sticky" holds the served
  // stream's mode until the accumulated win of switching exceeds
  // reconfig_switch_margin x the drain cost, amortizing reconfiguration
  // across prefill/decode-style mode-mixed traffic.  Explicit-k submissions
  // bypass the policy entirely.
  std::string reconfig_policy = "argmin";
  double reconfig_switch_margin = 2.0;
  arch::EnergyParams energy = arch::EnergyParams::generic28nm();

  // --- dispatch & autoscaling (see serve/dispatcher.h) ---------------------
  // Dispatcher registry key: "global" (PR-4 single queue, the semantics
  // oracle) or "stealing" (per-shard deques + work stealing).
  std::string dispatcher = "global";
  // Live-shard bounds; 0 means num_shards, so by default the pool is fixed
  // and no autoscaler thread runs.  Must satisfy
  // 1 <= min_shards <= num_shards <= max_shards; num_shards is the
  // INITIAL live count.
  int min_shards = 0;
  int max_shards = 0;
  // Autoscaler control-tick period.
  double autoscale_interval_ms = 10.0;
  // Grow when (dispatcher depth / live shards) >= grow_depth_per_shard OR
  // the window's p99 queue wait >= grow_wait_p99_ms, for grow_patience
  // consecutive ticks.
  double grow_depth_per_shard = 4.0;
  double grow_wait_p99_ms = 5.0;
  // Shrink when depth/live <= shrink_depth_per_shard AND p99 wait <=
  // shrink_wait_p99_ms, for shrink_patience consecutive ticks.  The gap
  // between the grow and shrink bands is the hysteresis dead zone.
  double shrink_depth_per_shard = 0.5;
  double shrink_wait_p99_ms = 1.0;
  int grow_patience = 2;
  int shrink_patience = 8;
  // Which latency-pressure signal the autoscaler (and its thresholds
  // above) listens to, alongside the depth-per-shard term both use:
  //   "wait_p99"      wall-clock p99 enqueue->dispatch wait (the default).
  //   "backlog_cost"  queued simulated work (MACs per live shard, from the
  //                   dispatcher's backlog-cost mirror) — scales "cycle"
  //                   backend pools on hardware pressure, which wall-clock
  //                   waits misrepresent when simulation is the bottleneck.
  //   "backlog_bytes" queued projected DRAM traffic (bytes per live shard,
  //                   from the dispatcher's backlog-bytes mirror) — scales
  //                   bandwidth-bound pools: with the memory hierarchy
  //                   enabled a compute-light backlog can still saturate
  //                   the DRAM pins, which MAC counts misrepresent.
  std::string autoscale_signal = "wait_p99";
  // backlog_cost thresholds (queued MACs per live shard), the analogue of
  // the grow/shrink wait-p99 pair.
  double grow_backlog_macs_per_shard = 4e6;
  double shrink_backlog_macs_per_shard = 0.25e6;
  // backlog_bytes thresholds (queued projected DRAM bytes per live shard).
  double grow_backlog_bytes_per_shard = 16e6;
  double shrink_backlog_bytes_per_shard = 1e6;

  // --- robustness: overload policy, retry, quarantine (PR 6) ---------------
  // What admission does when the server is overloaded (queue depth per live
  // shard >= overload_depth_per_shard, or the windowed p99 enqueue->
  // dispatch wait >= overload_wait_p99_ms with hysteresis — see
  // OverloadDetector).  Registry names, drift-checked against the README:
  //   "block"    today's behaviour (the oracle): submit blocks on the full
  //              queue until space frees — latency unbounded under
  //              sustained overload.
  //   "reject"   fail fast: submit throws af::Error(kOverloaded) while the
  //              pressure lasts; admitted requests keep bounded waits.
  //   "degrade"  admit everything, but serve GEMMs cost-only on the shard
  //              default engine (no output, per-request fidelity override
  //              dropped) and shed the sampled audit fraction while the
  //              pressure lasts; full fidelity resumes when the window
  //              clears.
  std::string overload_policy = "block";
  double overload_depth_per_shard = 16.0;
  double overload_wait_p99_ms = 50.0;
  // Optional third overload trip: queued projected DRAM bytes per live
  // shard (0 = off).  With the memory hierarchy enabled, an overload can
  // be bandwidth-borne — shallow queues of huge-footprint GEMMs — which
  // the depth and wait signals both under-report.  Participates in the
  // windowed detector AND the instantaneous admission check.
  double overload_backlog_bytes_per_shard = 0.0;
  // Hysteresis patience (control ticks) for the windowed-p99 signal.
  int overload_enter_patience = 1;
  int overload_exit_patience = 2;
  // Default engine-fault retry budget per request (SubmitOptions can
  // override): a request whose shard engine threw kEngineFault is
  // resubmitted to a different shard up to this many times with capped
  // exponential backoff.  0 = fail on first fault (pre-PR-6 behaviour).
  int max_retries = 0;
  double retry_backoff_base_ms = 0.1;
  double retry_backoff_max_ms = 5.0;
  // Consecutive engine faults on one shard before it is quarantined —
  // banned from submit routing, its deque drained to healthy shards, its
  // worker probing for recovery instead of serving (0 = never quarantine).
  int quarantine_after_faults = 0;
  // Recovery probe cadence of a quarantined shard: each probe rebuilds the
  // shard's engine and runs a tiny GEMM; success rejoins the pool.
  double quarantine_probe_interval_ms = 5.0;
  // Degrade-mode scratchpad shrink: with the memory hierarchy enabled and
  // this fraction < 1, GEMMs admitted under the "degrade" policy are served
  // on an engine whose scratchpad holds only this fraction of the
  // configured spad_bytes — smaller tile footprints, so degraded traffic
  // competes less for the buffer capacity the full-fidelity stream needs.
  // The operator must leave enough for the workload's minimum working set;
  // an infeasible shape fails that request with kInvalidArgument.  1.0
  // (the default) serves degraded traffic on the regular shard engine.
  double degrade_spad_fraction = 1.0;
  // Fault-injection knobs forwarded to every shard engine the server
  // builds — only meaningful with backend = "chaos" (the defaults inject
  // nothing).  A quarantine recovery probe rebuilds the engine, which
  // restarts the chaos schedule from run 1 — how recovery succeeds against
  // a deterministic throw_every_n engine.
  engine::ChaosOptions chaos;
};

// Overload-policy registry (mirrors the engine/dispatcher name contracts:
// the README's policy matrix must list exactly these names — CI diffs the
// two).
enum class OverloadPolicy { kBlock, kReject, kDegrade };
OverloadPolicy parse_overload_policy(const std::string& name);
std::vector<std::string> overload_policy_names();
// One-line human description per policy (the README matrix source).
std::string overload_policy_description(const std::string& name);

// Pure hysteresis state machine of the windowed overload signal, separated
// from the server so enter/exit behaviour is unit-testable on synthetic
// pressure traces (mirrors AutoscalePolicy).  One update() per control
// tick; the EXIT thresholds are half the enter thresholds, so the band
// between them is the dead zone that stops a borderline load from
// flapping admission decisions.
struct OverloadDetector {
  double depth_per_shard = 16.0;
  double wait_p99_ms = 50.0;
  // Optional byte-pressure trip (queued projected DRAM bytes per live
  // shard); 0 disables the term entirely.
  double backlog_bytes_per_shard = 0.0;
  int enter_patience = 1;
  int exit_patience = 2;

  // Feeds one tick's pressure sample; returns the new overloaded state.
  bool update(double depth_per_shard_now, double wait_p99_ms_now,
              double backlog_bytes_per_shard_now = 0.0);

  bool overloaded = false;
  int enter_streak = 0;
  int exit_streak = 0;
};

// Which pressure signal AutoscalePolicy pairs with queue depth: the
// wall-clock p99 wait (classic), the queued simulated work in MACs
// (hardware pressure — what a "cycle" pool is actually behind on), or the
// queued projected DRAM traffic in bytes (bandwidth pressure — what a
// memory-bound pool is actually behind on).
enum class AutoscaleSignal { kWaitP99, kBacklogCost, kBacklogBytes };
AutoscaleSignal parse_autoscale_signal(const std::string& name);

// Pure hysteresis policy of the queue-pressure autoscaler, separated from
// the server so the no-flapping property is unit-testable on synthetic
// load traces (square waves) without threads or clocks.  One decide() call
// per control tick; streak state lives in the struct.
struct AutoscalePolicy {
  int min_shards = 1;
  int max_shards = 1;
  double grow_depth_per_shard = 4.0;
  double grow_wait_p99_ms = 5.0;
  double shrink_depth_per_shard = 0.5;
  double shrink_wait_p99_ms = 1.0;
  int grow_patience = 2;
  int shrink_patience = 8;
  AutoscaleSignal signal = AutoscaleSignal::kWaitP99;
  // backlog_cost thresholds (queued MACs per live shard), used in place of
  // the wait-p99 pair when signal == kBacklogCost.
  double grow_backlog_macs_per_shard = 4e6;
  double shrink_backlog_macs_per_shard = 0.25e6;
  // backlog_bytes thresholds (queued projected DRAM bytes per live shard),
  // used when signal == kBacklogBytes.
  double grow_backlog_bytes_per_shard = 16e6;
  double shrink_backlog_bytes_per_shard = 1e6;

  // Desired live-shard count after observing this tick's pressure sample.
  // Grows/shrinks by at most one shard per decision (gradual scaling), and
  // only after the respective streak survives `patience` ticks unbroken —
  // any tick outside a band resets the opposite streak, so an oscillating
  // signal with period < patience never moves the pool.  The latency term
  // is wait_p99_ms, backlog_macs_per_shard or backlog_bytes_per_shard
  // depending on `signal`; the depth term participates either way.
  int decide(int live, double depth_per_shard, double wait_p99_ms,
             double backlog_macs_per_shard = 0.0,
             double backlog_bytes_per_shard = 0.0);

  int grow_streak = 0;
  int shrink_streak = 0;
};

// Per-submission knobs for the robustness-aware entry points.  The legacy
// positional overloads delegate here with everything defaulted, so the two
// surfaces cannot drift.
struct SubmitOptions {
  int k = 0;                 // pipeline mode (0 = optimizer's choice)
  bool want_output = true;   // false = cost-only traffic
  std::string backend;       // per-request engine override ("" = shard's)
  // Wall-clock budget from submission; 0 = none.  An overdue request is
  // failed with af::Error(kDeadlineExceeded) — reaped while queued by the
  // dispatcher sweep, or at the shard right before execution.
  double deadline_ms = 0.0;
  // How long submit may block on a full queue before failing with
  // kOverloaded: < 0 = wait forever (the classic blocking submit),
  // 0 = never block, > 0 = bounded wait.  Independent of the overload
  // POLICY check, which fires before the queue is even tried.
  double admission_timeout_ms = -1.0;
  // Engine-fault retry budget for this request; -1 = ServerOptions default.
  int max_retries = -1;
};

struct ShardSnapshot {
  int shard = 0;
  bool live = false;               // currently in the serving set
  bool quarantined = false;        // banned from routing, probing recovery
  std::string backend;             // engine that served this shard's work
  std::int64_t batches = 0;        // dispatches executed
  std::int64_t requests = 0;       // requests served (incl. coalesced)
  std::int64_t fused_runs = 0;     // hardware GEMM runs after fusion
  std::int64_t mode_switches = 0;  // reconfigurations between modes
  // Stolen batches that arrived already in this shard's configured mode —
  // the locality-aware steal scan's first pass found a same-mode victim,
  // so the batch ran without the reconfiguration drain.
  std::int64_t steal_drains_avoided = 0;
  std::int64_t engine_faults = 0;  // engine throws observed on this shard
  std::int64_t audit_runs = 0;     // fused runs replayed cycle-accurately
  std::int64_t audit_mismatches = 0;  // replays disagreeing with the serve run
  double busy_time_ps = 0.0;       // simulated execution time
  double energy_pj = 0.0;          // simulated energy of useful work
  double reconfig_time_ps = 0.0;   // simulated drain/reconfigure time
  double reconfig_energy_pj = 0.0; // leakage burned while reconfiguring
  std::map<int, double> busy_ps_by_mode;
  int current_k = 0;               // 0 = not in a uniform GEMM mode
};

struct ServerStats {
  std::int64_t submitted = 0;  // logical requests accepted
  std::int64_t completed = 0;  // logical requests fulfilled
  std::string dispatcher;      // dispatcher registry key
  int live_shards = 0;         // current serving set size
  std::int64_t steals = 0;     // batches obtained by work stealing
  std::int64_t scale_ups = 0;  // shards added by the autoscaler
  std::int64_t scale_downs = 0;  // shards retired by the autoscaler
  // --- robustness accounting (every failed request lands in exactly one
  // bucket; submitted == completed always balances, failures included) ----
  std::string overload_policy;   // policy registry key
  bool overloaded = false;       // windowed overload signal, now
  std::int64_t rejected = 0;     // admissions refused (kOverloaded)
  std::int64_t expired = 0;      // deadlines missed (kDeadlineExceeded)
  std::int64_t engine_faults = 0;  // engine throws observed across shards
  std::int64_t retries = 0;      // fault resubmissions to another shard
  std::int64_t quarantines = 0;  // shards pulled for consecutive faults
  std::int64_t degraded = 0;     // requests served cost-only under pressure
  // Requests still queued when quiesce() killed the server, failed with
  // kUnavailable (never executed — safe for a fleet to re-admit elsewhere).
  std::int64_t unserved = 0;
  // Queued simulated work right now, in MACs (the dispatcher's lock-free
  // backlog-cost mirror) — the fleet router's load signal.
  std::int64_t backlog_macs = 0;
  // Queued projected DRAM traffic right now, in bytes (the dispatcher's
  // lock-free backlog-bytes mirror) — the bandwidth-pressure twin.
  std::int64_t backlog_bytes = 0;
  std::int64_t promise_double_sets = 0;  // broken-promise bugs caught (== 0)
  // --- cost memoization (engine/cost_cache.h) -------------------------------
  // Hits and misses of the server-wide CostEstimate cache, shared by the
  // admission argmin/sweep, every shard engine's evaluate paths, and the
  // batched cost API.  A hit answers from the sharded map; a miss pays the
  // full closed-form finalization once and publishes it.
  std::int64_t cost_cache_hits = 0;
  std::int64_t cost_cache_misses = 0;
  // --- runtime reconfiguration (serve/reconfig.h) --------------------------
  std::string reconfig_policy;   // policy registry key
  // Stream-mode moves the admission policy decided on (each one costs the
  // executing shard a drain when its array was configured differently).
  // Both counters stay 0 under "argmin": the default keeps the historical
  // lock-free admission path and never consults the policy state machine.
  std::int64_t reconfig_stream_switches = 0;
  // Requests held on the stream mode AGAINST their own per-request argmin —
  // the drains the "sticky" policy declined to pay (always 0 for "argmin").
  std::int64_t reconfig_holds = 0;
  // One snapshot per SLOT (max_shards entries): retired slots keep their
  // history with live == false.
  std::vector<ShardSnapshot> shards;
  std::vector<TenantSnapshot> tenants;

  std::int64_t audit_runs() const;
  std::int64_t audit_mismatches() const;
};

class Server {
 public:
  // `shard_config` describes one shard's array; its SimOptions thread count
  // is ignored (the server controls simulation threading via options).
  explicit Server(const arch::ArrayConfig& shard_config,
                  ServerOptions options = {});
  ~Server();  // drains accepted work, then stops the shards

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // X = a x *b in mode k (0 = per-request optimizer choice).  `b` is the
  // shared stationary weight matrix — requests naming the same matrix (by
  // pointer) with equal shapes and modes are fused into one hardware run.
  // `want_output` = false marks cost-estimation traffic: the result's
  // cycles/time/energy are exact but `out` comes back empty, and on the
  // analytic backend the operands are never even read — the cheapest way
  // to price millions of GEMMs.  `backend` (optional) pins THIS request to
  // a specific registered engine regardless of the shard default —
  // fidelity routing per submission, layered on top of audit sampling;
  // unknown names are rejected here with the registry listed.  Blocks
  // while the queue is full; throws af::Error after shutdown.
  std::future<GemmResult> submit_gemm(const std::string& tenant,
                                      gemm::Mat32 a,
                                      std::shared_ptr<const gemm::Mat32> b,
                                      int k = 0, bool want_output = true,
                                      const std::string& backend = "");

  // Robustness-aware variant: deadline, bounded admission wait, retry
  // budget (see SubmitOptions).  Throws af::Error(kOverloaded) when the
  // "reject" policy sheds the request or the admission timeout elapses on
  // a full queue; af::Error(kShutdown) after shutdown.  The legacy
  // overload above delegates here.
  std::future<GemmResult> submit_gemm(const std::string& tenant,
                                      gemm::Mat32 a,
                                      std::shared_ptr<const gemm::Mat32> b,
                                      const SubmitOptions& submit);

  // Batched cost queries: prices every shape in one call — one admission
  // check, one queue hop, one pooled completion slot for the whole batch —
  // and the shard answers through Engine::evaluate_batch (vectorized
  // closed forms + the shared CostEstimate cache).  Results are EXACTLY
  // equal to submit_gemm(want_output=false) per shape, in submission
  // order; submit.k = 0 resolves each shape's mode by the Eq. 6 argmin.
  // Each shape counts as one logical request in ServerStats (submitted/
  // completed move by shapes.size()).  SubmitOptions::want_output is
  // ignored (the batched path is cost-only by construction); deadline,
  // admission timeout, retries and the backend override apply to the
  // batch as a unit.  Throws like submit_gemm (kOverloaded under the
  // reject policy or admission timeout, kShutdown after shutdown);
  // BatchTicket::get() blocks for the estimates and rethrows a serving-
  // side failure.
  BatchTicket submit_gemm_batch(const std::string& tenant,
                                std::span<const gemm::GemmShape> shapes,
                                const SubmitOptions& submit = {});

  // Whole-model inference, sharded: the model's layers are split into up to
  // live_shards contiguous slices evaluated on different shards; the merged
  // report is bit-identical to InferenceRunner::run on one array with this
  // shard config.  Coalesces with concurrent submissions of the same model
  // (by shared_ptr identity).
  std::future<InferenceResult> submit_inference(
      const std::string& tenant, std::shared_ptr<const nn::Model> model);

  // Robustness-aware variant (deadline / admission timeout / retries apply
  // per layer-slice; one failed slice fails the whole join with that
  // slice's error).  SubmitOptions::k, want_output and backend are ignored
  // for inference.
  std::future<InferenceResult> submit_inference(
      const std::string& tenant, std::shared_ptr<const nn::Model> model,
      const SubmitOptions& submit);

  // The windowed overload signal as of the last control tick (always false
  // under the "block" policy with autoscaling off — no control thread).
  bool overloaded() const { return overloaded_.load(); }

  // Currently live shards (autoscaling moves this between min/max bounds).
  int num_shards() const { return live_shards_.load(); }
  int max_shards() const { return static_cast<int>(shards_.size()); }
  const arch::ArrayConfig& shard_config() const { return shard_config_; }
  const std::string& backend() const { return options_.backend; }
  const std::string& dispatcher() const { return dispatcher_->name(); }

  ServerStats stats() const;

  // Queued simulated work right now, in MACs — a lock-free read of the
  // dispatcher's backlog-cost mirror.  The load signal the fleet router's
  // power-of-two-choices placement compares servers by.
  std::int64_t backlog_cost_macs() const { return dispatcher_->approx_cost(); }

  // Queued projected DRAM traffic right now, in bytes — the bandwidth
  // twin of backlog_cost_macs, from the dispatcher's backlog-bytes mirror.
  std::int64_t backlog_cost_bytes() const {
    return dispatcher_->approx_bytes();
  }

  // Closes admission, drains every accepted request, joins the autoscaler
  // and the shard workers.  Idempotent; the destructor calls it.
  void shutdown();

  // Simulated CRASH: closes admission immediately and fails everything
  // still queued with af::Error(kUnavailable) instead of serving it —
  // ServerStats::unserved counts them.  In-flight batches still finish and
  // deliver (a real process death would lose them; in-process we keep the
  // stronger contract that every accepted promise resolves).  The crucial
  // guarantee for the fleet layer: a kUnavailable request was NEVER
  // executed, so re-admitting it on another server cannot double-serve.
  // Idempotent; safe concurrently with shutdown().
  void quiesce();

  // Simulated STALL failpoint: while paused, shard workers stop picking up
  // batches (queued work sits, admission stays open, deadlines keep
  // running).  pause_serving(false) resumes; quiesce()/shutdown() override
  // a pause so a stalled server still dies and drains cleanly.
  void pause_serving(bool paused) {
    paused_.store(paused, std::memory_order_release);
  }
  bool serving_paused() const {
    return paused_.load(std::memory_order_acquire);
  }

 private:
  struct Shard;

  void shard_loop(Shard& shard);
  void execute_gemm_batch(Shard& shard, Batch& batch);
  void execute_infer_batch(Shard& shard, Batch& batch);
  // Batched cost queries: answers each request's shapes through the
  // engine's vectorized evaluate_batch and completes its pooled slot.
  // Never touches the array configuration (no prepare_mode, no drain) —
  // planning traffic must not stall execution.
  void execute_cost_batch(Shard& shard, Batch& batch);
  // Delivers `error` to every still-pending client of the batch (promise
  // set_exception; inference joins are marked failed so sibling slices
  // stand down) — a bad request fails its own futures, not the server.
  void fail_batch(Batch& batch, std::exception_ptr error);
  // Core failure delivery: fails each request's promise with `error`,
  // counts completions and per-tenant errors under `code`.  A promise that
  // was already satisfied is a double-set bug: counted in
  // ServerStats::promise_double_sets and fatal in debug builds.
  void fail_requests(std::vector<Request>& requests, std::exception_ptr error,
                     ErrorCode code);
  // Shard-side reaper half: fails batch.expired (reaped while queued) and
  // any rider that went overdue between assembly and now.
  void resolve_expired(Batch& batch);
  // Engine-throw containment: classifies `error`, retries retry-permitting
  // requests on a different shard with capped exponential backoff, fails
  // the rest, and quarantines the shard after quarantine_after_faults
  // consecutive faults.
  void handle_batch_failure(Shard& shard, Batch& batch,
                            std::exception_ptr error);
  // Quarantined-shard recovery probe: rebuilds the shard's engine and runs
  // a tiny GEMM; on success the shard rejoins the routing pool.  Returns
  // true when the shard is healthy again.
  bool probe_quarantined(Shard& shard);
  // The submit-path overload trip: the detector's windowed verdict OR an
  // instantaneous queue-depth check (so a burst trips admission before the
  // next control tick can see it).
  bool under_pressure() const;
  // Mode bookkeeping before a GEMM batch runs in mode k: counts the switch
  // and bills the drain (time at the new mode's clock, leakage energy) to
  // the shard when it was configured differently, publishes the new mode
  // to the dispatcher's locality signal, and credits a stolen batch that
  // arrived already in the configured mode (steal_drains_avoided).
  void prepare_mode(Shard& shard, int k, bool stolen = false);

  // Engine lifecycle on scale events: acquire builds the shard's serving
  // (and audit) engine through engine_builder_ and marks it live; release
  // drops them after the worker joined.
  void acquire_shard(Shard& shard);
  void release_shard(Shard& shard);
  void start_worker(Shard& shard);
  // The batch's execution engine: the shard default, or the per-request
  // override built lazily (and cached) on the shard.
  engine::Engine* engine_for(Shard& shard, const Batch& batch);

  // Control thread: one loop drains the wait window each tick and feeds
  // BOTH the autoscaler policy and the overload detector.  Runs whenever
  // autoscaling is enabled OR the overload policy is not "block".
  void control_loop();
  void grow_to(int want);
  void shrink_to(int want);
  // Updates every ShardSnapshot::live flag AND live_shards_ under the
  // stats mutex, so stats() snapshots are always internally consistent
  // (flag count == live_shards).
  void publish_live_set(int live);

  arch::ArrayConfig shard_config_;
  ServerOptions options_;
  int min_shards_ = 1;
  int max_shards_ = 1;
  bool autoscale_enabled_ = false;
  std::unique_ptr<util::ThreadPool> sim_pool_;
  // The one builder every shard acquires engines through — shard config,
  // the paper's calibrated clock, the server's energy params, the shared
  // pool (also the scale-event and per-request-override engine source).
  engine::EngineBuilder engine_builder_;
  // Serial analytic engine used at admission for per-request mode choice
  // (mode planning is closed-form on every backend).
  std::shared_ptr<engine::Engine> admission_engine_;
  // The server-wide CostEstimate memoization cache (engine/cost_cache.h),
  // injected into the admission engine and — through engine_builder_ —
  // every shard, audit, override and degrade engine: one shape priced
  // anywhere is priced everywhere.  Keys carry the config/energy
  // fingerprint, so engines with DIFFERENT wiring (the shrunk-scratchpad
  // degrade engine) share the map without ever sharing entries.
  std::shared_ptr<engine::CostCache> cost_cache_;
  // Freelist of batched-path completion slots (see serve/batch_slot.h).
  SlotPool slot_pool_;
  std::unique_ptr<Dispatcher> dispatcher_;
  TenantAccountant tenants_;
  LatencyWindow wait_window_;  // autoscaler pressure signal
  std::vector<std::unique_ptr<Shard>> shards_;  // max_shards_ slots

  std::atomic<int> live_shards_{0};
  AutoscalePolicy policy_;
  std::thread autoscaler_;             // the control thread (see control_loop)
  bool control_enabled_ = false;       // autoscale or non-block policy
  std::mutex scale_mutex_;             // serializes scale transitions
  std::condition_variable scale_cv_;   // wakes the control thread for shutdown
  std::atomic<std::int64_t> scale_ups_{0};
  std::atomic<std::int64_t> scale_downs_{0};

  OverloadPolicy overload_policy_ = OverloadPolicy::kBlock;
  OverloadDetector detector_;          // control-thread private state
  std::atomic<bool> overloaded_{false};  // detector's published verdict

  // Admission-time pipeline-mode policy for optimizer-choice GEMMs.  The
  // mutex serializes concurrent submitters through the policy's stream
  // state; the "argmin" default never takes it (stateless fast path).
  ReconfigPolicy reconfig_;
  mutable std::mutex reconfig_mutex_;

  std::atomic<std::uint64_t> next_id_{0};
  std::atomic<std::int64_t> submitted_{0};
  std::atomic<std::int64_t> completed_{0};
  std::atomic<std::int64_t> rejected_{0};
  std::atomic<std::int64_t> expired_{0};
  std::atomic<std::int64_t> engine_faults_{0};
  std::atomic<std::int64_t> retries_{0};
  std::atomic<std::int64_t> quarantines_{0};
  std::atomic<std::int64_t> degraded_{0};
  std::atomic<std::int64_t> unserved_{0};
  std::atomic<std::int64_t> promise_double_sets_{0};
  std::atomic<bool> paused_{false};  // the stall failpoint (pause_serving)
  // Set by quiesce() BEFORE it releases workers: a worker seeing it exits
  // without calling next_batch again, so queued work stays in the
  // dispatcher for the kUnavailable strand — never half-served on the way
  // down.  (shutdown() leaves it false: its workers DO drain the queue.)
  std::atomic<bool> quiescing_{false};
  mutable std::mutex shard_stats_mutex_;  // guards every Shard::stats
  std::mutex shutdown_mutex_;
  std::atomic<bool> shut_down_{false};
};

}  // namespace af::serve
