// Multi-tenant batch serving over a pool of ArrayFlex execution engines.
//
//   clients ──submit──▶ RequestQueue ──▶ BatchScheduler ──▶ shard workers
//                      (bounded MPMC,    (mode/model         (one thread +
//                       DRR tenant        coalescing)         one engine
//                       fairness)                             each)
//
// The Server owns N identical shards, each wrapping one engine::Engine
// (ServerOptions::backend picks the fidelity: "analytic" closed-form cost
// models by default — orders of magnitude more requests/s — or "cycle" for
// full cycle-accurate simulation; both return bit-identical outputs and
// exactly equal cycle/activity/energy numbers, a contract pinned by
// tests/engine_test.cpp).  Each shard carries its own pipeline-mode state
// (the paper's configurable transparent pipelining: switching a shard
// between modes drains the array, so the scheduler batches same-mode work
// and the shard accounts every reconfiguration).  Client threads submit
// GEMMs (activations against shared stationary weights) or whole nn::Model
// inferences and block on the returned future; a model inference is split
// into contiguous layer slices, one per shard, and joined back into a
// report bit-identical to a direct InferenceRunner::run.
//
// Audit mode: with audit_fraction > 0 (and a non-measuring backend), each
// shard deterministically replays that fraction of its fused GEMM runs on
// a cycle-accurate audit engine and cross-checks — outputs bit-exact,
// cycles / ActivityCounters / energy exactly equal.  Mismatches are
// counted per shard (ShardSnapshot::audit_mismatches), so analytic serving
// at full speed continuously spot-checks itself against ground truth.
//
// Scheduling: requests land in per-tenant FIFOs dispatched by deficit
// round-robin over the request's MAC cost (serve/queue.h), so every
// backlogged tenant gets an equal long-run share of hardware regardless of
// request sizes; TenantSnapshot::served_share reports the realized shares.
//
// Simulation threading: all shards share ONE optional util::ThreadPool
// (ServerOptions::sim_threads), injected into every engine and runner —
// never a pool per component, so an S-shard server runs at most
// num_shards worker threads + sim_threads pool threads regardless of
// nesting (see the shared-pool contract in arch/array.h).
//
// Accounting: per-tenant latency percentiles / energy / MACs / served
// share via TenantAccountant, per-shard utilization (busy time by mode,
// mode switches, reconfiguration overhead, audit counters) via
// ShardSnapshot.

#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "arch/config.h"
#include "arch/power_model.h"
#include "engine/engine.h"
#include "serve/queue.h"
#include "serve/request.h"
#include "serve/scheduler.h"
#include "serve/tenant_stats.h"

namespace af::util {
class ThreadPool;
}

namespace af::serve {

struct ServerOptions {
  int num_shards = 2;
  // Engine backend each shard serves with (engine::make registry key).
  // "analytic" trades cycle-by-cycle measurement for orders-of-magnitude
  // throughput at identical numbers; "cycle" is ground-truth simulation.
  std::string backend = "analytic";
  // Fraction of fused GEMM runs to replay on a cycle-accurate audit engine
  // and cross-check (0 disables; ignored when the serving backend already
  // measures).  Sampling is deterministic per shard: every time the
  // accumulated fraction crosses 1, the next fused run is audited.
  double audit_fraction = 0.0;
  // Coalescing cap per dispatch; 1 disables batching entirely.
  int max_batch = 8;
  // Admission bound: submit blocks once this many requests are queued.
  std::size_t queue_capacity = 256;
  // DRR quantum in cost units (MACs) credited per scheduling round — see
  // serve/queue.h.  Any positive value gives equal long-run tenant shares.
  std::int64_t drr_quantum = RequestQueue::kDefaultQuantum;
  // Shared simulation pool threads; 1 (default) keeps every shard's
  // engine serial (parallelism then comes from the shards themselves),
  // 0 means all hardware threads — the repo-wide num_threads convention.
  int sim_threads = 1;
  // Range of the per-tenant latency histogram (percentile resolution).
  double latency_hist_max_ms = 10e3;
  // Cycles to drain + reconfigure a shard between pipeline modes; -1 means
  // rows + cols of the shard config (full pipeline flush).
  std::int64_t reconfig_cycles = -1;
  arch::EnergyParams energy = arch::EnergyParams::generic28nm();
};

struct ShardSnapshot {
  int shard = 0;
  std::string backend;             // engine that served this shard's work
  std::int64_t batches = 0;        // dispatches executed
  std::int64_t requests = 0;       // requests served (incl. coalesced)
  std::int64_t fused_runs = 0;     // hardware GEMM runs after fusion
  std::int64_t mode_switches = 0;  // reconfigurations between modes
  std::int64_t audit_runs = 0;     // fused runs replayed cycle-accurately
  std::int64_t audit_mismatches = 0;  // replays disagreeing with the serve run
  double busy_time_ps = 0.0;       // simulated execution time
  double energy_pj = 0.0;          // simulated energy of useful work
  double reconfig_time_ps = 0.0;   // simulated drain/reconfigure time
  double reconfig_energy_pj = 0.0; // leakage burned while reconfiguring
  std::map<int, double> busy_ps_by_mode;
  int current_k = 0;               // 0 = not in a uniform GEMM mode
};

struct ServerStats {
  std::int64_t submitted = 0;  // logical requests accepted
  std::int64_t completed = 0;  // logical requests fulfilled
  std::vector<ShardSnapshot> shards;
  std::vector<TenantSnapshot> tenants;

  std::int64_t audit_runs() const;
  std::int64_t audit_mismatches() const;
};

class Server {
 public:
  // `shard_config` describes one shard's array; its SimOptions thread count
  // is ignored (the server controls simulation threading via options).
  explicit Server(const arch::ArrayConfig& shard_config,
                  ServerOptions options = {});
  ~Server();  // drains accepted work, then stops the shards

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // X = a x *b in mode k (0 = per-request optimizer choice).  `b` is the
  // shared stationary weight matrix — requests naming the same matrix (by
  // pointer) with equal shapes and modes are fused into one hardware run.
  // `want_output` = false marks cost-estimation traffic: the result's
  // cycles/time/energy are exact but `out` comes back empty, and on the
  // analytic backend the operands are never even read — the cheapest way
  // to price millions of GEMMs.  Blocks while the queue is full; throws
  // af::Error after shutdown.
  std::future<GemmResult> submit_gemm(const std::string& tenant,
                                      gemm::Mat32 a,
                                      std::shared_ptr<const gemm::Mat32> b,
                                      int k = 0, bool want_output = true);

  // Whole-model inference, sharded: the model's layers are split into up to
  // num_shards contiguous slices evaluated on different shards; the merged
  // report is bit-identical to InferenceRunner::run on one array with this
  // shard config.  Coalesces with concurrent submissions of the same model
  // (by shared_ptr identity).
  std::future<InferenceResult> submit_inference(
      const std::string& tenant, std::shared_ptr<const nn::Model> model);

  int num_shards() const { return static_cast<int>(shards_.size()); }
  const arch::ArrayConfig& shard_config() const { return shard_config_; }
  const std::string& backend() const { return options_.backend; }

  ServerStats stats() const;

  // Closes admission, drains every accepted request, joins the shard
  // workers.  Idempotent; the destructor calls it.
  void shutdown();

 private:
  struct Shard;

  void shard_loop(Shard& shard);
  void execute_gemm_batch(Shard& shard, Batch& batch);
  void execute_infer_batch(Shard& shard, Batch& batch);
  // Delivers `error` to every still-pending client of the batch (promise
  // set_exception; inference joins are marked failed so sibling slices
  // stand down) — a bad request fails its own futures, not the server.
  void fail_batch(Batch& batch, std::exception_ptr error);
  // Mode bookkeeping before a GEMM batch runs in mode k: counts the switch
  // and bills the drain (time at the new mode's clock, leakage energy) to
  // the shard when it was configured differently.
  void prepare_mode(Shard& shard, int k);

  arch::ArrayConfig shard_config_;
  ServerOptions options_;
  std::unique_ptr<util::ThreadPool> sim_pool_;
  // Serial analytic engine used at admission for per-request mode choice
  // (mode planning is closed-form on every backend).
  std::shared_ptr<engine::Engine> admission_engine_;
  RequestQueue queue_;
  BatchScheduler scheduler_;
  TenantAccountant tenants_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<std::uint64_t> next_id_{0};
  std::atomic<std::int64_t> submitted_{0};
  std::atomic<std::int64_t> completed_{0};
  mutable std::mutex shard_stats_mutex_;  // guards every Shard::stats
  std::mutex shutdown_mutex_;
  std::atomic<bool> shut_down_{false};
};

}  // namespace af::serve
