// Pluggable dispatch layer between request admission and the shard
// workers — the serving control plane's hot path.
//
// PR 4 pushed the analytic backend past 100k req/s open-loop, at which
// point the single serve::RequestQueue mutex became the bottleneck: every
// producer thread and every shard worker serialized through one lock (and
// one DRR ring scan).  A Dispatcher decouples that topology from the
// server.  Two implementations ship behind a string-keyed registry
// mirroring engine::make:
//
//   "global"    One DRR queue shared by every shard — exactly the PR-4
//               data path, kept as the semantics oracle the stealing
//               dispatcher is tested against.
//
//   "stealing"  Per-shard bounded DRR deques.  submit() routes by
//               affinity_hash — tenant identity for GEMMs, (model, slice)
//               for inference slices — so a tenant's same-mode, same-weight
//               stream lands in ONE deque where the coalescing sweep and
//               same-weight fusion still find their batches locally, and
//               producers hashing to different homes never contend.  A
//               shard whose own deque runs dry steals from a random
//               victim: it pops the victim's DRR-selected head and
//               assembles the riders from the victim's deque — a WHOLE
//               DRR round moves, so per-tenant served_share fairness is
//               preserved globally (the victim's DRR chose whose turn it
//               was; the thief only changes which engine executes it).
//               Rounds shorter than max_batch top up with compatible
//               riders from the other deques (each charged to its own
//               tenant's deficit), so partitioning never costs batching
//               efficiency against the pooled global queue.
//
// Scale events: the live shard set is a prefix [0, live) of the slot
// space.  set_live_shards(smaller) retires the top slots and drains their
// deques back into the live queues (rehashed), so no accepted request is
// stranded behind a parked worker; next_batch(shard) returns nullopt for a
// retired shard, which is the worker's signal to exit.  A submission that
// raced a scale-down and landed in a retired deque (after its drain) is
// still served: the steal scan covers every slot, live or not, and live
// workers additionally probe the retired slots every 64th dispatch, so
// the orphan is picked up even under sustained saturation when no deque
// ever runs dry.
//
// close() + drain semantics match RequestQueue: producers fail fast,
// workers drain every queue (own and victims') before seeing nullopt, so
// shutdown never drops an accepted request.

#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "serve/queue.h"
#include "serve/request.h"
#include "serve/scheduler.h"

namespace af::serve {

struct DispatcherOptions {
  // Admission bound.  "global" applies it to the one shared queue;
  // "stealing" applies it per home deque (each deque is its own
  // backpressure domain — see the README migration notes).
  std::size_t queue_capacity = 256;
  std::int64_t drr_quantum = RequestQueue::kDefaultQuantum;
  // Deadline-weighted DRR (see the RequestQueue constructor): requests
  // within `drr_deadline_urgent_ms` of their deadline earn their tenant a
  // multiplied quantum, capped at `drr_deadline_weight_cap` x the fair
  // share.  0 (the default) disables the weighting.
  std::int64_t drr_deadline_urgent_ms = 0;
  std::int64_t drr_deadline_weight_cap = 8;
  // Coalescing cap per dispatch; 1 disables batching.
  int max_batch = 8;
  // Byte budget per batch (summed Request::drr_bytes, the projected DRAM
  // traffic); 0 = unlimited.  See assemble_batch.
  std::int64_t max_batch_bytes = 0;
  // Slot space: the most shards the server may ever scale to.
  int max_shards = 1;
  // Initially live prefix [0, live_shards).
  int live_shards = 1;
  // False promises set_live_shards will never be called (a fixed pool, no
  // autoscaler): the global dispatcher then parks idle workers fully
  // blocking in pop() instead of the poll loop a retirement check needs —
  // an idle default-configured server makes zero wakeups.
  bool can_scale = true;
  // Seed of the stealing dispatcher's victim randomization.
  std::uint64_t steal_seed = 0x517cc1b727220a95ULL;
  // Test-only failpoint hook: when set, the stealing dispatcher invokes it
  // at named race-prone sites ("submit" before routing a request, "steal"
  // after choosing a victim, "drain" per request while a retiring or
  // banned deque is rehomed) so fault-injection tests can widen race
  // windows with targeted sleeps.  Null (the default) costs one branch.
  std::function<void(const char* site)> failpoint;
};

// Outcome of a timed submit_for: routed and queued, still full after the
// wait (the request stays with the caller), or closed for good.
enum class SubmitResult { kAccepted, kWouldBlock, kClosed };

// Routing and batch formation policy.  Thread safety: submit() from many
// producers, next_batch() from many workers, set_live_shards()/close()
// from one control thread, all concurrently.
class Dispatcher {
 public:
  Dispatcher() = default;
  virtual ~Dispatcher();

  Dispatcher(const Dispatcher&) = delete;
  Dispatcher& operator=(const Dispatcher&) = delete;

  // Registry key ("global", "stealing").
  virtual const std::string& name() const = 0;

  // Routes one request.  Blocks while the target queue is full (admission
  // backpressure); returns false — dropping the request — once closed.
  bool submit(Request r) {
    return submit_for(r, std::chrono::microseconds::max()) ==
           SubmitResult::kAccepted;
  }

  // Timed admission: waits up to `timeout` for queue space (0 probes
  // non-blocking, microseconds::max() blocks like submit).  Moves from `r`
  // only on kAccepted — on kWouldBlock/kClosed the request and its promise
  // stay with the caller, who fails it with a typed error (the reject
  // overload policy and client admission timeouts ride on this).
  virtual SubmitResult submit_for(Request& r,
                                  std::chrono::microseconds timeout) = 0;

  // Blocks for shard `shard`'s next batch.  Returns nullopt when the shard
  // has been retired by set_live_shards, or when the dispatcher is closed
  // AND fully drained — either way the worker thread exits.  A returned
  // batch may carry deadline-expired requests (Batch::expired) for the
  // worker to fail — possibly with NO serveable requests at all.
  virtual std::optional<Batch> next_batch(int shard) = 0;

  // Quarantine support: a banned live shard is skipped by submit routing
  // and its queued backlog is drained back into the healthy set (the
  // retiring-deque drain reused), while the slot itself stays live so its
  // worker can probe for recovery.  Default no-op: the global dispatcher
  // has one shared queue and nothing to route around — its quarantined
  // worker simply stops calling next_batch.
  virtual void set_banned(int shard, bool banned) {
    (void)shard;
    (void)banned;
  }

  // Resizes the live prefix [0, live).  Shrinking drains the retired
  // shards' deques back into the live set before returning.  Must not be
  // called after close().
  virtual void set_live_shards(int live) = 0;
  virtual int live_shards() const = 0;

  // Closes admission; workers drain then exit.  Idempotent.
  virtual void close() = 0;

  // Requests currently queued across all shards — the autoscaler's
  // queue-pressure signal.
  virtual std::size_t depth() const = 0;

  // Lock-free depth HINT (sums the queues' relaxed approx_size mirrors):
  // the admission path's overload check reads it on every submit, where
  // depth()'s per-queue mutex round-trips would reintroduce the contention
  // the stealing dispatcher exists to remove.  May lag by an instant.
  virtual std::size_t approx_depth() const { return depth(); }

  // Lock-free backlog-cost HINT: summed Request::drr_cost (MACs) queued
  // across all shards, from the queues' relaxed approx_cost mirrors.  The
  // simulated-hardware-pressure twin of approx_depth — feeds the
  // backlog_cost autoscale signal and the fleet router's load reports.
  virtual std::int64_t approx_cost() const = 0;

  // Lock-free backlog-bytes HINT: summed Request::drr_bytes (projected
  // DRAM traffic) queued across all shards — the bandwidth-pressure twin
  // of approx_cost, feeding the backlog_bytes autoscale signal and the
  // byte-threshold overload check.
  virtual std::int64_t approx_bytes() const = 0;

  // Removes and returns EVERYTHING still queued, across all shards.  The
  // no-loss handoff hook: Server::quiesce calls it after close() so queued
  // work that will never run can be failed with kUnavailable (guaranteed
  // never-executed) and re-admitted elsewhere by the fleet layer.  Must
  // only be called after close() — with admission closed the drain cannot
  // race a successful push, so nothing is left behind.
  virtual std::vector<Request> drain_remaining() = 0;

  // Publishes the pipeline mode shard `shard`'s array is currently
  // configured in, so a locality-aware steal scan can prefer victims whose
  // pending round would skip the thief's reconfiguration drain.  Default
  // no-op: the global dispatcher has one queue and no victim choice.
  virtual void set_shard_mode(int shard, int k) {
    (void)shard;
    (void)k;
  }

  // Batches obtained by stealing (0 on dispatchers that never steal).
  virtual std::int64_t steals() const { return 0; }
};

// Submit-side affinity of the stealing dispatcher (exposed so tests can
// predict a request's home deque): tenant hash for GEMMs — a tenant's
// stream coalesces locally — and (model identity, slice index) for
// inference slices — concurrent submissions of the same model coalesce,
// while the slices of one inference spread across shards.
std::size_t affinity_hash(const Request& r);

// String-keyed factory — the one place dispatcher names resolve.  Like
// engine::make, the names returned by registered_dispatchers() are a
// public contract: the README's dispatcher table must list exactly these
// (CI diffs the two).
std::unique_ptr<Dispatcher> make_dispatcher(
    const std::string& name, const DispatcherOptions& options = {});
std::vector<std::string> registered_dispatchers();
// One-line human description per dispatcher (the README matrix source).
std::string dispatcher_description(const std::string& name);
// The registry keys quoted and comma-joined — the one formatter behind
// unknown-dispatcher error messages (mirrors engine::registered_backend_list).
std::string registered_dispatcher_list();

}  // namespace af::serve
