#include "serve/dispatcher.h"

#include <chrono>
#include <condition_variable>
#include <functional>
#include <limits>
#include <map>
#include <mutex>
#include <utility>

#include "util/status.h"

namespace af::serve {
namespace {

constexpr std::chrono::microseconds kIdleWait{500};

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// ---- "global": the PR-4 data path, kept as the semantics oracle ------------

class GlobalDispatcher final : public Dispatcher {
 public:
  explicit GlobalDispatcher(const DispatcherOptions& options)
      : queue_(options.queue_capacity, options.drr_quantum,
               options.drr_deadline_urgent_ms,
               options.drr_deadline_weight_cap),
        max_batch_(options.max_batch),
        max_batch_bytes_(options.max_batch_bytes),
        can_scale_(options.can_scale),
        live_(options.live_shards) {
    AF_CHECK(options.live_shards >= 1 &&
                 options.live_shards <= options.max_shards,
             "live_shards must be in [1, max_shards]");
  }

  const std::string& name() const override {
    static const std::string kName = "global";
    return kName;
  }

  SubmitResult submit_for(Request& r,
                          std::chrono::microseconds timeout) override {
    switch (queue_.push_for(r, timeout)) {
      case PushResult::kAccepted:
        return SubmitResult::kAccepted;
      case PushResult::kFull:
        return SubmitResult::kWouldBlock;
      case PushResult::kClosed:
        break;
    }
    return SubmitResult::kClosed;
  }

  std::optional<Batch> next_batch(int shard) override {
    if (!can_scale_) {
      // Fixed pool: this worker can never be retired, so park fully
      // blocking in pop() — an idle server makes no timed wakeups at all
      // (the pre-dispatcher behaviour).  Expiry needs no timed wakeup
      // either: a request can only sit past its deadline while the queue is
      // non-empty, and then pop() isn't parked — the reaper inside
      // assemble_batch runs at every dispatch.
      std::optional<Request> head = queue_.pop();
      if (!head) return std::nullopt;
      return assemble_batch(std::move(*head), queue_, max_batch_,
                            max_batch_bytes_);
    }
    for (;;) {
      if (shard >= live_.load(std::memory_order_acquire)) return std::nullopt;
      if (std::optional<Request> head = queue_.try_pop()) {
        return assemble_batch(std::move(*head), queue_, max_batch_,
                              max_batch_bytes_);
      }
      // kClosed is final (closed AND drained; no push succeeds after
      // close), so the tri-state wait doubles as the shutdown check — no
      // separate closed()/size() round-trip under the lock.
      if (queue_.wait_nonempty_for(kIdleWait) == WaitStatus::kClosed) {
        return std::nullopt;
      }
    }
  }

  void set_live_shards(int live) override {
    AF_CHECK(can_scale_,
             "set_live_shards on a fixed-pool dispatcher (can_scale=false): "
             "its workers block in pop() and would never observe the change");
    AF_CHECK(live >= 1, "at least one shard must stay live");
    live_.store(live, std::memory_order_release);
    // Retiring workers wake within one idle-wait tick; nothing to drain —
    // the single queue serves whoever remains.
  }

  int live_shards() const override {
    return live_.load(std::memory_order_acquire);
  }

  void close() override { queue_.close(); }

  std::size_t depth() const override { return queue_.size(); }

  std::size_t approx_depth() const override { return queue_.approx_size(); }

  std::int64_t approx_cost() const override { return queue_.approx_cost(); }

  std::int64_t approx_bytes() const override { return queue_.approx_bytes(); }

  std::vector<Request> drain_remaining() override {
    AF_CHECK(queue_.closed(), "drain_remaining before close");
    return queue_.drain_all();
  }

 private:
  RequestQueue queue_;
  const int max_batch_;
  const std::int64_t max_batch_bytes_;
  const bool can_scale_;
  std::atomic<int> live_;
};

// ---- "stealing": per-shard deques + rand-victim round stealing -------------

class StealingDispatcher final : public Dispatcher {
 public:
  explicit StealingDispatcher(const DispatcherOptions& options)
      : max_batch_(options.max_batch),
        max_batch_bytes_(options.max_batch_bytes),
        live_(options.live_shards),
        rng_state_(options.steal_seed),
        failpoint_(options.failpoint) {
    AF_CHECK(options.max_shards >= 1, "stealing dispatcher needs a slot");
    AF_CHECK(options.live_shards >= 1 &&
                 options.live_shards <= options.max_shards,
             "live_shards must be in [1, max_shards]");
    queues_.reserve(static_cast<std::size_t>(options.max_shards));
    for (int i = 0; i < options.max_shards; ++i) {
      queues_.push_back(std::make_unique<RequestQueue>(
          options.queue_capacity, options.drr_quantum,
          options.drr_deadline_urgent_ms, options.drr_deadline_weight_cap));
    }
    probe_seq_.resize(static_cast<std::size_t>(options.max_shards));
    banned_ = std::make_unique<std::atomic<bool>[]>(
        static_cast<std::size_t>(options.max_shards));
    modes_ = std::make_unique<std::atomic<int>[]>(
        static_cast<std::size_t>(options.max_shards));
    for (int i = 0; i < options.max_shards; ++i) {
      banned_[i].store(false);
      modes_[i].store(0);  // 0 = mode not yet published
    }
  }

  const std::string& name() const override {
    static const std::string kName = "stealing";
    return kName;
  }

  SubmitResult submit_for(Request& r,
                          std::chrono::microseconds timeout) override {
    if (failpoint_) failpoint_("submit");
    const int home = route(r);
    // No dispatcher-level wakeup state: the home queue's own condvar wakes
    // exactly its parked worker (see next_batch), so a submit touches
    // nothing shared across homes — the whole point of this dispatcher.
    switch (queues_[static_cast<std::size_t>(home)]->push_for(r, timeout)) {
      case PushResult::kAccepted:
        return SubmitResult::kAccepted;
      case PushResult::kFull:
        return SubmitResult::kWouldBlock;
      case PushResult::kClosed:
        break;
    }
    return SubmitResult::kClosed;
  }

  std::optional<Batch> next_batch(int shard) override {
    for (;;) {
      const int live_now = live_.load(std::memory_order_acquire);
      if (shard >= live_now) return std::nullopt;
      // Anti-starvation sweep: a submit that raced a scale-down can land
      // in a retired deque AFTER its drain, and under sustained saturation
      // no live worker ever runs dry to steal it.  Every 64th dispatch,
      // probe the retired slots — a relaxed-load hint each, so the cost is
      // a few loads per 64 batches and the orphan's wait is bounded by ~64
      // dispatch times instead of the next load dip.
      if ((probe_seq_[static_cast<std::size_t>(shard)].value++ & 63u) == 0) {
        for (int s = live_now; s < static_cast<int>(queues_.size()); ++s) {
          if (queues_[static_cast<std::size_t>(s)]->approx_size() == 0) {
            continue;
          }
          if (std::optional<Request> head =
                  queues_[static_cast<std::size_t>(s)]->try_pop()) {
            steals_.fetch_add(1, std::memory_order_relaxed);
            Batch batch = assemble_batch(
                std::move(*head), *queues_[static_cast<std::size_t>(s)],
                max_batch_, max_batch_bytes_);
            batch.stolen = true;
            top_up(batch, s);
            return batch;
          }
        }
      }
      // Own deque first: affinity keeps a tenant's coalescable stream here.
      if (std::optional<Request> head = queues_[shard]->try_pop()) {
        Batch batch = assemble_batch(std::move(*head), *queues_[shard],
                                     max_batch_, max_batch_bytes_);
        top_up(batch, shard);
        return batch;
      }
      // Dry: steal a whole DRR round from a random victim.  The scan
      // covers every slot — retired ones included, so a submission that
      // raced a scale-down is still served.  Two passes for pipeline-mode
      // locality: the first only takes victims whose pending round is in
      // the mode THIS shard's array is already configured in (peek_mode
      // hint), so the stolen batch skips the reconfiguration drain; the
      // second takes anyone.  Skipped entirely when the thief has not
      // published a mode yet (a fresh array drains regardless).
      const int n = static_cast<int>(queues_.size());
      const int start = static_cast<int>(
          splitmix64(rng_state_.fetch_add(1, std::memory_order_relaxed)) %
          static_cast<std::uint64_t>(n));
      const int my_mode =
          modes_[static_cast<std::size_t>(shard)].load(
              std::memory_order_relaxed);
      for (int pass = my_mode > 0 ? 0 : 1; pass < 2; ++pass) {
        for (int i = 0; i < n; ++i) {
          const int victim = (start + i) % n;
          if (victim == shard) continue;
          // Lock-free emptiness hint first: a dry victim costs a relaxed
          // load, not a mutex round-trip — idle probing must not become the
          // cross-queue contention this dispatcher exists to remove.  A
          // stale zero is recovered on the next probe or idle-wait tick.
          if (queues_[victim]->approx_size() == 0) continue;
          if (pass == 0) {
            const std::optional<int> head_mode = queues_[victim]->peek_mode();
            if (!head_mode || *head_mode != my_mode) continue;
          }
          if (failpoint_) failpoint_("steal");
          if (std::optional<Request> head = queues_[victim]->try_pop()) {
            steals_.fetch_add(1, std::memory_order_relaxed);
            // Riders come from the VICTIM's deque: the stolen unit is the
            // victim's whole DRR round, so fairness moves with the work.
            Batch batch = assemble_batch(std::move(*head), *queues_[victim],
                                         max_batch_, max_batch_bytes_);
            batch.stolen = true;
            top_up(batch, victim);
            return batch;
          }
        }
      }
      if (closed_.load(std::memory_order_acquire) && depth() == 0) {
        return std::nullopt;
      }
      // Park on the OWN deque's condvar: a push to this home wakes exactly
      // this worker with the request already local (the precision-wakeup
      // path the global queue's blocking pop enjoys).  The timeout is the
      // safety net that keeps stealing, retirement and close() responsive
      // when this home sees no traffic.
      queues_[shard]->wait_nonempty_for(kIdleWait);
    }
  }

  void set_live_shards(int live) override {
    // Serialized against close(): a close landing mid-drain would make the
    // re-submits below fail and silently destroy accepted requests (their
    // clients' promises with them).  Holding the control mutex, the drain
    // completes before close marks the queues — workers keep popping
    // throughout, so the blocking re-submits always make progress.
    std::lock_guard<std::mutex> control(control_mutex_);
    AF_CHECK(live >= 1 && live <= static_cast<int>(queues_.size()),
             "live shard count must be in [1, max_shards]");
    AF_CHECK(!closed_.load(), "set_live_shards after close");
    const int old = live_.exchange(live, std::memory_order_acq_rel);
    // Scale-down: drain each retired deque back into the steal pool —
    // every orphan rehashes onto the surviving live set, so nothing waits
    // behind a parked worker.  (Retiring workers parked on their own
    // deques notice shard >= live at the next idle-wait tick.)
    for (int s = live; s < old; ++s) {
      for (Request& r : queues_[static_cast<std::size_t>(s)]->drain_all()) {
        if (failpoint_) failpoint_("drain");
        submit(std::move(r));
      }
    }
  }

  void set_banned(int shard, bool banned) override {
    // Shares the control mutex with set_live_shards/close: the drain's
    // blocking re-submits must never race a close, which would silently
    // destroy accepted requests (same reasoning as the scale-down drain).
    std::lock_guard<std::mutex> control(control_mutex_);
    AF_CHECK(shard >= 0 && shard < static_cast<int>(queues_.size()),
             "set_banned shard " << shard << " out of range");
    if (closed_.load()) return;  // the shutdown drain supersedes quarantine
    banned_[static_cast<std::size_t>(shard)].store(banned,
                                                   std::memory_order_release);
    if (!banned) return;
    // Rehome the quarantined deque's backlog — the retiring-deque drain
    // reused — so nothing waits behind a worker that stopped serving.  A
    // submission racing this drain may still land here (stale flag read);
    // the steal scan covers every slot, banned included, so it is served.
    for (Request& r :
         queues_[static_cast<std::size_t>(shard)]->drain_all()) {
      if (failpoint_) failpoint_("drain");
      submit(std::move(r));
    }
  }

  int live_shards() const override {
    return live_.load(std::memory_order_acquire);
  }

  void close() override {
    // Waits for any in-flight scale-down drain (see set_live_shards).
    std::lock_guard<std::mutex> control(control_mutex_);
    // Queues close FIRST, closed_ flips LAST: workers exit on
    // closed_ && depth()==0, so once they can observe closed_, no push can
    // succeed anymore and anything accepted earlier is still visible in
    // some queue's depth — an accepted request can never strand behind
    // already-exited workers.  (RequestQueue::close also wakes that
    // queue's parked worker, so every worker re-checks within one sweep.)
    for (auto& q : queues_) q->close();
    closed_.store(true, std::memory_order_release);
  }

  std::size_t depth() const override {
    std::size_t total = 0;
    for (const auto& q : queues_) total += q->size();
    return total;
  }

  std::size_t approx_depth() const override {
    std::size_t total = 0;
    for (const auto& q : queues_) total += q->approx_size();
    return total;
  }

  std::int64_t approx_cost() const override {
    std::int64_t total = 0;
    for (const auto& q : queues_) total += q->approx_cost();
    return total;
  }

  std::int64_t approx_bytes() const override {
    std::int64_t total = 0;
    for (const auto& q : queues_) total += q->approx_bytes();
    return total;
  }

  std::vector<Request> drain_remaining() override {
    // The control mutex orders this after any in-flight scale-down or
    // quarantine drain — their blocking re-submits land in some queue
    // before we sweep, so nothing slips between the drains.
    std::lock_guard<std::mutex> control(control_mutex_);
    AF_CHECK(closed_.load(), "drain_remaining before close");
    std::vector<Request> out;
    for (auto& q : queues_) {
      for (Request& r : q->drain_all()) out.push_back(std::move(r));
    }
    return out;
  }

  void set_shard_mode(int shard, int k) override {
    AF_CHECK(shard >= 0 && shard < static_cast<int>(queues_.size()),
             "set_shard_mode shard " << shard << " out of range");
    modes_[static_cast<std::size_t>(shard)].store(k,
                                                  std::memory_order_relaxed);
  }

  std::int64_t steals() const override {
    return steals_.load(std::memory_order_relaxed);
  }

 private:
  // Affinity routing with quarantine and retry steering: the hash picks
  // the home among the live prefix; a banned (quarantined) home — or the
  // shard that just failed this request (Request::avoid_shard) — is
  // stepped over by linear probing.  When every live slot except the
  // failing one is banned, the avoid preference yields first; when every
  // live slot is banned outright, the raw home takes the push and the
  // backlog waits there (served meanwhile by the steal scan, which covers
  // every slot) until a probe recovers some shard.
  int route(const Request& r) const {
    const int live = std::max(1, live_.load(std::memory_order_acquire));
    const int home =
        static_cast<int>(affinity_hash(r) % static_cast<std::size_t>(live));
    const auto open = [&](int s) {
      return !banned_[static_cast<std::size_t>(s)].load(
          std::memory_order_acquire);
    };
    for (int i = 0; i < live; ++i) {
      const int candidate = (home + i) % live;
      if (open(candidate) && candidate != r.avoid_shard) return candidate;
    }
    for (int i = 0; i < live; ++i) {
      const int candidate = (home + i) % live;
      if (open(candidate)) return candidate;
    }
    return home;
  }
  // A round that came up short of max_batch tops up with compatible riders
  // from the other deques (skipping `swept`, already coalesced).  Riders
  // are charged to their own tenants' deficits in their own queues — the
  // same contract as the global dispatcher's cross-tenant coalescing — so
  // partitioned deques never cost batching efficiency: a short local round
  // pays a few extra probes exactly when the worker was about to go
  // stealing anyway, and deep deques (the loaded case) never probe at all.
  void top_up(Batch& batch, int swept) {
    // An expired-only batch (the popped head was overdue) has no front()
    // to match riders against — the worker just resolves the expiries.
    if (batch.requests.empty()) return;
    int budget = max_batch_ - static_cast<int>(batch.requests.size());
    if (budget <= 0) return;
    // The byte budget continues across deques: what assemble_batch already
    // admitted counts against it (same contract as the local sweep).
    std::int64_t byte_budget = std::numeric_limits<std::int64_t>::max();
    if (max_batch_bytes_ > 0) {
      byte_budget = max_batch_bytes_;
      for (const Request& r : batch.requests) byte_budget -= r.drr_bytes;
      if (byte_budget <= 0) return;
    }
    for (std::size_t i = 0; i < queues_.size() && budget > 0; ++i) {
      if (static_cast<int>(i) == swept) continue;
      if (queues_[i]->approx_size() == 0) continue;
      std::vector<Request> riders = queues_[i]->pop_all_if(
          [&](const Request& r) {
            if (!compatible(batch.requests.front(), r)) return false;
            if (r.drr_bytes > byte_budget) return false;
            byte_budget -= r.drr_bytes;
            return true;
          },
          budget);
      budget -= static_cast<int>(riders.size());
      for (Request& r : riders) batch.requests.push_back(std::move(r));
    }
  }

  const int max_batch_;
  const std::int64_t max_batch_bytes_;
  std::vector<std::unique_ptr<RequestQueue>> queues_;
  std::atomic<int> live_;
  std::atomic<bool> closed_{false};
  std::atomic<std::int64_t> steals_{0};
  std::atomic<std::uint64_t> rng_state_;
  // Quarantined slots (set_banned): skipped by submit routing, still
  // covered by the steal scan.  One flag per slot, read lock-free on the
  // submit hot path.
  std::unique_ptr<std::atomic<bool>[]> banned_;
  // Pipeline mode each shard's array is currently configured in (0 until
  // first published by the executor) — the locality-aware steal scan's
  // preference signal.
  std::unique_ptr<std::atomic<int>[]> modes_;
  const std::function<void(const char*)> failpoint_;
  // Per-shard dispatch counters driving the periodic retired-slot probe —
  // one cache line each, touched only by that shard's worker, so the hot
  // path shares nothing across shards (the dispatcher's whole point).
  struct alignas(64) ProbeCounter {
    std::uint32_t value = 0;
  };
  std::vector<ProbeCounter> probe_seq_;
  // Serializes set_live_shards against close (control plane only; never
  // taken on the submit or dispatch hot paths).
  std::mutex control_mutex_;
};

struct DispatcherEntry {
  std::string description;
  std::unique_ptr<Dispatcher> (*create)(const DispatcherOptions&);
};

// Ordered (std::map) so registered_dispatchers() is stable for the CI
// drift check against the README table.
const std::map<std::string, DispatcherEntry>& registry() {
  static const std::map<std::string, DispatcherEntry> entries = {
      {"global",
       {"one shared DRR queue for every shard — serializes all submits and "
        "pops through a single lock; the semantics oracle",
        [](const DispatcherOptions& o) -> std::unique_ptr<Dispatcher> {
          return std::make_unique<GlobalDispatcher>(o);
        }}},
      {"stealing",
       {"per-shard bounded DRR deques with tenant/model submit affinity, "
        "rand-victim stealing of whole DRR rounds when a deque runs dry, and "
        "compatible-rider top-up for short batches",
        [](const DispatcherOptions& o) -> std::unique_ptr<Dispatcher> {
          return std::make_unique<StealingDispatcher>(o);
        }}},
  };
  return entries;
}

}  // namespace

Dispatcher::~Dispatcher() = default;

std::size_t affinity_hash(const Request& r) {
  if (r.kind == RequestKind::kGemm || r.kind == RequestKind::kGemmBatch) {
    // Batched cost queries share the GEMM rule: a tenant's stream lands in
    // one deque, where same-backend batch requests coalesce locally.
    return std::hash<std::string>{}(r.tenant);
  }
  const std::size_t model_hash =
      std::hash<const void*>{}(static_cast<const void*>(r.model.get()));
  return static_cast<std::size_t>(
      splitmix64(static_cast<std::uint64_t>(model_hash) +
                 0x632be59bd9b4e019ULL * (r.slice_index + 1)));
}

std::string registered_dispatcher_list() {
  std::string known;
  for (const auto& [key, entry] : registry()) {
    if (!known.empty()) known += ", ";
    known += "\"" + key + "\"";
  }
  return known;
}

std::unique_ptr<Dispatcher> make_dispatcher(const std::string& name,
                                            const DispatcherOptions& options) {
  const auto it = registry().find(name);
  if (it == registry().end()) {
    AF_CHECK(false, "unknown dispatcher \""
                        << name << "\" (registered: "
                        << registered_dispatcher_list() << ")");
  }
  return it->second.create(options);
}

std::vector<std::string> registered_dispatchers() {
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& [name, entry] : registry()) names.push_back(name);
  return names;
}

std::string dispatcher_description(const std::string& name) {
  const auto it = registry().find(name);
  AF_CHECK(it != registry().end(), "unknown dispatcher \"" << name << "\"");
  return it->second.description;
}

}  // namespace af::serve
