// Bounded MPMC request queue with DEFICIT-ROUND-ROBIN tenant fairness:
// many client threads push, many shard workers pop.  The bound is the
// server's admission backpressure — a full queue blocks producers instead
// of growing without limit under overload.
//
// Internally the queue keeps one FIFO per tenant plus a ring of backlogged
// tenants.  pop() runs classic DRR over the ring: each tenant carries a
// deficit counter in cost units (Request::drr_cost, the request's MAC
// volume); visiting a tenant whose head request exceeds its deficit
// credits one quantum and moves on, and a tenant whose deficit covers its
// head is served (deficit decremented by the true cost).  Long-run, every
// backlogged tenant receives an equal share of cost units regardless of
// its request sizes — a tenant flooding huge GEMMs can no longer starve a
// tenant of small ones, which under the old FIFO-head scheduler waited
// behind the entire flood.  Within one tenant, order stays FIFO.
//
// pop_all_if(pred, max) — the batching scheduler's coalescing sweep —
// removes up to `max` requests matching a predicate in ONE pass over the
// backlog, scanning tenants in ring order starting from the tenant pop()
// last served and each tenant front to back.  A request taken this way is
// charged to ITS OWN tenant's deficit (which may go negative: the tenant
// borrowed against future rounds to ride a batch that was dispatching
// anyway), so coalescing accelerates batches without distorting long-run
// fairness.  A tenant's deficit resets to zero when its backlog empties —
// fairness applies to backlogged tenants only, per the classic DRR
// formulation.

#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "serve/request.h"

namespace af::serve {

// Result of a timed admission attempt (push_for).  The request is consumed
// only on kAccepted; on kFull/kClosed it stays with the caller, promise
// intact, so the caller can fail it with a typed error.
enum class PushResult { kAccepted, kFull, kClosed };

// What ended an idle wait (wait_nonempty_for): work arrived, the timeout
// lapsed, or the queue is closed AND drained.  kClosed is final — no push
// succeeds after close — so a dispatcher loop can exit on it directly
// instead of re-checking closed()/size() under the lock.
enum class WaitStatus { kNonEmpty, kTimeout, kClosed };

class RequestQueue {
 public:
  // `quantum` is the cost credit (in Request::drr_cost units, i.e. MACs) a
  // backlogged tenant receives per DRR round.  Any positive value yields
  // equal long-run shares; smaller quanta interleave tenants more finely,
  // larger quanta allow longer per-tenant bursts.
  static constexpr std::int64_t kDefaultQuantum = 1 << 20;

  // DEADLINE-WEIGHTED DRR: when `deadline_urgent_ms` > 0, a tenant whose
  // head request is inside that window of its deadline earns a multiplied
  // quantum — credit = quantum x clamp(urgent / slack, 1, weight_cap) — so
  // urgent tenants drain faster as the clock runs out, up to weight_cap x
  // the fair share (requests at or past their deadline get the full cap;
  // the reaper expires them soon after anyway).  Long-run shares of
  // deadline-free traffic are unchanged, and the default (0) disables the
  // weighting entirely: no clock is read on the pop path.
  explicit RequestQueue(std::size_t capacity,
                        std::int64_t quantum = kDefaultQuantum,
                        std::int64_t deadline_urgent_ms = 0,
                        std::int64_t deadline_weight_cap = 8);

  RequestQueue(const RequestQueue&) = delete;
  RequestQueue& operator=(const RequestQueue&) = delete;

  // Blocks while the queue is full.  Returns false (dropping the request)
  // once the queue is closed.
  bool push(Request r);

  // Timed admission: waits up to `timeout` for space (0 = non-blocking
  // probe; microseconds::max() = block like push).  Moves from `r` only on
  // kAccepted — on kFull/kClosed the request (and its promise) stays valid
  // with the caller.
  PushResult push_for(Request& r, std::chrono::microseconds timeout);

  // Blocks while the queue is empty and open.  Returns the DRR-selected
  // request (see file comment), or nullopt once the queue is closed AND
  // drained — workers use that as the shutdown signal, so no accepted
  // request is ever lost.
  std::optional<Request> pop();

  // Non-blocking pop(): the DRR-selected request, or nullopt when nothing
  // is queued right now.  The work-stealing dispatcher's probe — a shard
  // polling its own deque (or a victim's) must never sleep holding work.
  std::optional<Request> try_pop();

  // Non-blocking: removes and returns the first request satisfying `pred`,
  // scanning tenants in ring order from the current DRR position and each
  // tenant's backlog front to back; nullopt if none is currently queued.
  // Charges the taken request to its tenant's deficit.
  std::optional<Request> pop_if(
      const std::function<bool(const Request&)>& pred);

  // One-pass coalescing sweep: removes up to `max_take` requests satisfying
  // `pred` in a single scan (tenants in ring order from the current DRR
  // position, FIFO within a tenant) — the same take-set and order as
  // calling pop_if(pred) repeatedly, without rescanning the whole backlog
  // per rider.  Each taken request is charged to its own tenant's deficit.
  std::vector<Request> pop_all_if(
      const std::function<bool(const Request&)>& pred, int max_take);

  // Removes and returns the ENTIRE backlog (tenant ring order, FIFO within
  // each tenant), resetting all DRR state.  Used when a shard's queue is
  // drained back into the steal pool before the shard retires.
  std::vector<Request> drain_all();

  // Blocks up to `timeout` for the queue to become non-empty (or closed);
  // the tri-state result says which it was (spurious wakeups re-wait).  The
  // dispatchers' idle wait — pairs with try_pop so a retiring worker can
  // re-check its own liveness between sleeps instead of parking forever
  // inside pop(), and kClosed (closed AND drained, final) lets the loop
  // exit without a second closed()/size() round-trip.
  WaitStatus wait_nonempty_for(std::chrono::microseconds timeout);

  // Reaper sweep: removes and returns every queued request whose deadline
  // is at or before `now` (tenant ring order, FIFO within a tenant).
  // Expired requests are NOT charged to their tenants' deficits — they
  // received no service.  Cost when no queued request carries a deadline:
  // one relaxed atomic load (the earliest-deadline hint below), so
  // deadline-free traffic pays nothing for the sweep.
  std::vector<Request> remove_expired(Clock::time_point now);

  // Closing wakes every blocked producer (push fails) and consumer (pop
  // drains then returns nullopt).  Idempotent.
  void close();

  std::size_t size() const;
  bool closed() const;

  // Lock-free size HINT (relaxed atomic mirror of size(), updated inside
  // the critical sections): the work-stealing dispatcher's victim scan
  // reads it to skip empty deques without touching their mutexes.  May
  // lag a concurrent push/pop by an instant — callers must treat a zero
  // as "probably empty, probe again later", never as a drained guarantee
  // (shutdown paths use the exact size()).
  std::size_t approx_size() const {
    return approx_size_.load(std::memory_order_relaxed);
  }

  // Lock-free BACKLOG-COST hint: the summed Request::drr_cost (MACs) of
  // everything currently queued, mirrored like approx_size.  This is the
  // simulated-hardware-pressure signal — two queues of equal depth can
  // differ by orders of magnitude in how long a shard needs to drain them —
  // consumed by the backlog_cost autoscale signal and exported through
  // ServerStats for the fleet router's power-of-two-choices placement.
  std::int64_t approx_cost() const {
    return approx_cost_.load(std::memory_order_relaxed);
  }

  // Lock-free BACKLOG-BYTES hint: the summed Request::drr_bytes (projected
  // DRAM traffic) of everything currently queued, mirrored like
  // approx_cost.  The bandwidth-pressure signal: consumed by the
  // backlog_bytes autoscale signal and the byte-budgeted batch assembly —
  // a backlog can be compute-light yet saturate the DRAM pins.
  std::int64_t approx_bytes() const {
    return approx_bytes_.load(std::memory_order_relaxed);
  }

  // Locality hint for the stealing dispatcher's victim scan: the
  // admission-decided pipeline mode of the request the DRR position would
  // serve next (nullopt when empty or when the next request is an
  // inference slice, which has no single mode).  A HINT, not a contract —
  // the actual pop may serve a different tenant once deficits are
  // consulted — good enough to prefer a victim whose stolen round skips
  // the mode-switch drain.
  std::optional<int> peek_mode() const;

  // Current deficit of a tenant (0 when unknown / not backlogged) — test
  // and debugging introspection.
  std::int64_t deficit(const std::string& tenant) const;

 private:
  struct TenantQueue {
    std::deque<Request> items;
    std::int64_t deficit = 0;
    // Quantum already credited for the DRR pointer's current stay on this
    // tenant; cleared whenever the pointer moves on.  Guarantees exactly
    // one credit per round-robin visit (the classic DRR discipline).
    bool credited = false;
  };

  // Serves tenants_[ring_[ring_pos_]]'s head request; caller holds the
  // lock and guarantees the tenant is backlogged.
  Request take_front_locked();
  // The quantum this tenant earns on a DRR visit: quantum_, scaled by the
  // deadline-urgency weight of its head request (see the constructor
  // comment).  `now_ns` is the clock captured once per pop_drr_locked
  // (unused, and never read, when the weighting is disabled).
  std::int64_t quantum_for_locked(const TenantQueue& tq,
                                  std::int64_t now_ns) const;
  // The DRR selection loop shared by pop()/try_pop(); caller holds the
  // lock and guarantees total_ > 0.
  Request pop_drr_locked();
  // Removes `tenant` from the ring if its backlog emptied, resetting its
  // deficit (DRR forgets non-backlogged flows, debts included).
  void retire_if_empty_locked(const std::string& tenant);

  // Recomputes the earliest-deadline hint from the current backlog; caller
  // holds the lock.
  void refresh_deadline_hint_locked();

  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::map<std::string, TenantQueue> tenants_;
  // Earliest queued deadline in ns-since-epoch (int64 max = none): the
  // reaper's lock-free fast path.  A monotone lower bound between sweeps —
  // push tightens it, remove_expired recomputes it exactly.
  std::atomic<std::int64_t> earliest_deadline_ns_{
      std::numeric_limits<std::int64_t>::max()};
  std::vector<std::string> ring_;  // backlogged tenants, arrival order
  std::size_t ring_pos_ = 0;       // DRR position into ring_
  std::size_t total_ = 0;          // queued requests across all tenants
  std::int64_t cost_total_ = 0;    // summed drr_cost across all tenants
  std::int64_t bytes_total_ = 0;   // summed drr_bytes across all tenants
  std::atomic<std::size_t> approx_size_{0};  // lock-free mirror of total_
  std::atomic<std::int64_t> approx_cost_{0};  // lock-free mirror of cost_total_
  std::atomic<std::int64_t> approx_bytes_{0};  // mirror of bytes_total_
  const std::size_t capacity_;
  const std::int64_t quantum_;
  const std::int64_t deadline_urgent_ns_;  // 0 = deadline weighting off
  const std::int64_t weight_cap_;
  bool closed_ = false;
};

}  // namespace af::serve
