// Bounded MPMC request queue: many client threads push, many shard workers
// pop.  The bound is the server's admission backpressure — a full queue
// blocks producers instead of growing without limit under overload.
//
// Besides plain FIFO pop, the queue supports pop_if: remove the first
// queued request matching a predicate without waiting.  The batching
// scheduler uses it to coalesce compatible requests from anywhere in the
// queue while leaving incompatible older requests at the front, so
// head-of-line requests are never starved by batch formation.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>

#include "serve/request.h"

namespace af::serve {

class RequestQueue {
 public:
  explicit RequestQueue(std::size_t capacity);

  RequestQueue(const RequestQueue&) = delete;
  RequestQueue& operator=(const RequestQueue&) = delete;

  // Blocks while the queue is full.  Returns false (dropping the request)
  // once the queue is closed.
  bool push(Request r);

  // Blocks while the queue is empty and open.  Returns the oldest request,
  // or nullopt once the queue is closed AND drained — workers use that as
  // the shutdown signal, so no accepted request is ever lost.
  std::optional<Request> pop();

  // Non-blocking: removes and returns the first request (front to back)
  // satisfying `pred`, or nullopt if none is currently queued.
  std::optional<Request> pop_if(
      const std::function<bool(const Request&)>& pred);

  // Closing wakes every blocked producer (push fails) and consumer (pop
  // drains then returns nullopt).  Idempotent.
  void close();

  std::size_t size() const;
  bool closed() const;

 private:
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<Request> items_;
  const std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace af::serve
