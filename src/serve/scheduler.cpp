#include "serve/scheduler.h"

#include <algorithm>
#include <limits>

#include "util/status.h"

namespace af::serve {

bool compatible(const Request& head, const Request& r) {
  if (head.kind != r.kind) return false;
  if (head.kind == RequestKind::kGemm) {
    // Same pipeline mode: the shard executes the whole batch under one
    // configuration.  (Same-weight fusion inside the batch is the
    // executor's business; mode equality is what batch membership needs.)
    // Same engine backend too: a per-request fidelity override must not
    // drag neighbours onto a different engine.  Degrade-uniform as well:
    // degraded batches may run on a shrunk-scratchpad engine, so a full-
    // fidelity rider must not be dragged onto it (nor vice versa).
    return head.decided_k == r.decided_k && head.backend == r.backend &&
           head.degraded == r.degraded;
  }
  if (head.kind == RequestKind::kGemmBatch) {
    // Batched cost queries never configure the array (the executor skips
    // prepare_mode entirely; each request's decided_k is resolved inside
    // evaluate_batch), so mode equality is irrelevant — only the backend
    // override must match, because one engine answers the whole dispatch.
    return head.backend == r.backend;
  }
  // Inference slices coalesce only when they are the same analytic work:
  // identical model (by identity) and identical layer range.
  return head.model == r.model && head.layer_begin == r.layer_begin &&
         head.layer_count == r.layer_count;
}

BatchScheduler::BatchScheduler(RequestQueue* queue, int max_batch,
                               std::int64_t max_batch_bytes)
    : queue_(queue), max_batch_(max_batch), max_batch_bytes_(max_batch_bytes) {
  AF_CHECK(queue != nullptr, "scheduler needs a queue");
  AF_CHECK(max_batch >= 1, "max_batch must be at least 1");
  AF_CHECK(max_batch_bytes >= 0, "max_batch_bytes must be non-negative");
}

Batch assemble_batch(Request head, RequestQueue& queue, int max_batch,
                     std::int64_t max_batch_bytes) {
  Batch batch;
  batch.kind = head.kind;
  batch.k = head.decided_k;
  // Reaper sweep, piggybacked on the dispatch wakeup path: every batch
  // assembly first clears the overdue backlog (a relaxed load when no
  // queued request carries a deadline), so an expired request's wait for
  // its DeadlineExceeded is bounded by the queue's dispatch cadence.  The
  // head itself may have expired while queued — it then rides in
  // batch.expired and the batch may carry no serveable request at all.
  const Clock::time_point now = Clock::now();
  batch.expired = queue.remove_expired(now);
  if (head.expired(now)) {
    batch.expired.push_back(std::move(head));
    return batch;
  }
  batch.requests.push_back(std::move(head));
  if (max_batch > 1) {
    // One sweep over the backlog, keyed by the head's (mode, backend) /
    // (model, range): the old per-rider pop_if loop rescanned the whole
    // queue once per rider, O(batch x backlog) under the lock.  The byte
    // budget (when set) is spent inside the predicate: a rider whose
    // projected DRAM traffic no longer fits keeps its queue position.
    std::int64_t byte_budget =
        max_batch_bytes > 0
            ? std::max<std::int64_t>(0, max_batch_bytes -
                                            batch.requests.front().drr_bytes)
            : std::numeric_limits<std::int64_t>::max();
    // Weight matrices already aboard the batch.  A rider sharing one will
    // fuse with that member in the executor (the B panel streams ONCE for
    // the whole stack), so it is charged only its private A+C bytes
    // (drr_rider_bytes); charging full drr_bytes double-counted the shared
    // panel per rider and under-filled decode batches.
    std::vector<const gemm::Mat32*> aboard_bs;
    if (batch.kind == RequestKind::kGemm &&
        batch.requests.front().b != nullptr) {
      aboard_bs.push_back(batch.requests.front().b.get());
    }
    std::vector<Request> riders = queue.pop_all_if(
        [&](const Request& r) {
          if (!compatible(batch.requests.front(), r)) return false;
          const bool fuses =
              r.b != nullptr &&
              std::find(aboard_bs.begin(), aboard_bs.end(), r.b.get()) !=
                  aboard_bs.end();
          const std::int64_t charge = fuses ? r.drr_rider_bytes : r.drr_bytes;
          if (charge > byte_budget) return false;
          byte_budget -= charge;
          if (!fuses && r.b != nullptr) aboard_bs.push_back(r.b.get());
          return true;
        },
        max_batch - 1);
    for (Request& r : riders) batch.requests.push_back(std::move(r));
  }
  return batch;
}

std::optional<Batch> BatchScheduler::next_batch() {
  std::optional<Request> head = queue_->pop();
  if (!head) return std::nullopt;
  return assemble_batch(std::move(*head), *queue_, max_batch_,
                        max_batch_bytes_);
}

}  // namespace af::serve
