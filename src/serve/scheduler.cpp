#include "serve/scheduler.h"

#include "util/status.h"

namespace af::serve {

bool compatible(const Request& head, const Request& r) {
  if (head.kind != r.kind) return false;
  if (head.kind == RequestKind::kGemm) {
    // Same pipeline mode: the shard executes the whole batch under one
    // configuration.  (Same-weight fusion inside the batch is the
    // executor's business; mode equality is what batch membership needs.)
    return head.decided_k == r.decided_k;
  }
  // Inference slices coalesce only when they are the same analytic work:
  // identical model (by identity) and identical layer range.
  return head.model == r.model && head.layer_begin == r.layer_begin &&
         head.layer_count == r.layer_count;
}

BatchScheduler::BatchScheduler(RequestQueue* queue, int max_batch)
    : queue_(queue), max_batch_(max_batch) {
  AF_CHECK(queue != nullptr, "scheduler needs a queue");
  AF_CHECK(max_batch >= 1, "max_batch must be at least 1");
}

std::optional<Batch> BatchScheduler::next_batch() {
  std::optional<Request> head = queue_->pop();
  if (!head) return std::nullopt;

  Batch batch;
  batch.kind = head->kind;
  batch.k = head->decided_k;
  batch.requests.push_back(std::move(*head));
  while (static_cast<int>(batch.requests.size()) < max_batch_) {
    std::optional<Request> next = queue_->pop_if([&](const Request& r) {
      return compatible(batch.requests.front(), r);
    });
    if (!next) break;
    batch.requests.push_back(std::move(*next));
  }
  return batch;
}

}  // namespace af::serve
