#include "serve/server.h"

#include <algorithm>
#include <tuple>
#include <utility>

#include "arch/array.h"
#include "nn/runner.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace af::serve {
namespace {

double ms_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

}  // namespace

// One simulated array plus everything stateful around it.  The clock and
// power models are per-shard instances (each shard tracks its own mode and
// is priced independently); `stats` is written only under the server's
// shard_stats_mutex_ so stats() can snapshot concurrently.
struct Server::Shard {
  int index;
  arch::CalibratedClockModel clock;
  arch::SystolicArray array;
  arch::SaPowerModel power;
  nn::InferenceRunner runner;
  ShardSnapshot stats;
  std::thread worker;

  Shard(int idx, const arch::ArrayConfig& config,
        const arch::EnergyParams& energy, util::ThreadPool* sim_pool)
      : index(idx),
        clock(arch::CalibratedClockModel::date23()),
        array(config),
        power(config, clock, energy),
        runner(config, clock, energy, sim_pool) {
    if (sim_pool != nullptr) array.set_thread_pool(sim_pool);
    stats.shard = idx;
  }
};

Server::Server(const arch::ArrayConfig& shard_config, ServerOptions options)
    : shard_config_(shard_config),
      options_(options),
      admission_clock_(arch::CalibratedClockModel::date23()),
      admission_optimizer_(
          [&] {
            arch::ArrayConfig c = shard_config;
            c.sim.num_threads = 1;
            return c;
          }(),
          admission_clock_),
      queue_(options.queue_capacity),
      scheduler_(&queue_, options.max_batch),
      tenants_(options.latency_hist_max_ms) {
  AF_CHECK(options_.num_shards >= 1, "server needs at least one shard");
  AF_CHECK(options_.max_batch >= 1, "max_batch must be at least 1");
  // The shards simulate serially on their own; cross-tile parallelism comes
  // from the one shared pool below (never a pool per shard — that is the
  // threads² oversubscription this layer exists to avoid).
  shard_config_.sim.num_threads = 1;
  shard_config_.validate();
  const int sim_threads =
      util::ThreadPool::resolve_num_threads(options_.sim_threads);
  if (sim_threads > 1) {
    sim_pool_ = std::make_unique<util::ThreadPool>(sim_threads);
  }
  if (options_.reconfig_cycles < 0) {
    options_.reconfig_cycles = shard_config_.rows + shard_config_.cols;
  }
  shards_.reserve(static_cast<std::size_t>(options_.num_shards));
  for (int i = 0; i < options_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(i, shard_config_,
                                              options_.energy,
                                              sim_pool_.get()));
  }
  for (auto& shard : shards_) {
    Shard* s = shard.get();
    s->worker = std::thread([this, s] { shard_loop(*s); });
  }
}

Server::~Server() { shutdown(); }

void Server::shutdown() {
  std::lock_guard<std::mutex> lock(shutdown_mutex_);
  shut_down_.store(true);
  queue_.close();
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
}

std::future<GemmResult> Server::submit_gemm(
    const std::string& tenant, gemm::Mat32 a,
    std::shared_ptr<const gemm::Mat32> b, int k) {
  AF_CHECK(!shut_down_.load(), "submit_gemm on a shut-down server");
  AF_CHECK(b != nullptr, "weight matrix required");
  AF_CHECK(a.rows() > 0, "activation matrix must be non-empty");
  AF_CHECK(a.cols() == b->rows(), "GEMM inner-dimension mismatch: "
                                      << a.cols() << " vs " << b->rows());
  Request r;
  r.kind = RequestKind::kGemm;
  r.id = next_id_.fetch_add(1);
  r.tenant = tenant;
  r.shape = gemm::GemmShape{b->cols(), b->rows(), a.rows()};
  if (k != 0) {
    AF_CHECK(shard_config_.supports(k), "mode k=" << k << " not supported");
    r.decided_k = k;
  } else {
    r.decided_k = admission_optimizer_.best_mode(r.shape).k;
  }
  r.a = std::move(a);
  r.b = std::move(b);
  r.enqueue_time = Clock::now();
  std::future<GemmResult> future = r.gemm_promise.get_future();
  // Counted before the push: a fast worker may complete the request before
  // this thread runs another instruction, and stats() must never show
  // completed > submitted.
  submitted_.fetch_add(1);
  if (!queue_.push(std::move(r))) {
    submitted_.fetch_sub(1);
    AF_CHECK(false, "server shut down while enqueueing");
  }
  return future;
}

std::future<InferenceResult> Server::submit_inference(
    const std::string& tenant, std::shared_ptr<const nn::Model> model) {
  AF_CHECK(!shut_down_.load(), "submit_inference on a shut-down server");
  AF_CHECK(model != nullptr && !model->layers.empty(),
           "inference needs a non-empty model");
  const std::size_t layers = model->layers.size();
  const std::size_t slices =
      std::min<std::size_t>(shards_.size(), layers);

  auto join = std::make_shared<InferJoin>();
  join->parts.resize(slices);
  join->remaining = slices;
  join->enqueue_time = Clock::now();
  join->tenant = tenant;
  join->model_name = model->name;
  std::future<InferenceResult> future = join->promise.get_future();

  // Contiguous slices, sizes as even as possible (the first `layers %
  // slices` slices take one extra layer).
  const std::size_t base = layers / slices;
  const std::size_t extra = layers % slices;
  std::size_t begin = 0;
  submitted_.fetch_add(1);
  for (std::size_t i = 0; i < slices; ++i) {
    const std::size_t count = base + (i < extra ? 1 : 0);
    Request r;
    r.kind = RequestKind::kInferSlice;
    r.id = next_id_.fetch_add(1);
    r.tenant = tenant;
    r.enqueue_time = join->enqueue_time;
    r.model = model;
    r.layer_begin = begin;
    r.layer_count = count;
    r.slice_index = i;
    r.join = join;
    begin += count;
    if (!queue_.push(std::move(r))) {
      // Shutdown raced the enqueue: slices pushed so far are already in
      // workers' hands.  Marking the join failed turns them into no-ops
      // (execute_infer_batch skips failed joins), so a rejected submission
      // never half-completes or half-bills.
      {
        std::lock_guard<std::mutex> lock(join->mutex);
        join->failed = true;
      }
      submitted_.fetch_sub(1);
      AF_CHECK(false, "server shut down while enqueueing");
    }
  }
  return future;
}

void Server::shard_loop(Shard& shard) {
  while (auto batch = scheduler_.next_batch()) {
    try {
      if (batch->kind == RequestKind::kGemm) {
        execute_gemm_batch(shard, *batch);
      } else {
        execute_infer_batch(shard, *batch);
      }
    } catch (...) {
      // A failing batch must not take the whole server down (a worker
      // thread's escaped exception is std::terminate): deliver the error
      // to the affected clients and keep serving everyone else.
      fail_batch(*batch, std::current_exception());
    }
  }
}

void Server::fail_batch(Batch& batch, std::exception_ptr error) {
  for (Request& r : batch.requests) {
    if (r.kind == RequestKind::kGemm) {
      // Counted before the promise resolves so a woken client never sees
      // completed lagging; rolled back if the promise was already settled.
      completed_.fetch_add(1);
      try {
        r.gemm_promise.set_exception(error);
      } catch (const std::future_error&) {
        completed_.fetch_sub(1);  // fulfilled before the failure
      }
    } else if (r.join != nullptr) {
      {
        std::lock_guard<std::mutex> lock(r.join->mutex);
        if (r.join->failed) continue;  // another slice already reported
        r.join->failed = true;
      }
      completed_.fetch_add(1);
      try {
        r.join->promise.set_exception(error);
      } catch (const std::future_error&) {
        completed_.fetch_sub(1);
      }
    }
  }
}

void Server::prepare_mode(Shard& shard, int k) {
  std::lock_guard<std::mutex> lock(shard_stats_mutex_);
  if (shard.stats.current_k == k) return;
  if (shard.stats.current_k != 0) {
    // A genuine mode switch: drain the pipeline at the new mode's clock,
    // burning leakage but doing no work.  (current_k == 0 — fresh shard or
    // post-inference — configures without a drain to bill.)
    shard.stats.mode_switches += 1;
    const double time_ps = static_cast<double>(options_.reconfig_cycles) *
                           shard.clock.period_ps(k);
    const double leak_mw = options_.energy.leak_mw_per_pe *
                           static_cast<double>(shard_config_.num_pes());
    shard.stats.reconfig_time_ps += time_ps;
    shard.stats.reconfig_energy_pj += leak_mw * time_ps * 1e-3;
  }
  shard.stats.current_k = k;
}

void Server::execute_gemm_batch(Shard& shard, Batch& batch) {
  const int k = batch.k;
  const Clock::time_point dispatch_time = Clock::now();
  prepare_mode(shard, k);

  // Fuse requests naming the same weight matrix and shape: their activation
  // rows stack along T into one hardware run, so the weight preload (the R
  // cycles per tile) is paid once per fused run instead of once per
  // request.  Order of first appearance is preserved.
  using FuseKey = std::tuple<const gemm::Mat32*, std::int64_t, std::int64_t>;
  std::vector<std::pair<FuseKey, std::vector<std::size_t>>> groups;
  for (std::size_t i = 0; i < batch.requests.size(); ++i) {
    const Request& r = batch.requests[i];
    const FuseKey key{r.b.get(), r.shape.n, r.shape.m};
    auto it = std::find_if(groups.begin(), groups.end(),
                           [&](const auto& g) { return g.first == key; });
    if (it == groups.end()) {
      groups.push_back({key, {i}});
    } else {
      it->second.push_back(i);
    }
  }

  const std::int64_t batch_requests =
      static_cast<std::int64_t>(batch.requests.size());
  double batch_time_ps = 0.0;
  double batch_energy_pj = 0.0;
  std::vector<GemmResult> results(batch.requests.size());

  for (auto& [key, members] : groups) {
    const Request& head = batch.requests[members.front()];
    std::int64_t total_t = 0;
    for (const std::size_t i : members) {
      total_t += batch.requests[i].shape.t;
    }
    gemm::Mat32 stacked(total_t, head.shape.n);
    std::int64_t row = 0;
    for (const std::size_t i : members) {
      const gemm::Mat32& a = batch.requests[i].a;
      for (std::int64_t t = 0; t < a.rows(); ++t, ++row) {
        for (std::int64_t c = 0; c < a.cols(); ++c) {
          stacked.at(row, c) = a.at(t, c);
        }
      }
    }

    gemm::Mat64 fused_out;
    const arch::TileRunStats run =
        shard.array.run_gemm(stacked, *head.b, k, &fused_out);
    const double period_ps = shard.clock.period_ps(k);
    const arch::PowerResult priced = shard.power.from_counters(
        run.activity, run.total_cycles, period_ps, /*arrayflex_hardware=*/true,
        k);
    batch_time_ps += priced.time_ps;
    batch_energy_pj += priced.energy_pj;

    // Unstack the fused product.  Energy is attributed by each request's
    // share of the fused rows; completion (and thus simulated service
    // time) is the whole fused run for every member.
    row = 0;
    for (const std::size_t i : members) {
      const Request& r = batch.requests[i];
      GemmResult& result = results[i];
      result.out = gemm::Mat64(r.shape.t, r.shape.m);
      for (std::int64_t t = 0; t < r.shape.t; ++t, ++row) {
        for (std::int64_t c = 0; c < r.shape.m; ++c) {
          result.out.at(t, c) = fused_out.at(row, c);
        }
      }
      result.k = k;
      result.shard = shard.index;
      result.batch_requests = batch_requests;
      result.fused_rows = total_t;
      result.cycles = run.total_cycles;
      result.time_ps = priced.time_ps;
      result.energy_pj = priced.energy_pj * static_cast<double>(r.shape.t) /
                         static_cast<double>(total_t);
      result.queue_ms = ms_between(r.enqueue_time, dispatch_time);
    }
  }

  {
    // All accounting lands before any client future resolves, so a client
    // that waits on its result always sees the books already balanced.
    std::lock_guard<std::mutex> lock(shard_stats_mutex_);
    shard.stats.batches += 1;
    shard.stats.requests += batch_requests;
    shard.stats.fused_runs += static_cast<std::int64_t>(groups.size());
    shard.stats.busy_time_ps += batch_time_ps;
    shard.stats.energy_pj += batch_energy_pj;
    shard.stats.busy_ps_by_mode[k] += batch_time_ps;
  }

  for (std::size_t i = 0; i < batch.requests.size(); ++i) {
    Request& r = batch.requests[i];
    GemmResult& result = results[i];
    result.latency_ms = ms_between(r.enqueue_time, Clock::now());
    // Tenant books use the same row-share as energy, so summing tenants'
    // sim_time reproduces the shards' busy time; the full fused-run time
    // stays visible in GemmResult::time_ps (the request's service time).
    const double time_share =
        result.time_ps * static_cast<double>(r.shape.t) /
        static_cast<double>(result.fused_rows);
    tenants_.record(r.tenant, /*is_inference=*/false, result.latency_ms,
                    result.energy_pj, time_share,
                    r.shape.t * r.shape.n * r.shape.m);
    completed_.fetch_add(1);
    r.gemm_promise.set_value(std::move(result));
  }
}

void Server::execute_infer_batch(Shard& shard, Batch& batch) {
  // Slices whose join already failed (a sibling slice errored, or shutdown
  // interrupted their submission) must neither execute nor bill.
  std::erase_if(batch.requests, [](const Request& r) {
    std::lock_guard<std::mutex> lock(r.join->mutex);
    return r.join->failed;
  });
  if (batch.requests.empty()) return;

  // Every request in the batch is the same (model, layer range) — see
  // serve::compatible — so the analytic slice report is computed once and
  // fanned to all of them; its energy is split across the coalesced
  // requesters (the hardware ran the slice once on their shared behalf).
  Request& head = batch.requests.front();
  const nn::ModelReport part =
      shard.runner.run_slice(*head.model, head.layer_begin, head.layer_count);
  const double share =
      1.0 / static_cast<double>(batch.requests.size());

  {
    std::lock_guard<std::mutex> lock(shard_stats_mutex_);
    shard.stats.batches += 1;
    shard.stats.requests += static_cast<std::int64_t>(batch.requests.size());
    shard.stats.busy_time_ps += part.arrayflex_time_ps;
    shard.stats.energy_pj += part.arrayflex_energy_pj;
    // Per-layer mode choices leave the array outside any single GEMM mode;
    // the next GEMM batch reconfigures from scratch.
    shard.stats.current_k = 0;
  }

  for (Request& r : batch.requests) {
    std::shared_ptr<InferJoin> join = r.join;
    nn::ModelReport assembled;
    double energy_pj = 0.0;
    double sim_time_ps = 0.0;
    bool last = false;
    {
      std::lock_guard<std::mutex> lock(join->mutex);
      if (join->failed) continue;  // a sibling slice already errored out
      join->parts[r.slice_index] = part;
      join->energy_pj += part.arrayflex_energy_pj * share;
      join->sim_time_ps += part.arrayflex_time_ps * share;
      last = (--join->remaining == 0);
      if (last) {
        // Assemble exactly the way InferenceRunner::run aggregates — layer
        // order first, then one sequential totals pass — so the merged
        // report is bit-identical to an unsharded run.
        assembled.model_name = join->model_name;
        for (nn::ModelReport& p : join->parts) {
          for (nn::LayerReport& lr : p.layers) {
            assembled.layers.push_back(std::move(lr));
          }
        }
        for (const nn::LayerReport& lr : assembled.layers) {
          assembled.arrayflex_time_ps += lr.arrayflex.time_ps;
          assembled.conventional_time_ps += lr.conventional.time_ps;
          assembled.arrayflex_energy_pj += lr.arrayflex_power.energy_pj;
          assembled.conventional_energy_pj += lr.conventional_power.energy_pj;
        }
        energy_pj = join->energy_pj;
        sim_time_ps = join->sim_time_ps;
      }
    }
    if (last) {
      InferenceResult result;
      result.num_slices = static_cast<int>(join->parts.size());
      result.latency_ms = ms_between(join->enqueue_time, Clock::now());
      tenants_.record(join->tenant, /*is_inference=*/true, result.latency_ms,
                      energy_pj, sim_time_ps, r.model->total_macs());
      completed_.fetch_add(1);
      result.report = std::move(assembled);
      join->promise.set_value(std::move(result));
    }
  }
}

ServerStats Server::stats() const {
  ServerStats out;
  out.submitted = submitted_.load();
  out.completed = completed_.load();
  {
    std::lock_guard<std::mutex> lock(shard_stats_mutex_);
    out.shards.reserve(shards_.size());
    for (const auto& shard : shards_) out.shards.push_back(shard->stats);
  }
  out.tenants = tenants_.snapshot();
  return out;
}

}  // namespace af::serve
