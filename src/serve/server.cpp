#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>
#include <tuple>
#include <utility>

#include "engine/cost_cache.h"
#include "mem/tile_scheduler.h"
#include "nn/runner.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace af::serve {
namespace {

double ms_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

// Maps SubmitOptions::admission_timeout_ms onto the dispatcher's timed
// submit: negative = wait forever (classic blocking admission).
std::chrono::microseconds admission_timeout(double timeout_ms) {
  if (timeout_ms < 0.0) return std::chrono::microseconds::max();
  return std::chrono::microseconds(
      static_cast<std::int64_t>(timeout_ms * 1000.0));
}

// The ErrorCode carried by an in-flight exception (kUnknown for anything
// that is not an af::Error — e.g. a std::bad_alloc out of an engine).
ErrorCode code_of(const std::exception_ptr& error) {
  try {
    std::rethrow_exception(error);
  } catch (const Error& e) {
    return e.code();
  } catch (...) {
    return ErrorCode::kUnknown;
  }
}

std::int64_t slice_macs(const nn::Model& model, std::size_t first,
                        std::size_t count) {
  std::int64_t macs = 0;
  for (std::size_t i = first; i < first + count; ++i) {
    macs += model.layers[i].macs();
  }
  return macs;
}

}  // namespace

OverloadPolicy parse_overload_policy(const std::string& name) {
  if (name == "block") return OverloadPolicy::kBlock;
  if (name == "degrade") return OverloadPolicy::kDegrade;
  if (name == "reject") return OverloadPolicy::kReject;
  AF_CHECK(false, "unknown overload policy \""
                      << name
                      << "\" (registered: \"block\", \"degrade\", \"reject\")");
  return OverloadPolicy::kBlock;  // unreachable
}

std::vector<std::string> overload_policy_names() {
  // Sorted, like the engine and dispatcher registries — the README's
  // policy matrix must list exactly these rows (CI diffs the two).
  return {"block", "degrade", "reject"};
}

std::string overload_policy_description(const std::string& name) {
  switch (parse_overload_policy(name)) {
    case OverloadPolicy::kBlock:
      return "classic backpressure: submit blocks on the full queue; nothing "
             "is refused, admitted latency unbounded under sustained overload";
    case OverloadPolicy::kDegrade:
      return "admit everything, but serve GEMMs cost-only on the shard "
             "default engine (no output, fidelity overrides dropped) and "
             "shed sampled audits while the overload window holds";
    case OverloadPolicy::kReject:
      return "fail fast: submit throws af::Error(kOverloaded) while the "
             "overload window or instantaneous depth trip holds; admitted "
             "requests keep bounded waits";
  }
  return {};  // unreachable
}

bool OverloadDetector::update(double depth_per_shard_now,
                              double wait_p99_ms_now,
                              double backlog_bytes_per_shard_now) {
  // The byte trip participates only when configured (threshold > 0).
  const bool bytes_hot = backlog_bytes_per_shard > 0.0 &&
                         backlog_bytes_per_shard_now >= backlog_bytes_per_shard;
  const bool hot = depth_per_shard_now >= depth_per_shard ||
                   wait_p99_ms_now >= wait_p99_ms || bytes_hot;
  // Exit only once ALL signals sit below half their enter thresholds —
  // the band between is the dead zone, so a load hovering at the trip
  // point cannot flap admission decisions tick to tick.
  const bool cool = depth_per_shard_now <= 0.5 * depth_per_shard &&
                    wait_p99_ms_now <= 0.5 * wait_p99_ms &&
                    (backlog_bytes_per_shard == 0.0 ||
                     backlog_bytes_per_shard_now <=
                         0.5 * backlog_bytes_per_shard);
  if (!overloaded) {
    if (hot) {
      exit_streak = 0;
      if (++enter_streak >= enter_patience) {
        overloaded = true;
        enter_streak = 0;
      }
    } else {
      enter_streak = 0;
    }
  } else {
    if (cool) {
      enter_streak = 0;
      if (++exit_streak >= exit_patience) {
        overloaded = false;
        exit_streak = 0;
      }
    } else {
      exit_streak = 0;
    }
  }
  return overloaded;
}

AutoscaleSignal parse_autoscale_signal(const std::string& name) {
  if (name == "wait_p99") return AutoscaleSignal::kWaitP99;
  if (name == "backlog_cost") return AutoscaleSignal::kBacklogCost;
  if (name == "backlog_bytes") return AutoscaleSignal::kBacklogBytes;
  AF_CHECK(false, "unknown autoscale signal \""
                      << name
                      << "\" (registered: \"backlog_bytes\", \"backlog_cost\", "
                         "\"wait_p99\")");
  return AutoscaleSignal::kWaitP99;  // unreachable
}

int AutoscalePolicy::decide(int live, double depth_per_shard,
                            double wait_p99_ms,
                            double backlog_macs_per_shard,
                            double backlog_bytes_per_shard) {
  // The depth term participates under every signal; the latency term is
  // the wall-clock wait, the queued simulated work, or the queued DRAM
  // traffic, per `signal`.
  bool lat_hot = false;
  bool lat_cool = false;
  switch (signal) {
    case AutoscaleSignal::kBacklogCost:
      lat_hot = backlog_macs_per_shard >= grow_backlog_macs_per_shard;
      lat_cool = backlog_macs_per_shard <= shrink_backlog_macs_per_shard;
      break;
    case AutoscaleSignal::kBacklogBytes:
      lat_hot = backlog_bytes_per_shard >= grow_backlog_bytes_per_shard;
      lat_cool = backlog_bytes_per_shard <= shrink_backlog_bytes_per_shard;
      break;
    case AutoscaleSignal::kWaitP99:
      lat_hot = wait_p99_ms >= grow_wait_p99_ms;
      lat_cool = wait_p99_ms <= shrink_wait_p99_ms;
      break;
  }
  const bool pressure = depth_per_shard >= grow_depth_per_shard || lat_hot;
  const bool idle = depth_per_shard <= shrink_depth_per_shard && lat_cool;
  if (pressure) {
    shrink_streak = 0;
    if (++grow_streak >= grow_patience) {
      grow_streak = 0;
      if (live < max_shards) return live + 1;
    }
  } else if (idle) {
    grow_streak = 0;
    if (++shrink_streak >= shrink_patience) {
      shrink_streak = 0;
      if (live > min_shards) return live - 1;
    }
  } else {
    // Dead zone between the bands: both streaks reset, nothing moves.
    grow_streak = 0;
    shrink_streak = 0;
  }
  return live;
}

std::int64_t ServerStats::audit_runs() const {
  std::int64_t n = 0;
  for (const ShardSnapshot& s : shards) n += s.audit_runs;
  return n;
}

std::int64_t ServerStats::audit_mismatches() const {
  std::int64_t n = 0;
  for (const ShardSnapshot& s : shards) n += s.audit_mismatches;
  return n;
}

// One execution engine plus everything stateful around it.  The engine
// owns the clock/power wiring (per-shard mode state lives in `stats`,
// written only under the server's shard_stats_mutex_ so stats() can
// snapshot concurrently); `audit_engine` is the cycle-accurate replayer
// for sampled cross-checks, null when auditing is off.  Engines are
// ACQUIRED and RELEASED by the autoscaler (Server::acquire_shard /
// release_shard) — a slot above the live prefix holds no engine at all.
struct Server::Shard {
  int index;
  std::shared_ptr<engine::Engine> engine;
  std::shared_ptr<engine::Engine> audit_engine;
  // Shrunk-scratchpad engine for degrade-mode GEMM batches (see
  // ServerOptions::degrade_spad_fraction); built lazily on first degraded
  // batch, null when the knob is off or the memory hierarchy is disabled.
  std::shared_ptr<engine::Engine> degrade_engine;
  std::unique_ptr<nn::InferenceRunner> runner;
  // Per-request fidelity overrides, built lazily and cached.  Touched only
  // by this shard's worker thread.
  std::map<std::string, std::shared_ptr<engine::Engine>> override_engines;
  // Deterministic audit sampling: += audit_fraction per fused run; every
  // crossing of 1.0 replays that run on the audit engine.
  double audit_credit = 0.0;
  // Consecutive engine faults with no clean batch in between (worker-thread
  // private); reaching quarantine_after_faults trips the quarantine below.
  int fault_streak = 0;
  // Set by the worker on quarantine, cleared by a successful recovery
  // probe; read by stats() via ShardSnapshot::quarantined.
  std::atomic<bool> quarantined{false};
  ShardSnapshot stats;
  std::thread worker;

  explicit Shard(int idx) : index(idx) { stats.shard = idx; }
};

Server::Server(const arch::ArrayConfig& shard_config, ServerOptions options)
    : shard_config_(shard_config),
      options_(options),
      tenants_(options.latency_hist_max_ms) {
  AF_CHECK(options_.num_shards >= 1, "server needs at least one shard");
  AF_CHECK(options_.max_batch >= 1, "max_batch must be at least 1");
  AF_CHECK(options_.audit_fraction >= 0.0 && options_.audit_fraction <= 1.0,
           "audit_fraction must be in [0, 1]");
  min_shards_ =
      options_.min_shards > 0 ? options_.min_shards : options_.num_shards;
  max_shards_ =
      options_.max_shards > 0 ? options_.max_shards : options_.num_shards;
  autoscale_enabled_ = min_shards_ < max_shards_;
  AF_CHECK(min_shards_ >= 1 && min_shards_ <= options_.num_shards &&
               options_.num_shards <= max_shards_,
           "shard bounds must satisfy 1 <= min_shards <= num_shards <= "
           "max_shards, got min="
               << min_shards_ << " num=" << options_.num_shards
               << " max=" << max_shards_);
  AF_CHECK(options_.autoscale_interval_ms > 0.0,
           "autoscale_interval_ms must be positive");
  AF_CHECK(options_.grow_patience >= 1 && options_.shrink_patience >= 1,
           "autoscale patience must be at least one tick");
  overload_policy_ = parse_overload_policy(options_.overload_policy);
  AF_CHECK(options_.overload_depth_per_shard > 0.0,
           "overload_depth_per_shard must be positive");
  AF_CHECK(options_.overload_wait_p99_ms > 0.0,
           "overload_wait_p99_ms must be positive");
  AF_CHECK(options_.overload_enter_patience >= 1 &&
               options_.overload_exit_patience >= 1,
           "overload patience must be at least one tick");
  AF_CHECK(options_.max_retries >= 0, "max_retries must be non-negative");
  AF_CHECK(options_.retry_backoff_base_ms >= 0.0 &&
               options_.retry_backoff_max_ms >= 0.0,
           "retry backoff must be non-negative");
  AF_CHECK(options_.quarantine_after_faults >= 0,
           "quarantine_after_faults must be non-negative");
  AF_CHECK(options_.quarantine_probe_interval_ms > 0.0,
           "quarantine_probe_interval_ms must be positive");
  AF_CHECK(options_.overload_backlog_bytes_per_shard >= 0.0,
           "overload_backlog_bytes_per_shard must be non-negative");
  AF_CHECK(options_.degrade_spad_fraction > 0.0 &&
               options_.degrade_spad_fraction <= 1.0,
           "degrade_spad_fraction must be in (0, 1]");
  AF_CHECK(options_.max_batch_bytes >= 0,
           "max_batch_bytes must be non-negative");
  detector_.depth_per_shard = options_.overload_depth_per_shard;
  detector_.wait_p99_ms = options_.overload_wait_p99_ms;
  detector_.backlog_bytes_per_shard =
      options_.overload_backlog_bytes_per_shard;
  detector_.enter_patience = options_.overload_enter_patience;
  detector_.exit_patience = options_.overload_exit_patience;
  // The control thread exists for either consumer of the pressure window:
  // the autoscaler, or a non-"block" overload policy.
  control_enabled_ =
      autoscale_enabled_ || overload_policy_ != OverloadPolicy::kBlock;
  // The shards' engines run serially on their own; cross-tile parallelism
  // comes from the one shared pool below (never a pool per shard — that is
  // the threads² oversubscription this layer exists to avoid).
  shard_config_.sim.num_threads = 1;
  shard_config_.validate();
  const int sim_threads =
      util::ThreadPool::resolve_num_threads(options_.sim_threads);
  if (sim_threads > 1) {
    sim_pool_ = std::make_unique<util::ThreadPool>(sim_threads);
  }
  if (options_.reconfig_cycles < 0) {
    options_.reconfig_cycles = shard_config_.rows + shard_config_.cols;
  }
  AF_CHECK(options_.reconfig_switch_margin >= 0.0,
           "reconfig_switch_margin must be non-negative");
  reconfig_.kind = parse_reconfig_policy(options_.reconfig_policy);
  reconfig_.switch_margin = options_.reconfig_switch_margin;

  // One builder wires every engine identically: shard config, the paper's
  // calibrated clock, the server's energy params, the one shared pool.
  // Scale-ups and per-request overrides acquire through it too.  The
  // server-wide cost cache rides in the builder, so every engine the
  // server ever constructs (shards, audits, overrides, degrade engines,
  // quarantine probes) memoizes into ONE map — keyed per engine by the
  // config/energy fingerprint, so differently-wired engines never share
  // entries, only the map.
  cost_cache_ = std::make_shared<engine::CostCache>();
  engine_builder_.config(shard_config_)
      .energy(options_.energy)
      .shared_pool(sim_pool_.get())
      .chaos(options_.chaos)
      .cost_cache(cost_cache_);
  admission_engine_ = engine::EngineBuilder()
                          .config(shard_config_)
                          .energy(options_.energy)
                          .cost_cache(cost_cache_)
                          .build("analytic");

  DispatcherOptions dispatch;
  dispatch.queue_capacity = options_.queue_capacity;
  dispatch.drr_quantum = options_.drr_quantum;
  dispatch.drr_deadline_urgent_ms = options_.drr_deadline_urgent_ms;
  dispatch.drr_deadline_weight_cap = options_.drr_deadline_weight_cap;
  dispatch.max_batch = options_.max_batch;
  dispatch.max_batch_bytes = options_.max_batch_bytes;
  dispatch.max_shards = max_shards_;
  dispatch.live_shards = options_.num_shards;
  dispatch.can_scale = autoscale_enabled_;
  dispatcher_ = make_dispatcher(options_.dispatcher, dispatch);

  policy_.min_shards = min_shards_;
  policy_.max_shards = max_shards_;
  policy_.grow_depth_per_shard = options_.grow_depth_per_shard;
  policy_.grow_wait_p99_ms = options_.grow_wait_p99_ms;
  policy_.shrink_depth_per_shard = options_.shrink_depth_per_shard;
  policy_.shrink_wait_p99_ms = options_.shrink_wait_p99_ms;
  policy_.grow_patience = options_.grow_patience;
  policy_.shrink_patience = options_.shrink_patience;
  policy_.signal = parse_autoscale_signal(options_.autoscale_signal);
  AF_CHECK(options_.grow_backlog_macs_per_shard > 0.0 &&
               options_.shrink_backlog_macs_per_shard >= 0.0,
           "backlog_cost autoscale thresholds must be positive");
  policy_.grow_backlog_macs_per_shard = options_.grow_backlog_macs_per_shard;
  policy_.shrink_backlog_macs_per_shard =
      options_.shrink_backlog_macs_per_shard;
  AF_CHECK(options_.grow_backlog_bytes_per_shard > 0.0 &&
               options_.shrink_backlog_bytes_per_shard >= 0.0,
           "backlog_bytes autoscale thresholds must be positive");
  policy_.grow_backlog_bytes_per_shard =
      options_.grow_backlog_bytes_per_shard;
  policy_.shrink_backlog_bytes_per_shard =
      options_.shrink_backlog_bytes_per_shard;

  shards_.reserve(static_cast<std::size_t>(max_shards_));
  for (int i = 0; i < max_shards_; ++i) {
    shards_.push_back(std::make_unique<Shard>(i));
  }
  for (int i = 0; i < options_.num_shards; ++i) {
    acquire_shard(*shards_[static_cast<std::size_t>(i)]);
  }
  publish_live_set(options_.num_shards);
  for (int i = 0; i < options_.num_shards; ++i) {
    start_worker(*shards_[static_cast<std::size_t>(i)]);
  }
  if (control_enabled_) {
    autoscaler_ = std::thread([this] { control_loop(); });
  }
}

Server::~Server() { shutdown(); }

void Server::shutdown() {
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mutex_);
  shut_down_.store(true);
  {
    std::lock_guard<std::mutex> lock(scale_mutex_);
  }
  scale_cv_.notify_all();
  if (autoscaler_.joinable()) autoscaler_.join();
  dispatcher_->close();
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
}

void Server::quiesce() {
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mutex_);
  // Ordered BEFORE the shut_down_ flip that wakes parked workers: any
  // worker released from the stall nap sees quiescing_ and exits without
  // calling next_batch, so it cannot race the strand below by grabbing
  // queued work on the way down.
  quiescing_.store(true, std::memory_order_release);
  if (shut_down_.exchange(true)) return;  // shutdown/quiesce already ran
  {
    std::lock_guard<std::mutex> lock(scale_mutex_);
  }
  scale_cv_.notify_all();
  if (autoscaler_.joinable()) autoscaler_.join();
  dispatcher_->close();
  // In-flight batches finish and deliver normally; workers blocked in
  // next_batch wake on close() and exit at the quiescing_ check.  Joining
  // them FIRST means drain_remaining below sees the queue's final state —
  // no worker can pop concurrently with the strand.
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
  // The crash semantics: everything still QUEUED is handed back with
  // kUnavailable instead of being served — these requests never touched an
  // engine, so a fleet re-admitting them elsewhere cannot double-serve.
  std::vector<Request> stranded = dispatcher_->drain_remaining();
  if (!stranded.empty()) {
    unserved_.fetch_add(static_cast<std::int64_t>(stranded.size()));
    fail_requests(stranded,
                  std::make_exception_ptr(
                      Error("server killed before this request could run",
                            ErrorCode::kUnavailable)),
                  ErrorCode::kUnavailable);
  }
}

void Server::acquire_shard(Shard& shard) {
  shard.engine = engine_builder_.build(options_.backend);
  if (options_.audit_fraction > 0.0 && !shard.engine->measures()) {
    shard.audit_engine = engine_builder_.build("cycle");
  }
  shard.runner = std::make_unique<nn::InferenceRunner>(shard.engine);
  // A slot re-acquired after retiring while quarantined starts clean: fault
  // history cleared, routing ban lifted (set_banned(false) is a no-op for
  // dispatchers without per-shard routing).
  shard.fault_streak = 0;
  shard.quarantined.store(false);
  dispatcher_->set_banned(shard.index, false);
  dispatcher_->set_shard_mode(shard.index, 0);
  std::lock_guard<std::mutex> lock(shard_stats_mutex_);
  shard.stats.backend = shard.engine->name();
  shard.stats.quarantined = false;
  shard.stats.current_k = 0;  // a (re)acquired array configures from scratch
}

void Server::release_shard(Shard& shard) {
  shard.runner.reset();
  shard.override_engines.clear();
  shard.audit_engine.reset();
  shard.degrade_engine.reset();
  shard.engine.reset();
  dispatcher_->set_shard_mode(shard.index, 0);
  std::lock_guard<std::mutex> lock(shard_stats_mutex_);
  shard.stats.current_k = 0;
}

void Server::publish_live_set(int live) {
  // ShardSnapshot::live and live_shards_ change together under the stats
  // mutex (which stats() holds for its whole snapshot), so no snapshot can
  // ever show a live-flag count disagreeing with live_shards — and once a
  // lock-free num_shards() read returns the new count, the flags are
  // already in place.
  std::lock_guard<std::mutex> lock(shard_stats_mutex_);
  for (int s = 0; s < max_shards_; ++s) {
    shards_[static_cast<std::size_t>(s)]->stats.live = s < live;
  }
  live_shards_.store(live);
}

void Server::start_worker(Shard& shard) {
  // A retired slot's thread has exited but may still hold a joinable
  // handle; reclaim it before re-spawning.
  if (shard.worker.joinable()) shard.worker.join();
  Shard* s = &shard;
  shard.worker = std::thread([this, s] { shard_loop(*s); });
}

void Server::control_loop() {
  std::unique_lock<std::mutex> lock(scale_mutex_);
  const auto interval = std::chrono::duration<double, std::milli>(
      options_.autoscale_interval_ms);
  while (!scale_cv_.wait_for(lock, interval,
                             [this] { return shut_down_.load(); })) {
    const int live = live_shards_.load();
    const double depth = static_cast<double>(dispatcher_->depth());
    // One drain per tick feeds BOTH consumers — drain() empties the
    // window, so detector and autoscaler must share the sample.
    const LatencyWindow::Stats waits = wait_window_.drain();
    const double depth_per_shard = depth / static_cast<double>(live);
    const double bytes_per_shard =
        static_cast<double>(dispatcher_->approx_bytes()) /
        static_cast<double>(live);
    if (overload_policy_ != OverloadPolicy::kBlock) {
      overloaded_.store(
          detector_.update(depth_per_shard, waits.p99_ms, bytes_per_shard));
    }
    if (autoscale_enabled_) {
      const double backlog_per_shard =
          static_cast<double>(dispatcher_->approx_cost()) /
          static_cast<double>(live);
      const int want = policy_.decide(live, depth_per_shard, waits.p99_ms,
                                      backlog_per_shard, bytes_per_shard);
      if (want > live) {
        grow_to(want);
      } else if (want < live) {
        shrink_to(want);
      }
    }
  }
}

bool Server::under_pressure() const {
  if (overloaded_.load(std::memory_order_relaxed)) return true;
  const int live = std::max(1, live_shards_.load());
  if (static_cast<double>(dispatcher_->approx_depth()) >=
      options_.overload_depth_per_shard * static_cast<double>(live)) {
    return true;
  }
  // Bandwidth pressure: queued projected DRAM traffic past the byte
  // threshold trips admission control even at modest request counts (a few
  // giant GEMMs can saturate the memory system long before the depth
  // check fires).  Off when the threshold is 0.
  return options_.overload_backlog_bytes_per_shard > 0.0 &&
         static_cast<double>(dispatcher_->approx_bytes()) >=
             options_.overload_backlog_bytes_per_shard *
                 static_cast<double>(live);
}

void Server::grow_to(int want) {
  const int live = live_shards_.load();
  for (int s = live; s < want; ++s) {
    acquire_shard(*shards_[static_cast<std::size_t>(s)]);
  }
  // Publish the new live set before the workers start, so their first
  // next_batch sees themselves live (and routing starts using them).
  publish_live_set(want);
  dispatcher_->set_live_shards(want);
  for (int s = live; s < want; ++s) {
    start_worker(*shards_[static_cast<std::size_t>(s)]);
  }
  scale_ups_.fetch_add(want - live);
}

void Server::shrink_to(int want) {
  const int old = live_shards_.load();
  publish_live_set(want);
  // Drains the retired deques back into the steal pool BEFORE the workers
  // are joined: their in-flight batches finish normally, queued work moves
  // to surviving shards, nothing is dropped or double-served.
  dispatcher_->set_live_shards(want);
  for (int s = want; s < old; ++s) {
    Shard& shard = *shards_[static_cast<std::size_t>(s)];
    if (shard.worker.joinable()) shard.worker.join();
    release_shard(shard);
  }
  scale_downs_.fetch_add(old - want);
}

std::future<GemmResult> Server::submit_gemm(
    const std::string& tenant, gemm::Mat32 a,
    std::shared_ptr<const gemm::Mat32> b, int k, bool want_output,
    const std::string& backend) {
  SubmitOptions submit;
  submit.k = k;
  submit.want_output = want_output;
  submit.backend = backend;
  return submit_gemm(tenant, std::move(a), std::move(b), submit);
}

std::future<GemmResult> Server::submit_gemm(
    const std::string& tenant, gemm::Mat32 a,
    std::shared_ptr<const gemm::Mat32> b, const SubmitOptions& submit) {
  if (shut_down_.load()) {
    throw Error("submit_gemm on a shut-down server", ErrorCode::kShutdown);
  }
  AF_CHECK(b != nullptr, "weight matrix required");
  AF_CHECK(a.rows() > 0, "activation matrix must be non-empty");
  AF_CHECK(a.cols() == b->rows(), "GEMM inner-dimension mismatch: "
                                      << a.cols() << " vs " << b->rows());
  AF_CHECK(submit.deadline_ms >= 0.0, "deadline_ms must be non-negative");
  // is_registered is allocation-free and the message (with its registry
  // join) is only built on failure — this runs on every overridden submit.
  if (!submit.backend.empty()) {
    AF_CHECK(engine::is_registered(submit.backend),
             "unknown per-request backend \""
                 << submit.backend << "\" (registered: "
                 << engine::registered_backend_list()
                 << ")");
  }
  // Overload policy fires before any admission work: a rejected request
  // costs the client one atomic read and one depth estimate.
  if (overload_policy_ == OverloadPolicy::kReject && under_pressure()) {
    rejected_.fetch_add(1);
    tenants_.record_error(tenant, ErrorCode::kOverloaded);
    throw Error("overloaded: admission rejected under the \"reject\" policy",
                ErrorCode::kOverloaded);
  }
  const bool degrade_now =
      overload_policy_ == OverloadPolicy::kDegrade && under_pressure();
  Request r;
  r.kind = RequestKind::kGemm;
  r.id = next_id_.fetch_add(1);
  r.tenant = tenant;
  r.backend = submit.backend;
  r.shape = gemm::GemmShape{b->cols(), b->rows(), a.rows()};
  r.drr_cost =
      std::max<std::int64_t>(1, r.shape.t * r.shape.n * r.shape.m);
  // Projected compulsory DRAM traffic (A+B+C, byte widths from the shard
  // config) — the byte-budget batching and bandwidth-pressure signal.
  // Well-defined even with the memory hierarchy disabled.
  r.drr_bytes = mem::projected_gemm_bytes(r.shape, shard_config_);
  // Marginal bytes if this request ends up riding a same-weight fusion
  // (private A+C only) — batch assembly picks between the two charges.
  r.drr_rider_bytes = mem::projected_fused_rider_bytes(r.shape, shard_config_);
  if (submit.k != 0) {
    AF_CHECK(shard_config_.supports(submit.k),
             "mode k=" << submit.k << " not supported");
    r.decided_k = submit.k;
  } else if (reconfig_.kind == ReconfigPolicyKind::kArgmin) {
    // The stateless default keeps the historical lock-free admission path,
    // now memoized: the first request of a shape pays the Eq. 6 argmin,
    // every repeat answers from the shared cost cache's sweep store.
    r.decided_k = admission_engine_->best_mode_cached(r.shape).k;
  } else {
    // Runtime reconfiguration: feed the policy this request's full mode
    // sweep plus the drain price a switch would bill (prepare_mode charges
    // reconfig_cycles at the NEW mode's clock — price it at the
    // challenger's period, i.e. the mode a switch would move to).  The
    // sweep itself is memoized in the shared cache (policies re-project
    // the same shapes every request; re-deriving every mode per admission
    // was the hot path's single biggest line item).
    const std::shared_ptr<const std::vector<arch::ModeSweepEntry>> sweep =
        admission_engine_->sweep_cached(r.shape);
    double best_period_ps = sweep->front().decision.period_ps;
    for (const arch::ModeSweepEntry& e : *sweep) {
      if (e.is_best) best_period_ps = e.decision.period_ps;
    }
    const double drain_ps =
        static_cast<double>(options_.reconfig_cycles) * best_period_ps;
    std::lock_guard<std::mutex> lock(reconfig_mutex_);
    r.decided_k = reconfig_.decide(*sweep, drain_ps);
  }
  r.a = std::move(a);
  r.b = std::move(b);
  r.want_output = submit.want_output;
  if (degrade_now) {
    // Pressure traffic is admitted but served cost-only on the shard
    // default engine: no output, no fidelity override, audits shed.  The
    // result still carries exact cycles/time/energy (and degraded = true).
    r.degraded = true;
    r.want_output = false;
    r.backend.clear();
    degraded_.fetch_add(1);
    tenants_.record_degraded(tenant);
  }
  r.max_retries =
      submit.max_retries >= 0 ? submit.max_retries : options_.max_retries;
  r.enqueue_time = Clock::now();
  if (submit.deadline_ms > 0.0) {
    r.deadline = r.enqueue_time +
                 std::chrono::duration_cast<Clock::duration>(
                     std::chrono::duration<double, std::milli>(
                         submit.deadline_ms));
  }
  std::future<GemmResult> future = r.gemm_promise.get_future();
  // Counted before the push: a fast worker may complete the request before
  // this thread runs another instruction, and stats() must never show
  // completed > submitted.
  submitted_.fetch_add(1);
  // submit_for moves from r only on acceptance, so the promise stays with
  // this frame (and dies with it, never double-resolved) on rejection.
  switch (dispatcher_->submit_for(
      r, admission_timeout(submit.admission_timeout_ms))) {
    case SubmitResult::kAccepted:
      return future;
    case SubmitResult::kWouldBlock:
      submitted_.fetch_sub(1);
      rejected_.fetch_add(1);
      tenants_.record_error(tenant, ErrorCode::kOverloaded);
      throw Error("overloaded: queue still full after admission timeout",
                  ErrorCode::kOverloaded);
    case SubmitResult::kClosed:
      break;
  }
  submitted_.fetch_sub(1);
  throw Error("server shut down while enqueueing", ErrorCode::kShutdown);
}

BatchTicket Server::submit_gemm_batch(const std::string& tenant,
                                      std::span<const gemm::GemmShape> shapes,
                                      const SubmitOptions& submit) {
  if (shut_down_.load()) {
    throw Error("submit_gemm_batch on a shut-down server",
                ErrorCode::kShutdown);
  }
  AF_CHECK(!shapes.empty(), "submit_gemm_batch needs at least one shape");
  AF_CHECK(submit.deadline_ms >= 0.0, "deadline_ms must be non-negative");
  if (submit.k != 0) {
    AF_CHECK(shard_config_.supports(submit.k),
             "mode k=" << submit.k << " not supported");
  }
  if (!submit.backend.empty()) {
    AF_CHECK(engine::is_registered(submit.backend),
             "unknown per-request backend \""
                 << submit.backend << "\" (registered: "
                 << engine::registered_backend_list() << ")");
  }
  const std::int64_t count = static_cast<std::int64_t>(shapes.size());
  // One overload check for the whole batch — N shapes cost the client ONE
  // atomic read and one depth estimate, not N.  Rejection counts every
  // shape (each is a logical request, like the books below).
  if (overload_policy_ == OverloadPolicy::kReject && under_pressure()) {
    rejected_.fetch_add(count);
    tenants_.record_error(tenant, ErrorCode::kOverloaded);
    throw Error("overloaded: admission rejected under the \"reject\" policy",
                ErrorCode::kOverloaded);
  }
  // Shape validation up front (the engine would reject them too, but at
  // admission the CLIENT gets the throw instead of a failed ticket), and
  // the DRR charge: cost queries run no hardware, so they are billed by
  // query count — a tenant spamming estimates shares the planning lane
  // fairly without starving anyone's real GEMM MACs.
  Request r;
  r.kind = RequestKind::kGemmBatch;
  r.id = next_id_.fetch_add(1);
  r.tenant = tenant;
  r.backend = submit.backend;
  r.decided_k = submit.k;  // 0 = per-shape argmin inside evaluate_batch
  r.want_output = false;   // the batched path is cost-only by construction
  r.drr_cost = count;
  r.drr_bytes = 0;         // no operands, no projected DRAM traffic
  r.drr_rider_bytes = 0;
  std::shared_ptr<BatchSlot> slot = slot_pool_.acquire();
  std::vector<gemm::GemmShape>& slot_shapes = slot->shapes();
  slot_shapes.reserve(shapes.size());
  for (const gemm::GemmShape& s : shapes) {
    AF_CHECK(s.m > 0 && s.n > 0 && s.t > 0,
             "submit_gemm_batch shape dims must be positive, got m="
                 << s.m << " n=" << s.n << " t=" << s.t);
    slot_shapes.push_back(s);
  }
  r.slot = slot;
  r.max_retries =
      submit.max_retries >= 0 ? submit.max_retries : options_.max_retries;
  r.enqueue_time = Clock::now();
  if (submit.deadline_ms > 0.0) {
    r.deadline = r.enqueue_time +
                 std::chrono::duration_cast<Clock::duration>(
                     std::chrono::duration<double, std::milli>(
                         submit.deadline_ms));
  }
  // Every shape is one logical request in the books: submitted_ moves by
  // the batch size here, completed_ moves by the same on delivery or
  // failure, so submitted == completed still balances (the lifecycle
  // invariant the tests pin).
  submitted_.fetch_add(count);
  switch (dispatcher_->submit_for(
      r, admission_timeout(submit.admission_timeout_ms))) {
    case SubmitResult::kAccepted:
      return BatchTicket(std::move(slot), &slot_pool_);
    case SubmitResult::kWouldBlock:
      submitted_.fetch_sub(count);
      rejected_.fetch_add(count);
      tenants_.record_error(tenant, ErrorCode::kOverloaded);
      throw Error("overloaded: queue still full after admission timeout",
                  ErrorCode::kOverloaded);
    case SubmitResult::kClosed:
      break;
  }
  submitted_.fetch_sub(count);
  throw Error("server shut down while enqueueing", ErrorCode::kShutdown);
}

std::future<InferenceResult> Server::submit_inference(
    const std::string& tenant, std::shared_ptr<const nn::Model> model) {
  return submit_inference(tenant, std::move(model), SubmitOptions{});
}

std::future<InferenceResult> Server::submit_inference(
    const std::string& tenant, std::shared_ptr<const nn::Model> model,
    const SubmitOptions& submit) {
  if (shut_down_.load()) {
    throw Error("submit_inference on a shut-down server",
                ErrorCode::kShutdown);
  }
  AF_CHECK(model != nullptr && !model->layers.empty(),
           "inference needs a non-empty model");
  AF_CHECK(submit.deadline_ms >= 0.0, "deadline_ms must be non-negative");
  // Inference is never degraded (its fidelity IS the product); under
  // pressure the "reject" policy sheds it like any other admission.
  if (overload_policy_ == OverloadPolicy::kReject && under_pressure()) {
    rejected_.fetch_add(1);
    tenants_.record_error(tenant, ErrorCode::kOverloaded);
    throw Error("overloaded: admission rejected under the \"reject\" policy",
                ErrorCode::kOverloaded);
  }
  const std::size_t layers = model->layers.size();
  const std::size_t slices = std::min<std::size_t>(
      static_cast<std::size_t>(std::max(1, live_shards_.load())), layers);

  auto join = std::make_shared<InferJoin>();
  join->parts.resize(slices);
  join->remaining = slices;
  join->enqueue_time = Clock::now();
  join->tenant = tenant;
  join->model_name = model->name;
  std::future<InferenceResult> future = join->promise.get_future();

  // Contiguous slices, sizes as even as possible (the first `layers %
  // slices` slices take one extra layer).
  const std::size_t base = layers / slices;
  const std::size_t extra = layers % slices;
  std::size_t begin = 0;
  submitted_.fetch_add(1);
  for (std::size_t i = 0; i < slices; ++i) {
    const std::size_t count = base + (i < extra ? 1 : 0);
    Request r;
    r.kind = RequestKind::kInferSlice;
    r.id = next_id_.fetch_add(1);
    r.tenant = tenant;
    r.enqueue_time = join->enqueue_time;
    r.model = model;
    r.layer_begin = begin;
    r.layer_count = count;
    r.slice_index = i;
    r.join = join;
    r.drr_cost = std::max<std::int64_t>(1, slice_macs(*model, begin, count));
    r.max_retries =
        submit.max_retries >= 0 ? submit.max_retries : options_.max_retries;
    if (submit.deadline_ms > 0.0) {
      r.deadline = join->enqueue_time +
                   std::chrono::duration_cast<Clock::duration>(
                       std::chrono::duration<double, std::milli>(
                           submit.deadline_ms));
    }
    begin += count;
    const SubmitResult pushed = dispatcher_->submit_for(
        r, admission_timeout(submit.admission_timeout_ms));
    if (pushed != SubmitResult::kAccepted) {
      // Shutdown (or an admission timeout) raced the fan-out: slices pushed
      // so far are already in workers' hands.  Marking the join failed
      // turns them into no-ops (execute_infer_batch skips failed joins), so
      // a rejected submission never half-completes or half-bills.
      {
        std::lock_guard<std::mutex> lock(join->mutex);
        join->failed = true;
      }
      submitted_.fetch_sub(1);
      if (pushed == SubmitResult::kWouldBlock) {
        rejected_.fetch_add(1);
        tenants_.record_error(tenant, ErrorCode::kOverloaded);
        throw Error("overloaded: queue still full after admission timeout",
                    ErrorCode::kOverloaded);
      }
      throw Error("server shut down while enqueueing", ErrorCode::kShutdown);
    }
  }
  return future;
}

void Server::shard_loop(Shard& shard) {
  while (true) {
    // Stall failpoint: a paused worker holds no batch (the check sits
    // BEFORE next_batch), so pausing strands nothing in a worker's hands —
    // queued work waits in the dispatcher, where quiesce() can still hand
    // it off.  Retirement and shutdown both break the nap.
    while (paused_.load(std::memory_order_acquire) && !shut_down_.load()) {
      if (shard.index >= live_shards_.load()) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    // A quiescing server strands its queue instead of draining it: exit
    // here, before next_batch, so the crash path cannot half-serve work
    // that quiesce() is about to hand back as kUnavailable.  (Plain
    // shutdown leaves quiescing_ unset and falls through to the drain.)
    if (quiescing_.load(std::memory_order_acquire)) return;
    // A quarantined shard stops serving and probes for recovery instead.
    // It still exits promptly when retired by the autoscaler (so
    // shrink_to's join cannot deadlock on a sick shard), and falls
    // through to next_batch at shutdown so the final drain resolves every
    // remaining promise — with a typed error if the engine is still sick.
    while (shard.quarantined.load(std::memory_order_acquire) &&
           !shut_down_.load()) {
      if (shard.index >= live_shards_.load()) return;
      if (probe_quarantined(shard)) break;
    }
    auto batch = dispatcher_->next_batch(shard.index);
    if (!batch) return;
    resolve_expired(*batch);
    if (batch->requests.empty()) continue;  // everything in it was overdue
    try {
      if (batch->kind == RequestKind::kGemm) {
        execute_gemm_batch(shard, *batch);
      } else if (batch->kind == RequestKind::kGemmBatch) {
        execute_cost_batch(shard, *batch);
      } else {
        execute_infer_batch(shard, *batch);
      }
      shard.fault_streak = 0;  // a clean batch ends any fault run
    } catch (...) {
      // A failing batch must not take the whole server down (a worker
      // thread's escaped exception is std::terminate): contain it —
      // retry what the budget allows, fail the rest typed, quarantine
      // the shard when faults keep coming.
      handle_batch_failure(shard, *batch, std::current_exception());
    }
  }
}

void Server::fail_batch(Batch& batch, std::exception_ptr error) {
  fail_requests(batch.requests, error, code_of(error));
}

void Server::fail_requests(std::vector<Request>& requests,
                           std::exception_ptr error, ErrorCode code) {
  for (Request& r : requests) {
    if (r.kind == RequestKind::kGemm) {
      // All accounting lands before the promise resolves, so a client that
      // wakes on the error and immediately calls stats() sees the books
      // already balanced (the same ordering execute_gemm_batch keeps).
      tenants_.record_error(r.tenant, code);
      completed_.fetch_add(1);
      try {
        r.gemm_promise.set_exception(error);
      } catch (const std::future_error&) {
        // A promise that already held a value or error means this request
        // was served (or failed) twice — the exact lifecycle bug this
        // layer exists to rule out.  Counted so release builds surface it
        // in stats(); fatal in debug builds.
        completed_.fetch_sub(1);
        promise_double_sets_.fetch_add(1);
        AF_ASSERT(false, "GEMM promise settled twice (request " << r.id
                                                                << ")");
      }
    } else if (r.kind == RequestKind::kGemmBatch) {
      // One slot failure settles every shape in the batch; the books move
      // by the batch size (each shape was counted at submission).
      const std::int64_t count = static_cast<std::int64_t>(r.slot->count());
      tenants_.record_error(r.tenant, code);
      completed_.fetch_add(count);
      if (!r.slot->fail(error)) {
        completed_.fetch_sub(count);
        promise_double_sets_.fetch_add(1);
        AF_ASSERT(false,
                  "batch slot settled twice (request " << r.id << ")");
      }
    } else if (r.join != nullptr) {
      {
        std::lock_guard<std::mutex> lock(r.join->mutex);
        if (r.join->failed) continue;  // another slice already reported
        r.join->failed = true;
      }
      tenants_.record_error(r.tenant, code);
      completed_.fetch_add(1);
      try {
        r.join->promise.set_exception(error);
      } catch (const std::future_error&) {
        completed_.fetch_sub(1);
        promise_double_sets_.fetch_add(1);
        AF_ASSERT(false, "inference promise settled twice (request "
                             << r.id << ")");
      }
    }
  }
}

void Server::resolve_expired(Batch& batch) {
  // Two reaping sites meet here: requests the dispatcher swept while they
  // sat queued (batch.expired), and riders that went overdue between batch
  // assembly and this shard picking the batch up.
  std::vector<Request> overdue = std::move(batch.expired);
  batch.expired.clear();
  const Clock::time_point now = Clock::now();
  for (auto it = batch.requests.begin(); it != batch.requests.end();) {
    if (it->expired(now)) {
      overdue.push_back(std::move(*it));
      it = batch.requests.erase(it);
    } else {
      ++it;
    }
  }
  if (overdue.empty()) return;
  expired_.fetch_add(static_cast<std::int64_t>(overdue.size()));
  fail_requests(
      overdue,
      std::make_exception_ptr(Error("deadline exceeded before execution",
                                    ErrorCode::kDeadlineExceeded)),
      ErrorCode::kDeadlineExceeded);
}

void Server::handle_batch_failure(Shard& shard, Batch& batch,
                                  std::exception_ptr error) {
  const ErrorCode code = code_of(error);
  // Anything the engine threw mid-run counts as an engine fault for
  // quarantine purposes — kInvalidArgument out of validation does not (a
  // bad request must not poison its shard).
  const bool engine_fault = code == ErrorCode::kEngineFault ||
                            code == ErrorCode::kUnknown;
  if (engine_fault) {
    engine_faults_.fetch_add(1);
    shard.fault_streak += 1;
    {
      std::lock_guard<std::mutex> lock(shard_stats_mutex_);
      shard.stats.engine_faults += 1;
    }
    if (options_.quarantine_after_faults > 0 &&
        shard.fault_streak >= options_.quarantine_after_faults &&
        !shard.quarantined.load(std::memory_order_relaxed)) {
      quarantines_.fetch_add(1);
      shard.quarantined.store(true, std::memory_order_release);
      {
        std::lock_guard<std::mutex> lock(shard_stats_mutex_);
        shard.stats.quarantined = true;
      }
      // Ban lifts this shard out of submit routing and drains its queued
      // work to healthy shards; in-flight retries below route around it
      // via avoid_shard.
      dispatcher_->set_banned(shard.index, true);
    }
  } else {
    shard.fault_streak = 0;
  }

  // Split the batch: engine-faulted requests with retry budget left (and
  // an unexpired deadline) are resubmitted to a different shard; the rest
  // fail right here with the typed error.
  const Clock::time_point now = Clock::now();
  std::vector<Request> terminal;
  std::vector<Request> retry;
  for (Request& r : batch.requests) {
    if (engine_fault && r.attempts < r.max_retries && !r.expired(now)) {
      retry.push_back(std::move(r));
    } else {
      terminal.push_back(std::move(r));
    }
  }
  batch.requests.clear();
  if (!terminal.empty()) fail_requests(terminal, error, code);
  if (retry.empty()) return;

  // Capped exponential backoff, slept once for the whole batch (every
  // member faulted together): base * 2^attempts, attempts being the most
  // travelled member's count BEFORE this bump.
  int worst_attempts = 0;
  for (Request& r : retry) {
    worst_attempts = std::max(worst_attempts, r.attempts);
    r.attempts += 1;
    r.avoid_shard = shard.index;
    retries_.fetch_add(1);
    tenants_.record_retry(r.tenant);
  }
  if (options_.retry_backoff_base_ms > 0.0) {
    const double backoff_ms =
        std::min(options_.retry_backoff_max_ms,
                 options_.retry_backoff_base_ms *
                     std::ldexp(1.0, worst_attempts));
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(backoff_ms));
  }
  std::vector<Request> orphaned;
  for (Request& r : retry) {
    // Blocking resubmit (the request was already admitted once — the
    // backpressure debate is over); fails only when shutdown closed the
    // dispatcher, and those orphans get a typed kShutdown below.
    if (dispatcher_->submit_for(r, std::chrono::microseconds::max()) !=
        SubmitResult::kAccepted) {
      orphaned.push_back(std::move(r));
    }
  }
  if (!orphaned.empty()) {
    fail_requests(orphaned,
                  std::make_exception_ptr(Error(
                      "server shut down while retrying a faulted request",
                      ErrorCode::kShutdown)),
                  ErrorCode::kShutdown);
  }
}

bool Server::probe_quarantined(Shard& shard) {
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
      options_.quarantine_probe_interval_ms));
  if (shut_down_.load() || shard.index >= live_shards_.load()) return false;
  try {
    // A fresh engine, not the sick one: rebuilding resets per-engine state
    // (a chaos engine restarts its fault schedule), which is exactly what
    // "did the fault condition clear?" means in this simulated setting.
    std::shared_ptr<engine::Engine> fresh =
        engine_builder_.build(options_.backend);
    gemm::Mat32 a(1, shard_config_.rows);
    gemm::Mat32 b(shard_config_.rows, 1);
    for (std::int64_t i = 0; i < shard_config_.rows; ++i) {
      a.at(0, i) = 1;
      b.at(i, 0) = 1;
    }
    engine::GemmRequest probe;
    probe.a = &a;
    probe.b = &b;
    probe.k = admission_engine_
                  ->best_mode_cached(gemm::GemmShape{1, shard_config_.rows, 1})
                  .k;
    probe.want_output = false;
    fresh->run_gemm(probe);
    // Healthy: swap the fresh engine in, drop caches wired to the sick
    // one, rejoin the routing pool.
    shard.engine = std::move(fresh);
    if (options_.audit_fraction > 0.0 && !shard.engine->measures()) {
      shard.audit_engine = engine_builder_.build("cycle");
    }
    shard.runner = std::make_unique<nn::InferenceRunner>(shard.engine);
    shard.override_engines.clear();
    shard.degrade_engine.reset();
    shard.fault_streak = 0;
    {
      std::lock_guard<std::mutex> lock(shard_stats_mutex_);
      shard.stats.quarantined = false;
      shard.stats.backend = shard.engine->name();
      shard.stats.current_k = 0;  // the new array configures from scratch
    }
    dispatcher_->set_shard_mode(shard.index, 0);
    shard.quarantined.store(false, std::memory_order_release);
    dispatcher_->set_banned(shard.index, false);
    return true;
  } catch (...) {
    return false;  // still sick; the worker loop probes again next interval
  }
}

void Server::prepare_mode(Shard& shard, int k, bool stolen) {
  std::lock_guard<std::mutex> lock(shard_stats_mutex_);
  if (shard.stats.current_k == k) {
    // A stolen batch already in this array's mode: the locality-aware
    // steal pass earned its keep — this dispatch skipped the drain an
    // arbitrary-victim steal would likely have paid.
    if (stolen && k != 0) shard.stats.steal_drains_avoided += 1;
    return;
  }
  if (shard.stats.current_k != 0) {
    // A genuine mode switch: drain the pipeline at the new mode's clock,
    // burning leakage but doing no work.  (current_k == 0 — fresh shard or
    // post-inference — configures without a drain to bill.)
    shard.stats.mode_switches += 1;
    const double time_ps = static_cast<double>(options_.reconfig_cycles) *
                           shard.engine->clock().period_ps(k);
    const double leak_mw = options_.energy.leak_mw_per_pe *
                           static_cast<double>(shard_config_.num_pes());
    shard.stats.reconfig_time_ps += time_ps;
    shard.stats.reconfig_energy_pj += leak_mw * time_ps * 1e-3;
  }
  shard.stats.current_k = k;
  // Publish to the dispatcher's locality signal so steal scans can prefer
  // victims whose pending round matches this array's configuration.
  dispatcher_->set_shard_mode(shard.index, k);
}

engine::Engine* Server::engine_for(Shard& shard, const Batch& batch) {
  const Request& head = batch.requests.front();
  // Degrade-mode footprint shrink: with a memory hierarchy enabled and
  // degrade_spad_fraction < 1, degraded batches run on an engine whose
  // scratchpad is scaled down — pressure traffic yields on-chip capacity
  // (more DRAM traffic, more stall cycles) instead of competing for it.
  // Batches are degrade-uniform (serve::compatible), so the choice is per
  // batch; a shape infeasible at the shrunk capacity fails the request
  // with kInvalidArgument — the documented operator contract.
  if (head.degraded && options_.degrade_spad_fraction < 1.0 &&
      shard_config_.mem.enabled) {
    if (shard.degrade_engine == nullptr) {
      arch::ArrayConfig degraded_config = shard_config_;
      degraded_config.mem.spad_bytes = std::max<std::int64_t>(
          1, static_cast<std::int64_t>(
                 options_.degrade_spad_fraction *
                 static_cast<double>(shard_config_.mem.spad_bytes)));
      engine::EngineBuilder degraded_builder = engine_builder_;
      degraded_builder.config(degraded_config);
      shard.degrade_engine = degraded_builder.build(options_.backend);
    }
    return shard.degrade_engine.get();
  }
  const std::string& override_name = head.backend;
  if (override_name.empty() || override_name == shard.engine->name()) {
    return shard.engine.get();
  }
  auto it = shard.override_engines.find(override_name);
  if (it == shard.override_engines.end()) {
    it = shard.override_engines
             .emplace(override_name, engine_builder_.build(override_name))
             .first;
  }
  return it->second.get();
}

void Server::execute_gemm_batch(Shard& shard, Batch& batch) {
  const int k = batch.k;
  const Clock::time_point dispatch_time = Clock::now();
  prepare_mode(shard, k, batch.stolen);
  // All batch members share one backend override (serve::compatible), so
  // the whole batch executes on one engine.
  engine::Engine* engine = engine_for(shard, batch);

  // Fuse requests naming the same weight matrix and shape: their activation
  // rows stack along T into one hardware run, so the weight preload (the R
  // cycles per tile) is paid once per fused run instead of once per
  // request.  Order of first appearance is preserved.
  using FuseKey = std::tuple<const gemm::Mat32*, std::int64_t, std::int64_t>;
  std::vector<std::pair<FuseKey, std::vector<std::size_t>>> groups;
  for (std::size_t i = 0; i < batch.requests.size(); ++i) {
    const Request& r = batch.requests[i];
    const FuseKey key{r.b.get(), r.shape.n, r.shape.m};
    auto it = std::find_if(groups.begin(), groups.end(),
                           [&](const auto& g) { return g.first == key; });
    if (it == groups.end()) {
      groups.push_back({key, {i}});
    } else {
      it->second.push_back(i);
    }
  }

  const std::int64_t batch_requests =
      static_cast<std::int64_t>(batch.requests.size());
  double batch_time_ps = 0.0;
  double batch_energy_pj = 0.0;
  std::int64_t batch_audits = 0;
  std::int64_t batch_audit_mismatches = 0;
  std::vector<GemmResult> results(batch.requests.size());

  for (auto& [key, members] : groups) {
    const Request& head = batch.requests[members.front()];
    std::int64_t total_t = 0;
    bool want_output = false;
    bool degraded_run = false;
    for (const std::size_t i : members) {
      total_t += batch.requests[i].shape.t;
      want_output = want_output || batch.requests[i].want_output;
      degraded_run = degraded_run || batch.requests[i].degraded;
    }
    gemm::Mat32 stacked(total_t, head.shape.n);
    std::int64_t row = 0;
    for (const std::size_t i : members) {
      const gemm::Mat32& a = batch.requests[i].a;
      for (std::int64_t t = 0; t < a.rows(); ++t, ++row) {
        for (std::int64_t c = 0; c < a.cols(); ++c) {
          stacked.at(row, c) = a.at(t, c);
        }
      }
    }

    engine::GemmRequest run_request;
    run_request.a = &stacked;
    run_request.b = head.b.get();
    run_request.k = k;
    run_request.want_output = want_output;
    const engine::RunResult run = engine->run_gemm(run_request);
    batch_time_ps += run.cost.time_ps;
    batch_energy_pj += run.cost.energy_pj;

    // Deterministic sampled audit: replay the identical fused run on the
    // cycle-accurate engine and insist on exact agreement — outputs bit
    // for bit, cycles / counters / energy number for number.  A measuring
    // override IS ground truth, so it audits nothing.
    bool audited = false;
    // A degraded fused run sheds its audit: under pressure the replay's
    // cycle-accurate simulation is exactly the capacity being protected.
    if (shard.audit_engine != nullptr && !engine->measures() &&
        !degraded_run) {
      shard.audit_credit += options_.audit_fraction;
      if (shard.audit_credit >= 1.0) {
        shard.audit_credit -= 1.0;
        audited = true;
        engine::GemmRequest replay_request = run_request;
        replay_request.want_output = run.out.has_value();
        const engine::RunResult replay =
            shard.audit_engine->run_gemm(replay_request);
        bool agrees = engine::exactly_equal(replay.cost, run.cost);
        if (agrees && run.out.has_value() && replay.out.has_value()) {
          agrees = (*replay.out == *run.out);
        }
        ++batch_audits;
        if (!agrees) ++batch_audit_mismatches;
      }
    }

    // Unstack the fused product (when computed).  Energy is attributed by
    // each request's share of the fused rows; completion (and thus
    // simulated service time) is the whole fused run for every member.
    row = 0;
    for (const std::size_t i : members) {
      const Request& r = batch.requests[i];
      GemmResult& result = results[i];
      if (run.out.has_value() && r.want_output) {
        result.out = gemm::Mat64(r.shape.t, r.shape.m);
        for (std::int64_t t = 0; t < r.shape.t; ++t, ++row) {
          for (std::int64_t c = 0; c < r.shape.m; ++c) {
            result.out.at(t, c) = run.out->at(row, c);
          }
        }
      } else if (run.out.has_value()) {
        // A cost-only rider fused with output-wanting requests: its rows
        // exist in the fused product but it declined them — skip the copy
        // and keep GemmResult::out empty, as submit_gemm documents.
        row += r.shape.t;
      }
      result.k = k;
      result.shard = shard.index;
      result.batch_requests = batch_requests;
      result.fused_rows = total_t;
      result.cycles = run.cost.cycles;
      result.stall_cycles = run.cost.stall_cycles;
      result.dram_bytes = run.cost.dram_bytes;
      result.time_ps = run.cost.time_ps;
      result.energy_pj = run.cost.energy_pj * static_cast<double>(r.shape.t) /
                         static_cast<double>(total_t);
      result.queue_ms = ms_between(r.enqueue_time, dispatch_time);
      result.backend = engine->name();
      result.measured = run.measured;
      result.audited = audited;
      result.degraded = r.degraded;
    }
  }

  {
    // All accounting lands before any client future resolves, so a client
    // that waits on its result always sees the books already balanced.
    std::lock_guard<std::mutex> lock(shard_stats_mutex_);
    shard.stats.batches += 1;
    shard.stats.requests += batch_requests;
    shard.stats.fused_runs += static_cast<std::int64_t>(groups.size());
    shard.stats.audit_runs += batch_audits;
    shard.stats.audit_mismatches += batch_audit_mismatches;
    shard.stats.busy_time_ps += batch_time_ps;
    shard.stats.energy_pj += batch_energy_pj;
    shard.stats.busy_ps_by_mode[k] += batch_time_ps;
  }

  for (std::size_t i = 0; i < batch.requests.size(); ++i) {
    Request& r = batch.requests[i];
    GemmResult& result = results[i];
    result.latency_ms = ms_between(r.enqueue_time, Clock::now());
    // The wait window's consumers are the control thread's autoscaler and
    // overload detector; when neither runs nothing drains it, so sampling
    // would grow it without bound (and cost a shared mutex per request
    // for nothing).
    if (control_enabled_) wait_window_.sample(result.queue_ms);
    // Tenant books use the same row-share as energy, so summing tenants'
    // sim_time reproduces the shards' busy time; the full fused-run time
    // stays visible in GemmResult::time_ps (the request's service time).
    const double time_share =
        result.time_ps * static_cast<double>(r.shape.t) /
        static_cast<double>(result.fused_rows);
    tenants_.record(r.tenant, /*is_inference=*/false, result.latency_ms,
                    result.queue_ms, result.energy_pj, time_share,
                    r.shape.t * r.shape.n * r.shape.m);
    completed_.fetch_add(1);
    r.gemm_promise.set_value(std::move(result));
  }
}

void Server::execute_cost_batch(Shard& shard, Batch& batch) {
  const Clock::time_point dispatch_time = Clock::now();
  // No prepare_mode: a cost query is pure planning — it never configures
  // the array, so it neither pays nor bills a reconfiguration drain, and
  // it leaves the shard's published mode (the steal-locality signal)
  // untouched.  All batch members share one backend override
  // (serve::compatible), so one engine answers the whole dispatch.
  engine::Engine* engine = engine_for(shard, batch);

  std::int64_t answered = 0;
  for (Request& r : batch.requests) {
    // The slot is read/settled through a local reference; the shared_ptr
    // stays on the request so a double-settle (if the request were ever
    // replayed) still hits the guard instead of a dead slot.
    BatchSlot& slot = *r.slot;
    std::vector<engine::CostEstimate> results =
        engine->evaluate_batch(slot.shapes(), r.decided_k);
    const std::int64_t count = static_cast<std::int64_t>(results.size());
    const double queue_ms = ms_between(r.enqueue_time, dispatch_time);
    if (control_enabled_) wait_window_.sample(queue_ms);
    // Cost queries perform no simulated hardware work: the tenant books
    // record the serving latency and the query volume (drr_cost = shape
    // count), but zero energy and zero sim time — summing tenants'
    // sim_time must keep reproducing the shards' busy time, and these
    // batches never made an array busy.
    tenants_.record(r.tenant, /*is_inference=*/false,
                    ms_between(r.enqueue_time, Clock::now()), queue_ms,
                    /*energy_pj=*/0.0, /*sim_time_ps=*/0.0, r.drr_cost);
    answered += count;
    completed_.fetch_add(count);
    if (!slot.complete(std::move(results))) {
      completed_.fetch_sub(count);
      promise_double_sets_.fetch_add(1);
      AF_ASSERT(false, "batch slot settled twice (request " << r.id << ")");
    }
  }

  std::lock_guard<std::mutex> lock(shard_stats_mutex_);
  shard.stats.batches += 1;
  shard.stats.requests += answered;
}

void Server::execute_infer_batch(Shard& shard, Batch& batch) {
  // Slices whose join already failed (a sibling slice errored, or shutdown
  // interrupted their submission) must neither execute nor bill.
  std::erase_if(batch.requests, [](const Request& r) {
    std::lock_guard<std::mutex> lock(r.join->mutex);
    return r.join->failed;
  });
  if (batch.requests.empty()) return;
  const Clock::time_point dispatch_time = Clock::now();

  // Every request in the batch is the same (model, layer range) — see
  // serve::compatible — so the analytic slice report is computed once and
  // fanned to all of them; its energy is split across the coalesced
  // requesters (the hardware ran the slice once on their shared behalf).
  Request& head = batch.requests.front();
  const nn::ModelReport part =
      shard.runner->run_slice(*head.model, head.layer_begin, head.layer_count);
  const double share =
      1.0 / static_cast<double>(batch.requests.size());

  {
    std::lock_guard<std::mutex> lock(shard_stats_mutex_);
    shard.stats.batches += 1;
    shard.stats.requests += static_cast<std::int64_t>(batch.requests.size());
    shard.stats.busy_time_ps += part.arrayflex_time_ps;
    shard.stats.energy_pj += part.arrayflex_energy_pj;
    // Per-layer mode choices leave the array outside any single GEMM mode;
    // the next GEMM batch reconfigures from scratch.
    shard.stats.current_k = 0;
    dispatcher_->set_shard_mode(shard.index, 0);
  }

  for (Request& r : batch.requests) {
    const double queue_ms = ms_between(r.enqueue_time, dispatch_time);
    if (control_enabled_) wait_window_.sample(queue_ms);  // see GEMM path
    std::shared_ptr<InferJoin> join = r.join;
    nn::ModelReport assembled;
    double energy_pj = 0.0;
    double sim_time_ps = 0.0;
    bool last = false;
    {
      std::lock_guard<std::mutex> lock(join->mutex);
      if (join->failed) continue;  // a sibling slice already errored out
      join->parts[r.slice_index] = part;
      join->energy_pj += part.arrayflex_energy_pj * share;
      join->sim_time_ps += part.arrayflex_time_ps * share;
      last = (--join->remaining == 0);
      if (last) {
        // Assemble exactly the way InferenceRunner::run aggregates — layer
        // order first, then one sequential totals pass — so the merged
        // report is bit-identical to an unsharded run.
        assembled.model_name = join->model_name;
        for (nn::ModelReport& p : join->parts) {
          for (nn::LayerReport& lr : p.layers) {
            assembled.layers.push_back(std::move(lr));
          }
        }
        for (const nn::LayerReport& lr : assembled.layers) {
          assembled.arrayflex_time_ps += lr.arrayflex.time_ps;
          assembled.conventional_time_ps += lr.conventional.time_ps;
          assembled.arrayflex_energy_pj += lr.arrayflex_power.energy_pj;
          assembled.conventional_energy_pj += lr.conventional_power.energy_pj;
          assembled.arrayflex_dram_bytes += lr.dram_bytes;
          assembled.arrayflex_stall_cycles += lr.stall_cycles;
          assembled.spad_peak_bytes =
              std::max(assembled.spad_peak_bytes, lr.spad_peak_bytes);
        }
        energy_pj = join->energy_pj;
        sim_time_ps = join->sim_time_ps;
      }
    }
    if (last) {
      InferenceResult result;
      result.num_slices = static_cast<int>(join->parts.size());
      result.latency_ms = ms_between(join->enqueue_time, Clock::now());
      tenants_.record(join->tenant, /*is_inference=*/true, result.latency_ms,
                      queue_ms, energy_pj, sim_time_ps,
                      r.model->total_macs());
      completed_.fetch_add(1);
      result.report = std::move(assembled);
      join->promise.set_value(std::move(result));
    }
  }
}

ServerStats Server::stats() const {
  ServerStats out;
  out.submitted = submitted_.load();
  out.completed = completed_.load();
  out.dispatcher = dispatcher_->name();
  out.steals = dispatcher_->steals();
  out.scale_ups = scale_ups_.load();
  out.scale_downs = scale_downs_.load();
  out.overload_policy = options_.overload_policy;
  out.overloaded = overloaded_.load();
  out.rejected = rejected_.load();
  out.expired = expired_.load();
  out.engine_faults = engine_faults_.load();
  out.retries = retries_.load();
  out.quarantines = quarantines_.load();
  out.degraded = degraded_.load();
  out.unserved = unserved_.load();
  out.backlog_macs = dispatcher_->approx_cost();
  out.backlog_bytes = dispatcher_->approx_bytes();
  out.promise_double_sets = promise_double_sets_.load();
  out.cost_cache_hits = cost_cache_->hits();
  out.cost_cache_misses = cost_cache_->misses();
  out.reconfig_policy = options_.reconfig_policy;
  {
    std::lock_guard<std::mutex> lock(reconfig_mutex_);
    out.reconfig_stream_switches = reconfig_.switches;
    out.reconfig_holds = reconfig_.holds;
  }
  {
    std::lock_guard<std::mutex> lock(shard_stats_mutex_);
    // live_shards_ is read under the same lock publish_live_set writes it
    // with the flags, so the snapshot's live-flag count always equals
    // live_shards (the invariant publish_live_set documents).
    out.live_shards = live_shards_.load();
    out.shards.reserve(shards_.size());
    for (const auto& shard : shards_) out.shards.push_back(shard->stats);
  }
  out.tenants = tenants_.snapshot();
  return out;
}

}  // namespace af::serve
