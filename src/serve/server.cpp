#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <tuple>
#include <utility>

#include "nn/runner.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace af::serve {
namespace {

double ms_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

std::int64_t slice_macs(const nn::Model& model, std::size_t first,
                        std::size_t count) {
  std::int64_t macs = 0;
  for (std::size_t i = first; i < first + count; ++i) {
    macs += model.layers[i].macs();
  }
  return macs;
}

}  // namespace

int AutoscalePolicy::decide(int live, double depth_per_shard,
                            double wait_p99_ms) {
  const bool pressure = depth_per_shard >= grow_depth_per_shard ||
                        wait_p99_ms >= grow_wait_p99_ms;
  const bool idle = depth_per_shard <= shrink_depth_per_shard &&
                    wait_p99_ms <= shrink_wait_p99_ms;
  if (pressure) {
    shrink_streak = 0;
    if (++grow_streak >= grow_patience) {
      grow_streak = 0;
      if (live < max_shards) return live + 1;
    }
  } else if (idle) {
    grow_streak = 0;
    if (++shrink_streak >= shrink_patience) {
      shrink_streak = 0;
      if (live > min_shards) return live - 1;
    }
  } else {
    // Dead zone between the bands: both streaks reset, nothing moves.
    grow_streak = 0;
    shrink_streak = 0;
  }
  return live;
}

std::int64_t ServerStats::audit_runs() const {
  std::int64_t n = 0;
  for (const ShardSnapshot& s : shards) n += s.audit_runs;
  return n;
}

std::int64_t ServerStats::audit_mismatches() const {
  std::int64_t n = 0;
  for (const ShardSnapshot& s : shards) n += s.audit_mismatches;
  return n;
}

// One execution engine plus everything stateful around it.  The engine
// owns the clock/power wiring (per-shard mode state lives in `stats`,
// written only under the server's shard_stats_mutex_ so stats() can
// snapshot concurrently); `audit_engine` is the cycle-accurate replayer
// for sampled cross-checks, null when auditing is off.  Engines are
// ACQUIRED and RELEASED by the autoscaler (Server::acquire_shard /
// release_shard) — a slot above the live prefix holds no engine at all.
struct Server::Shard {
  int index;
  std::shared_ptr<engine::Engine> engine;
  std::shared_ptr<engine::Engine> audit_engine;
  std::unique_ptr<nn::InferenceRunner> runner;
  // Per-request fidelity overrides, built lazily and cached.  Touched only
  // by this shard's worker thread.
  std::map<std::string, std::shared_ptr<engine::Engine>> override_engines;
  // Deterministic audit sampling: += audit_fraction per fused run; every
  // crossing of 1.0 replays that run on the audit engine.
  double audit_credit = 0.0;
  ShardSnapshot stats;
  std::thread worker;

  explicit Shard(int idx) : index(idx) { stats.shard = idx; }
};

Server::Server(const arch::ArrayConfig& shard_config, ServerOptions options)
    : shard_config_(shard_config),
      options_(options),
      tenants_(options.latency_hist_max_ms) {
  AF_CHECK(options_.num_shards >= 1, "server needs at least one shard");
  AF_CHECK(options_.max_batch >= 1, "max_batch must be at least 1");
  AF_CHECK(options_.audit_fraction >= 0.0 && options_.audit_fraction <= 1.0,
           "audit_fraction must be in [0, 1]");
  min_shards_ =
      options_.min_shards > 0 ? options_.min_shards : options_.num_shards;
  max_shards_ =
      options_.max_shards > 0 ? options_.max_shards : options_.num_shards;
  autoscale_enabled_ = min_shards_ < max_shards_;
  AF_CHECK(min_shards_ >= 1 && min_shards_ <= options_.num_shards &&
               options_.num_shards <= max_shards_,
           "shard bounds must satisfy 1 <= min_shards <= num_shards <= "
           "max_shards, got min="
               << min_shards_ << " num=" << options_.num_shards
               << " max=" << max_shards_);
  AF_CHECK(options_.autoscale_interval_ms > 0.0,
           "autoscale_interval_ms must be positive");
  AF_CHECK(options_.grow_patience >= 1 && options_.shrink_patience >= 1,
           "autoscale patience must be at least one tick");
  // The shards' engines run serially on their own; cross-tile parallelism
  // comes from the one shared pool below (never a pool per shard — that is
  // the threads² oversubscription this layer exists to avoid).
  shard_config_.sim.num_threads = 1;
  shard_config_.validate();
  const int sim_threads =
      util::ThreadPool::resolve_num_threads(options_.sim_threads);
  if (sim_threads > 1) {
    sim_pool_ = std::make_unique<util::ThreadPool>(sim_threads);
  }
  if (options_.reconfig_cycles < 0) {
    options_.reconfig_cycles = shard_config_.rows + shard_config_.cols;
  }

  // One builder wires every engine identically: shard config, the paper's
  // calibrated clock, the server's energy params, the one shared pool.
  // Scale-ups and per-request overrides acquire through it too.
  engine_builder_.config(shard_config_)
      .energy(options_.energy)
      .shared_pool(sim_pool_.get());
  admission_engine_ =
      engine::EngineBuilder().config(shard_config_).energy(options_.energy)
          .build("analytic");

  DispatcherOptions dispatch;
  dispatch.queue_capacity = options_.queue_capacity;
  dispatch.drr_quantum = options_.drr_quantum;
  dispatch.max_batch = options_.max_batch;
  dispatch.max_shards = max_shards_;
  dispatch.live_shards = options_.num_shards;
  dispatch.can_scale = autoscale_enabled_;
  dispatcher_ = make_dispatcher(options_.dispatcher, dispatch);

  policy_.min_shards = min_shards_;
  policy_.max_shards = max_shards_;
  policy_.grow_depth_per_shard = options_.grow_depth_per_shard;
  policy_.grow_wait_p99_ms = options_.grow_wait_p99_ms;
  policy_.shrink_depth_per_shard = options_.shrink_depth_per_shard;
  policy_.shrink_wait_p99_ms = options_.shrink_wait_p99_ms;
  policy_.grow_patience = options_.grow_patience;
  policy_.shrink_patience = options_.shrink_patience;

  shards_.reserve(static_cast<std::size_t>(max_shards_));
  for (int i = 0; i < max_shards_; ++i) {
    shards_.push_back(std::make_unique<Shard>(i));
  }
  for (int i = 0; i < options_.num_shards; ++i) {
    acquire_shard(*shards_[static_cast<std::size_t>(i)]);
  }
  publish_live_set(options_.num_shards);
  for (int i = 0; i < options_.num_shards; ++i) {
    start_worker(*shards_[static_cast<std::size_t>(i)]);
  }
  if (autoscale_enabled_) {
    autoscaler_ = std::thread([this] { autoscale_loop(); });
  }
}

Server::~Server() { shutdown(); }

void Server::shutdown() {
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mutex_);
  shut_down_.store(true);
  {
    std::lock_guard<std::mutex> lock(scale_mutex_);
  }
  scale_cv_.notify_all();
  if (autoscaler_.joinable()) autoscaler_.join();
  dispatcher_->close();
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
}

void Server::acquire_shard(Shard& shard) {
  shard.engine = engine_builder_.build(options_.backend);
  if (options_.audit_fraction > 0.0 && !shard.engine->measures()) {
    shard.audit_engine = engine_builder_.build("cycle");
  }
  shard.runner = std::make_unique<nn::InferenceRunner>(shard.engine);
  std::lock_guard<std::mutex> lock(shard_stats_mutex_);
  shard.stats.backend = shard.engine->name();
  shard.stats.current_k = 0;  // a (re)acquired array configures from scratch
}

void Server::release_shard(Shard& shard) {
  shard.runner.reset();
  shard.override_engines.clear();
  shard.audit_engine.reset();
  shard.engine.reset();
  std::lock_guard<std::mutex> lock(shard_stats_mutex_);
  shard.stats.current_k = 0;
}

void Server::publish_live_set(int live) {
  // ShardSnapshot::live and live_shards_ change together under the stats
  // mutex (which stats() holds for its whole snapshot), so no snapshot can
  // ever show a live-flag count disagreeing with live_shards — and once a
  // lock-free num_shards() read returns the new count, the flags are
  // already in place.
  std::lock_guard<std::mutex> lock(shard_stats_mutex_);
  for (int s = 0; s < max_shards_; ++s) {
    shards_[static_cast<std::size_t>(s)]->stats.live = s < live;
  }
  live_shards_.store(live);
}

void Server::start_worker(Shard& shard) {
  // A retired slot's thread has exited but may still hold a joinable
  // handle; reclaim it before re-spawning.
  if (shard.worker.joinable()) shard.worker.join();
  Shard* s = &shard;
  shard.worker = std::thread([this, s] { shard_loop(*s); });
}

void Server::autoscale_loop() {
  std::unique_lock<std::mutex> lock(scale_mutex_);
  const auto interval = std::chrono::duration<double, std::milli>(
      options_.autoscale_interval_ms);
  while (!scale_cv_.wait_for(lock, interval,
                             [this] { return shut_down_.load(); })) {
    const int live = live_shards_.load();
    const double depth = static_cast<double>(dispatcher_->depth());
    const LatencyWindow::Stats waits = wait_window_.drain();
    const int want =
        policy_.decide(live, depth / static_cast<double>(live), waits.p99_ms);
    if (want > live) {
      grow_to(want);
    } else if (want < live) {
      shrink_to(want);
    }
  }
}

void Server::grow_to(int want) {
  const int live = live_shards_.load();
  for (int s = live; s < want; ++s) {
    acquire_shard(*shards_[static_cast<std::size_t>(s)]);
  }
  // Publish the new live set before the workers start, so their first
  // next_batch sees themselves live (and routing starts using them).
  publish_live_set(want);
  dispatcher_->set_live_shards(want);
  for (int s = live; s < want; ++s) {
    start_worker(*shards_[static_cast<std::size_t>(s)]);
  }
  scale_ups_.fetch_add(want - live);
}

void Server::shrink_to(int want) {
  const int old = live_shards_.load();
  publish_live_set(want);
  // Drains the retired deques back into the steal pool BEFORE the workers
  // are joined: their in-flight batches finish normally, queued work moves
  // to surviving shards, nothing is dropped or double-served.
  dispatcher_->set_live_shards(want);
  for (int s = want; s < old; ++s) {
    Shard& shard = *shards_[static_cast<std::size_t>(s)];
    if (shard.worker.joinable()) shard.worker.join();
    release_shard(shard);
  }
  scale_downs_.fetch_add(old - want);
}

std::future<GemmResult> Server::submit_gemm(
    const std::string& tenant, gemm::Mat32 a,
    std::shared_ptr<const gemm::Mat32> b, int k, bool want_output,
    const std::string& backend) {
  AF_CHECK(!shut_down_.load(), "submit_gemm on a shut-down server");
  AF_CHECK(b != nullptr, "weight matrix required");
  AF_CHECK(a.rows() > 0, "activation matrix must be non-empty");
  AF_CHECK(a.cols() == b->rows(), "GEMM inner-dimension mismatch: "
                                      << a.cols() << " vs " << b->rows());
  // is_registered is allocation-free and the message (with its registry
  // join) is only built on failure — this runs on every overridden submit.
  if (!backend.empty()) {
    AF_CHECK(engine::is_registered(backend),
             "unknown per-request backend \""
                 << backend << "\" (registered: "
                 << engine::registered_backend_list()
                 << ")");
  }
  Request r;
  r.kind = RequestKind::kGemm;
  r.id = next_id_.fetch_add(1);
  r.tenant = tenant;
  r.backend = backend;
  r.shape = gemm::GemmShape{b->cols(), b->rows(), a.rows()};
  r.drr_cost =
      std::max<std::int64_t>(1, r.shape.t * r.shape.n * r.shape.m);
  if (k != 0) {
    AF_CHECK(shard_config_.supports(k), "mode k=" << k << " not supported");
    r.decided_k = k;
  } else {
    r.decided_k = admission_engine_->optimizer().best_mode(r.shape).k;
  }
  r.a = std::move(a);
  r.b = std::move(b);
  r.want_output = want_output;
  r.enqueue_time = Clock::now();
  std::future<GemmResult> future = r.gemm_promise.get_future();
  // Counted before the push: a fast worker may complete the request before
  // this thread runs another instruction, and stats() must never show
  // completed > submitted.
  submitted_.fetch_add(1);
  if (!dispatcher_->submit(std::move(r))) {
    submitted_.fetch_sub(1);
    AF_CHECK(false, "server shut down while enqueueing");
  }
  return future;
}

std::future<InferenceResult> Server::submit_inference(
    const std::string& tenant, std::shared_ptr<const nn::Model> model) {
  AF_CHECK(!shut_down_.load(), "submit_inference on a shut-down server");
  AF_CHECK(model != nullptr && !model->layers.empty(),
           "inference needs a non-empty model");
  const std::size_t layers = model->layers.size();
  const std::size_t slices = std::min<std::size_t>(
      static_cast<std::size_t>(std::max(1, live_shards_.load())), layers);

  auto join = std::make_shared<InferJoin>();
  join->parts.resize(slices);
  join->remaining = slices;
  join->enqueue_time = Clock::now();
  join->tenant = tenant;
  join->model_name = model->name;
  std::future<InferenceResult> future = join->promise.get_future();

  // Contiguous slices, sizes as even as possible (the first `layers %
  // slices` slices take one extra layer).
  const std::size_t base = layers / slices;
  const std::size_t extra = layers % slices;
  std::size_t begin = 0;
  submitted_.fetch_add(1);
  for (std::size_t i = 0; i < slices; ++i) {
    const std::size_t count = base + (i < extra ? 1 : 0);
    Request r;
    r.kind = RequestKind::kInferSlice;
    r.id = next_id_.fetch_add(1);
    r.tenant = tenant;
    r.enqueue_time = join->enqueue_time;
    r.model = model;
    r.layer_begin = begin;
    r.layer_count = count;
    r.slice_index = i;
    r.join = join;
    r.drr_cost = std::max<std::int64_t>(1, slice_macs(*model, begin, count));
    begin += count;
    if (!dispatcher_->submit(std::move(r))) {
      // Shutdown raced the enqueue: slices pushed so far are already in
      // workers' hands.  Marking the join failed turns them into no-ops
      // (execute_infer_batch skips failed joins), so a rejected submission
      // never half-completes or half-bills.
      {
        std::lock_guard<std::mutex> lock(join->mutex);
        join->failed = true;
      }
      submitted_.fetch_sub(1);
      AF_CHECK(false, "server shut down while enqueueing");
    }
  }
  return future;
}

void Server::shard_loop(Shard& shard) {
  while (auto batch = dispatcher_->next_batch(shard.index)) {
    try {
      if (batch->kind == RequestKind::kGemm) {
        execute_gemm_batch(shard, *batch);
      } else {
        execute_infer_batch(shard, *batch);
      }
    } catch (...) {
      // A failing batch must not take the whole server down (a worker
      // thread's escaped exception is std::terminate): deliver the error
      // to the affected clients and keep serving everyone else.
      fail_batch(*batch, std::current_exception());
    }
  }
}

void Server::fail_batch(Batch& batch, std::exception_ptr error) {
  for (Request& r : batch.requests) {
    if (r.kind == RequestKind::kGemm) {
      // Counted before the promise resolves so a woken client never sees
      // completed lagging; rolled back if the promise was already settled.
      completed_.fetch_add(1);
      try {
        r.gemm_promise.set_exception(error);
      } catch (const std::future_error&) {
        completed_.fetch_sub(1);  // fulfilled before the failure
      }
    } else if (r.join != nullptr) {
      {
        std::lock_guard<std::mutex> lock(r.join->mutex);
        if (r.join->failed) continue;  // another slice already reported
        r.join->failed = true;
      }
      completed_.fetch_add(1);
      try {
        r.join->promise.set_exception(error);
      } catch (const std::future_error&) {
        completed_.fetch_sub(1);
      }
    }
  }
}

void Server::prepare_mode(Shard& shard, int k) {
  std::lock_guard<std::mutex> lock(shard_stats_mutex_);
  if (shard.stats.current_k == k) return;
  if (shard.stats.current_k != 0) {
    // A genuine mode switch: drain the pipeline at the new mode's clock,
    // burning leakage but doing no work.  (current_k == 0 — fresh shard or
    // post-inference — configures without a drain to bill.)
    shard.stats.mode_switches += 1;
    const double time_ps = static_cast<double>(options_.reconfig_cycles) *
                           shard.engine->clock().period_ps(k);
    const double leak_mw = options_.energy.leak_mw_per_pe *
                           static_cast<double>(shard_config_.num_pes());
    shard.stats.reconfig_time_ps += time_ps;
    shard.stats.reconfig_energy_pj += leak_mw * time_ps * 1e-3;
  }
  shard.stats.current_k = k;
}

engine::Engine* Server::engine_for(Shard& shard, const Batch& batch) {
  const std::string& override_name = batch.requests.front().backend;
  if (override_name.empty() || override_name == shard.engine->name()) {
    return shard.engine.get();
  }
  auto it = shard.override_engines.find(override_name);
  if (it == shard.override_engines.end()) {
    it = shard.override_engines
             .emplace(override_name, engine_builder_.build(override_name))
             .first;
  }
  return it->second.get();
}

void Server::execute_gemm_batch(Shard& shard, Batch& batch) {
  const int k = batch.k;
  const Clock::time_point dispatch_time = Clock::now();
  prepare_mode(shard, k);
  // All batch members share one backend override (serve::compatible), so
  // the whole batch executes on one engine.
  engine::Engine* engine = engine_for(shard, batch);

  // Fuse requests naming the same weight matrix and shape: their activation
  // rows stack along T into one hardware run, so the weight preload (the R
  // cycles per tile) is paid once per fused run instead of once per
  // request.  Order of first appearance is preserved.
  using FuseKey = std::tuple<const gemm::Mat32*, std::int64_t, std::int64_t>;
  std::vector<std::pair<FuseKey, std::vector<std::size_t>>> groups;
  for (std::size_t i = 0; i < batch.requests.size(); ++i) {
    const Request& r = batch.requests[i];
    const FuseKey key{r.b.get(), r.shape.n, r.shape.m};
    auto it = std::find_if(groups.begin(), groups.end(),
                           [&](const auto& g) { return g.first == key; });
    if (it == groups.end()) {
      groups.push_back({key, {i}});
    } else {
      it->second.push_back(i);
    }
  }

  const std::int64_t batch_requests =
      static_cast<std::int64_t>(batch.requests.size());
  double batch_time_ps = 0.0;
  double batch_energy_pj = 0.0;
  std::int64_t batch_audits = 0;
  std::int64_t batch_audit_mismatches = 0;
  std::vector<GemmResult> results(batch.requests.size());

  for (auto& [key, members] : groups) {
    const Request& head = batch.requests[members.front()];
    std::int64_t total_t = 0;
    bool want_output = false;
    for (const std::size_t i : members) {
      total_t += batch.requests[i].shape.t;
      want_output = want_output || batch.requests[i].want_output;
    }
    gemm::Mat32 stacked(total_t, head.shape.n);
    std::int64_t row = 0;
    for (const std::size_t i : members) {
      const gemm::Mat32& a = batch.requests[i].a;
      for (std::int64_t t = 0; t < a.rows(); ++t, ++row) {
        for (std::int64_t c = 0; c < a.cols(); ++c) {
          stacked.at(row, c) = a.at(t, c);
        }
      }
    }

    engine::GemmRequest run_request;
    run_request.a = &stacked;
    run_request.b = head.b.get();
    run_request.k = k;
    run_request.want_output = want_output;
    const engine::RunResult run = engine->run_gemm(run_request);
    batch_time_ps += run.cost.time_ps;
    batch_energy_pj += run.cost.energy_pj;

    // Deterministic sampled audit: replay the identical fused run on the
    // cycle-accurate engine and insist on exact agreement — outputs bit
    // for bit, cycles / counters / energy number for number.  A measuring
    // override IS ground truth, so it audits nothing.
    bool audited = false;
    if (shard.audit_engine != nullptr && !engine->measures()) {
      shard.audit_credit += options_.audit_fraction;
      if (shard.audit_credit >= 1.0) {
        shard.audit_credit -= 1.0;
        audited = true;
        engine::GemmRequest replay_request = run_request;
        replay_request.want_output = run.out.has_value();
        const engine::RunResult replay =
            shard.audit_engine->run_gemm(replay_request);
        bool agrees = engine::exactly_equal(replay.cost, run.cost);
        if (agrees && run.out.has_value() && replay.out.has_value()) {
          agrees = (*replay.out == *run.out);
        }
        ++batch_audits;
        if (!agrees) ++batch_audit_mismatches;
      }
    }

    // Unstack the fused product (when computed).  Energy is attributed by
    // each request's share of the fused rows; completion (and thus
    // simulated service time) is the whole fused run for every member.
    row = 0;
    for (const std::size_t i : members) {
      const Request& r = batch.requests[i];
      GemmResult& result = results[i];
      if (run.out.has_value() && r.want_output) {
        result.out = gemm::Mat64(r.shape.t, r.shape.m);
        for (std::int64_t t = 0; t < r.shape.t; ++t, ++row) {
          for (std::int64_t c = 0; c < r.shape.m; ++c) {
            result.out.at(t, c) = run.out->at(row, c);
          }
        }
      } else if (run.out.has_value()) {
        // A cost-only rider fused with output-wanting requests: its rows
        // exist in the fused product but it declined them — skip the copy
        // and keep GemmResult::out empty, as submit_gemm documents.
        row += r.shape.t;
      }
      result.k = k;
      result.shard = shard.index;
      result.batch_requests = batch_requests;
      result.fused_rows = total_t;
      result.cycles = run.cost.cycles;
      result.time_ps = run.cost.time_ps;
      result.energy_pj = run.cost.energy_pj * static_cast<double>(r.shape.t) /
                         static_cast<double>(total_t);
      result.queue_ms = ms_between(r.enqueue_time, dispatch_time);
      result.backend = engine->name();
      result.measured = run.measured;
      result.audited = audited;
    }
  }

  {
    // All accounting lands before any client future resolves, so a client
    // that waits on its result always sees the books already balanced.
    std::lock_guard<std::mutex> lock(shard_stats_mutex_);
    shard.stats.batches += 1;
    shard.stats.requests += batch_requests;
    shard.stats.fused_runs += static_cast<std::int64_t>(groups.size());
    shard.stats.audit_runs += batch_audits;
    shard.stats.audit_mismatches += batch_audit_mismatches;
    shard.stats.busy_time_ps += batch_time_ps;
    shard.stats.energy_pj += batch_energy_pj;
    shard.stats.busy_ps_by_mode[k] += batch_time_ps;
  }

  for (std::size_t i = 0; i < batch.requests.size(); ++i) {
    Request& r = batch.requests[i];
    GemmResult& result = results[i];
    result.latency_ms = ms_between(r.enqueue_time, Clock::now());
    // The wait window's only consumer is the autoscaler; with a fixed pool
    // nothing drains it, so sampling would grow it without bound (and cost
    // a shared mutex per request for nothing).
    if (autoscale_enabled_) wait_window_.sample(result.queue_ms);
    // Tenant books use the same row-share as energy, so summing tenants'
    // sim_time reproduces the shards' busy time; the full fused-run time
    // stays visible in GemmResult::time_ps (the request's service time).
    const double time_share =
        result.time_ps * static_cast<double>(r.shape.t) /
        static_cast<double>(result.fused_rows);
    tenants_.record(r.tenant, /*is_inference=*/false, result.latency_ms,
                    result.queue_ms, result.energy_pj, time_share,
                    r.shape.t * r.shape.n * r.shape.m);
    completed_.fetch_add(1);
    r.gemm_promise.set_value(std::move(result));
  }
}

void Server::execute_infer_batch(Shard& shard, Batch& batch) {
  // Slices whose join already failed (a sibling slice errored, or shutdown
  // interrupted their submission) must neither execute nor bill.
  std::erase_if(batch.requests, [](const Request& r) {
    std::lock_guard<std::mutex> lock(r.join->mutex);
    return r.join->failed;
  });
  if (batch.requests.empty()) return;
  const Clock::time_point dispatch_time = Clock::now();

  // Every request in the batch is the same (model, layer range) — see
  // serve::compatible — so the analytic slice report is computed once and
  // fanned to all of them; its energy is split across the coalesced
  // requesters (the hardware ran the slice once on their shared behalf).
  Request& head = batch.requests.front();
  const nn::ModelReport part =
      shard.runner->run_slice(*head.model, head.layer_begin, head.layer_count);
  const double share =
      1.0 / static_cast<double>(batch.requests.size());

  {
    std::lock_guard<std::mutex> lock(shard_stats_mutex_);
    shard.stats.batches += 1;
    shard.stats.requests += static_cast<std::int64_t>(batch.requests.size());
    shard.stats.busy_time_ps += part.arrayflex_time_ps;
    shard.stats.energy_pj += part.arrayflex_energy_pj;
    // Per-layer mode choices leave the array outside any single GEMM mode;
    // the next GEMM batch reconfigures from scratch.
    shard.stats.current_k = 0;
  }

  for (Request& r : batch.requests) {
    const double queue_ms = ms_between(r.enqueue_time, dispatch_time);
    if (autoscale_enabled_) wait_window_.sample(queue_ms);  // see GEMM path
    std::shared_ptr<InferJoin> join = r.join;
    nn::ModelReport assembled;
    double energy_pj = 0.0;
    double sim_time_ps = 0.0;
    bool last = false;
    {
      std::lock_guard<std::mutex> lock(join->mutex);
      if (join->failed) continue;  // a sibling slice already errored out
      join->parts[r.slice_index] = part;
      join->energy_pj += part.arrayflex_energy_pj * share;
      join->sim_time_ps += part.arrayflex_time_ps * share;
      last = (--join->remaining == 0);
      if (last) {
        // Assemble exactly the way InferenceRunner::run aggregates — layer
        // order first, then one sequential totals pass — so the merged
        // report is bit-identical to an unsharded run.
        assembled.model_name = join->model_name;
        for (nn::ModelReport& p : join->parts) {
          for (nn::LayerReport& lr : p.layers) {
            assembled.layers.push_back(std::move(lr));
          }
        }
        for (const nn::LayerReport& lr : assembled.layers) {
          assembled.arrayflex_time_ps += lr.arrayflex.time_ps;
          assembled.conventional_time_ps += lr.conventional.time_ps;
          assembled.arrayflex_energy_pj += lr.arrayflex_power.energy_pj;
          assembled.conventional_energy_pj += lr.conventional_power.energy_pj;
        }
        energy_pj = join->energy_pj;
        sim_time_ps = join->sim_time_ps;
      }
    }
    if (last) {
      InferenceResult result;
      result.num_slices = static_cast<int>(join->parts.size());
      result.latency_ms = ms_between(join->enqueue_time, Clock::now());
      tenants_.record(join->tenant, /*is_inference=*/true, result.latency_ms,
                      queue_ms, energy_pj, sim_time_ps,
                      r.model->total_macs());
      completed_.fetch_add(1);
      result.report = std::move(assembled);
      join->promise.set_value(std::move(result));
    }
  }
}

ServerStats Server::stats() const {
  ServerStats out;
  out.submitted = submitted_.load();
  out.completed = completed_.load();
  out.dispatcher = dispatcher_->name();
  out.steals = dispatcher_->steals();
  out.scale_ups = scale_ups_.load();
  out.scale_downs = scale_downs_.load();
  {
    std::lock_guard<std::mutex> lock(shard_stats_mutex_);
    // live_shards_ is read under the same lock publish_live_set writes it
    // with the flags, so the snapshot's live-flag count always equals
    // live_shards (the invariant publish_live_set documents).
    out.live_shards = live_shards_.load();
    out.shards.reserve(shards_.size());
    for (const auto& shard : shards_) out.shards.push_back(shard->stats);
  }
  out.tenants = tenants_.snapshot();
  return out;
}

}  // namespace af::serve
