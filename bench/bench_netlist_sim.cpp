// PERF — gate-level simulation engine throughput tracker.
//
// Measures toggle-counted gate-evals/s and toggles/s on two representative
// netlists (the 16x16 Wallace multiplier and the k=4 collapsed column) for
// three engine configurations:
//
//   reference   — the seed algorithm: full topological order, scalar;
//   event1      — compiled event-driven wavefront, one active lane;
//   event64     — event-driven + 64-lane bit-parallel (64 stimulus vectors
//                 per eval).
//
// "Gate-evals/s" prices every applied stimulus vector at one evaluation of
// the whole netlist (the work the reference engine actually performs), so
// the event-driven/bit-parallel rates are directly comparable speedups over
// the seed.  Results go to BENCH_netlist_sim.json so the gate-level
// engine's perf trajectory is tracked across PRs, alongside
// BENCH_sim_throughput.json for the architecture simulator.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "hw/builders/multiplier.h"
#include "hw/builders/pe_datapath.h"
#include "hw/compiled_netlist.h"
#include "hw/netlist.h"
#include "hw/netlist_sim.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/strings.h"

namespace {

using namespace af;
using hw::NetlistSim;
using hw::SimEngine;

constexpr int kLanes = NetlistSim::kLanes;

struct Result {
  std::string design;
  std::string engine;
  int cells = 0;
  std::int64_t vectors = 0;
  double seconds = 0.0;
  std::uint64_t toggles = 0;
  double gate_evals_per_s() const {
    return seconds > 0
               ? static_cast<double>(vectors) * cells / seconds
               : 0.0;
  }
  double toggles_per_s() const {
    return seconds > 0 ? static_cast<double>(toggles) / seconds : 0.0;
  }
};

double now_to(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// --- 16x16 multiplier: combinational, driven through eval() ---------------

hw::Netlist build_mul16() {
  hw::Netlist nl;
  const hw::Bus a = nl.new_bus(16);
  const hw::Bus b = nl.new_bus(16);
  nl.bind_input("a", a);
  nl.bind_input("b", b);
  nl.bind_output("p", hw::build_wallace_multiplier(nl, a, b));
  return nl;
}

Result run_mul16(const hw::CompiledNetlist& cn, SimEngine engine, int lanes,
                 std::int64_t vectors, std::uint64_t* checksum) {
  NetlistSim sim(cn, engine);
  if (lanes > 1) sim.set_active_lanes(lanes);
  Rng rng(11);
  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t sink = 0;
  if (lanes == 1) {
    for (std::int64_t v = 0; v < vectors; ++v) {
      sim.set_input_u64("a", rng.next_u64() & 0xFFFF);
      sim.set_input_u64("b", rng.next_u64() & 0xFFFF);
      sim.eval();
      sink += sim.get_u64("p");
    }
  } else {
    std::vector<std::uint64_t> xs(static_cast<std::size_t>(lanes));
    std::vector<std::uint64_t> ys(static_cast<std::size_t>(lanes));
    for (std::int64_t v = 0; v < vectors; v += lanes) {
      for (auto& x : xs) x = rng.next_u64() & 0xFFFF;
      for (auto& y : ys) y = rng.next_u64() & 0xFFFF;
      sim.set_input_lanes("a", xs);
      sim.set_input_lanes("b", ys);
      sim.eval();
      sink += sim.get_u64_lane("p", static_cast<int>(v / lanes) % lanes);
    }
  }
  Result r;
  r.design = "mul16";
  r.cells = cn.num_cells();
  r.vectors = vectors;
  r.seconds = now_to(t0);
  r.toggles = sim.total_toggles();
  *checksum += sink;
  return r;
}

// --- collapsed column k=4: sequential, driven through step() --------------

hw::Netlist build_column() {
  hw::Netlist nl;
  hw::build_collapsed_column(nl, /*k=*/4, /*use_csa=*/true, {8, 16});
  return nl;
}

Result run_column(const hw::CompiledNetlist& cn, SimEngine engine, int lanes,
                  std::int64_t vectors, std::uint64_t* checksum) {
  NetlistSim sim(cn, engine);
  if (lanes > 1) sim.set_active_lanes(lanes);
  Rng rng(13);
  // Stationary weights, streaming activations (the array's steady state).
  for (int i = 0; i < 4; ++i) {
    sim.set_input_u64(format("w_in%d", i), rng.next_u64() & 0xFF);
    sim.set_input_u64(format("a_in%d", i), 0);
  }
  sim.set_input_u64("s_in", 0);
  sim.set_input_u64("c_in", 0);
  sim.step();
  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t sink = 0;
  if (lanes == 1) {
    for (std::int64_t v = 0; v < vectors; ++v) {
      for (int i = 0; i < 4; ++i) {
        sim.set_input_u64(format("a_in%d", i), rng.next_u64() & 0xFF);
      }
      sim.step();
      sink += sim.get_u64("psum_out");
    }
  } else {
    std::vector<std::uint64_t> xs(static_cast<std::size_t>(lanes));
    for (std::int64_t v = 0; v < vectors; v += lanes) {
      for (int i = 0; i < 4; ++i) {
        for (auto& x : xs) x = rng.next_u64() & 0xFF;
        sim.set_input_lanes(format("a_in%d", i), xs);
      }
      sim.step();
      sink += sim.get_u64_lane("psum_out", static_cast<int>(v / lanes) % lanes);
    }
  }
  Result r;
  r.design = "column_k4";
  r.cells = cn.num_cells();
  r.vectors = vectors;
  r.seconds = now_to(t0);
  r.toggles = sim.total_toggles();
  *checksum += sink;
  return r;
}

void write_json(const std::vector<Result>& results, double speedup_mul16,
                double speedup_column, const std::string& path) {
  std::ostringstream json;
  json << "{\n  \"bench\": \"netlist_sim\",\n"
       << "  \"unit\": \"gate-evals/s\",\n  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    json << "    {\"design\": \"" << r.design << "\", \"engine\": \""
         << r.engine << "\", \"cells\": " << r.cells
         << ", \"vectors\": " << r.vectors << ", \"seconds\": " << r.seconds
         << ", \"gate_evals_per_s\": " << r.gate_evals_per_s()
         << ", \"toggles\": " << r.toggles
         << ", \"toggles_per_s\": " << r.toggles_per_s() << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"speedup_event64_vs_reference\": {\"mul16\": "
       << speedup_mul16 << ", \"column_k4\": " << speedup_column << "}\n}\n";

  std::ofstream out(path);
  if (!out) {
    std::cerr << "note: could not write " << path << "\n";
    return;
  }
  out << json.str();
  std::cout << "wrote " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  // --quick shrinks the stimulus 16x: used by the sanitized CI job, where
  // instrumentation makes the full sweep needlessly slow.
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
  }
  const int shift = quick ? 4 : 0;

  // Equivalence spot-check before timing anything: the engines must agree.
  {
    const hw::Netlist nl = build_mul16();
    hw::CompiledNetlist cn(nl);
    NetlistSim ref(cn, SimEngine::kReferenceFullOrder);
    NetlistSim evt(cn, SimEngine::kEventDriven);
    Rng rng(5);
    for (int i = 0; i < 50; ++i) {
      const std::uint64_t a = rng.next_u64() & 0xFFFF;
      const std::uint64_t b = rng.next_u64() & 0xFFFF;
      ref.set_input_u64("a", a);
      evt.set_input_u64("a", a);
      ref.set_input_u64("b", b);
      evt.set_input_u64("b", b);
      ref.eval();
      evt.eval();
      AF_CHECK(ref.get_u64("p") == evt.get_u64("p") &&
                   ref.get_u64("p") == a * b,
               "engine mismatch on mul16");
    }
    AF_CHECK(ref.total_toggles() == evt.total_toggles(),
             "toggle mismatch on mul16");
  }

  std::vector<Result> results;
  std::uint64_t checksum = 0;

  {
    const hw::Netlist nl = build_mul16();
    hw::CompiledNetlist cn(nl);
    const std::int64_t vectors = 1 << (16 - shift);
    Result ref = run_mul16(cn, SimEngine::kReferenceFullOrder, 1, vectors,
                           &checksum);
    ref.engine = "reference";
    Result ev1 = run_mul16(cn, SimEngine::kEventDriven, 1, vectors, &checksum);
    ev1.engine = "event1";
    Result ev64 =
        run_mul16(cn, SimEngine::kEventDriven, kLanes, vectors, &checksum);
    ev64.engine = "event64";
    results.push_back(ref);
    results.push_back(ev1);
    results.push_back(ev64);
  }
  {
    const hw::Netlist nl = build_column();
    hw::CompiledNetlist cn(nl);
    const std::int64_t vectors = 1 << (15 - shift);
    Result ref = run_column(cn, SimEngine::kReferenceFullOrder, 1, vectors,
                            &checksum);
    ref.engine = "reference";
    Result ev1 = run_column(cn, SimEngine::kEventDriven, 1, vectors, &checksum);
    ev1.engine = "event1";
    Result ev64 =
        run_column(cn, SimEngine::kEventDriven, kLanes, vectors, &checksum);
    ev64.engine = "event64";
    results.push_back(ref);
    results.push_back(ev1);
    results.push_back(ev64);
  }

  std::printf("%-10s %-10s %8s %9s %10s %14s %14s\n", "design", "engine",
              "cells", "vectors", "seconds", "gate-evals/s", "toggles/s");
  for (const Result& r : results) {
    std::printf("%-10s %-10s %8d %9lld %10.4f %14.3e %14.3e\n",
                r.design.c_str(), r.engine.c_str(), r.cells,
                static_cast<long long>(r.vectors), r.seconds,
                r.gate_evals_per_s(), r.toggles_per_s());
  }
  const double speedup_mul16 =
      results[2].gate_evals_per_s() / results[0].gate_evals_per_s();
  const double speedup_column =
      results[5].gate_evals_per_s() / results[3].gate_evals_per_s();
  std::printf("event64 speedup vs reference: mul16 %.1fx, column_k4 %.1fx\n",
              speedup_mul16, speedup_column);
  (void)checksum;

  write_json(results, speedup_mul16, speedup_column,
             "BENCH_netlist_sim.json");
  return 0;
}
