// FIG9 — Average power for complete runs of the three CNNs on 128x128 and
// 256x256 arrays, with ArrayFlex's per-mode power shown separately (paper
// Fig. 9), plus the headline EDP comparison.
//
// Paper bands: savings of 13-15% (128x128) rising to 17-23% (256x256);
// combined energy-delay-product gain 1.4x-1.8x.  SRAM/peripheral power is
// out of scope in the paper and here.

#include <iostream>

#include "arch/clocking.h"
#include "arch/power_model.h"
#include "nn/models.h"
#include "nn/runner.h"
#include "sim/report.h"
#include "util/strings.h"
#include "util/table.h"

using namespace af;

int main() {
  const arch::CalibratedClockModel clock = arch::CalibratedClockModel::date23();
  std::cout << "Reproduces paper Fig. 9 (DATE 2023).\n\n";

  // Per-mode steady-state power — the separated bars of Fig. 9.
  std::cout << sim::banner("Steady-state power per pipeline mode");
  Table modes({"array", "conventional", "ArrayFlex k=1", "k=2", "k=4"});
  modes.set_align(0, Table::Align::kLeft);
  for (const int side : {128, 256}) {
    const arch::ArrayConfig cfg = arch::ArrayConfig::square(side);
    const arch::SaPowerModel power(cfg, clock);
    const double conv = power.steady_power_conventional_mw();
    const auto cell = [&](int k) {
      const double mw = power.steady_power_arrayflex_mw(k);
      return format("%.0f mW (%.3fx)", mw, mw / conv);
    };
    modes.add_row({format("%dx%d", side, side), format("%.0f mW", conv),
                   cell(1), cell(2), cell(4)});
  }
  std::cout << modes
            << "\nArrayFlex draws more power than the conventional SA in "
               "normal mode (k=1)\nand less in the shallow modes — the "
               "paper's Section IV-B observation.\n\n";

  sim::CsvReport csv({"array", "model", "conv_mw", "arrayflex_mw",
                      "power_savings", "energy_ratio", "edp_gain"});
  for (const int side : {128, 256}) {
    const arch::ArrayConfig cfg = arch::ArrayConfig::square(side);
    const nn::InferenceRunner runner(cfg, clock);
    std::cout << sim::banner(format("%dx%d PEs: full-run average power", side, side));
    Table table({"model", "conventional", "ArrayFlex", "savings",
                 "per-mode mW (k1/k2/k4)", "EDP gain"});
    table.set_align(0, Table::Align::kLeft);

    for (const nn::Model& model : nn::paper_models()) {
      const nn::ModelReport r = runner.run(model);
      const auto by_mode = r.power_by_mode_mw();
      const auto mode_mw = [&by_mode](int k) {
        const auto it = by_mode.find(k);
        return it == by_mode.end() ? std::string("-")
                                   : format("%.0f", it->second);
      };
      const arch::EfficiencyComparison e = r.totals();
      table.add_row({model.name,
                     format("%.0f mW", r.conventional_avg_power_mw()),
                     format("%.0f mW", r.arrayflex_avg_power_mw()),
                     percent(e.power_savings()),
                     mode_mw(1) + "/" + mode_mw(2) + "/" + mode_mw(4),
                     format("%.2fx", e.edp_gain)});
      csv.add_row({std::to_string(side), model.name,
                   fixed(r.conventional_avg_power_mw(), 1),
                   fixed(r.arrayflex_avg_power_mw(), 1),
                   fixed(e.power_savings(), 4), fixed(e.energy_ratio, 4),
                   fixed(e.edp_gain, 3)});
    }
    std::cout << table << "\n";
  }

  std::cout << "Paper reference: power savings 13-15% (128x128) and 17-23% "
               "(256x256);\ncombined energy-delay-product efficiency "
               "1.4x-1.8x.  SRAM/peripheral power omitted.\n";
  if (csv.write_to("fig9_power.csv")) {
    std::cout << "(series written to fig9_power.csv)\n";
  }
  return 0;
}
