// FIG8 — Normalized total execution time for ResNet-34, MobileNet and
// ConvNeXt on 128x128 and 256x256 arrays (paper Fig. 8).
//
// The paper reports ArrayFlex 9-11% faster across CNNs and array sizes,
// with the savings growing on the larger array because more layers prefer
// k = 4 (consistent with Eq. 7's k-hat ~ sqrt(R + C)).

#include <iostream>

#include "arch/clocking.h"
#include "nn/models.h"
#include "nn/runner.h"
#include "sim/report.h"
#include "util/strings.h"
#include "util/table.h"

using namespace af;

int main() {
  const arch::CalibratedClockModel clock = arch::CalibratedClockModel::date23();
  std::cout << "Reproduces paper Fig. 8 (DATE 2023).\n\n";
  sim::CsvReport csv({"array", "model", "conv_time_us", "arrayflex_time_us",
                      "normalized", "savings", "k1_layers", "k2_layers",
                      "k4_layers"});

  for (const int side : {128, 256}) {
    const arch::ArrayConfig cfg = arch::ArrayConfig::square(side);
    const nn::InferenceRunner runner(cfg, clock);
    std::cout << sim::banner(format("%dx%d PEs", side, side));
    Table table({"model", "conventional", "ArrayFlex", "normalized",
                 "savings", "modes k1/k2/k4"});
    table.set_align(0, Table::Align::kLeft);

    for (const nn::Model& model : nn::paper_models()) {
      const nn::ModelReport r = runner.run(model);
      const auto hist = r.mode_histogram();
      const auto count = [&hist](int k) {
        const auto it = hist.find(k);
        return it == hist.end() ? 0 : it->second;
      };
      const double normalized = r.arrayflex_time_ps / r.conventional_time_ps;
      table.add_row({model.name, format_time_ps(r.conventional_time_ps),
                     format_time_ps(r.arrayflex_time_ps),
                     fixed(normalized, 3),
                     percent(r.totals().latency_savings()),
                     format("%d/%d/%d", count(1), count(2), count(4))});
      csv.add_row({std::to_string(side), model.name,
                   fixed(r.conventional_time_ps / 1e6, 2),
                   fixed(r.arrayflex_time_ps / 1e6, 2), fixed(normalized, 4),
                   fixed(r.totals().latency_savings(), 4),
                   std::to_string(count(1)), std::to_string(count(2)),
                   std::to_string(count(4))});
    }
    std::cout << table << "\n";
  }

  std::cout << "Paper reference: ArrayFlex lowers execution latency by 9-11% "
               "in all cases;\nsavings increase for larger SAs as more layers "
               "prefer k=4.\n";
  if (csv.write_to("fig8_total_time.csv")) {
    std::cout << "(series written to fig8_total_time.csv)\n";
  }
  return 0;
}
