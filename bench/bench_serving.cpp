// PERF — multi-tenant serving layer throughput/latency tracker.
//
// Three studies, all recorded in BENCH_serving.json so the serving layer's
// perf trajectory is tracked across PRs alongside BENCH_sim_throughput.json
// and BENCH_netlist_sim.json:
//
//   1. closed_loop — 4 concurrent client threads with a bounded in-flight
//      window across a (shard count x max batch) grid: sustained requests/s
//      plus wall-clock p50/p99/mean latency per point.  Batching wins show
//      up twice: fewer fused hardware runs (weight preload amortized) and
//      fewer mode switches.
//
//   2. backend_comparison — the engine facade's fidelity/throughput trade
//      at equal shard count: the same cost-estimation workload
//      (want_output = false) served by the "analytic" backend vs the
//      "cycle" backend.  The analytic engine answers from closed forms
//      pinned exactly to the simulator, so the speedup is free fidelity-
//      wise; the ratio is the headline number the engine redesign exists
//      for (expected: well above 50x).
//
//   3. open_loop — a Poisson arrival-rate sweep (open loop: the generator
//      never waits for completions), producing the saturation curve of
//      offered load vs achieved throughput and p50/p99 latency.  Below
//      saturation p99 stays flat; past it the queue fills, the bounded
//      queue throttles the generator, and latency explodes — the classic
//      hockey stick.
//
//   5. overload_sweep — the admission-control study: measure the closed-loop
//      capacity of a 2-shard server on real (want_output = true) GEMMs, then
//      offer Poisson traffic at {0.5, 1, 2, 4}x that capacity under each
//      overload policy.  The queue is sized far above the offered burst so
//      shedding can only come from the policy, never from queue-full
//      throttling of the generator.  "block" admits everything and lets the
//      backlog stretch admitted p99 without bound; "reject" fails fast with
//      af::Error(kOverloaded) and keeps admitted p99 flat; "degrade" admits
//      everything but serves cost-only (near-free on the analytic backend)
//      while the pressure window holds, which also keeps p99 bounded.
//
//   6. fleet_sweep — the fleet layer's cost-of-robustness study: the same
//      closed-loop load against fleet::Fleet at 1/2/4 servers, then the
//      multi-server points again with one server killed mid-run.  The books
//      must still balance — every request resolves OK, the killed server's
//      stranded queue failing over to survivors — so the kill shows up as a
//      failover count and a client-side latency blip, never as lost work.
//
//   7. transformer_mix — the runtime-reconfiguration study: transformer
//      serving traffic (serve/transformer_traffic.h) at prefill:decode step
//      mixes 1:0, 1:8 and 1:32 on one shard, served under static pipeline
//      modes k = 1/2/4 and under the admission-time ReconfigPolicy registry
//      ("argmin" and "sticky").  The stream is identical across policies:
//      an arrival ramp of full prefills (fat, shallow-collapse territory),
//      then a long decode regime (T = 1, deep-collapse territory) with the
//      late sessions' CHUNKED prefills interleaved one GEMM at a time —
//      the continuous-batching pattern that makes a per-request argmin
//      thrash.  The headline metric is simulated requests/s over
//      busy + reconfiguration time, so mode-switch drains (priced at a
//      deliberately meaty reconfig_cycles) are first-class: "sticky" must
//      beat every static k on the decode-heavy mixes while paying an order
//      of magnitude fewer drains than "argmin", and no point may lose a
//      request.
//
//   4. contended_submit — the dispatch layer's reason to exist: 1/2/4/8
//      producer threads (distinct tenants, evenly spread over the home
//      deques, at a constant total in-flight window) hammering cost-only
//      traffic at an 8-shard server, for BOTH dispatchers.  The "global"
//      dispatcher serializes every submit and all 8 workers' pops through
//      one mutex — the convoy is visible even on one core — while
//      "stealing" spreads them over per-shard deques with precision
//      per-home wakeups.  Wall-clock req/s plus a CPU-time proxy
//      (requests per process-CPU-second) are recorded; the proxy is the
//      steadier signal on a single-core dev container.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <ctime>
#include <deque>
#include <mutex>
#include <utility>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fleet/fleet.h"
#include "gemm/matrix.h"
#include "nn/transformer.h"
#include "serve/dispatcher.h"
#include "serve/server.h"
#include "serve/transformer_traffic.h"
#include "util/rng.h"
#include "util/status.h"

namespace {

using namespace af;

// ---- 1. closed-loop grid ---------------------------------------------------

struct Point {
  int shards = 1;
  int max_batch = 1;
  int clients = 0;
  std::string backend;
  std::string dispatcher = "global";
  std::int64_t requests = 0;
  double seconds = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double mean_ms = 0.0;
  std::int64_t fused_runs = 0;
  std::int64_t mode_switches = 0;
  double energy_pj = 0.0;
  double requests_per_s() const {
    return seconds > 0 ? static_cast<double>(requests) / seconds : 0.0;
  }
};

Point run_point(int shards, int max_batch, int clients, int per_client,
                const std::string& backend, bool want_output,
                std::int64_t t_rows = 8, std::int64_t n = 64,
                std::int64_t m = 48,
                const std::string& dispatcher = "global") {
  serve::ServerOptions opts;
  opts.num_shards = shards;
  opts.max_batch = max_batch;
  opts.queue_capacity = 512;
  opts.backend = backend;
  opts.dispatcher = dispatcher;
  // Serving latencies here are sub-millisecond: a tight histogram range
  // keeps the p50/p99 buckets meaningfully narrow (~24 us).
  opts.latency_hist_max_ms = 100.0;
  serve::Server server(arch::ArrayConfig::square(16), opts);

  Rng weight_rng(2026);
  auto weights = std::make_shared<gemm::Mat32>(
      gemm::random_matrix(weight_rng, n, m, -40, 40));

  // Activations come from a small pre-generated pool: per-request RNG
  // would throttle the client loop and understate the fast backends.
  Rng act_rng(7007);
  std::vector<gemm::Mat32> activation_pool;
  for (int i = 0; i < 8; ++i) {
    activation_pool.push_back(gemm::random_matrix(act_rng, t_rows, n, -40, 40));
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      // Each client keeps a window of requests in flight — a loaded
      // closed-loop workload, so the scheduler actually sees a backlog to
      // coalesce (a one-at-a-time client never exercises batching).
      constexpr int kWindow = 8;
      std::vector<std::future<serve::GemmResult>> in_flight;
      for (int i = 0; i < per_client; ++i) {
        // Alternate pipeline modes so batching also has mode switches to
        // save; every request shares the weight matrix, so same-mode
        // neighbours fuse.
        const int k = (i % 4 == 3) ? 2 : 1;
        in_flight.push_back(server.submit_gemm(
            "bench",
            activation_pool[static_cast<std::size_t>((c + i) % 8)], weights,
            k, want_output));
        if (in_flight.size() >= kWindow) {
          in_flight.front().get();
          in_flight.erase(in_flight.begin());
        }
      }
      for (auto& f : in_flight) f.get();
    });
  }
  for (auto& t : threads) t.join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const serve::ServerStats stats = server.stats();
  AF_CHECK(stats.completed == static_cast<std::int64_t>(clients) * per_client,
           "serving bench lost requests");
  Point p;
  p.shards = shards;
  p.max_batch = max_batch;
  p.clients = clients;
  p.backend = backend;
  p.dispatcher = dispatcher;
  p.requests = stats.completed;
  p.seconds = seconds;
  AF_CHECK(stats.tenants.size() == 1, "expected the single bench tenant");
  p.p50_ms = stats.tenants[0].p50_latency_ms;
  p.p99_ms = stats.tenants[0].p99_latency_ms;
  p.mean_ms = stats.tenants[0].mean_latency_ms;
  p.energy_pj = stats.tenants[0].energy_pj;
  for (const serve::ShardSnapshot& s : stats.shards) {
    p.fused_runs += s.fused_runs;
    p.mode_switches += s.mode_switches;
  }
  return p;
}

// ---- 2. analytic vs cycle at equal shard count -----------------------------

struct BackendComparison {
  Point analytic;
  Point cycle;
  double speedup() const {
    return cycle.requests_per_s() > 0
               ? analytic.requests_per_s() / cycle.requests_per_s()
               : 0.0;
  }
};

BackendComparison run_backend_comparison(bool quick) {
  // Cost-estimation traffic (want_output = false) on a heavier GEMM, so
  // the cycle backend pays full simulation while the analytic backend
  // answers from closed forms.  Equal shard count on both sides.
  const int shards = 2;
  const int clients = 2;
  BackendComparison cmp;
  cmp.analytic = run_point(shards, /*max_batch=*/1, clients,
                           /*per_client=*/quick ? 500 : 2000, "analytic",
                           /*want_output=*/false, /*t=*/64, /*n=*/256,
                           /*m=*/128);
  cmp.cycle = run_point(shards, /*max_batch=*/1, clients,
                        /*per_client=*/quick ? 6 : 16, "cycle",
                        /*want_output=*/false, /*t=*/64, /*n=*/256,
                        /*m=*/128);
  return cmp;
}

// ---- contended submit: dispatcher scaling under producer pressure ----------

struct ContendedPoint {
  std::string dispatcher;
  int producers = 0;
  // Client batch size.  0 = the legacy scalar submit_gemm path (one future
  // per request); >= 1 = submit_gemm_batch with that many shapes per call
  // (batch 1 isolates the per-call overhead of the batched plumbing, 16 and
  // 256 amortize the queue hop and hit the SoA evaluate_batch kernel).
  // `requests` always counts SHAPES, so req/s is comparable across rows.
  int batch = 0;
  std::int64_t requests = 0;
  double wall_s = 0.0;
  double cpu_s = 0.0;  // process CPU time — the single-core scaling proxy
  double requests_per_s() const {
    return wall_s > 0 ? static_cast<double>(requests) / wall_s : 0.0;
  }
  double requests_per_cpu_s() const {
    return cpu_s > 0 ? static_cast<double>(requests) / cpu_s : 0.0;
  }
};

// A tenant name routing to home deque `home` on a `shards`-wide stealing
// dispatcher (probed through the exposed affinity hash).  The contended
// study assigns producer tenants round-robin over the homes so it measures
// LOCK CONTENTION, not hash luck — with 8 producers on 4 shards every home
// deque carries exactly two tenants, the balanced topology the affinity
// design intends (an unlucky std::hash draw can otherwise pile 4 tenants
// on one deque and starve another, which is load skew, not dispatch cost).
std::string tenant_for_home(int index, int home, int shards) {
  for (int j = 0;; ++j) {
    serve::Request probe;
    probe.kind = serve::RequestKind::kGemm;
    probe.tenant =
        "producer-" + std::to_string(index) + "-" + std::to_string(j);
    if (serve::affinity_hash(probe) % static_cast<std::size_t>(shards) ==
        static_cast<std::size_t>(home)) {
      return probe.tenant;
    }
  }
}

ContendedPoint run_contended_once(const std::string& dispatcher, int producers,
                                  int total_requests, int batch) {
  serve::ServerOptions opts;
  opts.num_shards = 8;
  opts.max_batch = 32;
  opts.queue_capacity = 1024;
  opts.backend = "analytic";
  opts.dispatcher = dispatcher;
  opts.latency_hist_max_ms = 100.0;
  serve::Server server(arch::ArrayConfig::square(16), opts);

  Rng weight_rng(4242);
  auto weights = std::make_shared<gemm::Mat32>(
      gemm::random_matrix(weight_rng, 32, 32, -40, 40));
  Rng act_rng(808);
  std::vector<gemm::Mat32> activation_pool;
  for (int i = 0; i < 4; ++i) {
    activation_pool.push_back(gemm::random_matrix(act_rng, 4, 32, -40, 40));
  }
  // Batched producers submit shapes, not operands: a small rotation of
  // distinct shapes so the cost cache sees the serving steady state (a few
  // hot shapes answered from memo) rather than one degenerate key.
  std::vector<gemm::GemmShape> shape_pool;
  for (std::int64_t t = 1; t <= 8; ++t) shape_pool.push_back({32, 32, t});

  const int per_producer = total_requests / producers;
  const std::clock_t cpu0 = std::clock();
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(producers));
  for (int c = 0; c < producers; ++c) {
    threads.emplace_back([&, c] {
      // Distinct tenant per producer: the global queue's DRR ring then
      // holds `producers` flows (every pop scans it under the one lock),
      // while the stealing dispatcher spreads the flows over per-shard
      // deques by affinity — the structural difference this study measures.
      const std::string tenant =
          tenant_for_home(c, c % opts.num_shards, opts.num_shards);
      // Constant TOTAL in-flight window across the producer sweep: the
      // study varies submitter-thread count at fixed offered concurrency,
      // so a point's delta is dispatch contention, not a deeper backlog.
      const int kWindow = std::max(1, 256 / producers);
      if (batch > 0) {
        // Batched path: one submit_gemm_batch call per `batch` shapes, a
        // bounded window of outstanding tickets.  The window counts CALLS
        // (tickets), so total outstanding shapes grows with the batch size
        // — which is the point: one ticket is one queue hop regardless.
        std::vector<gemm::GemmShape> shapes(static_cast<std::size_t>(batch));
        const int calls = per_producer / batch;
        std::vector<serve::BatchTicket> in_flight;
        for (int i = 0; i < calls; ++i) {
          for (int j = 0; j < batch; ++j) {
            shapes[static_cast<std::size_t>(j)] =
                shape_pool[static_cast<std::size_t>((c + i + j) % 8)];
          }
          serve::SubmitOptions sub;
          sub.k = 1;
          in_flight.push_back(server.submit_gemm_batch(tenant, shapes, sub));
          if (in_flight.size() >= static_cast<std::size_t>(kWindow)) {
            in_flight.front().get();
            in_flight.erase(in_flight.begin());
          }
        }
        for (auto& t : in_flight) t.get();
        return;
      }
      std::vector<std::future<serve::GemmResult>> in_flight;
      for (int i = 0; i < per_producer; ++i) {
        in_flight.push_back(server.submit_gemm(
            tenant, activation_pool[static_cast<std::size_t>((c + i) % 4)],
            weights, /*k=*/1, /*want_output=*/false));
        if (in_flight.size() >= kWindow) {
          in_flight.front().get();
          in_flight.erase(in_flight.begin());
        }
      }
      for (auto& f : in_flight) f.get();
    });
  }
  for (auto& t : threads) t.join();

  ContendedPoint p;
  p.dispatcher = dispatcher;
  p.producers = producers;
  p.batch = batch;
  const std::int64_t per_producer_shapes =
      batch > 0 ? static_cast<std::int64_t>(per_producer / batch) * batch
                : per_producer;
  p.requests = per_producer_shapes * producers;
  p.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  p.cpu_s = static_cast<double>(std::clock() - cpu0) / CLOCKS_PER_SEC;
  AF_CHECK(server.stats().completed == p.requests,
           "contended bench lost requests");
  return p;
}

// Best of three trials per point: a dozen runnable threads on a small
// runner make single trials swing with scheduler luck; the best trial is
// the standard low-noise estimator of what the code can sustain.
ContendedPoint run_contended(const std::string& dispatcher, int producers,
                             int total_requests, int batch = 0) {
  ContendedPoint best;
  for (int trial = 0; trial < 3; ++trial) {
    ContendedPoint p = run_contended_once(dispatcher, producers,
                                          total_requests, batch);
    if (trial == 0 || p.requests_per_s() > best.requests_per_s()) best = p;
  }
  return best;
}

// ---- 3. open-loop Poisson arrival sweep ------------------------------------

struct OpenLoopPoint {
  double offered_rps = 0.0;
  // 0 = legacy scalar submit_gemm; >= 1 = submit_gemm_batch with this many
  // shapes per Poisson arrival (offered_rps still counts SHAPES per second,
  // so the arrival rate of calls is offered_rps / batch).
  int batch = 0;
  std::int64_t requests = 0;
  double seconds = 0.0;
  double achieved_rps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double mean_ms = 0.0;
};

OpenLoopPoint run_open_loop(double offered_rps, int total_requests,
                            int batch = 0) {
  serve::ServerOptions opts;
  opts.num_shards = 2;
  opts.max_batch = 8;
  opts.queue_capacity = 1024;
  opts.backend = "analytic";
  opts.latency_hist_max_ms = 100.0;  // see run_point
  serve::Server server(arch::ArrayConfig::square(16), opts);

  Rng weight_rng(31);
  auto weights = std::make_shared<gemm::Mat32>(
      gemm::random_matrix(weight_rng, 64, 48, -40, 40));

  Rng rng(9000);
  std::vector<gemm::Mat32> activation_pool;
  for (int i = 0; i < 8; ++i) {
    activation_pool.push_back(gemm::random_matrix(rng, 8, 64, -40, 40));
  }
  // Batched arrivals carry shapes only (cost queries); rotate a few
  // distinct keys so the memo cache sees steady-state traffic, not one key.
  std::vector<gemm::GemmShape> shape_pool;
  for (std::int64_t t = 1; t <= 8; ++t) shape_pool.push_back({48, 64, t});

  std::deque<std::future<serve::GemmResult>> in_flight;
  std::deque<serve::BatchTicket> tickets;
  const auto t0 = std::chrono::steady_clock::now();
  auto next_arrival = t0;
  const int arrivals =
      batch > 0 ? std::max(1, total_requests / batch) : total_requests;
  std::vector<gemm::GemmShape> shapes(
      static_cast<std::size_t>(std::max(1, batch)));
  for (int i = 0; i < arrivals; ++i) {
    // Exponential inter-arrival gap: -ln(1 - U) / rate seconds.  A batched
    // arrival delivers `batch` shapes at once, so the call rate is the
    // offered SHAPE rate divided by the batch size.
    const double call_rps =
        batch > 0 ? offered_rps / batch : offered_rps;
    const double gap_s = -std::log(1.0 - rng.next_double()) / call_rps;
    next_arrival +=
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(gap_s));
    std::this_thread::sleep_until(next_arrival);
    // Open loop: submit without waiting.  (Once the bounded queue fills —
    // past saturation — submit itself blocks; that back-pressure IS the
    // saturation signal and caps the achieved rate.)
    if (batch > 0) {
      for (int j = 0; j < batch; ++j) {
        shapes[static_cast<std::size_t>(j)] =
            shape_pool[static_cast<std::size_t>((i + j) % 8)];
      }
      tickets.push_back(server.submit_gemm_batch("openloop", shapes));
      while (!tickets.empty() && tickets.front().ready()) {
        tickets.front().get();
        tickets.pop_front();
      }
      continue;
    }
    in_flight.push_back(server.submit_gemm(
        "openloop", activation_pool[static_cast<std::size_t>(i % 8)], weights,
        /*k=*/0, /*want_output=*/false));
    while (!in_flight.empty() &&
           in_flight.front().wait_for(std::chrono::seconds(0)) ==
               std::future_status::ready) {
      in_flight.front().get();
      in_flight.pop_front();
    }
  }
  for (auto& f : in_flight) f.get();
  for (auto& t : tickets) t.get();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const serve::ServerStats stats = server.stats();
  OpenLoopPoint p;
  p.offered_rps = offered_rps;
  p.batch = batch;
  p.requests = stats.completed;
  p.seconds = seconds;
  p.achieved_rps =
      seconds > 0 ? static_cast<double>(stats.completed) / seconds : 0.0;
  AF_CHECK(stats.tenants.size() == 1, "expected the single open-loop tenant");
  p.p50_ms = stats.tenants[0].p50_latency_ms;
  p.p99_ms = stats.tenants[0].p99_latency_ms;
  p.mean_ms = stats.tenants[0].mean_latency_ms;
  return p;
}

// ---- 5. overload sweep: admission policies under offered pressure ----------

struct OverloadPoint {
  std::string policy;
  double load_x = 0.0;          // offered / measured capacity
  double offered_rps = 0.0;
  std::int64_t offered = 0;     // generator attempts (admitted + shed)
  std::int64_t admitted = 0;    // completions, full-fidelity or degraded
  std::int64_t shed = 0;        // submissions refused with kOverloaded
  std::int64_t degraded = 0;    // served cost-only under pressure
  double seconds = 0.0;         // submit window + drain
  double goodput_rps = 0.0;     // full-fidelity completions per second
  double p50_ms = 0.0;          // admitted-request latency only
  double p99_ms = 0.0;
};

OverloadPoint run_overload(const std::string& policy, double capacity_rps,
                           double load_x, bool quick) {
  serve::ServerOptions opts;
  opts.num_shards = 2;
  opts.max_batch = 8;
  // Far above any burst the sweep offers: back-pressure on the generator
  // would silently turn "block" into rate limiting and hide the backlog
  // this study exists to expose.
  opts.queue_capacity = 1 << 15;
  opts.backend = "analytic";
  opts.overload_policy = policy;
  opts.overload_depth_per_shard = 16.0;
  opts.overload_wait_p99_ms = 5.0;
  // Wide histogram: the block policy's backlogged p99 reaches seconds and
  // must not clip at the serving default of 100 ms.
  opts.latency_hist_max_ms = 10000.0;
  serve::Server server(arch::ArrayConfig::square(16), opts);

  Rng weight_rng(1123);
  auto weights = std::make_shared<gemm::Mat32>(
      gemm::random_matrix(weight_rng, 256, 128, -40, 40));
  Rng rng(4507 + static_cast<std::uint64_t>(load_x * 16));
  std::vector<gemm::Mat32> activation_pool;
  for (int i = 0; i < 8; ++i) {
    activation_pool.push_back(gemm::random_matrix(rng, 64, 256, -40, 40));
  }

  const double offered_rps = capacity_rps * load_x;
  const double window_s = quick ? 0.25 : 1.0;
  const int total = std::max(100, static_cast<int>(offered_rps * window_s));

  std::deque<std::future<serve::GemmResult>> in_flight;
  std::int64_t shed = 0;
  const auto t0 = std::chrono::steady_clock::now();
  auto next_arrival = t0;
  for (int i = 0; i < total; ++i) {
    const double gap_s = -std::log(1.0 - rng.next_double()) / offered_rps;
    next_arrival +=
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(gap_s));
    std::this_thread::sleep_until(next_arrival);
    try {
      in_flight.push_back(server.submit_gemm(
          "overload", activation_pool[static_cast<std::size_t>(i % 8)],
          weights, /*k=*/0, /*want_output=*/true));
    } catch (const Error& e) {
      if (e.code() != ErrorCode::kOverloaded) throw;
      ++shed;  // the reject policy refusing at admission — the open loop
               // keeps offering at the same rate regardless
    }
    while (!in_flight.empty() &&
           in_flight.front().wait_for(std::chrono::seconds(0)) ==
               std::future_status::ready) {
      in_flight.front().get();
      in_flight.pop_front();
    }
  }
  for (auto& f : in_flight) f.get();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const serve::ServerStats stats = server.stats();
  AF_CHECK(stats.rejected == shed, "overload sweep shed accounting drifted");
  OverloadPoint p;
  p.policy = policy;
  p.load_x = load_x;
  p.offered_rps = offered_rps;
  p.offered = total;
  p.admitted = stats.completed;
  p.shed = shed;
  p.degraded = stats.degraded;
  p.seconds = seconds;
  p.goodput_rps =
      seconds > 0
          ? static_cast<double>(stats.completed - stats.degraded) / seconds
          : 0.0;
  if (!stats.tenants.empty()) {
    p.p50_ms = stats.tenants[0].p50_latency_ms;
    p.p99_ms = stats.tenants[0].p99_latency_ms;
  }
  return p;
}

// ---- 6. fleet sweep: server count x mid-run kill ---------------------------

struct FleetPoint {
  int servers = 0;
  bool killed = false;          // server 0 killed halfway through the run
  std::int64_t requests = 0;
  double seconds = 0.0;
  double p50_ms = 0.0;          // client-side submit -> resolve latency
  double p99_ms = 0.0;
  std::int64_t failovers = 0;
  std::int64_t resolved_ok = 0;
  std::int64_t resolved_err = 0;
  double requests_per_s() const {
    return seconds > 0 ? static_cast<double>(requests) / seconds : 0.0;
  }
};

FleetPoint run_fleet_point(int servers, bool kill_one, int clients,
                           int per_client) {
  std::vector<fleet::FleetServerSpec> specs;
  for (int s = 0; s < servers; ++s) {
    fleet::FleetServerSpec spec;
    spec.options.num_shards = 1;
    spec.options.max_batch = 8;
    spec.options.queue_capacity = 512;
    spec.options.backend = "analytic";
    spec.options.latency_hist_max_ms = 100.0;  // see run_point
    specs.push_back(spec);
  }
  fleet::FleetOptions fopts;
  // No prober: the kill is an explicit failpoint, so health changes are
  // deterministic and the sweep measures failover, not detection latency.
  fopts.probe_interval_ms = 0.0;
  fleet::Fleet fl(std::move(specs), fopts);

  Rng weight_rng(6161);
  auto weights = std::make_shared<gemm::Mat32>(
      gemm::random_matrix(weight_rng, 64, 48, -40, 40));
  Rng act_rng(515);
  std::vector<gemm::Mat32> activation_pool;
  for (int i = 0; i < 8; ++i) {
    activation_pool.push_back(gemm::random_matrix(act_rng, 8, 64, -40, 40));
  }

  const std::int64_t total =
      static_cast<std::int64_t>(clients) * per_client;
  std::atomic<std::int64_t> submitted{0};
  std::mutex latency_mutex;
  std::vector<double> latencies_ms;
  latencies_ms.reserve(static_cast<std::size_t>(total));

  // The killer fires once half the load is in: enough backlog on the dying
  // server to make the strand-and-failover path do real work.
  std::thread killer;
  if (kill_one) {
    killer = std::thread([&] {
      while (submitted.load(std::memory_order_relaxed) < total / 2) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
      fl.kill_server(0);
    });
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      // Distinct tenant per client so the affinity router actually spreads
      // the load over the fleet (one tenant would home on one server).
      const std::string tenant = "fleet-" + std::to_string(c);
      constexpr int kWindow = 8;
      std::deque<std::pair<std::future<serve::GemmResult>,
                           std::chrono::steady_clock::time_point>> in_flight;
      std::vector<double> local_ms;
      local_ms.reserve(static_cast<std::size_t>(per_client));
      auto harvest = [&](bool block) {
        while (!in_flight.empty() &&
               (block || in_flight.front().first.wait_for(
                             std::chrono::seconds(0)) ==
                             std::future_status::ready)) {
          in_flight.front().first.get();
          local_ms.push_back(std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() -
                                 in_flight.front().second)
                                 .count());
          in_flight.pop_front();
          block = false;  // blocked for one slot; drain the rest lazily
        }
      };
      for (int i = 0; i < per_client; ++i) {
        serve::SubmitOptions sub;
        sub.k = (i % 4 == 3) ? 2 : 1;
        in_flight.emplace_back(
            fl.submit_gemm(tenant,
                           activation_pool[static_cast<std::size_t>(
                               (c + i) % 8)],
                           weights, sub),
            std::chrono::steady_clock::now());
        submitted.fetch_add(1, std::memory_order_relaxed);
        harvest(in_flight.size() >= kWindow);
      }
      harvest(true);
      while (!in_flight.empty()) harvest(true);
      std::lock_guard<std::mutex> lock(latency_mutex);
      latencies_ms.insert(latencies_ms.end(), local_ms.begin(),
                          local_ms.end());
    });
  }
  for (auto& t : threads) t.join();
  if (killer.joinable()) killer.join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const fleet::FleetStats stats = fl.stats();
  // The headline contract, checked on every sweep point: nothing lost.
  AF_CHECK(stats.submitted == total, "fleet sweep lost submissions");
  AF_CHECK(stats.resolved() == stats.submitted,
           "fleet sweep books do not balance");
  AF_CHECK(stats.resolved_ok == total,
           "fleet sweep: a request failed instead of failing over");

  std::sort(latencies_ms.begin(), latencies_ms.end());
  auto quantile = [&](double q) {
    if (latencies_ms.empty()) return 0.0;
    const std::size_t idx = static_cast<std::size_t>(
        q * static_cast<double>(latencies_ms.size() - 1));
    return latencies_ms[idx];
  };
  FleetPoint p;
  p.servers = servers;
  p.killed = kill_one;
  p.requests = stats.resolved_ok;
  p.seconds = seconds;
  p.p50_ms = quantile(0.5);
  p.p99_ms = quantile(0.99);
  p.failovers = stats.failovers;
  p.resolved_ok = stats.resolved_ok;
  p.resolved_err = stats.resolved_err;
  return p;
}

// ---- 7. transformer traffic-mix: static k vs runtime reconfiguration -------

struct MixPoint {
  std::string mix;     // prefill:decode step ratio, e.g. "1:8"
  std::string policy;  // "static-k1".."static-k4", "argmin", "sticky"
  std::int64_t requests = 0;
  double wall_s = 0.0;
  double busy_ms = 0.0;      // simulated execution time (all shards)
  double reconfig_ms = 0.0;  // simulated drain time (all shards)
  std::int64_t mode_switches = 0;
  std::int64_t fused_runs = 0;
  std::int64_t stream_switches = 0;  // sticky policy: switches it chose
  std::int64_t holds = 0;            // sticky policy: drains it declined
  double p99_ms = 0.0;               // wall-clock, closed-loop generator
  // Served requests per SIMULATED second: the drain tax and the
  // wrong-mode tax land in the same denominator, so a policy only wins
  // here by genuinely spending less array time per request.
  double sim_requests_per_s() const {
    const double s = (busy_ms + reconfig_ms) * 1e-3;
    return s > 0 ? static_cast<double>(requests) / s : 0.0;
  }
};

// One traffic stream per (mix, session count), identical for every policy:
// 1. Arrival ramp — the EARLY half of the sessions prefill their full
//    `ramp_seq`-token prompts back to back (a sustained fat regime; any
//    static deep-collapse mode bleeds here).
// 2. Decode regime — sessions * decode_per_prefill decode steps (T = 1,
//    sustained deep-collapse regime; any static shallow mode bleeds here),
//    with the LATE sessions' follow-up turns — short `followup_seq`-token
//    prompts against the already-warm KV cache, split into
//    `chunk_seq`-token chunks — interleaved ONE GEMM AT A TIME between
//    decode steps: chunked prefill under continuous batching.  Those
//    isolated fatter GEMMs are the hysteresis test: per-request argmin
//    pays two drains around each one, "sticky" holds the stream mode and
//    serves them slightly off-optimal.
// All sessions share one weight bundle (one model, many streams), so
// same-phase decode steps carry identical B pointers and fuse.
std::vector<serve::PhaseGemm> build_mix_stream(
    const serve::TransformerWeights& weights, int sessions,
    int decode_per_prefill, std::int64_t ramp_seq, std::int64_t followup_seq,
    std::int64_t chunk_seq, Rng& rng) {
  std::vector<serve::PhaseGemm> stream;
  const int early = decode_per_prefill > 0 ? (sessions + 1) / 2 : sessions;
  for (int s = 0; s < early; ++s) {
    std::vector<serve::PhaseGemm> pass =
        serve::prefill_gemms(weights, ramp_seq, rng);
    for (serve::PhaseGemm& g : pass) stream.push_back(std::move(g));
  }
  if (decode_per_prefill <= 0) return stream;

  std::vector<serve::PhaseGemm> decodes;
  const int steps = sessions * decode_per_prefill;
  for (int i = 0; i < steps; ++i) {
    std::vector<serve::PhaseGemm> step = serve::decode_gemms(weights, rng);
    for (serve::PhaseGemm& g : step) decodes.push_back(std::move(g));
  }
  std::vector<serve::PhaseGemm> chunks;
  for (int s = early; s < sessions; ++s) {
    for (std::int64_t done = 0; done < followup_seq; done += chunk_seq) {
      std::vector<serve::PhaseGemm> pass = serve::prefill_gemms(
          weights, std::min(chunk_seq, followup_seq - done), rng);
      for (serve::PhaseGemm& g : pass) chunks.push_back(std::move(g));
    }
  }
  const std::size_t gap =
      chunks.empty() ? decodes.size() + 1
                     : std::max<std::size_t>(1, decodes.size() / chunks.size());
  std::size_t ci = 0;
  for (std::size_t i = 0; i < decodes.size(); ++i) {
    stream.push_back(std::move(decodes[i]));
    if ((i + 1) % gap == 0 && ci < chunks.size()) {
      stream.push_back(std::move(chunks[ci++]));
    }
  }
  while (ci < chunks.size()) stream.push_back(std::move(chunks[ci++]));
  return stream;
}

// static_k > 0 pins every request to that mode (policy label is cosmetic);
// static_k == 0 submits with k = 0 and lets opts.reconfig_policy decide.
MixPoint run_transformer_mix(const std::string& mix, const std::string& policy,
                             int static_k, int decode_per_prefill,
                             int sessions) {
  serve::ServerOptions opts;
  opts.num_shards = 1;
  opts.max_batch = 8;
  opts.queue_capacity = 512;
  opts.backend = "analytic";
  opts.latency_hist_max_ms = 100.0;
  // Price reconfiguration like the hardware it models: drain the deep
  // transparent pipeline AND redistribute the per-column configuration
  // bits.  The default (rows + cols) is a rounding error next to these
  // GEMMs; 2048 cycles makes the switch-vs-hold trade a real decision.
  opts.reconfig_cycles = 2048;
  if (static_k == 0) {
    opts.reconfig_policy = policy;
    opts.reconfig_switch_margin = 4.0;
  }
  serve::Server server(arch::ArrayConfig::square(16), opts);

  nn::TransformerConfig tc;
  tc.d_model = 64;
  tc.n_heads = 2;
  tc.d_ff = 256;
  tc.n_blocks = 1;
  // Fixed seed: every policy serves the bit-identical stream.
  Rng rng(4242);
  const serve::TransformerWeights weights =
      serve::make_transformer_weights(tc, /*kv_len=*/512, rng);
  std::vector<serve::PhaseGemm> stream = build_mix_stream(
      weights, sessions, decode_per_prefill, /*ramp_seq=*/512,
      /*followup_seq=*/64, /*chunk_seq=*/32, rng);

  const auto t0 = std::chrono::steady_clock::now();
  // Bounded in-flight window: deep enough that same-phase decode steps
  // overlap in the backlog (fusion + batching stay live), shallow enough
  // that the admission order the policies see is the stream order.
  constexpr std::size_t kWindow = 16;
  std::vector<std::future<serve::GemmResult>> in_flight;
  for (serve::PhaseGemm& g : stream) {
    in_flight.push_back(server.submit_gemm("mix", std::move(g.a), g.b,
                                           static_k, /*want_output=*/true));
    if (in_flight.size() >= kWindow) {
      in_flight.front().get();
      in_flight.erase(in_flight.begin());
    }
  }
  for (auto& f : in_flight) f.get();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const serve::ServerStats stats = server.stats();
  AF_CHECK(stats.completed == static_cast<std::int64_t>(stream.size()),
           "transformer mix point lost requests");
  MixPoint p;
  p.mix = mix;
  p.policy = policy;
  p.requests = stats.completed;
  p.wall_s = wall_s;
  AF_CHECK(stats.tenants.size() == 1, "expected the single mix tenant");
  p.p99_ms = stats.tenants[0].p99_latency_ms;
  p.stream_switches = stats.reconfig_stream_switches;
  p.holds = stats.reconfig_holds;
  for (const serve::ShardSnapshot& s : stats.shards) {
    p.busy_ms += s.busy_time_ps * 1e-9;
    p.reconfig_ms += s.reconfig_time_ps * 1e-9;
    p.mode_switches += s.mode_switches;
    p.fused_runs += s.fused_runs;
  }
  return p;
}

// ---- JSON ------------------------------------------------------------------

void append_point(std::ostringstream& json, const Point& p, bool last) {
  json << "    {\"shards\": " << p.shards << ", \"max_batch\": " << p.max_batch
       << ", \"clients\": " << p.clients << ", \"backend\": \"" << p.backend
       << "\", \"dispatcher\": \"" << p.dispatcher
       << "\", \"requests\": " << p.requests << ", \"seconds\": " << p.seconds
       << ", \"requests_per_s\": " << p.requests_per_s()
       << ", \"p50_ms\": " << p.p50_ms << ", \"p99_ms\": " << p.p99_ms
       << ", \"mean_ms\": " << p.mean_ms << ", \"fused_runs\": " << p.fused_runs
       << ", \"mode_switches\": " << p.mode_switches
       << ", \"energy_pj\": " << p.energy_pj << "}" << (last ? "" : ",")
       << "\n";
}

void write_json(const std::vector<Point>& closed_loop,
                const BackendComparison& cmp,
                const std::vector<OpenLoopPoint>& open_loop,
                const std::vector<ContendedPoint>& contended,
                double overload_capacity_rps,
                const std::vector<OverloadPoint>& overload,
                const std::vector<FleetPoint>& fleet_sweep,
                const std::vector<MixPoint>& transformer_mix,
                const std::string& path) {
  std::ostringstream json;
  json << "{\n  \"bench\": \"serving\",\n  \"unit\": \"requests/s\",\n"
       << "  \"results\": [\n";
  for (std::size_t i = 0; i < closed_loop.size(); ++i) {
    append_point(json, closed_loop[i], i + 1 == closed_loop.size());
  }
  json << "  ],\n  \"backend_comparison\": {\n    \"analytic\": [\n";
  append_point(json, cmp.analytic, true);
  json << "    ],\n    \"cycle\": [\n";
  append_point(json, cmp.cycle, true);
  json << "    ],\n    \"analytic_vs_cycle_speedup\": " << cmp.speedup()
       << "\n  },\n  \"open_loop\": [\n";
  for (std::size_t i = 0; i < open_loop.size(); ++i) {
    const OpenLoopPoint& p = open_loop[i];
    json << "    {\"offered_rps\": " << p.offered_rps
         << ", \"api\": \"" << (p.batch > 0 ? "batched" : "scalar")
         << "\", \"batch\": " << p.batch
         << ", \"requests\": " << p.requests << ", \"seconds\": " << p.seconds
         << ", \"achieved_rps\": " << p.achieved_rps
         << ", \"p50_ms\": " << p.p50_ms << ", \"p99_ms\": " << p.p99_ms
         << ", \"mean_ms\": " << p.mean_ms << "}"
         << (i + 1 < open_loop.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"contended_submit\": [\n";
  for (std::size_t i = 0; i < contended.size(); ++i) {
    const ContendedPoint& p = contended[i];
    json << "    {\"dispatcher\": \"" << p.dispatcher
         << "\", \"producers\": " << p.producers
         << ", \"api\": \"" << (p.batch > 0 ? "batched" : "scalar")
         << "\", \"batch\": " << p.batch
         << ", \"requests\": " << p.requests << ", \"wall_s\": " << p.wall_s
         << ", \"cpu_s\": " << p.cpu_s
         << ", \"requests_per_s\": " << p.requests_per_s()
         << ", \"requests_per_cpu_s\": " << p.requests_per_cpu_s() << "}"
         << (i + 1 < contended.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"overload_capacity_rps\": " << overload_capacity_rps
       << ",\n  \"overload_sweep\": [\n";
  for (std::size_t i = 0; i < overload.size(); ++i) {
    const OverloadPoint& p = overload[i];
    json << "    {\"policy\": \"" << p.policy << "\", \"load_x\": " << p.load_x
         << ", \"offered_rps\": " << p.offered_rps
         << ", \"offered\": " << p.offered << ", \"admitted\": " << p.admitted
         << ", \"shed\": " << p.shed << ", \"degraded\": " << p.degraded
         << ", \"seconds\": " << p.seconds
         << ", \"goodput_rps\": " << p.goodput_rps
         << ", \"p50_ms\": " << p.p50_ms << ", \"p99_ms\": " << p.p99_ms
         << "}" << (i + 1 < overload.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"fleet_sweep\": [\n";
  for (std::size_t i = 0; i < fleet_sweep.size(); ++i) {
    const FleetPoint& p = fleet_sweep[i];
    json << "    {\"servers\": " << p.servers
         << ", \"killed_mid_run\": " << (p.killed ? "true" : "false")
         << ", \"requests\": " << p.requests << ", \"seconds\": " << p.seconds
         << ", \"requests_per_s\": " << p.requests_per_s()
         << ", \"p50_ms\": " << p.p50_ms << ", \"p99_ms\": " << p.p99_ms
         << ", \"failovers\": " << p.failovers
         << ", \"resolved_ok\": " << p.resolved_ok
         << ", \"resolved_err\": " << p.resolved_err << "}"
         << (i + 1 < fleet_sweep.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"transformer_mix\": [\n";
  for (std::size_t i = 0; i < transformer_mix.size(); ++i) {
    const MixPoint& p = transformer_mix[i];
    json << "    {\"mix\": \"" << p.mix << "\", \"policy\": \"" << p.policy
         << "\", \"requests\": " << p.requests << ", \"wall_s\": " << p.wall_s
         << ", \"busy_ms\": " << p.busy_ms
         << ", \"reconfig_ms\": " << p.reconfig_ms
         << ", \"sim_requests_per_s\": " << p.sim_requests_per_s()
         << ", \"mode_switches\": " << p.mode_switches
         << ", \"fused_runs\": " << p.fused_runs
         << ", \"stream_switches\": " << p.stream_switches
         << ", \"holds\": " << p.holds << ", \"p99_ms\": " << p.p99_ms
         << ", \"lost\": 0}" << (i + 1 < transformer_mix.size() ? "," : "")
         << "\n";
  }
  json << "  ]\n}\n";

  std::ofstream out(path);
  if (!out) {
    std::cerr << "note: could not write " << path << "\n";
    return;
  }
  out << json.str();
  std::cout << "wrote " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  // --quick shrinks the request volume 4x for sanitized / smoke runs.
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
  }
  const int clients = 4;
  const int per_client = quick ? 16 : 64;

  std::vector<Point> closed_loop;
  for (const std::string dispatcher : {"global", "stealing"}) {
    for (const int shards : {1, 2, 4}) {
      for (const int max_batch : {1, 8}) {
        closed_loop.push_back(run_point(shards, max_batch, clients,
                                        per_client, "analytic",
                                        /*want_output=*/true, /*t=*/8,
                                        /*n=*/64, /*m=*/48, dispatcher));
      }
    }
  }

  std::printf("closed loop (backend: analytic)\n");
  std::printf("%10s %7s %9s %8s %9s %12s %8s %8s %10s %12s\n", "dispatcher",
              "shards", "max_batch", "clients", "requests", "requests/s",
              "p50 ms", "p99 ms", "fused", "mode_sw");
  for (const Point& p : closed_loop) {
    std::printf("%10s %7d %9d %8d %9lld %12.1f %8.3f %8.3f %10lld %12lld\n",
                p.dispatcher.c_str(), p.shards, p.max_batch, p.clients,
                static_cast<long long>(p.requests), p.requests_per_s(),
                p.p50_ms, p.p99_ms, static_cast<long long>(p.fused_runs),
                static_cast<long long>(p.mode_switches));
  }

  const BackendComparison cmp = run_backend_comparison(quick);
  std::printf(
      "\nbackend comparison (cost-estimation traffic, %d shards):\n"
      "  analytic: %10.1f req/s\n  cycle:    %10.1f req/s\n"
      "  speedup:  %10.1fx\n",
      cmp.analytic.shards, cmp.analytic.requests_per_s(),
      cmp.cycle.requests_per_s(), cmp.speedup());

  std::vector<OpenLoopPoint> open_loop;
  for (const double rate : {500.0, 2000.0, 8000.0, 32000.0, 128000.0}) {
    const int total = std::min(
        quick ? 2000 : 8000, std::max(200, static_cast<int>(rate / 4)));
    open_loop.push_back(run_open_loop(rate, total));
  }
  // Batched open loop: the same Poisson discipline with shapes arriving in
  // submit_gemm_batch calls.  Higher offered SHAPE rates — the batched path
  // exists to push the ceiling far past what scalar arrivals saturate at.
  for (const int batch : {1, 16, 256}) {
    for (const double rate : {32000.0, 256000.0, 2048000.0}) {
      const int total = std::min(
          quick ? 16384 : 65536,
          std::max(batch * 16, static_cast<int>(rate / 8)));
      open_loop.push_back(run_open_loop(rate, total, batch));
    }
  }
  std::printf("\nopen loop (Poisson arrivals, analytic backend, 2 shards):\n");
  std::printf("%12s %7s %12s %10s %10s %10s\n", "offered r/s", "batch",
              "achieved r/s", "p50 ms", "p99 ms", "mean ms");
  for (const OpenLoopPoint& p : open_loop) {
    std::printf("%12.0f %7s %12.1f %10.3f %10.3f %10.3f\n", p.offered_rps,
                p.batch > 0 ? std::to_string(p.batch).c_str() : "scalar",
                p.achieved_rps, p.p50_ms, p.p99_ms, p.mean_ms);
  }

  std::vector<ContendedPoint> contended;
  const int contended_total = quick ? 2048 : 8192;
  for (const std::string dispatcher : {"global", "stealing"}) {
    for (const int producers : {1, 2, 4, 8}) {
      contended.push_back(
          run_contended(dispatcher, producers, contended_total));
    }
  }
  // Batched dimension: the same producer pressure through submit_gemm_batch
  // at batch sizes 1/16/256.  Shape volume scales with the batch so each
  // point still measures a steady state rather than setup cost; `requests`
  // counts shapes, so req/s stays comparable with the scalar rows above.
  for (const std::string dispatcher : {"global", "stealing"}) {
    for (const int batch : {1, 16, 256}) {
      const int total =
          contended_total * (batch == 1 ? 1 : (batch == 16 ? 8 : 64));
      for (const int producers : {1, 2, 4, 8}) {
        contended.push_back(
            run_contended(dispatcher, producers, total, batch));
      }
    }
  }
  std::printf(
      "\ncontended submit (8 shards, analytic cost-only, distinct tenant "
      "per producer):\n");
  std::printf("%10s %9s %7s %10s %12s %14s\n", "dispatcher", "producers",
              "batch", "requests", "requests/s", "req/cpu-s");
  for (const ContendedPoint& p : contended) {
    std::printf("%10s %9d %7s %10lld %12.1f %14.1f\n", p.dispatcher.c_str(),
                p.producers,
                p.batch > 0 ? std::to_string(p.batch).c_str() : "scalar",
                static_cast<long long>(p.requests), p.requests_per_s(),
                p.requests_per_cpu_s());
  }

  // Capacity baseline for the overload sweep: the same GEMM the sweep
  // offers, served closed-loop at full tilt on the sweep's 2-shard layout.
  const Point capacity_point =
      run_point(/*shards=*/2, /*max_batch=*/8, /*clients=*/4,
                /*per_client=*/quick ? 50 : 200, "analytic",
                /*want_output=*/true, /*t=*/64, /*n=*/256, /*m=*/128);
  const double capacity_rps = capacity_point.requests_per_s();
  std::vector<OverloadPoint> overload;
  for (const std::string policy : serve::overload_policy_names()) {
    for (const double load_x : {0.5, 1.0, 2.0, 4.0}) {
      overload.push_back(run_overload(policy, capacity_rps, load_x, quick));
    }
  }
  std::printf(
      "\noverload sweep (2 shards, analytic full-output GEMM, capacity %.1f "
      "req/s):\n",
      capacity_rps);
  std::printf("%8s %7s %9s %9s %7s %9s %12s %9s %9s\n", "policy", "load",
              "offered", "admitted", "shed", "degraded", "goodput r/s",
              "p50 ms", "p99 ms");
  for (const OverloadPoint& p : overload) {
    std::printf("%8s %6.1fx %9lld %9lld %7lld %9lld %12.1f %9.3f %9.3f\n",
                p.policy.c_str(), p.load_x, static_cast<long long>(p.offered),
                static_cast<long long>(p.admitted),
                static_cast<long long>(p.shed),
                static_cast<long long>(p.degraded), p.goodput_rps, p.p50_ms,
                p.p99_ms);
  }

  std::vector<FleetPoint> fleet_sweep;
  const int fleet_per_client = quick ? 64 : 256;
  for (const int servers : {1, 2, 4}) {
    fleet_sweep.push_back(run_fleet_point(servers, /*kill_one=*/false,
                                          clients, fleet_per_client));
  }
  for (const int servers : {2, 4}) {
    fleet_sweep.push_back(run_fleet_point(servers, /*kill_one=*/true,
                                          clients, fleet_per_client));
  }
  std::printf(
      "\nfleet sweep (1 analytic shard per server, 4 clients, kill = "
      "server 0 dies mid-run):\n");
  std::printf("%8s %7s %9s %12s %9s %9s %10s %13s\n", "servers", "killed",
              "requests", "requests/s", "p50 ms", "p99 ms", "failovers",
              "resolved ok");
  for (const FleetPoint& p : fleet_sweep) {
    std::printf("%8d %7s %9lld %12.1f %9.3f %9.3f %10lld %13lld\n", p.servers,
                p.killed ? "yes" : "no", static_cast<long long>(p.requests),
                p.requests_per_s(), p.p50_ms, p.p99_ms,
                static_cast<long long>(p.failovers),
                static_cast<long long>(p.resolved_ok));
  }

  std::vector<MixPoint> transformer_mix;
  const int mix_sessions = quick ? 4 : 8;
  const struct {
    const char* label;
    int decode_per_prefill;
  } mixes[] = {{"1:0", 0}, {"1:8", 8}, {"1:32", 32}};
  for (const auto& mix : mixes) {
    for (const int k : {1, 2, 4}) {
      transformer_mix.push_back(run_transformer_mix(
          mix.label, "static-k" + std::to_string(k), k,
          mix.decode_per_prefill, mix_sessions));
    }
    for (const std::string policy : serve::reconfig_policy_names()) {
      transformer_mix.push_back(run_transformer_mix(
          mix.label, policy, /*static_k=*/0, mix.decode_per_prefill,
          mix_sessions));
    }
  }
  std::printf(
      "\ntransformer mix (1 shard 16x16, analytic, reconfig_cycles = 2048, "
      "%d sessions):\n",
      mix_sessions);
  std::printf("%6s %10s %9s %12s %12s %13s %9s %7s %8s %6s\n", "mix", "policy",
              "requests", "busy ms", "reconfig ms", "sim req/s", "mode_sw",
              "fused", "held", "p99");
  for (const MixPoint& p : transformer_mix) {
    std::printf("%6s %10s %9lld %12.3f %12.3f %13.1f %9lld %7lld %8lld %6.2f\n",
                p.mix.c_str(), p.policy.c_str(),
                static_cast<long long>(p.requests), p.busy_ms, p.reconfig_ms,
                p.sim_requests_per_s(),
                static_cast<long long>(p.mode_switches),
                static_cast<long long>(p.fused_runs),
                static_cast<long long>(p.holds), p.p99_ms);
  }
  // The subsystem's acceptance bar: on the decode-heavy mixes the hysteresis
  // policy must serve more requests per simulated second than the BEST
  // static mode — reconfiguration has to pay for its drains.
  for (const auto& mix : mixes) {
    if (mix.decode_per_prefill < 8) continue;
    double best_static = 0.0, sticky = 0.0;
    for (const MixPoint& p : transformer_mix) {
      if (p.mix != mix.label) continue;
      if (p.policy.rfind("static-", 0) == 0) {
        best_static = std::max(best_static, p.sim_requests_per_s());
      } else if (p.policy == "sticky") {
        sticky = p.sim_requests_per_s();
      }
    }
    std::printf("  mix %s: sticky %.1f vs best static %.1f sim req/s\n",
                mix.label, sticky, best_static);
    AF_CHECK(sticky > best_static,
             "sticky reconfiguration must beat every static mode on "
             "decode-heavy transformer mixes");
  }

  write_json(closed_loop, cmp, open_loop, contended, capacity_rps, overload,
             fleet_sweep, transformer_mix, "BENCH_serving.json");
  return 0;
}
