// PERF — multi-tenant serving layer throughput/latency tracker.
//
// Drives a serve::Server with 4 concurrent client threads submitting GEMM
// requests against shared stationary weights, across a (shard count x
// max batch) grid, and reports sustained requests/s plus wall-clock p50 /
// p99 / mean latency per point.  Batching wins show up twice: fewer fused
// hardware runs (weight preload amortized across coalesced requests) and
// fewer mode switches.  Results go to BENCH_serving.json so the serving
// layer's perf trajectory is tracked across PRs alongside
// BENCH_sim_throughput.json and BENCH_netlist_sim.json.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gemm/matrix.h"
#include "serve/server.h"
#include "util/rng.h"
#include "util/status.h"

namespace {

using namespace af;

struct Point {
  int shards = 1;
  int max_batch = 1;
  int clients = 0;
  std::int64_t requests = 0;
  double seconds = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double mean_ms = 0.0;
  std::int64_t fused_runs = 0;
  std::int64_t mode_switches = 0;
  double energy_pj = 0.0;
  double requests_per_s() const {
    return seconds > 0 ? static_cast<double>(requests) / seconds : 0.0;
  }
};

Point run_point(int shards, int max_batch, int clients, int per_client) {
  serve::ServerOptions opts;
  opts.num_shards = shards;
  opts.max_batch = max_batch;
  opts.queue_capacity = 512;
  serve::Server server(arch::ArrayConfig::square(16), opts);

  Rng weight_rng(2026);
  auto weights = std::make_shared<gemm::Mat32>(
      gemm::random_matrix(weight_rng, 64, 48, -40, 40));

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Rng rng(100 + static_cast<std::uint64_t>(c));
      // Each client keeps a window of requests in flight — a loaded
      // closed-loop workload, so the scheduler actually sees a backlog to
      // coalesce (a one-at-a-time client never exercises batching).
      constexpr int kWindow = 8;
      std::vector<std::future<serve::GemmResult>> in_flight;
      for (int i = 0; i < per_client; ++i) {
        // Alternate pipeline modes so batching also has mode switches to
        // save; every request shares the weight matrix, so same-mode
        // neighbours fuse.
        const int k = (i % 4 == 3) ? 2 : 1;
        in_flight.push_back(server.submit_gemm(
            "bench", gemm::random_matrix(rng, 8, 64, -40, 40), weights, k));
        if (in_flight.size() >= kWindow) {
          in_flight.front().get();
          in_flight.erase(in_flight.begin());
        }
      }
      for (auto& f : in_flight) f.get();
    });
  }
  for (auto& t : threads) t.join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const serve::ServerStats stats = server.stats();
  AF_CHECK(stats.completed == static_cast<std::int64_t>(clients) * per_client,
           "serving bench lost requests");
  Point p;
  p.shards = shards;
  p.max_batch = max_batch;
  p.clients = clients;
  p.requests = stats.completed;
  p.seconds = seconds;
  AF_CHECK(stats.tenants.size() == 1, "expected the single bench tenant");
  p.p50_ms = stats.tenants[0].p50_latency_ms;
  p.p99_ms = stats.tenants[0].p99_latency_ms;
  p.mean_ms = stats.tenants[0].mean_latency_ms;
  p.energy_pj = stats.tenants[0].energy_pj;
  for (const serve::ShardSnapshot& s : stats.shards) {
    p.fused_runs += s.fused_runs;
    p.mode_switches += s.mode_switches;
  }
  return p;
}

void write_json(const std::vector<Point>& points, const std::string& path) {
  std::ostringstream json;
  json << "{\n  \"bench\": \"serving\",\n  \"unit\": \"requests/s\",\n"
       << "  \"results\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    json << "    {\"shards\": " << p.shards
         << ", \"max_batch\": " << p.max_batch
         << ", \"clients\": " << p.clients
         << ", \"requests\": " << p.requests
         << ", \"seconds\": " << p.seconds
         << ", \"requests_per_s\": " << p.requests_per_s()
         << ", \"p50_ms\": " << p.p50_ms << ", \"p99_ms\": " << p.p99_ms
         << ", \"mean_ms\": " << p.mean_ms
         << ", \"fused_runs\": " << p.fused_runs
         << ", \"mode_switches\": " << p.mode_switches
         << ", \"energy_pj\": " << p.energy_pj << "}"
         << (i + 1 < points.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";

  std::ofstream out(path);
  if (!out) {
    std::cerr << "note: could not write " << path << "\n";
    return;
  }
  out << json.str();
  std::cout << "wrote " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  // --quick shrinks the request volume 4x for sanitized / smoke runs.
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
  }
  const int clients = 4;
  const int per_client = quick ? 16 : 64;

  std::vector<Point> points;
  for (const int shards : {1, 2, 4}) {
    for (const int max_batch : {1, 8}) {
      points.push_back(run_point(shards, max_batch, clients, per_client));
    }
  }

  std::printf("%7s %9s %8s %9s %12s %8s %8s %10s %12s\n", "shards",
              "max_batch", "clients", "requests", "requests/s", "p50 ms",
              "p99 ms", "fused", "mode_sw");
  for (const Point& p : points) {
    std::printf("%7d %9d %8d %9lld %12.1f %8.3f %8.3f %10lld %12lld\n",
                p.shards, p.max_batch, p.clients,
                static_cast<long long>(p.requests), p.requests_per_s(),
                p.p50_ms, p.p99_ms, static_cast<long long>(p.fused_runs),
                static_cast<long long>(p.mode_switches));
  }

  write_json(points, "BENCH_serving.json");
  return 0;
}
