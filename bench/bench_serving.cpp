// PERF — multi-tenant serving layer throughput/latency tracker.
//
// Three studies, all recorded in BENCH_serving.json so the serving layer's
// perf trajectory is tracked across PRs alongside BENCH_sim_throughput.json
// and BENCH_netlist_sim.json:
//
//   1. closed_loop — 4 concurrent client threads with a bounded in-flight
//      window across a (shard count x max batch) grid: sustained requests/s
//      plus wall-clock p50/p99/mean latency per point.  Batching wins show
//      up twice: fewer fused hardware runs (weight preload amortized) and
//      fewer mode switches.
//
//   2. backend_comparison — the engine facade's fidelity/throughput trade
//      at equal shard count: the same cost-estimation workload
//      (want_output = false) served by the "analytic" backend vs the
//      "cycle" backend.  The analytic engine answers from closed forms
//      pinned exactly to the simulator, so the speedup is free fidelity-
//      wise; the ratio is the headline number the engine redesign exists
//      for (expected: well above 50x).
//
//   3. open_loop — a Poisson arrival-rate sweep (open loop: the generator
//      never waits for completions), producing the saturation curve of
//      offered load vs achieved throughput and p50/p99 latency.  Below
//      saturation p99 stays flat; past it the queue fills, the bounded
//      queue throttles the generator, and latency explodes — the classic
//      hockey stick.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <deque>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gemm/matrix.h"
#include "serve/server.h"
#include "util/rng.h"
#include "util/status.h"

namespace {

using namespace af;

// ---- 1. closed-loop grid ---------------------------------------------------

struct Point {
  int shards = 1;
  int max_batch = 1;
  int clients = 0;
  std::string backend;
  std::int64_t requests = 0;
  double seconds = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double mean_ms = 0.0;
  std::int64_t fused_runs = 0;
  std::int64_t mode_switches = 0;
  double energy_pj = 0.0;
  double requests_per_s() const {
    return seconds > 0 ? static_cast<double>(requests) / seconds : 0.0;
  }
};

Point run_point(int shards, int max_batch, int clients, int per_client,
                const std::string& backend, bool want_output,
                std::int64_t t_rows = 8, std::int64_t n = 64,
                std::int64_t m = 48) {
  serve::ServerOptions opts;
  opts.num_shards = shards;
  opts.max_batch = max_batch;
  opts.queue_capacity = 512;
  opts.backend = backend;
  // Serving latencies here are sub-millisecond: a tight histogram range
  // keeps the p50/p99 buckets meaningfully narrow (~24 us).
  opts.latency_hist_max_ms = 100.0;
  serve::Server server(arch::ArrayConfig::square(16), opts);

  Rng weight_rng(2026);
  auto weights = std::make_shared<gemm::Mat32>(
      gemm::random_matrix(weight_rng, n, m, -40, 40));

  // Activations come from a small pre-generated pool: per-request RNG
  // would throttle the client loop and understate the fast backends.
  Rng act_rng(7007);
  std::vector<gemm::Mat32> activation_pool;
  for (int i = 0; i < 8; ++i) {
    activation_pool.push_back(gemm::random_matrix(act_rng, t_rows, n, -40, 40));
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      // Each client keeps a window of requests in flight — a loaded
      // closed-loop workload, so the scheduler actually sees a backlog to
      // coalesce (a one-at-a-time client never exercises batching).
      constexpr int kWindow = 8;
      std::vector<std::future<serve::GemmResult>> in_flight;
      for (int i = 0; i < per_client; ++i) {
        // Alternate pipeline modes so batching also has mode switches to
        // save; every request shares the weight matrix, so same-mode
        // neighbours fuse.
        const int k = (i % 4 == 3) ? 2 : 1;
        in_flight.push_back(server.submit_gemm(
            "bench",
            activation_pool[static_cast<std::size_t>((c + i) % 8)], weights,
            k, want_output));
        if (in_flight.size() >= kWindow) {
          in_flight.front().get();
          in_flight.erase(in_flight.begin());
        }
      }
      for (auto& f : in_flight) f.get();
    });
  }
  for (auto& t : threads) t.join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const serve::ServerStats stats = server.stats();
  AF_CHECK(stats.completed == static_cast<std::int64_t>(clients) * per_client,
           "serving bench lost requests");
  Point p;
  p.shards = shards;
  p.max_batch = max_batch;
  p.clients = clients;
  p.backend = backend;
  p.requests = stats.completed;
  p.seconds = seconds;
  AF_CHECK(stats.tenants.size() == 1, "expected the single bench tenant");
  p.p50_ms = stats.tenants[0].p50_latency_ms;
  p.p99_ms = stats.tenants[0].p99_latency_ms;
  p.mean_ms = stats.tenants[0].mean_latency_ms;
  p.energy_pj = stats.tenants[0].energy_pj;
  for (const serve::ShardSnapshot& s : stats.shards) {
    p.fused_runs += s.fused_runs;
    p.mode_switches += s.mode_switches;
  }
  return p;
}

// ---- 2. analytic vs cycle at equal shard count -----------------------------

struct BackendComparison {
  Point analytic;
  Point cycle;
  double speedup() const {
    return cycle.requests_per_s() > 0
               ? analytic.requests_per_s() / cycle.requests_per_s()
               : 0.0;
  }
};

BackendComparison run_backend_comparison(bool quick) {
  // Cost-estimation traffic (want_output = false) on a heavier GEMM, so
  // the cycle backend pays full simulation while the analytic backend
  // answers from closed forms.  Equal shard count on both sides.
  const int shards = 2;
  const int clients = 2;
  BackendComparison cmp;
  cmp.analytic = run_point(shards, /*max_batch=*/1, clients,
                           /*per_client=*/quick ? 500 : 2000, "analytic",
                           /*want_output=*/false, /*t=*/64, /*n=*/256,
                           /*m=*/128);
  cmp.cycle = run_point(shards, /*max_batch=*/1, clients,
                        /*per_client=*/quick ? 6 : 16, "cycle",
                        /*want_output=*/false, /*t=*/64, /*n=*/256,
                        /*m=*/128);
  return cmp;
}

// ---- 3. open-loop Poisson arrival sweep ------------------------------------

struct OpenLoopPoint {
  double offered_rps = 0.0;
  std::int64_t requests = 0;
  double seconds = 0.0;
  double achieved_rps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double mean_ms = 0.0;
};

OpenLoopPoint run_open_loop(double offered_rps, int total_requests) {
  serve::ServerOptions opts;
  opts.num_shards = 2;
  opts.max_batch = 8;
  opts.queue_capacity = 1024;
  opts.backend = "analytic";
  opts.latency_hist_max_ms = 100.0;  // see run_point
  serve::Server server(arch::ArrayConfig::square(16), opts);

  Rng weight_rng(31);
  auto weights = std::make_shared<gemm::Mat32>(
      gemm::random_matrix(weight_rng, 64, 48, -40, 40));

  Rng rng(9000);
  std::vector<gemm::Mat32> activation_pool;
  for (int i = 0; i < 8; ++i) {
    activation_pool.push_back(gemm::random_matrix(rng, 8, 64, -40, 40));
  }
  std::deque<std::future<serve::GemmResult>> in_flight;
  const auto t0 = std::chrono::steady_clock::now();
  auto next_arrival = t0;
  for (int i = 0; i < total_requests; ++i) {
    // Exponential inter-arrival gap: -ln(1 - U) / rate seconds.
    const double gap_s =
        -std::log(1.0 - rng.next_double()) / offered_rps;
    next_arrival +=
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(gap_s));
    std::this_thread::sleep_until(next_arrival);
    // Open loop: submit without waiting.  (Once the bounded queue fills —
    // past saturation — submit_gemm itself blocks; that back-pressure IS
    // the saturation signal and caps the achieved rate.)
    in_flight.push_back(server.submit_gemm(
        "openloop", activation_pool[static_cast<std::size_t>(i % 8)], weights,
        /*k=*/0, /*want_output=*/false));
    while (!in_flight.empty() &&
           in_flight.front().wait_for(std::chrono::seconds(0)) ==
               std::future_status::ready) {
      in_flight.front().get();
      in_flight.pop_front();
    }
  }
  for (auto& f : in_flight) f.get();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const serve::ServerStats stats = server.stats();
  OpenLoopPoint p;
  p.offered_rps = offered_rps;
  p.requests = stats.completed;
  p.seconds = seconds;
  p.achieved_rps =
      seconds > 0 ? static_cast<double>(stats.completed) / seconds : 0.0;
  AF_CHECK(stats.tenants.size() == 1, "expected the single open-loop tenant");
  p.p50_ms = stats.tenants[0].p50_latency_ms;
  p.p99_ms = stats.tenants[0].p99_latency_ms;
  p.mean_ms = stats.tenants[0].mean_latency_ms;
  return p;
}

// ---- JSON ------------------------------------------------------------------

void append_point(std::ostringstream& json, const Point& p, bool last) {
  json << "    {\"shards\": " << p.shards << ", \"max_batch\": " << p.max_batch
       << ", \"clients\": " << p.clients << ", \"backend\": \"" << p.backend
       << "\", \"requests\": " << p.requests << ", \"seconds\": " << p.seconds
       << ", \"requests_per_s\": " << p.requests_per_s()
       << ", \"p50_ms\": " << p.p50_ms << ", \"p99_ms\": " << p.p99_ms
       << ", \"mean_ms\": " << p.mean_ms << ", \"fused_runs\": " << p.fused_runs
       << ", \"mode_switches\": " << p.mode_switches
       << ", \"energy_pj\": " << p.energy_pj << "}" << (last ? "" : ",")
       << "\n";
}

void write_json(const std::vector<Point>& closed_loop,
                const BackendComparison& cmp,
                const std::vector<OpenLoopPoint>& open_loop,
                const std::string& path) {
  std::ostringstream json;
  json << "{\n  \"bench\": \"serving\",\n  \"unit\": \"requests/s\",\n"
       << "  \"results\": [\n";
  for (std::size_t i = 0; i < closed_loop.size(); ++i) {
    append_point(json, closed_loop[i], i + 1 == closed_loop.size());
  }
  json << "  ],\n  \"backend_comparison\": {\n    \"analytic\": [\n";
  append_point(json, cmp.analytic, true);
  json << "    ],\n    \"cycle\": [\n";
  append_point(json, cmp.cycle, true);
  json << "    ],\n    \"analytic_vs_cycle_speedup\": " << cmp.speedup()
       << "\n  },\n  \"open_loop\": [\n";
  for (std::size_t i = 0; i < open_loop.size(); ++i) {
    const OpenLoopPoint& p = open_loop[i];
    json << "    {\"offered_rps\": " << p.offered_rps
         << ", \"requests\": " << p.requests << ", \"seconds\": " << p.seconds
         << ", \"achieved_rps\": " << p.achieved_rps
         << ", \"p50_ms\": " << p.p50_ms << ", \"p99_ms\": " << p.p99_ms
         << ", \"mean_ms\": " << p.mean_ms << "}"
         << (i + 1 < open_loop.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";

  std::ofstream out(path);
  if (!out) {
    std::cerr << "note: could not write " << path << "\n";
    return;
  }
  out << json.str();
  std::cout << "wrote " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  // --quick shrinks the request volume 4x for sanitized / smoke runs.
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
  }
  const int clients = 4;
  const int per_client = quick ? 16 : 64;

  std::vector<Point> closed_loop;
  for (const int shards : {1, 2, 4}) {
    for (const int max_batch : {1, 8}) {
      closed_loop.push_back(run_point(shards, max_batch, clients, per_client,
                                      "analytic", /*want_output=*/true));
    }
  }

  std::printf("closed loop (backend: analytic)\n");
  std::printf("%7s %9s %8s %9s %12s %8s %8s %10s %12s\n", "shards",
              "max_batch", "clients", "requests", "requests/s", "p50 ms",
              "p99 ms", "fused", "mode_sw");
  for (const Point& p : closed_loop) {
    std::printf("%7d %9d %8d %9lld %12.1f %8.3f %8.3f %10lld %12lld\n",
                p.shards, p.max_batch, p.clients,
                static_cast<long long>(p.requests), p.requests_per_s(),
                p.p50_ms, p.p99_ms, static_cast<long long>(p.fused_runs),
                static_cast<long long>(p.mode_switches));
  }

  const BackendComparison cmp = run_backend_comparison(quick);
  std::printf(
      "\nbackend comparison (cost-estimation traffic, %d shards):\n"
      "  analytic: %10.1f req/s\n  cycle:    %10.1f req/s\n"
      "  speedup:  %10.1fx\n",
      cmp.analytic.shards, cmp.analytic.requests_per_s(),
      cmp.cycle.requests_per_s(), cmp.speedup());

  std::vector<OpenLoopPoint> open_loop;
  for (const double rate : {500.0, 2000.0, 8000.0, 32000.0, 128000.0}) {
    const int total = std::min(
        quick ? 2000 : 8000, std::max(200, static_cast<int>(rate / 4)));
    open_loop.push_back(run_open_loop(rate, total));
  }
  std::printf("\nopen loop (Poisson arrivals, analytic backend, 2 shards):\n");
  std::printf("%12s %12s %10s %10s %10s\n", "offered r/s", "achieved r/s",
              "p50 ms", "p99 ms", "mean ms");
  for (const OpenLoopPoint& p : open_loop) {
    std::printf("%12.0f %12.1f %10.3f %10.3f %10.3f\n", p.offered_rps,
                p.achieved_rps, p.p50_ms, p.p99_ms, p.mean_ms);
  }

  write_json(closed_loop, cmp, open_loop, "BENCH_serving.json");
  return 0;
}
