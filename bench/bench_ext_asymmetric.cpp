// EXT — Asymmetric pipeline collapse (independent k_v / k_h).
//
// The paper's PEs already carry two independent configuration bits (Section
// III-B) but the evaluation only exercises the diagonal k_v == k_h.  Because
// horizontal collapse costs only bypass-mux delay ("column collapsing only
// affects the delay marginally", Section III-A) while vertical collapse pays
// a CSA + mux per stage, the off-diagonal schedule recovers extra time.
// This bench quantifies that headroom over the paper's symmetric scheme on
// the ConvNeXt layer shapes.

#include <iostream>

#include "arch/clocking.h"
#include "arch/optimizer.h"
#include "nn/mapper.h"
#include "nn/models.h"
#include "sim/report.h"
#include "util/strings.h"
#include "util/table.h"

using namespace af;

int main() {
  const arch::AnalyticClockModel clock = arch::AnalyticClockModel::paper_fit();
  const arch::ArrayConfig cfg = arch::ArrayConfig::square(128);
  const arch::AsymmetricOptimizer opt(cfg, clock.profile(),
                                      clock.conventional_period_ps());

  std::cout << "Extension: independent horizontal/vertical collapse on "
            << cfg.to_string() << "\n(clock: Eq. 5 generalized to "
               "Tclock(k_v,k_h) = base + k_v(dCSA+dmux) + k_h dmux)\n\n";

  std::cout << sim::banner("Representative layer shapes");
  Table table({"workload (M,N,T)", "sym (k,k)", "sym time", "asym (k_v,k_h)",
               "asym time", "extra savings"});
  table.set_align(0, Table::Align::kLeft);

  struct Case {
    const char* name;
    gemm::GemmShape shape;
  };
  const std::vector<Case> cases = {
      {"ConvNeXt stage 1", {384, 96, 3136}},
      {"ConvNeXt stage 2", {768, 192, 784}},
      {"ConvNeXt stage 3", {1536, 384, 196}},
      {"ConvNeXt stage 4", {3072, 768, 49}},
      {"ResNet-34 layer 28", {512, 2304, 49}},
      {"MobileNet fc", {1000, 1024, 1}},
  };
  for (const auto& c : cases) {
    const arch::AsymmetricDecision sym = opt.best_symmetric(c.shape);
    const arch::AsymmetricDecision asym = opt.best(c.shape);
    table.add_row(
        {format("%s (%lld,%lld,%lld)", c.name,
                static_cast<long long>(c.shape.m),
                static_cast<long long>(c.shape.n),
                static_cast<long long>(c.shape.t)),
         format("(%d,%d)", sym.k_v, sym.k_h), format_time_ps(sym.time_ps),
         format("(%d,%d)", asym.k_v, asym.k_h), format_time_ps(asym.time_ps),
         percent(1.0 - asym.time_ps / sym.time_ps, 2)});
  }
  std::cout << table;

  // Whole-network effect on ConvNeXt.
  double sym_total = 0.0, asym_total = 0.0, conv_total = 0.0;
  for (const nn::Layer& layer : nn::convnext_tiny().layers) {
    const gemm::GemmShape shape = nn::gemm_shape(layer);
    sym_total += opt.best_symmetric(shape).time_ps;
    asym_total += opt.best(shape).time_ps;
    conv_total += opt.conventional_time_ps(shape);
  }
  std::cout << format(
      "\nConvNeXt end-to-end: conventional %s; symmetric ArrayFlex %s "
      "(%s saved);\nasymmetric ArrayFlex %s (%s saved, %s over symmetric)\n",
      format_time_ps(conv_total).c_str(), format_time_ps(sym_total).c_str(),
      percent(1.0 - sym_total / conv_total).c_str(),
      format_time_ps(asym_total).c_str(),
      percent(1.0 - asym_total / conv_total).c_str(),
      percent(1.0 - asym_total / sym_total).c_str());
  std::cout << "\nThe cycle-accurate simulator validates every (k_v, k_h) "
               "schedule bit-exactly\n(tests/arch_asymmetric_test.cpp).\n";
  return 0;
}
