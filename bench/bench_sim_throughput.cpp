// PERF — google-benchmark microbenchmarks of the cycle-accurate simulator
// and the gate-level infrastructure (methodology sanity; not a paper
// figure).  Useful for keeping the simulator fast enough for the
// property-test sweeps.

#include <benchmark/benchmark.h>

#include "arch/array.h"
#include "arch/latency.h"
#include "gemm/reference.h"
#include "hw/builders/multiplier.h"
#include "hw/netlist.h"
#include "hw/netlist_sim.h"
#include "hw/sta.h"
#include "util/rng.h"

namespace {

using namespace af;

arch::ArrayConfig config_for(int side) {
  arch::ArrayConfig cfg;
  cfg.rows = cfg.cols = side;
  cfg.supported_k = {1, 2, 4};
  cfg.validate();
  return cfg;
}

void BM_TileSimulation(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  const arch::ArrayConfig cfg = config_for(side);
  arch::SystolicArray array(cfg);
  Rng rng(1);
  const std::int64_t t = 32;
  const gemm::Mat32 a = gemm::random_matrix(rng, t, side, -100, 100);
  const gemm::Mat32 b = gemm::random_matrix(rng, side, side, -100, 100);
  std::int64_t macs = 0;
  for (auto _ : state) {
    gemm::Mat64 acc(t, side);
    const arch::TileRunStats stats = array.run_tile(a, b, k, &acc);
    macs += stats.activity.mult_ops;
    benchmark::DoNotOptimize(acc);
  }
  state.counters["MACs/s"] = benchmark::Counter(
      static_cast<double>(macs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TileSimulation)
    ->Args({16, 1})
    ->Args({16, 4})
    ->Args({32, 1})
    ->Args({32, 4})
    ->Args({64, 4});

void BM_ReferenceGemm(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(2);
  const gemm::Mat32 a = gemm::random_matrix(rng, 32, n, -100, 100);
  const gemm::Mat32 b = gemm::random_matrix(rng, n, n, -100, 100);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gemm::reference_gemm(a, b));
  }
}
BENCHMARK(BM_ReferenceGemm)->Arg(64)->Arg(128);

void BM_AnalyticLatencyModel(benchmark::State& state) {
  const arch::ArrayConfig cfg = config_for(128);
  std::int64_t sink = 0;
  for (auto _ : state) {
    for (const int k : {1, 2, 4}) {
      sink += arch::total_latency_cycles({512, 2304, 196}, cfg, k);
    }
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_AnalyticLatencyModel);

void BM_WallaceMultiplierBuild(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  for (auto _ : state) {
    hw::Netlist nl;
    const hw::Bus a = nl.new_bus(width);
    const hw::Bus b = nl.new_bus(width);
    benchmark::DoNotOptimize(hw::build_wallace_multiplier(nl, a, b));
    state.counters["cells"] = static_cast<double>(nl.num_cells());
  }
}
BENCHMARK(BM_WallaceMultiplierBuild)->Arg(8)->Arg(16)->Arg(32);

void BM_MultiplierNetlistSim(benchmark::State& state) {
  hw::Netlist nl;
  const hw::Bus a = nl.new_bus(32);
  const hw::Bus b = nl.new_bus(32);
  nl.bind_input("a", a);
  nl.bind_input("b", b);
  nl.bind_output("p", hw::build_wallace_multiplier(nl, a, b));
  hw::NetlistSim sim(nl);
  Rng rng(3);
  for (auto _ : state) {
    sim.set_input_u64("a", rng.next_u64() & 0xFFFFFFFFu);
    sim.set_input_u64("b", rng.next_u64() & 0xFFFFFFFFu);
    sim.eval();
    benchmark::DoNotOptimize(sim.get_u64("p"));
  }
}
BENCHMARK(BM_MultiplierNetlistSim);

void BM_StaOnMultiplier(benchmark::State& state) {
  hw::Netlist nl;
  const hw::Bus a = nl.new_bus(32);
  const hw::Bus b = nl.new_bus(32);
  nl.bind_input("a", a);
  nl.bind_input("b", b);
  nl.bind_output("p", hw::build_wallace_multiplier(nl, a, b));
  const hw::Technology tech;
  for (auto _ : state) {
    hw::Sta sta(nl, tech);
    benchmark::DoNotOptimize(sta.run().min_period_ps);
  }
}
BENCHMARK(BM_StaOnMultiplier);

}  // namespace

BENCHMARK_MAIN();
