// PERF — google-benchmark microbenchmarks of the cycle-accurate simulator
// and the gate-level infrastructure (methodology sanity; not a paper
// figure).  Useful for keeping the simulator fast enough for the
// property-test sweeps.
//
// Besides the google-benchmark suite, main() self-measures the tiled
// run_gemm path across {side, k, threads} and writes the MACs/s table to
// BENCH_sim_throughput.json so the simulator's perf trajectory is tracked
// across PRs.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "arch/array.h"
#include "arch/latency.h"
#include "engine/engine.h"
#include "gemm/reference.h"
#include "mem/tile_scheduler.h"
#include "hw/builders/multiplier.h"
#include "hw/netlist.h"
#include "hw/netlist_sim.h"
#include "hw/sta.h"
#include "sim/stats.h"
#include "util/rng.h"

namespace {

using namespace af;

arch::ArrayConfig config_for(int side, int num_threads = 1) {
  arch::ArrayConfig cfg;
  cfg.rows = cfg.cols = side;
  cfg.supported_k = {1, 2, 4};
  cfg.sim.num_threads = num_threads;
  cfg.validate();
  return cfg;
}

void BM_TileSimulation(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  const arch::ArrayConfig cfg = config_for(side);
  arch::SystolicArray array(cfg);
  Rng rng(1);
  const std::int64_t t = 32;
  const gemm::Mat32 a = gemm::random_matrix(rng, t, side, -100, 100);
  const gemm::Mat32 b = gemm::random_matrix(rng, side, side, -100, 100);
  std::int64_t macs = 0;
  for (auto _ : state) {
    gemm::Mat64 acc(t, side);
    const arch::TileRunStats stats = array.run_tile(a, b, k, &acc);
    macs += stats.activity.mult_ops;
    benchmark::DoNotOptimize(acc);
  }
  state.counters["MACs/s"] = benchmark::Counter(
      static_cast<double>(macs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TileSimulation)
    ->Args({16, 1})
    ->Args({16, 4})
    ->Args({32, 1})
    ->Args({32, 4})
    ->Args({64, 4});

// Tiled GEMM with tile-level parallelism: the output is cut into C-wide
// column stripes dispatched across SimOptions::num_threads workers.  The
// GEMM is sized to 8 column stripes so 1/2/4 threads all have work.
void BM_ThreadedGemm(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  const int threads = static_cast<int>(state.range(2));
  arch::SystolicArray array(config_for(side, threads));
  Rng rng(4);
  const std::int64_t t = 32;
  const gemm::Mat32 a = gemm::random_matrix(rng, t, 2 * side, -100, 100);
  const gemm::Mat32 b = gemm::random_matrix(rng, 2 * side, 8 * side, -100, 100);
  std::int64_t macs = 0;
  for (auto _ : state) {
    gemm::Mat64 out;
    const arch::TileRunStats stats = array.run_gemm(a, b, k, &out);
    macs += stats.activity.mult_ops;
    benchmark::DoNotOptimize(out);
  }
  state.counters["MACs/s"] = benchmark::Counter(
      static_cast<double>(macs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ThreadedGemm)
    ->Args({32, 1, 1})
    ->Args({32, 1, 2})
    ->Args({32, 1, 4})
    ->Args({32, 4, 1})
    ->Args({32, 4, 4})
    ->UseRealTime();

// The engine facade's fidelity knob, microbenchmarked: the same GEMM
// executed through engine::make("cycle") (full simulation) vs
// engine::make("analytic") with and without outputs.  cost-only analytic
// runs never touch the operands — that gap is the serving layer's
// orders-of-magnitude cost-estimation speedup (bench_serving measures it
// end to end).
void BM_EngineRunGemm(benchmark::State& state) {
  const bool analytic = state.range(0) != 0;
  const bool want_output = state.range(1) != 0;
  engine::EngineBuilder builder;
  builder.config(config_for(32));
  auto eng = builder.build(analytic ? "analytic" : "cycle");
  Rng rng(4);
  const gemm::Mat32 a = gemm::random_matrix(rng, 32, 64, -100, 100);
  const gemm::Mat32 b = gemm::random_matrix(rng, 64, 256, -100, 100);
  engine::GemmRequest request;
  request.a = &a;
  request.b = &b;
  request.k = 4;
  request.want_output = want_output;
  std::int64_t macs = 0;
  for (auto _ : state) {
    const engine::RunResult run = eng->run_gemm(request);
    macs += run.cost.activity.mult_ops;
    benchmark::DoNotOptimize(run.cost.energy_pj);
  }
  state.counters["MACs/s"] = benchmark::Counter(
      static_cast<double>(macs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EngineRunGemm)
    ->ArgNames({"analytic", "out"})
    ->Args({0, 1})
    ->Args({1, 1})
    ->Args({1, 0});

void BM_ReferenceGemm(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(2);
  const gemm::Mat32 a = gemm::random_matrix(rng, 32, n, -100, 100);
  const gemm::Mat32 b = gemm::random_matrix(rng, n, n, -100, 100);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gemm::reference_gemm(a, b));
  }
}
BENCHMARK(BM_ReferenceGemm)->Arg(64)->Arg(128);

void BM_AnalyticLatencyModel(benchmark::State& state) {
  const arch::ArrayConfig cfg = config_for(128);
  std::int64_t sink = 0;
  for (auto _ : state) {
    for (const int k : {1, 2, 4}) {
      sink += arch::total_latency_cycles({512, 2304, 196}, cfg, k);
    }
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_AnalyticLatencyModel);

void BM_WallaceMultiplierBuild(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  for (auto _ : state) {
    hw::Netlist nl;
    const hw::Bus a = nl.new_bus(width);
    const hw::Bus b = nl.new_bus(width);
    benchmark::DoNotOptimize(hw::build_wallace_multiplier(nl, a, b));
    state.counters["cells"] = static_cast<double>(nl.num_cells());
  }
}
BENCHMARK(BM_WallaceMultiplierBuild)->Arg(8)->Arg(16)->Arg(32);

void BM_MultiplierNetlistSim(benchmark::State& state) {
  hw::Netlist nl;
  const hw::Bus a = nl.new_bus(32);
  const hw::Bus b = nl.new_bus(32);
  nl.bind_input("a", a);
  nl.bind_input("b", b);
  nl.bind_output("p", hw::build_wallace_multiplier(nl, a, b));
  hw::NetlistSim sim(nl);
  Rng rng(3);
  for (auto _ : state) {
    sim.set_input_u64("a", rng.next_u64() & 0xFFFFFFFFu);
    sim.set_input_u64("b", rng.next_u64() & 0xFFFFFFFFu);
    sim.eval();
    benchmark::DoNotOptimize(sim.get_u64("p"));
  }
}
BENCHMARK(BM_MultiplierNetlistSim);

void BM_StaOnMultiplier(benchmark::State& state) {
  hw::Netlist nl;
  const hw::Bus a = nl.new_bus(32);
  const hw::Bus b = nl.new_bus(32);
  nl.bind_input("a", a);
  nl.bind_input("b", b);
  nl.bind_output("p", hw::build_wallace_multiplier(nl, a, b));
  const hw::Technology tech;
  for (auto _ : state) {
    hw::Sta sta(nl, tech);
    benchmark::DoNotOptimize(sta.run().min_period_ps);
  }
}
BENCHMARK(BM_StaOnMultiplier);

// ---- JSON perf tracker -----------------------------------------------------

struct ThroughputPoint {
  int side;
  int k;
  int threads;
  sim::RunningStat macs_per_s;  // one sample per repetition
};

// One simulated roofline point: the analytic engine evaluated with the
// memory hierarchy at `bytes_per_cycle` of DRAM bandwidth.
struct RooflinePoint {
  double factor;  // multiple of the compute-balanced bandwidth
  std::int64_t bytes_per_cycle;
  std::int64_t cycles;
  std::int64_t stall_cycles;
  std::int64_t dram_bytes;
  double macs_per_cycle;
};

// Bandwidth sweep from 0.25x to 8x of the compute-balanced point (the
// bytes/cycle at which streaming the compulsory A+B+C traffic takes
// exactly as long as the compute).  Below 1x the stream is the makespan
// and stalls dominate (the bandwidth roof); above it the memory model
// costs nothing (the compute roof) — the JSON section pins that knee so
// perf tracking can see the memory model drifting.
std::vector<RooflinePoint> roofline_sweep() {
  const gemm::GemmShape shape{256, 256, 64};
  arch::ArrayConfig cfg = config_for(32);
  const std::int64_t compute = arch::total_latency_cycles(shape, cfg, 4);
  const std::int64_t compulsory = mem::projected_gemm_bytes(shape, cfg);
  const std::int64_t balanced =
      std::max<std::int64_t>(1, (compulsory + compute - 1) / compute);
  const std::int64_t macs = shape.t * shape.n * shape.m;
  std::vector<RooflinePoint> points;
  for (const double factor : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    cfg.mem.enabled = true;
    cfg.mem.spad_bytes = std::int64_t{1} << 18;  // 256 KiB
    cfg.mem.dram_bytes_per_cycle = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(factor * static_cast<double>(balanced)));
    cfg.mem.dram_latency_cycles = 64;
    engine::EngineBuilder builder;
    builder.config(cfg);
    const engine::CostEstimate cost =
        builder.build("analytic")->evaluate(shape, 4);
    points.push_back({factor, cfg.mem.dram_bytes_per_cycle, cost.cycles,
                      cost.stall_cycles, cost.dram_bytes,
                      static_cast<double>(macs) /
                          static_cast<double>(cost.cycles)});
  }
  return points;
}

// Self-measured MACs/s sweep over {side, k, threads} on the threaded
// cycle-accurate path — driven through the engine facade, like every other
// consumer since the API redesign — written as BENCH_sim_throughput.json
// (silently skipped on read-only checkouts, like sim::CsvReport).
void write_throughput_json(const std::string& path) {
  std::vector<ThroughputPoint> points;
  sim::RunningStat overall;
  for (const int side : {16, 32}) {
    for (const int k : {1, 4}) {
      for (const int threads : {1, 2, 4}) {
        engine::EngineBuilder builder;
        builder.config(config_for(side, threads));
        auto eng = builder.build("cycle");
        Rng rng(7);
        const std::int64_t t = 32;
        const gemm::Mat32 a = gemm::random_matrix(rng, t, 2 * side, -100, 100);
        const gemm::Mat32 b =
            gemm::random_matrix(rng, 2 * side, 8 * side, -100, 100);
        engine::GemmRequest request;
        request.a = &a;
        request.b = &b;
        request.k = k;
        ThroughputPoint p{side, k, threads, {}};
        for (int rep = 0; rep < 3; ++rep) {
          const auto t0 = std::chrono::steady_clock::now();
          const engine::RunResult run = eng->run_gemm(request);
          const auto t1 = std::chrono::steady_clock::now();
          const double secs = std::chrono::duration<double>(t1 - t0).count();
          if (secs > 0) {
            p.macs_per_s.add(
                static_cast<double>(run.cost.activity.mult_ops) / secs);
          }
        }
        overall.merge(p.macs_per_s);
        points.push_back(std::move(p));
      }
    }
  }

  std::ostringstream json;
  json << "{\n  \"bench\": \"sim_throughput\",\n  \"unit\": \"MACs/s\",\n"
       << "  \"hardware_threads\": " << std::thread::hardware_concurrency()
       << ",\n"
       << "  \"results\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const ThroughputPoint& p = points[i];
    json << "    {\"side\": " << p.side << ", \"k\": " << p.k
         << ", \"threads\": " << p.threads
         << ", \"macs_per_s\": " << p.macs_per_s.mean()
         << ", \"best_macs_per_s\": " << p.macs_per_s.max()
         << ", \"stddev\": " << p.macs_per_s.stddev()
         << ", \"reps\": " << p.macs_per_s.count() << "}"
         << (i + 1 < points.size() ? "," : "") << "\n";
  }
  const std::vector<RooflinePoint> roofline = roofline_sweep();
  json << "  ],\n  \"roofline\": [\n";
  for (std::size_t i = 0; i < roofline.size(); ++i) {
    const RooflinePoint& p = roofline[i];
    json << "    {\"bandwidth_factor\": " << p.factor
         << ", \"dram_bytes_per_cycle\": " << p.bytes_per_cycle
         << ", \"cycles\": " << p.cycles
         << ", \"stall_cycles\": " << p.stall_cycles
         << ", \"dram_bytes\": " << p.dram_bytes
         << ", \"macs_per_cycle\": " << p.macs_per_cycle << "}"
         << (i + 1 < roofline.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"overall_mean_macs_per_s\": " << overall.mean() << "\n}\n";

  std::ofstream out(path);
  if (!out) {
    std::cerr << "note: could not write " << path << "\n";
    return;
  }
  out << json.str();
  std::cout << "wrote " << path << " (" << points.size()
            << " configs, overall mean " << overall.mean() << " MACs/s)\n";
}

}  // namespace

int main(int argc, char** argv) {
  // Listing/dry-run invocations shouldn't trigger the measurement sweep.
  bool list_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_list_tests", 0) == 0) {
      list_only = true;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!list_only) write_throughput_json("BENCH_sim_throughput.json");
  return 0;
}
