// FIG5 — Execution time vs. pipeline-collapse depth for ResNet-34 layers 20
// and 28 on a 132x132 array (paper Fig. 5).
//
// Paper setup: (R, C) = (132, 132) so k in {1, 2, 3, 4} all divide the
// geometry; layer 20 -> GEMM (M,N,T) = (256, 2304, 196); layer 28 ->
// (512, 2304, 49).  The conventional (non-configurable) SA runs the normal
// pipeline at the highest clock and appears as the flat reference line.
// The paper reports the minimum at k = 2 for layer 20 (k = 3 within ~1.5%
// under the Eq. 5 clock model — a documented near-tie) and k = 4 for
// layer 28.

#include <iostream>

#include "arch/latency.h"
#include "arch/optimizer.h"
#include "nn/mapper.h"
#include "nn/models.h"
#include "sim/report.h"
#include "util/strings.h"
#include "util/table.h"

using namespace af;

namespace {

void run_layer(const std::string& title, const gemm::GemmShape& shape,
               const arch::PipelineOptimizer& opt) {
  std::cout << sim::banner(title);
  std::cout << format("GEMM shape: M=%lld N=%lld T=%lld; tiles=%lld\n",
                      static_cast<long long>(shape.m),
                      static_cast<long long>(shape.n),
                      static_cast<long long>(shape.t),
                      static_cast<long long>(gemm::tile_count(shape, 132, 132)));

  const arch::ModeDecision conv = opt.conventional(shape);
  Table table({"config", "cycles", "clock (GHz)", "exec time", "vs conventional"});
  table.set_align(0, Table::Align::kLeft);
  table.add_row({"conventional SA", with_commas(conv.cycles),
                 fixed(1e3 / conv.period_ps, 2), format_time_ps(conv.time_ps),
                 "1.000x"});
  table.add_separator();
  for (const auto& entry : opt.sweep(shape)) {
    const arch::ModeDecision& d = entry.decision;
    table.add_row({format("ArrayFlex k=%d%s", d.k, entry.is_best ? " *" : ""),
                   with_commas(d.cycles), fixed(1e3 / d.period_ps, 2),
                   format_time_ps(d.time_ps),
                   format("%.3fx", d.time_ps / conv.time_ps)});
  }
  std::cout << table;
  const arch::ModeDecision best = opt.best_mode(shape);
  std::cout << format(
      "best mode: k=%d (continuous k-hat per Eq. 7: %.2f); savings vs "
      "conventional: %s\n\n",
      best.k, opt.continuous_k_hat(shape),
      percent(1.0 - best.time_ps / conv.time_ps).c_str());
}

}  // namespace

int main() {
  // Eq. 5 clock scaling, anchored to the paper's frequency table (the paper
  // never publishes a synthesized k = 3 clock; Fig. 5 scaled the clock per
  // configuration, which is exactly the Eq. 5 analytic model).
  const arch::AnalyticClockModel clock = arch::AnalyticClockModel::paper_fit();
  const arch::ArrayConfig cfg =
      arch::ArrayConfig::square_with_modes(132, {1, 2, 3, 4});
  const arch::PipelineOptimizer opt(cfg, clock);

  std::cout << "Reproduces paper Fig. 5 (DATE 2023).\n"
            << "Array: " << cfg.to_string() << "\n\n";

  // The shapes are taken from the model table and asserted against the
  // paper's published numbers in tests/nn_test.cpp.
  const nn::Model resnet = nn::resnet34();
  run_layer("Fig. 5(a): ResNet-34 layer 20",
            nn::gemm_shape(resnet.layers[19]), opt);
  run_layer("Fig. 5(b): ResNet-34 layer 28",
            nn::gemm_shape(resnet.layers[27]), opt);

  std::cout << "Paper reference: layer 20 minimized at k=2 (k=3 near-tied);\n"
               "layer 28 minimized at k=4; both beat the conventional SA.\n";
  return 0;
}
