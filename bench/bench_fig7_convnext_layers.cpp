// FIG7 — Per-layer execution time of ConvNeXt on 128x128 arrays (paper
// Fig. 7): conventional SA vs. ArrayFlex with the per-layer optimal
// pipeline depth.
//
// Paper narrative to reproduce: the first ~11 layers prefer the normal
// pipeline (conventional wins there on clock), the mid-network runs k = 2,
// layers 47-55 run k = 4; per-layer savings reach ~26% and the total is
// ~11%.

#include <iostream>

#include "arch/clocking.h"
#include "nn/models.h"
#include "nn/runner.h"
#include "sim/report.h"
#include "util/strings.h"
#include "util/table.h"

using namespace af;

int main() {
  const arch::CalibratedClockModel clock = arch::CalibratedClockModel::date23();
  const arch::ArrayConfig cfg = arch::ArrayConfig::square(128);
  const nn::InferenceRunner runner(cfg, clock);
  const nn::ModelReport report = runner.run(nn::convnext_tiny());

  std::cout << "Reproduces paper Fig. 7 (DATE 2023).\nArray: "
            << cfg.to_string() << "\n\n";
  std::cout << sim::banner("ConvNeXt-T per-layer execution time");

  Table table({"#", "layer", "kind", "M", "N", "T", "k-hat", "k", "conv time",
               "ArrayFlex", "savings"});
  table.set_align(1, Table::Align::kLeft);
  table.set_align(2, Table::Align::kLeft);
  sim::CsvReport csv({"layer", "name", "kind", "M", "N", "T", "k_hat", "k",
                      "conv_time_ps", "arrayflex_time_ps", "savings"});

  int index = 0;
  for (const auto& l : report.layers) {
    ++index;
    table.add_row({std::to_string(index), l.name,
                   nn::layer_kind_name(l.kind), std::to_string(l.shape.m),
                   std::to_string(l.shape.n), std::to_string(l.shape.t),
                   fixed(l.k_hat, 2), std::to_string(l.arrayflex.k),
                   format_time_ps(l.conventional.time_ps),
                   format_time_ps(l.arrayflex.time_ps),
                   percent(l.time_savings())});
    csv.add_row({std::to_string(index), l.name, nn::layer_kind_name(l.kind),
                 std::to_string(l.shape.m), std::to_string(l.shape.n),
                 std::to_string(l.shape.t), fixed(l.k_hat, 3),
                 std::to_string(l.arrayflex.k), fixed(l.conventional.time_ps, 0),
                 fixed(l.arrayflex.time_ps, 0), fixed(l.time_savings(), 4)});
  }
  std::cout << table;

  // Mode regions, as the paper describes them.
  int first_k2 = 0, first_k4 = 0;
  index = 0;
  for (const auto& l : report.layers) {
    ++index;
    if (l.arrayflex.k >= 2 && first_k2 == 0) first_k2 = index;
    if (l.arrayflex.k == 4 && first_k4 == 0) first_k4 = index;
  }
  double best = 0.0;
  for (const auto& l : report.layers) best = std::max(best, l.time_savings());

  std::cout << format(
      "\nmode regions: k=1 through layer %d; k=2 from layer %d; k=4 from "
      "layer %d (of %zu)\n",
      first_k2 - 1, first_k2, first_k4, report.layers.size());
  std::cout << format("max per-layer savings: %s   total savings: %s\n",
                      percent(best).c_str(),
                      percent(report.totals().latency_savings()).c_str());
  std::cout << "\nPaper reference: normal pipeline for the first 11 layers, "
               "k=2 for 12-46,\nk=4 for 47-55; savings per layer up to 26%, "
               "total 11%.\n";
  if (csv.write_to("fig7_convnext_layers.csv")) {
    std::cout << "(per-layer series written to fig7_convnext_layers.csv)\n";
  }
  return 0;
}
