// CLK — The clock-frequency table of the paper's Section IV, regenerated
// from three independent sources:
//   * the silicon-calibrated table (2.0 GHz conventional; 1.8/1.7/1.4 GHz
//     for ArrayFlex k = 1/2/4),
//   * the Eq. 5 analytic model fitted to the published endpoints,
//   * our own gate-level static timing analysis of generated PE netlists
//     (Wallace multiplier + Kogge-Stone CPA + CSA/bypass chain), globally
//     scaled so the conventional PE closes at the 2 GHz anchor.

#include <iostream>

#include "arch/clocking.h"
#include "hw/builders/pe_datapath.h"
#include "hw/netlist.h"
#include "hw/sta.h"
#include "sim/report.h"
#include "util/strings.h"
#include "util/table.h"

using namespace af;

int main() {
  std::cout << "Reproduces the Section IV clock table (DATE 2023).\n\n";

  const arch::CalibratedClockModel cal = arch::CalibratedClockModel::date23();
  const arch::AnalyticClockModel fit = arch::AnalyticClockModel::paper_fit();
  std::cout << "running gate-level STA on generated PE netlists...\n\n";
  const arch::StaClockModel sta(500.0);

  std::cout << sim::banner("Clock frequency (GHz) per configuration");
  Table table({"model", "conventional", "k=1", "k=2", "k=3", "k=4"});
  table.set_align(0, Table::Align::kLeft);
  const auto row = [&table](const std::string& name,
                            const arch::ClockModel& m) {
    table.add_row({name, fixed(m.conventional_frequency_ghz(), 2),
                   fixed(m.frequency_ghz(1), 2), fixed(m.frequency_ghz(2), 2),
                   fixed(m.frequency_ghz(3), 2), fixed(m.frequency_ghz(4), 2)});
  };
  table.add_row({"paper (28nm Cadence)", "2.00", "1.80", "1.70", "n/a", "1.40"});
  table.add_separator();
  row("calibrated table", cal);
  row("Eq. 5 paper-fit", fit);
  row("gate-level STA", sta);
  std::cout << table;

  std::cout << format(
      "\nSTA delay scale factor: %.4f (unscaled conventional PE: %.0f ps)\n",
      sta.delay_scale(), 500.0 / sta.delay_scale());
  std::cout << format(
      "Eq. 7 coefficients  — calibrated: base=%.1f ps, collapse=%.1f ps "
      "(ratio %.1f)\n                      — STA:        base=%.1f ps, "
      "collapse=%.1f ps (ratio %.1f)\n",
      cal.base_delay_ps(), cal.collapse_delay_ps(),
      cal.base_delay_ps() / cal.collapse_delay_ps(), sta.base_delay_ps(),
      sta.collapse_delay_ps(), sta.base_delay_ps() / sta.collapse_delay_ps());

  // Show the critical path of the k=2 collapsed column for flavor.
  hw::Netlist nl;
  hw::build_collapsed_column(nl, 2, true, {32, 64});
  hw::Technology tech;
  hw::Sta sta_engine(nl, tech);
  sta_engine.set_input_arrival_ps(tech.scaled_clk_to_q_ps());
  for (const auto& p : hw::collapsed_column_false_paths(2)) {
    sta_engine.add_false_path_prefix(p);
  }
  const hw::TimingReport report = sta_engine.run();
  std::cout << format("\nk=2 collapsed-column critical path (%zu stages, "
                      "endpoint %s):\n",
                      report.critical_path.size(), report.endpoint.c_str());
  const std::size_t n = report.critical_path.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i == 6 && n > 12) {
      std::cout << "  ...\n";
      continue;
    }
    if (i > 6 && i + 6 < n) continue;
    const auto& step = report.critical_path[i];
    std::cout << format("  %-42s %-6s @ %7.1f ps\n", step.cell_name.c_str(),
                        step.cell_type.c_str(), step.arrival_ps);
  }
  return 0;
}
