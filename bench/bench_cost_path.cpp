// PERF — cost-path microbenchmark: where does a cost query's time go?
//
// The serving benches (bench_serving) measure the cost path end to end,
// dispatch and completion plumbing included.  This bench isolates the
// layers so a regression is attributable:
//
//   evaluate_scalar     — the uncached virtual evaluate() loop: one closed-
//                         form Eq. 3/4/6 sweep per shape per call.  The
//                         pre-batching baseline.
//   evaluate_batch_cold — evaluate_batch() with the memo cache cleared
//                         before every call: the SoA two-pass kernel alone
//                         (contiguous shape arrays, no per-element virtual
//                         dispatch), no memoization help.
//   evaluate_batch      — evaluate_batch() in the serving steady state: the
//                         first call fills the cache, the rest answer from
//                         it.  This is the number the batched serving path
//                         rides on.
//   evaluate_cached     — the scalar memoized entry point (evaluate_cached)
//                         on a warm cache: per-call overhead of the sharded
//                         lookup itself.
//   submit_scalar       — Server::submit_gemm cost-only round trips: adds
//                         queue hop + promise/future per shape.
//   submit_batched      — Server::submit_gemm_batch at 256 shapes/call:
//                         one queue hop and one pooled completion slot per
//                         CALL instead of per shape.
//
// Writes BENCH_cost_path.json.  CI runs this as a smoke gate: the batched
// engine path must not lose to the scalar one (a generous >= 1.0x bar — the
// expected ratio is orders of magnitude — so scheduler noise on a loaded
// runner cannot flake the gate).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "engine/cost_cache.h"
#include "engine/engine.h"
#include "gemm/matrix.h"
#include "serve/server.h"
#include "util/rng.h"
#include "util/status.h"

namespace {

using namespace af;

struct Result {
  std::string mode;
  std::int64_t shapes = 0;  // shapes priced in the timed region (best trial)
  double seconds = 0.0;
  double shapes_per_s() const {
    return seconds > 0 ? static_cast<double>(shapes) / seconds : 0.0;
  }
};

// Randomized but reproducible shape set: the mix a serving admission loop
// sees, from skinny decode GEMMs to fat prefill tiles.
std::vector<gemm::GemmShape> make_shapes(int count, Rng& rng) {
  std::vector<gemm::GemmShape> shapes;
  shapes.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    shapes.push_back({/*m=*/rng.next_in(8, 256), /*n=*/rng.next_in(8, 256),
                      /*t=*/rng.next_in(1, 128)});
  }
  return shapes;
}

// Best-of-N wall-clock trials (see bench_serving's run_contended for the
// rationale: the best trial is the low-noise estimator on a shared runner).
template <typename Fn>
Result measure(const std::string& mode, std::int64_t shapes_per_trial,
               int trials, Fn&& body) {
  Result best;
  best.mode = mode;
  best.shapes = shapes_per_trial;
  for (int trial = 0; trial < trials; ++trial) {
    const auto t0 = std::chrono::steady_clock::now();
    body();
    const double s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (trial == 0 || s < best.seconds) best.seconds = s;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
  }
  const int kShapeCount = 256;
  const int kRepeats = quick ? 20 : 200;       // engine-level passes/trial
  const int kSubmitRepeats = quick ? 4 : 16;   // server round trips/trial
  const int kTrials = 3;

  Rng rng(20260808);
  const std::vector<gemm::GemmShape> shapes = make_shapes(kShapeCount, rng);
  const std::span<const gemm::GemmShape> span(shapes);
  const std::int64_t per_trial =
      static_cast<std::int64_t>(kShapeCount) * kRepeats;

  auto engine = engine::EngineBuilder().square(16).build("analytic");

  // Exact-equality spot check before any timing: the batched and cached
  // paths must return bit-identical estimates to the scalar virtual
  // evaluate(), per shape, argmin and fixed modes alike.
  for (const int k : {0, 1, 2, 4}) {
    const std::vector<engine::CostEstimate> batched =
        engine->evaluate_batch(span, k);
    for (std::size_t i = 0; i < shapes.size(); ++i) {
      AF_CHECK(engine::exactly_equal(batched[i], engine->evaluate(shapes[i], k)),
               "evaluate_batch diverged from scalar evaluate at shape " << i
                                                                        << " k="
                                                                        << k);
      AF_CHECK(
          engine::exactly_equal(engine->evaluate_cached(shapes[i], k),
                                engine->evaluate(shapes[i], k)),
          "evaluate_cached diverged from scalar evaluate at shape " << i);
    }
  }

  std::vector<Result> results;

  results.push_back(measure("evaluate_scalar", per_trial, kTrials, [&] {
    for (int r = 0; r < kRepeats; ++r) {
      for (const gemm::GemmShape& s : shapes) {
        volatile std::int64_t sink = engine->evaluate(s, 0).cycles;
        (void)sink;
      }
    }
  }));

  results.push_back(measure("evaluate_batch_cold", per_trial, kTrials, [&] {
    for (int r = 0; r < kRepeats; ++r) {
      engine->cost_cache()->clear();
      volatile std::int64_t sink = engine->evaluate_batch(span, 0)[0].cycles;
      (void)sink;
    }
  }));

  engine->evaluate_batch(span, 0);  // warm the memo once
  results.push_back(measure("evaluate_batch", per_trial, kTrials, [&] {
    for (int r = 0; r < kRepeats; ++r) {
      volatile std::int64_t sink = engine->evaluate_batch(span, 0)[0].cycles;
      (void)sink;
    }
  }));

  results.push_back(measure("evaluate_cached", per_trial, kTrials, [&] {
    for (int r = 0; r < kRepeats; ++r) {
      for (const gemm::GemmShape& s : shapes) {
        volatile std::int64_t sink = engine->evaluate_cached(s, 0).cycles;
        (void)sink;
      }
    }
  }));

  // Server round trips: same shape set through the dispatch layer, scalar
  // futures vs one pooled batch ticket per 256 shapes.  One submitter, two
  // shards — this isolates per-request plumbing, not lock contention
  // (bench_serving's contended study owns that axis).
  serve::ServerOptions opts;
  opts.num_shards = 2;
  opts.max_batch = 32;
  opts.queue_capacity = 1024;
  opts.backend = "analytic";
  const std::int64_t submit_per_trial =
      static_cast<std::int64_t>(kShapeCount) * kSubmitRepeats;
  {
    serve::Server server(arch::ArrayConfig::square(16), opts);
    Rng weight_rng(99);
    auto weights = std::make_shared<gemm::Mat32>(
        gemm::random_matrix(weight_rng, 32, 32, -40, 40));
    const gemm::Mat32 activation = gemm::random_matrix(weight_rng, 4, 32,
                                                       -40, 40);
    results.push_back(
        measure("submit_scalar", submit_per_trial, kTrials, [&] {
          constexpr std::size_t kWindow = 64;
          std::vector<std::future<serve::GemmResult>> in_flight;
          for (int r = 0; r < kSubmitRepeats; ++r) {
            for (int i = 0; i < kShapeCount; ++i) {
              in_flight.push_back(server.submit_gemm(
                  "bench", activation, weights, /*k=*/1,
                  /*want_output=*/false));
              if (in_flight.size() >= kWindow) {
                in_flight.front().get();
                in_flight.erase(in_flight.begin());
              }
            }
          }
          for (auto& f : in_flight) f.get();
        }));
  }
  {
    serve::Server server(arch::ArrayConfig::square(16), opts);
    results.push_back(
        measure("submit_batched", submit_per_trial, kTrials, [&] {
          constexpr std::size_t kWindow = 4;
          std::vector<serve::BatchTicket> in_flight;
          for (int r = 0; r < kSubmitRepeats; ++r) {
            in_flight.push_back(server.submit_gemm_batch("bench", span));
            if (in_flight.size() >= kWindow) {
              in_flight.front().get();
              in_flight.erase(in_flight.begin());
            }
          }
          for (auto& t : in_flight) t.get();
        }));
  }

  auto rate = [&](const std::string& mode) {
    for (const Result& r : results) {
      if (r.mode == mode) return r.shapes_per_s();
    }
    return 0.0;
  };

  std::printf("cost path (16x16 analytic, %d shapes, argmin k):\n",
              kShapeCount);
  std::printf("%20s %12s %12s %10s\n", "mode", "shapes", "shapes/s",
              "vs scalar");
  const double scalar = rate("evaluate_scalar");
  for (const Result& r : results) {
    std::printf("%20s %12lld %12.0f %9.1fx\n", r.mode.c_str(),
                static_cast<long long>(r.shapes), r.shapes_per_s(),
                scalar > 0 ? r.shapes_per_s() / scalar : 0.0);
  }

  // The smoke gates.  Both bars are deliberately loose (>= parity where the
  // expected win is 10-1000x) so the gate cannot flake under CI noise.
  AF_CHECK(rate("evaluate_batch") >= scalar,
           "batched evaluate lost to the scalar loop");
  AF_CHECK(rate("submit_batched") >= rate("submit_scalar"),
           "batched submit lost to scalar submit");

  std::ostringstream json;
  json << "{\n  \"bench\": \"cost_path\",\n  \"unit\": \"shapes/s\",\n"
       << "  \"shape_count\": " << kShapeCount << ",\n  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    json << "    {\"mode\": \"" << r.mode << "\", \"shapes\": " << r.shapes
         << ", \"seconds\": " << r.seconds
         << ", \"shapes_per_s\": " << r.shapes_per_s()
         << ", \"vs_scalar\": " << (scalar > 0 ? r.shapes_per_s() / scalar
                                               : 0.0)
         << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::ofstream out("BENCH_cost_path.json");
  if (!out) {
    std::cerr << "note: could not write BENCH_cost_path.json\n";
    return 0;
  }
  out << json.str();
  std::cout << "wrote BENCH_cost_path.json\n";
  return 0;
}
