// EQ7 — How well the closed-form continuous optimum k-hat (Eq. 7)
// approximates the exact discrete argmin of Tabs (Eq. 6).
//
// The paper: "the best pipeline organization per CNN layer is approximated
// fairly accurately (assuming continuous values) by Equation (7)."  This
// bench sweeps T across the realistic CNN range on both array sizes and
// reports where the two decisions agree.

#include <iostream>

#include "arch/clocking.h"
#include "arch/optimizer.h"
#include "sim/report.h"
#include "util/strings.h"
#include "util/table.h"

using namespace af;

int main() {
  const arch::CalibratedClockModel clock = arch::CalibratedClockModel::date23();
  std::cout << "Reproduces the Eq. 7 vs Eq. 6 comparison woven through "
               "Sections III-C and IV-A.\n\n";

  const std::vector<std::int64_t> t_values = {1,   16,  32,   49,   100,
                                              196, 400, 784,  1600, 3136,
                                              6272, 12544};
  for (const int side : {128, 256}) {
    const arch::ArrayConfig cfg = arch::ArrayConfig::square(side);
    const arch::PipelineOptimizer opt(cfg, clock);
    std::cout << sim::banner(format("%dx%d PEs", side, side));
    Table table({"T", "k-hat (Eq. 7)", "rounded", "argmin (Eq. 6)", "agree",
                 "penalty if rounded"});
    int agreements = 0;
    for (const std::int64_t t : t_values) {
      const gemm::GemmShape shape{side * 2, side * 4, t};
      const double k_hat = opt.continuous_k_hat(shape);
      const int rounded = opt.rounded_k_hat(shape);
      const arch::ModeDecision exact = opt.best_mode(shape);
      const bool agree = rounded == exact.k;
      agreements += agree ? 1 : 0;
      const double penalty =
          opt.evaluate(shape, rounded).time_ps / exact.time_ps - 1.0;
      table.add_row({std::to_string(t), fixed(k_hat, 2),
                     std::to_string(rounded), std::to_string(exact.k),
                     agree ? "yes" : "NO", percent(penalty, 2)});
    }
    std::cout << table;
    std::cout << format("agreement: %d/%zu shapes; the worst rounding "
                        "penalty above quantifies the cost of trusting "
                        "Eq. 7 alone\n\n",
                        agreements, t_values.size());
  }

  std::cout << "Paper reference: Eq. 7 approximates the per-layer optimum "
               "\"fairly accurately\";\nit also predicts higher k-hat for "
               "larger arrays, visible in the 256x256 sweep.\n";
  return 0;
}
