// FIG6 — Area of conventional vs. ArrayFlex PEs (paper Fig. 6).
//
// The paper shows placed layouts of 8x8-PE arrays and reports ~16% per-PE
// area overhead, attributed to the carry-save adder, the bypass multiplexers
// and the two configuration bits.  We rebuild both PEs gate-by-gate and sum
// standard-cell areas; a cell-area sum cannot see placement/routing overhead
// and utilization loss, so our figure is the lower "netlist area" bound
// (EXPERIMENTS.md discusses the gap).

#include <iostream>

#include "hw/area.h"
#include "hw/builders/pe_datapath.h"
#include "hw/netlist.h"
#include "sim/report.h"
#include "util/strings.h"
#include "util/table.h"

using namespace af;

int main() {
  std::cout << "Reproduces paper Fig. 6 (DATE 2023).\n\n";

  hw::Netlist conv, af_pe;
  hw::build_conventional_pe(conv, {32, 64});
  hw::build_arrayflex_pe(af_pe, {32, 64});
  const hw::AreaBreakdown conv_area = hw::compute_area(conv);
  const hw::AreaBreakdown af_area = hw::compute_area(af_pe);

  // Higher-fidelity variant: synthesis tools emit Booth-recoded multipliers
  // for 32-bit MACs, which shrinks the multiplier and makes the (fixed-size)
  // configurability hardware proportionally more expensive — closer to the
  // paper's placed-layout measurement.
  hw::PeDatapathOptions booth_opt;
  booth_opt.multiplier = hw::MultiplierStyle::kBooth;
  hw::Netlist conv_booth, af_booth;
  hw::build_conventional_pe(conv_booth, booth_opt);
  hw::build_arrayflex_pe(af_booth, booth_opt);
  const hw::AreaBreakdown convb_area = hw::compute_area(conv_booth);
  const hw::AreaBreakdown afb_area = hw::compute_area(af_booth);

  std::cout << sim::banner("Per-PE cell area (32-bit operands, 64-bit accumulation)");
  Table table({"design", "cells", "area (um^2)", "per 8x8 array (um^2)"});
  table.set_align(0, Table::Align::kLeft);
  const auto add = [&table](const char* name, const hw::AreaBreakdown& a) {
    table.add_row({name, with_commas(a.cell_count), fixed(a.total_um2, 1),
                   with_commas(static_cast<std::int64_t>(a.total_um2 * 64))});
  };
  add("conventional PE (Wallace mult)", conv_area);
  add("ArrayFlex PE (Wallace mult)", af_area);
  table.add_separator();
  add("conventional PE (Booth mult)", convb_area);
  add("ArrayFlex PE (Booth mult)", afb_area);
  std::cout << table;

  const double overhead = hw::area_overhead(conv_area, af_area);
  const double overhead_booth = hw::area_overhead(convb_area, afb_area);
  std::cout << format(
      "\nper-PE area overhead: %s (Wallace) / %s (Booth)   "
      "(paper, placed layout: ~16%%)\n\n",
      percent(overhead).c_str(), percent(overhead_booth).c_str());

  std::cout << sim::banner("ArrayFlex PE area by cell type");
  Table by_type({"cell type", "area (um^2)", "share"});
  by_type.set_align(0, Table::Align::kLeft);
  for (const auto& [type, um2] : af_area.by_cell_type_um2) {
    by_type.add_row({type, fixed(um2, 1), percent(um2 / af_area.total_um2)});
  }
  std::cout << by_type;

  // Where the overhead goes: everything the conventional PE lacks.
  const double mux_um2 = af_area.by_cell_type_um2.at("MUX2");
  const double icg_um2 = af_area.by_cell_type_um2.count("ICG")
                             ? af_area.by_cell_type_um2.at("ICG")
                             : 0.0;
  const double delta = af_area.total_um2 - conv_area.total_um2;
  std::cout << format(
      "\noverhead attribution: bypass muxes %.1f um^2, clock gates %.1f um^2,\n"
      "carry-save adder row + config bits %.1f um^2 (total delta %.1f um^2)\n",
      mux_um2, icg_um2, delta - mux_um2 - icg_um2, delta);
  std::cout << "\nPaper reference: \"area overhead per PE for this design is "
               "approximately 16%\";\nthe extra area is consumed by the "
               "carry-save adder and the bypass multiplexers.\n";
  return 0;
}
