// EXT — Sparse layers on ArrayFlex (the paper's Section V future work,
// implemented here as block-sparse tile skipping).
//
// Sweeps tile-level density on a representative late layer and reports how
// execution time scales for the conventional SA and each ArrayFlex mode.
// Two observations the paper's conclusion anticipates:
//   * tile skipping composes multiplicatively with pipeline collapse — the
//     relative ArrayFlex-vs-conventional savings is density-independent, so
//     the per-layer k decision (Eq. 6/7) survives pruning unchanged;
//   * the absolute benefit of deep collapse shrinks with density (fewer
//     tiles => less total time in which the faster drain matters).

#include <iostream>

#include "arch/clocking.h"
#include "arch/optimizer.h"
#include "arch/sparse.h"
#include "sim/report.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/table.h"

using namespace af;

int main() {
  const arch::CalibratedClockModel clock = arch::CalibratedClockModel::date23();
  const arch::ArrayConfig cfg = arch::ArrayConfig::square(128);
  const arch::PipelineOptimizer opt(cfg, clock);

  // ResNet-34 layer 28-style GEMM: the kind of late, small-T layer that
  // both pruning and deep collapse target.
  const gemm::GemmShape shape{512, 2304, 49};
  std::cout << "Extension: block-sparse execution of (M,N,T) = (512, 2304, 49) "
               "on "
            << cfg.to_string() << "\n\n";

  std::cout << sim::banner("Execution time vs tile-level density");
  Table table({"density", "nnz tiles", "conventional", "ArrayFlex k=2",
               "ArrayFlex k=4", "best k", "savings vs conv"});
  Rng rng(2211);
  for (const double density : {1.0, 0.8, 0.6, 0.4, 0.2}) {
    const arch::TileOccupancy occ = arch::TileOccupancy::synthetic(
        shape, cfg.rows, cfg.cols, density, rng);
    const auto time_ps = [&](int k, double period) {
      return static_cast<double>(
                 arch::sparse_total_latency_cycles(shape, cfg, k, occ)) *
             period;
    };
    const double conv = time_ps(1, clock.conventional_period_ps());
    const double af2 = time_ps(2, clock.period_ps(2));
    const double af4 = time_ps(4, clock.period_ps(4));
    const int best_k = af2 < af4 ? 2 : 4;
    const double best = std::min(af2, af4);
    table.add_row({fixed(density, 1), with_commas(occ.nonzero_tiles()),
                   format_time_ps(conv), format_time_ps(af2),
                   format_time_ps(af4), std::to_string(best_k),
                   percent(1.0 - best / conv)});
  }
  std::cout << table;
  std::cout
      << "\nreading: the ArrayFlex-vs-conventional ratio is constant across "
         "densities\n(both scale with nnz tiles), so pruning does not disturb "
         "the per-layer mode\nchoice — it stacks with it.  Cycle-accurate "
         "verification of the skipping\nsequencer lives in "
         "tests/arch_sparse_test.cpp.\n";
  return 0;
}
