// ABL1 — Ablation of the carry-save microarchitecture (paper Section III-B).
//
// The paper argues that collapsing pipeline stages naively would chain k
// carry-propagate adders and "to avoid this significant delay overhead ...
// we augment the PEs with an additional 3:2 carry-save stage".  This bench
// quantifies that claim with gate-level STA on both designs, then shows the
// end-to-end consequence: with the naive clock curve, shallow modes stop
// paying off and the optimizer falls back to k = 1.

#include <iostream>

#include "arch/clocking.h"
#include "arch/optimizer.h"
#include "hw/builders/pe_datapath.h"
#include "hw/netlist.h"
#include "hw/sta.h"
#include "sim/report.h"
#include "util/strings.h"
#include "util/table.h"

using namespace af;

namespace {

double collapsed_period_ps(int k, bool use_csa, double scale,
                           hw::CpaStyle cpa = hw::CpaStyle::kKoggeStone) {
  hw::Netlist nl;
  hw::PeDatapathOptions opt;
  opt.cpa = cpa;
  hw::build_collapsed_column(nl, k, use_csa, opt);
  hw::Technology tech;
  tech.delay_scale = scale;
  hw::Sta sta(nl, tech);
  sta.set_input_arrival_ps(tech.scaled_clk_to_q_ps());
  for (const auto& prefix : hw::collapsed_column_false_paths(k, use_csa)) {
    sta.add_false_path_prefix(prefix);
  }
  return sta.run().min_period_ps;
}

}  // namespace

int main() {
  std::cout << "Ablation: transparent pipelining WITH vs WITHOUT the 3:2 "
               "carry-save stage\n(paper Section III-B).\n\n";

  // Use the same global scale the STA clock model calibrates (conventional
  // PE at 500 ps).
  const arch::StaClockModel anchor(500.0);
  const double scale = anchor.delay_scale();

  std::cout << sim::banner("Collapsed-column minimum clock period (STA)");
  Table table({"k", "CSA design (ps)", "naive, Kogge-Stone CPA (ps)",
               "naive, ripple CPA (ps)"});
  std::map<int, double> csa_ps, naive_ps, ripple_ps;
  for (const int k : {1, 2, 3, 4}) {
    csa_ps[k] = collapsed_period_ps(k, true, scale);
    naive_ps[k] = collapsed_period_ps(k, false, scale);
    ripple_ps[k] =
        collapsed_period_ps(k, false, scale, hw::CpaStyle::kRipple);
    table.add_row({std::to_string(k), fixed(csa_ps[k], 1),
                   fixed(naive_ps[k], 1), fixed(ripple_ps[k], 1)});
  }
  std::cout << table;
  const double csa_slope = (csa_ps[4] - csa_ps[1]) / 3.0;
  const double naive_slope = (naive_ps[4] - naive_ps[1]) / 3.0;
  const double ripple_slope = (ripple_ps[4] - ripple_ps[1]) / 3.0;
  std::cout << format(
      "\nper-collapsed-stage cost (Eq. 5 slope): CSA %.1f ps; naive "
      "log-depth CPA %.1f ps\n(%.1fx worse); naive ripple CPA %.1f ps "
      "(%.1fx worse)\n\n",
      csa_slope, naive_slope, naive_slope / csa_slope, ripple_slope,
      ripple_slope / csa_slope);

  // End-to-end effect: feed both clock curves to the optimizer.
  const arch::ArrayConfig cfg = arch::ArrayConfig::square(128);
  arch::DelayProfile csa_profile;
  csa_profile.d_ff = 0;
  csa_profile.d_mul = csa_ps[1] - csa_slope;  // base folded into d_mul
  csa_profile.d_add = 0;
  csa_profile.d_csa = csa_slope;
  csa_profile.d_mux = 0;
  arch::DelayProfile naive_profile = csa_profile;
  naive_profile.d_mul = naive_ps[1] - naive_slope;
  naive_profile.d_csa = naive_slope;
  const arch::AnalyticClockModel csa_clock(csa_profile, 500.0);
  const arch::AnalyticClockModel naive_clock(naive_profile, 500.0);

  std::cout << sim::banner("Optimizer decisions under each clock curve");
  Table modes({"workload (M,N,T)", "CSA: best k", "CSA savings",
               "naive: best k", "naive savings"});
  modes.set_align(0, Table::Align::kLeft);
  const std::vector<gemm::GemmShape> shapes = {
      {256, 2304, 196}, {512, 2304, 49}, {768, 3072, 49}, {96, 48, 3136}};
  const arch::PipelineOptimizer csa_opt(cfg, csa_clock);
  const arch::PipelineOptimizer naive_opt(cfg, naive_clock);
  for (const auto& shape : shapes) {
    const auto csa_best = csa_opt.best_mode(shape);
    const auto naive_best = naive_opt.best_mode(shape);
    modes.add_row(
        {format("(%lld, %lld, %lld)", static_cast<long long>(shape.m),
                static_cast<long long>(shape.n),
                static_cast<long long>(shape.t)),
         std::to_string(csa_best.k),
         percent(1.0 - csa_best.time_ps / csa_opt.conventional(shape).time_ps),
         std::to_string(naive_best.k),
         percent(1.0 -
                 naive_best.time_ps / naive_opt.conventional(shape).time_ps)});
  }
  std::cout << modes;
  std::cout << "\nPaper reference: without the CSA, the clock penalty of "
               "collapsing cancels the\ncycle savings — the carry-save stage "
               "is what makes configurable transparent\npipelining "
               "profitable.\n";
  return 0;
}
