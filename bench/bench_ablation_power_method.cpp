// ABL2 — Power-methodology ablation: steady-state per-mode power (the
// paper's Fig. 9 methodology) vs. utilization-aware energy accounting that
// charges idle fill/drain cycles only for the clock they actually burn.
//
// DESIGN.md §7 and EXPERIMENTS.md explain why the steady-state model is the
// one that reproduces the paper's bands; this bench makes the difference
// between the two methodologies explicit instead of hiding it.

#include <iostream>

#include "arch/clocking.h"
#include "arch/power_model.h"
#include "nn/mapper.h"
#include "nn/models.h"
#include "sim/report.h"
#include "util/strings.h"
#include "util/table.h"

using namespace af;

int main() {
  const arch::CalibratedClockModel clock = arch::CalibratedClockModel::date23();
  const arch::ArrayConfig cfg = arch::ArrayConfig::square(128);
  const arch::SaPowerModel power(cfg, clock);

  std::cout << "Ablation: two power-accounting methodologies on the same "
               "workloads (128x128).\n\n";
  std::cout << sim::banner("ArrayFlex-vs-conventional power ratio per layer");

  Table table({"workload", "T", "k", "steady-state ratio",
               "utilization-aware ratio", "util (conv)"});
  table.set_align(0, Table::Align::kLeft);

  struct Case {
    const char* name;
    gemm::GemmShape shape;
    int k;
  };
  const std::vector<Case> cases = {
      {"ConvNeXt stage-1 pw", {384, 96, 3136}, 1},
      {"ResNet-34 layer 20", {256, 2304, 196}, 2},
      {"ResNet-34 layer 28", {512, 2304, 49}, 4},
      {"MobileNet fc (T=1)", {1000, 1024, 1}, 4},
  };
  for (const auto& c : cases) {
    const arch::PowerResult ss_af = power.arrayflex(c.shape, c.k);
    const arch::PowerResult ss_conv = power.conventional(c.shape);
    const arch::PowerResult ua_af =
        power.arrayflex_utilization_aware(c.shape, c.k);
    const arch::PowerResult ua_conv =
        power.conventional_utilization_aware(c.shape);
    // Conventional-array utilization: useful MACs / (PEs x streaming cycles).
    const double util =
        static_cast<double>(c.shape.t) /
        static_cast<double>(c.shape.t + cfg.rows + cfg.cols - 2);
    table.add_row({c.name, std::to_string(c.shape.t), std::to_string(c.k),
                   fixed(ss_af.power_mw() / ss_conv.power_mw(), 3),
                   fixed(ua_af.power_mw() / ua_conv.power_mw(), 3),
                   percent(util)});
  }
  std::cout << table;

  std::cout
      << "\nReading: under steady-state accounting every mode has one power "
         "figure and\nshallow modes always save power (the paper's bars).  "
         "Utilization-aware\naccounting instead rewards the conventional SA "
         "on low-utilization layers\n(small T) because its idle cycles are "
         "cheap, which flips small-T layers toward\nratios above 1.  The "
         "paper's reported 13-23% savings are only consistent with\nthe "
         "steady-state methodology, which is why it is the default "
         "(EXPERIMENTS.md).\n";
  return 0;
}
