// Pipeline-depth optimizer: Eq. 6 argmin, Eq. 7 closed form, and the
// paper's Fig. 5 / Section III-C mode predictions.

#include <gtest/gtest.h>

#include "arch/latency.h"
#include "arch/optimizer.h"

namespace af::arch {
namespace {

class OptimizerTest : public ::testing::Test {
 protected:
  OptimizerTest()
      : clock_(CalibratedClockModel::date23()),
        cfg128_(ArrayConfig::square(128)),
        opt128_(cfg128_, clock_) {}

  CalibratedClockModel clock_;
  ArrayConfig cfg128_;
  PipelineOptimizer opt128_;
};

TEST_F(OptimizerTest, EvaluateComputesEq6) {
  const gemm::GemmShape shape{256, 2304, 196};
  const ModeDecision d = opt128_.evaluate(shape, 2);
  EXPECT_EQ(d.k, 2);
  EXPECT_EQ(d.cycles, total_latency_cycles(shape, cfg128_, 2));
  EXPECT_DOUBLE_EQ(d.period_ps, clock_.period_ps(2));
  EXPECT_DOUBLE_EQ(d.time_ps, static_cast<double>(d.cycles) * d.period_ps);
}

TEST_F(OptimizerTest, BestModeIsArgmin) {
  const gemm::GemmShape shape{512, 2304, 49};
  const ModeDecision best = opt128_.best_mode(shape);
  for (const int k : cfg128_.supported_k) {
    EXPECT_LE(best.time_ps, opt128_.evaluate(shape, k).time_ps) << "k=" << k;
  }
}

TEST_F(OptimizerTest, SweepFlagsExactlyOneWinner) {
  const auto sweep = opt128_.sweep({256, 2304, 196});
  int winners = 0;
  for (const auto& entry : sweep) winners += entry.is_best ? 1 : 0;
  EXPECT_EQ(winners, 1);
  EXPECT_EQ(sweep.size(), cfg128_.supported_k.size());
}

TEST_F(OptimizerTest, LargeTPrefersNormalPipeline) {
  // Section III-C: early CNN layers (large T) are best served by k = 1.
  const ModeDecision d = opt128_.best_mode({96, 48, 3136});
  EXPECT_EQ(d.k, 1);
  EXPECT_LT(opt128_.continuous_k_hat({96, 48, 3136}), 1.5);
}

TEST_F(OptimizerTest, SmallTPrefersDeepCollapse) {
  // Late layers (small T) want the deepest collapse.
  const ModeDecision d = opt128_.best_mode({768, 3072, 49});
  EXPECT_EQ(d.k, 4);
  EXPECT_GT(opt128_.continuous_k_hat({768, 3072, 49}), 2.0);
}

TEST_F(OptimizerTest, KHatDecreasesWithT) {
  double prev = 1e9;
  for (const std::int64_t t : {16, 49, 196, 784, 3136, 12544}) {
    const double k_hat = opt128_.continuous_k_hat({128, 128, t});
    EXPECT_LT(k_hat, prev);
    prev = k_hat;
  }
}

TEST_F(OptimizerTest, KHatGrowsWithArraySize) {
  // Fig. 8 discussion: larger arrays push more layers to deeper collapse —
  // Eq. 7 "predicts higher values for k-hat when the size of the SA
  // increases".
  const ArrayConfig cfg256 = ArrayConfig::square(256);
  const PipelineOptimizer opt256(cfg256, clock_);
  for (const std::int64_t t : {49, 196, 784}) {
    EXPECT_GT(opt256.continuous_k_hat({128, 128, t}),
              opt128_.continuous_k_hat({128, 128, t}))
        << "T=" << t;
  }
}

TEST_F(OptimizerTest, RoundedKHatPicksNearestSupportedMode) {
  // k-hat around 1.6 rounds to 2; around 3.2 rounds to 4 (3 unsupported).
  const int k_small_t = opt128_.rounded_k_hat({512, 512, 49});
  EXPECT_EQ(k_small_t, 4);
  const int k_large_t = opt128_.rounded_k_hat({96, 48, 12544});
  EXPECT_EQ(k_large_t, 1);
}

TEST_F(OptimizerTest, RoundedKHatTracksDiscreteArgmin) {
  // The paper: "the best pipeline organization per CNN layer is approximated
  // fairly accurately ... by Equation (7)".  Across the T range the two
  // disagree on at most the boundary shapes; never by more than one step in
  // the supported-mode ladder.
  const std::vector<int>& modes = cfg128_.supported_k;
  for (const std::int64_t t :
       {16, 32, 49, 100, 196, 400, 784, 1600, 3136, 12544}) {
    const gemm::GemmShape shape{256, 1024, t};
    const int exact = opt128_.best_mode(shape).k;
    const int approx = opt128_.rounded_k_hat(shape);
    int pos_exact = -1, pos_approx = -1;
    for (std::size_t i = 0; i < modes.size(); ++i) {
      if (modes[i] == exact) pos_exact = static_cast<int>(i);
      if (modes[i] == approx) pos_approx = static_cast<int>(i);
    }
    EXPECT_LE(std::abs(pos_exact - pos_approx), 1) << "T=" << t;
  }
}

TEST_F(OptimizerTest, BestModesBatchMatchesPerShapeArgmin) {
  // best_modes must agree with best_mode shape-for-shape, serial and
  // threaded (SimOptions::num_threads), in input order.
  const std::vector<gemm::GemmShape> shapes = {
      {256, 2304, 196}, {512, 2304, 49}, {64, 64, 3000}, {1000, 1152, 196},
      {128, 4608, 12},  {96, 576, 3136}, {768, 768, 49}};
  for (const int threads : {1, 4}) {
    ArrayConfig cfg = cfg128_;
    cfg.sim.num_threads = threads;
    const PipelineOptimizer opt(cfg, clock_);
    const std::vector<ModeDecision> batch = opt.best_modes(shapes);
    ASSERT_EQ(batch.size(), shapes.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < shapes.size(); ++i) {
      const ModeDecision want = opt128_.best_mode(shapes[i]);
      EXPECT_EQ(batch[i].k, want.k) << "threads=" << threads << " i=" << i;
      EXPECT_EQ(batch[i].cycles, want.cycles)
          << "threads=" << threads << " i=" << i;
      EXPECT_DOUBLE_EQ(batch[i].time_ps, want.time_ps)
          << "threads=" << threads << " i=" << i;
    }
  }
}

TEST_F(OptimizerTest, ConventionalUsesFasterClock) {
  const gemm::GemmShape shape{256, 2304, 196};
  const ModeDecision conv = opt128_.conventional(shape);
  EXPECT_EQ(conv.k, 1);
  EXPECT_DOUBLE_EQ(conv.period_ps, clock_.conventional_period_ps());
  EXPECT_EQ(conv.cycles, opt128_.evaluate(shape, 1).cycles);
  EXPECT_LT(conv.time_ps, opt128_.evaluate(shape, 1).time_ps);
}

// --- Fig. 5 geometry: 132x132 with k in {1,2,3,4} --------------------------

class Fig5Optimizer : public ::testing::Test {
 protected:
  Fig5Optimizer()
      : clock_(AnalyticClockModel::paper_fit()),
        cfg_(ArrayConfig::square_with_modes(132, {1, 2, 3, 4})),
        opt_(cfg_, clock_) {}

  AnalyticClockModel clock_;
  ArrayConfig cfg_;
  PipelineOptimizer opt_;
};

TEST_F(Fig5Optimizer, Layer20ShallowBeatsNormalAndConventional) {
  // ResNet-34 layer 20: (M,N,T) = (256, 2304, 196).  Fig. 5(a): shallow
  // modes beat both the normal pipeline and the conventional SA; k = 2 and
  // k = 3 are near-tied at the minimum (DESIGN.md documents the tie).
  const gemm::GemmShape shape{256, 2304, 196};
  const ModeDecision best = opt_.best_mode(shape);
  EXPECT_GE(best.k, 2);
  EXPECT_LE(best.k, 3);
  EXPECT_LT(best.time_ps, opt_.evaluate(shape, 1).time_ps);
  EXPECT_LT(best.time_ps, opt_.conventional(shape).time_ps);
  // k = 2 and k = 3 within 2% of each other (the paper's plotted near-tie).
  const double t2 = opt_.evaluate(shape, 2).time_ps;
  const double t3 = opt_.evaluate(shape, 3).time_ps;
  EXPECT_NEAR(t2 / t3, 1.0, 0.02);
}

TEST_F(Fig5Optimizer, Layer28PrefersDeepestCollapse) {
  // ResNet-34 layer 28: (M,N,T) = (512, 2304, 49).  Fig. 5(b): k = 4 wins.
  const gemm::GemmShape shape{512, 2304, 49};
  EXPECT_EQ(opt_.best_mode(shape).k, 4);
  EXPECT_LT(opt_.best_mode(shape).time_ps, opt_.conventional(shape).time_ps);
}

TEST_F(Fig5Optimizer, DiminishingReturnsPastTheOptimum) {
  // Fig. 5(a): collapsing deeper than the optimum still beats the
  // conventional SA but the savings shrink.
  const gemm::GemmShape shape{256, 2304, 196};
  const double conv = opt_.conventional(shape).time_ps;
  const double t3 = opt_.evaluate(shape, 3).time_ps;
  const double t4 = opt_.evaluate(shape, 4).time_ps;
  EXPECT_LT(t4, conv);
  EXPECT_GT(t4, t3);
}

}  // namespace
}  // namespace af::arch
