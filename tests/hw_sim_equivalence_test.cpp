// Engine-equivalence contract for the gate-level simulator: the compiled
// event-driven 64-lane engine must match the reference full-order scalar
// eval on every net value and every per-cell toggle count, over randomized
// netlists (DFF feedback included), randomized eval/step interleavings, and
// the real datapath builders.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "hw/builders/multiplier.h"
#include "hw/builders/pe_datapath.h"
#include "hw/compiled_netlist.h"
#include "hw/netlist.h"
#include "hw/netlist_sim.h"
#include "util/rng.h"
#include "util/strings.h"

namespace af::hw {
namespace {

constexpr int kLanes = NetlistSim::kLanes;

// Random connected netlist: primary inputs, DFFs (with feedback: D nets are
// driven by combinational logic that may consume Q nets), and a soup of
// random combinational cells whose inputs draw from already-driven nets.
struct RandomDesign {
  Netlist nl;
  int input_bits = 0;
  std::vector<int> dff_cells;
};

RandomDesign make_random_design(Rng& rng, int input_bits, int num_dffs,
                                int num_comb) {
  RandomDesign d;
  d.input_bits = input_bits;
  Netlist& nl = d.nl;
  const Bus in = nl.new_bus(input_bits);
  nl.bind_input("in", in);

  std::vector<NetId> pool(in.begin(), in.end());
  pool.push_back(nl.const0());
  pool.push_back(nl.const1());

  // DFFs first: D nets get drivers later, Q nets join the pool immediately,
  // so downstream logic can close registered feedback loops.
  std::vector<NetId> dff_d(static_cast<std::size_t>(num_dffs));
  for (int i = 0; i < num_dffs; ++i) {
    const NetId dnet = nl.new_net();
    const NetId q = nl.new_net();
    d.dff_cells.push_back(
        nl.add_cell(CellType::kDff, format("ff%d", i), {dnet}, {q}));
    dff_d[static_cast<std::size_t>(i)] = dnet;
    pool.push_back(q);
  }

  const CellType comb_types[] = {
      CellType::kInv,  CellType::kBuf,   CellType::kNand2, CellType::kNor2,
      CellType::kAnd2, CellType::kOr2,   CellType::kXor2,  CellType::kXnor2,
      CellType::kAoi21, CellType::kOai21, CellType::kMux2,
      CellType::kHalfAdder, CellType::kFullAdder};
  EXPECT_GE(num_comb, num_dffs);
  for (int j = 0; j < num_comb; ++j) {
    const CellType type =
        comb_types[rng.next_below(sizeof(comb_types) / sizeof(comb_types[0]))];
    const CellInfo& info = cell_info(type);
    std::vector<NetId> inputs;
    for (int i = 0; i < info.num_inputs; ++i) {
      inputs.push_back(pool[rng.next_below(pool.size())]);
    }
    std::vector<NetId> outputs;
    for (int o = 0; o < info.num_outputs; ++o) {
      // The first num_dffs cells drive the DFF D nets (on their first
      // output); everything else drives fresh nets.
      const NetId out = (o == 0 && j < num_dffs)
                            ? dff_d[static_cast<std::size_t>(j)]
                            : nl.new_net();
      outputs.push_back(out);
    }
    nl.add_cell(type, format("g%d", j), std::move(inputs), outputs);
    for (const NetId out : outputs) pool.push_back(out);
  }

  // Observable outputs: a random sample of driven nets.
  Bus out_bus;
  for (int i = 0; i < 8 && i < static_cast<int>(pool.size()); ++i) {
    out_bus.push_back(pool[rng.next_below(pool.size())]);
  }
  nl.bind_output("out", out_bus);
  return d;
}

void expect_same_state(const NetlistSim& ref, const NetlistSim& evt,
                       int num_nets, const char* when) {
  for (NetId n = 0; n < num_nets; ++n) {
    ASSERT_EQ(ref.net_value(n), evt.net_value(n))
        << "net " << n << " diverged " << when;
  }
  ASSERT_EQ(ref.toggles(), evt.toggles()) << "toggle counts diverged " << when;
}

TEST(SimEquivalenceTest, RandomNetlistsScalar) {
  Rng rng(2024);
  for (int trial = 0; trial < 12; ++trial) {
    const int input_bits = 2 + static_cast<int>(rng.next_below(14));
    const int num_dffs = static_cast<int>(rng.next_below(12));
    const int num_comb =
        num_dffs + 20 + static_cast<int>(rng.next_below(120));
    RandomDesign d = make_random_design(rng, input_bits, num_dffs, num_comb);

    const CompiledNetlist cn(d.nl);
    NetlistSim ref(cn, SimEngine::kReferenceFullOrder);
    NetlistSim evt(cn, SimEngine::kEventDriven);
    const std::uint64_t mask =
        input_bits >= 64 ? ~0ULL : ((1ULL << input_bits) - 1);

    for (int op = 0; op < 50; ++op) {
      // Occasionally leave the input unchanged to exercise quiet evals, and
      // occasionally force a DFF state directly.
      if (rng.next_below(10) != 0) {
        const std::uint64_t v = rng.next_u64() & mask;
        ref.set_input_u64("in", v);
        evt.set_input_u64("in", v);
      }
      if (num_dffs > 0 && rng.next_below(8) == 0) {
        const int ci = d.dff_cells[rng.next_below(d.dff_cells.size())];
        const bool v = rng.next_below(2) != 0;
        ref.set_dff_state(ci, v);
        evt.set_dff_state(ci, v);
      }
      if (rng.next_below(3) == 0) {
        ref.eval();
        evt.eval();
      } else {
        ref.step();
        evt.step();
      }
      expect_same_state(ref, evt, cn.num_nets(),
                        format("trial %d op %d", trial, op).c_str());
    }
    ASSERT_EQ(ref.total_toggles(), evt.total_toggles());
  }
}

TEST(SimEquivalenceTest, RandomNetlists64Lane) {
  Rng rng(77);
  for (int trial = 0; trial < 3; ++trial) {
    const int input_bits = 4 + static_cast<int>(rng.next_below(10));
    const int num_dffs = 2 + static_cast<int>(rng.next_below(10));
    const int num_comb =
        num_dffs + 30 + static_cast<int>(rng.next_below(80));
    RandomDesign d = make_random_design(rng, input_bits, num_dffs, num_comb);

    const CompiledNetlist cn(d.nl);
    // 64 scalar reference simulators, one per lane, each fed its own
    // stimulus stream...
    std::vector<std::unique_ptr<NetlistSim>> refs;
    for (int l = 0; l < kLanes; ++l) {
      refs.push_back(
          std::make_unique<NetlistSim>(cn, SimEngine::kReferenceFullOrder));
    }
    // ...against ONE bit-parallel simulator carrying all 64 streams.
    NetlistSim evt(cn, SimEngine::kEventDriven);
    evt.set_active_lanes(kLanes);
    const std::uint64_t mask =
        input_bits >= 64 ? ~0ULL : ((1ULL << input_bits) - 1);

    std::vector<std::uint64_t> lane_vals(kLanes);
    for (int op = 0; op < 30; ++op) {
      for (auto& v : lane_vals) v = rng.next_u64() & mask;
      for (int l = 0; l < kLanes; ++l) {
        refs[static_cast<std::size_t>(l)]->set_input_u64(
            "in", lane_vals[static_cast<std::size_t>(l)]);
      }
      evt.set_input_lanes("in", lane_vals);
      const bool do_step = rng.next_below(2) == 0;
      for (int l = 0; l < kLanes; ++l) {
        if (do_step) {
          refs[static_cast<std::size_t>(l)]->step();
        } else {
          refs[static_cast<std::size_t>(l)]->eval();
        }
      }
      if (do_step) {
        evt.step();
      } else {
        evt.eval();
      }
      // Every net, every lane.
      for (int l = 0; l < kLanes; l += 7) {
        for (NetId n = 0; n < cn.num_nets(); ++n) {
          ASSERT_EQ(refs[static_cast<std::size_t>(l)]->net_value(n),
                    evt.net_value_lane(n, l))
              << "trial " << trial << " op " << op << " lane " << l << " net "
              << n;
        }
      }
    }
    // Per-cell toggles of the wide engine == sum over lanes of the scalar
    // reference toggles.
    for (int ci = 0; ci < cn.num_cells(); ++ci) {
      std::uint64_t want = 0;
      for (int l = 0; l < kLanes; ++l) {
        want += refs[static_cast<std::size_t>(l)]
                    ->toggles()[static_cast<std::size_t>(ci)];
      }
      ASSERT_EQ(want, evt.toggles()[static_cast<std::size_t>(ci)])
          << "cell " << ci << " toggles";
    }
  }
}

TEST(SimEquivalenceTest, WallaceMultiplierAllEnginesAgree) {
  Netlist nl;
  const Bus a = nl.new_bus(8);
  const Bus b = nl.new_bus(8);
  nl.bind_input("a", a);
  nl.bind_input("b", b);
  nl.bind_output("p", build_wallace_multiplier(nl, a, b));
  const CompiledNetlist cn(nl);
  NetlistSim ref(cn, SimEngine::kReferenceFullOrder);
  NetlistSim evt(cn, SimEngine::kEventDriven);
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t x = rng.next_u64() & 0xFF;
    const std::uint64_t y = rng.next_u64() & 0xFF;
    ref.set_input_u64("a", x);
    ref.set_input_u64("b", y);
    evt.set_input_u64("a", x);
    evt.set_input_u64("b", y);
    ref.eval();
    evt.eval();
    ASSERT_EQ(ref.get_u64("p"), x * y);
    ASSERT_EQ(evt.get_u64("p"), x * y);
  }
  EXPECT_EQ(ref.toggles(), evt.toggles());
}

TEST(SimEquivalenceTest, DffHeavyCollapsedColumnViaStep) {
  Netlist nl;
  build_collapsed_column(nl, /*k=*/3, /*use_csa=*/true, {8, 16});
  const CompiledNetlist cn(nl);
  NetlistSim ref(cn, SimEngine::kReferenceFullOrder);
  NetlistSim evt(cn, SimEngine::kEventDriven);
  Rng rng(9);
  for (int i = 0; i < 3; ++i) {
    const std::uint64_t w = rng.next_u64() & 0xFF;
    ref.set_input_u64(format("w_in%d", i), w);
    evt.set_input_u64(format("w_in%d", i), w);
    ref.set_input_u64(format("a_in%d", i), 0);
    evt.set_input_u64(format("a_in%d", i), 0);
  }
  for (const char* bus : {"s_in", "c_in"}) {
    ref.set_input_u64(bus, 0);
    evt.set_input_u64(bus, 0);
  }
  ref.step();
  evt.step();
  for (int cycle = 0; cycle < 40; ++cycle) {
    for (int i = 0; i < 3; ++i) {
      const std::uint64_t av = rng.next_u64() & 0xFF;
      ref.set_input_u64(format("a_in%d", i), av);
      evt.set_input_u64(format("a_in%d", i), av);
    }
    ref.step();
    evt.step();
    ASSERT_EQ(ref.get_u64("psum_out"), evt.get_u64("psum_out"))
        << "cycle " << cycle;
    ASSERT_EQ(ref.toggles(), evt.toggles()) << "cycle " << cycle;
  }
  EXPECT_GT(evt.total_toggles(), 0u);
}

TEST(SimEquivalenceTest, EventEngineSkipsQuietLogic) {
  // The whole point of event-driven evaluation: untouched cones don't
  // re-evaluate.  A quiet eval must not evaluate anything, and a single-bit
  // input wiggle must evaluate only its fanout cone.
  Netlist nl;
  const Bus a = nl.new_bus(16);
  const Bus b = nl.new_bus(16);
  nl.bind_input("a", a);
  nl.bind_input("b", b);
  nl.bind_output("p", build_wallace_multiplier(nl, a, b));
  const CompiledNetlist cn(nl);
  NetlistSim sim(cn);
  sim.set_input_u64("a", 0x1234);
  sim.set_input_u64("b", 0x00FF);
  sim.eval();
  const std::uint64_t after_first = sim.cells_evaluated();
  EXPECT_EQ(after_first, static_cast<std::uint64_t>(cn.num_cells()));
  sim.eval();  // nothing changed
  EXPECT_EQ(sim.cells_evaluated(), after_first);
  sim.set_input_u64("a", 0x1234 ^ (1ULL << 15));  // wiggle the MSB
  sim.eval();
  const std::uint64_t cone = sim.cells_evaluated() - after_first;
  EXPECT_GT(cone, 0u);
  EXPECT_LT(cone, static_cast<std::uint64_t>(cn.num_cells()) / 2)
      << "MSB fanout cone should be far smaller than the full design";
}

}  // namespace
}  // namespace af::hw
