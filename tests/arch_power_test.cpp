// Power/energy model: per-mode steady-state ratios, the Fig. 9 aggregate
// bands, EDP gains, and consistency between the closed-form activity path
// and simulator-measured counters.

#include <gtest/gtest.h>

#include "arch/array.h"
#include "arch/energy.h"
#include "arch/power_model.h"
#include "gemm/matrix.h"
#include "nn/models.h"
#include "nn/runner.h"
#include "util/rng.h"

namespace af::arch {
namespace {

class PowerModelTest : public ::testing::Test {
 protected:
  PowerModelTest()
      : clock_(CalibratedClockModel::date23()),
        cfg_(ArrayConfig::square(128)),
        model_(cfg_, clock_) {}

  CalibratedClockModel clock_;
  ArrayConfig cfg_;
  SaPowerModel model_;
};

TEST_F(PowerModelTest, NormalModeCostsMoreThanConventional) {
  // Paper Section IV-B: "in normal pipeline mode, ArrayFlex still consumes
  // more power than a conventional SA" — the extra CSA/mux capacitance is
  // not fully amortized by the 10% slower clock.
  const double conv = model_.steady_power_conventional_mw();
  const double af1 = model_.steady_power_arrayflex_mw(1);
  EXPECT_GT(af1, conv);
  EXPECT_LT(af1 / conv, 1.10);  // but the overhead is single-digit percent
}

TEST_F(PowerModelTest, ShallowModesSavePower) {
  const double conv = model_.steady_power_conventional_mw();
  const double af2 = model_.steady_power_arrayflex_mw(2);
  const double af4 = model_.steady_power_arrayflex_mw(4);
  EXPECT_LT(af2, conv);
  EXPECT_LT(af4, af2);
  // Deepest mode saves on the order of a quarter of the power.
  EXPECT_GT(af4 / conv, 0.65);
  EXPECT_LT(af4 / conv, 0.85);
}

TEST_F(PowerModelTest, PowerScalesWithArea) {
  const ArrayConfig big = ArrayConfig::square(256);
  const SaPowerModel big_model(big, clock_);
  const double small_mw = model_.steady_power_conventional_mw();
  const double big_mw = big_model.steady_power_conventional_mw();
  EXPECT_NEAR(big_mw / small_mw, 4.0, 0.2);  // 4x the PEs
}

TEST_F(PowerModelTest, WorkloadEnergyIsPowerTimesTime) {
  const gemm::GemmShape shape{256, 2304, 196};
  const PowerResult r = model_.arrayflex(shape, 2);
  EXPECT_NEAR(r.power_mw(), model_.steady_power_arrayflex_mw(2), 1e-6);
  EXPECT_GT(r.energy_pj, 0.0);
  const PowerResult conv = model_.conventional(shape);
  EXPECT_NEAR(conv.power_mw(), model_.steady_power_conventional_mw(), 1e-6);
}

TEST_F(PowerModelTest, UnsupportedModeRejected) {
  EXPECT_THROW(model_.steady_power_arrayflex_mw(3), Error);
}

TEST_F(PowerModelTest, UtilizationAwareModelChargesIdleCycles) {
  // A T = 1 workload keeps the conventional array almost entirely idle;
  // the utilization-aware energy must be far below steady-state power x
  // time, while the datapath-dominated steady model is insensitive.
  const gemm::GemmShape tiny{128, 128, 1};
  const PowerResult steady = model_.conventional(tiny);
  const PowerResult aware = model_.conventional_utilization_aware(tiny);
  EXPECT_LT(aware.energy_pj, steady.energy_pj * 0.8);
  EXPECT_DOUBLE_EQ(aware.time_ps, steady.time_ps);
}

TEST_F(PowerModelTest, FromCountersAcceptsSimulatorMeasurements) {
  // Feed real simulator counters through the utilization-aware model and
  // check it agrees exactly with the closed-form path.
  ArrayConfig small;
  small.rows = small.cols = 8;
  small.supported_k = {1, 2};
  small.validate();
  SystolicArray array(small);
  Rng rng(12);
  const gemm::Mat32 a = gemm::random_matrix(rng, 10, 8, -50, 50);
  const gemm::Mat32 b = gemm::random_matrix(rng, 8, 8, -50, 50);
  gemm::Mat64 acc(10, 8);
  const TileRunStats stats = array.run_tile(a, b, 2, &acc);

  const SaPowerModel small_model(small, clock_);
  const PowerResult from_sim =
      small_model.from_counters(stats.activity, stats.total_cycles,
                                clock_.period_ps(2), true, 2);
  const PowerResult from_model =
      small_model.arrayflex_utilization_aware({8, 8, 10}, 2);
  EXPECT_NEAR(from_sim.energy_pj, from_model.energy_pj, 1e-9);
  EXPECT_DOUBLE_EQ(from_sim.time_ps, from_model.time_ps);
}

// ------------------------------------------------------- Fig. 9 aggregates

struct BandCase {
  int side;
  double lo;       // minimum acceptable power savings
  double hi;       // maximum acceptable power savings
  double edp_lo;
  double edp_hi;
};

class Fig9Bands : public ::testing::TestWithParam<BandCase> {};

TEST_P(Fig9Bands, AggregateSavingsLandNearPaperBands) {
  const auto [side, lo, hi, edp_lo, edp_hi] = GetParam();
  const CalibratedClockModel clock = CalibratedClockModel::date23();
  const ArrayConfig cfg = ArrayConfig::square(side);
  const nn::InferenceRunner runner(cfg, clock);
  for (const nn::Model& model : nn::paper_models()) {
    const nn::ModelReport report = runner.run(model);
    const EfficiencyComparison e = report.totals();
    EXPECT_GE(e.power_savings(), lo) << model.name;
    EXPECT_LE(e.power_savings(), hi) << model.name;
    EXPECT_GE(e.edp_gain, edp_lo) << model.name;
    EXPECT_LE(e.edp_gain, edp_hi) << model.name;
    // ArrayFlex always wins on both axes at the application level.
    EXPECT_GT(e.latency_savings(), 0.0) << model.name;
    EXPECT_GT(e.power_savings(), 0.0) << model.name;
  }
}

// Paper: 13-15% at 128x128 and 17-23% at 256x256; EDP 1.4x-1.8x.  The test
// bands are slightly wider: MobileNet's time mix sits ~2-5 points below the
// paper's band because its early large-T layers run at k = 1 (documented in
// EXPERIMENTS.md).
INSTANTIATE_TEST_SUITE_P(
    Sizes, Fig9Bands,
    ::testing::Values(BandCase{128, 0.09, 0.17, 1.25, 1.55},
                      BandCase{256, 0.10, 0.24, 1.25, 1.85}));

TEST(Fig9PerMode, PowerBarsOrderedByDepth) {
  // The per-mode breakdown of Fig. 9: within one application, deeper modes
  // draw less power.
  const CalibratedClockModel clock = CalibratedClockModel::date23();
  const nn::InferenceRunner runner(ArrayConfig::square(128), clock);
  const nn::ModelReport report = runner.run(nn::convnext_tiny());
  const auto by_mode = report.power_by_mode_mw();
  ASSERT_TRUE(by_mode.count(1));
  ASSERT_TRUE(by_mode.count(2));
  ASSERT_TRUE(by_mode.count(4));
  EXPECT_GT(by_mode.at(1), by_mode.at(2));
  EXPECT_GT(by_mode.at(2), by_mode.at(4));
}

TEST(EnergyTest, CompareComputesRatios) {
  PowerResult af{80.0, 90.0};     // energy_pj, time_ps
  PowerResult conv{100.0, 100.0};
  const EfficiencyComparison e = compare(af, conv);
  EXPECT_DOUBLE_EQ(e.time_ratio, 0.9);
  EXPECT_DOUBLE_EQ(e.energy_ratio, 0.8);
  EXPECT_NEAR(e.power_ratio, 0.8 / 0.9, 1e-12);
  EXPECT_NEAR(e.edp_gain, (100.0 * 100.0) / (80.0 * 90.0), 1e-12);
  EXPECT_NEAR(e.latency_savings(), 0.1, 1e-12);
}

TEST(EnergyTest, DegenerateInputsRejected) {
  EXPECT_THROW(compare(PowerResult{0.0, 1.0}, PowerResult{1.0, 1.0}), Error);
  EXPECT_THROW(compare(PowerResult{1.0, 1.0}, PowerResult{1.0, 0.0}), Error);
}

}  // namespace
}  // namespace af::arch
